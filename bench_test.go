package cppcache

// The benchmark harness: one testing.B benchmark per table/figure in the
// paper's evaluation (§4), plus the ablations DESIGN.md calls out. Each
// benchmark regenerates its figure at a reduced scale and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the whole evaluation. cmd/cppbench runs the same experiments
// at full scale with complete per-benchmark tables.

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchScale keeps the per-figure benchmarks fast; cmd/cppbench uses the
// full default scale.
const benchScale = 1

func reportGeomeans(b *testing.B, t *Table, metric string) {
	b.Helper()
	row := "geomean"
	found := false
	for _, r := range t.Rows {
		if r == row {
			found = true
			break
		}
	}
	if !found {
		return
	}
	for _, col := range t.Cols {
		b.ReportMetric(t.Get(row, col), col+"_"+metric)
	}
}

// warmPrograms builds the benchmark traces once, outside the timed region,
// so the Figure benchmarks measure simulation rather than workload
// construction. Programs are shared via the workload build cache, so the
// NewSuite calls inside the timed loops reuse these instances.
func warmPrograms(b *testing.B, names []string) {
	b.Helper()
	if names == nil {
		names = Benchmarks()
	}
	for _, n := range names {
		if _, err := BuildBenchmark(n, benchScale); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
}

func BenchmarkFig03Compressibility(b *testing.B) {
	b.ReportAllocs()
	warmPrograms(b, nil)
	for i := 0; i < b.N; i++ {
		s := NewSuite(SuiteOptions{Scale: benchScale})
		t, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var small, ptr float64
			for _, r := range t.Rows {
				small += t.Get(r, "small")
				ptr += t.Get(r, "pointer")
			}
			n := float64(len(t.Rows))
			b.ReportMetric((small+ptr)/n, "avg_compressible")
		}
	}
}

func BenchmarkFig09BaselineSetup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if BaselineDescription() == "" {
			b.Fatal("empty baseline description")
		}
	}
}

func BenchmarkFig10MemoryTraffic(b *testing.B) {
	b.ReportAllocs()
	warmPrograms(b, nil)
	for i := 0; i < b.N; i++ {
		s := NewSuite(SuiteOptions{Scale: benchScale})
		t, err := s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportGeomeans(b, t, "traffic")
		}
	}
}

func BenchmarkFig11ExecutionTime(b *testing.B) {
	b.ReportAllocs()
	warmPrograms(b, nil)
	for i := 0; i < b.N; i++ {
		s := NewSuite(SuiteOptions{Scale: benchScale})
		t, err := s.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportGeomeans(b, t, "exectime")
		}
	}
}

func BenchmarkFig12L1Misses(b *testing.B) {
	b.ReportAllocs()
	warmPrograms(b, nil)
	for i := 0; i < b.N; i++ {
		s := NewSuite(SuiteOptions{Scale: benchScale})
		t, err := s.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportGeomeans(b, t, "l1miss")
		}
	}
}

func BenchmarkFig13L2Misses(b *testing.B) {
	b.ReportAllocs()
	warmPrograms(b, nil)
	for i := 0; i < b.N; i++ {
		s := NewSuite(SuiteOptions{Scale: benchScale})
		t, err := s.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportGeomeans(b, t, "l2miss")
		}
	}
}

func BenchmarkFig14MissImportance(b *testing.B) {
	b.ReportAllocs()
	// Restrict to a representative subset: Figure 14 needs two full runs
	// per benchmark x configuration.
	benches := []string{"olden.health", "olden.treeadd", "spec2000.300.twolf"}
	warmPrograms(b, benches)
	for i := 0; i < b.N; i++ {
		s := NewSuite(SuiteOptions{Scale: benchScale, Benchmarks: benches})
		t, err := s.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportGeomeans(b, t, "importance")
		}
	}
}

func BenchmarkFig15ReadyQueue(b *testing.B) {
	benches := []string{"olden.health", "olden.treeadd", "spec95.130.li"}
	b.ReportAllocs()
	warmPrograms(b, benches)
	for i := 0; i < b.N; i++ {
		s := NewSuite(SuiteOptions{Scale: benchScale, Benchmarks: benches})
		t, err := s.Figure15()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var inc float64
			for _, r := range t.Rows {
				inc += t.Get(r, "increase")
			}
			b.ReportMetric(inc/float64(len(t.Rows)), "avg_queue_increase")
		}
	}
}

// BenchmarkAblationMask sweeps the affiliated-line mask: 0x1 is the
// paper's next-line pairing; larger masks pair more distant lines
// (stride-prefetch analogues).
func BenchmarkAblationMask(b *testing.B) {
	for _, mask := range []uint32{0x1, 0x2, 0x4} {
		b.Run(fmt.Sprintf("mask_%#x", mask), func(b *testing.B) {
			warmPrograms(b, []string{"olden.treeadd"})
			for i := 0; i < b.N; i++ {
				res, err := RunCPPVariant("olden.treeadd", mask, true, Options{Scale: benchScale})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.Cycles), "cycles")
					b.ReportMetric(float64(res.AffiliatedHitsL1), "aff_hits")
				}
			}
		})
	}
}

// BenchmarkAblationVictim quantifies the victim-placement path (§3.3):
// salvaging evicted lines into their affiliated place.
func BenchmarkAblationVictim(b *testing.B) {
	for _, vp := range []bool{true, false} {
		b.Run(fmt.Sprintf("victimPlacement_%v", vp), func(b *testing.B) {
			warmPrograms(b, []string{"spec2000.300.twolf"})
			for i := 0; i < b.N; i++ {
				res, err := RunCPPVariant("spec2000.300.twolf", 0x1, vp, Options{Scale: benchScale})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.Cycles), "cycles")
					b.ReportMetric(float64(res.L1Misses), "l1_misses")
				}
			}
		})
	}
}

// BenchmarkAblationWidth sweeps the compressed-word width: what fraction
// of dynamically accessed values would be compressible if the scheme kept
// 7, 15 (the paper's choice) or 23 low-order bits.
func BenchmarkAblationWidth(b *testing.B) {
	for _, width := range []int{7, 15, 23} {
		b.Run(fmt.Sprintf("payload_%d", width), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(1))
			vals := make([]uint32, 4096)
			addrs := make([]uint32, 4096)
			for i := range vals {
				// A realistic mix: thirds of small values, pointers
				// and random words.
				addrs[i] = rng.Uint32() &^ 3
				switch i % 3 {
				case 0:
					vals[i] = uint32(rng.Intn(1 << 14))
				case 1:
					vals[i] = addrs[i]&^0x7FFF | uint32(rng.Intn(1<<15))&^3
				default:
					vals[i] = rng.Uint32()
				}
			}
			comp := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if CompressibleWordWidth(vals[i%4096], addrs[i%4096], width) {
					comp++
				}
			}
			b.ReportMetric(float64(comp)/float64(b.N), "compressible_frac")
		})
	}
}

// BenchmarkCompressionKernel measures the raw software compressor.
func BenchmarkCompressionKernel(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(9))
	vals := make([]uint32, 1024)
	addrs := make([]uint32, 1024)
	for i := range vals {
		vals[i] = rng.Uint32()
		addrs[i] = rng.Uint32() &^ 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c, ok := CompressWord(vals[i%1024], addrs[i%1024]); ok {
			_ = DecompressWord(c, addrs[i%1024])
		}
	}
}

// BenchmarkSimulatorThroughput measures end-to-end simulation speed
// (instructions per wall-clock second) on the CPP configuration. With no
// recorder attached this is also the observability-off guard: the obs
// hooks must stay within noise of the pre-observability baseline
// (BENCH_simperf.json; cmd/cppbench -against compares runs).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	p, err := BuildBenchmark("olden.health", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunProgram(p, CPP, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.Len()), "insts/run")
}

// BenchmarkSimulatorThroughputObserved is the same run with the full
// observability stack attached (interval metrics + event trace), putting a
// number on what turning observability ON costs.
func BenchmarkSimulatorThroughputObserved(b *testing.B) {
	b.ReportAllocs()
	p, err := BuildBenchmark("olden.health", 1)
	if err != nil {
		b.Fatal(err)
	}
	oo := ObserveOptions{IntervalCycles: 10000, Trace: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ob, err := RunProgramObserved(p, CPP, Options{}, oo)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(ob.Intervals()), "intervals")
		}
	}
	b.ReportMetric(float64(p.Len()), "insts/run")
}
