package experiments

import (
	"strings"
	"testing"

	"cppcache/internal/cpu"
	"cppcache/internal/memsys"
)

// twoBench keeps the suite tests fast.
func twoBench() Options {
	return Options{Scale: 1, Benchmarks: []string{"olden.treeadd", "olden.health"}}
}

func TestOptionsDefaults(t *testing.T) {
	opt := Options{}.withDefaults()
	if opt.Scale == 0 || len(opt.Benchmarks) != 14 || opt.Workers == 0 {
		t.Errorf("withDefaults() = %+v", opt)
	}
	if opt.CPUParams.IssueWidth != 4 {
		t.Errorf("CPU params not defaulted: %+v", opt.CPUParams)
	}
}

func TestCompressibilityFractionsSum(t *testing.T) {
	s := NewSuite(twoBench())
	tab, err := s.Compressibility()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		sum := tab.Get(r, "small") + tab.Get(r, "pointer") + tab.Get(r, "incompressible")
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %v", r, sum)
		}
	}
}

func TestSharedRunsAcrossFigures(t *testing.T) {
	// Figures 10-13 must reuse the same cached runs: generating all four
	// must not change any cell of the first.
	s := NewSuite(twoBench())
	t10a, err := s.MemoryTraffic()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecutionTime(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CacheMisses(1); err != nil {
		t.Fatal(err)
	}
	t10b, err := s.MemoryTraffic()
	if err != nil {
		t.Fatal(err)
	}
	for i := range t10a.Rows {
		for j := range t10a.Cols {
			if t10a.Cells[i][j] != t10b.Cells[i][j] {
				t.Fatalf("cached results changed: %v vs %v", t10a.Cells[i][j], t10b.Cells[i][j])
			}
		}
	}
}

func TestFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := NewSuite(twoBench())

	t10, err := s.MemoryTraffic()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"olden.treeadd", "olden.health"} {
		if t10.Get(r, "BC") != 1.0 {
			t.Errorf("%s: BC traffic not normalised", r)
		}
		if bcc := t10.Get(r, "BCC"); bcc >= 1.0 {
			t.Errorf("%s: BCC traffic %v >= BC", r, bcc)
		}
		if cpp := t10.Get(r, "CPP"); cpp >= 1.0 {
			t.Errorf("%s: CPP traffic %v >= BC (the paper's headline)", r, cpp)
		}
	}

	t11, err := s.ExecutionTime()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"olden.treeadd", "olden.health"} {
		if bc, bcc := t11.Get(r, "BC"), t11.Get(r, "BCC"); bc != bcc {
			t.Errorf("%s: BC (%v) and BCC (%v) must have identical timing", r, bc, bcc)
		}
		if cpp := t11.Get(r, "CPP"); cpp > 1.05 {
			t.Errorf("%s: CPP execution %v well above BC", r, cpp)
		}
	}
}

func TestCacheMissesRejectsBadLevel(t *testing.T) {
	s := NewSuite(twoBench())
	if _, err := s.CacheMisses(3); err == nil {
		t.Error("level 3 accepted")
	}
}

func TestMissImportance(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: doubles the runs")
	}
	s := NewSuite(Options{Scale: 1, Benchmarks: []string{"olden.treeadd"}})
	tab, err := s.MissImportance()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"BC", "CPP"} {
		f := tab.Get("olden.treeadd", c)
		if f <= 0 || f >= 1 {
			t.Errorf("%s: Fraction_enhanced = %v outside (0,1)", c, f)
		}
	}
	if tab.Get("olden.treeadd", "BC") != tab.Get("olden.treeadd", "BCC") {
		t.Error("BC and BCC importance must match")
	}
}

func TestReadyQueue(t *testing.T) {
	s := NewSuite(Options{Scale: 1, Benchmarks: []string{"olden.treeadd"}})
	tab, err := s.ReadyQueue()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Get("olden.treeadd", "HAC") <= 0 || tab.Get("olden.treeadd", "CPP") <= 0 {
		t.Error("queue lengths should be positive")
	}
}

func TestInstructionMix(t *testing.T) {
	s := NewSuite(twoBench())
	tab, err := s.InstructionMix()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if tab.Get(r, "load") <= 0 || tab.Get(r, "total(k)") <= 0 {
			t.Errorf("%s: empty mix", r)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	s := NewSuite(Options{Scale: 1, Benchmarks: []string{"nope"}})
	if _, err := s.Compressibility(); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := s.MemoryTraffic(); err == nil {
		t.Error("unknown benchmark accepted by runs")
	}
}

func TestBaselineTable(t *testing.T) {
	s := BaselineTable(cpu.DefaultParams(), memsys.DefaultLatencies())
	for _, want := range []string{"4 issue", "bimod, 2048", "8 entries", "100 cycles"} {
		if !strings.Contains(s, want) {
			t.Errorf("baseline table missing %q", want)
		}
	}
}
