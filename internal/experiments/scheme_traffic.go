package experiments

import (
	"context"
	"fmt"

	"cppcache/internal/compress"
	"cppcache/internal/memsys"
	"cppcache/internal/sched"
	"cppcache/internal/sim"
	"cppcache/internal/stats"
	"cppcache/internal/workload"
)

// SchemeTraffic runs the compressor-zoo comparison: one functional BCC
// run per workload x registered compression scheme (the schemes share
// miss behaviour and differ only in bus traffic), reported as off-chip
// traffic ratios to the uncompressed BC baseline, with a geomean row.
// Rows fan out across workers (one job per workload, so the BC baseline
// run and the trace are shared within a job); the resulting table is
// byte-identical for any worker count.
func SchemeTraffic(scale, workers int) (*stats.Table, error) {
	if scale <= 0 {
		scale = 1 // functional sweeps don't need the full compute phase
	}
	schemes := compress.Schemes()
	benches := workload.Names()
	t := stats.NewTable("BCC off-chip traffic ratio vs BC, per compression scheme", benches, schemes)
	lat := memsys.DefaultLatencies()
	err := sched.Do(context.Background(), len(benches), workers,
		func(_ context.Context, _, j int) error {
			// Each job owns one row; concurrent Set calls touch disjoint
			// row slices.
			bench := benches[j]
			p, err := workload.BuildShared(bench, scale)
			if err != nil {
				return err
			}
			base, err := sim.RunFunctional(p, "BC", lat)
			if err != nil {
				return err
			}
			bw := base.Mem.MemTrafficWords()
			for _, scheme := range schemes {
				r, err := sim.RunFunctional(p, sim.WithCompressor("BCC", scheme), lat)
				if err != nil {
					return err
				}
				t.Set(bench, scheme, r.Mem.MemTrafficWords()/bw)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	g := t.WithGeomeanRow()
	g.Note = fmt.Sprintf("scale=%d; 1.00 = uncompressed BC traffic; lower is better", scale)
	return g, nil
}
