// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each exported function produces one figure as a
// stats.Table; cmd/cppbench prints them all and EXPERIMENTS.md records
// paper-vs-measured.
//
// A Suite caches simulation results so that the figures sharing runs
// (10-13, 15 share the full-latency runs; 14 adds halved-latency runs)
// only simulate each benchmark x configuration pair once. Runs are
// independent, so the Suite fans them out across GOMAXPROCS workers.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"cppcache/internal/compress"
	"cppcache/internal/cpu"
	"cppcache/internal/energy"
	"cppcache/internal/isa"
	"cppcache/internal/memsys"
	"cppcache/internal/sched"
	"cppcache/internal/sim"
	"cppcache/internal/span"
	"cppcache/internal/stats"
	"cppcache/internal/workload"
)

// Options configures a Suite.
type Options struct {
	Scale      int      // workload scale; 0 means workload.DefaultScale
	Benchmarks []string // nil means all 14
	CPUParams  cpu.Params
	Lat        memsys.Latencies
	Workers    int        // 0 means GOMAXPROCS
	Trace      *span.Span // optional parent for per-run spans; nil disables tracing
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = workload.DefaultScale
	}
	if o.Benchmarks == nil {
		o.Benchmarks = workload.Names()
	}
	if o.CPUParams == (cpu.Params{}) {
		o.CPUParams = cpu.DefaultParams()
	}
	if o.Lat == (memsys.Latencies{}) {
		o.Lat = memsys.DefaultLatencies()
	}
	o.Workers = sched.Workers(o.Workers)
	return o
}

type runKey struct {
	bench  string
	config string
	halved bool
}

// Suite owns the programs and cached results for one experimental setup.
type Suite struct {
	opt Options

	mu      sync.Mutex
	progs   map[string]*workload.Program
	results map[runKey]sim.Result
}

// NewSuite builds a Suite with the given options.
func NewSuite(opt Options) *Suite {
	return &Suite{
		opt:     opt.withDefaults(),
		progs:   map[string]*workload.Program{},
		results: map[runKey]sim.Result{},
	}
}

// Options returns the fully defaulted options in use.
func (s *Suite) Options() Options { return s.opt }

// program returns (building and caching) the trace for a benchmark.
func (s *Suite) program(name string) (*workload.Program, error) {
	s.mu.Lock()
	p, ok := s.progs[name]
	s.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := workload.BuildShared(name, s.opt.Scale)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.progs[name] = p
	s.mu.Unlock()
	return p, nil
}

// ensure runs (or fetches) the cached result for every requested key,
// fanning independent runs out over the worker pool.
func (s *Suite) ensure(keys []runKey) error {
	var missing []runKey
	s.mu.Lock()
	for _, k := range keys {
		if _, ok := s.results[k]; !ok {
			missing = append(missing, k)
		}
	}
	s.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}

	// Build all needed programs first (deduplicated, serial: builders
	// are cheap relative to simulation and share nothing).
	for _, k := range missing {
		if _, err := s.program(k.bench); err != nil {
			return err
		}
	}

	// Fan the missing runs over the work-stealing scheduler. Results land
	// in the key-indexed map and the reported error is the one of the
	// lowest-numbered failing run, so the outcome is independent of worker
	// count and interleaving. With a trace attached, every run gets a span
	// under it carrying the job, worker and steal-count attributes.
	name := func(j int) string {
		k := missing[j]
		n := "run " + k.bench + "/" + k.config
		if k.halved {
			n += "/halved"
		}
		return n
	}
	return sched.DoTraced(context.Background(), len(missing), s.opt.Workers, s.opt.Trace, name,
		func(_ context.Context, _, j int) error {
			k := missing[j]
			p, err := s.program(k.bench)
			if err != nil {
				return err
			}
			lat := s.opt.Lat
			if k.halved {
				lat = lat.Halved()
			}
			r, err := sim.Run(p, k.config, lat, s.opt.CPUParams)
			if err != nil {
				return err
			}
			s.mu.Lock()
			s.results[k] = r
			s.mu.Unlock()
			return nil
		})
}

// result fetches one cached run.
func (s *Suite) result(bench, config string, halved bool) (sim.Result, error) {
	k := runKey{bench, config, halved}
	if err := s.ensure([]runKey{k}); err != nil {
		return sim.Result{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results[k], nil
}

// allKeys builds the cross product of the suite's benchmarks and the given
// configs.
func (s *Suite) allKeys(configs []string, halved bool) []runKey {
	var keys []runKey
	for _, b := range s.opt.Benchmarks {
		for _, c := range configs {
			keys = append(keys, runKey{b, c, halved})
		}
	}
	return keys
}

// Compressibility reproduces Figure 3: the fraction of dynamically
// accessed (word-level load/store) values that are compressible, split
// into small values and pointers. The paper reports a 59% average.
func (s *Suite) Compressibility() (*stats.Table, error) {
	cols := []string{"small", "pointer", "incompressible"}
	t := stats.NewTable("Figure 3: dynamically accessed value compressibility", s.opt.Benchmarks, cols)
	t.Note = "fraction of word-level accesses; paper average: 59% compressible"
	for _, name := range s.opt.Benchmarks {
		p, err := s.program(name)
		if err != nil {
			return nil, err
		}
		var small, ptr, incomp, total float64
		str := p.Stream()
		for {
			in, ok := str.Next()
			if !ok {
				break
			}
			if !in.Op.IsMem() {
				continue
			}
			total++
			switch {
			case compress.IsSmall(in.Value):
				small++
			case compress.IsPointerLike(in.Value, in.Addr):
				ptr++
			default:
				incomp++
			}
		}
		if total > 0 {
			t.Set(name, "small", small/total)
			t.Set(name, "pointer", ptr/total)
			t.Set(name, "incompressible", incomp/total)
		}
	}
	return t, nil
}

// MemoryTraffic reproduces Figure 10: off-chip memory traffic of each
// configuration normalised to BC. Paper averages: BCC ~0.60, BCP ~1.80,
// CPP ~0.90.
func (s *Suite) MemoryTraffic() (*stats.Table, error) {
	configs := sim.Configs()
	if err := s.ensure(s.allKeys(configs, false)); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 10: memory traffic", s.opt.Benchmarks, configs)
	t.Note = "L2<->memory bus words, normalised to BC = 1.0"
	for _, b := range s.opt.Benchmarks {
		for _, c := range configs {
			r, err := s.result(b, c, false)
			if err != nil {
				return nil, err
			}
			t.Set(b, c, r.Mem.MemTrafficWords())
		}
	}
	return t.Normalized("BC").WithGeomeanRow(), nil
}

// ExecutionTime reproduces Figure 11: execution time normalised to BC.
// The paper reports CPP ~7% faster than BC on average and ~2% faster than
// HAC.
func (s *Suite) ExecutionTime() (*stats.Table, error) {
	configs := sim.Configs()
	if err := s.ensure(s.allKeys(configs, false)); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 11: execution time", s.opt.Benchmarks, configs)
	t.Note = "cycles, normalised to BC = 1.0"
	for _, b := range s.opt.Benchmarks {
		for _, c := range configs {
			r, err := s.result(b, c, false)
			if err != nil {
				return nil, err
			}
			t.Set(b, c, float64(r.CPU.Cycles))
		}
	}
	return t.Normalized("BC").WithGeomeanRow(), nil
}

// CacheMisses reproduces Figures 12 (level 1) and 13 (level 2): demand
// misses normalised to BC. Prefetch-buffer hits are not misses (§4.4).
func (s *Suite) CacheMisses(level int) (*stats.Table, error) {
	if level != 1 && level != 2 {
		return nil, fmt.Errorf("experiments: cache level must be 1 or 2, got %d", level)
	}
	configs := sim.Configs()
	if err := s.ensure(s.allKeys(configs, false)); err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Figure %d: L%d cache misses", 11+level, level), s.opt.Benchmarks, configs)
	t.Note = "demand misses, normalised to BC = 1.0"
	for _, b := range s.opt.Benchmarks {
		for _, c := range configs {
			r, err := s.result(b, c, false)
			if err != nil {
				return nil, err
			}
			ls := r.Mem.L1
			if level == 2 {
				ls = r.Mem.L2
			}
			t.Set(b, c, float64(ls.Misses))
		}
	}
	return t.Normalized("BC").WithGeomeanRow(), nil
}

// MissImportance reproduces Figure 14: the fraction of instructions
// directly dependent on cache misses, estimated through Amdahl's law by
// halving the miss penalty (S_enhanced = 2) and measuring the overall
// speedup:
//
//	Fraction = S_e * (1 - 1/S_overall) / (S_e - 1)
func (s *Suite) MissImportance() (*stats.Table, error) {
	configs := sim.Configs()
	if err := s.ensure(s.allKeys(configs, false)); err != nil {
		return nil, err
	}
	if err := s.ensure(s.allKeys(configs, true)); err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 14: importance of cache misses", s.opt.Benchmarks, configs)
	t.Note = "estimated fraction of directly dependent instructions (Amdahl, S_enhanced=2)"
	const se = 2.0
	for _, b := range s.opt.Benchmarks {
		for _, c := range configs {
			full, err := s.result(b, c, false)
			if err != nil {
				return nil, err
			}
			half, err := s.result(b, c, true)
			if err != nil {
				return nil, err
			}
			sOverall := float64(full.CPU.Cycles) / float64(half.CPU.Cycles)
			frac := se * (1 - 1/sOverall) / (se - 1)
			t.Set(b, c, frac)
		}
	}
	return t.WithGeomeanRow(), nil
}

// ReadyQueue reproduces Figure 15: the average ready-queue length during
// cycles with at least one outstanding miss, for CPP relative to HAC. The
// paper reports improvements of up to 78% on the benchmarks with
// significant importance reduction.
func (s *Suite) ReadyQueue() (*stats.Table, error) {
	configs := []string{"HAC", "CPP"}
	if err := s.ensure(s.allKeys(configs, false)); err != nil {
		return nil, err
	}
	cols := []string{"HAC", "CPP", "increase"}
	t := stats.NewTable("Figure 15: avg ready-queue length in miss cycles", s.opt.Benchmarks, cols)
	t.Note = "queue length during miss cycles; increase = CPP/HAC - 1"
	for _, b := range s.opt.Benchmarks {
		hac, err := s.result(b, "HAC", false)
		if err != nil {
			return nil, err
		}
		cpp, err := s.result(b, "CPP", false)
		if err != nil {
			return nil, err
		}
		qh := hac.CPU.AvgReadyQueueInMiss()
		qc := cpp.CPU.AvgReadyQueueInMiss()
		t.Set(b, "HAC", qh)
		t.Set(b, "CPP", qc)
		if qh > 0 {
			t.Set(b, "increase", qc/qh-1)
		}
	}
	return t, nil
}

// InstructionMix is a supporting table: the opcode mix of each trace.
func (s *Suite) InstructionMix() (*stats.Table, error) {
	cols := []string{"load", "store", "branch", "alu", "fp", "total(k)"}
	t := stats.NewTable("Trace instruction mix", s.opt.Benchmarks, cols)
	for _, name := range s.opt.Benchmarks {
		p, err := s.program(name)
		if err != nil {
			return nil, err
		}
		m := isa.CountMix(p.Stream())
		t.Set(name, "load", m.Frac(isa.OpLoad))
		t.Set(name, "store", m.Frac(isa.OpStore))
		t.Set(name, "branch", m.Frac(isa.OpBranch))
		t.Set(name, "alu", m.Frac(isa.OpALU)+m.Frac(isa.OpMul)+m.Frac(isa.OpDiv))
		t.Set(name, "fp", m.Frac(isa.OpFALU)+m.Frac(isa.OpFMul)+m.Frac(isa.OpFDiv))
		t.Set(name, "total(k)", float64(m.Total)/1000)
	}
	return t, nil
}

// BaselineTable renders Figure 9, the experimental setup, as text.
func BaselineTable(p cpu.Params, lat memsys.Latencies) string {
	return fmt.Sprintf(`Figure 9: baseline experimental setup
  Issue width              %d issue, out-of-order
  IFQ size                 %d instr.
  Branch predictor         bimod, %d entries
  LD/ST queue              %d entries
  Func. units              %d ALUs, %d Mult/Div, %d mem ports, %d FALU, %d FMult/FDiv
  I-cache hit latency      %d cycle(s)
  I-cache miss latency     %d cycles
  L1 D-cache hit latency   %d cycle(s)
  L1 D-cache miss latency  %d cycles
  Memory access latency    %d cycles (L2 miss latency)
  L1 D-cache               8K direct-mapped, 64 B lines
  L2 cache                 64K 2-way, 128 B lines
`,
		p.IssueWidth, p.IFQSize, 1<<p.BranchPredBits, p.LSQSize,
		p.IntALU, p.IntMult, p.MemPorts, p.FPALU, p.FPMult,
		p.ICacheHitLat, p.ICacheMissLat,
		lat.L1Hit, lat.L2Hit, lat.Mem)
}

// relatedConfigs is the comparison set for the related-work studies: the
// baseline, the two prior designs the paper discusses in §5 (victim cache
// and line-level compression cache), conventional prefetching, and CPP.
func relatedConfigs() []string { return []string{"BC", "VC", "LCC", "BCP", "CPP"} }

// RelatedWork produces the §5 comparison the paper argues but does not
// measure: CPP against Jouppi's victim cache (VC) and the line-level
// compression cache (LCC). metric is "time" (cycles) or "traffic"
// (off-chip words); both are normalised to BC.
func (s *Suite) RelatedWork(metric string) (*stats.Table, error) {
	configs := relatedConfigs()
	if err := s.ensure(s.allKeys(configs, false)); err != nil {
		return nil, err
	}
	var title, note string
	switch metric {
	case "time":
		title, note = "Related work: execution time", "cycles, normalised to BC = 1.0"
	case "traffic":
		title, note = "Related work: memory traffic", "off-chip words, normalised to BC = 1.0"
	default:
		return nil, fmt.Errorf("experiments: unknown related-work metric %q (want time or traffic)", metric)
	}
	t := stats.NewTable(title, s.opt.Benchmarks, configs)
	t.Note = note
	for _, b := range s.opt.Benchmarks {
		for _, c := range configs {
			r, err := s.result(b, c, false)
			if err != nil {
				return nil, err
			}
			if metric == "time" {
				t.Set(b, c, float64(r.CPU.Cycles))
			} else {
				t.Set(b, c, r.Mem.MemTrafficWords())
			}
		}
	}
	return t.Normalized("BC").WithGeomeanRow(), nil
}

// Energy estimates each configuration's dynamic energy (linear event
// model, see internal/energy), normalised to BC. Compression caches were
// historically motivated by power (§5); this quantifies the comparison
// for all designs including the related-work ones.
func (s *Suite) Energy() (*stats.Table, error) {
	configs := append(append([]string(nil), sim.Configs()...), "VC", "LCC")
	if err := s.ensure(s.allKeys(configs, false)); err != nil {
		return nil, err
	}
	t := stats.NewTable("Energy estimate", s.opt.Benchmarks, configs)
	t.Note = "dynamic energy, linear event model, normalised to BC = 1.0"
	p := energy.Default()
	for _, b := range s.opt.Benchmarks {
		for _, c := range configs {
			r, err := s.result(b, c, false)
			if err != nil {
				return nil, err
			}
			comp, flags := energy.ForConfig(c)
			t.Set(b, c, energy.Estimate(&r.Mem, p, comp, flags).TotalNJ)
		}
	}
	return t.Normalized("BC").WithGeomeanRow(), nil
}
