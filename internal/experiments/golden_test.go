package experiments

// Golden regression pinning: the headline CPP-vs-BC metrics the paper
// reproduction reports (traffic reduction, L1 miss-rate reduction,
// speedup) are pinned to testdata/golden.json. The simulator is fully
// deterministic, so any drift here means a change to the modelled
// behaviour — intended changes regenerate the file with
//
//	go test ./internal/experiments -run TestGolden -update
//
// and the diff of golden.json becomes part of the review.

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.json from current simulation results")

// goldenTolerance is the allowed relative drift per metric. Runs are
// deterministic, so this only absorbs harmless cross-platform float
// variation; real model changes move these numbers by far more.
const goldenTolerance = 0.02

type goldenFile struct {
	Scale      int                           `json:"scale"`
	Benchmarks []string                      `json:"benchmarks"`
	Metrics    map[string]map[string]float64 `json:"metrics"`
}

// goldenMetrics computes the pinned CPP-vs-BC headline numbers for each
// benchmark row (including the geomean row).
func goldenMetrics(t *testing.T, s *Suite) map[string]map[string]float64 {
	t.Helper()
	traffic, err := s.MemoryTraffic()
	if err != nil {
		t.Fatal(err)
	}
	time, err := s.ExecutionTime()
	if err != nil {
		t.Fatal(err)
	}
	miss1, err := s.CacheMisses(1)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]map[string]float64{}
	for _, row := range traffic.Rows {
		out[row] = map[string]float64{
			"traffic_reduction": 1 - traffic.Get(row, "CPP"),
			"l1_miss_reduction": 1 - miss1.Get(row, "CPP"),
			"speedup":           1 / time.Get(row, "CPP"),
		}
	}
	return out
}

func TestGoldenHeadlineMetrics(t *testing.T) {
	benches := []string{"olden.treeadd", "olden.health", "olden.mst", "olden.perimeter"}
	s := NewSuite(Options{Scale: 1, Benchmarks: benches})
	got := goldenMetrics(t, s)
	path := filepath.Join("testdata", "golden.json")

	if *update {
		gf := goldenFile{Scale: 1, Benchmarks: benches, Metrics: got}
		data, err := json.MarshalIndent(gf, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if want.Scale != s.Options().Scale {
		t.Fatalf("golden file pinned at scale %d, test runs scale %d", want.Scale, s.Options().Scale)
	}
	for row, metrics := range want.Metrics {
		for name, w := range metrics {
			g, ok := got[row][name]
			if !ok {
				t.Errorf("%s/%s: missing from current results", row, name)
				continue
			}
			if math.Abs(g-w) > goldenTolerance*math.Max(math.Abs(w), 0.05) {
				t.Errorf("%s/%s = %.4f, golden %.4f (tolerance %.0f%%); if intended, rerun with -update",
					row, name, g, w, 100*goldenTolerance)
			}
		}
	}
	for row := range got {
		if _, ok := want.Metrics[row]; !ok {
			t.Errorf("%s: present in results but not in golden file; rerun with -update", row)
		}
	}

	// Independent of exact pinned values, the paper's headline direction
	// must hold: CPP moves less off-chip data than BC on the geomean.
	if got["geomean"]["traffic_reduction"] <= 0 {
		t.Errorf("geomean traffic reduction %.4f, want > 0 (CPP must beat BC)",
			got["geomean"]["traffic_reduction"])
	}
}
