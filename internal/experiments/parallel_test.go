package experiments

import (
	"testing"
)

// TestSchemeTrafficParallelDeterminism: the compressor-zoo sweep must be
// byte-identical (CSV and rendering) whatever the worker count — the
// scheduler may execute cells in any order, but each cell lands in its
// own slot. This parameterises the determinism check over every
// registered compression scheme, since each scheme is a column.
func TestSchemeTrafficParallelDeterminism(t *testing.T) {
	seq, err := SchemeTraffic(1, 1)
	if err != nil {
		t.Fatalf("sequential SchemeTraffic: %v", err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := SchemeTraffic(1, workers)
		if err != nil {
			t.Fatalf("SchemeTraffic with %d workers: %v", workers, err)
		}
		if got, want := par.CSV(), seq.CSV(); got != want {
			t.Errorf("workers=%d: CSV diverged from sequential run\nseq:\n%s\npar:\n%s",
				workers, want, got)
		}
	}
}

// TestSuiteParallelDeterminism: full pipeline-timing sweeps through the
// Suite produce byte-identical figure tables for any worker count.
func TestSuiteParallelDeterminism(t *testing.T) {
	benches := []string{"olden.health", "spec2000.181.mcf"}
	tables := func(workers int) (string, string) {
		t.Helper()
		s := NewSuite(Options{Scale: 1, Benchmarks: benches, Workers: workers})
		traffic, err := s.MemoryTraffic()
		if err != nil {
			t.Fatalf("workers=%d: MemoryTraffic: %v", workers, err)
		}
		time, err := s.ExecutionTime()
		if err != nil {
			t.Fatalf("workers=%d: ExecutionTime: %v", workers, err)
		}
		return traffic.CSV(), time.CSV()
	}
	seqTraffic, seqTime := tables(1)
	parTraffic, parTime := tables(4)
	if parTraffic != seqTraffic {
		t.Errorf("memory-traffic table diverged between 1 and 4 workers\nseq:\n%s\npar:\n%s",
			seqTraffic, parTraffic)
	}
	if parTime != seqTime {
		t.Errorf("execution-time table diverged between 1 and 4 workers\nseq:\n%s\npar:\n%s",
			seqTime, parTime)
	}
}
