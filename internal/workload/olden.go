package workload

import (
	"fmt"
	"math"

	"cppcache/internal/isa"
	"cppcache/internal/mach"
)

// The Olden benchmarks. Each function reproduces the original program's
// data-structure shape and traversal pattern at a reduced scale; the
// comment on each records the substitution.

// code-region bases, one per synthetic routine, so that the branch
// predictor and I-cache see stable PCs.
const (
	pcBuild mach.Addr = 0x0040_0000
	pcWalk  mach.Addr = 0x0041_0000
	pcLoop  mach.Addr = 0x0042_0000
	pcAux   mach.Addr = 0x0043_0000
	pcLoop2 mach.Addr = 0x0044_0000
	pcLoop3 mach.Addr = 0x0045_0000
)

// fbits returns the bit pattern of a float in [1,2): incompressible, like
// the double payloads of the FP-heavy Olden codes.
func fbits(b *B) mach.Word {
	return math.Float32bits(1 + b.Rand().Float32())
}

// TreeAdd reproduces olden.treeadd: build a perfect binary tree of
// four-word nodes {left, right, value, pad} and recursively sum the
// values. Substitution: same structure and traversal, tree depth scaled
// to ~16x the L2 capacity instead of the reference 1M nodes.
func TreeAdd(scale int) *Program {
	b := NewBuilder(0x7ee0)
	depth := 14 // 16K nodes x 16 B = 256K: four times the L2
	walks := 1 + scale/2

	type node struct{ addr mach.Addr }
	var build func(d int) mach.Addr
	build = func(d int) mach.Addr {
		if d == 0 {
			return 0
		}
		n := b.ScatterAlloc(8, 16, 16)
		l := build(d - 1)
		r := build(d - 1)
		b.SetPC(pcBuild)
		b.Store(n+0, l, NoReg, NoReg)
		b.Store(n+4, r, NoReg, NoReg)
		b.Store(n+8, 1, NoReg, NoReg)                                        // treeadd stores value 1 per node
		b.Store(n+12, b.Rand().Uint32()&0x0FFFFFFF|0x00808000, NoReg, NoReg) // payload word: incompressible
		return n
	}
	root := build(depth)

	var walk func(addr mach.Addr, dep Reg) Reg
	walk = func(addr mach.Addr, dep Reg) Reg {
		b.SetPC(pcWalk)
		l := b.Load(addr+0, dep)
		lAddr := b.image.ReadWord(addr + 0)
		b.Branch(l, lAddr != 0)
		var sum Reg = NoReg
		if lAddr != 0 {
			sum = walk(lAddr, l)
		}
		b.SetPC(pcWalk + 0x40)
		r := b.Load(addr+4, dep)
		rAddr := b.image.ReadWord(addr + 4)
		b.Branch(r, rAddr != 0)
		if rAddr != 0 {
			rs := walk(rAddr, r)
			if sum == NoReg {
				sum = rs
			} else {
				sum = b.ALU(sum, rs)
			}
		}
		b.SetPC(pcWalk + 0x80)
		v := b.Load(addr+8, dep)
		if sum == NoReg {
			return v
		}
		return b.ALU(sum, v)
	}
	for i := 0; i < walks; i++ {
		walk(root, NoReg)
	}
	return b.Program("olden.treeadd")
}

// Bisort reproduces olden.bisort: a binary tree of integers sorted by
// repeated bitonic merge passes that compare parent and child values and
// swap them in place. Substitution: the full bitonic recursion is
// approximated by value-swap sweeps, which preserve the read-compare-
// write-both pattern and data-dependent branches.
func Bisort(scale int) *Program {
	b := NewBuilder(0xb150)
	nNodes := 8192 // 128K of nodes
	passes := 1 + scale/2

	// Build a binary search tree by inserting full-range random keys.
	// Allocation order is insertion order, but the tree shape — and so
	// every later traversal — is dictated by the keys, which is what
	// decouples traversal order from address order in the original.
	type node struct{ addr mach.Addr }
	var rootAddr mach.Addr
	for k := 0; k < nNodes; k++ {
		key := b.Rand().Uint32()
		n := b.ScatterAlloc(8, 16, 16)
		b.SetPC(pcBuild)
		b.Store(n+0, 0, NoReg, NoReg)
		b.Store(n+4, 0, NoReg, NoReg)
		b.Store(n+8, key, NoReg, NoReg)
		if rootAddr == 0 {
			rootAddr = n
			continue
		}
		// Walk down comparing keys; the walk itself emits the loads an
		// insertion performs.
		cur := rootAddr
		var dep Reg = NoReg
		for steps := 0; ; steps++ {
			b.SetPC(pcAux)
			v := b.Load(cur+8, dep)
			cv := b.image.ReadWord(cur + 8)
			goLeft := key < cv
			b.Branch(v, goLeft)
			off := mach.Addr(4)
			if goLeft {
				off = 0
			}
			child := b.Load(cur+off, dep)
			ca := b.image.ReadWord(cur + off)
			if ca == 0 || steps > 64 {
				b.Store(cur+off, n, dep, NoReg)
				break
			}
			cur, dep = ca, child
		}
	}

	// Bitonic-flavoured sweeps: compare parent and child values, swap in
	// place when out of order.
	var sweep func(addr mach.Addr, dep Reg, up bool)
	sweep = func(addr mach.Addr, dep Reg, up bool) {
		b.SetPC(pcWalk)
		v := b.Load(addr+8, dep)
		for off := mach.Addr(0); off <= 4; off += 4 {
			child := b.image.ReadWord(addr + off)
			c := b.Load(addr+off, dep)
			b.Branch(c, child != 0)
			if child == 0 {
				continue
			}
			b.SetPC(pcWalk + 0x60)
			cv := b.Load(child+8, c)
			cmp := b.ALU(v, cv)
			vv := b.image.ReadWord(addr + 8)
			cvv := b.image.ReadWord(child + 8)
			swap := (vv > cvv) == up
			b.Branch(cmp, swap)
			if swap {
				b.Store(addr+8, cvv, dep, cv)
				b.Store(child+8, vv, c, v)
				v = cv
			}
			sweep(child, c, !up)
			b.SetPC(pcWalk + 0xC0)
		}
	}
	for pass := 0; pass < passes; pass++ {
		sweep(rootAddr, NoReg, pass%2 == 0)
	}
	return b.Program("olden.bisort")
}

// Perimeter reproduces olden.perimeter: build a quadtree over a random
// image and compute the perimeter of the black region by traversing the
// tree with data-dependent branches on node colour. Substitution: the
// neighbour-finding is approximated by a colour-weighted traversal, which
// keeps the structure (five-word nodes, 4-way fan-out, colour tests) that
// drives the cache behaviour.
func Perimeter(scale int) *Program {
	b := NewBuilder(0x9e71)
	depth := 7 + log2min0(scale)/2
	passes := 2 * scale

	const (
		white = 0
		black = 1
		grey  = 2
	)
	var build func(d int) mach.Addr
	build = func(d int) mach.Addr {
		n := b.ScatterAlloc(4, 24, 8) // colour + 4 children + pad
		if d == 0 || b.Rand().Intn(8) == 0 {
			colour := mach.Word(b.Rand().Intn(2)) // leaf: white or black
			b.SetPC(pcBuild)
			b.Store(n+0, colour, NoReg, NoReg)
			for i := mach.Addr(1); i <= 4; i++ {
				b.Store(n+i*4, 0, NoReg, NoReg)
			}
			return n
		}
		kids := [4]mach.Addr{}
		for i := range kids {
			kids[i] = build(d - 1)
		}
		b.SetPC(pcBuild + 0x40)
		b.Store(n+0, grey, NoReg, NoReg)
		for i, k := range kids {
			b.Store(n+mach.Addr(4+i*4), k, NoReg, NoReg)
		}
		return n
	}
	root := build(depth)

	var walk func(addr mach.Addr, dep Reg) Reg
	walk = func(addr mach.Addr, dep Reg) Reg {
		b.SetPC(pcWalk)
		colour := b.Load(addr+0, dep)
		cv := b.image.ReadWord(addr + 0)
		b.Branch(colour, cv == grey)
		if cv != grey {
			// Leaf contribution: a couple of ALU ops stand in for the
			// four neighbour checks.
			return b.ALU(colour, NoReg)
		}
		var sum Reg = NoReg
		for i := mach.Addr(1); i <= 4; i++ {
			b.SetPC(pcWalk + 0x80 + i*0x20)
			k := b.Load(addr+i*4, dep)
			kAddr := b.image.ReadWord(addr + i*4)
			if kAddr == 0 {
				continue
			}
			s := walk(kAddr, k)
			if sum == NoReg {
				sum = s
			} else {
				sum = b.ALU(sum, s)
			}
		}
		return sum
	}
	for p := 0; p < passes; p++ {
		walk(root, NoReg)
	}
	return b.Program("olden.perimeter")
}

// Health reproduces olden.health: a 4-ary tree of villages, each with a
// linked list of patients that is traversed every time step; patients age
// in place and occasionally transfer up to the parent village. This is
// the paper's Figure 5 pattern writ large: one node per cache line,
// next-pointer chase with a rarely-needed payload word. Substitution:
// fixed transfer probability instead of the original's per-village
// seeding; same list mechanics.
func Health(scale int) *Program {
	b := NewBuilder(0x4ea1)
	levels := 4
	steps := 3 * scale

	type village struct {
		addr     mach.Addr // {listHead, parent, id, pad}
		parent   *village
		children []*village
	}
	var mkVillage func(parent *village, level int) *village
	var villages []*village
	mkVillage = func(parent *village, level int) *village {
		v := &village{addr: b.Alloc(16, 16), parent: parent}
		villages = append(villages, v)
		b.SetPC(pcBuild)
		b.Store(v.addr+0, 0, NoReg, NoReg) // empty patient list
		pa := mach.Addr(0)
		if parent != nil {
			pa = parent.addr
		}
		b.Store(v.addr+4, pa, NoReg, NoReg)
		b.Store(v.addr+8, mach.Word(len(villages)), NoReg, NoReg)
		if level > 0 {
			for i := 0; i < 4; i++ {
				v.children = append(v.children, mkVillage(v, level-1))
			}
		}
		return v
	}
	root := mkVillage(nil, levels)

	// Patient node, one L1 line each: {next, village, age, status} padded
	// to 64 bytes like the allocator-aligned nodes in Figure 5.
	newPatient := func(v *village) mach.Addr {
		p := b.ScatterAlloc(4, 64, 64)
		b.SetPC(pcAux)
		head := b.image.ReadWord(v.addr + 0)
		b.Store(p+0, head, NoReg, NoReg)
		b.Store(p+4, v.addr, NoReg, NoReg)
		b.Store(p+8, 0, NoReg, NoReg)
		b.Store(p+12, mach.Word(b.Rand().Intn(4)), NoReg, NoReg)
		b.Store(v.addr+0, p, NoReg, NoReg)
		return p
	}
	for _, v := range villages {
		n := 4 + b.Rand().Intn(12)
		for i := 0; i < n; i++ {
			newPatient(v)
		}
	}

	// Simulation steps.
	for s := 0; s < steps; s++ {
		if healthStepHook != nil {
			listed := 0
			seen := map[mach.Addr]mach.Addr{}
			for _, v := range villages {
				for cur := b.image.ReadWord(v.addr + 0); cur != 0; cur = b.image.ReadWord(cur + 0) {
					listed++
					if other, dup := seen[cur]; dup {
						panic(fmt.Sprintf("step %d: patient %#x in lists of villages %#x and %#x", s, cur, other, v.addr))
					}
					seen[cur] = v.addr
					if listed > 1_000_000 {
						healthStepHook(s, b.Len(), -1)
						return b.Program("olden.health")
					}
				}
			}
			healthStepHook(s, b.Len(), listed)
		}
		for _, v := range villages {
			b.SetPC(pcLoop)
			headReg := b.Load(v.addr+0, NoReg)
			cur := b.image.ReadWord(v.addr + 0)
			dep := headReg
			prev := mach.Addr(0)
			var prevDep Reg = NoReg
			for cur != 0 {
				b.SetPC(pcLoop + 0x40)
				b.Branch(dep, true) // list-not-empty check
				age := b.Load(cur+8, dep)
				aged := b.ALU(age, NoReg)
				b.Store(cur+8, b.image.ReadWord(cur+8)+1, dep, aged)
				status := b.Load(cur+12, dep)
				next := b.Load(cur+0, dep)
				nextAddr := b.image.ReadWord(cur + 0)
				transfer := v.parent != nil && b.Rand().Intn(16) == 0
				b.Branch(status, transfer)
				if transfer {
					// Unlink and push onto the parent's list.
					b.SetPC(pcLoop2)
					if prev == 0 {
						b.Store(v.addr+0, nextAddr, NoReg, next)
					} else {
						b.Store(prev+0, nextAddr, prevDep, next)
					}
					pHead := b.image.ReadWord(v.parent.addr + 0)
					ph := b.Load(v.parent.addr+0, NoReg)
					b.Store(cur+0, pHead, dep, ph)
					b.Store(v.parent.addr+0, cur, NoReg, dep)
					b.Store(cur+4, v.parent.addr, dep, NoReg)
				} else {
					prev, prevDep = cur, dep
				}
				cur, dep = nextAddr, next
			}
			b.SetPC(pcLoop + 0x80)
			b.Branch(dep, false) // loop exit
		}
	}
	_ = root
	return b.Program("olden.health")
}

// log2min0 returns floor(log2(max(scale,1))).
func log2min0(scale int) int {
	if scale < 1 {
		scale = 1
	}
	n := 0
	for scale > 1 {
		scale >>= 1
		n++
	}
	return n
}

// fpOp emits a floating-point op of the given kind for FP-heavy kernels.
func fpOp(b *B, op isa.Op, s1, s2 Reg) Reg { return b.Op(op, s1, s2) }
