package workload

import (
	"testing"
)

// buildSmall builds a distinct tiny program per call (identity-keyed
// store entries).
func buildSmall(t *testing.T, seed int64) *Program {
	t.Helper()
	b := NewBuilder(seed)
	b.SetPC(0x400)
	a := b.Alloc(64, 64)
	r := b.Const(uint32(seed))
	b.Store(a, uint32(seed), NoReg, r)
	v := b.Load(a, NoReg)
	b.Branch(v, seed%2 == 0)
	return b.Program("tiny")
}

func TestDecodedMatchesTrace(t *testing.T) {
	p := buildSmall(t, 3)
	d := p.Decoded()
	if d.Len() != p.Len() {
		t.Fatalf("decoded len %d != trace len %d", d.Len(), p.Len())
	}
	for i, want := range p.Insts() {
		if got := d.At(i); got != want {
			t.Fatalf("inst %d: decoded %+v != trace %+v", i, got, want)
		}
	}
}

func TestDecodedStoreHitsAndEviction(t *testing.T) {
	old := SetDecodedBudget(1 << 20)
	defer SetDecodedBudget(old)
	base := DecodedStoreStats()

	p := buildSmall(t, 1)
	d1 := p.Decoded()
	d2 := p.Decoded()
	if d1 != d2 {
		t.Fatalf("repeated Decoded() returned distinct buffers")
	}
	s := DecodedStoreStats()
	if hits := s.Hits - base.Hits; hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}

	// A budget smaller than one trace still serves decodes, but retains
	// nothing and evicts what was cached.
	SetDecodedBudget(1)
	s = DecodedStoreStats()
	if s.UsedBytes != 0 {
		t.Fatalf("used %d bytes after shrinking budget to 1", s.UsedBytes)
	}
	q := buildSmall(t, 2)
	if q.Decoded().Len() != q.Len() {
		t.Fatalf("over-budget decode returned wrong trace")
	}
	if s := DecodedStoreStats(); s.UsedBytes != 0 {
		t.Fatalf("over-budget decode was retained (%d bytes)", s.UsedBytes)
	}
}

func TestDecodedStoreLRUOrder(t *testing.T) {
	p1, p2 := buildSmall(t, 10), buildSmall(t, 11)
	bytes := p1.Decoded().Bytes() // also caches p1 under the old budget
	// Budget for exactly two entries, then touch p1 so p2 is the LRU
	// victim when a third arrives.
	old := SetDecodedBudget(2 * bytes)
	defer SetDecodedBudget(old)
	d1 := p1.Decoded()
	d2 := p2.Decoded()
	if d1 == d2 {
		t.Fatal("distinct programs shared a decode")
	}
	p1.Decoded() // refresh p1
	p3 := buildSmall(t, 12)
	p3.Decoded() // evicts p2
	if got := p1.Decoded(); got != d1 {
		t.Fatal("most-recently-used entry was evicted")
	}
	if got := p2.Decoded(); got == d2 {
		t.Fatal("least-recently-used entry survived over-budget insert")
	}
}

func TestReplayStreamsProgram(t *testing.T) {
	p := buildSmall(t, 4)
	r := p.Replay()
	s := p.Stream()
	for {
		ri, rok := r.Next()
		si, sok := s.Next()
		if rok != sok {
			t.Fatalf("length mismatch")
		}
		if !rok {
			break
		}
		if ri != si {
			t.Fatalf("replay %+v != stream %+v", ri, si)
		}
	}
}
