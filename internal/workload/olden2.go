package workload

import (
	"cppcache/internal/isa"
	"cppcache/internal/mach"
)

// MST reproduces olden.mst: vertices in a list, each owning a small hash
// table of edge weights; Prim's algorithm repeatedly scans the remaining
// vertices and probes their hash tables. Substitution: the original's
// modular hash is kept (multiply + mask), graph size scaled down; the
// bucket-chain walk and small integer weights are preserved.
func MST(scale int) *Program {
	b := NewBuilder(0x3157)
	nv := 1536 // ~200 KB of vertices, tables and edge nodes
	const buckets = 8

	// vertex: {next, hashTable ptr, key, dist}; table: buckets x {head}.
	// bucket node: {next, key, weight, pad}
	type vertex struct {
		addr  mach.Addr
		table mach.Addr
	}
	verts := make([]vertex, nv)
	for i := range verts {
		v := &verts[i]
		v.addr = b.Alloc(16, 16)
		v.table = b.Alloc(buckets*4, 16)
		b.SetPC(pcBuild)
		next := mach.Addr(0)
		b.Store(v.addr+0, next, NoReg, NoReg)
		b.Store(v.addr+4, v.table, NoReg, NoReg)
		b.Store(v.addr+8, mach.Word(i), NoReg, NoReg)
		b.Store(v.addr+12, 0x7FFF, NoReg, NoReg)
		for j := 0; j < buckets; j++ {
			b.Store(v.table+mach.Addr(j*4), 0, NoReg, NoReg)
		}
	}
	// Link vertices and insert edges to a few neighbours each.
	for i := range verts {
		if i+1 < nv {
			b.Store(verts[i].addr+0, verts[i+1].addr, NoReg, NoReg)
		}
		deg := 4
		for d := 1; d <= deg; d++ {
			j := (i + d) % nv
			w := mach.Word(1 + b.Rand().Intn(1024))
			bucket := verts[i].table + mach.Addr((j%buckets)*4)
			node := b.ScatterAlloc(4, 16, 16)
			b.SetPC(pcBuild + 0x40)
			head := b.image.ReadWord(bucket)
			b.Store(node+0, head, NoReg, NoReg)
			b.Store(node+4, mach.Word(j), NoReg, NoReg)
			b.Store(node+8, w, NoReg, NoReg)
			b.Store(bucket, node, NoReg, NoReg)
		}
	}

	// Prim main loop: nv-1 rounds; each scans the vertex list, probing
	// the hash table of each remaining vertex for the frontier key.
	inTree := make([]bool, nv)
	inTree[0] = true
	frontier := 0
	rounds := 2 * scale
	if rounds > nv-1 {
		rounds = nv - 1
	}
	for r := 0; r < rounds; r++ {
		best, bestW := -1, mach.Word(1<<31)
		cur := verts[0].addr
		curIdx := 0
		var dep Reg = NoReg
		for cur != 0 {
			b.SetPC(pcLoop)
			b.Branch(dep, true)
			if !inTree[curIdx] {
				tbl := b.Load(cur+4, dep)
				tblAddr := b.image.ReadWord(cur + 4)
				h := b.Op(isa.OpMul, tbl, NoReg) // hash of frontier key
				bucket := tblAddr + mach.Addr((frontier%8)*4)
				node := b.Load(bucket, h)
				nAddr := b.image.ReadWord(bucket)
				for nAddr != 0 {
					b.SetPC(pcLoop2)
					b.Branch(node, true)
					key := b.Load(nAddr+4, node)
					match := b.image.ReadWord(nAddr+4) == mach.Word(frontier)
					b.Branch(key, match)
					if match {
						w := b.Load(nAddr+8, node)
						wv := b.image.ReadWord(nAddr + 8)
						b.Branch(w, wv < bestW)
						if wv < bestW {
							bestW, best = wv, curIdx
						}
						break
					}
					node = b.Load(nAddr+0, node)
					nAddr = b.image.ReadWord(nAddr + 0)
				}
				b.SetPC(pcLoop2 + 0x40)
				b.Branch(node, false)
			}
			next := b.Load(cur+0, dep)
			cur = b.image.ReadWord(cur + 0)
			dep = next
			curIdx++
		}
		b.SetPC(pcLoop + 0x80)
		b.Branch(dep, false)
		if best < 0 {
			for i, t := range inTree {
				if !t {
					best = i
					break
				}
			}
			if best < 0 {
				break
			}
		}
		inTree[best] = true
		frontier = best
	}
	return b.Program("olden.mst")
}

// TSP reproduces olden.tsp: cities in a binary tree carrying float
// coordinates, merged into a tour held as a circular doubly linked list.
// Substitution: the closest-point heuristic is approximated by a
// coordinate-distance sweep; float payloads keep the incompressible value
// mix that makes tsp one of the least compressible programs in Figure 3.
func TSP(scale int) *Program {
	b := NewBuilder(0x7599)
	depth := 13 // 8K cities x 32 B = 256K
	passes := scale

	// city: {left, right, x, y, next, prev, pad, pad} = 32 bytes
	var cities []mach.Addr
	var build func(d int) mach.Addr
	build = func(d int) mach.Addr {
		if d == 0 {
			return 0
		}
		n := b.ScatterAlloc(8, 32, 32)
		cities = append(cities, n)
		l := build(d - 1)
		r := build(d - 1)
		b.SetPC(pcBuild)
		b.Store(n+0, l, NoReg, NoReg)
		b.Store(n+4, r, NoReg, NoReg)
		b.Store(n+8, fbits(b), NoReg, NoReg)
		b.Store(n+12, fbits(b), NoReg, NoReg)
		b.Store(n+16, 0, NoReg, NoReg)
		b.Store(n+20, 0, NoReg, NoReg)
		return n
	}
	root := build(depth)

	// Tour construction: the closest-point heuristic visits cities in an
	// order dictated by their random coordinates, not their addresses.
	// Model that with a coordinate-seeded shuffle, linking consecutive
	// tour cities and computing their distances.
	order := append([]mach.Addr(nil), cities...)
	b.Rand().Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	var last mach.Addr
	var lastDep Reg = NoReg
	for _, addr := range order {
		b.SetPC(pcWalk)
		x := b.Load(addr+8, NoReg)
		y := b.Load(addr+12, NoReg)
		if last != 0 {
			lx := b.Load(last+8, lastDep)
			ly := b.Load(last+12, lastDep)
			dx := fpOp(b, isa.OpFALU, x, lx)
			dy := fpOp(b, isa.OpFALU, y, ly)
			d2x := fpOp(b, isa.OpFMul, dx, dx)
			d2y := fpOp(b, isa.OpFMul, dy, dy)
			dist := fpOp(b, isa.OpFALU, d2x, d2y)
			b.Branch(dist, b.Rand().Intn(2) == 0)
			b.Store(last+16, addr, lastDep, NoReg)
			b.Store(addr+20, last, NoReg, lastDep)
		}
		last, lastDep = addr, x
	}
	_ = root

	// Tour improvement sweeps over the linked list (2-opt flavoured).
	for pass := 0; pass < passes; pass++ {
		cur := order[0]
		var dep Reg = NoReg
		for i := 0; i < len(cities)-1; i++ {
			b.SetPC(pcLoop)
			b.Branch(dep, true)
			nxt := b.Load(cur+16, dep)
			na := b.image.ReadWord(cur + 16)
			if na == 0 {
				break
			}
			x1 := b.Load(cur+8, dep)
			x2 := b.Load(na+8, nxt)
			d := fpOp(b, isa.OpFALU, x1, x2)
			b.Branch(d, false)
			cur, dep = na, nxt
		}
		b.SetPC(pcLoop + 0x40)
		b.Branch(NoReg, false)
	}
	return b.Program("olden.tsp")
}

// EM3D reproduces olden.em3d: a bipartite graph of E and H field nodes;
// each relaxation step recomputes every node's value from its neighbour
// values scaled by per-edge coefficients. Substitution: degrees fixed at
// the original's default (2), float values/coefficients keep the value
// mix; the node lists are built in allocation order like the original's
// local lists.
func EM3D(scale int) *Program {
	b := NewBuilder(0xe3d)
	n := 4096 // 256 KB across both node classes
	const degree = 2
	iters := 1 + scale/4

	// node: {value, next, from[2] ptrs, coeff[2] floats, pad, pad}=32B
	mk := func() []mach.Addr {
		nodes := make([]mach.Addr, n)
		for i := range nodes {
			nodes[i] = b.ScatterAlloc(8, 32, 32)
		}
		return nodes
	}
	eNodes, hNodes := mk(), mk()
	wire := func(from, to []mach.Addr) {
		for i, a := range to {
			b.SetPC(pcBuild)
			b.Store(a+0, fbits(b), NoReg, NoReg)
			next := mach.Addr(0)
			if i+1 < len(to) {
				next = to[i+1]
			}
			b.Store(a+4, next, NoReg, NoReg)
			for d := 0; d < degree; d++ {
				src := from[b.Rand().Intn(len(from))]
				b.Store(a+mach.Addr(8+d*4), src, NoReg, NoReg)
				b.Store(a+mach.Addr(16+d*4), fbits(b), NoReg, NoReg)
			}
		}
	}
	wire(hNodes, eNodes)
	wire(eNodes, hNodes)

	relax := func(list []mach.Addr) {
		cur := list[0]
		var dep Reg = NoReg
		for cur != 0 {
			b.SetPC(pcLoop)
			b.Branch(dep, true)
			acc := b.Load(cur+0, dep)
			for d := 0; d < degree; d++ {
				fp := b.Load(cur+mach.Addr(8+d*4), dep)
				fAddr := b.image.ReadWord(cur + mach.Addr(8+d*4))
				fv := b.Load(fAddr+0, fp)
				co := b.Load(cur+mach.Addr(16+d*4), dep)
				prod := fpOp(b, isa.OpFMul, fv, co)
				acc = fpOp(b, isa.OpFALU, acc, prod)
			}
			b.Store(cur+0, fbits(b), dep, acc)
			nxt := b.Load(cur+4, dep)
			cur = b.image.ReadWord(cur + 4)
			dep = nxt
		}
		b.SetPC(pcLoop + 0x40)
		b.Branch(dep, false)
	}
	for i := 0; i < iters; i++ {
		relax(eNodes)
		relax(hNodes)
	}
	return b.Program("olden.em3d")
}

// Power reproduces olden.power: a fixed fan-out distribution tree (root
// -> laterals -> branches -> leaves) walked bottom-up every iteration
// with floating-point demand computations at each node. Substitution:
// the Newton step at the root is elided; the tree shape, FP mix and
// pointer traversal match.
func Power(scale int) *Program {
	b := NewBuilder(0x90e4)
	laterals := 10
	branches := 8
	leaves := 12
	iters := 3 * scale

	// node: {child, sibling, P (float), Q (float)} = 16B
	mkNode := func() mach.Addr {
		n := b.ScatterAlloc(8, 16, 16)
		b.SetPC(pcBuild)
		b.Store(n+0, 0, NoReg, NoReg)
		b.Store(n+4, 0, NoReg, NoReg)
		b.Store(n+8, fbits(b), NoReg, NoReg)
		b.Store(n+12, fbits(b), NoReg, NoReg)
		return n
	}
	root := mkNode()
	var prevLat mach.Addr
	for l := 0; l < laterals; l++ {
		lat := mkNode()
		if prevLat == 0 {
			b.Store(root+0, lat, NoReg, NoReg)
		} else {
			b.Store(prevLat+4, lat, NoReg, NoReg)
		}
		prevLat = lat
		var prevBr mach.Addr
		for br := 0; br < branches; br++ {
			brn := mkNode()
			if prevBr == 0 {
				b.Store(lat+0, brn, NoReg, NoReg)
			} else {
				b.Store(prevBr+4, brn, NoReg, NoReg)
			}
			prevBr = brn
			var prevLeaf mach.Addr
			for lf := 0; lf < leaves; lf++ {
				leaf := mkNode()
				if prevLeaf == 0 {
					b.Store(brn+0, leaf, NoReg, NoReg)
				} else {
					b.Store(prevLeaf+4, leaf, NoReg, NoReg)
				}
				prevLeaf = leaf
			}
		}
	}

	// Bottom-up demand computation, repeated.
	var compute func(addr mach.Addr, dep Reg) (Reg, Reg)
	compute = func(addr mach.Addr, dep Reg) (Reg, Reg) {
		b.SetPC(pcWalk)
		p := b.Load(addr+8, dep)
		q := b.Load(addr+12, dep)
		child := b.Load(addr+0, dep)
		cAddr := b.image.ReadWord(addr + 0)
		b.Branch(child, cAddr != 0)
		for cAddr != 0 {
			cp, cq := compute(cAddr, child)
			b.SetPC(pcWalk + 0x40)
			p = fpOp(b, isa.OpFALU, p, cp)
			q = fpOp(b, isa.OpFALU, q, cq)
			sib := b.Load(cAddr+4, child)
			nAddr := b.image.ReadWord(cAddr + 4)
			b.Branch(sib, nAddr != 0)
			cAddr, child = nAddr, sib
		}
		loss := fpOp(b, isa.OpFMul, p, p)
		p = fpOp(b, isa.OpFALU, p, loss)
		div := fpOp(b, isa.OpFDiv, q, p)
		b.Store(addr+8, fbits(b), dep, p)
		b.Store(addr+12, fbits(b), dep, div)
		return p, q
	}
	for i := 0; i < iters; i++ {
		compute(root, NoReg)
	}
	return b.Program("olden.power")
}
