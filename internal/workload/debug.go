package workload

import "fmt"

// HealthDebug builds olden.health, reporting per-step trace growth. It is
// a development aid.
func HealthDebug(scale int) string {
	out := ""
	healthStepHook = func(step, insts, patients int) {
		out += fmt.Sprintf("step %d: insts=%d listed=%d\n", step, insts, patients)
	}
	defer func() { healthStepHook = nil }()
	Health(scale)
	return out
}

var healthStepHook func(step, insts, listed int)
