package workload

import "sync"

// Programs are immutable once built (the trace is replayed, never
// mutated, and simulations run against their own main memory, not the
// builder image), so one built trace can back any number of concurrent
// runs. BuildShared memoises builds by (name, scale): the experiment
// drivers and benchmark harness construct suites repeatedly, and trace
// generation is a significant fraction of a short run's wall clock.
var (
	sharedMu sync.Mutex
	shared   = map[progKey]*Program{}
)

type progKey struct {
	name  string
	scale int
}

// BuildShared returns the (name, scale) program, building it on first use
// and returning the cached instance afterwards. The returned Program must
// be treated as read-only, which every simulator path already honours.
func BuildShared(name string, scale int) (*Program, error) {
	p, _, err := BuildSharedCached(name, scale)
	return p, err
}

// BuildSharedCached is BuildShared plus whether the program came from the
// memo cache (true) or was built by this call (false). The tracing layer
// records the answer as a span event: a cache miss explains tens of
// milliseconds of decode time that a hit never pays.
func BuildSharedCached(name string, scale int) (*Program, bool, error) {
	bm, err := ByName(name)
	if err != nil {
		return nil, false, err
	}
	k := progKey{name, scale}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if p, ok := shared[k]; ok {
		return p, true, nil
	}
	p := bm.Build(scale)
	shared[k] = p
	return p, false, nil
}
