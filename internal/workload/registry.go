package workload

import (
	"fmt"
	"sort"
)

// Benchmark describes one of the paper's 14 programs and how to generate
// its trace.
type Benchmark struct {
	Name         string // e.g. "olden.health"
	Suite        string // "olden", "spec95", "spec2000"
	Build        func(scale int) *Program
	Description  string
	Substitution string // what replaced the reference binary/input
}

// DefaultScale is the trace scale used by the experiment drivers; tests
// and quick runs use 1.
const DefaultScale = 4

var registry = []Benchmark{
	{
		Name: "olden.bisort", Suite: "olden", Build: Bisort,
		Description:  "binary tree of integers sorted by bitonic value-swap sweeps",
		Substitution: "full bitonic recursion approximated by compare-and-swap sweeps",
	},
	{
		Name: "olden.em3d", Suite: "olden", Build: EM3D,
		Description:  "bipartite E/H field graph relaxation with per-edge coefficients",
		Substitution: "synthetic graph, fixed degree 2, float payloads",
	},
	{
		Name: "olden.health", Suite: "olden", Build: Health,
		Description:  "village hierarchy with per-village patient lists (Figure 5 pattern)",
		Substitution: "fixed transfer probability instead of per-village seeding",
	},
	{
		Name: "olden.mst", Suite: "olden", Build: MST,
		Description:  "Prim's MST over per-vertex hash tables of edge weights",
		Substitution: "scaled-down graph, same hash-probe loop",
	},
	{
		Name: "olden.perimeter", Suite: "olden", Build: Perimeter,
		Description:  "quadtree image perimeter with colour-dependent traversal",
		Substitution: "neighbour finding approximated by colour-weighted walk",
	},
	{
		Name: "olden.power", Suite: "olden", Build: Power,
		Description:  "power-system demand propagation over a fixed fan-out tree",
		Substitution: "root Newton step elided; same tree and FP mix",
	},
	{
		Name: "olden.treeadd", Suite: "olden", Build: TreeAdd,
		Description:  "recursive sum over a binary tree of four-word nodes",
		Substitution: "reduced depth; same structure and traversal",
	},
	{
		Name: "olden.tsp", Suite: "olden", Build: TSP,
		Description:  "TSP tour construction over a city tree with float coordinates",
		Substitution: "closest-point heuristic approximated by distance sweeps",
	},
	{
		Name: "spec95.099.go", Suite: "spec95", Build: Go95,
		Description:  "board scanning and liberty counting across candidate positions",
		Substitution: "game engine reduced to its dominant board-scan loop",
	},
	{
		Name: "spec95.129.compress", Suite: "spec95", Build: Compress95,
		Description:  "LZW hash-probe-insert loop over a skewed byte stream",
		Substitution: "synthetic text instead of the reference corpus",
	},
	{
		Name: "spec95.130.li", Suite: "spec95", Build: Li95,
		Description:  "cons-cell expression evaluation with periodic GC sweeps",
		Substitution: "fixed arithmetic s-expressions instead of the reference program",
	},
	{
		Name: "spec2000.181.mcf", Suite: "spec2000", Build: MCF,
		Description:  "network-simplex arc pricing: streaming arc scan + potential loads",
		Substitution: "synthetic network at reduced size",
	},
	{
		Name: "spec2000.197.parser", Suite: "spec2000", Build: Parser,
		Description:  "dictionary trie lookups with sibling-chain character compares",
		Substitution: "synthetic dictionary and word stream",
	},
	{
		Name: "spec2000.300.twolf", Suite: "spec2000", Build: Twolf,
		Description:  "annealing placement: random cell swaps in a conflict-prone grid",
		Substitution: "synthetic netlist; grid padded to collide in the 8K L1",
	},
}

// All returns the benchmarks in a stable order.
func All() []Benchmark {
	out := append([]Benchmark(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns all benchmark names in stable order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, bm := range all {
		names[i] = bm.Name
	}
	return names
}

// ByName looks a benchmark up.
func ByName(name string) (Benchmark, error) {
	for _, bm := range registry {
		if bm.Name == name {
			return bm, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, Names())
}
