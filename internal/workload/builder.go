// Package workload generates the instruction-and-value traces that drive
// the experiments, standing in for the paper's Olden / SPECint95 /
// SPECint2000 binaries with their reference inputs.
//
// Each benchmark is a Go function that *executes* the original program's
// characteristic algorithm — allocating nodes on a simulated heap,
// chasing pointers, doing arithmetic — while recording every step as an
// isa.Inst with true dependence edges, concrete addresses and concrete
// values. The properties the paper's results rest on are therefore
// reproduced rather than assumed:
//
//   - value mix: pointer fields point into nearby 32K chunks (the bump
//     allocator places consecutive nodes together, like Olden's), counters
//     and type fields are small values, and payload data (checksums, float
//     bits, hashes) is incompressible;
//   - dependence structure: list/tree traversals carry the loaded pointer
//     into the next load's address, so a cache miss blocks the chain;
//   - locality: node sizes and layouts match the paper's motivating
//     examples (e.g. the Figure 5 list node is exactly example/linkedlist).
package workload

import (
	"fmt"
	"math/rand"

	"cppcache/internal/isa"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
)

// Reg is a virtual-register handle produced by builder operations.
type Reg = int32

// NoReg marks an absent dependence.
const NoReg = isa.NoReg

// HeapBase is where the simulated heap starts. It is far from address 0
// so that pointer values are only compressible through the shared-prefix
// rule, never accidentally as small values.
const HeapBase mach.Addr = 0x1000_0000

// B records a program: a growing instruction trace plus a functional
// memory image that supplies load values.
type B struct {
	insts []isa.Inst
	image *mem.Memory
	next  Reg
	brk   mach.Addr
	rng   *rand.Rand
	pc    mach.Addr

	arenas    []mach.Addr
	arenaEnds []mach.Addr
	arenaNext int
}

// NewBuilder returns an empty builder with a deterministic RNG. The trace
// array starts with room for a typical scale-1 benchmark so early emission
// does not repeatedly regrow it; Grow raises the reservation when the
// generator knows its size up front.
func NewBuilder(seed int64) *B {
	return &B{
		insts: make([]isa.Inst, 0, 1<<14),
		image: mem.New(),
		brk:   HeapBase,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Grow reserves capacity for at least n further instructions, so
// generators that can bound their trace length build into one flat
// allocation instead of doubling through intermediate arrays.
func (b *B) Grow(n int) {
	if need := len(b.insts) + n; need > cap(b.insts) {
		grown := make([]isa.Inst, len(b.insts), need)
		copy(grown, b.insts)
		b.insts = grown
	}
}

// Rand exposes the builder's deterministic RNG for data generation.
func (b *B) Rand() *rand.Rand { return b.rng }

// SetPC positions the emission point: subsequent instructions get
// consecutive PCs from base. Call it at the top of each loop body or
// routine so that static code reuses PCs, which is what the branch
// predictor and the instruction cache key on.
func (b *B) SetPC(base mach.Addr) { b.pc = base }

func (b *B) emit(in isa.Inst) {
	in.PC = b.pc
	b.pc += 4
	b.insts = append(b.insts, in)
}

func (b *B) newReg() Reg {
	r := b.next
	b.next++
	return r
}

// Alloc carves bytes from the heap, aligned to align (a power of two).
// Word alignment is the minimum.
func (b *B) Alloc(bytes, align int) mach.Addr {
	if align < mach.WordBytes {
		align = mach.WordBytes
	}
	a := mach.Addr(align)
	b.brk = (b.brk + a - 1) &^ (a - 1)
	p := b.brk
	b.brk += mach.Addr((bytes + mach.WordBytes - 1) &^ (mach.WordBytes - 1))
	return p
}

// Brk returns the current heap break (for layout-aware workloads).
func (b *B) Brk() mach.Addr { return b.brk }

// scatterChunk is the granule of scattered allocation: the 32K
// pointer-compression chunk. Interleaving stays inside one chunk so that
// pointers between scattered nodes usually still share their 17-bit
// prefix, as they do under real allocators that recycle a region.
const scatterChunk mach.Addr = 32 << 10

// ScatterAlloc allocates like Alloc but interleaves allocations across n
// stripes of the current 32K chunk. Consecutive allocations land far
// apart inside the chunk — defeating the next-line correlation between
// allocation order and traversal order, as free-list reuse does in the
// original programs — while pointers among them remain compressible
// because they stay within one chunk. When a stripe fills, allocation
// moves on to a fresh chunk.
func (b *B) ScatterAlloc(n int, bytes, align int) mach.Addr {
	if n < 2 {
		return b.Alloc(bytes, align)
	}
	need := mach.Addr((bytes + mach.WordBytes - 1) &^ (mach.WordBytes - 1))
	stripe := scatterChunk / mach.Addr(n)
	for {
		if len(b.arenas) != n {
			base := (b.brk + scatterChunk - 1) &^ (scatterChunk - 1)
			b.brk = base + scatterChunk
			b.arenas = make([]mach.Addr, n)
			b.arenaEnds = make([]mach.Addr, n)
			for i := range b.arenas {
				// Offset stripes by a line so same-ordinal
				// allocations do not alias to one cache set.
				b.arenas[i] = base + mach.Addr(i)*stripe + mach.Addr(i*64)
				b.arenaEnds[i] = base + mach.Addr(i+1)*stripe
			}
		}
		i := b.arenaNext % n
		b.arenaNext++
		a := mach.Addr(align)
		if a < mach.WordBytes {
			a = mach.WordBytes
		}
		p := (b.arenas[i] + a - 1) &^ (a - 1)
		if p+need > b.arenaEnds[i] {
			// The chunk is effectively full: start a new one.
			b.arenas = nil
			continue
		}
		b.arenas[i] = p + need
		return p
	}
}

// Const materialises a constant: an ALU op with no sources.
func (b *B) Const(v mach.Word) Reg {
	r := b.newReg()
	b.emit(isa.Inst{Op: isa.OpALU, Dest: r, Src1: NoReg, Src2: NoReg, Value: v})
	return r
}

// Op emits a computation with up to two sources and returns its result
// register.
func (b *B) Op(op isa.Op, s1, s2 Reg) Reg {
	r := b.newReg()
	b.emit(isa.Inst{Op: op, Dest: r, Src1: s1, Src2: s2})
	return r
}

// ALU is Op(isa.OpALU, s1, s2).
func (b *B) ALU(s1, s2 Reg) Reg { return b.Op(isa.OpALU, s1, s2) }

// Load reads the word at addr. addrDep is the register the address was
// computed from (NoReg for a static address); it becomes the load's Src1,
// expressing pointer-chasing dependences. The loaded value is taken from
// the builder's memory image.
func (b *B) Load(addr mach.Addr, addrDep Reg) Reg {
	r := b.newReg()
	b.emit(isa.Inst{
		Op: isa.OpLoad, Dest: r, Src1: addrDep, Src2: NoReg,
		Addr: mach.WordAlign(addr), Value: b.image.ReadWord(addr),
	})
	return r
}

// Store writes v at addr, updating the image. addrDep and valDep carry the
// dependences for the address and data.
func (b *B) Store(addr mach.Addr, v mach.Word, addrDep, valDep Reg) {
	b.image.WriteWord(addr, v)
	b.emit(isa.Inst{
		Op: isa.OpStore, Dest: NoReg, Src1: addrDep, Src2: valDep,
		Addr: mach.WordAlign(addr), Value: v,
	})
}

// Branch emits a conditional branch with the given resolved direction,
// depending on cond.
func (b *B) Branch(cond Reg, taken bool) {
	b.emit(isa.Inst{Op: isa.OpBranch, Dest: NoReg, Src1: cond, Src2: NoReg, Taken: taken})
}

// Len returns the number of instructions recorded so far.
func (b *B) Len() int { return len(b.insts) }

// Program finalises the builder.
func (b *B) Program(name string) *Program {
	return &Program{Name: name, insts: b.insts, image: b.image}
}

// Program is a finished trace plus its functional memory image.
type Program struct {
	Name  string
	insts []isa.Inst
	image *mem.Memory
}

// Stream returns a fresh replayable stream over the trace.
func (p *Program) Stream() isa.Stream { return isa.NewSliceStream(p.insts) }

// Len returns the trace length in instructions.
func (p *Program) Len() int { return len(p.insts) }

// Insts exposes the raw trace (read-only by convention).
func (p *Program) Insts() []isa.Inst { return p.insts }

// String implements fmt.Stringer.
func (p *Program) String() string {
	return fmt.Sprintf("%s (%d instructions)", p.Name, len(p.insts))
}

// Image exposes the functional memory image (for the public facade's Peek).
func (b *B) Image() *mem.Memory { return b.image }
