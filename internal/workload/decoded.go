package workload

import (
	"sync"

	"cppcache/internal/trace"
)

// The decoded store caches the struct-of-arrays form of built programs
// (trace.Decoded) so that a sweep's many configurations, repetitions and
// worker goroutines all replay one shared pre-decode instead of each
// paying the conversion. Programs are immutable, so the store keys on
// program identity; the budget bounds the total buffer footprint and
// evicts least-recently-used traces when a new decode would exceed it
// (the AoS trace inside the Program itself is unaffected — only the
// derived SoA copy is dropped and rebuilt on demand).
var decoded = struct {
	sync.Mutex
	entries map[*Program]*decodedEntry
	used    int64 // bytes held by entries
	budget  int64
	tick    uint64 // LRU clock
	stats   DecodedStats
}{
	entries: map[*Program]*decodedEntry{},
	budget:  DefaultDecodedBudget,
}

type decodedEntry struct {
	d       *trace.Decoded
	lastUse uint64
}

// DefaultDecodedBudget bounds the decoded store to 256 MiB of buffers:
// roughly 10M pre-decoded instructions, two orders of magnitude above a
// default full-suite sweep, while still a hard ceiling for long-lived
// services (cppserved) facing adversarial workload/scale mixes.
const DefaultDecodedBudget = 256 << 20

// DecodedStats counts store traffic, for tests and throughput reports.
type DecodedStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	UsedBytes int64
}

// Decoded returns the shared pre-decoded form of the program, building
// and caching it on first use. The result is read-only and safe for any
// number of concurrent replays.
func (p *Program) Decoded() *trace.Decoded {
	decoded.Lock()
	defer decoded.Unlock()
	decoded.tick++
	if e, ok := decoded.entries[p]; ok {
		e.lastUse = decoded.tick
		decoded.stats.Hits++
		return e.d
	}
	decoded.stats.Misses++
	d := trace.NewDecoded(p.insts)
	// Evict least-recently-used traces until the new entry fits. A trace
	// larger than the whole budget is still returned, just not retained.
	for decoded.used+d.Bytes() > decoded.budget && len(decoded.entries) > 0 {
		var victim *Program
		var oldest uint64
		for vp, ve := range decoded.entries {
			if victim == nil || ve.lastUse < oldest {
				victim, oldest = vp, ve.lastUse
			}
		}
		decoded.used -= decoded.entries[victim].d.Bytes()
		delete(decoded.entries, victim)
		decoded.stats.Evictions++
	}
	if decoded.used+d.Bytes() <= decoded.budget {
		decoded.entries[p] = &decodedEntry{d: d, lastUse: decoded.tick}
		decoded.used += d.Bytes()
	}
	return d
}

// Replay returns a fresh stream over the program's shared pre-decoded
// trace; the simulator replays it without per-instruction decode work.
func (p *Program) Replay() *trace.Replayer { return p.Decoded().Replay() }

// SetDecodedBudget sets the decoded store's byte budget and returns the
// previous value, evicting immediately if the store is over the new
// budget. Tests use it to exercise eviction; 0 disables retention.
func SetDecodedBudget(bytes int64) int64 {
	decoded.Lock()
	defer decoded.Unlock()
	old := decoded.budget
	decoded.budget = bytes
	for decoded.used > decoded.budget && len(decoded.entries) > 0 {
		var victim *Program
		var oldest uint64
		for vp, ve := range decoded.entries {
			if victim == nil || ve.lastUse < oldest {
				victim, oldest = vp, ve.lastUse
			}
		}
		decoded.used -= decoded.entries[victim].d.Bytes()
		delete(decoded.entries, victim)
		decoded.stats.Evictions++
	}
	return old
}

// DecodedStoreStats returns a snapshot of the store's counters.
func DecodedStoreStats() DecodedStats {
	decoded.Lock()
	defer decoded.Unlock()
	s := decoded.stats
	s.UsedBytes = decoded.used
	return s
}
