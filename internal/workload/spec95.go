package workload

import (
	"cppcache/internal/isa"
	"cppcache/internal/mach"
)

// The SPECint95 stand-ins. The reference binaries and inputs are not
// reproducible here; each generator executes the program's characteristic
// kernel over synthetic data sized to stress an 8K L1 / 64K L2.

// Go95 reproduces spec95.099.go: board-game position evaluation —
// repeated scans of 19x19 board arrays (stone colours, liberty counts:
// all small values) across a set of candidate positions, with
// data-dependent branches on board contents. Substitution: the full
// game engine is replaced by its dominant loop, the board scanner/
// liberty counter, applied to many boards so the data footprint exceeds
// the L2 as the real engine's does.
func Go95(scale int) *Program {
	b := NewBuilder(0x6099)
	const side = 19
	const cells = side * side
	nBoards := 64 // ~92 KB of boards
	passes := scale

	boards := make([]mach.Addr, nBoards)
	for i := range boards {
		boards[i] = b.Alloc(cells*4, 64)
		for c := 0; c < cells; c++ {
			b.SetPC(pcBuild)
			b.Store(boards[i]+mach.Addr(c*4), mach.Word(b.Rand().Intn(3)), NoReg, NoReg)
		}
	}
	// Group arrays: engines keep per-cell group/string metadata whose
	// words are hashes — incompressible, doubling the board footprint.
	groups := make([]mach.Addr, nBoards)
	for i := range groups {
		groups[i] = b.Alloc(cells*4, 64)
		for c := 0; c < cells; c++ {
			b.SetPC(pcBuild + 0x40)
			b.Store(groups[i]+mach.Addr(c*4), b.Rand().Uint32()&0x0FFFFFFF|0x00800000, NoReg, NoReg)
		}
	}
	// Zobrist hash table: position hashing is core to go engines; its
	// entries are full-range values, incompressible by design.
	const zobristN = 2 * cells
	zobrist := b.Alloc(zobristN*4, 64)
	for i := 0; i < zobristN; i++ {
		b.SetPC(pcBuild + 0x80)
		b.Store(zobrist+mach.Addr(i*4), b.Rand().Uint32()&0x0FFFFFFF|0x00800000, NoReg, NoReg)
	}

	for p := 0; p < passes; p++ {
		for bi, board := range boards {
			group := groups[bi]
			var score Reg = NoReg
			for c := 0; c < cells; c++ {
				b.SetPC(pcLoop)
				b.Branch(NoReg, true)
				stone := b.Load(board+mach.Addr(c*4), NoReg)
				sv := b.image.ReadWord(board + mach.Addr(c*4))
				b.Branch(stone, sv != 0)
				if sv == 0 {
					continue
				}
				// Count liberties: check the four neighbours.
				libs := stone
				for _, d := range [4]int{-1, 1, -side, side} {
					nc := c + d
					if nc < 0 || nc >= cells {
						continue
					}
					nb := b.Load(board+mach.Addr(nc*4), NoReg)
					libs = b.ALU(libs, nb)
				}
				z := b.Load(zobrist+mach.Addr(((c*2+int(sv))%zobristN)*4), stone)
				g := b.Load(group+mach.Addr(c*4), stone)
				libs = b.ALU(libs, b.ALU(z, g))
				if score == NoReg {
					score = libs
				} else {
					score = b.ALU(score, libs)
				}
				// Occasionally place/remove a stone.
				if b.Rand().Intn(64) == 0 {
					b.Store(board+mach.Addr(c*4), mach.Word(b.Rand().Intn(3)), NoReg, libs)
				}
			}
			b.SetPC(pcLoop + 0x40)
			b.Branch(NoReg, false)
		}
	}
	return b.Program("spec95.099.go")
}

// Compress95 reproduces spec95.129.compress: LZW compression — a byte
// stream hashed (prefix, char) -> code through an open-chained table with
// data-dependent probe lengths. Substitution: synthetic skewed text
// instead of the reference corpus; table geometry (4K entries) and the
// hash-probe-insert loop match, and hash values make the table region
// incompressible while the input stream is small values.
func Compress95(scale int) *Program {
	b := NewBuilder(0x129c)
	const tabSize = 4096
	inputLen := 6000 * scale

	// table entry: {key, code} pairs; input: byte-per-word buffer;
	// output: code buffer.
	table := b.Alloc(tabSize*8, 64)
	input := b.Alloc(inputLen*4, 64)
	output := b.Alloc(inputLen*4, 64)
	for i := 0; i < tabSize; i++ {
		b.SetPC(pcBuild)
		b.Store(table+mach.Addr(i*8), 0xFFFFFFFF, NoReg, NoReg) // empty
		b.Store(table+mach.Addr(i*8+4), 0, NoReg, NoReg)
	}
	// Skewed synthetic text: a small alphabet with repeats compresses
	// like the reference input does.
	for i := 0; i < inputLen; i++ {
		ch := mach.Word(b.Rand().Intn(16))
		if b.Rand().Intn(4) != 0 && i > 0 {
			ch = b.image.ReadWord(input + mach.Addr((i-1)*4)) // run
		}
		b.Store(input+mach.Addr(i*4), ch, NoReg, NoReg)
	}

	nextCode := mach.Word(256)
	prefix := mach.Word(0)
	outPos := 0
	for i := 0; i < inputLen; i++ {
		b.SetPC(pcLoop)
		b.Branch(NoReg, true)
		ch := b.Load(input+mach.Addr(i*4), NoReg)
		chv := b.image.ReadWord(input + mach.Addr(i*4))
		key := prefix<<8 | chv
		h := b.Op(isa.OpMul, ch, NoReg) // the hash multiply
		slot := int(key*2654435761) % tabSize
		if slot < 0 {
			slot += tabSize
		}
		// Probe with linear chaining.
		found := false
		var probeReg Reg = h
		for probe := 0; probe < 4; probe++ {
			s := (slot + probe) % tabSize
			k := b.Load(table+mach.Addr(s*8), probeReg)
			kv := b.image.ReadWord(table + mach.Addr(s*8))
			probeReg = k
			if kv == key {
				b.Branch(k, true)
				code := b.Load(table+mach.Addr(s*8+4), k)
				prefix = b.image.ReadWord(table + mach.Addr(s*8+4))
				_ = code
				found = true
				break
			}
			if kv == 0xFFFFFFFF {
				b.Branch(k, false)
				// Insert.
				b.SetPC(pcLoop2)
				b.Store(table+mach.Addr(s*8), key, k, NoReg)
				b.Store(table+mach.Addr(s*8+4), nextCode, k, NoReg)
				nextCode++
				break
			}
			b.Branch(k, false)
		}
		if !found {
			// Emit the current prefix code and restart.
			b.SetPC(pcLoop3)
			b.Store(output+mach.Addr(outPos*4), prefix, NoReg, probeReg)
			outPos++
			prefix = chv
		}
		if nextCode >= tabSize {
			nextCode = 256 // table reset, as compress does
		}
	}
	return b.Program("spec95.129.compress")
}

// Li95 reproduces spec95.130.li: the xlisp interpreter — cons cells
// {car, cdr, type, value} allocated from a cell heap, expression
// evaluation by list traversal, and a mark phase sweeping every live
// cell. Substitution: a fixed set of arithmetic s-expressions replaces
// the reference lisp program; cell geometry, eval recursion and the GC
// sweep match. The paper singles out 130.li: CPP beats HAC on it despite
// more cache misses, because its misses block fewer instructions.
func Li95(scale int) *Program {
	b := NewBuilder(0x1307)
	nExprs := 192
	exprLen := 40 // ~250 KB of cons cells
	gcEvery := 48
	repeats := 1 + scale/4

	const (
		typeCons = 0
		typeInt  = 1
	)
	// xlisp allocates cons cells from free lists that GC churn has
	// shuffled: model it by pre-allocating the cell pool and consuming it
	// in random order, so list order is unrelated to address order.
	poolSize := nExprs*exprLen*2 + 16
	pool := make([]mach.Addr, poolSize)
	for i := range pool {
		pool[i] = b.Alloc(16, 16)
	}
	b.Rand().Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	poolNext := 0
	var cells []mach.Addr
	cons := func(car, cdr mach.Addr, typ, val mach.Word) mach.Addr {
		c := pool[poolNext]
		poolNext++
		cells = append(cells, c)
		b.SetPC(pcBuild)
		b.Store(c+0, car, NoReg, NoReg)
		b.Store(c+4, cdr, NoReg, NoReg)
		b.Store(c+8, typ, NoReg, NoReg)
		b.Store(c+12, val, NoReg, NoReg)
		return c
	}

	// Build expression lists: (op a1 a2 ... aN) with small int atoms.
	exprs := make([]mach.Addr, nExprs)
	for e := range exprs {
		var list mach.Addr
		for i := 0; i < exprLen; i++ {
			atom := cons(0, 0, typeInt, mach.Word(b.Rand().Intn(1000)))
			list = cons(atom, list, typeCons, 0)
		}
		exprs[e] = list
	}

	// eval: walk the list, branching on each cell's type tag, summing
	// atom values.
	eval := func(list mach.Addr) {
		cur := list
		var dep Reg = NoReg
		var acc Reg = NoReg
		for cur != 0 {
			b.SetPC(pcLoop)
			b.Branch(dep, true)
			car := b.Load(cur+0, dep)
			carAddr := b.image.ReadWord(cur + 0)
			typ := b.Load(carAddr+8, car)
			tv := b.image.ReadWord(carAddr + 8)
			b.Branch(typ, tv == typeInt)
			if tv == typeInt {
				v := b.Load(carAddr+12, car)
				if acc == NoReg {
					acc = v
				} else {
					acc = b.ALU(acc, v)
				}
			}
			cdr := b.Load(cur+4, dep)
			cur = b.image.ReadWord(cur + 4)
			dep = cdr
		}
		b.SetPC(pcLoop + 0x40)
		b.Branch(dep, false)
	}

	// mark: sweep every cell, setting the mark bit in the type word.
	mark := func() {
		for _, c := range cells {
			b.SetPC(pcLoop2)
			b.Branch(NoReg, true)
			t := b.Load(c+8, NoReg)
			tv := b.image.ReadWord(c + 8)
			b.Store(c+8, tv|0x100, NoReg, t)
		}
		for _, c := range cells {
			b.SetPC(pcLoop3)
			b.Branch(NoReg, true)
			t := b.Load(c+8, NoReg)
			tv := b.image.ReadWord(c + 8)
			b.Store(c+8, tv&^mach.Word(0x100), NoReg, t)
		}
	}

	for rep := 0; rep < repeats; rep++ {
		for e, list := range exprs {
			eval(list)
			if (e+1)%gcEvery == 0 {
				mark()
			}
		}
	}
	return b.Program("spec95.130.li")
}
