package workload

import (
	"sort"
	"testing"
	"testing/quick"

	"cppcache/internal/compress"
	"cppcache/internal/isa"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(1)
	a := b.Alloc(16, 16)
	if a%16 != 0 || a < HeapBase {
		t.Fatalf("Alloc returned %#x", a)
	}
	b.SetPC(0x1000)
	r := b.Const(5)
	b.Store(a, 42, NoReg, r)
	v := b.Load(a, NoReg)
	_ = v
	p := b.Program("test")
	insts := p.Insts()
	if len(insts) != 3 {
		t.Fatalf("recorded %d instructions", len(insts))
	}
	if insts[0].PC != 0x1000 || insts[1].PC != 0x1004 {
		t.Errorf("PCs = %#x, %#x", insts[0].PC, insts[1].PC)
	}
	if insts[1].Op != isa.OpStore || insts[1].Value != 42 {
		t.Errorf("store = %+v", insts[1])
	}
	if insts[2].Op != isa.OpLoad || insts[2].Value != 42 {
		t.Errorf("load did not see the stored value: %+v", insts[2])
	}
}

func TestBuilderAllocAlignment(t *testing.T) {
	b := NewBuilder(1)
	b.Alloc(5, 4)
	a2 := b.Alloc(64, 64)
	if a2%64 != 0 {
		t.Errorf("Alloc(64,64) = %#x, not 64-aligned", a2)
	}
	a3 := b.Alloc(4, 1) // below-minimum alignment clamps to word
	if a3%4 != 0 {
		t.Errorf("Alloc(4,1) = %#x, not word aligned", a3)
	}
}

func TestBuilderDeterminism(t *testing.T) {
	p1 := TreeAdd(1)
	p2 := TreeAdd(1)
	a, bIn := p1.Insts(), p2.Insts()
	if len(a) != len(bIn) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(bIn))
	}
	for i := range a {
		if a[i] != bIn[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a[i], bIn[i])
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Fatalf("registry has %d benchmarks, want 14 (the paper's set)", len(names))
	}
	suites := map[string]int{}
	for _, bm := range All() {
		suites[bm.Suite]++
		if bm.Build == nil || bm.Description == "" || bm.Substitution == "" {
			t.Errorf("%s: incomplete registry entry", bm.Name)
		}
	}
	if suites["olden"] != 8 || suites["spec95"] != 3 || suites["spec2000"] != 3 {
		t.Errorf("suite counts = %v, want olden:8 spec95:3 spec2000:3", suites)
	}
	if _, err := ByName("olden.health"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
}

// replay checks a trace is functionally consistent: replaying its stores
// into a fresh memory makes every load see its recorded value.
func replay(t *testing.T, p *Program) (loads, stores int) {
	t.Helper()
	m := mem.New()
	s := p.Stream()
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		switch in.Op {
		case isa.OpStore:
			m.WriteWord(in.Addr, in.Value)
			stores++
		case isa.OpLoad:
			if got := m.ReadWord(in.Addr); got != in.Value {
				t.Fatalf("%s: load @%#x expects %#x, memory has %#x", p.Name, in.Addr, in.Value, got)
			}
			loads++
		}
	}
	return loads, stores
}

// regs checks dependence sanity: every source register was defined by an
// earlier instruction.
func checkRegs(t *testing.T, p *Program) {
	t.Helper()
	defined := map[int32]bool{}
	for i, in := range p.Insts() {
		for _, src := range [2]int32{in.Src1, in.Src2} {
			if src != NoReg && !defined[src] {
				t.Fatalf("%s: instruction %d reads undefined register %d", p.Name, i, src)
			}
		}
		if in.Dest != NoReg {
			if defined[in.Dest] {
				t.Fatalf("%s: instruction %d redefines register %d (SSA violated)", p.Name, i, in.Dest)
			}
			defined[in.Dest] = true
		}
	}
}

func TestAllBenchmarksWellFormed(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			p := bm.Build(1)
			if p.Len() < 10000 {
				t.Errorf("trace too short: %d instructions", p.Len())
			}
			if p.Len() > 3_000_000 {
				t.Errorf("trace too long for a scale-1 build: %d", p.Len())
			}
			loads, stores := replay(t, p)
			if loads == 0 || stores == 0 {
				t.Errorf("loads=%d stores=%d", loads, stores)
			}
			checkRegs(t, p)

			mix := isa.CountMix(p.Stream())
			if mix.Frac(isa.OpLoad)+mix.Frac(isa.OpStore) < 0.15 {
				t.Errorf("memory mix too light: %.2f", mix.Frac(isa.OpLoad)+mix.Frac(isa.OpStore))
			}
			if mix.Frac(isa.OpBranch) == 0 {
				t.Error("no branches in trace")
			}
		})
	}
}

// TestValueMixVaries verifies the Figure 3 premise: the pointer-heavy
// programs carry high compressibility and the FP-heavy ones are low, with
// a broad spread across the suite.
func TestValueMixVaries(t *testing.T) {
	frac := func(p *Program) float64 {
		comp, total := 0, 0
		s := p.Stream()
		for {
			in, ok := s.Next()
			if !ok {
				break
			}
			if !in.Op.IsMem() {
				continue
			}
			total++
			if compress.Compressible(in.Value, in.Addr) {
				comp++
			}
		}
		return float64(comp) / float64(total)
	}
	health := frac(Health(1))
	tsp := frac(TSP(1))
	if health < 0.5 {
		t.Errorf("olden.health compressibility = %.2f, want pointer-heavy > 0.5", health)
	}
	if tsp > health {
		t.Errorf("olden.tsp (%.2f) should be less compressible than health (%.2f)", tsp, health)
	}
}

// TestScaleGrowsTrace: scale must increase trace length.
func TestScaleGrowsTrace(t *testing.T) {
	for _, bm := range []Benchmark{mustByName(t, "olden.treeadd"), mustByName(t, "spec2000.181.mcf")} {
		small := bm.Build(1).Len()
		big := bm.Build(4).Len()
		if big <= small {
			t.Errorf("%s: scale 4 trace (%d) not larger than scale 1 (%d)", bm.Name, big, small)
		}
	}
}

func mustByName(t *testing.T, name string) Benchmark {
	t.Helper()
	bm, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return bm
}

// TestPointerFieldsMostlyCompressible: the bump allocator should put
// linked nodes close enough that most pointer fields share their slot's
// 32K prefix.
func TestPointerFieldsMostlyCompressible(t *testing.T) {
	p := TreeAdd(1)
	ptr, comp := 0, 0
	s := p.Stream()
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		if in.Op == isa.OpStore && in.Value >= mach.Addr(HeapBase) {
			ptr++
			if compress.Compressible(in.Value, in.Addr) {
				comp++
			}
		}
	}
	if ptr == 0 {
		t.Fatal("no pointer stores found")
	}
	if f := float64(comp) / float64(ptr); f < 0.6 {
		t.Errorf("only %.2f of pointer stores compressible; allocator locality broken", f)
	}
}

func BenchmarkBuildTreeAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TreeAdd(1)
	}
}

func BenchmarkBuildHealth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Health(1)
	}
}

// TestScatterAllocNoOverlap: scattered allocations must never overlap,
// including across chunk transitions and mixed with plain Alloc.
func TestScatterAllocNoOverlap(t *testing.T) {
	f := func(n uint8, sz uint8, seed int64) bool {
		arenas := int(n%7) + 2
		size := (int(sz%8) + 1) * 16
		b := NewBuilder(seed)
		type span struct{ lo, hi mach.Addr }
		var spans []span
		for i := 0; i < 800; i++ {
			var p mach.Addr
			if i%5 == 4 {
				p = b.Alloc(size, 16)
			} else {
				p = b.ScatterAlloc(arenas, size, 16)
			}
			spans = append(spans, span{p, p + mach.Addr(size)})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		for i := 1; i < len(spans); i++ {
			if spans[i].lo < spans[i-1].hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestScatterAllocDecorrelates: consecutive scattered allocations are not
// address-adjacent (that is the point of scattering), yet stay within one
// 32K chunk so pointers among them usually compress.
func TestScatterAllocDecorrelates(t *testing.T) {
	b := NewBuilder(1)
	var prev mach.Addr
	adjacent, sameChunk, total := 0, 0, 0
	for i := 0; i < 400; i++ {
		p := b.ScatterAlloc(8, 16, 16)
		if i > 0 {
			total++
			if p-prev < 64 && p > prev {
				adjacent++
			}
			if p>>15 == prev>>15 {
				sameChunk++
			}
		}
		prev = p
	}
	if adjacent > total/10 {
		t.Errorf("%d/%d consecutive allocations are line-adjacent", adjacent, total)
	}
	if sameChunk < total*3/4 {
		t.Errorf("only %d/%d consecutive allocations share a 32K chunk", sameChunk, total)
	}
}

// TestCompressibilityBands locks each benchmark's Figure 3 character:
// pointer-heavy codes stay highly compressible, FP/hash codes stay low,
// so the value-mix realism cannot silently regress.
func TestCompressibilityBands(t *testing.T) {
	frac := func(p *Program) float64 {
		comp, total := 0, 0
		s := p.Stream()
		for {
			in, ok := s.Next()
			if !ok {
				break
			}
			if !in.Op.IsMem() {
				continue
			}
			total++
			if compress.Compressible(in.Value, in.Addr) {
				comp++
			}
		}
		return float64(comp) / float64(total)
	}
	bands := map[string][2]float64{
		"olden.health":        {0.75, 1.00},
		"olden.treeadd":       {0.75, 1.00},
		"olden.perimeter":     {0.85, 1.00},
		"spec95.130.li":       {0.80, 1.00},
		"spec2000.197.parser": {0.75, 1.00},
		"olden.em3d":          {0.00, 0.35},
		"spec2000.181.mcf":    {0.00, 0.35},
		"olden.tsp":           {0.05, 0.45},
		"olden.power":         {0.10, 0.55},
		"olden.bisort":        {0.25, 0.65},
		"spec95.099.go":       {0.50, 0.90},
		"spec95.129.compress": {0.50, 0.90},
		"spec2000.300.twolf":  {0.45, 0.90},
		"olden.mst":           {0.60, 0.95},
	}
	var sum float64
	for name, band := range bands {
		bm, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		f := frac(bm.Build(1))
		sum += f
		if f < band[0] || f > band[1] {
			t.Errorf("%s: compressibility %.2f outside band [%.2f, %.2f]", name, f, band[0], band[1])
		}
	}
	avg := sum / float64(len(bands))
	// The paper's Figure 3 average is 59%; hold the suite near it.
	if avg < 0.45 || avg > 0.80 {
		t.Errorf("suite average compressibility %.2f drifted from the paper's 0.59", avg)
	}
}
