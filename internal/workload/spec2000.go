package workload

import (
	"cppcache/internal/mach"
)

// The SPECint2000 stand-ins.

// MCF reproduces spec2000.181.mcf: network-simplex min-cost flow. Its
// dominant loop is arc pricing: a streaming sweep over a large arc array
// whose entries mix node pointers (compressible via shared prefixes) with
// costs and flows, computing reduced costs through the node potentials
// and occasionally updating flow. Substitution: a synthetic network with
// the reference's access shape — sequential arc scan + pointer-indirect
// potential loads — at reduced size.
func MCF(scale int) *Program {
	b := NewBuilder(0x1810)
	nNodes := 2048
	nArcs := 16384 // 256 KB of arcs + 32 KB of nodes: well past the L2
	passes := 1 + scale/4

	// node: {potential, orientation, basicArc, pad}; arc: {tail, head,
	// cost, flow} — 16 bytes each, like mcf's cache-conscious layout.
	nodes := make([]mach.Addr, nNodes)
	for i := range nodes {
		nodes[i] = b.ScatterAlloc(4, 16, 16)
		b.SetPC(pcBuild)
		b.Store(nodes[i]+0, mach.Word(b.Rand().Intn(1<<22)), NoReg, NoReg)
		b.Store(nodes[i]+4, mach.Word(i&1), NoReg, NoReg)
		b.Store(nodes[i]+8, 0, NoReg, NoReg)
	}
	arcs := b.Alloc(nArcs*16, 64)
	for i := 0; i < nArcs; i++ {
		a := arcs + mach.Addr(i*16)
		b.SetPC(pcBuild + 0x40)
		b.Store(a+0, nodes[b.Rand().Intn(nNodes)], NoReg, NoReg)
		b.Store(a+4, nodes[b.Rand().Intn(nNodes)], NoReg, NoReg)
		b.Store(a+8, mach.Word(b.Rand().Intn(1<<20)), NoReg, NoReg)
		b.Store(a+12, 0, NoReg, NoReg)
	}

	for p := 0; p < passes; p++ {
		for i := 0; i < nArcs; i++ {
			a := arcs + mach.Addr(i*16)
			b.SetPC(pcLoop)
			b.Branch(NoReg, true)
			tail := b.Load(a+0, NoReg)
			head := b.Load(a+4, NoReg)
			cost := b.Load(a+8, NoReg)
			tAddr := b.image.ReadWord(a + 0)
			hAddr := b.image.ReadWord(a + 4)
			pt := b.Load(tAddr+0, tail)
			ph := b.Load(hAddr+0, head)
			red := b.ALU(b.ALU(cost, pt), ph)
			negative := b.Rand().Intn(8) == 0
			b.Branch(red, negative)
			if negative {
				b.SetPC(pcLoop2)
				flow := b.Load(a+12, NoReg)
				nf := b.ALU(flow, red)
				b.Store(a+12, mach.Word(b.Rand().Intn(64)), NoReg, nf)
			}
		}
		b.SetPC(pcLoop + 0x80)
		b.Branch(NoReg, false)
	}
	return b.Program("spec2000.181.mcf")
}

// Parser reproduces spec2000.197.parser: link-grammar dictionary lookups.
// The hot structure is a character trie of sibling-linked nodes
// {child, sibling, char, count}; word lookups chase sibling chains
// comparing characters (small values) and descend child pointers, then
// bump a use counter. Substitution: a synthetic dictionary and word
// stream with the reference's trie shape and probe statistics.
func Parser(scale int) *Program {
	b := NewBuilder(0x1970)
	nWords := 1400
	wordLen := 7
	lookups := 400 * scale
	const alpha = 14

	// Build the trie in Go first, allocating nodes in insertion order.
	type tnode struct {
		addr     mach.Addr
		children map[byte]*tnode
	}
	newNode := func(ch byte) *tnode {
		n := &tnode{addr: b.ScatterAlloc(8, 16, 16), children: map[byte]*tnode{}}
		b.SetPC(pcBuild)
		b.Store(n.addr+0, 0, NoReg, NoReg)
		b.Store(n.addr+4, 0, NoReg, NoReg)
		b.Store(n.addr+8, mach.Word(ch), NoReg, NoReg)
		b.Store(n.addr+12, 0, NoReg, NoReg)
		return n
	}
	root := newNode(0)
	words := make([][]byte, nWords)
	for w := range words {
		word := make([]byte, wordLen)
		for i := range word {
			word[i] = byte(b.Rand().Intn(alpha))
		}
		words[w] = word
		cur := root
		for _, ch := range word {
			next, ok := cur.children[ch]
			if !ok {
				next = newNode(ch)
				cur.children[ch] = next
				// Link: new node becomes head of the sibling list.
				oldHead := b.image.ReadWord(cur.addr + 0)
				b.Store(next.addr+4, oldHead, NoReg, NoReg)
				b.Store(cur.addr+0, next.addr, NoReg, NoReg)
			}
			cur = next
		}
	}

	// Lookup loop: walk sibling chains comparing chars, descend.
	for l := 0; l < lookups; l++ {
		word := words[b.Rand().Intn(nWords)]
		cur := root
		var dep Reg = NoReg
		for _, ch := range word {
			b.SetPC(pcLoop)
			b.Branch(dep, true)
			childReg := b.Load(cur.addr+0, dep)
			sib := b.image.ReadWord(cur.addr + 0)
			sibReg := childReg
			var found *tnode
			for sib != 0 {
				b.SetPC(pcLoop2)
				c := b.Load(sib+8, sibReg)
				cv := b.image.ReadWord(sib + 8)
				match := cv == mach.Word(ch)
				b.Branch(c, match)
				if match {
					for _, t := range cur.children {
						if t.addr == sib {
							found = t
							break
						}
					}
					dep = sibReg
					break
				}
				nxt := b.Load(sib+4, sibReg)
				sib = b.image.ReadWord(sib + 4)
				sibReg = nxt
			}
			if found == nil {
				break
			}
			cur = found
		}
		// Bump the terminal node's counter.
		b.SetPC(pcLoop3)
		cnt := b.Load(cur.addr+12, dep)
		nv := b.image.ReadWord(cur.addr+12) + 1
		b.Store(cur.addr+12, nv, dep, cnt)
	}
	return b.Program("spec2000.197.parser")
}

// Twolf reproduces spec2000.300.twolf: standard-cell placement by
// simulated annealing. The hot loop proposes swapping two random cells,
// evaluates the wire-cost change through each cell's net list, and
// commits some swaps into the placement grid. The grid rows are padded so
// that vertically adjacent slots conflict in a direct-mapped 8K L1 —
// twolf is one of the two programs where the paper finds conflict misses
// dominant (CPP beats BCP). Substitution: synthetic netlist, same access
// anatomy.
func Twolf(scale int) *Program {
	b := NewBuilder(0x3000)
	nCells := 1024
	netFan := 4
	moves := 800 * scale
	const rows = 16
	const cols = 64 // row stride 256B; 16K grid > two L1s

	// cell: {x, y, netlist ptr, cost}; net node: {next, cell ptr, weight,
	// pad}.
	cells := make([]mach.Addr, nCells)
	for i := range cells {
		cells[i] = b.ScatterAlloc(8, 16, 16)
		b.SetPC(pcBuild)
		b.Store(cells[i]+0, mach.Word(b.Rand().Intn(cols)), NoReg, NoReg)
		b.Store(cells[i]+4, mach.Word(b.Rand().Intn(rows)), NoReg, NoReg)
		b.Store(cells[i]+8, 0, NoReg, NoReg)
		b.Store(cells[i]+12, 0, NoReg, NoReg)
	}
	for i := range cells {
		for f := 0; f < netFan; f++ {
			n := b.ScatterAlloc(8, 16, 16)
			b.SetPC(pcBuild + 0x40)
			head := b.image.ReadWord(cells[i] + 8)
			b.Store(n+0, head, NoReg, NoReg)
			b.Store(n+4, cells[b.Rand().Intn(nCells)], NoReg, NoReg)
			b.Store(n+8, mach.Word(1+b.Rand().Intn(16)), NoReg, NoReg)
			b.Store(cells[i]+8, n, NoReg, NoReg)
		}
	}
	// Placement grid, aligned so same-column slots in different rows
	// collide in an 8K direct-mapped cache (row stride 512B x 16 = 8K).
	grid := b.Alloc(rows*cols*8, 8<<10)
	slot := func(r, c int) mach.Addr { return grid + mach.Addr((r*cols+c)*8) }
	for i, cell := range cells {
		b.Store(slot(i/cols%rows, i%cols), cell, NoReg, NoReg)
	}

	cost := func(cell mach.Addr, dep Reg) Reg {
		net := b.Load(cell+8, dep)
		cur := b.image.ReadWord(cell + 8)
		acc := net
		steps := 0
		for cur != 0 && steps < netFan {
			b.SetPC(pcLoop2)
			b.Branch(acc, true)
			other := b.Load(cur+4, acc)
			oAddr := b.image.ReadWord(cur + 4)
			ox := b.Load(oAddr+0, other)
			w := b.Load(cur+8, acc)
			acc = b.ALU(b.ALU(ox, w), acc)
			nxt := b.Load(cur+0, acc)
			cur = b.image.ReadWord(cur + 0)
			acc = nxt
			steps++
		}
		return acc
	}

	for m := 0; m < moves; m++ {
		b.SetPC(pcLoop)
		b.Branch(NoReg, true)
		r1, c1 := b.Rand().Intn(rows), b.Rand().Intn(cols)
		r2, c2 := b.Rand().Intn(rows), c1 // same column: conflicting slots
		p1 := b.Load(slot(r1, c1), NoReg)
		p2 := b.Load(slot(r2, c2), NoReg)
		a1 := b.image.ReadWord(slot(r1, c1))
		a2 := b.image.ReadWord(slot(r2, c2))
		if a1 == 0 || a2 == 0 {
			b.Branch(p1, false)
			continue
		}
		d1 := cost(a1, p1)
		d2 := cost(a2, p2)
		delta := b.ALU(d1, d2)
		accept := b.Rand().Intn(4) == 0
		b.SetPC(pcLoop3)
		b.Branch(delta, accept)
		if accept {
			b.Store(slot(r1, c1), a2, NoReg, p2)
			b.Store(slot(r2, c2), a1, NoReg, p1)
			x1 := b.Load(a1+0, p1)
			x2 := b.Load(a2+0, p2)
			v1 := b.image.ReadWord(a1 + 0)
			v2 := b.image.ReadWord(a2 + 0)
			b.Store(a1+0, v2, p1, x2)
			b.Store(a2+0, v1, p2, x1)
		}
	}
	return b.Program("spec2000.300.twolf")
}
