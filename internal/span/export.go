package span

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// attrMap renders attributes as a flat JSON object. Go's encoder sorts
// map keys, so the output is deterministic.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		if a.IsInt {
			m[a.Key] = a.Int
		} else {
			m[a.Key] = a.Str
		}
	}
	return m
}

// treeEvent is one event of the Tree rendering.
type treeEvent struct {
	Name     string         `json:"name"`
	UnixNano int64          `json:"unix_nano"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// treeSpan is one node of the Tree rendering. Children nest, so the
// lifecycle reads top-down: run → queue/execute → sim stages.
type treeSpan struct {
	SpanID        string         `json:"span_id"`
	Name          string         `json:"name"`
	StartUnixNano int64          `json:"start_unix_nano"`
	EndUnixNano   int64          `json:"end_unix_nano,omitempty"`
	DurationNS    int64          `json:"duration_ns,omitempty"`
	Attrs         map[string]any `json:"attrs,omitempty"`
	Events        []treeEvent    `json:"events,omitempty"`
	DroppedEvents int64          `json:"dropped_events,omitempty"`
	Children      []*treeSpan    `json:"children,omitempty"`
}

// treeTrace is the Tree envelope.
type treeTrace struct {
	TraceID      string      `json:"trace_id"`
	DroppedSpans int64       `json:"dropped_spans"`
	Spans        []*treeSpan `json:"spans"`
}

// Tree renders the trace as indented JSON with parent-child nesting, the
// shape served by GET /runs/{id}/trace. Spans keep their open order;
// orphans (parent dropped at the span cap) surface as extra roots rather
// than vanishing.
func (t *Tracer) Tree() []byte {
	tr := treeTrace{TraceID: t.TraceID(), Spans: []*treeSpan{}}
	if t != nil {
		t.mu.Lock()
		tr.DroppedSpans = t.dropped
		nodes := make(map[ID]*treeSpan, len(t.spans))
		for _, s := range t.spans {
			n := &treeSpan{
				SpanID:        s.id.String(),
				Name:          s.name,
				StartUnixNano: s.start.UnixNano(),
				Attrs:         attrMap(s.attrs),
				DroppedEvents: s.droppedEvents,
			}
			if !s.end.IsZero() {
				n.EndUnixNano = s.end.UnixNano()
				n.DurationNS = s.end.Sub(s.start).Nanoseconds()
			}
			for _, e := range s.events {
				n.Events = append(n.Events, treeEvent{
					Name: e.Name, UnixNano: e.Time.UnixNano(), Attrs: attrMap(e.Attrs),
				})
			}
			nodes[s.id] = n
		}
		for _, s := range t.spans {
			n := nodes[s.id]
			if p, ok := nodes[s.parent]; ok && s.parent != 0 {
				p.Children = append(p.Children, n)
			} else {
				tr.Spans = append(tr.Spans, n)
			}
		}
		t.mu.Unlock()
	}
	return mustEncode(tr, "  ")
}

// chromeEvent is one trace_event entry. Field order is fixed by the
// struct, keeping the output byte-stable for golden tests (the same
// convention as internal/obs's Chrome writer).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the trace_event envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Dropped         int64         `json:"droppedEventCount"`
	TraceID         string        `json:"traceId"`
}

// Chrome renders the trace in Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto. Closed spans become complete events
// ("ph":"X", microsecond timestamps relative to the earliest span); open
// spans become begin events ("ph":"B"); span events become instants.
// Root spans map to tid 1, each nesting level one thread lane deeper, so
// the run lifecycle reads as a flame chart.
func (t *Tracer) Chrome() []byte {
	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms", TraceID: t.TraceID()}
	if t != nil {
		t.mu.Lock()
		tr.Dropped = t.dropped
		var epoch time.Time
		for _, s := range t.spans {
			if epoch.IsZero() || s.start.Before(epoch) {
				epoch = s.start
			}
		}
		depth := make(map[ID]int, len(t.spans))
		for _, s := range t.spans { // spans slice is in open order: parents precede children
			depth[s.id] = 1
			if d, ok := depth[s.parent]; ok && s.parent != 0 {
				depth[s.id] = d + 1
			}
		}
		us := func(at time.Time) int64 { return at.Sub(epoch).Microseconds() }
		for _, s := range t.spans {
			ev := chromeEvent{
				Name: s.name,
				Ph:   "X",
				TS:   us(s.start),
				PID:  0,
				TID:  depth[s.id],
				ID:   s.id.String(),
				Args: attrMap(s.attrs),
			}
			if s.end.IsZero() {
				ev.Ph = "B"
			} else {
				ev.Dur = s.end.Sub(s.start).Microseconds()
			}
			tr.TraceEvents = append(tr.TraceEvents, ev)
			for _, e := range s.events {
				args := attrMap(e.Attrs)
				if args == nil {
					args = map[string]any{}
				}
				args["span"] = s.name
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: e.Name, Ph: "i", TS: us(e.Time), PID: 0, TID: depth[s.id], Args: args,
				})
			}
		}
		t.mu.Unlock()
	}
	return mustEncode(tr, " ")
}

// otlpValue is the OTLP AnyValue encoding of one attribute value.
type otlpValue struct {
	Str *string `json:"stringValue,omitempty"`
	Int *int64  `json:"intValue,omitempty"`
}

// otlpAttr is one OTLP KeyValue.
type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

func otlpAttrs(attrs []Attr) []otlpAttr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]otlpAttr, len(attrs))
	for i, a := range attrs {
		out[i] = otlpAttr{Key: a.Key}
		if a.IsInt {
			v := a.Int
			out[i].Value.Int = &v
		} else {
			v := a.Str
			out[i].Value.Str = &v
		}
	}
	return out
}

// otlpEvent is one OTLP Span.Event.
type otlpEvent struct {
	TimeUnixNano int64      `json:"timeUnixNano"`
	Name         string     `json:"name"`
	Attrs        []otlpAttr `json:"attributes,omitempty"`
}

// otlpSpan is one OTLP-style span line of the NDJSON export.
type otlpSpan struct {
	TraceID           string      `json:"traceId"`
	SpanID            string      `json:"spanId"`
	ParentSpanID      string      `json:"parentSpanId,omitempty"`
	Name              string      `json:"name"`
	StartTimeUnixNano int64       `json:"startTimeUnixNano"`
	EndTimeUnixNano   int64       `json:"endTimeUnixNano,omitempty"`
	Attrs             []otlpAttr  `json:"attributes,omitempty"`
	Events            []otlpEvent `json:"events,omitempty"`
}

// OTLP renders the trace as newline-delimited OTLP-style JSON: one span
// per line, every line self-contained (trace and parent IDs inline), so
// dumps from many runs or processes concatenate into one analyzable file
// with plain cat.
func (t *Tracer) OTLP() []byte {
	var buf bytes.Buffer
	if t == nil {
		return buf.Bytes()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(&buf)
	for _, s := range t.spans {
		line := otlpSpan{
			TraceID:           t.traceID,
			SpanID:            s.id.String(),
			Name:              s.name,
			StartTimeUnixNano: s.start.UnixNano(),
			Attrs:             otlpAttrs(s.attrs),
		}
		if s.parent != 0 {
			line.ParentSpanID = s.parent.String()
		}
		if !s.end.IsZero() {
			line.EndTimeUnixNano = s.end.UnixNano()
		}
		for _, e := range s.events {
			line.Events = append(line.Events, otlpEvent{
				TimeUnixNano: e.Time.UnixNano(), Name: e.Name, Attrs: otlpAttrs(e.Attrs),
			})
		}
		if err := enc.Encode(line); err != nil {
			panic(fmt.Sprintf("span: otlp encoding: %v", err))
		}
	}
	return buf.Bytes()
}

// mustEncode marshals v with the given indent. The export structs contain
// nothing json.Marshal can reject.
func mustEncode(v any, indent string) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", indent)
	if err := enc.Encode(v); err != nil {
		panic(fmt.Sprintf("span: trace encoding: %v", err))
	}
	return buf.Bytes()
}
