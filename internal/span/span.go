// Package span is the repo's hand-rolled run-lifecycle tracer: a
// lightweight, allocation-bounded span collector that makes the wall-clock
// anatomy of a simulation run (admission, queue wait, worker dispatch,
// trace decode, simulation stages, SSE streaming) visible as one timeline.
//
// The design follows the conventions of internal/obs: everything is
// reached through nil-able receivers, so instrumented code holds plain
// *Tracer / *Span fields and calls hooks unconditionally — with tracing
// off (nil tracer) every hook is a single predictable branch, no locks, no
// allocation, provably inert (test-enforced byte-identity of simulation
// outputs with and without an attached tracer).
//
// A Tracer owns one trace: a bounded set of spans sharing a trace ID.
// Each span has a name, a parent, wall-clock start/end instants, typed
// attributes and point-in-time events. The bounds are hard: beyond
// MaxSpans the tracer drops new spans (counting them), and beyond
// MaxEvents per span it drops new events, so a runaway instrumentation
// site can never grow memory without limit.
//
// Two exporters ship with the tracer (export.go): the Chrome trace_event
// format (loadable in chrome://tracing or Perfetto, matching the writer
// conventions of internal/obs's golden-tested event trace) and a
// newline-delimited OTLP-style JSON for offline tooling. Tree renders the
// parent-child structure as indented JSON for the observatory's
// GET /runs/{id}/trace endpoint.
package span

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// Bounds for the allocation caps. DefaultMaxSpans is sized for a full
// figure-sweep battery (hundreds of jobs), not just a single run.
const (
	DefaultMaxSpans  = 4096
	DefaultMaxEvents = 64
)

// ID is a span identifier, unique within one tracer.
type ID uint64

// String renders the ID in the fixed-width hex form used by exporters.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Attr is one typed key-value attribute on a span or event. Exactly one
// of Str/Int carries the value (IsInt distinguishes them), keeping the
// struct flat and allocation-free to construct.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Str: value} }

// Int builds an integer-valued attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Int: value, IsInt: true} }

// Bool builds a boolean attribute (rendered as the strings "true"/"false"
// so exporters stay type-simple).
func Bool(key string, value bool) Attr {
	if value {
		return String(key, "true")
	}
	return String(key, "false")
}

// Event is one point-in-time annotation on a span (a chaos fault firing,
// a decode-cache hit, an SSE gap).
type Event struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// Span is one timed operation. All fields are guarded by the owning
// tracer's mutex; mutate only through the methods. A nil *Span is valid
// and turns every method into a no-op, so callers thread spans through
// optional plumbing without nil checks.
type Span struct {
	tr     *Tracer
	id     ID
	parent ID // 0 = root
	name   string
	start  time.Time
	end    time.Time // zero while open
	attrs  []Attr
	events []Event

	droppedEvents int64
}

// Tracer owns one trace: a bounded span set sharing a trace ID. Safe for
// concurrent use from any number of goroutines; a nil *Tracer disables
// everything.
type Tracer struct {
	mu       sync.Mutex
	traceID  string
	spans    []*Span
	byID     map[ID]*Span
	nextID   ID
	maxSpans int
	dropped  int64

	// onEnd, when set, observes every span end (name, duration seconds).
	// The observatory feeds its per-stage Prometheus histograms from it.
	onEnd func(name string, seconds float64)
}

// New builds a tracer with a random 128-bit trace ID. maxSpans <= 0 means
// DefaultMaxSpans.
func New(maxSpans int) *Tracer {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived ID rather than plumbing an error through every
		// instrumentation site.
		binary.BigEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
	}
	return NewWithID(hex.EncodeToString(b[:]), maxSpans)
}

// NewWithID builds a tracer with an explicit trace ID (tests pin it for
// byte-stable exporter output).
func NewWithID(traceID string, maxSpans int) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{
		traceID:  traceID,
		byID:     map[ID]*Span{},
		maxSpans: maxSpans,
	}
}

// TraceID returns the trace identifier ("" on a nil tracer).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// SetOnEnd installs the span-end observer. Pass nil to remove it.
func (t *Tracer) SetOnEnd(fn func(name string, seconds float64)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onEnd = fn
	t.mu.Unlock()
}

// Dropped reports how many spans were discarded at the MaxSpans bound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many spans the tracer retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Start opens a span now. parent may be nil (a root span).
func (t *Tracer) Start(name string, parent *Span, attrs ...Attr) *Span {
	return t.StartAt(name, parent, time.Now(), attrs...)
}

// StartAt opens a span at an explicit instant. The observatory passes the
// same time.Time it stamps on the run's registry state, so span intervals
// reconcile with registry timestamps exactly, not merely approximately.
func (t *Tracer) StartAt(name string, parent *Span, at time.Time, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxSpans {
		t.dropped++
		return nil
	}
	t.nextID++
	s := &Span{tr: t, id: t.nextID, name: name, start: at}
	if parent != nil && parent.tr == t {
		s.parent = parent.id
	}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	t.spans = append(t.spans, s)
	t.byID[s.id] = s
	return s
}

// StartChild opens a child span of s on the same tracer. Nil-safe on both
// the span and its tracer.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.Start(name, s, attrs...)
}

// StartChildAt is StartChild at an explicit instant.
func (s *Span) StartChildAt(name string, at time.Time, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartAt(name, s, at, attrs...)
}

// ID returns the span's identifier (0 on nil).
func (s *Span) ID() ID {
	if s == nil {
		return 0
	}
	return s.id
}

// Tracer returns the owning tracer (nil on a nil span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// End closes the span now. Ending an already-ended span is a no-op, so
// defer s.End() composes with explicit EndAt calls on success paths.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt closes the span at an explicit instant and feeds the tracer's
// OnEnd observer.
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if !s.end.IsZero() {
		t.mu.Unlock()
		return
	}
	s.end = at
	onEnd := t.onEnd
	name, dur := s.name, at.Sub(s.start)
	t.mu.Unlock()
	if onEnd != nil {
		onEnd(name, dur.Seconds())
	}
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tr.mu.Unlock()
}

// Event records a point-in-time annotation now.
func (s *Span) Event(name string, attrs ...Attr) {
	s.EventAt(name, time.Now(), attrs...)
}

// EventAt records an annotation at an explicit instant. Beyond MaxEvents
// per span, events are dropped and counted.
func (s *Span) EventAt(name string, at time.Time, attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if len(s.events) >= DefaultMaxEvents {
		s.droppedEvents++
		s.tr.mu.Unlock()
		return
	}
	var a []Attr
	if len(attrs) > 0 {
		a = append(a, attrs...)
	}
	s.events = append(s.events, Event{Time: at, Name: name, Attrs: a})
	s.tr.mu.Unlock()
}

// SpanData is one span's immutable export view (see Tracer.Snapshot).
type SpanData struct {
	SpanID   ID
	ParentID ID // 0 for roots
	Name     string
	Start    time.Time
	End      time.Time // zero while still open
	Attrs    []Attr
	Events   []Event

	DroppedEvents int64
}

// Duration returns the span's length, or the zero duration while open.
func (d SpanData) Duration() time.Duration {
	if d.End.IsZero() {
		return 0
	}
	return d.End.Sub(d.Start)
}

// Snapshot copies the retained spans, in start order (the order they were
// opened). Exporters and tests consume this; the live spans stay private.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	for i, s := range t.spans {
		out[i] = SpanData{
			SpanID:        s.id,
			ParentID:      s.parent,
			Name:          s.name,
			Start:         s.start,
			End:           s.end,
			Attrs:         append([]Attr(nil), s.attrs...),
			Events:        append([]Event(nil), s.events...),
			DroppedEvents: s.droppedEvents,
		}
	}
	return out
}
