package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fixed instants so exporter output is byte-stable.
var (
	t0 = time.Unix(1700000000, 0).UTC()
	t1 = t0.Add(10 * time.Millisecond)
	t2 = t0.Add(25 * time.Millisecond)
	t3 = t0.Add(40 * time.Millisecond)
)

func buildFixedTrace(t *testing.T) *Tracer {
	t.Helper()
	tr := NewWithID("00112233445566778899aabbccddeeff", 0)
	root := tr.StartAt("run", nil, t0, String("run_id", "r1"))
	q := root.StartChildAt("queue", t0)
	q.EndAt(t1)
	ex := root.StartChildAt("execute", t1, Int("worker", 2))
	ev := ex.StartChildAt("sim.run", t1)
	ev.EventAt("chaos.fired", t2, String("what", "stall"), Int("ordinal", 3))
	ev.EndAt(t2)
	ex.EndAt(t3)
	root.EndAt(t3)
	return tr
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	if got := tr.TraceID(); got != "" {
		t.Fatalf("nil TraceID = %q", got)
	}
	s := tr.Start("x", nil, String("k", "v"))
	if s != nil {
		t.Fatalf("nil tracer Start returned non-nil span")
	}
	// Every span method must be a no-op on nil.
	s.End()
	s.EndAt(t1)
	s.SetAttrs(Int("n", 1))
	s.Event("e")
	s.EventAt("e", t1)
	if c := s.StartChild("child"); c != nil {
		t.Fatalf("nil span StartChild returned non-nil")
	}
	if got := s.ID(); got != 0 {
		t.Fatalf("nil span ID = %v", got)
	}
	if s.Tracer() != nil {
		t.Fatalf("nil span Tracer non-nil")
	}
	tr.SetOnEnd(func(string, float64) { t.Fatal("hook fired on nil tracer") })
	if tr.Dropped() != 0 || tr.Len() != 0 {
		t.Fatalf("nil tracer counters non-zero")
	}
	if snap := tr.Snapshot(); snap != nil {
		t.Fatalf("nil tracer Snapshot = %v", snap)
	}
	if got := tr.Tree(); !bytes.Contains(got, []byte(`"trace_id": ""`)) {
		t.Fatalf("nil Tree = %s", got)
	}
	if got := tr.Chrome(); !bytes.Contains(got, []byte(`"traceEvents": []`)) {
		t.Fatalf("nil Chrome = %s", got)
	}
	if got := tr.OTLP(); len(got) != 0 {
		t.Fatalf("nil OTLP = %q", got)
	}
}

func TestSnapshotStructureAndNesting(t *testing.T) {
	tr := buildFixedTrace(t)
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap))
	}
	byName := map[string]SpanData{}
	for _, d := range snap {
		byName[d.Name] = d
	}
	root := byName["run"]
	if root.ParentID != 0 {
		t.Fatalf("run parent = %v, want root", root.ParentID)
	}
	for _, name := range []string{"queue", "execute"} {
		if byName[name].ParentID != root.SpanID {
			t.Fatalf("%s parent = %v, want %v", name, byName[name].ParentID, root.SpanID)
		}
	}
	if byName["sim.run"].ParentID != byName["execute"].SpanID {
		t.Fatalf("sim.run parent wrong")
	}
	// Child intervals must sit inside their parents.
	for _, child := range []string{"queue", "execute"} {
		c := byName[child]
		if c.Start.Before(root.Start) || c.End.After(root.End) {
			t.Fatalf("%s [%v,%v] escapes parent [%v,%v]", child, c.Start, c.End, root.Start, root.End)
		}
	}
	// queue + execute tile the root exactly.
	if got := byName["queue"].Duration() + byName["execute"].Duration(); got != root.Duration() {
		t.Fatalf("queue+execute = %v, root = %v", got, root.Duration())
	}
	ev := byName["sim.run"].Events
	if len(ev) != 1 || ev[0].Name != "chaos.fired" || !ev[0].Time.Equal(t2) {
		t.Fatalf("sim.run events = %+v", ev)
	}
}

func TestOnEndHook(t *testing.T) {
	tr := New(0)
	var names []string
	var secs []float64
	tr.SetOnEnd(func(name string, s float64) { names = append(names, name); secs = append(secs, s) })
	s := tr.StartAt("stage", nil, t0)
	s.EndAt(t1)
	s.EndAt(t2) // idempotent: second End must not re-fire
	if len(names) != 1 || names[0] != "stage" {
		t.Fatalf("hook names = %v", names)
	}
	if want := t1.Sub(t0).Seconds(); secs[0] != want {
		t.Fatalf("hook seconds = %v, want %v", secs[0], want)
	}
	tr.SetOnEnd(nil)
	tr.StartAt("quiet", nil, t0).EndAt(t1)
	if len(names) != 1 {
		t.Fatalf("hook fired after removal")
	}
}

func TestSpanCapDropsAndCounts(t *testing.T) {
	tr := NewWithID("cap", 2)
	a := tr.StartAt("a", nil, t0)
	b := tr.StartAt("b", nil, t0)
	c := tr.StartAt("c", nil, t0)
	if a == nil || b == nil {
		t.Fatalf("spans under cap dropped")
	}
	if c != nil {
		t.Fatalf("span over cap retained")
	}
	if tr.Len() != 2 || tr.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 2/1", tr.Len(), tr.Dropped())
	}
	// The dropped span is nil, and nil composes: children of it vanish too.
	if c.StartChild("orphan") != nil {
		t.Fatalf("child of dropped span retained")
	}
}

func TestEventCapDropsAndCounts(t *testing.T) {
	tr := New(0)
	s := tr.StartAt("busy", nil, t0)
	for i := 0; i < DefaultMaxEvents+5; i++ {
		s.EventAt("e", t1)
	}
	d := tr.Snapshot()[0]
	if len(d.Events) != DefaultMaxEvents {
		t.Fatalf("kept %d events, want %d", len(d.Events), DefaultMaxEvents)
	}
	if d.DroppedEvents != 5 {
		t.Fatalf("dropped %d events, want 5", d.DroppedEvents)
	}
}

func TestTreeExportStable(t *testing.T) {
	tr := buildFixedTrace(t)
	got := tr.Tree()
	// Byte-stability: two exports of the same tracer are identical.
	if !bytes.Equal(got, tr.Tree()) {
		t.Fatalf("Tree export not deterministic")
	}
	var tree struct {
		TraceID      string `json:"trace_id"`
		DroppedSpans int64  `json:"dropped_spans"`
		Spans        []struct {
			Name       string `json:"name"`
			DurationNS int64  `json:"duration_ns"`
			Children   []struct {
				Name     string `json:"name"`
				Children []struct {
					Name   string `json:"name"`
					Events []struct {
						Name string `json:"name"`
					} `json:"events"`
				} `json:"children"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(got, &tree); err != nil {
		t.Fatalf("Tree not valid JSON: %v\n%s", err, got)
	}
	if tree.TraceID != "00112233445566778899aabbccddeeff" {
		t.Fatalf("trace_id = %q", tree.TraceID)
	}
	if len(tree.Spans) != 1 || tree.Spans[0].Name != "run" {
		t.Fatalf("roots = %+v", tree.Spans)
	}
	if got, want := tree.Spans[0].DurationNS, t3.Sub(t0).Nanoseconds(); got != want {
		t.Fatalf("run duration_ns = %d, want %d", got, want)
	}
	kids := tree.Spans[0].Children
	if len(kids) != 2 || kids[0].Name != "queue" || kids[1].Name != "execute" {
		t.Fatalf("children = %+v", kids)
	}
	grand := kids[1].Children
	if len(grand) != 1 || grand[0].Name != "sim.run" {
		t.Fatalf("grandchildren = %+v", grand)
	}
	if len(grand[0].Events) != 1 || grand[0].Events[0].Name != "chaos.fired" {
		t.Fatalf("events = %+v", grand[0].Events)
	}
}

func TestChromeExportStable(t *testing.T) {
	tr := buildFixedTrace(t)
	got := tr.Chrome()
	if !bytes.Equal(got, tr.Chrome()) {
		t.Fatalf("Chrome export not deterministic")
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		TraceID string `json:"traceId"`
	}
	if err := json.Unmarshal(got, &out); err != nil {
		t.Fatalf("Chrome not valid JSON: %v\n%s", err, got)
	}
	if out.TraceID != "00112233445566778899aabbccddeeff" {
		t.Fatalf("traceId = %q", out.TraceID)
	}
	// 4 spans + 1 instant event.
	if len(out.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5:\n%s", len(out.TraceEvents), got)
	}
	byName := map[string]int{}
	for i, e := range out.TraceEvents {
		byName[e.Name+e.Ph] = i
	}
	run := out.TraceEvents[byName["runX"]]
	if run.TS != 0 || run.Dur != t3.Sub(t0).Microseconds() || run.TID != 1 {
		t.Fatalf("run event = %+v", run)
	}
	sim := out.TraceEvents[byName["sim.runX"]]
	if sim.TID != 3 { // run=1, execute=2, sim.run=3
		t.Fatalf("sim.run tid = %d, want 3", sim.TID)
	}
	inst := out.TraceEvents[byName["chaos.firedi"]]
	if inst.TS != t2.Sub(t0).Microseconds() || inst.Args["span"] != "sim.run" {
		t.Fatalf("instant event = %+v", inst)
	}
}

func TestOTLPExportNDJSON(t *testing.T) {
	tr := buildFixedTrace(t)
	got := tr.OTLP()
	if !bytes.Equal(got, tr.OTLP()) {
		t.Fatalf("OTLP export not deterministic")
	}
	lines := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), got)
	}
	type line struct {
		TraceID      string `json:"traceId"`
		SpanID       string `json:"spanId"`
		ParentSpanID string `json:"parentSpanId"`
		Name         string `json:"name"`
		Start        int64  `json:"startTimeUnixNano"`
		End          int64  `json:"endTimeUnixNano"`
		Attrs        []struct {
			Key   string `json:"key"`
			Value struct {
				Str *string `json:"stringValue"`
				Int *int64  `json:"intValue"`
			} `json:"value"`
		} `json:"attributes"`
		Events []struct {
			Name string `json:"name"`
			Time int64  `json:"timeUnixNano"`
		} `json:"events"`
	}
	byName := map[string]line{}
	for _, raw := range lines {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("line not valid JSON: %v\n%s", err, raw)
		}
		if l.TraceID != "00112233445566778899aabbccddeeff" {
			t.Fatalf("line traceId = %q", l.TraceID)
		}
		byName[l.Name] = l
	}
	if byName["queue"].ParentSpanID != byName["run"].SpanID {
		t.Fatalf("queue parent = %q, run span = %q", byName["queue"].ParentSpanID, byName["run"].SpanID)
	}
	if byName["run"].ParentSpanID != "" {
		t.Fatalf("run has parent %q", byName["run"].ParentSpanID)
	}
	ex := byName["execute"]
	if ex.Start != t1.UnixNano() || ex.End != t3.UnixNano() {
		t.Fatalf("execute times = %d..%d", ex.Start, ex.End)
	}
	if len(ex.Attrs) != 1 || ex.Attrs[0].Key != "worker" || ex.Attrs[0].Value.Int == nil || *ex.Attrs[0].Value.Int != 2 {
		t.Fatalf("execute attrs = %+v", ex.Attrs)
	}
	sim := byName["sim.run"]
	if len(sim.Events) != 1 || sim.Events[0].Name != "chaos.fired" || sim.Events[0].Time != t2.UnixNano() {
		t.Fatalf("sim.run events = %+v", sim.Events)
	}
}

func TestOpenSpanExports(t *testing.T) {
	tr := NewWithID("open", 0)
	tr.StartAt("pending", nil, t0)
	var tree struct {
		Spans []struct {
			EndUnixNano int64 `json:"end_unix_nano"`
			DurationNS  int64 `json:"duration_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(tr.Tree(), &tree); err != nil {
		t.Fatal(err)
	}
	if tree.Spans[0].EndUnixNano != 0 || tree.Spans[0].DurationNS != 0 {
		t.Fatalf("open span has end: %+v", tree.Spans[0])
	}
	if !bytes.Contains(tr.Chrome(), []byte(`"ph": "B"`)) {
		t.Fatalf("open span not a B event:\n%s", tr.Chrome())
	}
	var otlp struct {
		End int64 `json:"endTimeUnixNano"`
	}
	if err := json.Unmarshal(tr.OTLP(), &otlp); err != nil {
		t.Fatal(err)
	}
	if otlp.End != 0 {
		t.Fatalf("open span OTLP end = %d", otlp.End)
	}
}

func TestBoolAttrAndIDString(t *testing.T) {
	if a := Bool("hit", true); a.Str != "true" || a.IsInt {
		t.Fatalf("Bool(true) = %+v", a)
	}
	if a := Bool("hit", false); a.Str != "false" {
		t.Fatalf("Bool(false) = %+v", a)
	}
	if got := ID(0x2a).String(); got != "000000000000002a" {
		t.Fatalf("ID string = %q", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New(64)
	root := tr.StartAt("root", nil, t0)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				s := root.StartChild("child")
				s.Event("tick")
				s.SetAttrs(Int("i", int64(i)))
				s.End()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if tr.Len() != 64 {
		t.Fatalf("Len = %d, want cap 64", tr.Len())
	}
	if tr.Dropped() != 8*50+1-64 {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), 8*50+1-64)
	}
	// Exports must not race or corrupt.
	tr.Tree()
	tr.Chrome()
	tr.OTLP()
}
