package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cppcache/internal/mach"
)

func TestIsSmall(t *testing.T) {
	small := []mach.Word{0, 1, 16383, 0xFFFFFFFF /* -1 */, 0xFFFFC000 /* -16384 */}
	for _, v := range small {
		if !IsSmall(v) {
			t.Errorf("IsSmall(%#x) = false, want true", v)
		}
	}
	big := []mach.Word{16384, 0xFFFFBFFF /* -16385 */, 0x80000000, 0x12345678, 0x00004000}
	for _, v := range big {
		if IsSmall(v) {
			t.Errorf("IsSmall(%#x) = true, want false", v)
		}
	}
}

func TestSmallRangeMatchesConstants(t *testing.T) {
	// The compressible small-value range quoted by the paper.
	if SmallMin != -16384 || SmallMax != 16383 {
		t.Fatalf("small range [%d, %d], want [-16384, 16383]", SmallMin, SmallMax)
	}
	lo, hi := int32(SmallMin), int32(SmallMax)
	if !IsSmall(mach.Word(lo)) || !IsSmall(mach.Word(hi)) {
		t.Error("range endpoints not compressible")
	}
	if IsSmall(mach.Word(lo-1)) || IsSmall(mach.Word(hi+1)) {
		t.Error("values just outside range compressible")
	}
}

func TestIsPointerLike(t *testing.T) {
	// Same 32K chunk: top 17 bits agree.
	if !IsPointerLike(0x10001234, 0x10004ABC) {
		t.Error("pointers in same 32K chunk should be pointer-like")
	}
	// Different chunk.
	if IsPointerLike(0x10001234, 0x10008000) {
		t.Error("pointers in different 32K chunks should not be pointer-like")
	}
	if !IsPointerLike(0xDEADBEEF, 0xDEADBEEF) {
		t.Error("a value equal to its own address is pointer-like")
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	f := func(v mach.Word, addr mach.Addr) bool {
		c, ok := Compress(v, addr)
		if ok != Compressible(v, addr) {
			return false
		}
		if !ok {
			return true
		}
		return Decompress(c, addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripBiasedValues(t *testing.T) {
	// quick.Check rarely generates small or pointer-like values; bias
	// explicitly so both compression paths are exercised densely.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		addr := mach.Addr(rng.Uint32()) &^ 3
		var v mach.Word
		switch i % 3 {
		case 0: // small
			v = mach.Word(int32(rng.Intn(SmallMax-SmallMin+1) + SmallMin))
		case 1: // pointer into the same chunk
			v = (addr & prefixMask) | mach.Word(rng.Uint32())&payloadMask
		default: // arbitrary
			v = rng.Uint32()
		}
		c, ok := Compress(v, addr)
		if !ok {
			if Compressible(v, addr) {
				t.Fatalf("Compress(%#x, %#x) failed but Compressible is true", v, addr)
			}
			continue
		}
		if got := Decompress(c, addr); got != v {
			t.Fatalf("round trip %#x @ %#x: got %#x (VT=%v)", v, addr, got, c.IsPointer())
		}
	}
}

func TestCompressedFlags(t *testing.T) {
	c, ok := Compress(42, 0x10000000)
	if !ok || c.IsPointer() {
		t.Errorf("42 should compress as a small value, got ok=%v pointer=%v", ok, c.IsPointer())
	}
	if c.Payload() != 42 {
		t.Errorf("payload = %d, want 42", c.Payload())
	}
	// Pointer-only value: high bits match address, but not a small value.
	c, ok = Compress(0x10001234, 0x10000000)
	if !ok || !c.IsPointer() {
		t.Errorf("0x10001234 @ 0x10000000 should compress as a pointer, got ok=%v pointer=%v", ok, c.IsPointer())
	}
}

func TestIncompressible(t *testing.T) {
	if _, ok := Compress(0x7FFFFFFF, 0x10000000); ok {
		t.Error("large non-pointer value compressed")
	}
	if Compressible(0x40000000, 0x10000000) {
		t.Error("Compressible accepted a big value with mismatched prefix")
	}
}

func TestSmallPreferredOverPointer(t *testing.T) {
	// Address with zero prefix: small zero value satisfies both rules.
	// Reconstruction must be exact regardless of the rule applied.
	addr := mach.Addr(0x00001000)
	v := mach.Word(0x00000FFC)
	c, ok := Compress(v, addr)
	if !ok {
		t.Fatal("value satisfying both rules did not compress")
	}
	if got := Decompress(c, addr); got != v {
		t.Fatalf("got %#x, want %#x", got, v)
	}
}

func TestDecompressNegativeSmall(t *testing.T) {
	for _, s := range []int32{-1, -2, -16384, -9999} {
		v := mach.Word(s)
		c, ok := Compress(v, 0xABCD0000)
		if !ok {
			t.Fatalf("small negative %d did not compress", s)
		}
		if got := Decompress(c, 0xABCD0000); got != v {
			t.Fatalf("negative %d round trip: got %#x want %#x", s, got, v)
		}
	}
}

func TestGateDelays(t *testing.T) {
	// The paper's figures: 8 gate delays to compress, 2 to decompress.
	if CompressDelayGates != 8 {
		t.Errorf("CompressDelayGates = %d, want 8", CompressDelayGates)
	}
	if DecompressDelayGates != 2 {
		t.Errorf("DecompressDelayGates = %d, want 2", DecompressDelayGates)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]mach.Word, 1024)
	addrs := make([]mach.Addr, 1024)
	for i := range vals {
		vals[i] = rng.Uint32()
		addrs[i] = rng.Uint32() &^ 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(vals[i%1024], addrs[i%1024])
	}
}

func BenchmarkDecompress(b *testing.B) {
	c, _ := Compress(42, 0)
	for i := 0; i < b.N; i++ {
		Decompress(c, mach.Addr(i))
	}
}

func TestLineHalves(t *testing.T) {
	// 2 compressible + 1 incompressible = 2*1 + 1*2 = 4 halves.
	words := []mach.Word{1, 0xFFFFFFFE, 0xDEAD8001}
	if got := LineHalves(words, 0x1000); got != 4 {
		t.Errorf("LineHalves = %d, want 4", got)
	}
	if got := LineHalves(nil, 0); got != 0 {
		t.Errorf("LineHalves(nil) = %d", got)
	}
	// A pointer compressible only relative to its own slot address.
	ptr := []mach.Word{0x10001234}
	if got := LineHalves(ptr, 0x10000000); got != 1 {
		t.Errorf("pointer LineHalves = %d, want 1", got)
	}
	if got := LineHalves(ptr, 0x20000000); got != 2 {
		t.Errorf("cross-chunk pointer LineHalves = %d, want 2", got)
	}
}

func TestCountCompressible(t *testing.T) {
	words := []mach.Word{1, 0xDEAD8001, 2, 0x70018000}
	if got := CountCompressible(words, 0x1000); got != 2 {
		t.Errorf("CountCompressible = %d, want 2", got)
	}
}

func TestLineHalvesBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		words := make([]mach.Word, int(n%64)+1)
		for i := range words {
			words[i] = rng.Uint32()
		}
		base := mach.Addr(rng.Uint32()) &^ 3
		h := LineHalves(words, base)
		c := CountCompressible(words, base)
		// h = c*1 + (len-c)*2, and c matches per-word checks.
		return h == c+2*(len(words)-c) && c >= 0 && c <= len(words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompressibleWidth(t *testing.T) {
	// Width 15 must agree with the paper's scheme everywhere.
	f := func(v mach.Word, a mach.Addr) bool {
		return CompressibleWidth(v, a, PayloadBits) == Compressible(v, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Monotonicity: anything compressible at width w stays compressible
	// at width w+8.
	g := func(v mach.Word, a mach.Addr) bool {
		for _, w := range []int{7, 15, 23} {
			if CompressibleWidth(v, a, w) && !CompressibleWidth(v, a, w+8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Degenerate widths.
	if CompressibleWidth(5, 0, 0) {
		t.Error("width 0 accepted a value")
	}
	if !CompressibleWidth(0xDEADBEEF, 0, 32) {
		t.Error("width 32 should accept everything")
	}
	// Specific boundaries at width 7: small range is [-64, 63].
	if !CompressibleWidth(63, 0x40000000, 7) || CompressibleWidth(64, 0x40000000, 7) {
		t.Error("width-7 small boundary wrong")
	}
}
