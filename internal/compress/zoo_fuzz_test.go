package compress

// Per-scheme roundtrip fuzzers. Each target asserts the cross-scheme
// property on arbitrary byte-derived lines: the decompressed output is
// byte-identical to the input, the size function matches the emitted
// image, and the compressed size never exceeds the scheme's declared
// worst case. CI runs each target as a 30-second smoke on every push.

import (
	"encoding/binary"
	"reflect"
	"testing"

	"cppcache/internal/mach"
)

// fuzzSeedLines are shared corpus seeds covering the interesting value
// classes: zeros, repeats, small values, pointer-like words, narrow
// deltas, dictionary near-matches and dense entropy.
var fuzzSeedLines = [][]byte{
	make([]byte, 64),
	{0xEF, 0xBE, 0xAD, 0xDE, 0xEF, 0xBE, 0xAD, 0xDE},
	{0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00},
	{0x00, 0x01, 0x00, 0x40, 0x10, 0x01, 0x00, 0x40, 0x20, 0x01, 0x00, 0x40},
	{0xBE, 0xBA, 0xFE, 0xCA, 0x00, 0xBA, 0xFE, 0xCA, 0xFF, 0xFF, 0xFF, 0xFF},
	{0x78, 0x56, 0x34, 0x12, 0xEF},
}

// fuzzRoundtrip converts the fuzz bytes into a word line (up to 32 words,
// little-endian; a ragged tail is zero-padded into the final word) and
// asserts the full contract for one scheme.
func fuzzRoundtrip(f *testing.F, scheme string) {
	for _, line := range fuzzSeedLines {
		f.Add(line, uint32(0x1000_0000))
	}
	c, err := Get(scheme)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte, base uint32) {
		if len(data) == 0 {
			return
		}
		if len(data) > 32*mach.WordBytes {
			data = data[:32*mach.WordBytes]
		}
		n := (len(data) + mach.WordBytes - 1) / mach.WordBytes
		padded := make([]byte, n*mach.WordBytes)
		copy(padded, data)
		words := make([]mach.Word, n)
		for i := range words {
			words[i] = mach.Word(binary.LittleEndian.Uint32(padded[i*mach.WordBytes:]))
		}
		lineBase := mach.Addr(base) &^ (mach.WordBytes - 1)

		enc := c.CompressLine(words, lineBase)
		if h := c.LineHalves(words, lineBase); h != enc.Halves() {
			t.Fatalf("%s: LineHalves=%d, image=%d halves (%d bits)", scheme, h, enc.Halves(), enc.NBits)
		}
		if w := c.WorstCaseHalves(len(words)); enc.Halves() > w {
			t.Fatalf("%s: %d halves exceeds worst case %d for %d words", scheme, enc.Halves(), w, len(words))
		}
		out := make([]mach.Word, len(words))
		if err := c.DecompressLine(enc, lineBase, out); err != nil {
			t.Fatalf("%s: decompress: %v", scheme, err)
		}
		if !reflect.DeepEqual(out, words) {
			t.Fatalf("%s: roundtrip mismatch:\n in  %#v\n out %#v", scheme, words, out)
		}
	})
}

func FuzzCPackRoundtrip(f *testing.F) { fuzzRoundtrip(f, "cpack") }

func FuzzFPCRoundtrip(f *testing.F) { fuzzRoundtrip(f, "fpc") }

func FuzzBDIRoundtrip(f *testing.F) { fuzzRoundtrip(f, "bdi") }
