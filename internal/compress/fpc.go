package compress

// FPC (Alameldeen & Wood, "Frequent Pattern Compression", and the
// derivative model used by the disaggregated-memory simulators): the line
// is carved into 64-bit chunks — two adjacent 32-bit words, low word
// first — and each chunk gets a 3-bit prefix naming the first frequent
// pattern it matches, followed by only the pattern's significant bits:
//
//	prefix 0  all-zero chunk                                  0 payload bits
//	prefix 1  sign-/zero-compressed to the low byte           8
//	prefix 2  compressed to the low 16 bits                  16
//	prefix 3  compressed to the low 32 bits                  32
//	prefix 4  low 32 bits zero (payload is the high word)    32
//	prefix 5  two 32-bit halves, each with a zero high half  32
//	prefix 6  no pattern, chunk emitted raw                  64
//
// A chunk matches mask m when v &^ m == 0, i.e. every bit outside the
// mask is zero. Zero runs are not aggregated: each zero chunk costs its
// own 3-bit prefix, which keeps the size function local and the encoder
// stateless. A line with an odd word count pads the final chunk's high
// word with zeros (and the decoder rejects an image that decodes nonzero
// padding). Like C-Pack, FPC is value-only — the base address does not
// influence the encoding.

import (
	"fmt"
	"math/bits"

	"cppcache/internal/mach"
)

const fpcPrefixBits = 3

// fpcMasks are the pattern masks in match-priority order; a chunk's
// payload is its bits at the mask's set positions, gathered LSB-first.
var fpcMasks = [...]uint64{
	0x0000_0000_0000_0000, // zero chunk
	0x0000_0000_0000_00FF, // low byte
	0x0000_0000_0000_FFFF, // low 16
	0x0000_0000_FFFF_FFFF, // low word
	0xFFFF_FFFF_0000_0000, // high word (low word zero)
	0x0000_FFFF_0000_FFFF, // two halfwords, each zero-extended
}

const fpcRawPrefix = len(fpcMasks) // 6: uncompressed 64-bit chunk

// fpcGather collects v's bits at the set positions of mask, LSB-first.
func fpcGather(v, mask uint64) uint64 {
	var out uint64
	bit := 0
	for m := mask; m != 0; m &= m - 1 {
		out |= v >> uint(bits.TrailingZeros64(m)) & 1 << bit
		bit++
	}
	return out
}

// fpcScatter is the inverse of fpcGather: it spreads p's low bits onto
// the set positions of mask.
func fpcScatter(p, mask uint64) uint64 {
	var out uint64
	bit := 0
	for m := mask; m != 0; m &= m - 1 {
		out |= p >> bit & 1 << uint(bits.TrailingZeros64(m))
		bit++
	}
	return out
}

// fpcClassify returns the first matching prefix for a chunk.
func fpcClassify(v uint64) int {
	for i, m := range fpcMasks {
		if v&^m == 0 {
			return i
		}
	}
	return fpcRawPrefix
}

// fpcChunkBits is the encoded size of a chunk under each prefix.
func fpcChunkBits(prefix int) int {
	if prefix == fpcRawPrefix {
		return fpcPrefixBits + 64
	}
	return fpcPrefixBits + bits.OnesCount64(fpcMasks[prefix])
}

// fpcChunk assembles chunk c (two words, or one zero-padded word at an
// odd tail) of the line.
func fpcChunk(words []mach.Word, c int) uint64 {
	v := uint64(words[2*c])
	if 2*c+1 < len(words) {
		v |= uint64(words[2*c+1]) << 32
	}
	return v
}

type fpcScheme struct{}

func (fpcScheme) Name() string { return "fpc" }

func (fpcScheme) LineHalves(words []mach.Word, _ mach.Addr) int {
	total := 0
	for c := 0; c < (len(words)+1)/2; c++ {
		total += fpcChunkBits(fpcClassify(fpcChunk(words, c)))
	}
	return (total + 15) / 16
}

func (fpcScheme) WorstCaseHalves(nwords int) int {
	return ((nwords+1)/2*(fpcPrefixBits+64) + 15) / 16
}

// Gate-delay model: the six mask comparisons are parallel 64-bit
// zero-detect trees (6 levels) followed by a 3-level priority select —
// ~9 levels. The decompressor decodes the 3-bit prefix and drives a
// per-bit placement mux — ~5 levels.
const (
	fpcCompressDelayGates   = 9
	fpcDecompressDelayGates = 5
)

func (fpcScheme) CompressorDelayGates() int   { return fpcCompressDelayGates }
func (fpcScheme) DecompressorDelayGates() int { return fpcDecompressDelayGates }

func (fpcScheme) CompressLine(words []mach.Word, _ mach.Addr) Encoded {
	var bw bitWriter
	for c := 0; c < (len(words)+1)/2; c++ {
		v := fpcChunk(words, c)
		prefix := fpcClassify(v)
		bw.write(uint64(prefix), fpcPrefixBits)
		if prefix == fpcRawPrefix {
			bw.write(v, 64)
		} else {
			m := fpcMasks[prefix]
			bw.write(fpcGather(v, m), bits.OnesCount64(m))
		}
	}
	return bw.encoded()
}

func (fpcScheme) DecompressLine(enc Encoded, _ mach.Addr, out []mach.Word) error {
	r := newBitReader(enc)
	for c := 0; c < (len(out)+1)/2; c++ {
		prefix, err := r.read(fpcPrefixBits)
		if err != nil {
			return err
		}
		var v uint64
		switch {
		case prefix == uint64(fpcRawPrefix):
			if v, err = r.read(64); err != nil {
				return err
			}
		case prefix < uint64(len(fpcMasks)):
			m := fpcMasks[prefix]
			p, err := r.read(bits.OnesCount64(m))
			if err != nil {
				return err
			}
			v = fpcScatter(p, m)
		default:
			return fmt.Errorf("compress: fpc reserved prefix %d at chunk %d", prefix, c)
		}
		out[2*c] = mach.Word(v)
		if 2*c+1 < len(out) {
			out[2*c+1] = mach.Word(v >> 32)
		} else if v>>32 != 0 {
			return fmt.Errorf("compress: fpc nonzero padding in odd tail chunk %d", c)
		}
	}
	return nil
}
