package compress

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cppcache/internal/mach"
)

// mustGet resolves a scheme or fails the test.
func mustGet(t *testing.T, name string) Compressor {
	t.Helper()
	c, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegistry(t *testing.T) {
	want := []string{"paper", "cpack", "fpc", "bdi"}
	if got := Schemes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Schemes() = %v, want %v", got, want)
	}
	if Default().Name() != "paper" {
		t.Fatalf("default scheme is %s, want paper", Default().Name())
	}
	for _, name := range []string{"", "paper", "PAPER", " Paper "} {
		if c, err := Get(name); err != nil || c.Name() != "paper" {
			t.Fatalf("Get(%q) = %v, %v; want paper", name, c, err)
		}
	}
	if c := mustGet(t, "FPC"); c.Name() != "fpc" {
		t.Fatalf("Get is not case-insensitive: got %s", c.Name())
	}
	if _, err := Get("zlib"); err == nil {
		t.Fatal("unknown scheme not rejected")
	}
}

// checkLine asserts the cross-scheme contract on one line: the size
// function matches the emitted image, the worst-case bound holds, and
// decompression is byte-identical to the input.
func checkLine(t *testing.T, c Compressor, words []mach.Word, base mach.Addr) {
	t.Helper()
	enc := c.CompressLine(words, base)
	if h := c.LineHalves(words, base); h != enc.Halves() {
		t.Fatalf("%s: LineHalves=%d but image is %d halves (%d bits) for %#v at %#x",
			c.Name(), h, enc.Halves(), enc.NBits, words, base)
	}
	if w := c.WorstCaseHalves(len(words)); enc.Halves() > w {
		t.Fatalf("%s: %d halves exceeds declared worst case %d for %d words",
			c.Name(), enc.Halves(), w, len(words))
	}
	out := make([]mach.Word, len(words))
	if err := c.DecompressLine(enc, base, out); err != nil {
		t.Fatalf("%s: decompress: %v", c.Name(), err)
	}
	if !reflect.DeepEqual(out, words) {
		t.Fatalf("%s: roundtrip mismatch:\n in  %#v\n out %#v", c.Name(), words, out)
	}
}

// randomLine builds a line mixing the generator's value classes.
func randomLine(rng *rand.Rand, n int, base mach.Addr) []mach.Word {
	words := make([]mach.Word, n)
	for i := range words {
		a := base + mach.Addr(i*mach.WordBytes)
		switch rng.Intn(6) {
		case 0:
			words[i] = 0
		case 1:
			words[i] = mach.Word(int32(rng.Intn(1<<15)) - (1 << 14))
		case 2:
			words[i] = (a &^ 0x7FFF) | mach.Word(rng.Intn(1<<15))&^3
		case 3:
			words[i] = words[rng.Intn(i+1)] // encourage dictionary/rep hits
		case 4:
			words[i] = mach.Word(0x1000_0000 + rng.Intn(256)) // narrow deltas
		default:
			words[i] = rng.Uint32() | 1<<30
		}
	}
	return words
}

// TestConformanceQuick drives every registered scheme through the
// testing/quick harness: random lines, random bases, the full contract.
func TestConformanceQuick(t *testing.T) {
	for _, name := range Schemes() {
		c := mustGet(t, name)
		t.Run(name, func(t *testing.T) {
			f := func(n uint8, baseSel uint16, s int64) bool {
				rng := rand.New(rand.NewSource(s))
				nwords := 1 + int(n)%32
				base := mach.Addr(baseSel) << 6 // word- and line-aligned
				checkLine(t, c, randomLine(rng, nwords, base), base)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGateDelayDeterministic pins the contract that the latency model is
// a pure function: repeated queries agree and are positive, and the paper
// scheme matches the §3.2 constants.
func TestGateDelayDeterministic(t *testing.T) {
	for _, name := range Schemes() {
		c := mustGet(t, name)
		if c.CompressorDelayGates() <= 0 || c.DecompressorDelayGates() <= 0 {
			t.Fatalf("%s: non-positive gate delays", name)
		}
		if c.CompressorDelayGates() != c.CompressorDelayGates() ||
			c.DecompressorDelayGates() != c.DecompressorDelayGates() {
			t.Fatalf("%s: gate delay model is not deterministic", name)
		}
	}
	p := mustGet(t, "paper")
	if p.CompressorDelayGates() != CompressDelayGates || p.DecompressorDelayGates() != DecompressDelayGates {
		t.Fatalf("paper delays (%d, %d) disagree with package constants (%d, %d)",
			p.CompressorDelayGates(), p.DecompressorDelayGates(), CompressDelayGates, DecompressDelayGates)
	}
}

// TestPaperSchemeMatchesLegacy pins the adapter to the free functions the
// rest of the simulator calls: identical sizes on every value class.
func TestPaperSchemeMatchesLegacy(t *testing.T) {
	p := mustGet(t, "paper")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		base := mach.Addr(rng.Intn(1<<16)) << 6
		words := randomLine(rng, 1+rng.Intn(32), base)
		if got, want := p.LineHalves(words, base), LineHalves(words, base); got != want {
			t.Fatalf("paper adapter LineHalves=%d, legacy LineHalves=%d", got, want)
		}
		checkLine(t, p, words, base)
	}
}

func TestKnownVectors(t *testing.T) {
	base := mach.Addr(0x1000_0000)
	zeros := make([]mach.Word, 16)
	cases := []struct {
		scheme string
		words  []mach.Word
		halves int
	}{
		// 16 zero words: paper 16x1 half; cpack 16x2 bits = 32 -> 2;
		// fpc 8 chunks x 3 bits = 24 -> 2; bdi 4 bits -> 1.
		{"paper", zeros, 16},
		{"cpack", zeros, 2},
		{"fpc", zeros, 2},
		{"bdi", zeros, 1},
		// A repeated incompressible word: cpack pays 34 bits once then
		// 6 bits per full match (34 + 15*6 = 124 -> 8); bdi uses the
		// repeat selector (4+32 = 36 -> 3); paper pays full freight.
		{"paper", repeat(0xDEAD_BEEF, 16), 32},
		{"cpack", repeat(0xDEAD_BEEF, 16), 8},
		{"bdi", repeat(0xDEAD_BEEF, 16), 3},
		// fpc: 16 words whose high halves are zero pair into 8 chunks of
		// the two-halfword pattern: 8 x (3+32) = 280 bits -> 18 halves.
		{"fpc", repeat(0x0000_BEEF, 16), 18},
		// bdi base4-delta1: a shared high base with byte deltas:
		// 4 + 32 + 16*(1+8) = 180 bits -> 12 halves.
		{"bdi", deltas(0x4000_0100, 16), 12},
	}
	for _, tc := range cases {
		c := mustGet(t, tc.scheme)
		if got := c.LineHalves(tc.words, base); got != tc.halves {
			t.Errorf("%s: LineHalves = %d, want %d", tc.scheme, got, tc.halves)
		}
		checkLine(t, c, tc.words, base)
	}
}

func repeat(v mach.Word, n int) []mach.Word {
	out := make([]mach.Word, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func deltas(base mach.Word, n int) []mach.Word {
	out := make([]mach.Word, n)
	for i := range out {
		out[i] = base + mach.Word(i)
	}
	return out
}

// TestCPackDictionary pins the FIFO-dictionary semantics: a second
// occurrence of a word is a 6-bit full match, a shared 3-byte prefix is a
// 16-bit partial match.
func TestCPackDictionary(t *testing.T) {
	c := mustGet(t, "cpack")
	full := []mach.Word{0xCAFE_BABE, 0xCAFE_BABE}
	if got := c.LineHalves(full, 0); got != (34+6+15)/16 {
		t.Fatalf("full match line = %d halves, want %d", got, (34+6+15)/16)
	}
	partial := []mach.Word{0xCAFE_BA00, 0xCAFE_BA42}
	if got := c.LineHalves(partial, 0); got != (34+16+15)/16 {
		t.Fatalf("partial match line = %d halves, want %d", got, (34+16+15)/16)
	}
	checkLine(t, c, full, 0)
	checkLine(t, c, partial, 0)
}

// TestDecompressRejectsTruncation: a short image errors instead of
// fabricating data or panicking.
func TestDecompressRejectsTruncation(t *testing.T) {
	base := mach.Addr(0x2000_0000)
	words := []mach.Word{0xDEAD_BEEF, 0x1234_5678, 0x0BAD_F00D, 0xFEED_FACE}
	for _, name := range Schemes() {
		c := mustGet(t, name)
		enc := c.CompressLine(words, base)
		trunc := enc
		trunc.NBits = enc.NBits / 2
		trunc.Bits = enc.Bits[:(trunc.NBits+7)/8]
		out := make([]mach.Word, len(words))
		if err := c.DecompressLine(trunc, base, out); err == nil {
			t.Errorf("%s: truncated image decoded without error", name)
		}
	}
}

// TestOddWordCounts exercises the tail-handling paths (fpc's zero-padded
// chunk, bdi's skipped 8-byte modes) across every scheme.
func TestOddWordCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, name := range Schemes() {
		c := mustGet(t, name)
		for _, n := range []int{1, 3, 5, 7, 15, 31} {
			base := mach.Addr(rng.Intn(1<<14)) << 6
			checkLine(t, c, randomLine(rng, n, base), base)
		}
	}
}
