// Package compress implements the paper's dynamic value compression scheme
// (§2.1, Figures 1 and 2).
//
// A 32-bit word is compressible to 16 bits when either
//
//   - its 18 high-order bits are all zeros or all ones (a "small value" in
//     [-16384, 16383]; the 17 high bits are discarded and the remaining
//     sign bit is re-extended on decompression), or
//   - its 17 high-order bits equal the 17 high-order bits of the address at
//     which the word is stored (a "pointer" into the same 32K-aligned
//     memory chunk; the shared prefix is discarded and reconstructed from
//     the accessing address).
//
// The compressed form is 16 bits: bit 15 is the VT flag (1 = pointer,
// 0 = small value) and bits 14..0 carry the low 15 bits of the original
// word. A separate VC flag — stored in the cache's tag metadata, not in the
// compressed halfword — records whether a slot holds a compressed value.
package compress

import "cppcache/internal/mach"

const (
	// PrefixBits is the number of discarded high-order bits (§3.1).
	PrefixBits = 17
	// SignBits is the number of high-order bits that must be identical
	// for small-value compression (§2.1: "higher order 18 bits all 0s or
	// 1s"); one sign bit of the 18 survives in the compressed form.
	SignBits = 18
	// PayloadBits is the number of original low-order bits kept.
	PayloadBits = 32 - PrefixBits // 15
)

const (
	payloadMask = mach.Word(1)<<PayloadBits - 1 // low 15 bits
	vtFlag      = uint16(1) << 15               // VT: pointer (1) vs small (0)
	signBit     = mach.Word(1) << (PayloadBits - 1)
	prefixMask  = ^payloadMask // high 17 bits
	signMask    = ^(mach.Word(1)<<(32-SignBits) - 1)
)

// SmallMin and SmallMax bound the compressible small-value range
// ([-16384, 16383] as signed 32-bit integers).
const (
	SmallMin = -1 << (PayloadBits - 1)
	SmallMax = 1<<(PayloadBits-1) - 1
)

// Compressed is a 16-bit compressed word: VT flag plus 15 payload bits.
type Compressed uint16

// IsPointer reports whether c encodes a pointer (VT flag set).
func (c Compressed) IsPointer() bool { return uint16(c)&vtFlag != 0 }

// Payload returns the low 15 bits of the original word.
func (c Compressed) Payload() mach.Word { return mach.Word(c) & payloadMask }

// IsSmall reports whether v is compressible as a small value: its 18
// high-order bits are all zeros or all ones.
func IsSmall(v mach.Word) bool {
	top := v & signMask
	return top == 0 || top == signMask
}

// IsPointerLike reports whether v is compressible as a pointer when stored
// at byte address addr: the two share their 17 high-order bits.
func IsPointerLike(v mach.Word, addr mach.Addr) bool {
	return (v^addr)&prefixMask == 0
}

// Compressible reports whether v, stored at addr, is compressible under
// either rule.
func Compressible(v mach.Word, addr mach.Addr) bool {
	return IsSmall(v) || IsPointerLike(v, addr)
}

// Compress encodes v (stored at addr) into its 16-bit form. ok is false —
// and the returned Compressed meaningless — when v is not compressible.
// Small-value encoding is preferred when both rules apply; decompression
// yields the identical word either way, because a word whose top 18 bits
// match its address's top 17 bits satisfies both reconstructions only when
// the reconstructions agree.
func Compress(v mach.Word, addr mach.Addr) (c Compressed, ok bool) {
	switch {
	case IsSmall(v):
		return Compressed(v & payloadMask), true
	case IsPointerLike(v, addr):
		return Compressed(v&payloadMask) | Compressed(vtFlag), true
	default:
		return 0, false
	}
}

// Decompress reconstructs the original 32-bit word from its compressed form
// and the byte address it is being read from.
func Decompress(c Compressed, addr mach.Addr) mach.Word {
	p := c.Payload()
	if c.IsPointer() {
		return (addr & prefixMask) | p
	}
	if p&signBit != 0 { // negative small value: extend ones
		return p | prefixMask
	}
	return p
}

// Gate-delay model of the combinational logic (§3.2, Figure 8). The checks
// run in parallel: each 17/18-bit comparison is a log2-depth reduction tree
// (5 levels of 2-input gates), plus 3 levels to select among the cases.
const (
	// CompressDelayGates is the depth of the compressor: 5-level
	// reduction trees in parallel plus 3 selection levels.
	CompressDelayGates = 5 + 3
	// DecompressDelayGates is the depth of the decompressor: two gate
	// levels gating the reconstructed prefix onto the output.
	DecompressDelayGates = 2
)

// LineHalves returns the compressed size, in 16-bit half-words, of the
// given words stored consecutively from the word-aligned base address:
// each compressible word occupies one half-word on the bus, each
// incompressible word two. This is the transfer size used by the BCC
// configuration and by CPP write-backs.
func LineHalves(words []mach.Word, base mach.Addr) int {
	n := 0
	for i, v := range words {
		if Compressible(v, base+mach.Addr(i*mach.WordBytes)) {
			n++
		} else {
			n += 2
		}
	}
	return n
}

// CountCompressible returns how many of the words, stored consecutively
// from base, are compressible.
func CountCompressible(words []mach.Word, base mach.Addr) int {
	n := 0
	for i, v := range words {
		if Compressible(v, base+mach.Addr(i*mach.WordBytes)) {
			n++
		}
	}
	return n
}

// CompressibleWidth generalises Compressible to an arbitrary compressed
// width: payloadBits is the number of low-order value bits kept (the
// paper's scheme keeps 15). A small value must sign-extend through the
// top 32-payloadBits+1 bits; a pointer must share its top 32-payloadBits
// bits with the address. This is the knob behind the compression-width
// ablation: it answers how the compressible fraction, and therefore BCC's
// bus traffic, would change with 8-, 16- or 24-bit compressed words.
func CompressibleWidth(v mach.Word, addr mach.Addr, payloadBits int) bool {
	if payloadBits <= 0 || payloadBits >= 32 {
		return payloadBits >= 32
	}
	prefix := ^(mach.Word(1)<<payloadBits - 1)
	signRegion := ^(mach.Word(1)<<(payloadBits-1) - 1)
	top := v & signRegion
	if top == 0 || top == signRegion {
		return true
	}
	return (v^addr)&prefix == 0
}
