package compress

import (
	"testing"

	"cppcache/internal/mach"
)

// FuzzCompressRoundtrip asserts, for arbitrary (value, address) pairs, that
// the three compressibility predicates agree and that compression is the
// identity through decompression — the property the whole CPP design rests
// on (§2.1): a compressed word must reconstruct bit-exactly from its 16-bit
// form plus the accessing address.
func FuzzCompressRoundtrip(f *testing.F) {
	f.Add(uint32(0), uint32(0x1000_0000))
	f.Add(uint32(42), uint32(0x1000_0000))          // small value
	f.Add(^uint32(0), uint32(0x1000_0000))          // -1
	f.Add(uint32(16383), uint32(0))                 // SmallMax
	f.Add(uint32(0xFFFF_C000), uint32(0))           // SmallMin
	f.Add(uint32(16384), uint32(0))                 // first incompressible positive
	f.Add(uint32(0x1000_0040), uint32(0x1000_0000)) // same-chunk pointer
	f.Add(uint32(0x1000_8000), uint32(0x1000_0000)) // next chunk: prefix differs
	f.Add(uint32(0xDEAD_BEEF), uint32(0x2000_0000)) // incompressible
	f.Add(uint32(0x8000_0000), uint32(0x8000_0000)) // sign corner, self-pointer
	f.Fuzz(func(t *testing.T, value, addr uint32) {
		v, a := mach.Word(value), mach.Addr(addr)
		c, ok := Compress(v, a)
		if ok != Compressible(v, a) {
			t.Fatalf("Compress(%#x, %#x) ok=%v, Compressible=%v", v, a, ok, !ok)
		}
		if ok != (IsSmall(v) || IsPointerLike(v, a)) {
			t.Fatalf("Compressible(%#x, %#x) disagrees with its own predicates", v, a)
		}
		if !ok {
			return
		}
		if got := Decompress(c, a); got != v {
			t.Fatalf("roundtrip: %#x at %#x -> %#x -> %#x", v, a, c, got)
		}
		// The payload is always the word's own low 15 bits.
		if c.Payload() != v&(1<<PayloadBits-1) {
			t.Fatalf("payload of %#x is %#x, want low %d bits %#x", v, c.Payload(), PayloadBits, v&(1<<PayloadBits-1))
		}
	})
}
