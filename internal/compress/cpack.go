package compress

// C-Pack (Chen, Wildani et al., "C-Pack: A High-Performance Microprocessor
// Cache Compression Algorithm", IEEE TVLSI 2010), the pattern-plus-
// dictionary scheme the DSCC and YACC cache models use. Each 32-bit word
// is classified against a small set of frequent patterns and a per-line
// FIFO dictionary of previously seen words:
//
//	zzzz  all-zero word                          2 bits
//	mmmm  full dictionary match                  6 bits (2 code + 4 index)
//	zzzx  zero except the low byte              12 bits (4 code + 8)
//	mmmx  dictionary match except the low byte  16 bits (4 code + 4 + 8)
//	mmxx  dictionary match on the high half     24 bits (4 code + 4 + 16)
//	xxxx  no match, emitted raw                 34 bits (2 code + 32)
//
// The dictionary starts empty for every line, holds up to 16 entries and
// is pushed (FIFO, no replacement once full) with every word that is not
// a z-pattern — including full matches, mirroring the reference encoder.
// The decoder replays the same pushes after each emit, so both sides walk
// identical dictionary states without any side channel.
//
// Unlike the paper's scheme, C-Pack is value-only: the base address never
// influences the encoding, so pointer-heavy lines compress only as well
// as their raw bit patterns allow.

import (
	"fmt"

	"cppcache/internal/mach"
)

const (
	cpackDictEntries = 16
	cpackDictIdxBits = 4
)

// Word classes, in the code space used by the packed form: a 2-bit major
// code (0 = zzzz, 1 = xxxx, 2 = mmmm, 3 = extended) where the extended
// class carries a 2-bit minor code (0 = mmxx, 1 = zzzx, 2 = mmmx).
const (
	cpZZZZ = iota
	cpZZZX
	cpMMMM
	cpMMMX
	cpMMXX
	cpXXXX
)

// cpackBits is the total encoded size of each class.
var cpackBits = [...]int{cpZZZZ: 2, cpZZZX: 12, cpMMMM: 6, cpMMMX: 16, cpMMXX: 24, cpXXXX: 34}

// cpackClassify matches w against the patterns and the first n dictionary
// entries: an exact entry wins (mmmm); otherwise the first 3-byte match
// (mmmx), else the first 2-byte match (mmxx), else raw.
func cpackClassify(w mach.Word, dict *[cpackDictEntries]mach.Word, n int) (kind, idx int) {
	if w == 0 {
		return cpZZZZ, 0
	}
	if w&0xFFFF_FF00 == 0 {
		return cpZZZX, 0
	}
	kind = cpXXXX
	for i := 0; i < n; i++ {
		d := dict[i]
		if d == w {
			return cpMMMM, i
		}
		if kind != cpMMMX {
			if d&0xFFFF_FF00 == w&0xFFFF_FF00 {
				kind, idx = cpMMMX, i
			} else if kind == cpXXXX && d&0xFFFF_0000 == w&0xFFFF_0000 {
				kind, idx = cpMMXX, i
			}
		}
	}
	return kind, idx
}

// cpackPushes reports whether a word of the given class enters the
// dictionary (every non-z-pattern word does).
func cpackPushes(kind int) bool { return kind != cpZZZZ && kind != cpZZZX }

// cpackScan walks the line through the classifier, maintaining the
// dictionary, and returns the total encoded bit count. emit, when
// non-nil, receives each word's classification in order.
func cpackScan(words []mach.Word, emit func(kind, idx int, w mach.Word)) int {
	var dict [cpackDictEntries]mach.Word
	n, bits := 0, 0
	for _, w := range words {
		kind, idx := cpackClassify(w, &dict, n)
		if cpackPushes(kind) && n < cpackDictEntries {
			dict[n] = w
			n++
		}
		bits += cpackBits[kind]
		if emit != nil {
			emit(kind, idx, w)
		}
	}
	return bits
}

type cpackScheme struct{}

func (cpackScheme) Name() string { return "cpack" }

func (cpackScheme) LineHalves(words []mach.Word, _ mach.Addr) int {
	return (cpackScan(words, nil) + 15) / 16
}

func (cpackScheme) WorstCaseHalves(nwords int) int {
	return (cpackBits[cpXXXX]*nwords + 15) / 16
}

// Gate-delay model: the compressor's critical path is the 16-entry
// dictionary CAM (a 32-bit XNOR compare, 5-level reduction, in parallel
// across entries), a 4-level priority encoder over the entries, the
// pattern detectors (running in parallel, shallower), and ~2 levels of
// final code selection — ~11 levels, deeper than the paper's 8 because of
// the priority encode. The decompressor indexes the dictionary (4-level
// decode + mux) and splices the low bytes back in (~2 levels).
const (
	cpackCompressDelayGates   = 11
	cpackDecompressDelayGates = 6
)

func (cpackScheme) CompressorDelayGates() int   { return cpackCompressDelayGates }
func (cpackScheme) DecompressorDelayGates() int { return cpackDecompressDelayGates }

func (cpackScheme) CompressLine(words []mach.Word, _ mach.Addr) Encoded {
	var bw bitWriter
	cpackScan(words, func(kind, idx int, w mach.Word) {
		switch kind {
		case cpZZZZ:
			bw.write(0b00, 2)
		case cpXXXX:
			bw.write(0b01, 2)
			bw.write(uint64(w), 32)
		case cpMMMM:
			bw.write(0b10, 2)
			bw.write(uint64(idx), cpackDictIdxBits)
		case cpMMXX:
			bw.write(0b11, 2)
			bw.write(0b00, 2)
			bw.write(uint64(idx), cpackDictIdxBits)
			bw.write(uint64(w&0xFFFF), 16)
		case cpZZZX:
			bw.write(0b11, 2)
			bw.write(0b01, 2)
			bw.write(uint64(w&0xFF), 8)
		case cpMMMX:
			bw.write(0b11, 2)
			bw.write(0b10, 2)
			bw.write(uint64(idx), cpackDictIdxBits)
			bw.write(uint64(w&0xFF), 8)
		}
	})
	return bw.encoded()
}

func (cpackScheme) DecompressLine(enc Encoded, _ mach.Addr, out []mach.Word) error {
	r := newBitReader(enc)
	var dict [cpackDictEntries]mach.Word
	n := 0
	lookup := func(idx uint64) (mach.Word, error) {
		if int(idx) >= n {
			return 0, fmt.Errorf("compress: cpack dictionary index %d out of range (%d entries)", idx, n)
		}
		return dict[idx], nil
	}
	for i := range out {
		code, err := r.read(2)
		if err != nil {
			return err
		}
		var w mach.Word
		push := true
		switch code {
		case 0b00: // zzzz
			w, push = 0, false
		case 0b01: // xxxx
			v, err := r.read(32)
			if err != nil {
				return err
			}
			w = mach.Word(v)
		case 0b10: // mmmm
			idx, err := r.read(cpackDictIdxBits)
			if err != nil {
				return err
			}
			if w, err = lookup(idx); err != nil {
				return err
			}
		case 0b11:
			sub, err := r.read(2)
			if err != nil {
				return err
			}
			switch sub {
			case 0b00: // mmxx
				idx, err := r.read(cpackDictIdxBits)
				if err != nil {
					return err
				}
				lo, err2 := r.read(16)
				if err2 != nil {
					return err2
				}
				d, err3 := lookup(idx)
				if err3 != nil {
					return err3
				}
				w = d&0xFFFF_0000 | mach.Word(lo)
			case 0b01: // zzzx
				lo, err := r.read(8)
				if err != nil {
					return err
				}
				w, push = mach.Word(lo), false
			case 0b10: // mmmx
				idx, err := r.read(cpackDictIdxBits)
				if err != nil {
					return err
				}
				lo, err2 := r.read(8)
				if err2 != nil {
					return err2
				}
				d, err3 := lookup(idx)
				if err3 != nil {
					return err3
				}
				w = d&0xFFFF_FF00 | mach.Word(lo)
			default:
				return fmt.Errorf("compress: cpack reserved code 11-11 at word %d", i)
			}
		}
		if push && n < cpackDictEntries {
			dict[n] = w
			n++
		}
		out[i] = w
	}
	return nil
}
