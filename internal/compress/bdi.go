package compress

// BDI — Base-Delta-Immediate (Pekhimenko et al., PACT 2012, and chapter 4
// of the Pekhimenko thesis "Practical Data Compression for Modern Memory
// Hierarchies"). The line is viewed as an array of fixed-size elements
// (8, 4 or 2 bytes); if every element is within a small signed delta of a
// common base, only the base plus narrow deltas need be stored. The
// two-base refinement is included: an implicit zero base captures small
// immediates, and the first element not within delta range of zero
// becomes the single explicit base — each element carries one mask bit
// naming which base it uses.
//
// Encoded layout (bit-packed, LSB-first): a 4-bit selector, then for the
// base-delta modes the explicit base (8*B bits) followed by each
// element's mask bit and signed delta (8*D bits, two's complement,
// wrapping within the element width):
//
//	selector 0      all-zero line                     4 bits
//	selector 1      repeated 32-bit word              4 + 32
//	selector 2..7   base B delta D for (B,D) in
//	                (8,1) (8,2) (8,4) (4,1) (4,2) (2,1)
//	                                                  4 + 8B + E*(1 + 8D)
//	selector 8      uncompressed                      4 + 32n
//
// where E = 4n/B elements for n words. 8-byte-element modes require an
// even word count. The encoder picks the smallest applicable form (ties
// to the earlier selector). BDI is value-only: the base address never
// influences the encoding.

import (
	"fmt"

	"cppcache/internal/mach"
)

const (
	bdiSelectorBits = 4
	bdiSelZeros     = 0
	bdiSelRep       = 1
	bdiSelDelta0    = 2 // selectors 2..7 map to bdiModes[selector-2]
	bdiSelRaw       = 8
)

// bdiModes are the (base size, delta size) pairs, in selector order.
var bdiModes = [...]struct{ base, delta int }{
	{8, 1}, {8, 2}, {8, 4}, {4, 1}, {4, 2}, {2, 1},
}

// bdiMask returns the value mask of a b-byte element.
func bdiMask(b int) uint64 {
	if b >= 8 {
		return ^uint64(0)
	}
	return uint64(1)<<(8*b) - 1
}

// bdiSext sign-extends the low 8*b bits of x.
func bdiSext(x uint64, b int) uint64 {
	shift := uint(64 - 8*b)
	return uint64(int64(x<<shift) >> shift)
}

// bdiFits reports whether elem reconstructs from base with a d-byte
// signed delta, all arithmetic wrapping within the b-byte element width.
func bdiFits(elem, base uint64, b, d int) bool {
	mb := bdiMask(b)
	diff := (elem - base) & mb
	return bdiSext(diff&bdiMask(d), d)&mb == diff
}

// bdiElem extracts element idx of the given byte size from the line's
// words (little-endian byte order, matching the word layout in memory).
func bdiElem(words []mach.Word, size, idx int) uint64 {
	switch size {
	case 2:
		w := words[idx/2]
		if idx%2 == 0 {
			return uint64(w & 0xFFFF)
		}
		return uint64(w >> 16)
	case 4:
		return uint64(words[idx])
	default: // 8
		return uint64(words[2*idx]) | uint64(words[2*idx+1])<<32
	}
}

// bdiSetElem writes element idx back into the line's words.
func bdiSetElem(words []mach.Word, size, idx int, v uint64) {
	switch size {
	case 2:
		w := words[idx/2]
		if idx%2 == 0 {
			words[idx/2] = w&0xFFFF_0000 | mach.Word(v&0xFFFF)
		} else {
			words[idx/2] = w&0x0000_FFFF | mach.Word(v&0xFFFF)<<16
		}
	case 4:
		words[idx] = mach.Word(v)
	default: // 8
		words[2*idx] = mach.Word(v)
		words[2*idx+1] = mach.Word(v >> 32)
	}
}

// bdiModeFits checks one base-delta mode against the line, returning the
// explicit base (zero when every element rides the implicit zero base).
func bdiModeFits(words []mach.Word, b, d int) (base uint64, ok bool) {
	if b == 8 && len(words)%2 != 0 {
		return 0, false
	}
	elems := len(words) * 4 / b
	haveBase := false
	for i := 0; i < elems; i++ {
		e := bdiElem(words, b, i)
		if bdiFits(e, 0, b, d) {
			continue
		}
		if !haveBase {
			base, haveBase = e, true
			continue
		}
		if !bdiFits(e, base, b, d) {
			return 0, false
		}
	}
	return base, true
}

// bdiModeBits is the encoded size of a fitting base-delta mode.
func bdiModeBits(nwords, b, d int) int {
	elems := nwords * 4 / b
	return bdiSelectorBits + 8*b + elems*(1+8*d)
}

// bdiChoose picks the smallest applicable encoding: selector, bit size
// and, for delta modes, the explicit base.
func bdiChoose(words []mach.Word) (sel, nbits int, base uint64) {
	allZero, allRep := true, true
	for _, w := range words {
		if w != 0 {
			allZero = false
		}
		if w != words[0] {
			allRep = false
		}
	}
	if allZero {
		return bdiSelZeros, bdiSelectorBits, 0
	}
	if allRep {
		return bdiSelRep, bdiSelectorBits + 32, 0
	}
	sel, nbits = bdiSelRaw, bdiSelectorBits+32*len(words)
	for i, m := range bdiModes {
		if b, ok := bdiModeFits(words, m.base, m.delta); ok {
			if n := bdiModeBits(len(words), m.base, m.delta); n < nbits {
				sel, nbits, base = bdiSelDelta0+i, n, b
			}
		}
	}
	return sel, nbits, base
}

type bdiScheme struct{}

func (bdiScheme) Name() string { return "bdi" }

func (bdiScheme) LineHalves(words []mach.Word, _ mach.Addr) int {
	_, nbits, _ := bdiChoose(words)
	return (nbits + 15) / 16
}

func (bdiScheme) WorstCaseHalves(nwords int) int {
	return (bdiSelectorBits + 32*nwords + 15) / 16
}

// Gate-delay model: all modes are evaluated in parallel — each is a
// 64-bit subtract (carry tree, ~8 levels) plus a sign-extension compare
// (~2) — followed by a ~3-level smallest-size selector: ~13 levels. The
// decompressor is a selector decode plus one add per element: ~9 levels.
const (
	bdiCompressDelayGates   = 13
	bdiDecompressDelayGates = 9
)

func (bdiScheme) CompressorDelayGates() int   { return bdiCompressDelayGates }
func (bdiScheme) DecompressorDelayGates() int { return bdiDecompressDelayGates }

func (bdiScheme) CompressLine(words []mach.Word, _ mach.Addr) Encoded {
	sel, _, base := bdiChoose(words)
	var bw bitWriter
	bw.write(uint64(sel), bdiSelectorBits)
	switch {
	case sel == bdiSelZeros:
	case sel == bdiSelRep:
		bw.write(uint64(words[0]), 32)
	case sel == bdiSelRaw:
		for _, w := range words {
			bw.write(uint64(w), 32)
		}
	default:
		m := bdiModes[sel-bdiSelDelta0]
		bw.write(base, 8*m.base)
		elems := len(words) * 4 / m.base
		for i := 0; i < elems; i++ {
			e := bdiElem(words, m.base, i)
			useBase := uint64(0)
			from := uint64(0)
			if !bdiFits(e, 0, m.base, m.delta) {
				useBase, from = 1, base
			}
			bw.write(useBase, 1)
			bw.write((e-from)&bdiMask(m.delta), 8*m.delta)
		}
	}
	return bw.encoded()
}

func (bdiScheme) DecompressLine(enc Encoded, _ mach.Addr, out []mach.Word) error {
	r := newBitReader(enc)
	sel, err := r.read(bdiSelectorBits)
	if err != nil {
		return err
	}
	switch {
	case sel == bdiSelZeros:
		for i := range out {
			out[i] = 0
		}
	case sel == bdiSelRep:
		v, err := r.read(32)
		if err != nil {
			return err
		}
		for i := range out {
			out[i] = mach.Word(v)
		}
	case sel == bdiSelRaw:
		for i := range out {
			v, err := r.read(32)
			if err != nil {
				return err
			}
			out[i] = mach.Word(v)
		}
	case sel >= bdiSelDelta0 && sel < bdiSelDelta0+uint64(len(bdiModes)):
		m := bdiModes[sel-bdiSelDelta0]
		if m.base == 8 && len(out)%2 != 0 {
			return fmt.Errorf("compress: bdi 8-byte elements cannot tile %d words", len(out))
		}
		base, err := r.read(8 * m.base)
		if err != nil {
			return err
		}
		mb := bdiMask(m.base)
		elems := len(out) * 4 / m.base
		for i := 0; i < elems; i++ {
			useBase, err := r.read(1)
			if err != nil {
				return err
			}
			delta, err := r.read(8 * m.delta)
			if err != nil {
				return err
			}
			from := uint64(0)
			if useBase == 1 {
				from = base
			}
			bdiSetElem(out, m.base, i, (from+bdiSext(delta, m.delta))&mb)
		}
	default:
		return fmt.Errorf("compress: bdi reserved selector %d", sel)
	}
	return nil
}
