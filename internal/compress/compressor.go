package compress

// This file generalises the paper's word codec into a pluggable line
// compressor: a Compressor turns a whole cache line into a bit-exact
// compressed image, reports its size in 16-bit half-words (the traffic
// unit of memsys.Stats), and models its combinational gate delay. The
// paper's scheme is the reference implementation; C-Pack, FPC and BDI are
// alternative points in the design space (cpack.go, fpc.go, bdi.go).
//
// All implementations are required to be deterministic and lossless:
// DecompressLine(CompressLine(w)) must reproduce w byte-identically, the
// emitted half-word count must equal LineHalves, and neither may exceed
// WorstCaseHalves. internal/verify and the per-scheme fuzzers enforce all
// three.

import (
	"fmt"
	"sort"
	"strings"

	"cppcache/internal/mach"
)

// Encoded is one compressed cache line image. Bits holds the packed
// payload, LSB-first within each byte; NBits is the exact bit length
// (len(Bits) == ceil(NBits/8)). Meta carries out-of-band control state
// that lives in tag metadata rather than on the bus — the paper's scheme
// stores its per-word VC flags there (§2.1: the VC flag is a tag bit, not
// part of the 16-bit compressed word); the other schemes keep everything
// in-band and leave Meta empty.
type Encoded struct {
	Bits  []byte
	NBits int
	Meta  []byte
}

// Halves returns the bus transfer size of the image in 16-bit half-words.
func (e Encoded) Halves() int { return (e.NBits + 15) / 16 }

// Compressor is one line-compression scheme. Implementations must be
// stateless across calls (any dictionary state is per-line) so that the
// same input always yields the same output.
type Compressor interface {
	// Name returns the scheme's registry name (lower-case).
	Name() string
	// LineHalves returns the compressed size, in half-words, of the words
	// stored consecutively from the word-aligned base address. It is the
	// allocation-free hot path used for traffic accounting and must equal
	// CompressLine(words, base).Halves().
	LineHalves(words []mach.Word, base mach.Addr) int
	// CompressLine encodes the line.
	CompressLine(words []mach.Word, base mach.Addr) Encoded
	// DecompressLine decodes enc into out (whose length fixes the word
	// count). It returns an error on a corrupt or truncated image.
	DecompressLine(enc Encoded, base mach.Addr, out []mach.Word) error
	// WorstCaseHalves bounds LineHalves for any line of nwords words.
	WorstCaseHalves(nwords int) int
	// CompressorDelayGates is the modelled combinational depth of the
	// compressor, in 2-input gate levels (the paper's §3.2 methodology).
	CompressorDelayGates() int
	// DecompressorDelayGates is the decompressor's modelled depth.
	DecompressorDelayGates() int
}

// WordCompressor is the capability interface of schemes that can compress
// a single 32-bit word to one half-word independently of its neighbours.
// The CPP hierarchy's half-slot architecture requires it (each word's VC
// flag is an independent tag bit); of the registered schemes only the
// paper's qualifies — C-Pack carries per-line dictionary state, FPC pairs
// adjacent words, and BDI encodes whole-line deltas.
type WordCompressor interface {
	Compressor
	// CompressibleWord reports whether v, stored at address a, compresses
	// to a single half-word on its own.
	CompressibleWord(v mach.Word, a mach.Addr) bool
}

// --- registry ---------------------------------------------------------------

var (
	schemeOrder []string
	schemeByKey = map[string]Compressor{}
)

// register adds a scheme at init time; duplicate names are a programming
// error.
func register(c Compressor) {
	key := strings.ToLower(c.Name())
	if _, dup := schemeByKey[key]; dup {
		panic("compress: duplicate scheme " + key)
	}
	schemeByKey[key] = c
	schemeOrder = append(schemeOrder, key)
}

func init() {
	register(paperScheme{})
	register(cpackScheme{})
	register(fpcScheme{})
	register(bdiScheme{})
}

// Schemes returns the registered scheme names in registration order
// (paper first).
func Schemes() []string { return append([]string(nil), schemeOrder...) }

// Default returns the paper's reference scheme.
func Default() Compressor { return paperScheme{} }

// Paper returns the paper's reference scheme (alias of Default, reads
// better at call sites that mean it specifically).
func Paper() Compressor { return paperScheme{} }

// Get resolves a scheme name case-insensitively; the empty string means
// the default (paper) scheme.
func Get(name string) (Compressor, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		return Default(), nil
	}
	if c, ok := schemeByKey[key]; ok {
		return c, nil
	}
	known := Schemes()
	sort.Strings(known)
	return nil, fmt.Errorf("compress: unknown scheme %q (known: %s)", name, strings.Join(known, ", "))
}

// --- bit-level packing ------------------------------------------------------

// bitWriter packs variable-width fields LSB-first within each byte.
type bitWriter struct {
	buf []byte
	n   int // bits written
}

// write appends the low `bits` bits of v (bits <= 64).
func (w *bitWriter) write(v uint64, bits int) {
	for bits > 0 {
		if w.n&7 == 0 {
			w.buf = append(w.buf, 0)
		}
		byteIdx, bitIdx := w.n>>3, w.n&7
		take := 8 - bitIdx
		if take > bits {
			take = bits
		}
		w.buf[byteIdx] |= byte(v&(1<<take-1)) << bitIdx
		v >>= take
		w.n += take
		bits -= take
	}
}

func (w *bitWriter) encoded() Encoded { return Encoded{Bits: w.buf, NBits: w.n} }

// bitReader reads fields written by bitWriter, erroring on overrun.
type bitReader struct {
	buf   []byte
	pos   int // next bit
	limit int // total valid bits
}

func newBitReader(e Encoded) *bitReader {
	limit := e.NBits
	if max := len(e.Bits) * 8; limit > max {
		limit = max
	}
	return &bitReader{buf: e.Bits, limit: limit}
}

func (r *bitReader) read(bits int) (uint64, error) {
	if r.pos+bits > r.limit {
		return 0, fmt.Errorf("compress: truncated image: need %d bits at offset %d of %d", bits, r.pos, r.limit)
	}
	var v uint64
	got := 0
	for got < bits {
		byteIdx, bitIdx := r.pos>>3, r.pos&7
		take := 8 - bitIdx
		if take > bits-got {
			take = bits - got
		}
		v |= uint64(r.buf[byteIdx]>>bitIdx&(1<<take-1)) << got
		r.pos += take
		got += take
	}
	return v, nil
}

// --- paper reference scheme -------------------------------------------------

// paperScheme adapts the paper's free-function word codec (compress.go) to
// the Compressor interface. Each compressible word is one 16-bit half on
// the bus; each incompressible word is two. The per-word VC flags travel
// in Meta — in hardware they are tag-metadata bits, never bus payload —
// so NBits is always a multiple of 16 and Halves() equals LineHalves
// exactly.
type paperScheme struct{}

func (paperScheme) Name() string { return "paper" }

func (paperScheme) LineHalves(words []mach.Word, base mach.Addr) int {
	return LineHalves(words, base)
}

func (paperScheme) WorstCaseHalves(nwords int) int { return 2 * nwords }

// CompressorDelayGates and DecompressorDelayGates report the §3.2 model
// (5-level reduction trees plus 3 selection levels; 2 levels to gate the
// prefix back on).
func (paperScheme) CompressorDelayGates() int   { return CompressDelayGates }
func (paperScheme) DecompressorDelayGates() int { return DecompressDelayGates }

func (paperScheme) CompressibleWord(v mach.Word, a mach.Addr) bool { return Compressible(v, a) }

func (paperScheme) CompressLine(words []mach.Word, base mach.Addr) Encoded {
	var w bitWriter
	meta := make([]byte, (len(words)+7)/8)
	for i, v := range words {
		a := base + mach.Addr(i*mach.WordBytes)
		if c, ok := Compress(v, a); ok {
			meta[i>>3] |= 1 << (i & 7) // VC flag: slot holds a compressed half
			w.write(uint64(c), 16)
		} else {
			w.write(uint64(v), 32)
		}
	}
	e := w.encoded()
	e.Meta = meta
	return e
}

func (paperScheme) DecompressLine(enc Encoded, base mach.Addr, out []mach.Word) error {
	if want := (len(out) + 7) / 8; len(enc.Meta) < want {
		return fmt.Errorf("compress: paper image missing VC metadata (%d bytes, need %d)", len(enc.Meta), want)
	}
	r := newBitReader(enc)
	for i := range out {
		a := base + mach.Addr(i*mach.WordBytes)
		if enc.Meta[i>>3]&(1<<(i&7)) != 0 {
			c, err := r.read(16)
			if err != nil {
				return err
			}
			out[i] = Decompress(Compressed(c), a)
		} else {
			v, err := r.read(32)
			if err != nil {
				return err
			}
			out[i] = mach.Word(v)
		}
	}
	return nil
}

var _ WordCompressor = paperScheme{}
