package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SchemaVersion is stamped on every record so future readers can evolve
// the shape without guessing.
const SchemaVersion = 1

// framePrefix marks a ledger line. Each line is
//
//	cppl1 <len> <crc32c-hex8> <json>\n
//
// where len is the byte length of the JSON payload and the checksum is
// CRC-32C (Castagnoli) over those bytes. The framing makes torn writes
// and bit rot detectable per record: replay validates both fields before
// trusting a line.
const framePrefix = "cppl1"

// maxLine bounds a single framed record during replay (a run record is a
// few hundred bytes; 1 MiB leaves room for generous error strings while
// still refusing pathological input).
const maxLine = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one terminal run, as persisted to the ledger. Counter fields
// are the run's registry totals (sums of its interval snapshots), so
// rollups built from records conserve against live registry counters
// exactly.
type Record struct {
	Schema  int    `json:"schema"`
	RunID   int    `json:"run_id"`
	TraceID string `json:"trace_id,omitempty"`
	// SpecHash content-addresses the normalized RunSpec (see SpecHash);
	// ResultDigest content-addresses the final Result ("" for runs that
	// produced none: failed or canceled).
	SpecHash     string `json:"spec_hash"`
	ResultDigest string `json:"result_digest,omitempty"`

	Workload   string `json:"workload"`
	Config     string `json:"config"`
	Compressor string `json:"compressor"`
	Scale      int    `json:"scale,omitempty"`
	Functional bool   `json:"functional,omitempty"`

	State string `json:"state"`
	Chaos bool   `json:"chaos,omitempty"`
	Panic bool   `json:"panic,omitempty"`
	Error string `json:"error,omitempty"`

	// Memoized marks a run served from the memo store instead of being
	// executed; MemoSource is the run ID whose result it replayed. Memoized
	// records are never themselves memo sources (the chain always points at
	// a real execution).
	Memoized   bool `json:"memoized,omitempty"`
	MemoSource int  `json:"memo_source,omitempty"`

	Created    time.Time `json:"created"`
	Finished   time.Time `json:"finished"`
	GoMaxProcs int       `json:"gomaxprocs,omitempty"`

	// StageSeconds maps lifecycle stage name (run, queue, execute,
	// workload.build, sim.*) to the run's summed span duration.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`

	// Registry totals at the terminal transition.
	Intervals    int     `json:"intervals,omitempty"`
	Instructions int64   `json:"instructions,omitempty"`
	L1Misses     int64   `json:"l1_misses,omitempty"`
	TrafficWords float64 `json:"traffic_words,omitempty"`
}

// Frame renders one record as a framed ledger line (including the
// trailing newline).
func Frame(rec Record) ([]byte, error) {
	if rec.Schema == 0 {
		rec.Schema = SchemaVersion
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := fmt.Sprintf("%s %d %08x %s\n", framePrefix, len(body),
		crc32.Checksum(body, castagnoli), body)
	return []byte(line), nil
}

// parseLine validates one framed line and returns its record.
func parseLine(line string) (Record, error) {
	var rec Record
	parts := strings.SplitN(line, " ", 4)
	if len(parts) != 4 || parts[0] != framePrefix {
		return rec, fmt.Errorf("not a %s frame", framePrefix)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 0 || n > maxLine {
		return rec, fmt.Errorf("bad length %q", parts[1])
	}
	want, err := strconv.ParseUint(parts[2], 16, 32)
	if err != nil {
		return rec, fmt.Errorf("bad checksum %q", parts[2])
	}
	body := parts[3]
	if len(body) != n {
		return rec, fmt.Errorf("length mismatch: frame says %d, payload is %d", n, len(body))
	}
	if got := crc32.Checksum([]byte(body), castagnoli); got != uint32(want) {
		return rec, fmt.Errorf("checksum mismatch: frame says %08x, payload is %08x", want, got)
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		return rec, fmt.Errorf("bad record JSON: %v", err)
	}
	return rec, nil
}

// Writer appends records to a ledger file. Every Append is flushed and
// fsync'd before it returns, so a record acknowledged to the caller
// survives a crash of both process and OS; a record torn by a crash
// mid-write fails its frame validation on replay and is skipped without
// damaging its predecessors. Safe for concurrent use.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	appended int64
}

// OpenWriter opens (creating if needed) the ledger at path for appending.
func OpenWriter(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, path: path}, nil
}

// Path returns the ledger file path.
func (w *Writer) Path() string {
	if w == nil {
		return ""
	}
	return w.path
}

// Appended reports how many records this writer has durably appended.
func (w *Writer) Appended() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Append frames, writes and fsyncs one record. A nil writer discards the
// record (the ledger-off path), costing one branch.
func (w *Writer) Append(rec Record) error {
	if w == nil {
		return nil
	}
	line, err := Frame(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("ledger append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ledger fsync: %w", err)
	}
	w.appended++
	return nil
}

// Close closes the underlying file.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// ReplayStats summarises one replay pass.
type ReplayStats struct {
	// Records is how many valid records were recovered.
	Records int
	// Skipped counts lines that failed frame validation (torn tail from a
	// crash mid-append, bit rot, foreign garbage). Skipping is per line:
	// records before and after a damaged one are unaffected.
	Skipped int
}

// Replay reads every valid record from the ledger at path, in append
// order. A missing file is an empty ledger, not an error. Damaged lines
// are skipped and counted in stats — replay never fails because of a
// corrupt record, only on I/O errors.
func Replay(path string) ([]Record, ReplayStats, error) {
	var stats ReplayStats
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, stats, nil
	}
	if err != nil {
		return nil, stats, err
	}
	defer f.Close()

	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), maxLine+256)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			stats.Skipped++
			continue
		}
		recs = append(recs, rec)
		stats.Records++
	}
	if err := sc.Err(); err != nil {
		// An over-long line means an unframed blob was appended by
		// something else; everything recovered so far is still good.
		if strings.Contains(err.Error(), "token too long") {
			stats.Skipped++
			return recs, stats, nil
		}
		return recs, stats, err
	}
	return recs, stats, nil
}
