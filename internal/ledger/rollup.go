package ledger

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cppcache/internal/obs"
)

// Dimensions are the grouping axes a rollup understands, in canonical
// order.
var Dimensions = []string{"workload", "config", "compressor", "state"}

// KnownDimension reports whether dim is a valid grouping axis.
func KnownDimension(dim string) bool {
	for _, d := range Dimensions {
		if d == dim {
			return true
		}
	}
	return false
}

// Filter restricts which records participate in an aggregation. Empty
// string fields match everything; zero times are open-ended.
type Filter struct {
	Workload   string
	Config     string
	Compressor string
	State      string
	// Since/Until bound Record.Finished (inclusive since, exclusive
	// until).
	Since time.Time
	Until time.Time
}

func (f Filter) match(r Record) bool {
	if f.Workload != "" && r.Workload != f.Workload {
		return false
	}
	if f.Config != "" && r.Config != f.Config {
		return false
	}
	if f.Compressor != "" && r.Compressor != f.Compressor {
		return false
	}
	if f.State != "" && r.State != f.State {
		return false
	}
	if !f.Since.IsZero() && r.Finished.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && !r.Finished.Before(f.Until) {
		return false
	}
	return true
}

// Rollup holds the fleet's records in memory and aggregates them on
// demand. Aggregation is recomputed per query so time-window and label
// filters are exact, never approximated from pre-merged state. Safe for
// concurrent use.
type Rollup struct {
	mu   sync.Mutex
	recs []Record
}

// NewRollup returns an empty rollup.
func NewRollup() *Rollup { return &Rollup{} }

// Add appends one record.
func (ro *Rollup) Add(rec Record) {
	ro.mu.Lock()
	ro.recs = append(ro.recs, rec)
	ro.mu.Unlock()
}

// AddAll appends a replayed batch (boot-time seeding).
func (ro *Rollup) AddAll(recs []Record) {
	ro.mu.Lock()
	ro.recs = append(ro.recs, recs...)
	ro.mu.Unlock()
}

// Len reports how many records the rollup holds.
func (ro *Rollup) Len() int {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return len(ro.recs)
}

// Records returns a copy of the held records in append order.
func (ro *Rollup) Records() []Record {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return append([]Record(nil), ro.recs...)
}

// Summary describes a set of float observations: exact sum plus min,
// mean and max.
type Summary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

func (s *Summary) observe(v float64) {
	if s.Count == 0 || v < s.Min {
		s.Min = v
	}
	if s.Count == 0 || v > s.Max {
		s.Max = v
	}
	s.Count++
	s.Sum += v
	s.Mean = s.Sum / float64(s.Count)
}

// BucketStat is one non-empty stage-latency histogram bucket with its
// exemplar: the trace and run IDs of a real run whose duration landed in
// the bucket, so every point of the distribution links back to a concrete
// trace (GET /runs/{id}/trace).
type BucketStat struct {
	LoMicros      int64  `json:"lo_us"`
	HiMicros      int64  `json:"hi_us"`
	Count         int64  `json:"count"`
	ExemplarTrace string `json:"exemplar_trace_id,omitempty"`
	ExemplarRun   int    `json:"exemplar_run_id,omitempty"`
}

// StageStats aggregates one lifecycle stage's latency across a group.
// SumSeconds is the exact sum of the constituent records' stage seconds;
// quantiles are bucket upper bounds (within 2x, clamped to the max).
type StageStats struct {
	Count      int64        `json:"count"`
	SumSeconds float64      `json:"sum_seconds"`
	P50        float64      `json:"p50_seconds"`
	P95        float64      `json:"p95_seconds"`
	P99        float64      `json:"p99_seconds"`
	MaxSeconds float64      `json:"max_seconds"`
	Buckets    []BucketStat `json:"buckets,omitempty"`
}

// stageAgg is the in-flight accumulator behind StageStats.
type stageAgg struct {
	hist      *obs.Histogram // duration in microseconds
	sum       float64        // exact seconds, not reconstructed from buckets
	exemplars map[int]BucketStat
}

func (sa *stageAgg) observe(seconds float64, traceID string, runID int) {
	us := int64(seconds * 1e6)
	sa.hist.Observe(us)
	sa.sum += seconds
	idx := obs.BucketIndex(us)
	if _, ok := sa.exemplars[idx]; !ok {
		sa.exemplars[idx] = BucketStat{ExemplarTrace: traceID, ExemplarRun: runID}
	}
}

func (sa *stageAgg) stats() StageStats {
	st := StageStats{
		Count:      sa.hist.Count,
		SumSeconds: sa.sum,
		P50:        float64(sa.hist.Quantile(0.50)) / 1e6,
		P95:        float64(sa.hist.Quantile(0.95)) / 1e6,
		P99:        float64(sa.hist.Quantile(0.99)) / 1e6,
		MaxSeconds: float64(sa.hist.Max) / 1e6,
	}
	for _, b := range sa.hist.Buckets() {
		idx := obs.BucketIndex(b.Hi)
		ex := sa.exemplars[idx]
		st.Buckets = append(st.Buckets, BucketStat{
			LoMicros:      b.Lo,
			HiMicros:      b.Hi,
			Count:         b.Count,
			ExemplarTrace: ex.ExemplarTrace,
			ExemplarRun:   ex.ExemplarRun,
		})
	}
	return st
}

// Group is one aggregation cell. The dimension fields not being grouped
// by are empty. Counter fields are exact sums of the member records'
// totals — the conservation tests hold them equal to the sum of live
// registry counters.
type Group struct {
	Workload   string `json:"workload,omitempty"`
	Config     string `json:"config,omitempty"`
	Compressor string `json:"compressor,omitempty"`
	State      string `json:"state,omitempty"`

	Runs         int64   `json:"runs"`
	Panics       int64   `json:"panics,omitempty"`
	ChaosRuns    int64   `json:"chaos_runs,omitempty"`
	Memoized     int64   `json:"memoized,omitempty"`
	Intervals    int64   `json:"intervals"`
	Instructions int64   `json:"instructions"`
	L1Misses     int64   `json:"l1_misses"`
	TrafficWords float64 `json:"traffic_words"`

	// TrafficPerKiloInst summarises traffic_words*1000/instructions over
	// the member runs that retired instructions — the fleet-level view of
	// the paper's traffic-ratio comparisons, per group.
	TrafficPerKiloInst *Summary `json:"traffic_per_kilo_inst,omitempty"`

	// Stages maps lifecycle stage name to its latency aggregate.
	Stages map[string]StageStats `json:"stages,omitempty"`

	// ExemplarTraces samples up to one trace ID per distinct spec_hash
	// (first seen), capped, for drill-down from the group itself.
	ExemplarTraces []string `json:"exemplar_trace_ids,omitempty"`

	// SpecHashes counts distinct spec hashes in the group — how many
	// semantically different runs the cell aggregates.
	SpecHashes int `json:"spec_hashes"`
}

func (g *Group) key() string {
	return g.Workload + "\x00" + g.Config + "\x00" + g.Compressor + "\x00" + g.State
}

// Aggregate is the result of one rollup query: the participating record
// count, the grouping dimensions, and one Group per distinct key, sorted.
type Aggregate struct {
	TotalRuns  int64     `json:"total_runs"`
	Dimensions []string  `json:"dimensions"`
	Since      time.Time `json:"since"`
	Until      time.Time `json:"until"`
	Groups     []*Group  `json:"groups"`
}

// maxGroupExemplars caps ExemplarTraces per group.
const maxGroupExemplars = 8

// Aggregate groups the filtered records by the given dimensions (all of
// Dimensions when none are named). Unknown dimension names are an error.
func (ro *Rollup) Aggregate(f Filter, dims ...string) (*Aggregate, error) {
	if len(dims) == 0 {
		dims = Dimensions
	}
	byDim := map[string]bool{}
	for _, d := range dims {
		if !KnownDimension(d) {
			return nil, fmt.Errorf("unknown dimension %q (known: workload, config, compressor, state)", d)
		}
		byDim[d] = true
	}

	ro.mu.Lock()
	recs := append([]Record(nil), ro.recs...)
	ro.mu.Unlock()

	agg := &Aggregate{Dimensions: dims, Since: f.Since, Until: f.Until}
	groups := map[string]*Group{}
	stageAggs := map[string]map[string]*stageAgg{}
	specSeen := map[string]map[string]bool{}
	for _, r := range recs {
		if !f.match(r) {
			continue
		}
		agg.TotalRuns++
		g := &Group{}
		if byDim["workload"] {
			g.Workload = r.Workload
		}
		if byDim["config"] {
			g.Config = r.Config
		}
		if byDim["compressor"] {
			g.Compressor = r.Compressor
		}
		if byDim["state"] {
			g.State = r.State
		}
		k := g.key()
		if have, ok := groups[k]; ok {
			g = have
		} else {
			groups[k] = g
			stageAggs[k] = map[string]*stageAgg{}
			specSeen[k] = map[string]bool{}
		}

		g.Runs++
		if r.Panic {
			g.Panics++
		}
		if r.Chaos {
			g.ChaosRuns++
		}
		if r.Memoized {
			g.Memoized++
		}
		g.Intervals += int64(r.Intervals)
		g.Instructions += r.Instructions
		g.L1Misses += r.L1Misses
		g.TrafficWords += r.TrafficWords
		if r.Instructions > 0 {
			if g.TrafficPerKiloInst == nil {
				g.TrafficPerKiloInst = &Summary{}
			}
			g.TrafficPerKiloInst.observe(r.TrafficWords * 1000 / float64(r.Instructions))
		}
		for stage, secs := range r.StageSeconds {
			sa := stageAggs[k][stage]
			if sa == nil {
				sa = &stageAgg{
					hist:      obs.NewHistogram(stage),
					exemplars: map[int]BucketStat{},
				}
				stageAggs[k][stage] = sa
			}
			sa.observe(secs, r.TraceID, r.RunID)
		}
		if !specSeen[k][r.SpecHash] {
			specSeen[k][r.SpecHash] = true
			g.SpecHashes++
			if r.TraceID != "" && len(g.ExemplarTraces) < maxGroupExemplars {
				g.ExemplarTraces = append(g.ExemplarTraces, r.TraceID)
			}
		}
	}

	for k, g := range groups {
		if len(stageAggs[k]) > 0 {
			g.Stages = map[string]StageStats{}
			for stage, sa := range stageAggs[k] {
				g.Stages[stage] = sa.stats()
			}
		}
		agg.Groups = append(agg.Groups, g)
	}
	sort.Slice(agg.Groups, func(i, j int) bool {
		return agg.Groups[i].key() < agg.Groups[j].key()
	})
	return agg, nil
}
