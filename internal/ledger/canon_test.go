package ledger

import (
	"encoding/json"
	"testing"
)

// specFixture mirrors serve.RunSpec's JSON shape without importing serve
// (serve imports ledger). The golden hashes below are what any process,
// past or future, must produce for these specs — they are the cache keys
// the sweep-fabric memoization will trust, so changing them is a breaking
// change to the ledger format.
type specFixture struct {
	Workload   string  `json:"workload"`
	Config     string  `json:"config"`
	Compressor string  `json:"compressor,omitempty"`
	Scale      int     `json:"scale,omitempty"`
	Functional bool    `json:"functional,omitempty"`
	Interval   int64   `json:"interval,omitempty"`
	Attr       bool    `json:"attr,omitempty"`
	Halved     bool    `json:"halved,omitempty"`
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

func TestSpecHashGolden(t *testing.T) {
	cases := []struct {
		name string
		spec specFixture
		want string
	}{
		{
			name: "mst CPP default interval",
			spec: specFixture{Workload: "olden.mst", Config: "CPP", Compressor: "paper", Interval: 10000},
			want: "d048d58de2db4373b79da1601be35e18b96a3332f75092b5eb0e30766e1fe129",
		},
		{
			name: "treeadd BCC fpc functional",
			spec: specFixture{Workload: "olden.treeadd", Config: "BCC", Compressor: "fpc",
				Scale: 2, Functional: true, Interval: 10000},
			want: "8a27413e19864194e00eb382e5cadf4b1c84ae3a7698a9abccdc807c772e37ab",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := SpecHash(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("SpecHash = %s, want %s (the ledger content-address changed!)", got, c.want)
			}
		})
	}
}

// TestCanonicalKeyOrderIndependence: the same logical object must hash
// identically no matter how the producer ordered its keys — a struct and
// a scrambled map with equal contents are the same content address.
func TestCanonicalKeyOrderIndependence(t *testing.T) {
	s := specFixture{Workload: "olden.mst", Config: "CPP", Compressor: "paper", Interval: 10000}
	m := map[string]any{
		"interval":   10000,
		"workload":   "olden.mst",
		"compressor": "paper",
		"config":     "CPP",
	}
	hs, err := SpecHash(s)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := SpecHash(m)
	if err != nil {
		t.Fatal(err)
	}
	if hs != hm {
		t.Errorf("struct hash %s != map hash %s", hs, hm)
	}
	canon, err := Canonical(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"compressor":"paper","config":"CPP","interval":10000,"workload":"olden.mst"}`
	if string(canon) != want {
		t.Errorf("canonical form:\n got %s\nwant %s", canon, want)
	}
}

func TestHashSensitivity(t *testing.T) {
	base := specFixture{Workload: "olden.mst", Config: "CPP", Compressor: "paper", Interval: 10000}
	h0, _ := SpecHash(base)
	for name, mut := range map[string]specFixture{
		"workload":   {Workload: "olden.em3d", Config: "CPP", Compressor: "paper", Interval: 10000},
		"config":     {Workload: "olden.mst", Config: "BCC", Compressor: "paper", Interval: 10000},
		"compressor": {Workload: "olden.mst", Config: "CPP", Compressor: "fpc", Interval: 10000},
		"scale":      {Workload: "olden.mst", Config: "CPP", Compressor: "paper", Interval: 10000, Scale: 3},
	} {
		h, _ := SpecHash(mut)
		if h == h0 {
			t.Errorf("changing %s did not change the spec hash", name)
		}
	}
}

func TestResultDigestDeterminism(t *testing.T) {
	type result struct {
		Benchmark string
		L1Misses  int64
		Traffic   float64
	}
	a, err := ResultDigest(result{"olden.mst", 123, 4567.25})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ResultDigest(result{"olden.mst", 123, 4567.25})
	c, _ := ResultDigest(result{"olden.mst", 124, 4567.25})
	if a != b {
		t.Errorf("identical results digest differently: %s vs %s", a, b)
	}
	if a == c {
		t.Errorf("different results digest identically")
	}
	if len(a) != 64 {
		t.Errorf("digest is not sha256 hex: %q", a)
	}
}

// TestResultDigestRawStructEquivalence pins the property the sweep
// fabric's digest comparison rests on: digesting a result struct and
// digesting its marshalled JSON (as received over HTTP from a worker)
// produce the same hash, because Canonical re-parses with UseNumber and
// re-marshals with sorted keys either way. If this ever breaks, the
// coordinator's kill-vs-control table comparison breaks with it.
func TestResultDigestRawStructEquivalence(t *testing.T) {
	type result struct {
		Benchmark string  `json:"benchmark"`
		L1Misses  int64   `json:"l1_misses"`
		Traffic   float64 `json:"traffic"`
		IPC       float64 `json:"ipc"`
	}
	res := result{"olden.mst", 123, 4567.25, 0.731}
	fromStruct, err := ResultDigest(res)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	fromRaw, err := ResultDigest(json.RawMessage(raw))
	if err != nil {
		t.Fatal(err)
	}
	if fromStruct != fromRaw {
		t.Fatalf("digest(struct) %s != digest(raw JSON) %s", fromStruct, fromRaw)
	}
	// Key order in the wire JSON must not matter either.
	reordered := []byte(`{"traffic":4567.25,"l1_misses":123,"ipc":0.731,"benchmark":"olden.mst"}`)
	fromReordered, err := ResultDigest(json.RawMessage(reordered))
	if err != nil {
		t.Fatal(err)
	}
	if fromReordered != fromStruct {
		t.Fatalf("digest(reordered raw) %s != digest(struct) %s", fromReordered, fromStruct)
	}
}
