package ledger

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testRecord(id int, state string) Record {
	return Record{
		Schema:       SchemaVersion,
		RunID:        id,
		TraceID:      strings.Repeat("ab", 16),
		SpecHash:     strings.Repeat("cd", 32),
		Workload:     "olden.mst",
		Config:       "CPP",
		Compressor:   "paper",
		State:        state,
		Created:      time.Unix(1700000000, 0).UTC(),
		Finished:     time.Unix(1700000001, 500).UTC(),
		GoMaxProcs:   4,
		StageSeconds: map[string]float64{"run": 1.5, "queue": 0.5, "execute": 1.0},
		Intervals:    7,
		Instructions: 1000 + int64(id),
		L1Misses:     10 * int64(id),
		TrafficWords: 2.5 * float64(id),
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ndjson")
	w, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{testRecord(1, "done"), testRecord(2, "failed"), testRecord(3, "canceled")}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Appended() != 3 {
		t.Errorf("Appended = %d, want 3", w.Appended())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 0 || stats.Records != 3 {
		t.Errorf("stats = %+v, want 3 records 0 skipped", stats)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	recs, stats, err := Replay(filepath.Join(t.TempDir(), "nope.ndjson"))
	if err != nil || len(recs) != 0 || stats != (ReplayStats{}) {
		t.Errorf("missing file: recs=%v stats=%+v err=%v, want empty", recs, stats, err)
	}
}

// TestReplayTruncatedTail: a crash mid-append leaves a torn final line.
// Replay must keep every earlier record and skip (and count) the tail.
func TestReplayTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ndjson")
	w, _ := OpenWriter(path)
	for i := 1; i <= 3; i++ {
		if err := w.Append(testRecord(i, "done")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{2, 7, 20, 40} { // various torn-write points
		torn := b[:len(b)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, stats, err := Replay(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 2 || stats.Records != 2 || stats.Skipped != 1 {
			t.Errorf("cut %d: got %d records, stats %+v; want 2 records, 1 skipped",
				cut, len(recs), stats)
		}
		if recs[0].RunID != 1 || recs[1].RunID != 2 {
			t.Errorf("cut %d: wrong surviving records: %+v", cut, recs)
		}
	}
}

// TestReplayCorruptMiddleRecord: bit rot inside the file must cost exactly
// the damaged record, not everything after it.
func TestReplayCorruptMiddleRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ndjson")
	w, _ := OpenWriter(path)
	for i := 1; i <= 3; i++ {
		if err := w.Append(testRecord(i, "done")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	b, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(b), "\n")
	// Flip a payload byte in the middle record: the checksum must catch it.
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x40
	corrupted := lines[0] + string(mid) + lines[2]
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || stats.Skipped != 1 {
		t.Fatalf("got %d records, stats %+v; want records 1 and 3, 1 skipped", len(recs), stats)
	}
	if recs[0].RunID != 1 || recs[1].RunID != 3 {
		t.Errorf("wrong survivors: %d, %d", recs[0].RunID, recs[1].RunID)
	}
}

// TestReplayForeignGarbage: unframed lines (someone cat'd a log into the
// ledger) are skipped without harming framed records around them.
func TestReplayForeignGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ndjson")
	w, _ := OpenWriter(path)
	w.Append(testRecord(1, "done"))
	w.Close()

	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("not a ledger line\n\ncppl1 999 zzzzzzzz {}\n")
	f.Close()
	w2, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(testRecord(2, "done"))
	w2.Close()

	recs, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || stats.Skipped != 2 { // blank line is ignored, not counted
		t.Fatalf("got %d records, stats %+v; want 2 records, 2 skipped", len(recs), stats)
	}
	if recs[0].RunID != 1 || recs[1].RunID != 2 {
		t.Errorf("wrong survivors: %+v", recs)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ndjson")
	w, _ := OpenWriter(path)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 5; i++ {
				if e := w.Append(testRecord(g*100+i, "done")); e != nil {
					err = e
				}
			}
			done <- err
		}(g)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	recs, stats, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 || stats.Skipped != 0 {
		t.Errorf("got %d records, %d skipped; want 40 intact", len(recs), stats.Skipped)
	}
}
