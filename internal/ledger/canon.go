// Package ledger is the observatory's persistent memory: a
// content-addressed, append-only record of every terminal run, plus the
// rollup engine that turns those records into fleet-level aggregates.
//
// Three pieces, layered:
//
//  1. Canonical hashing (this file): SpecHash renders any JSON-shaped
//     value in canonical form (object keys sorted, no insignificant
//     whitespace, numeric literals preserved verbatim) and returns its
//     SHA-256. Two processes hashing the same normalized RunSpec get the
//     same spec_hash — the content-address the sweep-fabric memoization
//     planned in ROADMAP item 3 will key its cache on. ResultDigest does
//     the same for a run's final Result.
//  2. The ledger file (ledger.go): length+checksum framed NDJSON,
//     fsync'd per append, replayed corruption-tolerantly on boot — a
//     torn or damaged record is skipped and counted, never allowed to
//     take the rest of the file with it.
//  3. The rollup engine (rollup.go, diff.go): exact-conservation
//     aggregation of records per workload x config x compressor x state,
//     with stage-latency quantiles, traffic summaries and per-bucket
//     exemplar trace IDs, plus drift diffing between two aggregates.
package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Canonical renders v as canonical JSON: the value is marshalled, then
// re-parsed into a generic tree (numbers kept as their literal text) and
// re-marshalled, which sorts every object's keys and strips insignificant
// whitespace. Struct field order, map iteration order and indentation
// therefore cannot leak into the bytes, so the output is stable across
// processes, architectures and Go versions for any value whose JSON
// encoding is stable.
func Canonical(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // keep numeric literals verbatim; no float re-formatting
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	return json.Marshal(tree) // maps marshal with sorted keys
}

// hashOf returns the SHA-256 of v's canonical JSON as lowercase hex.
func hashOf(v any) (string, error) {
	canon, err := Canonical(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// SpecHash content-addresses a run specification. Callers hash the
// *normalized* spec (defaults filled in, names canonicalised), so two
// requests that mean the same run hash identically even when one spelled
// the workload "mst" and the other "olden.mst".
func SpecHash(spec any) (string, error) { return hashOf(spec) }

// ResultDigest content-addresses a run's final result. Two runs of the
// same deterministic simulation must produce the same digest; a digest
// mismatch between equal spec_hashes is a determinism (or version) drift
// signal.
func ResultDigest(result any) (string, error) { return hashOf(result) }
