package ledger

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// fleetFixture builds a small mixed fleet: two identical mst/CPP runs,
// one mst/BCC@fpc run, one failed treeadd run and one canceled one,
// spread over distinct finish times for window tests.
func fleetFixture() []Record {
	base := time.Unix(1700000000, 0).UTC()
	mk := func(id int, wl, cfg, comp, state string, insts, misses int64,
		traffic, execSecs float64, finishedAt time.Duration) Record {
		return Record{
			RunID:    id,
			TraceID:  fmt.Sprintf("trace-%02d", id),
			SpecHash: fmt.Sprintf("hash-%s-%s-%s", wl, cfg, comp),
			Workload: wl, Config: cfg, Compressor: comp, State: state,
			Created:      base,
			Finished:     base.Add(finishedAt),
			Instructions: insts, L1Misses: misses, TrafficWords: traffic,
			Intervals: 2,
			StageSeconds: map[string]float64{
				"run": execSecs + 0.25, "queue": 0.25, "execute": execSecs,
			},
		}
	}
	recs := []Record{
		mk(1, "olden.mst", "CPP", "paper", "done", 1000, 50, 200, 0.010, 1*time.Minute),
		mk(2, "olden.mst", "CPP", "paper", "done", 1000, 50, 200, 0.020, 2*time.Minute),
		mk(3, "olden.mst", "BCC", "fpc", "done", 1000, 50, 120, 0.150, 3*time.Minute),
		mk(4, "olden.treeadd", "CPP", "paper", "failed", 400, 10, 80, 0.005, 4*time.Minute),
		mk(5, "olden.treeadd", "CPP", "paper", "canceled", 0, 0, 0, 0.001, 5*time.Minute),
	}
	recs[3].Panic = true
	recs[4].Chaos = true
	return recs
}

// TestAggregateConservation: every group counter must be the exact sum of
// its member records, and the groups must partition the filtered set —
// the same standard obs and span hold for per-run metrics, applied at
// fleet level.
func TestAggregateConservation(t *testing.T) {
	ro := NewRollup()
	recs := fleetFixture()
	ro.AddAll(recs)

	agg, err := ro.Aggregate(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.TotalRuns != int64(len(recs)) {
		t.Errorf("TotalRuns = %d, want %d", agg.TotalRuns, len(recs))
	}

	var wantInsts, wantMisses, wantRuns int64
	var wantTraffic, wantExec float64
	for _, r := range recs {
		wantRuns++
		wantInsts += r.Instructions
		wantMisses += r.L1Misses
		wantTraffic += r.TrafficWords
		wantExec += r.StageSeconds["execute"]
	}
	var gotInsts, gotMisses, gotRuns int64
	var gotTraffic, gotExec float64
	for _, g := range agg.Groups {
		gotRuns += g.Runs
		gotInsts += g.Instructions
		gotMisses += g.L1Misses
		gotTraffic += g.TrafficWords
		if st, ok := g.Stages["execute"]; ok {
			gotExec += st.SumSeconds
			var bucketRuns int64
			for _, b := range st.Buckets {
				bucketRuns += b.Count
			}
			if bucketRuns != st.Count {
				t.Errorf("group %+v: bucket counts sum to %d, stage count %d", g, bucketRuns, st.Count)
			}
		}
	}
	if gotRuns != wantRuns || gotInsts != wantInsts || gotMisses != wantMisses {
		t.Errorf("counter conservation broken: runs %d/%d insts %d/%d misses %d/%d",
			gotRuns, wantRuns, gotInsts, wantInsts, gotMisses, wantMisses)
	}
	if math.Abs(gotTraffic-wantTraffic) > 1e-9 {
		t.Errorf("traffic %g != %g", gotTraffic, wantTraffic)
	}
	if math.Abs(gotExec-wantExec) > 1e-12 {
		t.Errorf("execute seconds %g != %g", gotExec, wantExec)
	}

	// Dimension-reduced aggregation conserves the same totals.
	byState, err := ro.Aggregate(Filter{}, "state")
	if err != nil {
		t.Fatal(err)
	}
	var stateRuns int64
	counts := map[string]int64{}
	for _, g := range byState.Groups {
		if g.Workload != "" || g.Config != "" || g.Compressor != "" {
			t.Errorf("state-only group leaked other dimensions: %+v", g)
		}
		stateRuns += g.Runs
		counts[g.State] = g.Runs
	}
	if stateRuns != wantRuns {
		t.Errorf("by-state runs %d != %d", stateRuns, wantRuns)
	}
	want := map[string]int64{"done": 3, "failed": 1, "canceled": 1}
	for st, n := range want {
		if counts[st] != n {
			t.Errorf("state %s: %d runs, want %d", st, counts[st], n)
		}
	}
}

func TestAggregateFiltersAndWindow(t *testing.T) {
	ro := NewRollup()
	ro.AddAll(fleetFixture())
	base := time.Unix(1700000000, 0).UTC()

	cases := []struct {
		name string
		f    Filter
		want int64
	}{
		{"all", Filter{}, 5},
		{"workload", Filter{Workload: "olden.mst"}, 3},
		{"config", Filter{Config: "BCC"}, 1},
		{"compressor", Filter{Compressor: "paper"}, 4},
		{"state done", Filter{State: "done"}, 3},
		{"since minute 3", Filter{Since: base.Add(3 * time.Minute)}, 3},
		{"until minute 3", Filter{Until: base.Add(3 * time.Minute)}, 2},
		{"window 2..4", Filter{Since: base.Add(2 * time.Minute), Until: base.Add(4 * time.Minute)}, 2},
		{"combined", Filter{Workload: "olden.mst", State: "done", Since: base.Add(2 * time.Minute)}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			agg, err := ro.Aggregate(c.f)
			if err != nil {
				t.Fatal(err)
			}
			if agg.TotalRuns != c.want {
				t.Errorf("TotalRuns = %d, want %d", agg.TotalRuns, c.want)
			}
		})
	}

	if _, err := ro.Aggregate(Filter{}, "flavour"); err == nil {
		t.Error("unknown dimension accepted")
	}
}

// TestAggregateZeroWidthWindow pins the boundary semantics of the time
// filter: Since is inclusive, Until exclusive, so a window where
// since == until is empty — not an error, not a one-instant match, even
// when a record's Finished sits exactly on the boundary.
func TestAggregateZeroWidthWindow(t *testing.T) {
	ro := NewRollup()
	ro.AddAll(fleetFixture())
	base := time.Unix(1700000000, 0).UTC()

	// Record 3 finishes exactly at base+3m.
	at := base.Add(3 * time.Minute)
	agg, err := ro.Aggregate(Filter{Since: at, Until: at})
	if err != nil {
		t.Fatalf("zero-width window errored: %v", err)
	}
	if agg.TotalRuns != 0 {
		t.Errorf("zero-width window matched %d runs, want 0", agg.TotalRuns)
	}
	if len(agg.Groups) != 0 {
		t.Errorf("zero-width window produced %d groups, want 0", len(agg.Groups))
	}

	// Widening until by one nanosecond admits exactly the boundary record.
	agg, err = ro.Aggregate(Filter{Since: at, Until: at.Add(time.Nanosecond)})
	if err != nil {
		t.Fatal(err)
	}
	if agg.TotalRuns != 1 {
		t.Errorf("nanosecond window matched %d runs, want exactly the boundary record", agg.TotalRuns)
	}

	// An inverted window (until before since) is likewise empty, not an
	// error — the filter is a pure predicate.
	agg, err = ro.Aggregate(Filter{Since: at, Until: at.Add(-time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if agg.TotalRuns != 0 {
		t.Errorf("inverted window matched %d runs, want 0", agg.TotalRuns)
	}
}

// TestAggregateUnknownStateCounted guards the replay path against
// silently dropping records written by a newer (or corrupted) server
// whose state vocabulary we don't recognise: an unknown state string must
// flow through aggregation as its own group, keeping conservation exact.
func TestAggregateUnknownStateCounted(t *testing.T) {
	ro := NewRollup()
	ro.AddAll(fleetFixture())
	ro.Add(Record{
		RunID: 99, TraceID: "trace-99", SpecHash: "hash-future",
		Workload: "olden.mst", Config: "CPP", Compressor: "paper",
		State:        "suspended", // not a state this version ever writes
		Finished:     time.Unix(1700000000, 0).UTC().Add(10 * time.Minute),
		Instructions: 77, Intervals: 1,
	})

	agg, err := ro.Aggregate(Filter{}, "state")
	if err != nil {
		t.Fatal(err)
	}
	if agg.TotalRuns != 6 {
		t.Fatalf("TotalRuns = %d, want 6 (unknown-state record dropped?)", agg.TotalRuns)
	}
	var found *Group
	var runSum, instSum int64
	for _, g := range agg.Groups {
		runSum += g.Runs
		instSum += g.Instructions
		if g.State == "suspended" {
			found = g
		}
	}
	if found == nil {
		t.Fatal("unknown state 'suspended' has no group — record was dropped silently")
	}
	if found.Runs != 1 || found.Instructions != 77 {
		t.Errorf("suspended group = %d runs / %d insts, want 1 / 77", found.Runs, found.Instructions)
	}
	if runSum != 6 || instSum != 3400+77 {
		t.Errorf("conservation broken with unknown state: runs=%d insts=%d", runSum, instSum)
	}

	// Filtering by the unknown state string also works: the filter is a
	// string match, not an enum check.
	agg, err = ro.Aggregate(Filter{State: "suspended"})
	if err != nil {
		t.Fatal(err)
	}
	if agg.TotalRuns != 1 {
		t.Errorf("State filter for unknown state matched %d, want 1", agg.TotalRuns)
	}
}

// TestAggregateMemoizedCount: memoized members are tallied per group.
func TestAggregateMemoizedCount(t *testing.T) {
	ro := NewRollup()
	recs := fleetFixture()
	recs[1].Memoized = true
	recs[1].MemoSource = recs[0].RunID
	ro.AddAll(recs)

	agg, err := ro.Aggregate(Filter{}, "workload")
	if err != nil {
		t.Fatal(err)
	}
	var mst *Group
	for _, g := range agg.Groups {
		if g.Workload == "olden.mst" {
			mst = g
		}
	}
	if mst == nil || mst.Memoized != 1 {
		t.Fatalf("olden.mst memoized count = %+v, want 1", mst)
	}
}

func TestStageQuantilesAndExemplars(t *testing.T) {
	ro := NewRollup()
	// 100 runs: 99 fast executes (~1ms) and one slow outlier (~900ms).
	for i := 1; i <= 100; i++ {
		exec := 0.001
		if i == 100 {
			exec = 0.9
		}
		ro.Add(Record{
			RunID: i, TraceID: fmt.Sprintf("t%03d", i),
			SpecHash: "h", Workload: "olden.mst", Config: "CPP", Compressor: "paper",
			State:        "done",
			Finished:     time.Unix(1700000000+int64(i), 0).UTC(),
			StageSeconds: map[string]float64{"execute": exec},
		})
	}
	agg, err := ro.Aggregate(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Groups) != 1 {
		t.Fatalf("want 1 group, got %d", len(agg.Groups))
	}
	st := agg.Groups[0].Stages["execute"]
	if st.Count != 100 {
		t.Fatalf("stage count = %d", st.Count)
	}
	// p50/p95 sit in the ~1ms population; p99-by-rank is the 99th of 100,
	// still fast; the bucket max must catch the outlier.
	if st.P50 > 0.005 || st.P95 > 0.005 {
		t.Errorf("p50/p95 pulled up by outlier: p50=%g p95=%g", st.P50, st.P95)
	}
	if st.MaxSeconds < 0.5 {
		t.Errorf("max %g lost the outlier", st.MaxSeconds)
	}
	if st.SumSeconds < 0.99 || st.SumSeconds > 1.0 {
		t.Errorf("sum %g, want 99*1ms + 900ms", st.SumSeconds)
	}

	// Every non-empty bucket carries an exemplar naming a real run, and
	// the outlier's bucket names the outlier.
	var outlierSeen bool
	for _, b := range st.Buckets {
		if b.Count > 0 && b.ExemplarTrace == "" {
			t.Errorf("bucket [%d,%d] has no exemplar", b.LoMicros, b.HiMicros)
		}
		if b.HiMicros >= 900000 && b.LoMicros <= 900000 {
			if b.ExemplarTrace != "t100" || b.ExemplarRun != 100 {
				t.Errorf("outlier bucket exemplar = %s/run %d, want t100/100", b.ExemplarTrace, b.ExemplarRun)
			}
			outlierSeen = true
		}
	}
	if !outlierSeen {
		t.Error("no bucket covers the 900ms outlier")
	}
}

func TestAggregateJSONShape(t *testing.T) {
	ro := NewRollup()
	ro.AddAll(fleetFixture())
	agg, err := ro.Aggregate(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		`"total_runs":5`, `"workload":"olden.mst"`, `"compressor":"fpc"`,
		`"p95_seconds"`, `"exemplar_trace_id"`, `"spec_hashes"`,
	} {
		if !strings.Contains(string(b), needle) {
			t.Errorf("aggregate JSON missing %s:\n%s", needle, b)
		}
	}
}

func TestDiffAggregates(t *testing.T) {
	roA, roB := NewRollup(), NewRollup()
	roA.AddAll(fleetFixture())
	// B: the BCC group vanished, mst/CPP traffic drifted 2x, treeadd is
	// unchanged.
	for _, r := range fleetFixture() {
		switch {
		case r.Config == "BCC":
			continue
		case r.Workload == "olden.mst":
			r.TrafficWords *= 2
		}
		roB.Add(r)
	}
	aggA, _ := roA.Aggregate(Filter{}, "workload", "config", "compressor")
	aggB, _ := roB.Aggregate(Filter{}, "workload", "config", "compressor")

	drifts := DiffAggregates(aggA, aggB, 0.10)
	var sawPresence, sawTraffic bool
	for _, d := range drifts {
		if d.Metric == "presence" && strings.Contains(d.Group, "BCC") {
			sawPresence = true
		}
		if d.Metric == "traffic_per_kilo_inst" && strings.Contains(d.Group, "olden.mst") {
			sawTraffic = true
			if math.Abs(d.Rel-0.5) > 1e-9 { // 2x drift = 50% symmetric
				t.Errorf("traffic drift rel = %g, want 0.5", d.Rel)
			}
		}
		if strings.Contains(d.Group, "treeadd") && d.Metric != "presence" {
			t.Errorf("unchanged group flagged: %+v", d)
		}
	}
	if !sawPresence || !sawTraffic {
		t.Errorf("missing drifts (presence=%v traffic=%v): %+v", sawPresence, sawTraffic, drifts)
	}

	// Identical fleets: no drift at all.
	if d := DiffAggregates(aggA, aggA, 0.0); len(d) != 0 {
		t.Errorf("self-diff reported drifts: %+v", d)
	}
}
