package ledger

import (
	"path/filepath"
	"testing"
	"time"
)

func benchRecord(i int) Record {
	return Record{
		Schema: SchemaVersion, RunID: i, TraceID: "0123456789abcdef",
		SpecHash: "d048d58de2db4373b79da1601be35e18b96a3332f75092b5eb0e30766e1fe129",
		Workload: "olden.mst", Config: "CPP", Compressor: "paper", State: "done",
		Created: time.Unix(1700000000, 0), Finished: time.Unix(1700000001, 0),
		GoMaxProcs:   8,
		StageSeconds: map[string]float64{"run": 1.25, "queue": 0.25, "execute": 1.0},
		Intervals:    16, Instructions: 1_000_000, L1Misses: 50_000, TrafficWords: 200_000,
	}
}

// BenchmarkAppend measures the durable append path — frame encode plus
// write plus fsync — the entire per-terminal-run ledger overhead.
func BenchmarkAppend(b *testing.B) {
	w, err := OpenWriter(filepath.Join(b.TempDir(), "bench.ledger"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecHash measures canonicalisation plus SHA-256 for a typical
// run spec shape.
func BenchmarkSpecHash(b *testing.B) {
	spec := map[string]any{
		"workload": "olden.mst", "config": "CPP", "compressor": "paper",
		"interval": 10000, "scale": 2, "functional": true,
	}
	for i := 0; i < b.N; i++ {
		if _, err := SpecHash(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregate measures one /fleet query over a 10k-record rollup.
func BenchmarkAggregate(b *testing.B) {
	ro := NewRollup()
	for i := 0; i < 10_000; i++ {
		r := benchRecord(i)
		r.Workload = []string{"olden.mst", "olden.treeadd", "olden.health"}[i%3]
		ro.Add(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ro.Aggregate(Filter{}); err != nil {
			b.Fatal(err)
		}
	}
}
