package ledger

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Drift is one detected difference between two aggregates: a group
// present on only one side, or a metric whose relative change exceeds the
// diff tolerance.
type Drift struct {
	Group  string  `json:"group"`
	Metric string  `json:"metric"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
	// Rel is |B-A| / max(|A|, |B|) (1 for presence drifts).
	Rel float64 `json:"rel"`
}

func (d Drift) String() string {
	return fmt.Sprintf("%-40s %-22s a=%-12.6g b=%-12.6g drift=%.1f%%",
		d.Group, d.Metric, d.A, d.B, d.Rel*100)
}

// groupLabel renders a group's non-empty dimension values for humans.
func groupLabel(g *Group) string {
	parts := []string{}
	for _, p := range []string{g.Workload, g.Config, g.Compressor, g.State} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return "(all)"
	}
	return strings.Join(parts, "/")
}

// relDrift is the symmetric relative difference of a and b.
func relDrift(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(b-a) / den
}

// DiffAggregates compares two aggregates group by group and reports every
// metric whose relative drift exceeds tol, plus groups present on only
// one side. cppledger uses it to answer "did this week's fleet behave
// like last week's": a traffic-per-instruction or p95-latency drift
// between two ledgers of the same workload population is a regression
// signal even when every individual run passed.
func DiffAggregates(a, b *Aggregate, tol float64) []Drift {
	byKey := func(agg *Aggregate) map[string]*Group {
		m := map[string]*Group{}
		for _, g := range agg.Groups {
			m[g.key()] = g
		}
		return m
	}
	am, bm := byKey(a), byKey(b)
	keys := map[string]bool{}
	for k := range am {
		keys[k] = true
	}
	for k := range bm {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var drifts []Drift
	for _, k := range sorted {
		ga, gb := am[k], bm[k]
		switch {
		case ga == nil:
			drifts = append(drifts, Drift{Group: groupLabel(gb), Metric: "presence", A: 0, B: float64(gb.Runs), Rel: 1})
			continue
		case gb == nil:
			drifts = append(drifts, Drift{Group: groupLabel(ga), Metric: "presence", A: float64(ga.Runs), B: 0, Rel: 1})
			continue
		}
		label := groupLabel(ga)
		check := func(metric string, va, vb float64) {
			if rel := relDrift(va, vb); rel > tol {
				drifts = append(drifts, Drift{Group: label, Metric: metric, A: va, B: vb, Rel: rel})
			}
		}
		check("runs", float64(ga.Runs), float64(gb.Runs))
		check("panics", float64(ga.Panics), float64(gb.Panics))
		if ga.TrafficPerKiloInst != nil && gb.TrafficPerKiloInst != nil {
			check("traffic_per_kilo_inst", ga.TrafficPerKiloInst.Mean, gb.TrafficPerKiloInst.Mean)
		}
		for _, stage := range []string{"execute", "queue"} {
			sa, oka := ga.Stages[stage]
			sb, okb := gb.Stages[stage]
			if oka && okb && sa.Count > 0 && sb.Count > 0 {
				check(stage+"_mean_seconds", sa.SumSeconds/float64(sa.Count), sb.SumSeconds/float64(sb.Count))
				check(stage+"_p95_seconds", sa.P95, sb.P95)
			}
		}
	}
	return drifts
}
