// Package isa defines the trace instruction set consumed by the simulated
// processor core.
//
// Workload generators (internal/workload) emit streams of Inst records.
// Each record carries an opcode, virtual-register dependence edges (SSA-ish
// ids that grow monotonically), and — for memory operations — the concrete
// byte address and word value. The core uses the dependence edges and
// opcodes for timing, and the cache hierarchies use the addresses and
// values; because values are concrete, value compressibility in the caches
// is measured rather than assumed.
package isa

import "cppcache/internal/mach"

// Op identifies an instruction class. Classes map one-to-one onto the
// functional units of the simulated core (Figure 9 of the paper).
type Op uint8

const (
	// OpNop consumes a slot but no functional unit.
	OpNop Op = iota
	// OpALU is a single-cycle integer operation (add, sub, logic, compare).
	OpALU
	// OpMul is an integer multiply.
	OpMul
	// OpDiv is an integer divide.
	OpDiv
	// OpFALU is a single-issue floating-point add-class operation.
	OpFALU
	// OpFMul is a floating-point multiply.
	OpFMul
	// OpFDiv is a floating-point divide.
	OpFDiv
	// OpLoad reads one word from memory.
	OpLoad
	// OpStore writes one word to memory.
	OpStore
	// OpBranch is a conditional branch; Taken records its outcome.
	OpBranch

	numOps
)

var opNames = [numOps]string{
	"nop", "alu", "mul", "div", "falu", "fmul", "fdiv", "load", "store", "branch",
}

// String returns the lower-case mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// IsMem reports whether the opcode accesses memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Valid reports whether o is a defined opcode; decoders use it to reject
// corrupted input.
func (o Op) Valid() bool { return o >= 0 && o < numOps }

// NoReg marks an absent register operand or destination.
const NoReg int32 = -1

// Inst is one dynamic instruction in a trace.
//
// Dest is the virtual register written (NoReg for stores, branches, nops).
// Src1 and Src2 are the virtual registers read (NoReg when absent). For a
// load, Src1 is the address-generating register: a pointer-chasing loop is
// expressed as each load's Src1 naming the previous load's Dest. For a
// store, Src1 is the address register and Src2 the data register.
type Inst struct {
	Op    Op
	Dest  int32
	Src1  int32
	Src2  int32
	Addr  mach.Addr // memory ops: concrete byte address
	Value mach.Word // stores: value written; loads: expected value (functional check)
	Taken bool      // branches: resolved direction
	PC    mach.Addr // instruction address, used by the branch predictor
}

// Stream is a pull-based instruction source. Implementations must be
// deterministic: two iterations of the same Stream yield identical
// instructions.
type Stream interface {
	// Next returns the next instruction. ok is false at end of stream.
	Next() (in Inst, ok bool)
	// Reset rewinds the stream to the beginning.
	Reset()
}

// SliceStream adapts a materialised instruction slice to the Stream
// interface.
type SliceStream struct {
	insts []Inst
	pos   int
}

// NewSliceStream returns a Stream over insts. The slice is not copied.
func NewSliceStream(insts []Inst) *SliceStream {
	return &SliceStream{insts: insts}
}

// Next implements Stream.
func (s *SliceStream) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

// Reset implements Stream.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the number of instructions in the stream.
func (s *SliceStream) Len() int { return len(s.insts) }

// Mix tallies a trace's instruction class counts.
type Mix struct {
	Counts [numOps]int64
	Total  int64
}

// Add accumulates one instruction into the mix.
func (m *Mix) Add(in Inst) {
	m.Counts[in.Op]++
	m.Total++
}

// Frac returns the fraction of instructions with opcode o.
func (m *Mix) Frac(o Op) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Counts[o]) / float64(m.Total)
}

// CountMix consumes a stream (resetting it first and afterwards) and
// returns its instruction mix.
func CountMix(s Stream) Mix {
	s.Reset()
	var m Mix
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		m.Add(in)
	}
	s.Reset()
	return m
}
