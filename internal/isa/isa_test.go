package isa

import "testing"

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpNop: "nop", OpALU: "alu", OpMul: "mul", OpDiv: "div",
		OpFALU: "falu", OpFMul: "fmul", OpFDiv: "fdiv",
		OpLoad: "load", OpStore: "store", OpBranch: "branch",
		Op(200): "op?",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestIsMem(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Error("load/store should be memory ops")
	}
	for _, op := range []Op{OpNop, OpALU, OpMul, OpBranch, OpFALU} {
		if op.IsMem() {
			t.Errorf("%v should not be a memory op", op)
		}
	}
}

func TestSliceStream(t *testing.T) {
	insts := []Inst{
		{Op: OpALU, Dest: 0},
		{Op: OpLoad, Dest: 1, Src1: 0, Addr: 0x100},
		{Op: OpBranch, Src1: 1, Taken: true},
	}
	s := NewSliceStream(insts)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i := 0; i < 2; i++ { // two passes to exercise Reset
		var got []Inst
		for {
			in, ok := s.Next()
			if !ok {
				break
			}
			got = append(got, in)
		}
		if len(got) != 3 || got[1].Addr != 0x100 || !got[2].Taken {
			t.Fatalf("pass %d: got %+v", i, got)
		}
		s.Reset()
	}
}

func TestCountMix(t *testing.T) {
	insts := []Inst{
		{Op: OpALU}, {Op: OpALU}, {Op: OpLoad}, {Op: OpStore}, {Op: OpBranch},
	}
	s := NewSliceStream(insts)
	_, _ = s.Next() // CountMix must Reset before counting
	m := CountMix(s)
	if m.Total != 5 {
		t.Fatalf("Total = %d, want 5", m.Total)
	}
	if got := m.Frac(OpALU); got != 0.4 {
		t.Errorf("Frac(ALU) = %v, want 0.4", got)
	}
	if got := m.Frac(OpLoad); got != 0.2 {
		t.Errorf("Frac(Load) = %v, want 0.2", got)
	}
	// Stream is reset for the caller afterwards.
	if in, ok := s.Next(); !ok || in.Op != OpALU {
		t.Error("CountMix did not reset the stream")
	}
}

func TestMixEmpty(t *testing.T) {
	var m Mix
	if m.Frac(OpALU) != 0 {
		t.Error("empty mix should report 0 fractions")
	}
}
