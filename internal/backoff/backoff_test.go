package backoff

import (
	"testing"
	"time"
)

func TestDelayDoublesThenCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Factor: 2, Jitter: 0}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second, // 6400ms clamped
		5 * time.Second, // stays at cap
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Attempts below 1 behave like attempt 1.
	if got := p.Delay(0); got != want[0] {
		t.Errorf("Delay(0) = %v, want %v", got, want[0])
	}
	if got := p.Delay(-3); got != want[0] {
		t.Errorf("Delay(-3) = %v, want %v", got, want[0])
	}
}

func TestDelayCapBoundsHugeAttempts(t *testing.T) {
	p := Policy{Base: time.Millisecond, Cap: time.Second, Factor: 10, Jitter: 0}
	// 10^999 overflows float64 into +Inf without the early clamp; the cap
	// must still hold.
	if got := p.Delay(1000); got != time.Second {
		t.Fatalf("Delay(1000) = %v, want cap %v", got, time.Second)
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(1); got != DefaultPolicy.Base {
		t.Errorf("zero policy Delay(1) = %v, want default base %v", got, DefaultPolicy.Base)
	}
	if got := p.Delay(100); got != DefaultPolicy.Cap {
		t.Errorf("zero policy Delay(100) = %v, want default cap %v", got, DefaultPolicy.Cap)
	}
}

func TestNextJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Factor: 2, Jitter: 0.5}
	b := New(p, 42)
	for round := 0; round < 200; round++ {
		b.Reset()
		for attempt := 1; attempt <= 8; attempt++ {
			d := b.Next()
			det := p.Delay(attempt)
			lo := time.Duration(float64(det) * (1 - p.Jitter))
			if d < lo || d > det {
				t.Fatalf("round %d attempt %d: jittered delay %v outside [%v, %v]",
					round, attempt, d, lo, det)
			}
		}
	}
}

func TestNextWithoutJitterIsDeterministic(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0}
	b := New(p, 1)
	for attempt := 1; attempt <= 6; attempt++ {
		if got, want := b.Next(), p.Delay(attempt); got != want {
			t.Errorf("attempt %d: Next() = %v, want %v", attempt, got, want)
		}
	}
}

func TestResetSnapsBackToBase(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 5 * time.Second, Factor: 2, Jitter: 0}
	b := New(p, 7)
	for i := 0; i < 5; i++ {
		b.Next()
	}
	if b.Attempt() != 5 {
		t.Fatalf("Attempt() = %d, want 5", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("Attempt() after Reset = %d, want 0", b.Attempt())
	}
	if got := b.Next(); got != p.Delay(1) {
		t.Errorf("first Next() after Reset = %v, want base %v", got, p.Delay(1))
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	p := Policy{Jitter: 0.5}
	a, b := New(p, 1234), New(p, 1234)
	for i := 0; i < 20; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i+1, da, db)
		}
	}
	// A different seed should diverge somewhere in 20 draws.
	c := New(p, 99)
	a.Reset()
	diverged := false
	for i := 0; i < 20; i++ {
		if a.Next() != c.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical 20-draw schedules")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	if got := (Policy{Base: 100 * time.Millisecond}).RetryAfterSeconds(); got != 1 {
		t.Errorf("sub-second base: RetryAfterSeconds = %d, want 1", got)
	}
	if got := (Policy{Base: 2500 * time.Millisecond, Cap: 10 * time.Second}).RetryAfterSeconds(); got != 3 {
		t.Errorf("2.5s base: RetryAfterSeconds = %d, want 3 (rounded up)", got)
	}
}
