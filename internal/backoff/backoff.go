// Package backoff is a small jittered-exponential-backoff helper shared
// by everything in the system that retries: the sweep fabric's worker
// placement, the sweep engine's admission retries, and the HTTP layer's
// reconnect advice (Retry-After on 503, SSE retry hints).
//
// Two layers:
//
//   - Policy is the pure schedule: Delay(attempt) is the deterministic
//     (jitter-free) exponential delay, capped. It never allocates and is
//     safe to share.
//   - Backoff is one retry loop's mutable state: Next() walks the
//     schedule applying seeded jitter, Reset() snaps back to the first
//     attempt after a success. Seeded construction makes retry timing
//     reproducible in tests.
package backoff

import (
	"math/rand"
	"time"
)

// Policy describes an exponential backoff schedule.
type Policy struct {
	// Base is the attempt-1 delay. 0 means DefaultPolicy.Base.
	Base time.Duration
	// Cap bounds every delay. 0 means DefaultPolicy.Cap.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier. 0 means
	// DefaultPolicy.Factor; values below 1 are treated as 1 (no growth).
	Factor float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1].
	// A jittered delay is drawn uniformly from
	// [(1-Jitter)*delay, delay], so retries de-synchronise without ever
	// exceeding the deterministic schedule. Negative means
	// DefaultPolicy.Jitter; 0 disables jitter (set it explicitly).
	Jitter float64
}

// DefaultPolicy is the schedule used when a Policy field is zero: first
// retry after 100ms, doubling to a 5s cap, with the upper half of each
// delay randomized.
var DefaultPolicy = Policy{
	Base:   100 * time.Millisecond,
	Cap:    5 * time.Second,
	Factor: 2,
	Jitter: 0.5,
}

// withDefaults fills zero fields from DefaultPolicy.
func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultPolicy.Base
	}
	if p.Cap <= 0 {
		p.Cap = DefaultPolicy.Cap
	}
	if p.Factor == 0 {
		p.Factor = DefaultPolicy.Factor
	}
	if p.Factor < 1 {
		p.Factor = 1
	}
	if p.Jitter < 0 {
		p.Jitter = DefaultPolicy.Jitter
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the deterministic (jitter-free) delay for the 1-based
// attempt: min(Cap, Base*Factor^(attempt-1)). Attempts below 1 are
// treated as 1. This is what HTTP handlers use for Retry-After advice,
// where reproducibility matters more than de-synchronisation.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Cap) {
			return p.Cap
		}
	}
	if d > float64(p.Cap) {
		return p.Cap
	}
	return time.Duration(d)
}

// RetryAfterSeconds renders the attempt-1 delay as a whole-second
// Retry-After value (minimum 1, since zero seconds reads as "now").
func (p Policy) RetryAfterSeconds() int {
	secs := int((p.Delay(1) + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Backoff is one retry loop's state: successive Next() calls walk the
// policy's schedule with seeded jitter. Not safe for concurrent use; each
// retry loop owns its own Backoff.
type Backoff struct {
	policy  Policy
	rng     *rand.Rand
	attempt int
}

// New builds a Backoff over p (zero fields defaulted) with a seeded
// jitter source, so retry timing is reproducible for a fixed seed.
func New(p Policy, seed int64) *Backoff {
	return &Backoff{policy: p.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to sleep before the next retry and advances the
// attempt counter. The returned delay d satisfies
// (1-Jitter)*Delay(n) <= d <= Delay(n) <= Cap for the n-th call since the
// last Reset.
func (b *Backoff) Next() time.Duration {
	b.attempt++
	d := b.policy.Delay(b.attempt)
	if b.policy.Jitter <= 0 {
		return d
	}
	spread := float64(d) * b.policy.Jitter
	return d - time.Duration(b.rng.Float64()*spread)
}

// Reset snaps the schedule back to the first attempt. Call it after a
// success so the next failure starts from Base again.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt reports how many Next() calls have happened since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
