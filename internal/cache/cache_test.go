package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cppcache/internal/mach"
)

func params8kDM() Params  { return Params{SizeBytes: 8 << 10, Assoc: 1, LineBytes: 64} }
func params64k2W() Params { return Params{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 128} }

func lineData(c *Cache, seed mach.Word) []mach.Word {
	d := make([]mach.Word, c.Geom().Words())
	for i := range d {
		d[i] = seed + mach.Word(i)
	}
	return d
}

func TestParamsValidate(t *testing.T) {
	good := []Params{params8kDM(), params64k2W(), {SizeBytes: 1 << 10, Assoc: 4, LineBytes: 32}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", p, err)
		}
	}
	bad := []Params{
		{SizeBytes: 8 << 10, Assoc: 0, LineBytes: 64},
		{SizeBytes: 8 << 10, Assoc: 1, LineBytes: 48},
		{SizeBytes: 100, Assoc: 1, LineBytes: 64},
		{SizeBytes: 3 * 64, Assoc: 1, LineBytes: 64}, // 3 sets: not pow2
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted bad params", p)
		}
	}
}

func TestSets(t *testing.T) {
	if got := params8kDM().Sets(); got != 128 {
		t.Errorf("8K DM 64B sets = %d, want 128", got)
	}
	if got := params64k2W().Sets(); got != 256 {
		t.Errorf("64K 2-way 128B sets = %d, want 256", got)
	}
}

func TestFillProbeReadWrite(t *testing.T) {
	c := MustNew(params8kDM())
	a := mach.Addr(0x12340)
	if c.Probe(a) != nil {
		t.Fatal("empty cache probe hit")
	}
	ev := c.Fill(a, lineData(c, 100))
	if ev.Valid {
		t.Fatal("fill into empty set evicted something")
	}
	v, ok := c.ReadWord(a + 8)
	if !ok || v != 102 {
		t.Fatalf("ReadWord = %d, %v; want 102, true", v, ok)
	}
	if !c.WriteWord(a+8, 999) {
		t.Fatal("WriteWord missed resident line")
	}
	if v, _ := c.ReadWord(a + 8); v != 999 {
		t.Fatalf("read back %d, want 999", v)
	}
	if l := c.Probe(a); !l.Dirty {
		t.Error("line not dirty after write")
	}
}

func TestConflictEvictionDirectMapped(t *testing.T) {
	c := MustNew(params8kDM())
	a := mach.Addr(0x0040)
	b := a + 8<<10 // same set, different tag
	c.Fill(a, lineData(c, 1))
	c.WriteWord(a, 42)
	ev := c.Fill(b, lineData(c, 2))
	if !ev.Valid || !ev.Dirty {
		t.Fatalf("evicted = %+v, want valid dirty", ev)
	}
	if ev.Data[0] != 42 {
		t.Errorf("evicted data[0] = %d, want 42", ev.Data[0])
	}
	if got := c.Geom().NumberToAddr(ev.Tag); got != a {
		t.Errorf("evicted addr = %#x, want %#x", got, a)
	}
	if c.Probe(a) != nil {
		t.Error("old line still resident")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := MustNew(Params{SizeBytes: 4 * 64, Assoc: 4, LineBytes: 64}) // one set, 4 ways
	addrs := []mach.Addr{0x0000, 0x1000, 0x2000, 0x3000}
	for _, a := range addrs {
		c.Fill(a, lineData(c, mach.Word(a)))
	}
	// Touch all but 0x1000 so it becomes LRU.
	c.Access(0x0000)
	c.Access(0x2000)
	c.Access(0x3000)
	ev := c.Fill(0x4000, lineData(c, 9))
	if !ev.Valid || c.Geom().NumberToAddr(ev.Tag) != 0x1000 {
		t.Fatalf("evicted %#x, want 0x1000", c.Geom().NumberToAddr(ev.Tag))
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(params64k2W())
	a := mach.Addr(0x8000)
	c.Fill(a, lineData(c, 5))
	c.WriteWord(a, 77)
	ev := c.Invalidate(a)
	if !ev.Valid || !ev.Dirty || ev.Data[0] != 77 {
		t.Fatalf("Invalidate returned %+v", ev)
	}
	if c.Probe(a) != nil {
		t.Error("line survives invalidation")
	}
	if ev2 := c.Invalidate(a); ev2.Valid {
		t.Error("double invalidate returned valid line")
	}
}

func TestCount(t *testing.T) {
	c := MustNew(params64k2W())
	for i := 0; i < 10; i++ {
		c.Fill(mach.Addr(i*128), lineData(c, mach.Word(i)))
	}
	if got := c.Count(); got != 10 {
		t.Errorf("Count = %d, want 10", got)
	}
}

// Property: a cache behaves as a subset of memory — every read hit returns
// the most recently written value for that address.
func TestCoherenceAgainstShadow(t *testing.T) {
	c := MustNew(Params{SizeBytes: 1 << 10, Assoc: 2, LineBytes: 32})
	shadow := map[mach.Addr]mach.Word{}
	rng := rand.New(rand.NewSource(11))
	geom := c.Geom()
	for i := 0; i < 50000; i++ {
		a := mach.Addr(rng.Intn(1<<14)) &^ 3
		switch rng.Intn(3) {
		case 0: // fill from "memory" (shadow)
			base := geom.LineAddr(a)
			data := make([]mach.Word, geom.Words())
			for w := range data {
				data[w] = shadow[base+mach.Addr(w*4)]
			}
			ev := c.Fill(a, data)
			if ev.Valid && ev.Dirty { // write back
				evBase := geom.NumberToAddr(ev.Tag)
				for w, v := range ev.Data {
					shadow[evBase+mach.Addr(w*4)] = v
				}
			}
		case 1: // write if resident
			v := rng.Uint32()
			if c.WriteWord(a, v) {
				// resident: shadow updated lazily via writeback; track via read check below
				// To keep the shadow exact we update it here too: cache value == latest value.
				shadow[a] = v
			}
		default: // read if resident
			if v, ok := c.ReadWord(a); ok {
				if want := shadow[a]; v != want {
					t.Fatalf("iter %d: read %#x = %d, want %d", i, a, v, want)
				}
			}
		}
	}
}

func TestFillWrongSizePanics(t *testing.T) {
	c := MustNew(params8kDM())
	defer func() {
		if recover() == nil {
			t.Error("Fill with wrong word count did not panic")
		}
	}()
	c.Fill(0, make([]mach.Word, 3))
}

func TestSetOfQuick(t *testing.T) {
	c := MustNew(params64k2W())
	f := func(a mach.Addr) bool {
		s := c.SetOf(a)
		return s >= 0 && s < c.Params().Sets() && s == c.SetOf(c.Geom().LineAddr(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkProbeHit(b *testing.B) {
	c := MustNew(params64k2W())
	c.Fill(0x1000, lineData(c, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Probe(0x1000)
	}
}

func BenchmarkFill(b *testing.B) {
	c := MustNew(params64k2W())
	d := lineData(c, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(mach.Addr(i*128), d)
	}
}
