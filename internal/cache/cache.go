// Package cache implements a generic set-associative, write-back,
// write-allocate cache with per-line data storage and true-LRU
// replacement. It is the building block for the conventional hierarchies
// (BC, BCC, HAC and BCP's caches and prefetch buffers); the CPP compression
// cache in internal/core uses its own line structure because it needs
// per-word availability and compressibility state.
package cache

import (
	"fmt"

	"cppcache/internal/compress"
	"cppcache/internal/mach"
	"cppcache/internal/memsys"
)

// Params sizes one cache.
type Params struct {
	SizeBytes int // total data capacity
	Assoc     int // ways per set; 1 = direct mapped
	LineBytes int // bytes per line
}

// Validate reports an error for impossible parameter combinations.
func (p Params) Validate() error {
	g := mach.LineGeom{LineBytes: p.LineBytes}
	if err := g.Validate(); err != nil {
		return err
	}
	if p.Assoc < 1 {
		return fmt.Errorf("cache: associativity %d < 1", p.Assoc)
	}
	if p.SizeBytes <= 0 || p.SizeBytes%(p.LineBytes*p.Assoc) != 0 {
		return fmt.Errorf("cache: size %d is not a multiple of assoc*line = %d", p.SizeBytes, p.LineBytes*p.Assoc)
	}
	if sets := p.SizeBytes / (p.LineBytes * p.Assoc); !mach.IsPow2(sets) {
		return fmt.Errorf("cache: number of sets %d is not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the parameters.
func (p Params) Sets() int { return p.SizeBytes / (p.LineBytes * p.Assoc) }

// Line is one resident cache line. Data holds the line's words; Tag is the
// full line number (address / line size), which uniquely identifies the
// line without recomputing set bits.
type Line struct {
	Valid bool
	Dirty bool
	Tag   mach.Addr // line number, not just the tag bits
	Data  []mach.Word
	// CompHalves is tag metadata: the line's compressed size in 16-bit
	// half-words under the scheme installed with TrackCompression, kept
	// current across fills and word writes. 0 when untracked.
	CompHalves int
	used       uint64 // LRU timestamp
}

// Addr returns the base byte address of the line.
func (l *Line) Addr(g mach.LineGeom) mach.Addr { return g.NumberToAddr(l.Tag) }

// Evicted describes a line displaced by Fill or Invalidate. Data aliases a
// scratch buffer owned by the cache: it is valid until that cache's next
// Fill or Invalidate, which is as long as every write-back path needs it.
// Callers that retain the words longer must copy them.
type Evicted struct {
	Valid bool
	Dirty bool
	Tag   mach.Addr // line number
	Data  []mach.Word
}

// Cache is a set-associative cache. The zero value is not usable; call New.
type Cache struct {
	p       Params
	geom    mach.LineGeom
	sets    [][]Line
	tick    uint64
	setMask mach.Addr
	evBuf   []mach.Word // backs Evicted.Data; see Evicted
	// comp, when set by TrackCompression, maintains each line's
	// CompHalves tag metadata.
	comp compress.Compressor
}

// New builds a cache, validating the parameters.
func New(p Params) (*Cache, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		p:       p,
		geom:    mach.LineGeom{LineBytes: p.LineBytes},
		setMask: mach.Addr(p.Sets() - 1),
	}
	c.sets = make([][]Line, p.Sets())
	words := c.geom.Words()
	c.evBuf = make([]mach.Word, words)
	for i := range c.sets {
		ways := make([]Line, p.Assoc)
		for w := range ways {
			ways[w].Data = make([]mach.Word, words)
		}
		c.sets[i] = ways
	}
	return c, nil
}

// TrackCompression installs a line-compression scheme whose per-line
// compressed size is maintained as tag metadata (Line.CompHalves) on
// every fill and word write, and aggregated by Occupancy. nil stops
// tracking.
func (c *Cache) TrackCompression(comp compress.Compressor) { c.comp = comp }

// RefreshMeta recomputes a line's compression tag metadata after its Data
// was mutated directly (the hierarchies' write-back merge paths do this).
func (c *Cache) RefreshMeta(l *Line) { c.refreshMeta(l) }

func (c *Cache) refreshMeta(l *Line) {
	if c.comp != nil {
		l.CompHalves = c.comp.LineHalves(l.Data, l.Addr(c.geom))
	}
}

// MustNew is New but panics on invalid parameters; for tests and constants.
func MustNew(p Params) *Cache {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Params returns the construction parameters.
func (c *Cache) Params() Params { return c.p }

// Geom returns the cache's line geometry.
func (c *Cache) Geom() mach.LineGeom { return c.geom }

// SetOf returns the set index for a byte address.
func (c *Cache) SetOf(a mach.Addr) int {
	return int(c.geom.LineNumber(a) & c.setMask)
}

// Probe returns the resident line holding address a, or nil. It does not
// touch LRU state, so it is safe for inspection.
func (c *Cache) Probe(a mach.Addr) *Line {
	n := c.geom.LineNumber(a)
	set := c.sets[int(n&c.setMask)]
	for i := range set {
		if set[i].Valid && set[i].Tag == n {
			return &set[i]
		}
	}
	return nil
}

// Access is Probe plus an LRU touch on hit.
func (c *Cache) Access(a mach.Addr) *Line {
	l := c.Probe(a)
	if l != nil {
		c.tick++
		l.used = c.tick
	}
	return l
}

// victim selects the replacement candidate in the set of address a:
// an invalid way if any, else the least recently used.
func (c *Cache) victim(a mach.Addr) *Line {
	set := c.sets[c.SetOf(a)]
	best := &set[0]
	for i := range set {
		l := &set[i]
		if !l.Valid {
			return l
		}
		if l.used < best.used {
			best = l
		}
	}
	return best
}

// Fill installs the line holding address a with the given words (copied),
// returning the displaced line if it was valid. data must have exactly one
// line's worth of words. The new line is installed clean and most recently
// used.
func (c *Cache) Fill(a mach.Addr, data []mach.Word) Evicted {
	if len(data) != c.geom.Words() {
		panic(fmt.Sprintf("cache: Fill with %d words, line holds %d", len(data), c.geom.Words()))
	}
	v := c.victim(a)
	var ev Evicted
	if v.Valid {
		copy(c.evBuf, v.Data)
		ev = Evicted{Valid: true, Dirty: v.Dirty, Tag: v.Tag, Data: c.evBuf}
	}
	v.Valid = true
	v.Dirty = false
	v.Tag = c.geom.LineNumber(a)
	copy(v.Data, data)
	c.refreshMeta(v)
	c.tick++
	v.used = c.tick
	return ev
}

// Invalidate drops the line holding address a if resident, returning its
// previous contents.
func (c *Cache) Invalidate(a mach.Addr) Evicted {
	l := c.Probe(a)
	if l == nil {
		return Evicted{}
	}
	copy(c.evBuf, l.Data)
	ev := Evicted{Valid: true, Dirty: l.Dirty, Tag: l.Tag, Data: c.evBuf}
	l.Valid = false
	l.Dirty = false
	l.CompHalves = 0
	return ev
}

// ReadWord returns the word at address a if the line is resident.
func (c *Cache) ReadWord(a mach.Addr) (mach.Word, bool) {
	l := c.Access(a)
	if l == nil {
		return 0, false
	}
	return l.Data[c.geom.WordIndex(a)], true
}

// WriteWord updates the word at address a if the line is resident, marking
// the line dirty.
func (c *Cache) WriteWord(a mach.Addr, v mach.Word) bool {
	l := c.Access(a)
	if l == nil {
		return false
	}
	l.Data[c.geom.WordIndex(a)] = v
	l.Dirty = true
	c.refreshMeta(l)
	return true
}

// Lines calls fn for every valid line. For tests and debugging.
func (c *Cache) Lines(fn func(setIdx int, l *Line)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid {
				fn(s, &c.sets[s][w])
			}
		}
	}
}

// Count returns the number of valid lines.
func (c *Cache) Count() int {
	n := 0
	c.Lines(func(int, *Line) { n++ })
	return n
}

// Capacity returns the number of physical frames (sets x ways).
func (c *Cache) Capacity() int { return c.p.Sets() * c.p.Assoc }

// Occupancy reports the cache's physical usage under the given label.
// Lines store words uncompressed, so every valid line occupies its full
// two half-words per word.
func (c *Cache) Occupancy(level string) memsys.Occupancy {
	lines, compHalves := 0, 0
	c.Lines(func(_ int, l *Line) {
		lines++
		compHalves += l.CompHalves
	})
	words := c.geom.Words()
	return memsys.Occupancy{
		Level:      level,
		Lines:      lines,
		LineCap:    c.Capacity(),
		Halves:     lines * words * 2,
		HalfCap:    c.Capacity() * words * 2,
		CompHalves: compHalves,
	}
}
