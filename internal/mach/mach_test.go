package mach

import (
	"testing"
	"testing/quick"
)

func TestWordAlign(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0}, {1, 0}, {3, 0}, {4, 4}, {7, 4}, {0xFFFFFFFF, 0xFFFFFFFC},
	}
	for _, c := range cases {
		if got := WordAlign(c.in); got != c.want {
			t.Errorf("WordAlign(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestLineGeom(t *testing.T) {
	g := LineGeom{LineBytes: 64}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Words(); got != 16 {
		t.Errorf("Words() = %d, want 16", got)
	}
	if got := g.LineAddr(0x1234); got != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x, want 0x1200", got)
	}
	if got := g.WordIndex(0x1234); got != 13 {
		t.Errorf("WordIndex(0x1234) = %d, want 13", got)
	}
	if got := g.LineNumber(0x1234); got != 0x48 {
		t.Errorf("LineNumber(0x1234) = %#x, want 0x48", got)
	}
	if got := g.NumberToAddr(0x48); got != 0x1200 {
		t.Errorf("NumberToAddr(0x48) = %#x, want 0x1200", got)
	}
}

func TestLineGeomValidateRejects(t *testing.T) {
	for _, bytes := range []int{0, 1, 2, 3, 6, 48, -64} {
		g := LineGeom{LineBytes: bytes}
		if err := g.Validate(); err == nil {
			t.Errorf("Validate() accepted line size %d", bytes)
		}
	}
}

func TestLineGeomRoundTrip(t *testing.T) {
	g := LineGeom{LineBytes: 128}
	f := func(a Addr) bool {
		base := g.LineAddr(a)
		idx := g.WordIndex(a)
		back := base + Addr(idx*WordBytes)
		return back == WordAlign(a) && g.NumberToAddr(g.LineNumber(a)) == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 1024} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []int{0, -2, 3, 24, 1023} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 1024: 10, 3: 1, 5: 2}
	for in, want := range cases {
		if got := Log2(in); got != want {
			t.Errorf("Log2(%d) = %d, want %d", in, got, want)
		}
	}
}
