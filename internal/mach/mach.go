// Package mach holds machine-level definitions shared by every part of the
// simulator: the 32-bit word, addresses, and cache line geometry helpers.
//
// The paper targets a 32-bit machine (SimpleScalar PISA); all values and
// addresses in this reproduction are 32 bits wide.
package mach

import "fmt"

// Word is one 32-bit machine word, the unit of value compression.
type Word = uint32

// Addr is a 32-bit byte address.
type Addr = uint32

// WordBytes is the size of a machine word in bytes.
const WordBytes = 4

// WordAlign rounds a byte address down to its word boundary.
func WordAlign(a Addr) Addr { return a &^ (WordBytes - 1) }

// LineGeom describes the geometry of one cache level's lines.
type LineGeom struct {
	LineBytes int // bytes per cache line; power of two
}

// Words returns the number of machine words per line.
func (g LineGeom) Words() int { return g.LineBytes / WordBytes }

// LineAddr returns the address of the first byte of the line holding a.
func (g LineGeom) LineAddr(a Addr) Addr { return a &^ Addr(g.LineBytes-1) }

// WordIndex returns the word offset of a within its line.
func (g LineGeom) WordIndex(a Addr) int {
	return int(a&Addr(g.LineBytes-1)) / WordBytes
}

// LineNumber returns the line-granularity address (address / line size).
func (g LineGeom) LineNumber(a Addr) Addr { return a / Addr(g.LineBytes) }

// NumberToAddr converts a line number back to the line's base byte address.
func (g LineGeom) NumberToAddr(n Addr) Addr { return n * Addr(g.LineBytes) }

// Validate reports an error for impossible geometries.
func (g LineGeom) Validate() error {
	if g.LineBytes < WordBytes || g.LineBytes&(g.LineBytes-1) != 0 {
		return fmt.Errorf("mach: line size %d is not a power-of-two multiple of the word size", g.LineBytes)
	}
	return nil
}

// IsPow2 reports whether v is a power of two (and nonzero).
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Log2 returns floor(log2(v)) for v > 0.
func Log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
