package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// launchSweep POSTs a sweep spec and returns the 202 status body.
func launchSweep(t *testing.T, ts *httptest.Server, spec string) SweepStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps: status %d, body %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Fatal("202 missing Location header")
	}
	var st SweepStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad sweep status %q: %v", body, err)
	}
	return st
}

// getSweep fetches one sweep's status.
func getSweep(t *testing.T, ts *httptest.Server, id int) SweepStatus {
	t.Helper()
	body := fetchText(t, ts, fmt.Sprintf("/sweeps/%d", id), http.StatusOK)
	var st SweepStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad sweep status %q: %v", body, err)
	}
	return st
}

// waitSweep polls until the sweep leaves the running state.
func waitSweep(t *testing.T, ts *httptest.Server, id int) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getSweep(t, ts, id)
		if st.State != SweepRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %d still running after 30s: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// postSweepExpectSpecError POSTs an invalid sweep and asserts the
// structured 400 names the expected field.
func postSweepExpectSpecError(t *testing.T, ts *httptest.Server, spec, wantField string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
	}
	var se SpecError
	if err := json.Unmarshal([]byte(body), &se); err != nil {
		t.Fatalf("400 body is not a SpecError: %q (%v)", body, err)
	}
	if se.Field != wantField {
		t.Fatalf("SpecError field %q, want %q (msg %q)", se.Field, wantField, se.Msg)
	}
	if se.Msg == "" {
		t.Fatal("SpecError has an empty message")
	}
}

// TestSweepExpansionDedupAndSkips: the cross-product is expanded with
// spec-hash deduplication (""/"paper" collapse to the same child) and
// invalid cells (fpc on CPP) become reported skips, not failures.
func TestSweepExpansionDedupAndSkips(t *testing.T) {
	ts, _ := newTestServer(t)
	st := launchSweep(t, ts, `{
		"workloads": ["mst"],
		"configs": ["CPP", "BCC"],
		"compressors": ["", "paper", "fpc"],
		"scales": [1],
		"functional": true
	}`)
	// 2 configs x 3 compressors = 6 cells: CPP+fpc is skipped, "" and
	// "paper" dedupe per config, leaving CPP+paper, BCC+paper, BCC+fpc.
	if st.Total != 3 {
		t.Fatalf("total %d, want 3 children (%+v)", st.Total, st)
	}
	if st.Deduped != 2 {
		t.Errorf("deduped %d, want 2", st.Deduped)
	}
	if len(st.Skipped) != 1 {
		t.Fatalf("skipped %d cells, want 1 (%+v)", len(st.Skipped), st.Skipped)
	}
	sk := st.Skipped[0]
	if sk.Config != "CPP" || sk.Compressor != "fpc" || sk.Reason == "" {
		t.Errorf("skip = %+v, want CPP/fpc with a reason", sk)
	}

	final := waitSweep(t, ts, st.ID)
	if final.State != SweepDone || final.Degraded {
		t.Fatalf("final state %s degraded=%v, want clean done", final.State, final.Degraded)
	}
	if final.Counts[string(StateDone)] != 3 {
		t.Fatalf("done count %d, want 3 (%+v)", final.Counts[string(StateDone)], final.Counts)
	}
	for _, ch := range final.Children {
		if ch.Digest == "" || len(ch.Digest) != 64 {
			t.Errorf("child %s/%s has no sha256 result digest: %q",
				ch.Spec.Config, ch.Spec.Compressor, ch.Digest)
		}
	}
}

// TestSweepValidation400s: oversized products and missing dimensions are
// structured 400s naming the offending field; nothing is half-admitted.
func TestSweepValidation400s(t *testing.T) {
	ts, reg := newTestServer(t)
	var scales []string
	for i := 0; i <= MaxSweepProduct; i++ {
		scales = append(scales, fmt.Sprint(i+1))
	}
	postSweepExpectSpecError(t, ts,
		fmt.Sprintf(`{"workloads":["mst"],"configs":["CPP"],"scales":[%s],"functional":true}`,
			strings.Join(scales, ",")),
		"product")
	postSweepExpectSpecError(t, ts, `{"configs":["CPP"]}`, "workloads")
	postSweepExpectSpecError(t, ts, `{"workloads":["mst"]}`, "configs")
	// Every cell invalid: the sweep as a whole is rejected with the first
	// skip reason, not admitted as an empty batch.
	postSweepExpectSpecError(t, ts,
		`{"workloads":["no-such-workload"],"configs":["CPP"],"functional":true}`, "spec")
	// Unknown top-level fields are rejected outright (fail-closed parsing).
	resp, err := http.Post(ts.URL+"/sweeps", "application/json",
		strings.NewReader(`{"workloads":["mst"],"configs":["CPP"],"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	if n := len(reg.Sweeps()); n != 0 {
		t.Fatalf("%d sweeps admitted by invalid requests, want 0", n)
	}
}

// TestSweepTableDeterministic: the terminal TSV table carries only
// deterministic columns, sorted by spec tuple — so two independent
// executions of the same sweep produce byte-identical tables. This is the
// local-pool half of the kill-vs-control invariant the fabric CI job
// asserts across workers.
func TestSweepTableDeterministic(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := `{
		"workloads": ["mst", "treeadd"],
		"configs": ["BCC", "CPP"],
		"scales": [1, 2],
		"functional": true
	}`
	a := waitSweep(t, ts, launchSweep(t, ts, spec).ID)
	b := waitSweep(t, ts, launchSweep(t, ts, spec).ID)
	if a.State != SweepDone || b.State != SweepDone {
		t.Fatalf("states %s/%s, want done/done", a.State, b.State)
	}

	tableA := fetchText(t, ts, fmt.Sprintf("/sweeps/%d/table", a.ID), http.StatusOK)
	tableB := fetchText(t, ts, fmt.Sprintf("/sweeps/%d/table", b.ID), http.StatusOK)
	if tableA != tableB {
		t.Fatalf("identical sweeps produced different tables:\n--- A ---\n%s--- B ---\n%s", tableA, tableB)
	}

	lines := strings.Split(strings.TrimRight(tableA, "\n"), "\n")
	wantHeader := "workload\tconfig\tcompressor\tscale\tstate\tresult_digest\tcycles\tinstructions\tl1_misses\tl2_misses\ttraffic_words"
	if lines[0] != wantHeader {
		t.Fatalf("table header %q, want %q", lines[0], wantHeader)
	}
	if len(lines) != 1+a.Total {
		t.Fatalf("table has %d rows, want %d", len(lines)-1, a.Total)
	}
	var prevKey string
	for _, line := range lines[1:] {
		cols := strings.Split(line, "\t")
		if len(cols) != 11 {
			t.Fatalf("row %q has %d columns, want 11", line, len(cols))
		}
		if cols[4] != string(StateDone) {
			t.Errorf("row %q state %q, want done", line, cols[4])
		}
		if len(cols[5]) != 64 {
			t.Errorf("row %q digest %q is not sha256 hex", line, cols[5])
		}
		key := strings.Join(cols[:4], "\t")
		if key <= prevKey {
			t.Errorf("rows out of order: %q after %q", key, prevKey)
		}
		prevKey = key
	}
}

// TestSweepCancelFansOut: canceling a sweep whose children are all parked
// behind a stalled slot cancels every child and finalises the sweep as
// canceled; the table stays 409 until then and the terminal sweep rejects
// a second cancel.
func TestSweepCancelFansOut(t *testing.T) {
	ts, reg := newTestServerWith(t, Config{MaxRunning: 1, AllowChaos: true})
	// Park the only slot so every sweep child stays queued.
	blocker := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1,"chaos":{"stall_after":1,"stall_ms":30000}}`)
	defer reg.Cancel(blocker.ID, "test cleanup")

	st := launchSweep(t, ts, `{
		"workloads": ["mst"],
		"configs": ["CPP"],
		"scales": [2, 3, 4],
		"functional": true
	}`)
	if st.Total != 3 {
		t.Fatalf("total %d, want 3", st.Total)
	}
	fetchText(t, ts, fmt.Sprintf("/sweeps/%d/table", st.ID), http.StatusConflict)

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/sweeps/%d", ts.URL, st.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE sweep: status %d, want 202", resp.StatusCode)
	}

	final := waitSweep(t, ts, st.ID)
	if final.State != SweepCanceled {
		t.Fatalf("final state %s, want canceled (%+v)", final.State, final.Counts)
	}
	if final.Counts[string(StateCanceled)] != 3 {
		t.Fatalf("canceled count %d, want 3 (%+v)", final.Counts[string(StateCanceled)], final.Counts)
	}

	// The table of a canceled sweep is still served (every child is
	// terminal) and carries canceled states with empty digests.
	table := fetchText(t, ts, fmt.Sprintf("/sweeps/%d/table", st.ID), http.StatusOK)
	if !strings.Contains(table, string(StateCanceled)) {
		t.Errorf("canceled sweep table missing canceled rows:\n%s", table)
	}

	// A second cancel of the now-terminal sweep is a 409.
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/sweeps/%d", ts.URL, st.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE: status %d, want 409", resp.StatusCode)
	}
}

// TestSweepDegradedPartialFailure: canceling a single child run degrades
// the sweep but does not abort it — the remaining children complete and
// the sweep ends done with degraded=true and a per-state rollup that
// conserves against the child total.
func TestSweepDegradedPartialFailure(t *testing.T) {
	ts, reg := newTestServerWith(t, Config{MaxRunning: 1, AllowChaos: true})
	blocker := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1,"chaos":{"stall_after":1,"stall_ms":30000}}`)

	st := launchSweep(t, ts, `{
		"workloads": ["mst"],
		"configs": ["CPP"],
		"scales": [2, 3, 4],
		"functional": true
	}`)

	// Wait for the first child to be admitted (it queues behind the
	// blocker), then cancel that child run directly — run-level, not
	// sweep-level.
	var victim int
	deadline := time.Now().Add(10 * time.Second)
	for victim == 0 {
		for _, ch := range getSweep(t, ts, st.ID).Children {
			if ch.RunID != 0 {
				victim = ch.RunID
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no sweep child was admitted within 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := reg.Cancel(victim, "induced partial failure"); err != nil {
		t.Fatalf("cancel child run %d: %v", victim, err)
	}
	// Free the slot so the surviving children execute.
	reg.Cancel(blocker.ID, "unblock")

	final := waitSweep(t, ts, st.ID)
	if final.State != SweepDone {
		t.Fatalf("final state %s, want done (%+v)", final.State, final.Counts)
	}
	if !final.Degraded {
		t.Fatal("sweep with a canceled child is not flagged degraded")
	}
	got := final.Counts[string(StateDone)] + final.Counts[string(StateFailed)] +
		final.Counts[string(StateCanceled)]
	if got != final.Total {
		t.Fatalf("terminal counts %v sum to %d, want total %d", final.Counts, got, final.Total)
	}
	if final.Counts[string(StateCanceled)] < 1 {
		t.Fatalf("counts %v missing the canceled child", final.Counts)
	}
	if final.Counts[string(StateDone)] < 2 {
		t.Fatalf("counts %v: surviving children did not complete", final.Counts)
	}
}

// TestSweepSSEProgress: the progress stream opens with reconnect advice,
// emits monotonically-id'd progress events and closes with an "end" event
// carrying the full terminal status.
func TestSweepSSEProgress(t *testing.T) {
	ts, _ := newTestServer(t)
	st := launchSweep(t, ts, `{
		"workloads": ["mst"],
		"configs": ["CPP"],
		"scales": [1, 2],
		"functional": true
	}`)

	resp, err := http.Get(ts.URL + fmt.Sprintf("/sweeps/%d/stream", st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var (
		sawRetry  bool
		progress  int
		lastEvent string
		endData   string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "retry: "):
			sawRetry = true
		case strings.HasPrefix(line, "event: "):
			lastEvent = strings.TrimPrefix(line, "event: ")
			if lastEvent == "progress" {
				progress++
			}
		case strings.HasPrefix(line, "data: ") && lastEvent == "end":
			endData = strings.TrimPrefix(line, "data: ")
		}
		if endData != "" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawRetry {
		t.Error("stream did not open with a retry advice line")
	}
	if progress < 1 {
		t.Errorf("saw %d progress events, want at least 1", progress)
	}
	var final SweepStatus
	if err := json.Unmarshal([]byte(endData), &final); err != nil {
		t.Fatalf("bad end payload %q: %v", endData, err)
	}
	if final.State != SweepDone || final.Counts[string(StateDone)] != 2 {
		t.Fatalf("end event state %s counts %v, want done with 2 done children",
			final.State, final.Counts)
	}
}

// TestSweepListNewestFirst: GET /sweeps lists retained sweeps newest
// first, and unknown ids are 404.
func TestSweepListNewestFirst(t *testing.T) {
	ts, _ := newTestServer(t)
	a := launchSweep(t, ts, `{"workloads":["mst"],"configs":["CPP"],"functional":true}`)
	b := launchSweep(t, ts, `{"workloads":["treeadd"],"configs":["CPP"],"functional":true}`)
	waitSweep(t, ts, a.ID)
	waitSweep(t, ts, b.ID)

	body := fetchText(t, ts, "/sweeps", http.StatusOK)
	var list []SweepStatus
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("bad sweep list %q: %v", body, err)
	}
	if len(list) != 2 || list[0].ID != b.ID || list[1].ID != a.ID {
		t.Fatalf("list order %v, want [%d %d]", []int{list[0].ID, list[1].ID}, b.ID, a.ID)
	}
	fetchText(t, ts, "/sweeps/999", http.StatusNotFound)
}

// TestSweepMemoized: with memoization on, a sweep repeating an
// already-executed spec reports the child as memoized and the digests
// match the executed original byte for byte.
func TestSweepMemoized(t *testing.T) {
	ts, _ := newTestServerWith(t, Config{MemoEntries: 8})
	spec := `{"workloads":["mst"],"configs":["CPP"],"scales":[1],"functional":true}`
	first := waitSweep(t, ts, launchSweep(t, ts, spec).ID)
	second := waitSweep(t, ts, launchSweep(t, ts, spec).ID)
	if first.Memoized != 0 {
		t.Fatalf("first sweep memoized %d children, want 0", first.Memoized)
	}
	if second.Memoized != 1 {
		t.Fatalf("second sweep memoized %d children, want 1 (%+v)", second.Memoized, second.Children)
	}
	if !bytes.Equal(
		[]byte(fetchText(t, ts, fmt.Sprintf("/sweeps/%d/table", first.ID), http.StatusOK)),
		[]byte(fetchText(t, ts, fmt.Sprintf("/sweeps/%d/table", second.ID), http.StatusOK)),
	) {
		t.Fatal("memoized sweep table differs from the executed original")
	}
}
