package serve

import (
	"container/list"
	"sync"

	"cppcache"
	"cppcache/internal/ledger"
	"cppcache/internal/obs"
)

// memoEntry is one memoized terminal result, keyed by the run's canonical
// spec hash. A *full* entry was captured live from a completed run and
// carries everything needed to serve a memo hit byte-identically to the
// original: the snapshot series (with its ring base and drop count, so
// SSE replay reproduces the original gap behaviour), the totals, the
// final result and the attribution profile. An *index-only* entry was
// seeded from a replayed ledger record: it knows the original run/trace
// IDs and the result digest but not the result body, so it cannot serve
// hits — its job is digest-drift detection (a re-executed spec whose
// digest differs from the ledgered one is a determinism violation) until
// the first post-boot execution promotes it to full.
type memoEntry struct {
	specHash string
	runID    int    // run that actually executed
	traceID  string // its trace
	digest   string // ledger.ResultDigest of its result

	full        bool
	totals      obs.Snapshot
	snaps       []obs.Snapshot
	snapBase    int
	snapDropped int64
	result      *cppcache.Result
	attrText    string
	attrColl    string
}

// memoStats is a point-in-time view of the store's counters.
type memoStats struct {
	Hits      int64
	Misses    int64
	Entries   int // full + index-only
	Full      int
	Drift     int64
	Evictions int64
}

// memoStore is the LRU-bounded spec-hash → terminal-result cache behind
// run memoization. Safe for concurrent use. Counting discipline: the
// registry counts exactly one hit or one miss per admitted run, so
// hits + misses always equals admitted runs (test-enforced conservation).
type memoStore struct {
	mu      sync.Mutex
	max     int
	byHash  map[string]*list.Element
	lru     *list.List // front = most recently used; values are *memoEntry

	hits      int64
	misses    int64
	drift     int64
	evictions int64
}

// newMemoStore builds a store bounded to max entries (full and
// index-only alike).
func newMemoStore(max int) *memoStore {
	return &memoStore{max: max, byHash: make(map[string]*list.Element), lru: list.New()}
}

// lookup returns the full entry for hash, bumping its recency, or nil
// when the hash is unknown or only index-seeded. It does NOT count a hit
// or miss — admission owns the counting so bypassed lookups (nocache,
// chaos) still conserve.
func (m *memoStore) lookup(hash string) *memoEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byHash[hash]
	if !ok {
		return nil
	}
	e := el.Value.(*memoEntry)
	if !e.full {
		return nil
	}
	m.lru.MoveToFront(el)
	return e
}

// countHit / countMiss record the admission decision.
func (m *memoStore) countHit() {
	m.mu.Lock()
	m.hits++
	m.mu.Unlock()
}

func (m *memoStore) countMiss() {
	m.mu.Lock()
	m.misses++
	m.mu.Unlock()
}

// store inserts (or promotes) the entry for e.specHash and applies the
// LRU bound. It returns true when an existing entry for the same hash
// carried a different result digest — a determinism violation the caller
// should log loudly (the new execution wins so the store keeps serving
// what the latest real run produced).
func (m *memoStore) store(e *memoEntry) (drift bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byHash[e.specHash]; ok {
		old := el.Value.(*memoEntry)
		if old.digest != "" && e.digest != "" && old.digest != e.digest {
			m.drift++
			drift = true
		}
		el.Value = e
		m.lru.MoveToFront(el)
		return drift
	}
	m.byHash[e.specHash] = m.lru.PushFront(e)
	for m.max > 0 && m.lru.Len() > m.max {
		oldest := m.lru.Back()
		m.lru.Remove(oldest)
		delete(m.byHash, oldest.Value.(*memoEntry).specHash)
		m.evictions++
	}
	return false
}

// seed warm-starts the index from replayed ledger records: each done,
// non-memoized, non-chaos record with a result digest becomes an
// index-only entry (newer records win). It returns how many entries were
// seeded.
func (m *memoStore) seed(recs []ledger.Record) int {
	n := 0
	for _, rec := range recs {
		if rec.State != string(StateDone) || rec.Memoized || rec.Chaos || rec.ResultDigest == "" || rec.SpecHash == "" {
			continue
		}
		m.mu.Lock()
		if el, ok := m.byHash[rec.SpecHash]; ok {
			// Never demote a live full entry to index-only.
			if e := el.Value.(*memoEntry); e.full {
				m.mu.Unlock()
				continue
			}
			el.Value = &memoEntry{specHash: rec.SpecHash, runID: rec.RunID,
				traceID: rec.TraceID, digest: rec.ResultDigest}
			m.mu.Unlock()
			n++
			continue
		}
		m.byHash[rec.SpecHash] = m.lru.PushFront(&memoEntry{
			specHash: rec.SpecHash, runID: rec.RunID,
			traceID: rec.TraceID, digest: rec.ResultDigest,
		})
		for m.max > 0 && m.lru.Len() > m.max {
			oldest := m.lru.Back()
			m.lru.Remove(oldest)
			delete(m.byHash, oldest.Value.(*memoEntry).specHash)
			m.evictions++
		}
		m.mu.Unlock()
		n++
	}
	return n
}

// stats returns a point-in-time counter view.
func (m *memoStore) stats() memoStats {
	if m == nil {
		return memoStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := memoStats{
		Hits: m.hits, Misses: m.misses,
		Entries: m.lru.Len(), Drift: m.drift, Evictions: m.evictions,
	}
	for el := m.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*memoEntry).full {
			st.Full++
		}
	}
	return st
}
