package serve

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"cppcache"
	"cppcache/internal/obs"
)

// RunSpec is the job description accepted by POST /runs.
type RunSpec struct {
	// Workload is a benchmark name or unambiguous dot-suffix ("mst").
	Workload string `json:"workload"`
	// Config is a cache configuration (BC, BCC, HAC, BCP, CPP, VC, LCC).
	Config string `json:"config"`
	// Scale multiplies the workload's compute phase (0 = default).
	Scale int `json:"scale,omitempty"`
	// Functional skips the pipeline model (faster; no cycle counts).
	Functional bool `json:"functional,omitempty"`
	// Interval is the metrics snapshot cadence in cycles (ops in
	// functional mode). 0 = DefaultInterval.
	Interval int64 `json:"interval,omitempty"`
	// Attr enables the PC/region attribution profiler.
	Attr bool `json:"attr,omitempty"`
	// Halved halves the miss penalties (Figure 14 methodology).
	Halved bool `json:"halved,omitempty"`
}

// DefaultInterval is the snapshot cadence when RunSpec.Interval is 0. Every
// job snapshots: the metric series is what /metrics and the SSE stream are
// fed from.
const DefaultInterval = 10_000

// RunState is a job's lifecycle phase.
type RunState string

// Job lifecycle states.
const (
	StateRunning RunState = "running"
	StateDone    RunState = "done"
	StateFailed  RunState = "failed"
)

// Run is one simulation job managed by the registry. All mutable fields
// are guarded by mu; the snapshot slice is append-only, so consumers can
// hold an index into it across waits.
type Run struct {
	ID   int     `json:"id"`
	Spec RunSpec `json:"spec"`

	mu       sync.Mutex
	state    RunState
	started  time.Time
	finished time.Time
	errMsg   string
	result   *cppcache.Result
	snaps    []obs.Snapshot
	totals   obs.Snapshot // running column sums of snaps (PagesTouched: last gauge)
	dropped  int64
	attrText string
	attrColl string

	// changed is closed and replaced whenever snaps or state change;
	// stream consumers wait on it.
	changed chan struct{}
}

// RunStatus is the JSON shape served for one run.
type RunStatus struct {
	ID        int              `json:"id"`
	Spec      RunSpec          `json:"spec"`
	State     RunState         `json:"state"`
	Started   time.Time        `json:"started"`
	Finished  *time.Time       `json:"finished,omitempty"`
	Error     string           `json:"error,omitempty"`
	Intervals int              `json:"intervals"`
	Totals    obs.Snapshot     `json:"totals"`
	Result    *cppcache.Result `json:"result,omitempty"`
}

// Registry launches and tracks simulation jobs.
type Registry struct {
	log *slog.Logger

	mu      sync.Mutex
	runs    map[int]*Run
	order   []int
	next    int
	closed  bool
	pending sync.WaitGroup
}

// NewRegistry builds an empty registry. A nil logger discards job logs.
func NewRegistry(log *slog.Logger) *Registry {
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Registry{log: log, runs: make(map[int]*Run), next: 1}
}

// normalize validates and canonicalises a spec, resolving workload
// suffixes and upper-casing the configuration.
func (g *Registry) normalize(spec RunSpec) (RunSpec, error) {
	if spec.Workload == "" {
		return spec, fmt.Errorf("workload is required")
	}
	resolved, err := cppcache.ResolveBenchmark(spec.Workload)
	if err != nil {
		return spec, err
	}
	spec.Workload = resolved
	if spec.Config == "" {
		spec.Config = "CPP"
	}
	cfg, ok := cppcache.KnownConfig(spec.Config)
	if !ok {
		return spec, fmt.Errorf("unknown configuration %q", spec.Config)
	}
	spec.Config = string(cfg)
	if spec.Scale < 0 {
		return spec, fmt.Errorf("scale must be non-negative")
	}
	if spec.Interval < 0 {
		return spec, fmt.Errorf("interval must be non-negative")
	}
	if spec.Interval == 0 {
		spec.Interval = DefaultInterval
	}
	return spec, nil
}

// Launch validates spec, registers a run and starts the simulation on its
// own goroutine. It returns the registered run immediately.
func (g *Registry) Launch(spec RunSpec) (*Run, error) {
	spec, err := g.normalize(spec)
	if err != nil {
		return nil, err
	}

	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, fmt.Errorf("registry is draining; not accepting new runs")
	}
	run := &Run{
		ID:      g.next,
		Spec:    spec,
		state:   StateRunning,
		started: time.Now(),
		changed: make(chan struct{}),
	}
	g.next++
	g.runs[run.ID] = run
	g.order = append(g.order, run.ID)
	g.pending.Add(1)
	g.mu.Unlock()

	log := g.log.With("run", run.ID, "workload", spec.Workload, "config", spec.Config)
	log.Info("run launched", "functional", spec.Functional, "interval", spec.Interval, "attr", spec.Attr)

	go func() {
		defer g.pending.Done()
		start := time.Now()
		res, ob, err := cppcache.RunObserved(spec.Workload, cppcache.CacheConfig(spec.Config),
			cppcache.Options{
				Scale:            spec.Scale,
				HalveMissPenalty: spec.Halved,
				FunctionalOnly:   spec.Functional,
			},
			cppcache.ObserveOptions{
				IntervalCycles: spec.Interval,
				Attr:           spec.Attr,
				OnSnapshot:     run.appendSnapshot,
			})
		if err != nil {
			run.fail(err)
			log.Error("run failed", "err", err, "elapsed", time.Since(start))
			return
		}
		run.complete(&res, ob)
		log.Info("run done", "elapsed", time.Since(start),
			"l1_misses", res.L1Misses, "traffic_words", res.MemTrafficWords)
	}()
	return run, nil
}

// Get returns the run with the given id.
func (g *Registry) Get(id int) (*Run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	run, ok := g.runs[id]
	return run, ok
}

// Runs returns every run in launch order.
func (g *Registry) Runs() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Run, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.runs[id])
	}
	return out
}

// Drain stops accepting new runs and waits for the running ones to finish,
// up to timeout. It reports whether everything drained in time.
func (g *Registry) Drain(timeout time.Duration) bool {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()

	done := make(chan struct{})
	go func() {
		g.pending.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// appendSnapshot publishes one interval delta. It runs on the simulation
// goroutine (via ObserveOptions.OnSnapshot), synchronously with the
// recorder's own append, so the registry's series is always exactly the
// recorder's series.
func (r *Run) appendSnapshot(s obs.Snapshot) {
	r.mu.Lock()
	r.snaps = append(r.snaps, s)
	addSnapshot(&r.totals, s)
	r.notifyLocked()
	r.mu.Unlock()
}

// addSnapshot accumulates one interval delta into a totals block. Counter
// fields sum; the PagesTouched gauge takes the latest sample.
func addSnapshot(t *obs.Snapshot, s obs.Snapshot) {
	t.Cycle = s.Cycle // last snapshot time
	t.Instructions += s.Instructions
	t.L1Accesses += s.L1Accesses
	t.L1Misses += s.L1Misses
	t.L2Accesses += s.L2Accesses
	t.L2Misses += s.L2Misses
	t.MemReadHalves += s.MemReadHalves
	t.MemWriteHalves += s.MemWriteHalves
	t.AffHits += s.AffHits
	t.AffWordsPrefetched += s.AffWordsPrefetched
	t.Promotions += s.Promotions
	t.PfBufHits += s.PfBufHits
	t.PfIssued += s.PfIssued
	t.FillWords += s.FillWords
	t.FillCompWords += s.FillCompWords
	t.ROBOccSum += s.ROBOccSum
	t.ROBOccSamples += s.ROBOccSamples
	t.PagesTouched = s.PagesTouched
}

// complete marks the run done and captures its result and profile.
func (r *Run) complete(res *cppcache.Result, ob *cppcache.Observation) {
	r.mu.Lock()
	r.state = StateDone
	r.finished = time.Now()
	r.result = res
	r.dropped = ob.TraceDropped()
	if ob.AttrEnabled() {
		r.attrText = ob.AttrText(10)
		r.attrColl = ob.AttrCollapsed()
	}
	r.notifyLocked()
	r.mu.Unlock()
}

// fail marks the run failed.
func (r *Run) fail(err error) {
	r.mu.Lock()
	r.state = StateFailed
	r.finished = time.Now()
	r.errMsg = err.Error()
	r.notifyLocked()
	r.mu.Unlock()
}

// notifyLocked wakes every waiter. Callers hold r.mu.
func (r *Run) notifyLocked() {
	close(r.changed)
	r.changed = make(chan struct{})
}

// Status returns the run's JSON-ready view.
func (r *Run) Status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID:        r.ID,
		Spec:      r.Spec,
		State:     r.state,
		Started:   r.started,
		Error:     r.errMsg,
		Intervals: len(r.snaps),
		Totals:    r.totals,
		Result:    r.result,
	}
	if !r.finished.IsZero() {
		f := r.finished
		st.Finished = &f
	}
	return st
}

// State returns the run's lifecycle phase.
func (r *Run) State() RunState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Totals returns the column sums of the published snapshots.
func (r *Run) Totals() obs.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totals
}

// Profile returns the attribution outputs ("" when attribution was off or
// the run has not finished).
func (r *Run) Profile() (text, collapsed string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attrText, r.attrColl
}

// SnapsFrom returns the snapshots at index >= i, the current state, and a
// channel that is closed on the next change. The returned slice aliases
// the append-only backing array and must not be mutated.
func (r *Run) SnapsFrom(i int) (snaps []obs.Snapshot, state RunState, changed <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < len(r.snaps) {
		snaps = r.snaps[i:len(r.snaps):len(r.snaps)]
	}
	return snaps, r.state, r.changed
}
