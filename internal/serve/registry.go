package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"cppcache"
	"cppcache/internal/chaos"
	"cppcache/internal/fabric"
	"cppcache/internal/ledger"
	"cppcache/internal/obs"
	"cppcache/internal/sched"
	"cppcache/internal/span"
)

// RunSpec is the job description accepted by POST /runs.
type RunSpec struct {
	// Workload is a benchmark name or unambiguous dot-suffix ("mst").
	Workload string `json:"workload"`
	// Config is a cache configuration (BC, BCC, HAC, BCP, CPP, VC, LCC).
	Config string `json:"config"`
	// Compressor selects the line-compression scheme for configurations
	// that compress bus transfers (BCC, LCC). "" means the paper's
	// scheme; normalize canonicalises it to an explicit name.
	Compressor string `json:"compressor,omitempty"`
	// Scale multiplies the workload's compute phase (0 = default).
	Scale int `json:"scale,omitempty"`
	// Functional skips the pipeline model (faster; no cycle counts).
	Functional bool `json:"functional,omitempty"`
	// Interval is the metrics snapshot cadence in cycles (ops in
	// functional mode). 0 = DefaultInterval.
	Interval int64 `json:"interval,omitempty"`
	// Attr enables the PC/region attribution profiler.
	Attr bool `json:"attr,omitempty"`
	// Halved halves the miss penalties (Figure 14 methodology).
	Halved bool `json:"halved,omitempty"`
	// TimeoutSec caps the run's execution time in seconds, counted from
	// dispatch (not from time spent queued). 0 = no per-run deadline. A
	// run that exceeds it is terminated cooperatively and marked failed.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Chaos requests deterministic fault injection for this run (panic,
	// stall or self-cancel at seeded execution points). Only accepted
	// when the registry was built with Config.AllowChaos.
	Chaos *chaos.Spec `json:"chaos,omitempty"`
}

// DefaultInterval is the snapshot cadence when RunSpec.Interval is 0. Every
// job snapshots: the metric series is what /metrics and the SSE stream are
// fed from.
const DefaultInterval = 10_000

// Validation bounds for RunSpec fields. Absurd values are rejected with a
// structured 400 rather than admitted against finite memory and CPU.
const (
	MaxScale      = 4096
	MaxInterval   = 1_000_000_000
	MaxTimeoutSec = 3600
)

// RunState is a job's lifecycle phase.
type RunState string

// Job lifecycle states. A run is born queued, becomes running when the
// admission controller dispatches it, and ends in exactly one of done,
// failed or canceled.
const (
	StateQueued   RunState = "queued"
	StateRunning  RunState = "running"
	StateDone     RunState = "done"
	StateFailed   RunState = "failed"
	StateCanceled RunState = "canceled"
)

// States lists every lifecycle state in order.
func States() []RunState {
	return []RunState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}
}

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// SpecError is a RunSpec validation failure, served as HTTP 400 with a
// structured body naming the offending field.
type SpecError struct {
	Field string `json:"field"`
	Msg   string `json:"error"`
}

// Error implements error.
func (e *SpecError) Error() string { return fmt.Sprintf("%s: %s", e.Field, e.Msg) }

func specErrorf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Admission-control sentinels, mapped to backpressure status codes by the
// HTTP layer.
var (
	// ErrQueueFull: the worker pool and the wait queue are both at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("run queue full; retry later")
	// ErrDraining: the registry is shutting down (HTTP 503).
	ErrDraining = errors.New("registry is draining; not accepting new runs")
)

// Run is one simulation job managed by the registry. All mutable fields
// are guarded by mu. Snapshots live in a bounded ring: consumers address
// them by ordinal (the index in the full published series) and may observe
// a gap if the ring has dropped old entries.
type Run struct {
	ID   int     `json:"id"`
	Spec RunSpec `json:"spec"`

	mu          sync.Mutex
	state       RunState
	created     time.Time
	started     time.Time
	finished    time.Time
	errMsg      string
	cancelCause string
	cancel      context.CancelFunc // non-nil while running
	result      *cppcache.Result
	dropped     int64 // trace-ring drops reported by the recorder
	attrText    string
	attrColl    string

	// Memoization provenance: a memoized run never executed — it replayed
	// the terminal state of run memoRun (trace memoTrace).
	memoized  bool
	memoRun   int
	memoTrace string

	// Lifecycle spans. The tracer is created at admission and the spans
	// are opened/closed with the exact instants stamped on created/
	// started/finished, so span durations reconcile with the registry
	// timestamps to the nanosecond: root "run" = [created, finished],
	// "queue" = [created, started], "execute" = [started, finished].
	tracer  *span.Tracer
	root    *span.Span
	queueSp *span.Span
	execSp  *span.Span

	// Snapshot ring: snaps[snapHead..] wrapping, snapCount entries, the
	// oldest of which is ordinal snapBase in the published series. The
	// backing slice grows lazily toward ringCap.
	snaps       []obs.Snapshot
	ringCap     int
	snapHead    int
	snapCount   int
	snapBase    int
	snapDropped int64
	totals      obs.Snapshot // running column sums of ALL published snaps

	// changed is closed and replaced whenever snaps or state change;
	// stream consumers wait on it.
	changed chan struct{}
}

// RunStatus is the JSON shape served for one run.
type RunStatus struct {
	ID               int              `json:"id"`
	TraceID          string           `json:"trace_id,omitempty"`
	Spec             RunSpec          `json:"spec"`
	State            RunState         `json:"state"`
	Created          time.Time        `json:"created"`
	Started          *time.Time       `json:"started,omitempty"`
	Finished         *time.Time       `json:"finished,omitempty"`
	Error            string           `json:"error,omitempty"`
	Intervals        int              `json:"intervals"`
	SnapshotsDropped int64            `json:"snapshots_dropped,omitempty"`
	Totals           obs.Snapshot     `json:"totals"`
	Result           *cppcache.Result `json:"result,omitempty"`

	// Memoized marks a run served from the spec-hash memo store;
	// MemoSourceRun/MemoSourceTrace identify the execution it replayed.
	Memoized        bool   `json:"memoized,omitempty"`
	MemoSourceRun   int    `json:"memo_source_run,omitempty"`
	MemoSourceTrace string `json:"memo_source_trace,omitempty"`
}

// Config sizes the registry's admission control and retention.
type Config struct {
	// MaxRunning bounds concurrently executing simulations (the worker
	// pool). 0 = DefaultMaxRunning.
	MaxRunning int
	// MaxQueue bounds runs waiting for a worker slot. 0 = DefaultMaxQueue.
	MaxQueue int
	// SnapRing bounds retained interval snapshots per run; older entries
	// are dropped (and counted) once it fills. 0 = DefaultSnapRing.
	SnapRing int
	// Retain bounds retained terminal runs; the oldest are evicted (and
	// counted) beyond it. 0 = DefaultRetain.
	Retain int
	// AllowChaos accepts RunSpec.Chaos fault-injection requests. Off by
	// default: chaos is an operator tool, not a public API.
	AllowChaos bool
	// Ledger, when non-nil, receives one durable record per terminal run
	// (fsync'd append). Nil disables persistence; the in-memory fleet
	// rollup is always maintained.
	Ledger *ledger.Writer
	// MemoEntries bounds the spec-hash memo store (LRU). 0 disables
	// memoization entirely: every admitted run executes.
	MemoEntries int
	// SweepRetain bounds retained terminal sweeps. 0 = DefaultSweepRetain.
	SweepRetain int
	// Fabric, when non-nil, makes sweeps execute their children through
	// the coordinator/worker tier instead of the local pool. Direct POST
	// /runs traffic still executes locally.
	Fabric *fabric.Coordinator
	// Role names this process's place in the sweep fabric for the
	// cppserved_build_info role label: "single" (default), "coordinator"
	// or "worker".
	Role string
}

// Admission-control and retention defaults.
const (
	DefaultMaxRunning = 4
	DefaultMaxQueue   = 32
	DefaultSnapRing   = 4096
	DefaultRetain     = 256
)

func (c Config) withDefaults() Config {
	if c.MaxRunning <= 0 {
		c.MaxRunning = DefaultMaxRunning
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.SnapRing <= 0 {
		c.SnapRing = DefaultSnapRing
	}
	if c.Retain <= 0 {
		c.Retain = DefaultRetain
	}
	if c.Role == "" {
		if c.Fabric != nil {
			c.Role = "coordinator"
		} else {
			c.Role = "single"
		}
	}
	return c
}

// Counters are the registry's own operational counters, exposed on
// /metrics alongside the per-run simulation series.
type Counters struct {
	Running            int
	QueueDepth         int
	PanicsRecovered    int64
	RunsEvicted        int64
	RejectedQueueFull  int64
	RejectedDraining   int64
	SlowStreamsDropped int64
	SnapshotsDropped   int64 // summed over retained runs plus evicted ones
	LedgerErrors       int64 // ledger appends that failed (runs unaffected)

	// Memo-store counters (all zero when memoization is off). Hits+Misses
	// equals admitted runs exactly — the conservation the memo tests pin.
	MemoHits        int64
	MemoMisses      int64
	MemoEntries     int
	MemoFullEntries int
	MemoDigestDrift int64
	MemoEvictions   int64
}

// Registry launches and tracks simulation jobs under supervision: a
// bounded worker pool with a FIFO wait queue, per-run deadlines and
// cancellation, panic isolation, bounded snapshot retention and eviction
// of old terminal runs.
type Registry struct {
	cfg  Config
	log  *slog.Logger
	pool *sched.Pool // reusable workers for run execution, sized MaxRunning

	// stages aggregates span durations per stage across every run, the
	// source of the cppserved_stage_seconds histogram family.
	stages stageSet

	// fleet is the cross-run rollup: one ledger record per terminal run,
	// replayed records included, queryable via /fleet and cppledger.
	fleet *ledger.Rollup

	// memo is the spec-hash result cache (nil when Config.MemoEntries is
	// 0); sweeps is the batch-sweep engine; fab is the coordinator tier
	// sweeps dispatch through (nil = local execution).
	memo   *memoStore
	sweeps *sweepSet
	fab    *fabric.Coordinator

	mu       sync.Mutex
	runs     map[int]*Run
	order    []int
	queue    []int // ids of queued runs, FIFO
	running  int
	next     int
	closed   bool
	notReady bool // true until boot replay completes (SetReady)
	pending  sync.WaitGroup

	panics        int64
	evicted       int64
	rejectedFull  int64
	rejectedDrain int64
	slowStreams   int64
	evictedDrops  int64 // snapshot drops of evicted runs, so the counter survives eviction
	ledgerErrors  int64 // failed ledger appends (the run itself is unaffected)
}

// NewRegistry builds an empty registry with default supervision limits. A
// nil logger discards job logs.
func NewRegistry(log *slog.Logger) *Registry {
	return NewRegistryWith(Config{}, log)
}

// NewRegistryWith builds an empty registry with explicit limits.
func NewRegistryWith(cfg Config, log *slog.Logger) *Registry {
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	cfg = cfg.withDefaults()
	g := &Registry{
		cfg:   cfg,
		log:   log,
		pool:  sched.NewPool(cfg.MaxRunning),
		runs:  make(map[int]*Run),
		next:  1,
		fleet: ledger.NewRollup(),
	}
	if cfg.MemoEntries > 0 {
		g.memo = newMemoStore(cfg.MemoEntries)
	}
	g.sweeps = newSweepSet(g)
	g.fab = cfg.Fabric
	return g
}

// SetReady flips the registry's boot-readiness. cppserved starts the
// listener before replaying the ledger and calls SetReady(true) once the
// replay (and fleet/memo seeding) completes, so /readyz answers 503
// during the boot window. Registries built by tests are ready from birth.
func (g *Registry) SetReady(ready bool) {
	g.mu.Lock()
	g.notReady = !ready
	g.mu.Unlock()
}

// Readiness reports whether the registry should accept traffic, with a
// machine-readable reason when it should not ("draining", "booting").
// Liveness (/healthz) is unconditional; readiness is what load balancers
// and the fabric's worker probes key on.
func (g *Registry) Readiness() (ready bool, reason string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case g.closed:
		return false, "draining"
	case g.notReady:
		return false, "booting"
	}
	return true, ""
}

// Limits returns the registry's effective configuration.
func (g *Registry) Limits() Config { return g.cfg }

// normalize validates and canonicalises a spec, resolving workload
// suffixes and upper-casing the configuration. Violations come back as
// *SpecError (HTTP 400).
func (g *Registry) normalize(spec RunSpec) (RunSpec, error) {
	if spec.Workload == "" {
		return spec, specErrorf("workload", "workload is required")
	}
	resolved, err := cppcache.ResolveBenchmark(spec.Workload)
	if err != nil {
		return spec, specErrorf("workload", "%v", err)
	}
	spec.Workload = resolved
	if spec.Config == "" {
		spec.Config = "CPP"
	}
	cfg, ok := cppcache.KnownConfig(spec.Config)
	if !ok {
		return spec, specErrorf("config", "unknown configuration %q", spec.Config)
	}
	spec.Config = string(cfg)
	scheme, ok := cppcache.KnownCompressor(spec.Compressor)
	if !ok {
		return spec, specErrorf("compressor", "unknown compression scheme %q (known: %s)",
			spec.Compressor, strings.Join(cppcache.Compressors(), ", "))
	}
	if err := cppcache.ValidateCompressor(cfg, scheme); err != nil {
		return spec, specErrorf("compressor", "%v", err)
	}
	spec.Compressor = scheme
	if spec.Scale < 0 || spec.Scale > MaxScale {
		return spec, specErrorf("scale", "scale must be in [0, %d], got %d", MaxScale, spec.Scale)
	}
	if spec.Interval < 0 || spec.Interval > MaxInterval {
		return spec, specErrorf("interval", "interval must be in [0, %d], got %d", MaxInterval, spec.Interval)
	}
	if spec.Interval == 0 {
		spec.Interval = DefaultInterval
	}
	if spec.TimeoutSec < 0 || spec.TimeoutSec > MaxTimeoutSec {
		return spec, specErrorf("timeout_sec", "timeout_sec must be in [0, %d], got %g", MaxTimeoutSec, spec.TimeoutSec)
	}
	if spec.Chaos != nil {
		if !g.cfg.AllowChaos {
			return spec, specErrorf("chaos", "chaos injection is disabled (start cppserved with -chaos)")
		}
		if err := spec.Chaos.Validate(); err != nil {
			return spec, specErrorf("chaos", "%v", err)
		}
	}
	return spec, nil
}

// LaunchOptions tune one admission.
type LaunchOptions struct {
	// NoCache bypasses the memo lookup (the ?nocache=1 escape hatch): the
	// run executes even when a memoized result exists. Its own terminal
	// result still refreshes the store.
	NoCache bool
}

// Launch validates spec and admits a run: dispatched immediately when a
// worker slot is free, queued when the wait queue has room, rejected with
// ErrQueueFull/ErrDraining otherwise. It returns the registered run
// immediately.
func (g *Registry) Launch(spec RunSpec) (*Run, error) {
	return g.LaunchOpts(spec, LaunchOptions{})
}

// LaunchOpts is Launch with explicit options. When memoization is on and
// a full memo entry matches the spec's content hash, the run is born
// terminal (done) with the original's snapshots, totals, result and
// profile — served in microseconds, no worker slot consumed, marked
// memoized with the source run/trace IDs. Chaos runs never consult the
// memo (fault injection must actually execute), and runs only enter the
// store from real, fault-free completions.
func (g *Registry) LaunchOpts(spec RunSpec, opts LaunchOptions) (*Run, error) {
	spec, err := g.normalize(spec)
	if err != nil {
		return nil, err
	}
	var specHash string
	if g.memo != nil {
		specHash, _ = ledger.SpecHash(spec)
	}

	g.mu.Lock()
	if g.closed {
		g.rejectedDrain++
		g.mu.Unlock()
		return nil, ErrDraining
	}
	if g.memo != nil && specHash != "" && !opts.NoCache && spec.Chaos == nil {
		if e := g.memo.lookup(specHash); e != nil {
			// A hit bypasses admission control entirely: no slot, no queue
			// capacity, just a terminal run built from the cached entry.
			g.memo.countHit()
			run := g.newMemoRunLocked(spec, e)
			g.mu.Unlock()
			g.log.Info("run memoized", "run_id", run.ID, "trace_id", run.TraceID(),
				"workload", spec.Workload, "config", spec.Config,
				"source_run", e.runID, "source_trace", e.traceID)
			g.recordTerminal(run)
			g.mu.Lock()
			g.evictLocked()
			g.mu.Unlock()
			return run, nil
		}
	}
	if g.running >= g.cfg.MaxRunning && len(g.queue) >= g.cfg.MaxQueue {
		g.rejectedFull++
		g.mu.Unlock()
		return nil, fmt.Errorf("%w (%d running, %d queued)", ErrQueueFull, g.running, len(g.queue))
	}
	if g.memo != nil {
		// Counted only after admission succeeds, so hits+misses equals
		// admitted runs exactly (rejections count neither).
		g.memo.countMiss()
	}
	t0 := time.Now()
	tracer := span.New(0)
	tracer.SetOnEnd(g.stages.observe)
	run := &Run{
		ID:      g.next,
		Spec:    spec,
		state:   StateQueued,
		created: t0,
		ringCap: g.cfg.SnapRing,
		changed: make(chan struct{}),
		tracer:  tracer,
	}
	// The root span and the queue span open at the exact created instant,
	// so span intervals and registry timestamps reconcile precisely.
	run.root = tracer.StartAt("run", nil, t0,
		span.Int("run_id", int64(run.ID)),
		span.String("workload", spec.Workload),
		span.String("config", spec.Config),
		span.String("compressor", spec.Compressor))
	admit := run.root.StartChildAt("admission", t0)
	run.queueSp = run.root.StartChildAt("queue", t0)
	g.next++
	g.runs[run.ID] = run
	g.order = append(g.order, run.ID)
	if g.running < g.cfg.MaxRunning {
		g.startLocked(run)
	} else {
		admit.SetAttrs(span.Bool("queued", true))
		g.queue = append(g.queue, run.ID)
		g.log.Info("run queued", "run_id", run.ID, "trace_id", tracer.TraceID(),
			"workload", spec.Workload, "config", spec.Config, "queue_depth", len(g.queue))
	}
	admit.End()
	g.mu.Unlock()
	return run, nil
}

// newMemoRunLocked registers a run that is born terminal, rebuilt from a
// full memo entry. Every invariant a real run satisfies holds here too:
// the snapshot series, totals, result and profile are the original's
// byte-for-byte; span timestamps reconcile exactly (queue and execute are
// both zero-width at the admission instant, so queue+execute == run to
// the nanosecond). Callers hold g.mu.
func (g *Registry) newMemoRunLocked(spec RunSpec, e *memoEntry) *Run {
	t0 := time.Now()
	tracer := span.New(0)
	tracer.SetOnEnd(g.stages.observe)
	run := &Run{
		ID:          g.next,
		Spec:        spec,
		state:       StateDone,
		created:     t0,
		started:     t0,
		finished:    t0,
		ringCap:     g.cfg.SnapRing,
		changed:     make(chan struct{}),
		tracer:      tracer,
		memoized:    true,
		memoRun:     e.runID,
		memoTrace:   e.traceID,
		snaps:       append([]obs.Snapshot(nil), e.snaps...),
		snapCount:   len(e.snaps),
		snapBase:    e.snapBase,
		snapDropped: e.snapDropped,
		totals:      e.totals,
		result:      e.result,
		attrText:    e.attrText,
		attrColl:    e.attrColl,
	}
	run.root = tracer.StartAt("run", nil, t0,
		span.Int("run_id", int64(run.ID)),
		span.String("workload", spec.Workload),
		span.String("config", spec.Config),
		span.String("compressor", spec.Compressor),
		span.Bool("memoized", true),
		span.Int("memo_source_run", int64(e.runID)))
	admit := run.root.StartChildAt("admission", t0)
	run.queueSp = run.root.StartChildAt("queue", t0)
	run.execSp = run.root.StartChildAt("execute", t0)
	run.execSp.SetAttrs(span.Bool("memoized", true))
	admit.EndAt(t0)
	run.queueSp.EndAt(t0)
	run.execSp.EndAt(t0)
	run.root.EndAt(t0)
	g.next++
	g.runs[run.ID] = run
	g.order = append(g.order, run.ID)
	return run
}

// startLocked dispatches a queued run onto its own goroutine. Callers hold
// g.mu. It reports false if the run was no longer dispatchable (canceled
// while queued).
func (g *Registry) startLocked(run *Run) bool {
	run.mu.Lock()
	if run.state != StateQueued {
		run.mu.Unlock()
		return false
	}
	ctx, cancel := context.WithCancel(context.Background())
	if run.Spec.TimeoutSec > 0 {
		ctx, cancel = context.WithTimeout(context.Background(),
			time.Duration(run.Spec.TimeoutSec*float64(time.Second)))
	}
	started := time.Now()
	run.state = StateRunning
	run.started = started
	run.cancel = cancel
	// The queue span closes and the execute span opens at the same
	// started instant the status JSON reports.
	run.queueSp.EndAt(started)
	run.execSp = run.root.StartChildAt("execute", started)
	run.notifyLocked()
	run.mu.Unlock()

	g.running++
	g.pending.Add(1)
	g.log.Info("run launched", "run_id", run.ID, "trace_id", run.TraceID(),
		"workload", run.Spec.Workload,
		"config", run.Spec.Config, "compressor", run.Spec.Compressor,
		"functional", run.Spec.Functional,
		"interval", run.Spec.Interval, "attr", run.Spec.Attr,
		"timeout_sec", run.Spec.TimeoutSec, "chaos", run.Spec.Chaos != nil)
	g.pool.GoWorker(func(worker int) {
		run.execSp.SetAttrs(span.Int("worker", int64(worker)))
		g.execute(run, ctx, cancel)
	})
	return true
}

// execute runs one simulation job to a terminal state. It owns the
// goroutine: a panic anywhere below (simulator bugs, injected chaos) is
// recovered into StateFailed with the captured stack, never a process
// crash.
func (g *Registry) execute(run *Run, ctx context.Context, cancel context.CancelFunc) {
	start := time.Now()
	defer g.pending.Done()
	defer cancel()
	defer func() {
		if p := recover(); p != nil {
			stack := debug.Stack()
			run.execSp.Event("panic", span.String("value", fmt.Sprint(p)))
			run.failf("panic: %v\n\n%s", p, stack)
			g.mu.Lock()
			g.panics++
			g.mu.Unlock()
			g.log.Error("run panicked; isolated", "run_id", run.ID, "trace_id", run.TraceID(),
				"panic", fmt.Sprint(p), "elapsed", time.Since(start))
		}
		// Every execute path (done, failed, canceled, panicked) is terminal
		// here: ledger the run before its worker slot is released.
		g.recordTerminal(run)
		g.onFinished()
	}()

	spec := run.Spec
	oo := cppcache.ObserveOptions{
		IntervalCycles: spec.Interval,
		Attr:           spec.Attr,
		OnSnapshot:     run.appendSnapshot,
		Span:           run.execSp,
	}
	if spec.Chaos != nil && spec.Chaos.Active() {
		inj := chaos.New(*spec.Chaos, ctx, func() {
			run.setCancelCause("canceled by chaos injection")
			cancel()
		})
		// Fault firings land on the execute span as events, so a panic or
		// stall is attributable to the stage interval it interrupted.
		inj.SetOnFire(func(what string) {
			run.execSp.Event("chaos.fired", span.String("what", what))
		})
		oo.FaultHook = inj.Hook
	}
	res, ob, err := cppcache.RunObservedContext(ctx, spec.Workload, cppcache.CacheConfig(spec.Config),
		cppcache.Options{
			Scale:            spec.Scale,
			HalveMissPenalty: spec.Halved,
			FunctionalOnly:   spec.Functional,
			Compressor:       spec.Compressor,
		}, oo)
	switch {
	case err == nil:
		run.complete(&res, ob)
		g.log.Info("run done", "run_id", run.ID, "trace_id", run.TraceID(),
			"elapsed", time.Since(start),
			"l1_misses", res.L1Misses, "traffic_words", res.MemTrafficWords)
	case errors.Is(err, context.DeadlineExceeded):
		run.failf("run exceeded its %gs deadline", spec.TimeoutSec)
		g.log.Warn("run deadline expired", "run_id", run.ID, "trace_id", run.TraceID(),
			"timeout_sec", spec.TimeoutSec, "elapsed", time.Since(start))
	case errors.Is(err, context.Canceled):
		run.markCanceled()
		g.log.Info("run canceled", "run_id", run.ID, "trace_id", run.TraceID(),
			"cause", run.CancelCause(), "elapsed", time.Since(start))
	default:
		run.fail(err)
		g.log.Error("run failed", "run_id", run.ID, "trace_id", run.TraceID(),
			"err", err, "elapsed", time.Since(start))
	}
}

// onFinished releases the worker slot, dispatches queued work and applies
// the retention policy.
func (g *Registry) onFinished() {
	g.mu.Lock()
	g.running--
	g.scheduleLocked()
	g.evictLocked()
	g.mu.Unlock()
}

// scheduleLocked dispatches queued runs while worker slots are free,
// skipping runs canceled while they waited. Callers hold g.mu.
func (g *Registry) scheduleLocked() {
	for g.running < g.cfg.MaxRunning && len(g.queue) > 0 {
		id := g.queue[0]
		g.queue = g.queue[1:]
		if run, ok := g.runs[id]; ok {
			g.startLocked(run)
		}
	}
}

// evictLocked enforces Config.Retain: beyond it, the oldest terminal runs
// are forgotten (404 afterwards). Running and queued runs are never
// evicted. Callers hold g.mu.
func (g *Registry) evictLocked() {
	terminal := 0
	for _, id := range g.order {
		if g.runs[id] != nil && g.runs[id].State().Terminal() {
			terminal++
		}
	}
	if terminal <= g.cfg.Retain {
		return
	}
	keep := g.order[:0]
	for _, id := range g.order {
		run := g.runs[id]
		if run == nil {
			continue
		}
		if terminal > g.cfg.Retain && run.State().Terminal() {
			terminal--
			g.evicted++
			g.evictedDrops += run.SnapshotsDropped()
			delete(g.runs, id)
			g.log.Info("run evicted", "run_id", id, "trace_id", run.TraceID())
			continue
		}
		keep = append(keep, id)
	}
	g.order = keep
}

// Cancel requests cancellation of a run: a queued run is canceled on the
// spot; a running one is signaled through its context and reaches the
// canceled state as soon as the simulator's cooperative check fires. It
// returns an error if the run is already terminal.
func (g *Registry) Cancel(id int, cause string) error {
	run, ok := g.Get(id)
	if !ok {
		return fmt.Errorf("no run %d", id)
	}
	if cause == "" {
		cause = "canceled"
	}
	run.mu.Lock()
	switch {
	case run.state == StateQueued:
		run.state = StateCanceled
		run.cancelCause = cause
		run.errMsg = cause
		run.finished = time.Now()
		run.endSpansLocked(run.finished)
		run.notifyLocked()
		run.mu.Unlock()
		g.recordTerminal(run)
		g.log.Info("queued run canceled", "run_id", id, "trace_id", run.TraceID(), "cause", cause)
		return nil
	case run.state == StateRunning:
		run.cancelCause = cause
		cancel := run.cancel
		run.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		state := run.state
		run.mu.Unlock()
		return fmt.Errorf("run %d is already %s", id, state)
	}
}

// Get returns the run with the given id.
func (g *Registry) Get(id int) (*Run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	run, ok := g.runs[id]
	return run, ok
}

// Runs returns every retained run in launch order.
func (g *Registry) Runs() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Run, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.runs[id])
	}
	return out
}

// Counters returns the registry's operational counters.
func (g *Registry) Counters() Counters {
	g.mu.Lock()
	c := Counters{
		Running:            g.running,
		QueueDepth:         len(g.queue),
		PanicsRecovered:    g.panics,
		RunsEvicted:        g.evicted,
		RejectedQueueFull:  g.rejectedFull,
		RejectedDraining:   g.rejectedDrain,
		SlowStreamsDropped: g.slowStreams,
		SnapshotsDropped:   g.evictedDrops,
		LedgerErrors:       g.ledgerErrors,
	}
	runs := make([]*Run, 0, len(g.order))
	for _, id := range g.order {
		runs = append(runs, g.runs[id])
	}
	g.mu.Unlock()
	for _, run := range runs {
		c.SnapshotsDropped += run.SnapshotsDropped()
	}
	ms := g.memo.stats()
	c.MemoHits = ms.Hits
	c.MemoMisses = ms.Misses
	c.MemoEntries = ms.Entries
	c.MemoFullEntries = ms.Full
	c.MemoDigestDrift = ms.Drift
	c.MemoEvictions = ms.Evictions
	return c
}

// CountSlowStream records one SSE consumer disconnected for not keeping
// up with its write deadline.
func (g *Registry) CountSlowStream() {
	g.mu.Lock()
	g.slowStreams++
	g.mu.Unlock()
}

// Drain stops accepting new runs, cancels everything still queued, and
// waits for the running jobs. If they have not finished after 80% of the
// timeout, they are force-canceled through their contexts (the simulator's
// cooperative checks make that prompt) and granted the remaining 20%. It
// reports whether everything drained in time.
func (g *Registry) Drain(timeout time.Duration) bool {
	g.mu.Lock()
	g.closed = true
	queued := g.queue
	g.queue = nil
	g.mu.Unlock()
	// Cancel sweeps first: their engines stop feeding new children into
	// the (now closed) admission path and fan cancellation out to in-flight
	// child runs.
	g.sweeps.drain()
	// No further dispatches will be accepted; let the pool workers exit
	// once the already-submitted executions finish.
	g.pool.Close()
	for _, id := range queued {
		if run, ok := g.Get(id); ok {
			run.mu.Lock()
			canceled := false
			if run.state == StateQueued {
				run.state = StateCanceled
				run.cancelCause = "server draining"
				run.errMsg = "server draining"
				run.finished = time.Now()
				run.endSpansLocked(run.finished)
				run.notifyLocked()
				canceled = true
				g.log.Info("queued run canceled", "run_id", id, "trace_id", run.TraceID(),
					"cause", "server draining")
			}
			run.mu.Unlock()
			if canceled {
				g.recordTerminal(run)
			}
		}
	}

	done := make(chan struct{})
	go func() {
		g.pending.Wait()
		close(done)
	}()
	grace := timeout / 5
	select {
	case <-done:
		return true
	case <-time.After(timeout - grace):
	}

	// Cooperative wait expired: cancel the stragglers and give them the
	// remaining grace period to unwind.
	for _, run := range g.Runs() {
		run.mu.Lock()
		var cancel context.CancelFunc
		if run.state == StateRunning {
			if run.cancelCause == "" {
				run.cancelCause = "server draining"
			}
			cancel = run.cancel
		}
		run.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	select {
	case <-done:
		return true
	case <-time.After(grace):
		return false
	}
}

// appendSnapshot publishes one interval delta into the bounded ring. It
// runs on the simulation goroutine (via ObserveOptions.OnSnapshot),
// synchronously with the recorder's own append, so the registry's series
// is always exactly the recorder's series (modulo ring-dropped prefixes,
// which are counted).
func (r *Run) appendSnapshot(s obs.Snapshot) {
	r.mu.Lock()
	if r.snapCount < r.ringCap {
		// Growth phase: the ring has never wrapped, so snapHead is 0 and
		// the slice simply extends toward ringCap.
		r.snaps = append(r.snaps, s)
		r.snapCount++
	} else {
		// Ring full: overwrite the oldest and account the drop.
		r.snaps[r.snapHead] = s
		r.snapHead = (r.snapHead + 1) % len(r.snaps)
		r.snapBase++
		r.snapDropped++
	}
	addSnapshot(&r.totals, s)
	r.notifyLocked()
	r.mu.Unlock()
}

// addSnapshot accumulates one interval delta into a totals block. Counter
// fields sum; the PagesTouched gauge takes the latest sample.
func addSnapshot(t *obs.Snapshot, s obs.Snapshot) {
	t.Cycle = s.Cycle // last snapshot time
	t.Instructions += s.Instructions
	t.L1Accesses += s.L1Accesses
	t.L1Misses += s.L1Misses
	t.L2Accesses += s.L2Accesses
	t.L2Misses += s.L2Misses
	t.MemReadHalves += s.MemReadHalves
	t.MemWriteHalves += s.MemWriteHalves
	t.AffHits += s.AffHits
	t.AffWordsPrefetched += s.AffWordsPrefetched
	t.Promotions += s.Promotions
	t.PfBufHits += s.PfBufHits
	t.PfIssued += s.PfIssued
	t.FillWords += s.FillWords
	t.FillCompWords += s.FillCompWords
	t.ROBOccSum += s.ROBOccSum
	t.ROBOccSamples += s.ROBOccSamples
	t.PagesTouched = s.PagesTouched
}

// endSpansLocked closes the run's lifecycle spans at the terminal
// instant. EndAt is idempotent, so spans already closed on the normal
// path (queue at dispatch) are untouched, while a run canceled straight
// out of the queue closes its queue span here. Callers hold r.mu.
func (r *Run) endSpansLocked(at time.Time) {
	r.queueSp.EndAt(at)
	r.execSp.EndAt(at)
	r.root.EndAt(at)
}

// complete marks the run done and captures its result and profile.
func (r *Run) complete(res *cppcache.Result, ob *cppcache.Observation) {
	r.mu.Lock()
	r.state = StateDone
	r.finished = time.Now()
	r.endSpansLocked(r.finished)
	r.result = res
	r.dropped = ob.TraceDropped()
	if ob.AttrEnabled() {
		r.attrText = ob.AttrText(10)
		r.attrColl = ob.AttrCollapsed()
	}
	r.notifyLocked()
	r.mu.Unlock()
}

// fail marks the run failed.
func (r *Run) fail(err error) {
	r.mu.Lock()
	r.state = StateFailed
	r.finished = time.Now()
	r.endSpansLocked(r.finished)
	r.errMsg = err.Error()
	r.notifyLocked()
	r.mu.Unlock()
}

// failf is fail with a formatted message.
func (r *Run) failf(format string, args ...any) {
	r.fail(fmt.Errorf(format, args...))
}

// markCanceled moves a running run to the canceled terminal state.
func (r *Run) markCanceled() {
	r.mu.Lock()
	r.state = StateCanceled
	r.finished = time.Now()
	r.endSpansLocked(r.finished)
	if r.cancelCause == "" {
		r.cancelCause = "canceled"
	}
	r.errMsg = r.cancelCause
	r.notifyLocked()
	r.mu.Unlock()
}

// setCancelCause records why a cancellation is about to happen.
func (r *Run) setCancelCause(cause string) {
	r.mu.Lock()
	if r.cancelCause == "" {
		r.cancelCause = cause
	}
	r.mu.Unlock()
}

// CancelCause returns the recorded cancellation cause ("" if none).
func (r *Run) CancelCause() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cancelCause
}

// notifyLocked wakes every waiter. Callers hold r.mu.
func (r *Run) notifyLocked() {
	close(r.changed)
	r.changed = make(chan struct{})
}

// Status returns the run's JSON-ready view.
func (r *Run) Status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID:               r.ID,
		TraceID:          r.tracer.TraceID(),
		Spec:             r.Spec,
		State:            r.state,
		Created:          r.created,
		Error:            r.errMsg,
		Intervals:        r.snapBase + r.snapCount,
		SnapshotsDropped: r.snapDropped,
		Totals:           r.totals,
		Result:           r.result,
		Memoized:         r.memoized,
		MemoSourceRun:    r.memoRun,
		MemoSourceTrace:  r.memoTrace,
	}
	if !r.started.IsZero() {
		s := r.started
		st.Started = &s
	}
	if !r.finished.IsZero() {
		f := r.finished
		st.Finished = &f
	}
	return st
}

// State returns the run's lifecycle phase.
func (r *Run) State() RunState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Totals returns the column sums of the published snapshots.
func (r *Run) Totals() obs.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totals
}

// SnapshotsDropped returns how many old snapshots the bounded ring has
// discarded.
func (r *Run) SnapshotsDropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapDropped
}

// Profile returns the attribution outputs ("" when attribution was off or
// the run has not finished).
func (r *Run) Profile() (text, collapsed string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attrText, r.attrColl
}

// SnapsFrom returns a copy of the retained snapshots at ordinal >= i, the
// ordinal of the first returned snapshot (> i exactly when the ring has
// dropped the requested prefix), the current state, and a channel that is
// closed on the next change.
func (r *Run) SnapsFrom(i int) (snaps []obs.Snapshot, from int, state RunState, changed <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	from = i
	if from < r.snapBase {
		from = r.snapBase
	}
	total := r.snapBase + r.snapCount
	if from < total {
		snaps = make([]obs.Snapshot, 0, total-from)
		for ord := from; ord < total; ord++ {
			snaps = append(snaps, r.snaps[(r.snapHead+(ord-r.snapBase))%len(r.snaps)])
		}
	}
	return snaps, from, r.state, r.changed
}
