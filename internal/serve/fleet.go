package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"cppcache/internal/ledger"
)

// recordTerminal builds the ledger record for a run that just reached a
// terminal state, feeds the in-memory fleet rollup, and — when a ledger
// writer is configured — appends it durably. An append failure is counted
// and logged but never propagates into the run's own lifecycle.
func (g *Registry) recordTerminal(run *Run) {
	run.mu.Lock()
	state := run.state
	errMsg := run.errMsg
	created, finished := run.created, run.finished
	res := run.result
	totals := run.totals
	intervals := run.snapBase + run.snapCount
	memoized, memoRun := run.memoized, run.memoRun
	run.mu.Unlock()

	// Per-stage durations for this run alone: the closed lifecycle spans,
	// summed by name. SSE streaming spans are consumer-side, not run
	// anatomy, so they stay out of the record.
	stages := map[string]float64{}
	for _, sp := range run.tracer.Snapshot() {
		if sp.End.IsZero() || strings.HasPrefix(sp.Name, "sse.") {
			continue
		}
		stages[sp.Name] += sp.Duration().Seconds()
	}

	rec := ledger.Record{
		Schema:       ledger.SchemaVersion,
		RunID:        run.ID,
		TraceID:      run.TraceID(),
		Workload:     run.Spec.Workload,
		Config:       run.Spec.Config,
		Compressor:   run.Spec.Compressor,
		Scale:        run.Spec.Scale,
		Functional:   run.Spec.Functional,
		State:        string(state),
		Chaos:        run.Spec.Chaos != nil,
		Memoized:     memoized,
		MemoSource:   memoRun,
		Panic:        strings.HasPrefix(errMsg, "panic:"),
		Error:        firstLine(errMsg),
		Created:      created,
		Finished:     finished,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		StageSeconds: stages,
		Intervals:    intervals,
		Instructions: totals.Instructions,
		L1Misses:     totals.L1Misses,
		TrafficWords: totals.TrafficWords(),
	}
	if h, err := ledger.SpecHash(run.Spec); err == nil {
		rec.SpecHash = h
	}
	if res != nil {
		if d, err := ledger.ResultDigest(res); err == nil {
			rec.ResultDigest = d
		}
	}

	// A real, fault-free completion enters (or refreshes) the memo store;
	// memoized runs never do — the chain always points at an execution.
	// Digest drift against a prior entry for the same spec hash is a
	// determinism violation worth shouting about.
	if g.memo != nil && state == StateDone && !memoized && run.Spec.Chaos == nil &&
		res != nil && rec.ResultDigest != "" && rec.SpecHash != "" {
		snaps, from, _, _ := run.SnapsFrom(0)
		attrText, attrColl := run.Profile()
		drift := g.memo.store(&memoEntry{
			specHash:    rec.SpecHash,
			runID:       run.ID,
			traceID:     rec.TraceID,
			digest:      rec.ResultDigest,
			full:        true,
			totals:      totals,
			snaps:       snaps,
			snapBase:    from,
			snapDropped: run.SnapshotsDropped(),
			result:      res,
			attrText:    attrText,
			attrColl:    attrColl,
		})
		if drift {
			g.log.Error("memo digest drift: same spec hash produced a different result digest",
				"run_id", run.ID, "trace_id", rec.TraceID, "spec_hash", rec.SpecHash,
				"digest", rec.ResultDigest)
		}
	}

	g.fleet.Add(rec)
	if g.cfg.Ledger != nil {
		if err := g.cfg.Ledger.Append(rec); err != nil {
			g.mu.Lock()
			g.ledgerErrors++
			g.mu.Unlock()
			g.log.Error("ledger append failed", "run_id", run.ID,
				"trace_id", rec.TraceID, "err", err)
		}
	}
}

// firstLine truncates an error message to its first line, capped, so a
// recovered panic's stack trace does not bloat every ledger record.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	const maxLen = 200
	if len(s) > maxLen {
		s = s[:maxLen]
	}
	return s
}

// SeedFleet loads replayed ledger records into the fleet rollup
// (cppserved calls it at boot so /fleet spans server restarts) and
// warm-starts the memo index: every replayed fault-free done record
// seeds an index-only entry so post-boot re-executions are digest-checked
// against the ledgered result (and promoted to full, servable entries).
func (g *Registry) SeedFleet(recs []ledger.Record) {
	g.fleet.AddAll(recs)
	if g.memo != nil {
		n := g.memo.seed(recs)
		if n > 0 {
			g.log.Info("memo index warm-started from ledger", "entries", n)
		}
	}
}

// FleetRecords returns the fleet's records (tests and diff tooling).
func (g *Registry) FleetRecords() []ledger.Record { return g.fleet.Records() }

// FleetAggregate aggregates the fleet rollup (see ledger.Rollup.Aggregate).
func (g *Registry) FleetAggregate(f ledger.Filter, dims ...string) (*ledger.Aggregate, error) {
	return g.fleet.Aggregate(f, dims...)
}

// LedgerPath returns the configured ledger file ("" when persistence is
// off); surfaces in cppserved_build_info.
func (g *Registry) LedgerPath() string { return g.cfg.Ledger.Path() }

// Role returns this process's fabric role ("single", "coordinator" or
// "worker"); surfaces in cppserved_build_info.
func (g *Registry) Role() string { return g.cfg.Role }

// fleetFilterFromQuery parses the /fleet query parameters: label filters
// (workload, config, compressor, state), an absolute time window (since,
// until, RFC3339) or a relative one (window, Go duration ending now).
func fleetFilterFromQuery(r *http.Request) (ledger.Filter, error) {
	q := r.URL.Query()
	f := ledger.Filter{
		Workload:   q.Get("workload"),
		Config:     q.Get("config"),
		Compressor: q.Get("compressor"),
		State:      q.Get("state"),
	}
	if f.State != "" && !knownState(f.State) {
		return f, fmt.Errorf("unknown state %q (known: %s)", f.State, strings.Join(stateNames(), ", "))
	}
	if v := q.Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return f, fmt.Errorf("bad since %q: %v", v, err)
		}
		f.Since = t
	}
	if v := q.Get("until"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return f, fmt.Errorf("bad until %q: %v", v, err)
		}
		f.Until = t
	}
	if v := q.Get("window"); v != "" {
		if !f.Since.IsZero() || !f.Until.IsZero() {
			return f, fmt.Errorf("window is exclusive with since/until")
		}
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return f, fmt.Errorf("bad window %q (want a positive Go duration like 1h)", v)
		}
		f.Since = time.Now().Add(-d)
	}
	return f, nil
}

// knownState reports whether s names a lifecycle state.
func knownState(s string) bool {
	for _, st := range States() {
		if string(st) == s {
			return true
		}
	}
	return false
}

// stateNames lists the lifecycle states as strings.
func stateNames() []string {
	out := make([]string, 0, len(States()))
	for _, st := range States() {
		out = append(out, string(st))
	}
	return out
}

// handleFleet is GET /fleet: the full-dimension fleet aggregation
// (workload x config x compressor x state) with optional filters.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	f, err := fleetFilterFromQuery(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	agg, err := s.reg.FleetAggregate(f)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, agg)
}

// handleFleetDim is GET /fleet/{dimension}: the fleet collapsed onto one
// grouping axis (workload, config, compressor or state).
func (s *Server) handleFleetDim(w http.ResponseWriter, r *http.Request) {
	dim := r.PathValue("dimension")
	if !ledger.KnownDimension(dim) {
		jsonError(w, http.StatusBadRequest,
			"unknown dimension %q (known: %s)", dim, strings.Join(ledger.Dimensions, ", "))
		return
	}
	f, err := fleetFilterFromQuery(r)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	agg, err := s.reg.FleetAggregate(f, dim)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, agg)
}

// writeFleetMetrics renders the cppserved_fleet_* families from the full
// fleet aggregate: per-group run counts, summed counters and per-stage
// duration sums/counts. Labels are escaped like every other family; the
// JSON /fleet view carries the exemplar trace IDs Prometheus text
// exposition cannot.
func writeFleetMetrics(w *strings.Builder, agg *ledger.Aggregate) {
	label := func(g *ledger.Group) string {
		return fmt.Sprintf(`workload="%s",config="%s",compressor="%s",state="%s"`,
			escapeLabel(g.Workload), escapeLabel(g.Config),
			escapeLabel(g.Compressor), escapeLabel(g.State))
	}
	fmt.Fprintf(w, "# HELP cppserved_fleet_runs_total Terminal runs recorded in the fleet ledger rollup.\n# TYPE cppserved_fleet_runs_total counter\n")
	for _, g := range agg.Groups {
		fmt.Fprintf(w, "cppserved_fleet_runs_total{%s} %d\n", label(g), g.Runs)
	}
	fmt.Fprintf(w, "# HELP cppserved_fleet_instructions_total Instructions retired, summed over the group's terminal runs.\n# TYPE cppserved_fleet_instructions_total counter\n")
	for _, g := range agg.Groups {
		fmt.Fprintf(w, "cppserved_fleet_instructions_total{%s} %d\n", label(g), g.Instructions)
	}
	fmt.Fprintf(w, "# HELP cppserved_fleet_l1_misses_total L1 misses, summed over the group's terminal runs.\n# TYPE cppserved_fleet_l1_misses_total counter\n")
	for _, g := range agg.Groups {
		fmt.Fprintf(w, "cppserved_fleet_l1_misses_total{%s} %d\n", label(g), g.L1Misses)
	}
	fmt.Fprintf(w, "# HELP cppserved_fleet_traffic_words_total Off-chip traffic words, summed over the group's terminal runs.\n# TYPE cppserved_fleet_traffic_words_total counter\n")
	for _, g := range agg.Groups {
		fmt.Fprintf(w, "cppserved_fleet_traffic_words_total{%s} %v\n", label(g), g.TrafficWords)
	}
	fmt.Fprintf(w, "# HELP cppserved_fleet_panics_total Recovered panics, summed over the group's terminal runs.\n# TYPE cppserved_fleet_panics_total counter\n")
	for _, g := range agg.Groups {
		fmt.Fprintf(w, "cppserved_fleet_panics_total{%s} %d\n", label(g), g.Panics)
	}
	fmt.Fprintf(w, "# HELP cppserved_fleet_stage_seconds_sum Wall-clock seconds per lifecycle stage, summed over the group's terminal runs.\n# TYPE cppserved_fleet_stage_seconds_sum counter\n")
	fmt.Fprintf(w, "# HELP cppserved_fleet_stage_seconds_count Runs contributing to cppserved_fleet_stage_seconds_sum.\n# TYPE cppserved_fleet_stage_seconds_count counter\n")
	for _, g := range agg.Groups {
		stages := make([]string, 0, len(g.Stages))
		for st := range g.Stages {
			stages = append(stages, st)
		}
		sort.Strings(stages)
		for _, st := range stages {
			fmt.Fprintf(w, "cppserved_fleet_stage_seconds_sum{%s,stage=\"%s\"} %v\n",
				label(g), escapeLabel(st), g.Stages[st].SumSeconds)
			fmt.Fprintf(w, "cppserved_fleet_stage_seconds_count{%s,stage=\"%s\"} %d\n",
				label(g), escapeLabel(st), g.Stages[st].Count)
		}
	}
}
