package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzRunSpecDecode feeds arbitrary bytes through the exact decode +
// validate path POST /runs uses: whatever arrives, the server must not
// panic, and any spec that survives normalization must respect every
// admission bound.
func FuzzRunSpecDecode(f *testing.F) {
	f.Add([]byte(`{"workload":"treeadd","config":"CPP","functional":true}`))
	f.Add([]byte(`{"workload":"mst","scale":4096,"interval":1,"timeout_sec":3600}`))
	f.Add([]byte(`{"workload":"em3d","chaos":{"seed":7,"panic_after":100}}`))
	f.Add([]byte(`{"workload":"health","chaos":{"stall_after":1,"stall_ms":60000}}`))
	f.Add([]byte(`{"workload":"treeadd","timeout_sec":-1e308}`))
	f.Add([]byte(`{"workload":"","config":""}`))
	f.Add([]byte(`{"scale":-9223372036854775808}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))

	reg := NewRegistryWith(Config{AllowChaos: true}, nil)
	f.Fuzz(func(t *testing.T, body []byte) {
		var spec RunSpec
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return
		}
		norm, err := reg.normalize(spec)
		if err != nil {
			if !strings.Contains(err.Error(), ":") {
				t.Errorf("spec error %q lacks a field prefix", err)
			}
			return
		}
		if norm.Workload == "" || norm.Config == "" {
			t.Errorf("normalized spec lost workload/config: %+v", norm)
		}
		if norm.Scale < 0 || norm.Scale > MaxScale {
			t.Errorf("scale %d escaped bounds", norm.Scale)
		}
		if norm.Interval <= 0 || norm.Interval > MaxInterval {
			t.Errorf("interval %d escaped bounds", norm.Interval)
		}
		if norm.TimeoutSec < 0 || norm.TimeoutSec > MaxTimeoutSec {
			t.Errorf("timeout_sec %g escaped bounds", norm.TimeoutSec)
		}
		if norm.Chaos != nil {
			if err := norm.Chaos.Validate(); err != nil {
				t.Errorf("invalid chaos spec admitted: %v", err)
			}
		}
	})
}
