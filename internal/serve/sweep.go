package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cppcache"
	"cppcache/internal/backoff"
	"cppcache/internal/fabric"
	"cppcache/internal/ledger"
)

// SweepSpec is the POST /sweeps body: a cross-product of run parameters
// expanded into deduplicated child runs. Workloads and configs are
// required; compressors default to the scheme default ("") and scales to
// the workload default (0).
type SweepSpec struct {
	Workloads   []string `json:"workloads"`
	Configs     []string `json:"configs"`
	Compressors []string `json:"compressors,omitempty"`
	Scales      []int    `json:"scales,omitempty"`
	// Functional, Interval and TimeoutSec apply to every child run.
	Functional bool    `json:"functional,omitempty"`
	Interval   int64   `json:"interval,omitempty"`
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// MaxSweepProduct bounds the raw cross-product size of one sweep; larger
// products are a structured 400, never a half-admitted batch.
const MaxSweepProduct = 512

// DefaultSweepRetain bounds retained terminal sweeps when
// Config.SweepRetain is 0.
const DefaultSweepRetain = 32

// Sweep lifecycle states. A sweep is running from admission until every
// child is terminal; it ends done (possibly degraded) or canceled.
const (
	SweepRunning  = "running"
	SweepDone     = "done"
	SweepCanceled = "canceled"
)

// sweepChild is one deduplicated cell of the cross-product.
type sweepChild struct {
	Spec     RunSpec  `json:"spec"`
	SpecHash string   `json:"spec_hash"`
	State    RunState `json:"state"`
	RunID    int      `json:"run_id,omitempty"`
	TraceID  string   `json:"trace_id,omitempty"`
	Worker   string   `json:"worker,omitempty"`
	Attempts int      `json:"attempts,omitempty"`
	Memoized bool     `json:"memoized,omitempty"`
	Digest   string   `json:"result_digest,omitempty"`
	Error    string   `json:"error,omitempty"`

	result *cppcache.Result // deterministic columns for the table
}

// skippedCombo is a cross-product cell that failed spec validation
// (e.g. a compressor incompatible with a config). Skips are reported, not
// fatal: the sweep runs the valid remainder.
type skippedCombo struct {
	Workload   string `json:"workload"`
	Config     string `json:"config"`
	Compressor string `json:"compressor,omitempty"`
	Scale      int    `json:"scale,omitempty"`
	Reason     string `json:"reason"`
}

// Sweep is one admitted batch. All mutable state is guarded by mu;
// changed is closed and replaced on every mutation (SSE progress waits
// on it, exactly like Run.changed).
type Sweep struct {
	ID   int       `json:"id"`
	Spec SweepSpec `json:"spec"`

	mu       sync.Mutex
	state    string
	created  time.Time
	finished time.Time
	children []*sweepChild
	skipped  []skippedCombo
	deduped  int // cross-product cells collapsed into an earlier child
	degraded bool
	cancel   context.CancelFunc
	changed  chan struct{}
}

// SweepStatus is the JSON shape served for one sweep.
type SweepStatus struct {
	ID       int            `json:"id"`
	Spec     SweepSpec      `json:"spec"`
	State    string         `json:"state"`
	Created  time.Time      `json:"created"`
	Finished *time.Time     `json:"finished,omitempty"`
	Degraded bool           `json:"degraded,omitempty"`
	Total    int            `json:"total"`
	Counts   map[string]int `json:"counts"`
	Memoized int            `json:"memoized"`
	Deduped  int            `json:"deduped,omitempty"`
	Skipped  []skippedCombo `json:"skipped,omitempty"`
	Children []sweepChild   `json:"children"`
}

// Status returns the sweep's JSON-ready view.
func (sw *Sweep) Status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := SweepStatus{
		ID:       sw.ID,
		Spec:     sw.Spec,
		State:    sw.state,
		Created:  sw.created,
		Degraded: sw.degraded,
		Total:    len(sw.children),
		Counts:   map[string]int{},
		Deduped:  sw.deduped,
		Skipped:  append([]skippedCombo(nil), sw.skipped...),
	}
	if !sw.finished.IsZero() {
		f := sw.finished
		st.Finished = &f
	}
	for _, ch := range sw.children {
		st.Counts[string(ch.State)]++
		if ch.Memoized {
			st.Memoized++
		}
		st.Children = append(st.Children, *ch)
	}
	return st
}

// progress is the compact rollup pushed on the sweep SSE stream.
func (sw *Sweep) progress() (terminal int, data []byte) {
	st := sw.Status()
	terminal = st.Counts[string(StateDone)] + st.Counts[string(StateFailed)] +
		st.Counts[string(StateCanceled)]
	p := map[string]any{
		"sweep_id": st.ID,
		"state":    st.State,
		"total":    st.Total,
		"counts":   st.Counts,
		"memoized": st.Memoized,
		"degraded": st.Degraded,
	}
	data, _ = json.Marshal(p)
	return terminal, data
}

// wait returns the sweep's state and a channel closed on the next change.
func (sw *Sweep) wait() (state string, changed <-chan struct{}) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state, sw.changed
}

// terminal reports whether the sweep has finished.
func (sw *Sweep) terminal() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state != SweepRunning
}

func (sw *Sweep) notifyLocked() {
	close(sw.changed)
	sw.changed = make(chan struct{})
}

// Table renders the sweep's deterministic aggregate table: one TSV row
// per child, sorted by (workload, config, compressor, scale), carrying
// only deterministic columns (spec tuple, state, result digest, counter
// totals). No timestamps, no run IDs, no worker names — so the table of a
// sweep that survived a worker kill is byte-identical to a no-failure
// control run of the same sweep. That comparison is the CI sweep-smoke's
// core assertion.
func (sw *Sweep) Table() string {
	sw.mu.Lock()
	children := make([]*sweepChild, len(sw.children))
	copy(children, sw.children)
	sw.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		a, b := children[i].Spec, children[j].Spec
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Compressor != b.Compressor {
			return a.Compressor < b.Compressor
		}
		return a.Scale < b.Scale
	})
	var b strings.Builder
	b.WriteString("workload\tconfig\tcompressor\tscale\tstate\tresult_digest\tcycles\tinstructions\tl1_misses\tl2_misses\ttraffic_words\n")
	for _, ch := range children {
		var cycles, insts, l1m, l2m int64
		var traffic float64
		if ch.result != nil {
			cycles, insts = ch.result.Cycles, ch.result.Instructions
			l1m, l2m = ch.result.L1Misses, ch.result.L2Misses
			traffic = ch.result.MemTrafficWords
		}
		fmt.Fprintf(&b, "%s\t%s\t%s\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%g\n",
			ch.Spec.Workload, ch.Spec.Config, ch.Spec.Compressor, ch.Spec.Scale,
			ch.State, ch.Digest, cycles, insts, l1m, l2m, traffic)
	}
	return b.String()
}

// sweepSet owns every sweep: registration, retention, lookup, drain.
type sweepSet struct {
	g *Registry

	mu     sync.Mutex
	sweeps map[int]*Sweep
	order  []int
	next   int
	closed bool
}

func newSweepSet(g *Registry) *sweepSet {
	return &sweepSet{g: g, sweeps: make(map[int]*Sweep), next: 1}
}

// get returns the sweep with the given id.
func (ss *sweepSet) get(id int) (*Sweep, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	sw, ok := ss.sweeps[id]
	return sw, ok
}

// all returns every retained sweep in admission order.
func (ss *sweepSet) all() []*Sweep {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]*Sweep, 0, len(ss.order))
	for _, id := range ss.order {
		out = append(out, ss.sweeps[id])
	}
	return out
}

// register admits a sweep and applies retention (oldest terminal sweeps
// beyond the bound are forgotten).
func (ss *sweepSet) register(sw *Sweep) error {
	retain := ss.g.cfg.SweepRetain
	if retain <= 0 {
		retain = DefaultSweepRetain
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return ErrDraining
	}
	sw.ID = ss.next
	ss.next++
	ss.sweeps[sw.ID] = sw
	ss.order = append(ss.order, sw.ID)
	terminal := 0
	for _, id := range ss.order {
		if ss.sweeps[id].terminal() {
			terminal++
		}
	}
	if terminal > retain {
		keep := ss.order[:0]
		for _, id := range ss.order {
			if terminal > retain && ss.sweeps[id].terminal() {
				terminal--
				delete(ss.sweeps, id)
				continue
			}
			keep = append(keep, id)
		}
		ss.order = keep
	}
	return nil
}

// drain stops admitting sweeps and cancels every running one.
func (ss *sweepSet) drain() {
	ss.mu.Lock()
	ss.closed = true
	sweeps := make([]*Sweep, 0, len(ss.order))
	for _, id := range ss.order {
		sweeps = append(sweeps, ss.sweeps[id])
	}
	ss.mu.Unlock()
	for _, sw := range sweeps {
		sw.requestCancel()
	}
}

// requestCancel cancels the sweep's context (idempotent); children react
// through their own cancellation paths.
func (sw *Sweep) requestCancel() {
	sw.mu.Lock()
	cancel := sw.cancel
	canceling := sw.state == SweepRunning
	sw.mu.Unlock()
	if canceling && cancel != nil {
		cancel()
	}
}

// expandSweep turns the cross-product into deduplicated, normalized child
// specs. Invalid cells are recorded as skips; a bound violation or an
// all-invalid product is a *SpecError (HTTP 400).
func (g *Registry) expandSweep(spec SweepSpec) (children []*sweepChild, skipped []skippedCombo, deduped int, err error) {
	if len(spec.Workloads) == 0 {
		return nil, nil, 0, specErrorf("workloads", "at least one workload is required")
	}
	if len(spec.Configs) == 0 {
		return nil, nil, 0, specErrorf("configs", "at least one config is required")
	}
	compressors := spec.Compressors
	if len(compressors) == 0 {
		compressors = []string{""}
	}
	scales := spec.Scales
	if len(scales) == 0 {
		scales = []int{0}
	}
	product := len(spec.Workloads) * len(spec.Configs) * len(compressors) * len(scales)
	if product > MaxSweepProduct {
		return nil, nil, 0, specErrorf("product",
			"cross-product of %d workloads x %d configs x %d compressors x %d scales is %d runs, exceeding the %d bound",
			len(spec.Workloads), len(spec.Configs), len(compressors), len(scales),
			product, MaxSweepProduct)
	}

	seen := map[string]bool{}
	for _, wl := range spec.Workloads {
		for _, cfg := range spec.Configs {
			for _, comp := range compressors {
				for _, scale := range scales {
					rs := RunSpec{
						Workload: wl, Config: cfg, Compressor: comp, Scale: scale,
						Functional: spec.Functional, Interval: spec.Interval,
						TimeoutSec: spec.TimeoutSec,
					}
					norm, nerr := g.normalize(rs)
					if nerr != nil {
						skipped = append(skipped, skippedCombo{
							Workload: wl, Config: cfg, Compressor: comp, Scale: scale,
							Reason: nerr.Error(),
						})
						continue
					}
					hash, herr := ledger.SpecHash(norm)
					if herr != nil {
						skipped = append(skipped, skippedCombo{
							Workload: wl, Config: cfg, Compressor: comp, Scale: scale,
							Reason: fmt.Sprintf("spec hash: %v", herr),
						})
						continue
					}
					if seen[hash] {
						deduped++
						continue
					}
					seen[hash] = true
					children = append(children, &sweepChild{
						Spec: norm, SpecHash: hash, State: StateQueued,
					})
				}
			}
		}
	}
	if len(children) == 0 {
		reason := "no combinations supplied"
		if len(skipped) > 0 {
			reason = fmt.Sprintf("every combination was invalid; first: %s", skipped[0].Reason)
		}
		return nil, nil, 0, specErrorf("spec", "%s", reason)
	}
	return children, skipped, deduped, nil
}

// LaunchSweep expands, validates and admits a sweep, then executes it on
// a background engine goroutine. Children run with bounded concurrency —
// locally through the registry's own admission control (with jittered
// backoff on queue-full), or via the fabric coordinator when one is
// configured. A child failure degrades the sweep; it never aborts it.
func (g *Registry) LaunchSweep(spec SweepSpec) (*Sweep, error) {
	children, skipped, deduped, err := g.expandSweep(spec)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	if g.closed {
		g.rejectedDrain++
		g.mu.Unlock()
		return nil, ErrDraining
	}
	g.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	sw := &Sweep{
		Spec:     spec,
		state:    SweepRunning,
		created:  time.Now(),
		children: children,
		skipped:  skipped,
		deduped:  deduped,
		cancel:   cancel,
		changed:  make(chan struct{}),
	}
	if err := g.sweeps.register(sw); err != nil {
		cancel()
		return nil, err
	}
	g.log.Info("sweep launched", "sweep_id", sw.ID, "children", len(children),
		"skipped", len(skipped), "deduped", deduped, "fabric", g.fab != nil)
	go g.runSweep(sw, ctx)
	return sw, nil
}

// sweepConcurrency is how many children execute at once: the local pool
// width, or twice the worker count when a fabric is placed in front (each
// worker has its own pool; modest oversubscription keeps their queues
// fed).
func (g *Registry) sweepConcurrency() int {
	if g.fab != nil {
		if n := 2 * g.fab.WorkerCount(); n > 0 {
			return n
		}
	}
	return g.cfg.MaxRunning
}

// runSweep drives every child to a terminal state, then finalises the
// sweep: done when all children ended, degraded if any failed or were
// canceled, canceled when cancellation was requested before completion.
func (g *Registry) runSweep(sw *Sweep, ctx context.Context) {
	sem := make(chan struct{}, g.sweepConcurrency())
	var wg sync.WaitGroup
	for i := range sw.children {
		wg.Add(1)
		go func(ch *sweepChild, idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if g.fab != nil {
				g.runSweepChildFabric(ctx, sw, ch, idx)
			} else {
				g.runSweepChildLocal(ctx, sw, ch, idx)
			}
		}(sw.children[i], i)
	}
	wg.Wait()

	sw.mu.Lock()
	canceled := ctx.Err() != nil
	allCanceled := true
	for _, ch := range sw.children {
		if ch.State == StateFailed || ch.State == StateCanceled {
			sw.degraded = true
		}
		if ch.State != StateCanceled {
			allCanceled = false
		}
	}
	if canceled && allCanceled {
		sw.state = SweepCanceled
	} else {
		sw.state = SweepDone
	}
	sw.finished = time.Now()
	state, degraded := sw.state, sw.degraded
	sw.notifyLocked()
	sw.mu.Unlock()
	g.log.Info("sweep finished", "sweep_id", sw.ID, "state", state, "degraded", degraded)
}

// updateChild applies fn to the child under the sweep lock and notifies
// progress waiters.
func (sw *Sweep) updateChild(ch *sweepChild, fn func(*sweepChild)) {
	sw.mu.Lock()
	fn(ch)
	sw.notifyLocked()
	sw.mu.Unlock()
}

// runSweepChildLocal executes one child through the local registry:
// launch (retrying queue-full with jittered backoff), then follow the run
// to its terminal state. Cancellation fans out to the child run.
func (g *Registry) runSweepChildLocal(ctx context.Context, sw *Sweep, ch *sweepChild, idx int) {
	bo := backoff.New(backoff.Policy{}, int64(sw.ID)<<16|int64(idx))
	var run *Run
	for {
		if ctx.Err() != nil {
			sw.updateChild(ch, func(c *sweepChild) {
				c.State = StateCanceled
				c.Error = "sweep canceled"
			})
			return
		}
		var err error
		run, err = g.Launch(ch.Spec)
		if err == nil {
			break
		}
		if errors.Is(err, ErrQueueFull) {
			select {
			case <-time.After(bo.Next()):
				continue
			case <-ctx.Done():
				continue // loop observes ctx.Err and finishes as canceled
			}
		}
		// Draining or an internal error: the child fails, the sweep
		// degrades, the rest of the batch continues.
		sw.updateChild(ch, func(c *sweepChild) {
			c.State = StateFailed
			c.Error = err.Error()
		})
		return
	}

	sw.updateChild(ch, func(c *sweepChild) {
		c.State = StateRunning
		c.RunID = run.ID
		c.TraceID = run.TraceID()
		c.Attempts = 1
	})

	for {
		_, _, state, changed := run.SnapsFrom(0)
		if state.Terminal() {
			break
		}
		select {
		case <-changed:
		case <-ctx.Done():
			// Fan-out cancellation: best-effort cancel, then keep waiting —
			// the run WILL reach a terminal state (cancellation is
			// cooperative but prompt).
			g.Cancel(run.ID, fmt.Sprintf("sweep %d canceled", sw.ID))
			select {
			case <-changed:
			case <-time.After(50 * time.Millisecond):
			}
		}
	}

	st := run.Status()
	var digest string
	if st.Result != nil {
		digest, _ = ledger.ResultDigest(st.Result)
	}
	sw.updateChild(ch, func(c *sweepChild) {
		c.State = st.State
		c.Memoized = st.Memoized
		c.Digest = digest
		c.Error = st.Error
		c.result = st.Result
	})
}

// runSweepChildFabric executes one child through the coordinator: the
// fabric places the spec hash on a worker, retries on loss, and returns
// the terminal outcome.
func (g *Registry) runSweepChildFabric(ctx context.Context, sw *Sweep, ch *sweepChild, idx int) {
	specJSON, err := json.Marshal(ch.Spec)
	if err != nil {
		sw.updateChild(ch, func(c *sweepChild) {
			c.State = StateFailed
			c.Error = fmt.Sprintf("marshal spec: %v", err)
		})
		return
	}
	sw.updateChild(ch, func(c *sweepChild) { c.State = StateRunning })

	out, err := g.fab.Execute(ctx, ch.SpecHash, specJSON)
	if err != nil {
		state := StateFailed
		if ctx.Err() != nil {
			state = StateCanceled
		}
		sw.updateChild(ch, func(c *sweepChild) {
			c.State = state
			c.Error = err.Error()
			c.Worker = out.Worker
			c.Attempts = out.Attempts
		})
		return
	}

	var digest string
	var res *cppcache.Result
	if len(out.Result) > 0 {
		// Digesting the raw JSON equals digesting the struct: Canonical
		// re-parses and re-marshals with sorted keys either way (the
		// equivalence is pinned by a ledger unit test). So a worker's digest
		// is comparable against the local ledger without re-execution.
		digest, _ = ledger.ResultDigest(out.Result)
		res = new(cppcache.Result)
		if uerr := json.Unmarshal(out.Result, res); uerr != nil {
			res = nil
		}
	}
	sw.updateChild(ch, func(c *sweepChild) {
		c.State = RunState(out.State)
		c.RunID = out.RunID
		c.TraceID = out.TraceID
		c.Worker = out.Worker
		c.Attempts = out.Attempts
		c.Memoized = out.Memoized
		c.Digest = digest
		c.Error = out.Error
		c.result = res
	})
}

// Sweeps returns every retained sweep in admission order.
func (g *Registry) Sweeps() []*Sweep { return g.sweeps.all() }

// GetSweep returns the sweep with the given id.
func (g *Registry) GetSweep(id int) (*Sweep, bool) { return g.sweeps.get(id) }

// CancelSweep requests fan-out cancellation of a running sweep.
func (g *Registry) CancelSweep(id int) error {
	sw, ok := g.sweeps.get(id)
	if !ok {
		return fmt.Errorf("no sweep %d", id)
	}
	if sw.terminal() {
		sw.mu.Lock()
		state := sw.state
		sw.mu.Unlock()
		return fmt.Errorf("sweep %d is already %s", id, state)
	}
	sw.requestCancel()
	return nil
}

// Fabric returns the configured coordinator (nil when single-node).
func (g *Registry) Fabric() *fabric.Coordinator { return g.fab }
