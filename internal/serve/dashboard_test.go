package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDashboardPage: the observatory page is one self-contained HTML
// document — correct content type, no external asset references, and the
// hooks the live layer depends on (SSE endpoint, table bodies, trace
// links) all present.
func TestDashboardPage(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, needle := range []string{
		"<!DOCTYPE html>",
		"cppcache observatory",
		"/dashboard/stream",
		`id="fleet"`,
		`id="runs"`,
		"EventSource",
		"prefers-color-scheme: dark",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("dashboard missing %q", needle)
		}
	}
	for _, banned := range []string{"<script src=", "<link ", "https://", "@import"} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard references an external asset: found %q", banned)
		}
	}
}

// TestDashboardStream: the SSE sample feed emits well-formed periodic
// samples whose state counts cover every lifecycle state and whose
// cumulative sums reflect completed work.
func TestDashboardStream(t *testing.T) {
	reg := NewRegistry(nil)
	srv := NewServer(reg, nil)
	srv.DashboardSampleInterval = 5 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1}`)
	final := waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/dashboard/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	type sample struct {
		T            time.Time      `json:"t"`
		States       map[string]int `json:"states"`
		Running      int            `json:"running"`
		QueueDepth   int            `json:"queue_depth"`
		Instructions int64          `json:"instructions"`
		FleetRuns    int            `json:"fleet_runs"`
	}
	sc := bufio.NewScanner(resp.Body)
	var samples []sample
	for sc.Scan() && len(samples) < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var sm sample
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sm); err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		samples = append(samples, sm)
	}
	if len(samples) < 3 {
		t.Fatalf("got %d samples, want 3 (scan err %v)", len(samples), sc.Err())
	}
	for i, sm := range samples {
		if sm.T.IsZero() {
			t.Errorf("sample %d has zero timestamp", i)
		}
		for _, st := range States() {
			if _, ok := sm.States[string(st)]; !ok {
				t.Errorf("sample %d missing state %q", i, st)
			}
		}
		if sm.States["done"] != 1 || sm.FleetRuns != 1 {
			t.Errorf("sample %d: done=%d fleet_runs=%d, want 1/1", i, sm.States["done"], sm.FleetRuns)
		}
		if sm.Instructions != final.Totals.Instructions {
			t.Errorf("sample %d instructions = %d, want %d", i, sm.Instructions, final.Totals.Instructions)
		}
	}
}
