package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDashboardPage: the observatory page is one self-contained HTML
// document — correct content type, no external asset references, and the
// hooks the live layer depends on (SSE endpoint, table bodies, trace
// links) all present.
func TestDashboardPage(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, needle := range []string{
		"<!DOCTYPE html>",
		"cppcache observatory",
		"/dashboard/stream",
		`id="fleet"`,
		`id="runs"`,
		"EventSource",
		"prefers-color-scheme: dark",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("dashboard missing %q", needle)
		}
	}
	for _, banned := range []string{"<script src=", "<link ", "https://", "@import"} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard references an external asset: found %q", banned)
		}
	}
}

// TestDashboardStream: the SSE sample feed emits well-formed periodic
// samples whose state counts cover every lifecycle state and whose
// cumulative sums reflect completed work.
func TestDashboardStream(t *testing.T) {
	reg := NewRegistry(nil)
	srv := NewServer(reg, nil)
	srv.DashboardSampleInterval = 5 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1}`)
	final := waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/dashboard/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	type sample struct {
		T            time.Time      `json:"t"`
		States       map[string]int `json:"states"`
		Running      int            `json:"running"`
		QueueDepth   int            `json:"queue_depth"`
		Instructions int64          `json:"instructions"`
		FleetRuns    int            `json:"fleet_runs"`
	}
	sc := bufio.NewScanner(resp.Body)
	var samples []sample
	for sc.Scan() && len(samples) < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var sm sample
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sm); err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		samples = append(samples, sm)
	}
	if len(samples) < 3 {
		t.Fatalf("got %d samples, want 3 (scan err %v)", len(samples), sc.Err())
	}
	for i, sm := range samples {
		if sm.T.IsZero() {
			t.Errorf("sample %d has zero timestamp", i)
		}
		for _, st := range States() {
			if _, ok := sm.States[string(st)]; !ok {
				t.Errorf("sample %d missing state %q", i, st)
			}
		}
		if sm.States["done"] != 1 || sm.FleetRuns != 1 {
			t.Errorf("sample %d: done=%d fleet_runs=%d, want 1/1", i, sm.States["done"], sm.FleetRuns)
		}
		if sm.Instructions != final.Totals.Instructions {
			t.Errorf("sample %d instructions = %d, want %d", i, sm.Instructions, final.Totals.Instructions)
		}
	}
}

// dashStream opens /dashboard/stream, optionally resuming with a
// Last-Event-ID header.
func dashStream(t *testing.T, ts *httptest.Server, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/dashboard/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// dashEvent is one parsed SSE frame from the dashboard stream.
type dashEvent struct {
	id    int // -1 when the frame carried no id line (gap events)
	event string
	data  string
}

// readDashEvents consumes SSE frames until stop returns true (the frame
// that satisfied stop is included) or the scanner ends.
func readDashEvents(t *testing.T, resp *http.Response, stop func(dashEvent) bool) []dashEvent {
	t.Helper()
	var events []dashEvent
	cur := dashEvent{id: -1}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event == "" && cur.data == "" {
				continue // the retry-advice frame
			}
			events = append(events, cur)
			done := stop(cur)
			cur = dashEvent{id: -1}
			if done {
				return events
			}
		}
	}
	t.Fatalf("stream ended before the stop condition (%d events, err %v)", len(events), sc.Err())
	return nil
}

// TestDashboardStreamResume: a client reconnecting with Last-Event-ID
// resumes at exactly the next ordinal — no duplicates, no gap event —
// because the sample ring outlives the subscription.
func TestDashboardStreamResume(t *testing.T) {
	reg := NewRegistry(nil)
	srv := NewServer(reg, nil)
	srv.DashboardSampleInterval = time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := dashStream(t, ts, "")
	first := readDashEvents(t, resp, func(e dashEvent) bool { return e.id >= 2 })
	resp.Body.Close()
	last := first[len(first)-1].id

	resp = dashStream(t, ts, fmt.Sprint(last))
	defer resp.Body.Close()
	resumed := readDashEvents(t, resp, func(e dashEvent) bool { return e.id >= last+3 })
	for i, e := range resumed {
		if e.event == "gap" {
			t.Fatalf("resume within the ring produced a gap event: %+v", e)
		}
		if e.id <= last {
			t.Fatalf("resumed stream re-sent sample %d (already seen through %d)", e.id, last)
		}
		if want := last + 1 + i; e.id != want {
			t.Fatalf("resumed event %d has id %d, want %d (ordinals must be dense)", i, e.id, want)
		}
	}
}

// TestDashboardStreamGapOnDroppedPrefix: when the bounded ring has
// dropped the ordinals a reconnecting client asks for, the stream says so
// with an explicit gap event — dropped count and resume point — before
// the surviving samples, mirroring the per-run snapshot stream.
func TestDashboardStreamGapOnDroppedPrefix(t *testing.T) {
	reg := NewRegistry(nil)
	srv := NewServer(reg, nil)
	srv.DashboardSampleInterval = time.Millisecond
	srv.DashboardRing = 2
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Age the ring well past its bound.
	resp := dashStream(t, ts, "")
	readDashEvents(t, resp, func(e dashEvent) bool { return e.id >= 6 })
	resp.Body.Close()

	resp = dashStream(t, ts, "0")
	defer resp.Body.Close()
	var gap struct {
		From    int `json:"from"`
		Resumed int `json:"resumed"`
		Dropped int `json:"dropped"`
	}
	events := readDashEvents(t, resp, func(e dashEvent) bool { return e.event == "sample" })
	if events[0].event != "gap" {
		t.Fatalf("first frame after a dropped-prefix resume is %q, want gap (%+v)", events[0].event, events)
	}
	if err := json.Unmarshal([]byte(events[0].data), &gap); err != nil {
		t.Fatalf("bad gap payload %q: %v", events[0].data, err)
	}
	if gap.From != 1 || gap.Dropped < 1 || gap.Resumed != gap.From+gap.Dropped {
		t.Fatalf("gap accounting %+v does not balance", gap)
	}
	samp := events[len(events)-1]
	if samp.id != gap.Resumed {
		t.Fatalf("first sample after the gap has id %d, want the resume point %d", samp.id, gap.Resumed)
	}
}

// TestDashboardStreamStaleIDClampsToHead: a Last-Event-ID beyond anything
// published (e.g. from a previous server life) must not wedge the stream
// — the handler clamps back to the ring head and keeps serving fresh
// samples with truthful (smaller) ordinals.
func TestDashboardStreamStaleIDClampsToHead(t *testing.T) {
	reg := NewRegistry(nil)
	srv := NewServer(reg, nil)
	srv.DashboardSampleInterval = time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := dashStream(t, ts, "100000")
	defer resp.Body.Close()
	events := readDashEvents(t, resp, func(e dashEvent) bool { return e.event == "sample" })
	samp := events[len(events)-1]
	if samp.id >= 100000 {
		t.Fatalf("sample id %d did not clamp below the stale Last-Event-ID", samp.id)
	}
	var sm map[string]any
	if err := json.Unmarshal([]byte(samp.data), &sm); err != nil {
		t.Fatalf("bad sample %q: %v", samp.data, err)
	}
}
