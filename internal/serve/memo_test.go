package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"cppcache/internal/ledger"
)

func newTestServerWith(t *testing.T, cfg Config) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistryWith(cfg, nil)
	ts := httptest.NewServer(NewServer(reg, nil))
	t.Cleanup(ts.Close)
	return ts, reg
}

// fetchText GETs a path and returns the body, asserting the status.
func fetchText(t *testing.T, ts *httptest.Server, path string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", path, resp.StatusCode, wantStatus, body)
	}
	return body
}

// TestMemoHitIsByteIdenticalAndInert is the memoization acceptance test:
// an identical re-submitted spec is answered from the memo store with the
// original's exact observable surface — result digest, snapshot series,
// totals and attribution profile — plus explicit provenance, while
// consuming no execution slot. Hits and misses conserve against admitted
// runs.
func TestMemoHitIsByteIdenticalAndInert(t *testing.T) {
	ts, reg := newTestServerWith(t, Config{MemoEntries: 8})
	spec := `{"workload":"mst","config":"CPP","functional":true,"scale":1,"attr":true}`

	first := launch(t, ts, spec)
	firstDone := waitDone(t, ts, first.ID)
	if firstDone.State != StateDone {
		t.Fatalf("first run: state %s (%s)", firstDone.State, firstDone.Error)
	}
	if firstDone.Memoized {
		t.Fatal("first execution must not be marked memoized")
	}
	firstProfile := fetchText(t, ts, fmt.Sprintf("/runs/%d/profile", first.ID), http.StatusOK)

	second := launch(t, ts, spec)
	if !second.Memoized {
		t.Fatal("identical spec was not memoized")
	}
	if second.MemoSourceRun != first.ID || second.MemoSourceTrace != firstDone.TraceID {
		t.Fatalf("memo provenance = run %d trace %q, want run %d trace %q",
			second.MemoSourceRun, second.MemoSourceTrace, first.ID, firstDone.TraceID)
	}
	if second.State != StateDone {
		t.Fatalf("memoized run state = %s, want done at birth", second.State)
	}
	if second.Finished == nil || !second.Finished.Equal(second.Created) {
		t.Fatal("memoized run must be born terminal (finished == created)")
	}

	// Result digests must be byte-identical (the result JSON canonicalises
	// to the same bytes).
	d1, err := ledger.ResultDigest(firstDone.Result)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ledger.ResultDigest(second.Result)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("memoized result digest %s != original %s", d2, d1)
	}
	if !reflect.DeepEqual(firstDone.Totals, second.Totals) {
		t.Fatal("memoized totals differ from the original's")
	}
	if second.Intervals != firstDone.Intervals {
		t.Fatalf("memoized intervals %d != original %d", second.Intervals, firstDone.Intervals)
	}

	// Snapshot series must replay identically, ordinal for ordinal.
	origRun, _ := reg.Get(first.ID)
	memoRun, _ := reg.Get(second.ID)
	s1, f1, _, _ := origRun.SnapsFrom(0)
	s2, f2, _, _ := memoRun.SnapsFrom(0)
	if f1 != f2 || !reflect.DeepEqual(s1, s2) {
		t.Fatalf("memoized snapshot series differs (from %d vs %d, %d vs %d snaps)",
			f2, f1, len(s2), len(s1))
	}

	// The attribution profile replays byte-identically too (modulo the
	// header line, which names the run id).
	memoProfile := fetchText(t, ts, fmt.Sprintf("/runs/%d/profile", second.ID), http.StatusOK)
	trim := func(s string) string {
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if trim(memoProfile) != trim(firstProfile) {
		t.Fatal("memoized profile differs from the original's")
	}

	// Conservation: 2 admitted runs == 1 hit + 1 miss, visible both in
	// Counters and on /metrics.
	c := reg.Counters()
	if c.MemoHits != 1 || c.MemoMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.MemoHits, c.MemoMisses)
	}
	metrics := parseExposition(t, fetchText(t, ts, "/metrics", http.StatusOK))
	if metrics["cppserved_memo_hits_total"] != 1 || metrics["cppserved_memo_misses_total"] != 1 {
		t.Fatalf("exposition hits/misses = %v/%v, want 1/1",
			metrics["cppserved_memo_hits_total"], metrics["cppserved_memo_misses_total"])
	}
	if metrics[`cppserved_memo_entries{kind="full"}`] != 1 {
		t.Fatalf("full memo entries = %v, want 1", metrics[`cppserved_memo_entries{kind="full"}`])
	}
	if metrics["cppserved_memo_digest_drift_total"] != 0 {
		t.Fatal("digest drift counted on identical replays")
	}

	// The memoized run's ledger record carries provenance, and memoized
	// records never become memo sources themselves.
	var memoRec *ledger.Record
	for _, rec := range reg.FleetRecords() {
		if rec.RunID == second.ID {
			r := rec
			memoRec = &r
		}
	}
	if memoRec == nil {
		t.Fatal("memoized run missing from fleet records")
	}
	if !memoRec.Memoized || memoRec.MemoSource != first.ID {
		t.Fatalf("memo record: memoized=%v source=%d, want true/%d",
			memoRec.Memoized, memoRec.MemoSource, first.ID)
	}
}

// TestMemoNocacheBypass: ?nocache=1 forces a real execution even with a
// servable memo entry, and still counts as a miss (conservation holds).
func TestMemoNocacheBypass(t *testing.T) {
	ts, reg := newTestServerWith(t, Config{MemoEntries: 8})
	spec := `{"workload":"mst","config":"CPP","functional":true,"scale":1}`

	first := launch(t, ts, spec)
	waitDone(t, ts, first.ID)

	resp, err := http.Post(ts.URL+"/runs?nocache=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /runs?nocache=1: status %d", resp.StatusCode)
	}
	if st.Memoized {
		t.Fatal("nocache launch served from the memo store")
	}
	final := waitDone(t, ts, st.ID)
	if final.State != StateDone || final.Memoized {
		t.Fatalf("nocache run: state %s memoized %v", final.State, final.Memoized)
	}
	c := reg.Counters()
	if c.MemoHits != 0 || c.MemoMisses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 0/2", c.MemoHits, c.MemoMisses)
	}
}

// TestMemoNeverServesCanceledOrFailed: only fault-free done runs enter
// the store. A canceled run of a spec must not answer later launches of
// the same spec; once a real completion lands, later launches hit.
func TestMemoNeverServesCanceledOrFailed(t *testing.T) {
	// One execution slot, held by a chaos-stalled blocker, so the target
	// spec sits in the queue where cancellation is immediate and
	// deterministic (no timing races).
	ts, reg := newTestServerWith(t, Config{MemoEntries: 8, MaxRunning: 1, AllowChaos: true})
	blocker := launch(t, ts,
		`{"workload":"mst","config":"CPP","functional":true,"scale":1,"chaos":{"stall_after":1,"stall_ms":30000}}`)
	spec := `{"workload":"mst","config":"CPP","functional":true,"scale":3}`

	first := launch(t, ts, spec)
	cancelRun := func(id int) {
		req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/runs/%d", ts.URL, id), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	cancelRun(first.ID)
	firstFinal := waitDone(t, ts, first.ID)
	if firstFinal.State != StateCanceled {
		t.Fatalf("queued run ended %s, want canceled", firstFinal.State)
	}
	// Release the slot: the stall aborts on context cancellation.
	cancelRun(blocker.ID)
	waitDone(t, ts, blocker.ID)

	second := launch(t, ts, spec)
	if second.Memoized {
		t.Fatal("memo served a canceled run's spec")
	}
	secondFinal := waitDone(t, ts, second.ID)
	if secondFinal.State != StateDone {
		t.Fatalf("second run: %s (%s)", secondFinal.State, secondFinal.Error)
	}

	third := launch(t, ts, spec)
	if !third.Memoized {
		t.Fatal("real completion did not enter the memo store")
	}
	// Admitted: blocker, canceled first, real second, memoized third —
	// 1 hit + 3 misses.
	c := reg.Counters()
	if c.MemoHits != 1 || c.MemoMisses != 3 {
		t.Fatalf("hits/misses = %d/%d, want 1/3", c.MemoHits, c.MemoMisses)
	}
}

// TestMemoFailedRunNotStored: a failed run (per-run deadline exceeded)
// never memoizes; re-submitting the same spec executes again.
func TestMemoFailedRunNotStored(t *testing.T) {
	ts, reg := newTestServerWith(t, Config{MemoEntries: 8})
	spec := `{"workload":"mst","config":"CPP","functional":true,"scale":64,"timeout_sec":1e-9}`

	first := launch(t, ts, spec)
	firstFinal := waitDone(t, ts, first.ID)
	if firstFinal.State != StateFailed {
		t.Skipf("run ended %s, not failed; deadline too generous on this box", firstFinal.State)
	}
	second := launch(t, ts, spec)
	if second.Memoized {
		t.Fatal("memo served a failed run's spec")
	}
	waitDone(t, ts, second.ID)
	c := reg.Counters()
	if c.MemoHits != 0 {
		t.Fatalf("hits = %d, want 0 (nothing servable was ever stored)", c.MemoHits)
	}
}

// TestMemoWarmStartFromLedger: replayed ledger records seed index-only
// entries (digest-checkable, not servable); the first post-boot execution
// promotes the entry to full, after which identical specs hit. Drift
// stays zero because the simulator is deterministic.
func TestMemoWarmStartFromLedger(t *testing.T) {
	// First life: execute once, capture the ledger records.
	tsA, regA := newTestServerWith(t, Config{MemoEntries: 8})
	spec := `{"workload":"mst","config":"CPP","functional":true,"scale":1}`
	a := launch(t, tsA, spec)
	waitDone(t, tsA, a.ID)
	recs := regA.FleetRecords()
	if len(recs) != 1 || recs[0].ResultDigest == "" || recs[0].SpecHash == "" {
		t.Fatalf("unexpected first-life records: %+v", recs)
	}

	// Second life: seed from the replayed records.
	tsB, regB := newTestServerWith(t, Config{MemoEntries: 8})
	regB.SeedFleet(recs)
	c := regB.Counters()
	if c.MemoEntries != 1 || c.MemoFullEntries != 0 {
		t.Fatalf("after seed: entries=%d full=%d, want 1/0 (index-only)", c.MemoEntries, c.MemoFullEntries)
	}

	// Index-only entries cannot serve: the first launch executes.
	b1 := launch(t, tsB, spec)
	if b1.Memoized {
		t.Fatal("index-only entry served a hit")
	}
	b1Final := waitDone(t, tsB, b1.ID)
	if b1Final.State != StateDone {
		t.Fatalf("b1: %s (%s)", b1Final.State, b1Final.Error)
	}

	// The execution promoted the entry; drift must be zero (determinism)
	// and the next launch hits.
	c = regB.Counters()
	if c.MemoDigestDrift != 0 {
		t.Fatal("digest drift against the ledgered record: determinism violation")
	}
	if c.MemoFullEntries != 1 {
		t.Fatalf("full entries = %d, want 1 after promotion", c.MemoFullEntries)
	}
	b2 := launch(t, tsB, spec)
	if !b2.Memoized {
		t.Fatal("promoted entry did not serve a hit")
	}
	if c = regB.Counters(); c.MemoHits != 1 || c.MemoMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.MemoHits, c.MemoMisses)
	}
}

// TestMemoStoreLRUBound: the store honours its entry bound, evicting the
// least recently used spec hash and counting the eviction.
func TestMemoStoreLRUBound(t *testing.T) {
	m := newMemoStore(2)
	for i := 0; i < 3; i++ {
		m.store(&memoEntry{specHash: fmt.Sprintf("h%d", i), digest: "d", full: true})
	}
	st := m.stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2/1", st.Entries, st.Evictions)
	}
	if m.lookup("h0") != nil {
		t.Fatal("oldest entry survived the LRU bound")
	}
	if m.lookup("h2") == nil || m.lookup("h1") == nil {
		t.Fatal("recent entries were evicted")
	}
	// h1 was just looked up (most recent); storing a fourth evicts h2.
	m.store(&memoEntry{specHash: "h3", digest: "d", full: true})
	if m.lookup("h1") == nil {
		t.Fatal("recency bump ignored: h1 evicted despite being MRU")
	}
	if m.lookup("h2") != nil {
		t.Fatal("h2 survived; LRU order not honoured")
	}
}

// TestMemoStoreDriftDetection: a stored entry whose digest disagrees with
// the existing one for the same hash counts drift and the new digest wins.
func TestMemoStoreDriftDetection(t *testing.T) {
	m := newMemoStore(4)
	m.store(&memoEntry{specHash: "h", digest: "d1", full: true})
	if drift := m.store(&memoEntry{specHash: "h", digest: "d2", full: true}); !drift {
		t.Fatal("digest change not flagged as drift")
	}
	if st := m.stats(); st.Drift != 1 {
		t.Fatalf("drift = %d, want 1", st.Drift)
	}
	if e := m.lookup("h"); e == nil || e.digest != "d2" {
		t.Fatal("latest execution's digest did not win")
	}
}

// TestMemoizedRunSpanInvariants: a memoized run's spans are all zero-width
// at the creation instant, so the queue+execute == run reconciliation
// holds trivially and trace tooling sees a consistent (if instantaneous)
// lifecycle.
func TestMemoizedRunSpanInvariants(t *testing.T) {
	ts, reg := newTestServerWith(t, Config{MemoEntries: 8})
	spec := `{"workload":"mst","config":"CPP","functional":true,"scale":1}`
	first := launch(t, ts, spec)
	waitDone(t, ts, first.ID)
	second := launch(t, ts, spec)
	if !second.Memoized {
		t.Fatal("second launch not memoized")
	}
	run, _ := reg.Get(second.ID)
	var total time.Duration
	for _, sp := range run.tracer.Snapshot() {
		if sp.End.IsZero() {
			t.Fatalf("span %q left open on a born-terminal run", sp.Name)
		}
		total += sp.Duration()
	}
	if total != 0 {
		t.Fatalf("memoized run spans sum to %v, want 0 (all zero-width)", total)
	}
}
