package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"cppcache"
	"cppcache/internal/obs"
)

// launch posts a spec and returns the created run's status.
func launch(t *testing.T, ts *httptest.Server, spec string) RunStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /runs: status %d", resp.StatusCode)
	}
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone polls until the run reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id int) RunStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/runs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var st RunStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %d did not finish", id)
	return RunStatus{}
}

func newTestServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry(nil)
	ts := httptest.NewServer(NewServer(reg, nil))
	t.Cleanup(ts.Close)
	return ts, reg
}

// parseExposition parses Prometheus text format into metric{labels} -> value,
// failing on any malformed line.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("malformed comment line: %q", line)
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if i := strings.IndexByte(key, '{'); i >= 0 && !strings.HasSuffix(key, "}") {
			t.Fatalf("unbalanced labels in %q", line)
		}
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		out[key] = val
	}
	return out
}

// TestMetricsMatchRunTotals is the wire-conservation test: at end of run
// the Prometheus counters must equal the recorder's final totals (reached
// independently through cppcache.Run's Result and the run status).
func TestMetricsMatchRunTotals(t *testing.T) {
	ts, _ := newTestServer(t)
	st := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1}`)
	if st.Spec.Workload != "olden.mst" {
		t.Fatalf("workload suffix not resolved: %q", st.Spec.Workload)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (err %q)", final.State, final.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := parseExposition(t, readAll(t, resp))

	labels := fmt.Sprintf(`{run="%d",workload="olden.mst",config="CPP",compressor="paper"}`, st.ID)
	want := map[string]int64{
		"cppsim_l1_accesses_total":     final.Totals.L1Accesses,
		"cppsim_l1_misses_total":       final.Totals.L1Misses,
		"cppsim_l2_accesses_total":     final.Totals.L2Accesses,
		"cppsim_l2_misses_total":       final.Totals.L2Misses,
		"cppsim_mem_read_halves_total": final.Totals.MemReadHalves,
		"cppsim_fill_words_total":      final.Totals.FillWords,
		"cppsim_aff_hits_total":        final.Totals.AffHits,
	}
	for name, w := range want {
		got, ok := metrics[name+labels]
		if !ok {
			t.Fatalf("series %s%s missing from exposition", name, labels)
		}
		if got != float64(w) {
			t.Errorf("%s = %v, want %d", name, got, w)
		}
	}

	// The run status totals must in turn equal the authoritative
	// simulation result: conservation holds across the whole wire.
	res := final.Result
	if res == nil {
		t.Fatal("done run has no result")
	}
	if final.Totals.L1Misses != res.L1Misses {
		t.Errorf("summed snapshot L1 misses %d != result %d", final.Totals.L1Misses, res.L1Misses)
	}
	if final.Totals.L1Accesses != res.L1Accesses {
		t.Errorf("summed snapshot L1 accesses %d != result %d", final.Totals.L1Accesses, res.L1Accesses)
	}
	if final.Totals.L2Misses != res.L2Misses {
		t.Errorf("summed snapshot L2 misses %d != result %d", final.Totals.L2Misses, res.L2Misses)
	}
	if got := float64(final.Totals.MemReadHalves+final.Totals.MemWriteHalves) / 2; got != res.MemTrafficWords {
		t.Errorf("summed snapshot traffic %v words != result %v", got, res.MemTrafficWords)
	}
	if metrics[`cppserved_runs{state="done"}`] != 1 {
		t.Errorf("cppserved_runs{state=done} = %v, want 1", metrics[`cppserved_runs{state="done"}`])
	}
	if metrics["cppsim_intervals_total"+labels] != float64(final.Intervals) {
		t.Errorf("intervals series = %v, want %d", metrics["cppsim_intervals_total"+labels], final.Intervals)
	}
}

// TestStreamDeltasSumToTotals consumes the SSE stream of a finished run
// and checks that summing the streamed deltas reproduces the run totals.
func TestStreamDeltasSumToTotals(t *testing.T) {
	ts, _ := newTestServer(t)
	st := launch(t, ts, `{"workload":"treeadd","config":"CPP","functional":true,"scale":1}`)
	// Connect immediately — the stream must replay any snapshots that
	// land before the subscription and then follow to completion.
	resp, err := http.Get(fmt.Sprintf("%s/runs/%d/stream", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var (
		sum     obs.Snapshot
		nSnaps  int
		end     RunStatus
		gotEnd  bool
		event   string
		scanner = bufio.NewScanner(resp.Body)
	)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "snapshot":
				var s obs.Snapshot
				if err := json.Unmarshal([]byte(data), &s); err != nil {
					t.Fatalf("bad snapshot payload: %v", err)
				}
				addSnapshot(&sum, s)
				nSnaps++
			case "end":
				if err := json.Unmarshal([]byte(data), &end); err != nil {
					t.Fatalf("bad end payload: %v", err)
				}
				gotEnd = true
			}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if !gotEnd {
		t.Fatal("stream closed without an end event")
	}
	if end.State != StateDone {
		t.Fatalf("end state = %s", end.State)
	}
	if nSnaps != end.Intervals {
		t.Errorf("streamed %d snapshots, run has %d intervals", nSnaps, end.Intervals)
	}
	if sum != end.Totals {
		t.Errorf("summed stream deltas != run totals\n  stream: %+v\n  totals: %+v", sum, end.Totals)
	}
	if end.Result != nil && sum.L1Misses != end.Result.L1Misses {
		t.Errorf("streamed L1 misses %d != result %d", sum.L1Misses, end.Result.L1Misses)
	}
}

// TestProfileEndpoint checks attribution serving and its state handling.
func TestProfileEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	st := launch(t, ts, `{"workload":"treeadd","config":"CPP","functional":true,"scale":1,"attr":true}`)
	final := waitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s", final.State)
	}

	resp, err := http.Get(fmt.Sprintf("%s/runs/%d/profile", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d: %s", resp.StatusCode, text)
	}
	for _, needle := range []string{"attribution profile", "l1_miss: total", "top PCs", "top regions"} {
		if !strings.Contains(text, needle) {
			t.Errorf("profile missing %q:\n%s", needle, text)
		}
	}

	resp, err = http.Get(fmt.Sprintf("%s/runs/%d/profile?format=collapsed", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	collapsed := readAll(t, resp)
	if !strings.Contains(collapsed, "l1_miss;region_") {
		t.Errorf("collapsed output missing stack lines:\n%.200s", collapsed)
	}

	// A run without attribution 404s its profile.
	st2 := launch(t, ts, `{"workload":"treeadd","config":"BC","functional":true,"scale":1}`)
	waitDone(t, ts, st2.ID)
	resp, err = http.Get(fmt.Sprintf("%s/runs/%d/profile", ts.URL, st2.ID))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("profile of attr-less run: status %d, want 404", resp.StatusCode)
	}
}

// TestLaunchValidation exercises spec validation through the HTTP layer.
func TestLaunchValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		spec string
		code int
	}{
		{`{"workload":"treeadd","config":"CPP","functional":true}`, http.StatusCreated},
		{`{}`, http.StatusBadRequest},                                    // workload required
		{`{"workload":"nope"}`, http.StatusBadRequest},                   // unknown workload
		{`{"workload":"treeadd","config":"ZZZ"}`, http.StatusBadRequest}, // unknown config
		{`{"workload":"treeadd","config":"BCC","compressor":"fpc","functional":true}`, http.StatusCreated},
		{`{"workload":"treeadd","config":"BCC","compressor":"zzz"}`, http.StatusBadRequest}, // unknown scheme
		{`{"workload":"treeadd","config":"CPP","compressor":"fpc"}`, http.StatusBadRequest}, // scheme on CPP
		{`{"workload":"treeadd","scale":-1}`, http.StatusBadRequest},                        // bad scale
		{`{"workload":"treeadd","scale":99999}`, http.StatusBadRequest},                     // absurd scale
		{`{"workload":"treeadd","interval":-5}`, http.StatusBadRequest},                     // bad interval
		{`{"workload":"treeadd","timeout_sec":-1}`, http.StatusBadRequest},                  // bad timeout
		{`{"workload":"treeadd","timeout_sec":1e6}`, http.StatusBadRequest},                 // absurd timeout
		{`{"workload":"treeadd","chaos":{"panic_after":1}}`, http.StatusBadRequest},         // chaos disabled by default
		{`{"workload":"treeadd","bogus":1}`, http.StatusBadRequest},                         // unknown field
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(c.spec))
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != c.code {
			t.Errorf("POST %s: status %d, want %d", c.spec, resp.StatusCode, c.code)
		}
	}

	// Spec violations carry a structured body naming the offending field.
	fields := map[string]string{
		`{"workload":"treeadd","scale":-1}`:       "scale",
		`{"workload":"treeadd","timeout_sec":-1}`: "timeout_sec",
		`{"workload":"treeadd","interval":-5}`:    "interval",
		`{}`:                                      "workload",
		`{"workload":"treeadd","config":"BCC","compressor":"zzz"}`: "compressor",
		`{"workload":"treeadd","config":"BC","compressor":"bdi"}`:  "compressor",
	}
	for spec, field := range fields {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		var se SpecError
		if err := json.NewDecoder(resp.Body).Decode(&se); err != nil {
			t.Fatalf("POST %s: undecodable error body: %v", spec, err)
		}
		resp.Body.Close()
		if se.Field != field || se.Msg == "" {
			t.Errorf("POST %s: error body %+v, want field %q", spec, se, field)
		}
	}
}

// TestCompressorSpecRoundtrip pins the compressor axis through the API:
// the default spec canonicalises to the paper's scheme, a zoo scheme on a
// compressing config runs to completion, and the selection reaches the
// result and the Prometheus labels.
func TestCompressorSpecRoundtrip(t *testing.T) {
	ts, _ := newTestServer(t)
	st := launch(t, ts, `{"workload":"mst","config":"BCC","functional":true,"scale":1}`)
	if st.Spec.Compressor != "paper" {
		t.Errorf("default spec compressor = %q, want canonical \"paper\"", st.Spec.Compressor)
	}
	st2 := launch(t, ts, `{"workload":"mst","config":"BCC","compressor":"FPC","functional":true,"scale":1}`)
	if st2.Spec.Compressor != "fpc" {
		t.Errorf("spec compressor = %q, want lower-cased \"fpc\"", st2.Spec.Compressor)
	}
	final := waitDone(t, ts, st2.ID)
	if final.State != StateDone {
		t.Fatalf("BCC@fpc run: state %s (err %q)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Compressor != "fpc" || string(final.Result.Config) != "BCC" {
		t.Fatalf("BCC@fpc result = %+v, want Config BCC, Compressor fpc", final.Result)
	}
	base := waitDone(t, ts, st.ID)
	if base.Result == nil || base.Result.Compressor != "paper" {
		t.Fatalf("default BCC result = %+v, want Compressor paper", base.Result)
	}
	// The schemes share miss behaviour; fpc must move different (here:
	// less) traffic on the same workload.
	if final.Result.L2Misses != base.Result.L2Misses {
		t.Errorf("L2 misses differ across schemes: %d vs %d", final.Result.L2Misses, base.Result.L2Misses)
	}
	if final.Result.MemTrafficWords >= base.Result.MemTrafficWords {
		t.Errorf("fpc traffic %v not below paper traffic %v",
			final.Result.MemTrafficWords, base.Result.MemTrafficWords)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	needle := fmt.Sprintf(`run="%d",workload="olden.mst",config="BCC",compressor="fpc"`, st2.ID)
	if !strings.Contains(body, needle) {
		t.Errorf("metrics exposition missing per-scheme labels %s", needle)
	}
}

// TestRunsListAndNotFound covers GET /runs, bad ids and /healthz.
func TestRunsListAndNotFound(t *testing.T) {
	ts, _ := newTestServer(t)
	st := launch(t, ts, `{"workload":"treeadd","config":"CPP","functional":true,"scale":1}`)
	waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var list []RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("GET /runs = %+v", list)
	}

	for path, want := range map[string]int{
		"/runs/99":             http.StatusNotFound,
		"/runs/zip":            http.StatusBadRequest,
		"/healthz":             http.StatusOK,
		"/debug/pprof/cmdline": http.StatusOK,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestDrainRejectsNewRuns checks the graceful-shutdown contract: after
// Drain starts, launches are refused while existing runs complete.
func TestDrainRejectsNewRuns(t *testing.T) {
	ts, reg := newTestServer(t)
	st := launch(t, ts, `{"workload":"treeadd","config":"CPP","functional":true,"scale":1}`)
	if !reg.Drain(30 * time.Second) {
		t.Fatal("drain timed out")
	}
	if got := waitDone(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("pre-drain run state = %s", got.State)
	}
	resp, err := http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"workload":"treeadd","functional":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("post-drain launch: status %d body %q", resp.StatusCode, body)
	}
}

// TestDefaultIntervalApplied checks that the registry forces snapshotting
// so /metrics and the stream always have a series to serve.
func TestDefaultIntervalApplied(t *testing.T) {
	reg := NewRegistry(nil)
	spec, err := reg.normalize(RunSpec{Workload: "treeadd"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Interval != DefaultInterval {
		t.Errorf("interval = %d, want %d", spec.Interval, DefaultInterval)
	}
	if spec.Config != string(cppcache.CPP) {
		t.Errorf("default config = %q, want CPP", spec.Config)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
