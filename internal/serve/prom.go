package serve

import (
	"fmt"
	"runtime"
	"strings"

	"cppcache/internal/obs"
)

// promFamily is one exported metric family: name, help, type and a getter
// that pulls the sample from a run's accumulated totals.
type promFamily struct {
	name  string
	help  string
	typ   string // "counter" or "gauge"
	value func(t obs.Snapshot) float64
}

// promFamilies is the exposition order. Every counter is a column sum of
// the run's interval snapshots, so at end of run each equals the
// recorder's final total exactly (the snapshot series partitions the
// run); mid-run it equals the total as of the last snapshot boundary.
var promFamilies = []promFamily{
	{"cppsim_cycles", "Simulated cycle of the last snapshot (memory ops in functional mode).", "gauge",
		func(t obs.Snapshot) float64 { return float64(t.Cycle) }},
	{"cppsim_instructions_total", "Instructions retired.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.Instructions) }},
	{"cppsim_l1_accesses_total", "L1 data cache accesses.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.L1Accesses) }},
	{"cppsim_l1_misses_total", "L1 data cache misses.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.L1Misses) }},
	{"cppsim_l2_accesses_total", "L2 cache accesses.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.L2Accesses) }},
	{"cppsim_l2_misses_total", "L2 cache misses.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.L2Misses) }},
	{"cppsim_mem_read_halves_total", "16-bit halves read from main memory.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.MemReadHalves) }},
	{"cppsim_mem_write_halves_total", "16-bit halves written to main memory.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.MemWriteHalves) }},
	{"cppsim_aff_hits_total", "Demand hits on affiliated (prefetched) words.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.AffHits) }},
	{"cppsim_aff_words_prefetched_total", "Words prefetched into affiliated space.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.AffWordsPrefetched) }},
	{"cppsim_promotions_total", "Affiliated lines promoted to resident.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.Promotions) }},
	{"cppsim_pf_buf_hits_total", "Prefetch-buffer hits (BCP) or victim-cache hits (VC).", "counter",
		func(t obs.Snapshot) float64 { return float64(t.PfBufHits) }},
	{"cppsim_pf_issued_total", "Prefetches issued.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.PfIssued) }},
	{"cppsim_fill_words_total", "Words fetched from memory into the hierarchy.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.FillWords) }},
	{"cppsim_fill_comp_words_total", "Fetched words that were compressible to 16 bits.", "counter",
		func(t obs.Snapshot) float64 { return float64(t.FillCompWords) }},
	{"cppsim_pages_touched", "Distinct 4 KiB main-memory pages touched.", "gauge",
		func(t obs.Snapshot) float64 { return float64(t.PagesTouched) }},
}

// escapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double quote and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// writeBuildInfo renders the cppserved_build_info gauge: a constant-1
// series whose labels make every scrape self-describing (which Go
// toolchain, how many workers the box offers, where the ledger lives,
// what role this process plays in the sweep fabric), mirroring the
// machine fields BENCH_simperf.json records.
func writeBuildInfo(w *strings.Builder, ledgerPath, role string) {
	fmt.Fprintf(w, "# HELP cppserved_build_info Build and host facts as labels; value is always 1.\n# TYPE cppserved_build_info gauge\n")
	fmt.Fprintf(w, "cppserved_build_info{go_version=\"%s\",gomaxprocs=\"%d\",num_cpu=\"%d\",ledger=\"%s\",role=\"%s\"} 1\n",
		escapeLabel(runtime.Version()), runtime.GOMAXPROCS(0), runtime.NumCPU(),
		escapeLabel(ledgerPath), escapeLabel(role))
}

// writeMetrics renders the registry in Prometheus text exposition format
// version 0.0.4. Each run is one labelled series per family, plus
// per-state run counts, interval counts, and the registry's own
// supervision counters (queue depth, recovered panics, admission
// rejections, evictions, dropped snapshots, slow-stream disconnects).
func writeMetrics(w *strings.Builder, runs []*Run, c Counters) {
	type sample struct {
		labels string
		totals obs.Snapshot
	}
	samples := make([]sample, 0, len(runs))
	byState := map[RunState]int{}
	intervals := make([]int, 0, len(runs))
	for _, r := range runs {
		st := r.Status()
		byState[st.State]++
		intervals = append(intervals, st.Intervals)
		samples = append(samples, sample{
			labels: fmt.Sprintf(`run="%d",workload=%q,config=%q,compressor=%q`,
				r.ID, escapeLabel(r.Spec.Workload), escapeLabel(r.Spec.Config),
				escapeLabel(r.Spec.Compressor)),
			totals: st.Totals,
		})
	}

	fmt.Fprintf(w, "# HELP cppserved_runs Runs by lifecycle state.\n# TYPE cppserved_runs gauge\n")
	for _, st := range States() {
		fmt.Fprintf(w, "cppserved_runs{state=%q} %d\n", string(st), byState[st])
	}
	fmt.Fprintf(w, "# HELP cppserved_queue_depth Runs waiting for a worker slot.\n# TYPE cppserved_queue_depth gauge\n")
	fmt.Fprintf(w, "cppserved_queue_depth %d\n", c.QueueDepth)
	fmt.Fprintf(w, "# HELP cppserved_panics_recovered_total Job panics recovered into failed runs.\n# TYPE cppserved_panics_recovered_total counter\n")
	fmt.Fprintf(w, "cppserved_panics_recovered_total %d\n", c.PanicsRecovered)
	fmt.Fprintf(w, "# HELP cppserved_launch_rejected_total Launches rejected by admission control.\n# TYPE cppserved_launch_rejected_total counter\n")
	fmt.Fprintf(w, "cppserved_launch_rejected_total{reason=\"queue_full\"} %d\n", c.RejectedQueueFull)
	fmt.Fprintf(w, "cppserved_launch_rejected_total{reason=\"draining\"} %d\n", c.RejectedDraining)
	fmt.Fprintf(w, "# HELP cppserved_runs_evicted_total Terminal runs evicted by the retention policy.\n# TYPE cppserved_runs_evicted_total counter\n")
	fmt.Fprintf(w, "cppserved_runs_evicted_total %d\n", c.RunsEvicted)
	fmt.Fprintf(w, "# HELP cppserved_snapshots_dropped_total Interval snapshots discarded by bounded per-run rings.\n# TYPE cppserved_snapshots_dropped_total counter\n")
	fmt.Fprintf(w, "cppserved_snapshots_dropped_total %d\n", c.SnapshotsDropped)
	fmt.Fprintf(w, "# HELP cppserved_slow_streams_disconnected_total SSE consumers disconnected for missing their write deadline.\n# TYPE cppserved_slow_streams_disconnected_total counter\n")
	fmt.Fprintf(w, "cppserved_slow_streams_disconnected_total %d\n", c.SlowStreamsDropped)
	fmt.Fprintf(w, "# HELP cppserved_ledger_append_errors_total Ledger appends that failed (runs themselves unaffected).\n# TYPE cppserved_ledger_append_errors_total counter\n")
	fmt.Fprintf(w, "cppserved_ledger_append_errors_total %d\n", c.LedgerErrors)
	fmt.Fprintf(w, "# HELP cppserved_memo_hits_total Admitted runs served from the spec-hash memo store.\n# TYPE cppserved_memo_hits_total counter\n")
	fmt.Fprintf(w, "cppserved_memo_hits_total %d\n", c.MemoHits)
	fmt.Fprintf(w, "# HELP cppserved_memo_misses_total Admitted runs that executed for real (no servable memo entry).\n# TYPE cppserved_memo_misses_total counter\n")
	fmt.Fprintf(w, "cppserved_memo_misses_total %d\n", c.MemoMisses)
	fmt.Fprintf(w, "# HELP cppserved_memo_entries Memo store entries by completeness (full entries can serve hits; index entries only digest-check).\n# TYPE cppserved_memo_entries gauge\n")
	fmt.Fprintf(w, "cppserved_memo_entries{kind=\"full\"} %d\n", c.MemoFullEntries)
	fmt.Fprintf(w, "cppserved_memo_entries{kind=\"index\"} %d\n", c.MemoEntries-c.MemoFullEntries)
	fmt.Fprintf(w, "# HELP cppserved_memo_digest_drift_total Same spec hash produced a different result digest (determinism violation).\n# TYPE cppserved_memo_digest_drift_total counter\n")
	fmt.Fprintf(w, "cppserved_memo_digest_drift_total %d\n", c.MemoDigestDrift)
	fmt.Fprintf(w, "# HELP cppserved_memo_evictions_total Memo entries evicted by the LRU bound.\n# TYPE cppserved_memo_evictions_total counter\n")
	fmt.Fprintf(w, "cppserved_memo_evictions_total %d\n", c.MemoEvictions)
	fmt.Fprintf(w, "# HELP cppsim_intervals_total Metric snapshots taken.\n# TYPE cppsim_intervals_total counter\n")
	for i, s := range samples {
		fmt.Fprintf(w, "cppsim_intervals_total{%s} %d\n", s.labels, intervals[i])
	}
	for _, f := range promFamilies {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range samples {
			fmt.Fprintf(w, "%s{%s} %v\n", f.name, s.labels, f.value(s.totals))
		}
	}
}
