package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cppcache/internal/span"
)

// spansByName indexes a run's span snapshot, failing on missing names.
func spansByName(t *testing.T, run *Run) map[string]span.SpanData {
	t.Helper()
	out := map[string]span.SpanData{}
	for _, d := range run.TraceSpans() {
		out[d.Name] = d
	}
	return out
}

// TestTraceConservation is the span-conservation acceptance test: stage
// spans nest (child ⊆ parent intervals), queue+execute reconcile exactly
// with the registry's created/started/finished timestamps, and the
// cppserved_stage_seconds histogram totals equal the span sums.
func TestTraceConservation(t *testing.T) {
	ts, reg, _ := newServerWith(t, Config{})
	st := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)
	if st.TraceID == "" {
		t.Fatal("launch status carries no trace_id")
	}
	final := waitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (err %q)", final.State, final.Error)
	}
	if final.TraceID != st.TraceID {
		t.Fatalf("trace_id changed across the lifecycle: %q -> %q", st.TraceID, final.TraceID)
	}

	run, ok := reg.Get(st.ID)
	if !ok {
		t.Fatal("run vanished")
	}
	if run.TraceID() != st.TraceID {
		t.Fatalf("run.TraceID() = %q, status trace_id %q", run.TraceID(), st.TraceID)
	}

	spans := run.TraceSpans()
	byName := spansByName(t, run)
	for _, name := range []string{"run", "admission", "queue", "execute",
		"workload.build", "sim.build", "sim.run", "sim.finish"} {
		d, ok := byName[name]
		if !ok {
			t.Fatalf("missing %q span (have %d spans)", name, len(spans))
		}
		if d.End.IsZero() {
			t.Fatalf("%q span left open on a terminal run", name)
		}
	}

	// Child ⊆ parent: every parented span's interval sits inside its
	// parent's interval.
	byID := map[span.ID]span.SpanData{}
	for _, d := range spans {
		byID[d.SpanID] = d
	}
	for _, d := range spans {
		if d.ParentID == 0 {
			continue
		}
		p, ok := byID[d.ParentID]
		if !ok {
			t.Fatalf("%q has unknown parent %v", d.Name, d.ParentID)
		}
		if d.Start.Before(p.Start) || d.End.After(p.End) {
			t.Errorf("%q [%v..%v] escapes parent %q [%v..%v]",
				d.Name, d.Start, d.End, p.Name, p.Start, p.End)
		}
	}

	// Exact reconciliation with registry timestamps: the spans are opened
	// and closed with the very instants the status reports.
	status := run.Status()
	if status.Started == nil || status.Finished == nil {
		t.Fatal("terminal run missing timestamps")
	}
	if got, want := byName["queue"].Duration(), status.Started.Sub(status.Created); got != want {
		t.Errorf("queue span %v != started-created %v", got, want)
	}
	if got, want := byName["execute"].Duration(), status.Finished.Sub(*status.Started); got != want {
		t.Errorf("execute span %v != finished-started %v", got, want)
	}
	if got, want := byName["run"].Duration(), status.Finished.Sub(status.Created); got != want {
		t.Errorf("run span %v != finished-created %v", got, want)
	}
	if q, e, r := byName["queue"].Duration(), byName["execute"].Duration(), byName["run"].Duration(); q+e != r {
		t.Errorf("queue %v + execute %v != run %v", q, e, r)
	}

	// The execute span carries the pool worker index.
	var worker *span.Attr
	for i, a := range byName["execute"].Attrs {
		if a.Key == "worker" {
			worker = &byName["execute"].Attrs[i]
		}
	}
	if worker == nil || !worker.IsInt || worker.Int < -1 || worker.Int >= DefaultMaxRunning {
		t.Errorf("execute span worker attr = %+v", worker)
	}

	// Histogram totals equal span sums, both through the Go API and the
	// rendered /metrics exposition.
	for _, stage := range []string{"execute", "queue", "run", "sim.run"} {
		sum, count := reg.StageSeconds(stage)
		if count != 1 {
			t.Errorf("stage %q count = %d, want 1", stage, count)
		}
		if want := byName[stage].Duration().Seconds(); math.Abs(sum-want) > 1e-9 {
			t.Errorf("stage %q histogram sum %v != span seconds %v", stage, sum, want)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := parseExposition(t, readAll(t, resp))
	if got := metrics[`cppserved_stage_seconds_count{stage="execute"}`]; got != 1 {
		t.Errorf("exposition execute count = %v, want 1", got)
	}
	if got, want := metrics[`cppserved_stage_seconds_sum{stage="execute"}`],
		byName["execute"].Duration().Seconds(); math.Abs(got-want) > 1e-9 {
		t.Errorf("exposition execute sum %v != span seconds %v", got, want)
	}
	if got := metrics[`cppserved_stage_seconds_bucket{stage="execute",le="+Inf"}`]; got != 1 {
		t.Errorf("exposition +Inf bucket = %v, want 1", got)
	}

	// The decode stage recorded its cache verdict as an event.
	wb := byName["workload.build"]
	if len(wb.Events) != 1 || wb.Events[0].Name != "decode.cache" {
		t.Errorf("workload.build events = %+v, want one decode.cache", wb.Events)
	}
}

// TestTraceEndpointFormats: GET /runs/{id}/trace serves the span tree,
// the Chrome trace_event export and OTLP NDJSON; unknown formats are 400.
func TestTraceEndpointFormats(t *testing.T) {
	ts, _, _ := newServerWith(t, Config{})
	st := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)
	waitDone(t, ts, st.ID)

	get := func(suffix string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/runs/%d/trace%s", ts.URL, st.ID, suffix))
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, readAll(t, resp)
	}

	code, body := get("")
	if code != http.StatusOK {
		t.Fatalf("trace: status %d", code)
	}
	var tree struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name     string            `json:"name"`
			Children []json.RawMessage `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &tree); err != nil {
		t.Fatalf("trace tree not JSON: %v\n%.300s", err, body)
	}
	if tree.TraceID != st.TraceID {
		t.Errorf("tree trace_id = %q, want %q", tree.TraceID, st.TraceID)
	}
	if len(tree.Spans) == 0 || tree.Spans[0].Name != "run" || len(tree.Spans[0].Children) == 0 {
		t.Errorf("tree roots = %+v, want run with children", tree.Spans)
	}

	code, body = get("?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome: status %d", code)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if len(chrome.TraceEvents) < 5 {
		t.Errorf("chrome export has %d events", len(chrome.TraceEvents))
	}

	code, body = get("?format=otlp")
	if code != http.StatusOK {
		t.Fatalf("otlp: status %d", code)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		var l struct {
			TraceID string `json:"traceId"`
			SpanID  string `json:"spanId"`
		}
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatalf("otlp line not JSON: %v\n%s", err, line)
		}
		if l.TraceID != st.TraceID || l.SpanID == "" {
			t.Errorf("otlp line ids = %q/%q", l.TraceID, l.SpanID)
		}
	}

	if code, _ := get("?format=perfetto"); code != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", code)
	}
}

// TestTraceChaosFaultEvents: an injected fault lands on the execute span
// as a chaos.fired event, so a panic is attributable to its stage; the
// spans still close at the terminal instant.
func TestTraceChaosFaultEvents(t *testing.T) {
	ts, reg, _ := newServerWith(t, Config{AllowChaos: true})
	st := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1,"chaos":{"panic_after":10}}`)
	final := waitDone(t, ts, st.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	run, _ := reg.Get(st.ID)
	byName := spansByName(t, run)
	exec, ok := byName["execute"]
	if !ok {
		t.Fatal("no execute span")
	}
	var chaosFired, panicEv bool
	for _, e := range exec.Events {
		switch e.Name {
		case "chaos.fired":
			chaosFired = true
			if len(e.Attrs) != 1 || e.Attrs[0].Key != "what" || !strings.HasPrefix(e.Attrs[0].Str, "panic@") {
				t.Errorf("chaos.fired attrs = %+v", e.Attrs)
			}
		case "panic":
			panicEv = true
		}
	}
	if !chaosFired || !panicEv {
		t.Errorf("execute events = %+v, want chaos.fired and panic", exec.Events)
	}
	for _, name := range []string{"run", "queue", "execute"} {
		if byName[name].End.IsZero() {
			t.Errorf("%q span left open after failure", name)
		}
	}
	status := run.Status()
	if got, want := byName["execute"].Duration(), status.Finished.Sub(*status.Started); got != want {
		t.Errorf("failed run execute span %v != finished-started %v", got, want)
	}
}

// TestTraceQueuedCanceledRun: a run canceled straight out of the queue
// closes its queue and root spans at the terminal instant and never opens
// an execute span.
func TestTraceQueuedCanceledRun(t *testing.T) {
	ts, reg, _ := newServerWith(t, Config{MaxRunning: 1, AllowChaos: true})
	blocker := launch(t, ts, stallSpec(""))
	waitState(t, ts, blocker.ID, StateRunning)
	queued := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)
	if code := del(t, ts, queued.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE queued: %d", code)
	}
	waitState(t, ts, queued.ID, StateCanceled)
	if code := del(t, ts, blocker.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE blocker: %d", code)
	}
	waitDone(t, ts, blocker.ID)

	run, _ := reg.Get(queued.ID)
	byName := spansByName(t, run)
	if _, ok := byName["execute"]; ok {
		t.Error("canceled-while-queued run has an execute span")
	}
	status := run.Status()
	if got, want := byName["queue"].Duration(), status.Finished.Sub(status.Created); got != want {
		t.Errorf("canceled queue span %v != finished-created %v", got, want)
	}
	if got, want := byName["run"].Duration(), status.Finished.Sub(status.Created); got != want {
		t.Errorf("canceled run span %v != finished-created %v", got, want)
	}
}

// gatedWriter is an SSE consumer that stalls on its first snapshot write
// until released, modelling a reader too slow for the producer. It
// deliberately offers no write-deadline support, so the handler keeps the
// connection instead of disconnecting it.
type gatedWriter struct {
	gate chan struct{}
	once sync.Once

	mu  sync.Mutex
	buf bytes.Buffer
}

func (g *gatedWriter) Header() http.Header { return http.Header{} }
func (g *gatedWriter) WriteHeader(int)     {}
func (g *gatedWriter) Write(p []byte) (int, error) {
	if bytes.HasPrefix(p, []byte("id:")) {
		g.once.Do(func() { <-g.gate })
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}
func (g *gatedWriter) String() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.String()
}

// sseGap is one gap event's payload: the reader was about to receive
// ordinal From but the ring had already discarded up to Resumed.
type sseGap struct {
	From    int64 `json:"from"`
	Resumed int64 `json:"resumed"`
	Dropped int64 `json:"dropped"`
}

// TestSlowReaderMidStreamGapAccounting: a contrived slow reader — stalled
// on its first snapshot write while the producer laps it — must observe
// gap events whose counts reconcile exactly with the registry's drop
// counter. The invariants hold for every interleaving of subscription vs
// production:
//
//  1. snapshots and gap ranges partition the ordinal space [0, Intervals)
//     in order, with no overlap and no holes, and
//  2. every ring-dropped snapshot is accounted for exactly once: the
//     reader either received it before the ring discarded it, or a gap
//     reported it — received-then-dropped + Σ gap.dropped == the
//     registry's drop counter.
func TestSlowReaderMidStreamGapAccounting(t *testing.T) {
	ts, reg, srv := newServerWith(t, Config{SnapRing: 4})
	st := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1,"interval":200}`)

	gw := &gatedWriter{gate: make(chan struct{})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest("GET", fmt.Sprintf("/runs/%d/stream", st.ID), nil)
		srv.ServeHTTP(gw, req)
	}()

	final := waitDone(t, ts, st.ID)
	if final.SnapshotsDropped == 0 {
		t.Fatalf("ring never dropped (intervals=%d); gap cannot occur", final.Intervals)
	}
	close(gw.gate) // release the reader only after the ring state is frozen
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stream handler never finished")
	}

	run, _ := reg.Get(st.ID)
	dropped := run.SnapshotsDropped()

	// Replay the SSE transcript: snapshot ordinals come from id: lines,
	// gap payloads from the data: line after each gap event.
	var ids []int64
	var gaps []sseGap
	var lastID int64 = -1
	lines := strings.Split(gw.String(), "\n")
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &lastID)
		case line == "event: snapshot":
			ids = append(ids, lastID)
		case line == "event: gap":
			var g sseGap
			if err := json.Unmarshal([]byte(strings.TrimPrefix(lines[i+1], "data: ")), &g); err != nil {
				t.Fatalf("bad gap payload %q: %v", lines[i+1], err)
			}
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		t.Fatalf("slow reader observed no gap event (%d snapshots, %d dropped)", len(ids), dropped)
	}
	if !strings.Contains(gw.String(), "event: end") {
		t.Error("stream missing end event")
	}

	// Invariant 1: walking the transcript in order covers every ordinal
	// exactly once.
	var next int64
	idx, gapIdx := 0, 0
	for _, line := range lines {
		switch line {
		case "event: snapshot":
			if ids[idx] != next {
				t.Fatalf("snapshot ordinal %d, expected %d (hole or overlap)", ids[idx], next)
			}
			next++
			idx++
		case "event: gap":
			g := gaps[gapIdx]
			gapIdx++
			if g.From != next {
				t.Fatalf("gap.from = %d, reader was at ordinal %d", g.From, next)
			}
			if g.Dropped != g.Resumed-g.From {
				t.Fatalf("gap %+v: dropped != resumed-from", g)
			}
			next = g.Resumed
		}
	}
	if next != int64(final.Intervals) {
		t.Errorf("stream covered [0,%d), run produced %d intervals", next, final.Intervals)
	}

	// Invariant 2: reconcile against the registry drop counter. Ordinals
	// below the final ring base (== the drop counter) were all discarded;
	// the reader saw each one either as a delivered snapshot or inside a
	// gap range, never both, never neither.
	var receivedThenDropped, gapDropped int64
	for _, id := range ids {
		if id < dropped {
			receivedThenDropped++
		}
	}
	for _, g := range gaps {
		gapDropped += g.Dropped
	}
	if receivedThenDropped+gapDropped != dropped {
		t.Errorf("received-then-dropped %d + gap-dropped %d != registry drop counter %d",
			receivedThenDropped, gapDropped, dropped)
	}

	// The gaps are also on the run's trace, as events on the sse.stream
	// span, with the same counts in the same order.
	var gapEvents []span.Event
	for _, d := range run.TraceSpans() {
		if d.Name != "sse.stream" {
			continue
		}
		if d.ParentID != 0 {
			t.Error("sse.stream span must be a root (streams outlive the run span)")
		}
		for _, e := range d.Events {
			if e.Name == "gap" {
				gapEvents = append(gapEvents, e)
			}
		}
	}
	if len(gapEvents) != len(gaps) {
		t.Fatalf("got %d gap span events, stream had %d gaps", len(gapEvents), len(gaps))
	}
	for i, e := range gapEvents {
		for _, a := range e.Attrs {
			switch a.Key {
			case "from":
				if a.Int != gaps[i].From {
					t.Errorf("gap %d span from attr = %d, want %d", i, a.Int, gaps[i].From)
				}
			case "resumed":
				if a.Int != gaps[i].Resumed {
					t.Errorf("gap %d span resumed attr = %d, want %d", i, a.Int, gaps[i].Resumed)
				}
			case "dropped":
				if a.Int != gaps[i].Dropped {
					t.Errorf("gap %d span dropped attr = %d, want %d", i, a.Int, gaps[i].Dropped)
				}
			}
		}
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}
func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestLogCorrelation: every run-lifecycle log line carries run_id and
// trace_id, so a grep on either reconstructs one run's whole story.
func TestLogCorrelation(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	reg := NewRegistryWith(Config{MaxRunning: 1, AllowChaos: true}, logger)
	srv := NewServer(reg, logger)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	blocker := launch(t, ts, stallSpec(""))
	waitState(t, ts, blocker.ID, StateRunning)
	queued := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)
	del(t, ts, queued.ID)
	waitState(t, ts, queued.ID, StateCanceled)
	del(t, ts, blocker.ID)
	waitDone(t, ts, blocker.ID)

	// The terminal log line lands just after the state flip; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), `msg="run canceled"`) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	lifecycle := []string{
		`msg="run launched"`, `msg="run queued"`,
		`msg="queued run canceled"`, `msg="run canceled"`,
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		for _, msg := range lifecycle {
			if !strings.Contains(line, msg) {
				continue
			}
			seen[msg] = true
			if !strings.Contains(line, "run_id=") {
				t.Errorf("log line lacks run_id: %s", line)
			}
			if !strings.Contains(line, "trace_id=") {
				t.Errorf("log line lacks trace_id: %s", line)
			}
		}
	}
	for _, msg := range lifecycle {
		if !seen[msg] {
			t.Errorf("lifecycle event %s never logged", msg)
		}
	}
}
