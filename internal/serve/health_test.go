package serve

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestHealthzAlwaysLive: liveness is decoupled from readiness — /healthz
// answers 200 while booting, while ready and while draining.
func TestHealthzAlwaysLive(t *testing.T) {
	ts, reg := newTestServer(t)
	check := func(phase string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/healthz during %s: status %d, want 200", phase, resp.StatusCode)
		}
	}
	reg.SetReady(false)
	check("boot")
	reg.SetReady(true)
	check("ready")
	reg.Drain(time.Second)
	check("draining")
}

// TestReadyzLifecycle: /readyz is 503 with a Retry-After before boot
// replay completes and after draining starts, 200 in between.
func TestReadyzLifecycle(t *testing.T) {
	ts, reg := newTestServer(t)
	get := func() *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		_ = body
		return resp
	}

	reg.SetReady(false)
	if resp := get(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while booting: status %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz 503 missing Retry-After")
	}

	reg.SetReady(true)
	if resp := get(); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz when ready: status %d, want 200", resp.StatusCode)
	}

	reg.Drain(time.Second)
	if resp := get(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz draining 503 missing Retry-After")
	}
}

// TestReadyzReasons: the 503 body names the phase, so probes and humans
// can tell a booting server from a draining one.
func TestReadyzReasons(t *testing.T) {
	_, reg := newTestServer(t)
	reg.SetReady(false)
	if ready, reason := reg.Readiness(); ready || reason != "booting" {
		t.Fatalf("booting: ready=%v reason=%q", ready, reason)
	}
	reg.SetReady(true)
	if ready, _ := reg.Readiness(); !ready {
		t.Fatal("ready flag did not take")
	}
	reg.Drain(time.Second)
	if ready, reason := reg.Readiness(); ready || reason != "draining" {
		t.Fatalf("draining: ready=%v reason=%q", ready, reason)
	}
}

// TestLaunchBackpressureRetryAfter: both 429 (queue full) and 503
// (draining) advise Retry-After derived from the shared backoff policy.
func TestLaunchBackpressureRetryAfter(t *testing.T) {
	ts, reg := newTestServerWith(t, Config{MaxRunning: 1, MaxQueue: 1, AllowChaos: true})
	// Stall the slot and fill the queue.
	launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1,"chaos":{"stall_after":1,"stall_ms":30000}}`)
	launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":2}`)

	post := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/runs", "application/json",
			strings.NewReader(`{"workload":"mst","config":"CPP","functional":true,"scale":3}`))
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		return resp
	}

	if resp := post(); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}

	go reg.Drain(5 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := post()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 missing Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry never started draining (last status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
