package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cppcache/internal/backoff"
)

// DefaultDashboardSampleInterval is the cadence of /dashboard/stream
// samples when the Server does not override it.
const DefaultDashboardSampleInterval = time.Second

// DefaultDashboardRing bounds the retained dashboard samples (~6 min at
// the default cadence): enough for an SSE reconnect to resume seamlessly,
// bounded so an idle server never grows.
const DefaultDashboardRing = 360

// dashSample is one periodic fleet-level observation pushed over
// /dashboard/stream. Instructions and traffic are cumulative sums over the
// retained runs; the dashboard differentiates consecutive samples to plot
// throughput, so a single slow consumer never needs server-side rate
// state.
type dashSample struct {
	T            time.Time      `json:"t"`
	States       map[string]int `json:"states"`
	Running      int            `json:"running"`
	QueueDepth   int            `json:"queue_depth"`
	Instructions int64          `json:"instructions"`
	TrafficWords float64        `json:"traffic_words"`
	FleetRuns    int            `json:"fleet_runs"`
	LedgerErrors int64          `json:"ledger_errors"`
	MemoHits     int64          `json:"memo_hits"`
	MemoMisses   int64          `json:"memo_misses"`
	SweepsActive int            `json:"sweeps_active"`
	SweepsTotal  int            `json:"sweeps_total"`
}

// sampleFleet takes one dashboard sample from the registry.
func (s *Server) sampleFleet() dashSample {
	c := s.reg.Counters()
	sm := dashSample{
		T:            time.Now(),
		States:       map[string]int{},
		Running:      c.Running,
		QueueDepth:   c.QueueDepth,
		FleetRuns:    s.reg.fleetLen(),
		LedgerErrors: c.LedgerErrors,
		MemoHits:     c.MemoHits,
		MemoMisses:   c.MemoMisses,
	}
	for _, st := range States() {
		sm.States[string(st)] = 0
	}
	for _, run := range s.reg.Runs() {
		st := run.Status()
		sm.States[string(st.State)]++
		sm.Instructions += st.Totals.Instructions
		sm.TrafficWords += st.Totals.TrafficWords()
	}
	for _, sw := range s.reg.Sweeps() {
		sm.SweepsTotal++
		if !sw.terminal() {
			sm.SweepsActive++
		}
	}
	return sm
}

// dashSampler is the shared sample feed behind /dashboard/stream. Samples
// carry global ordinals (SSE event ids) and live in a bounded ring, so a
// client reconnecting with Last-Event-ID resumes exactly where it left
// off — or gets an explicit gap event when the ring has dropped its
// prefix, mirroring the per-run stream's gap accounting. The sampling
// goroutine runs only while at least one subscriber is connected; the
// ring and its base ordinal survive idle periods so ordinals never move
// backwards within a server's lifetime.
type dashSampler struct {
	s *Server

	mu      sync.Mutex
	ring    []dashSample
	base    int // ordinal of ring[0]
	subs    int
	changed chan struct{}
	stop    chan struct{} // non-nil while the sampling goroutine runs
}

func newDashSampler(s *Server) *dashSampler {
	return &dashSampler{s: s, changed: make(chan struct{})}
}

// subscribe registers a consumer, starting the sampling goroutine on the
// first one.
func (d *dashSampler) subscribe() {
	d.mu.Lock()
	d.subs++
	if d.subs == 1 {
		d.stop = make(chan struct{})
		go d.run(d.stop)
	}
	d.mu.Unlock()
}

// unsubscribe deregisters a consumer, stopping the sampling goroutine
// with the last one.
func (d *dashSampler) unsubscribe() {
	d.mu.Lock()
	d.subs--
	if d.subs == 0 && d.stop != nil {
		close(d.stop)
		d.stop = nil
	}
	d.mu.Unlock()
}

// run samples immediately (so a fresh subscriber sees data without
// waiting a full interval), then on every tick until stopped.
func (d *dashSampler) run(stop chan struct{}) {
	tick := time.NewTicker(d.s.dashboardSampleInterval())
	defer tick.Stop()
	d.append(d.s.sampleFleet())
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			d.append(d.s.sampleFleet())
		}
	}
}

func (d *dashSampler) append(sm dashSample) {
	max := d.s.dashboardRing()
	d.mu.Lock()
	d.ring = append(d.ring, sm)
	for len(d.ring) > max {
		d.ring = d.ring[1:]
		d.base++
	}
	close(d.changed)
	d.changed = make(chan struct{})
	d.mu.Unlock()
}

// from returns a copy of the retained samples at ordinal next and later,
// the ordinal the copy actually starts at (greater than next when the
// ring dropped the requested prefix; clamped back to the head when next
// is beyond anything published, e.g. a Last-Event-ID from a previous
// server life), and a channel closed on the next append.
func (d *dashSampler) from(next int) (samples []dashSample, from int, changed <-chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	from = next
	if from < d.base {
		from = d.base
	}
	if head := d.base + len(d.ring); from > head {
		from = head
	}
	if idx := from - d.base; idx < len(d.ring) {
		samples = append([]dashSample(nil), d.ring[idx:]...)
	}
	return samples, from, d.changed
}

// fleetLen returns how many terminal records the fleet rollup holds.
func (g *Registry) fleetLen() int { return g.fleet.Len() }

// dashboardSampleInterval returns the /dashboard/stream cadence in effect.
func (s *Server) dashboardSampleInterval() time.Duration {
	if s.DashboardSampleInterval > 0 {
		return s.DashboardSampleInterval
	}
	return DefaultDashboardSampleInterval
}

// dashboardRing returns the sample-ring bound in effect.
func (s *Server) dashboardRing() int {
	if s.DashboardRing > 0 {
		return s.DashboardRing
	}
	return DefaultDashboardRing
}

// handleDashboardStream is GET /dashboard/stream: server-sent events
// carrying one fleet-level sample per interval (run counts by state, queue
// depth, cumulative instruction and traffic sums, ledger size, memo hits,
// active sweeps). Event ids are global sample ordinals from the shared
// sampler ring, so a client reconnecting with Last-Event-ID resumes
// without re-receiving samples it already has — and receives an explicit
// "gap" event when the bounded ring has dropped its requested prefix,
// exactly like the per-run snapshot stream. Every write runs under a
// deadline and a consumer that cannot keep up is disconnected and counted
// rather than parking the handler goroutine.
func (s *Server) handleDashboardStream(w http.ResponseWriter, r *http.Request) {
	next := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if id, err := strconv.Atoi(v); err == nil && id >= 0 {
			next = id + 1
		}
	}
	fl, canFlush := w.(http.Flusher)
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	s.dash.subscribe()
	defer s.dash.unsubscribe()

	push := func(emit func() error) bool {
		rc.SetWriteDeadline(time.Now().Add(s.streamWriteTimeout()))
		if err := emit(); err != nil {
			s.reg.CountSlowStream()
			s.log.Warn("slow dashboard consumer disconnected", "err", err)
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}

	if !push(func() error {
		_, err := fmt.Fprintf(w, "retry: %d\n\n", backoff.DefaultPolicy.Delay(1).Milliseconds())
		return err
	}) {
		return
	}

	for {
		samples, from, changed := s.dash.from(next)
		if from > next {
			if !push(func() error {
				_, err := fmt.Fprintf(w, "event: gap\ndata: {\"from\":%d,\"resumed\":%d,\"dropped\":%d}\n\n",
					next, from, from-next)
				return err
			}) {
				return
			}
		}
		// Adopt the sampler's ordinal in both directions: forward past a
		// ring-dropped prefix (the gap above), or backward when the client's
		// Last-Event-ID is beyond anything published (stale id from a
		// previous server life).
		next = from
		for _, sm := range samples {
			data, err := json.Marshal(sm)
			if err != nil {
				return
			}
			id := next
			if !push(func() error {
				_, err := fmt.Fprintf(w, "id: %d\nevent: sample\ndata: %s\n\n", id, data)
				return err
			}) {
				return
			}
			next++
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleDashboard is GET /dashboard: the live observatory page. One
// self-contained HTML document — inline CSS and JS, no external assets or
// libraries — so it renders from an air-gapped lab box. The page follows
// the stat-tiles + sparklines + tables form: headline numbers up top, two
// single-series sparklines (instruction throughput, queue depth) fed by
// /dashboard/stream, the fleet rollup and recent runs below, every row
// linking to /runs/{id}/trace for drill-down.
func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

// dashboardHTML is the observatory page. Chart colors are a validated
// two-slot categorical palette (blue for throughput, orange for queue
// depth, re-stepped for dark mode); text stays in ink tokens, never series
// colors. No backticks anywhere: the page lives in a Go raw string.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>cppcache observatory</title>
<style>
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --bad: #d03b3b;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px 20px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0 0 2px; }
h2 { font-size: 13px; font-weight: 600; color: var(--ink-2); margin: 0 0 8px; text-transform: uppercase; letter-spacing: 0.04em; }
a { color: var(--s1); text-decoration: none; }
a:hover { text-decoration: underline; }
.sub { color: var(--muted); margin: 0 0 16px; font-size: 12px; }
.sub a { color: var(--muted); text-decoration: underline; }
.tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(120px, 1fr)); gap: 10px; margin-bottom: 16px; }
.tile { background: var(--surface); border: 1px solid var(--ring); border-radius: 8px; padding: 10px 12px; }
.tile .v { font-size: 24px; font-weight: 650; }
.tile .k { font-size: 11px; color: var(--muted); text-transform: uppercase; letter-spacing: 0.04em; }
.tile .v.err { color: var(--bad); }
.charts { display: grid; grid-template-columns: repeat(auto-fit, minmax(300px, 1fr)); gap: 10px; margin-bottom: 16px; }
.chart { background: var(--surface); border: 1px solid var(--ring); border-radius: 8px; padding: 10px 12px; position: relative; }
.chart .now { float: right; font-size: 12px; color: var(--ink-2); font-variant-numeric: tabular-nums; }
.chart svg { display: block; width: 100%; height: 72px; }
.tip {
  position: absolute; pointer-events: none; display: none; z-index: 2;
  background: var(--surface); border: 1px solid var(--ring); border-radius: 6px;
  padding: 3px 8px; font-size: 12px; color: var(--ink); white-space: nowrap;
  box-shadow: 0 1px 4px rgba(0,0,0,0.15);
}
.tip .t { color: var(--muted); }
section { background: var(--surface); border: 1px solid var(--ring); border-radius: 8px; padding: 12px; margin-bottom: 16px; }
table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
th { text-align: left; color: var(--muted); font-size: 11px; text-transform: uppercase; letter-spacing: 0.04em; font-weight: 600; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
th.n, td.n { text-align: right; }
td { padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
tr:last-child td { border-bottom: 0; }
.empty { color: var(--muted); padding: 6px 0; }
.state { display: inline-block; padding: 0 6px; border-radius: 9px; border: 1px solid var(--ring); font-size: 12px; color: var(--ink-2); }
</style>
</head>
<body>
<h1>cppcache observatory</h1>
<p class="sub">partial cache line prefetching fleet &middot;
<a href="/fleet">/fleet</a> &middot; <a href="/metrics">/metrics</a> &middot; <a href="/runs">/runs</a></p>

<div class="tiles">
  <div class="tile"><div class="v" id="t-running">&ndash;</div><div class="k">running</div></div>
  <div class="tile"><div class="v" id="t-queued">&ndash;</div><div class="k">queued</div></div>
  <div class="tile"><div class="v" id="t-done">&ndash;</div><div class="k">done</div></div>
  <div class="tile"><div class="v" id="t-failed">&ndash;</div><div class="k">failed</div></div>
  <div class="tile"><div class="v" id="t-fleet">&ndash;</div><div class="k">ledger runs</div></div>
  <div class="tile"><div class="v" id="t-memo">&ndash;</div><div class="k">memo hits</div></div>
  <div class="tile"><div class="v" id="t-sweeps">&ndash;</div><div class="k">active sweeps</div></div>
  <div class="tile"><div class="v" id="t-lederr">&ndash;</div><div class="k">ledger errors</div></div>
</div>

<div class="charts">
  <div class="chart" id="c-thru">
    <span class="now" id="thru-now"></span>
    <h2>Throughput (traffic words/s)</h2>
    <svg viewBox="0 0 600 72" preserveAspectRatio="none" aria-label="memory traffic throughput sparkline"></svg>
    <div class="tip"></div>
  </div>
  <div class="chart" id="c-queue">
    <span class="now" id="queue-now"></span>
    <h2>Queue depth</h2>
    <svg viewBox="0 0 600 72" preserveAspectRatio="none" aria-label="queue depth sparkline"></svg>
    <div class="tip"></div>
  </div>
  <div class="chart" id="c-memo">
    <span class="now" id="memo-now"></span>
    <h2>Memo hits (cumulative)</h2>
    <svg viewBox="0 0 600 72" preserveAspectRatio="none" aria-label="memo hit sparkline"></svg>
    <div class="tip"></div>
  </div>
</div>

<section>
  <h2>Sweeps</h2>
  <table id="sweeps">
    <thead><tr>
      <th class="n">id</th><th>state</th><th class="n">done</th><th class="n">total</th>
      <th class="n">memoized</th><th>degraded</th>
    </tr></thead>
    <tbody><tr><td colspan="6" class="empty">no sweeps yet</td></tr></tbody>
  </table>
</section>

<section>
  <h2>Fleet rollup</h2>
  <table id="fleet">
    <thead><tr>
      <th>workload</th><th>config</th><th>compressor</th><th>state</th>
      <th class="n">runs</th><th class="n">p50 exec</th><th class="n">p95 exec</th>
      <th class="n">traffic/kinst</th><th>exemplar</th>
    </tr></thead>
    <tbody><tr><td colspan="9" class="empty">no terminal runs yet</td></tr></tbody>
  </table>
</section>

<section>
  <h2>Recent runs</h2>
  <table id="runs">
    <thead><tr>
      <th class="n">id</th><th>workload</th><th>config</th><th>compressor</th>
      <th>state</th><th class="n">intervals</th><th class="n">traffic words</th><th>trace</th>
    </tr></thead>
    <tbody><tr><td colspan="8" class="empty">no runs yet</td></tr></tbody>
  </table>
</section>

<script>
(function () {
  "use strict";
  var MAX = 120; // retained samples per sparkline (~2 min at 1 Hz)
  var samples = [];

  function esc(s) {
    return String(s).replace(/[&<>"]/g, function (c) {
      return { "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c];
    });
  }
  function fmt(n) {
    if (n == null || isNaN(n)) return "–";
    if (Math.abs(n) >= 1e9) return (n / 1e9).toFixed(1) + "G";
    if (Math.abs(n) >= 1e6) return (n / 1e6).toFixed(1) + "M";
    if (Math.abs(n) >= 1e4) return (n / 1e3).toFixed(1) + "k";
    return Math.round(n).toLocaleString();
  }
  function text(id, v) { document.getElementById(id).textContent = v; }

  // spark renders one single-series line into a chart card: a 2px line on
  // a recessive baseline, with a crosshair tooltip on hover. points is an
  // array of {t: Date, v: number}.
  function spark(cardId, points, color, unit) {
    var card = document.getElementById(cardId);
    var svg = card.querySelector("svg");
    var W = 600, H = 72, PAD = 4;
    var max = 0;
    for (var i = 0; i < points.length; i++) max = Math.max(max, points[i].v);
    var span = Math.max(points.length - 1, 1);
    function px(i) { return PAD + (W - 2 * PAD) * i / span; }
    function py(v) {
      if (max <= 0) return H - PAD;
      return H - PAD - (H - 2 * PAD) * (v / max);
    }
    var d = "";
    for (var j = 0; j < points.length; j++) {
      d += (j ? "L" : "M") + px(j).toFixed(1) + " " + py(points[j].v).toFixed(1);
    }
    var baseline = '<line x1="0" y1="' + (H - PAD) + '" x2="' + W + '" y2="' + (H - PAD) +
      '" stroke="var(--axis)" stroke-width="1" vector-effect="non-scaling-stroke"/>';
    var line = points.length > 1
      ? '<path d="' + d + '" fill="none" stroke="' + color +
        '" stroke-width="2" stroke-linejoin="round" vector-effect="non-scaling-stroke"/>'
      : "";
    svg.innerHTML = baseline + line;

    if (!card._hover) {
      card._hover = true;
      var tip = card.querySelector(".tip");
      svg.addEventListener("mousemove", function (ev) {
        var pts = card._points || [];
        if (pts.length < 2) return;
        var r = svg.getBoundingClientRect();
        var i = Math.round((ev.clientX - r.left) / r.width * (pts.length - 1));
        i = Math.max(0, Math.min(pts.length - 1, i));
        var p = pts[i];
        tip.innerHTML = "<b>" + fmt(p.v) + "</b> " + esc(card._unit || "") +
          ' <span class="t">' + p.t.toTimeString().slice(0, 8) + "</span>";
        tip.style.display = "block";
        var x = ev.clientX - r.left + 12, maxX = r.width - tip.offsetWidth - 4;
        tip.style.left = Math.min(x, Math.max(maxX, 0)) + "px";
        tip.style.top = "34px";
      });
      svg.addEventListener("mouseleave", function () { tip.style.display = "none"; });
    }
    card._points = points;
    card._unit = unit;
  }

  function onSample(sm) {
    samples.push(sm);
    if (samples.length > MAX + 1) samples.shift();
    text("t-running", sm.running);
    text("t-queued", sm.queue_depth);
    text("t-done", sm.states.done || 0);
    text("t-failed", (sm.states.failed || 0) + (sm.states.canceled || 0));
    text("t-fleet", sm.fleet_runs);
    text("t-memo", sm.memo_hits || 0);
    text("t-sweeps", sm.sweeps_active || 0);
    var el = document.getElementById("t-lederr");
    el.textContent = sm.ledger_errors;
    el.className = sm.ledger_errors > 0 ? "v err" : "v";

    // Throughput differentiates the cumulative traffic-word sum, which
    // both pipeline and functional runs account (instruction counts exist
    // only in pipeline mode, so they would flatline for functional runs).
    var thru = [], queue = [], memo = [];
    for (var i = 1; i < samples.length; i++) {
      var a = samples[i - 1], b = samples[i];
      var dt = (new Date(b.t) - new Date(a.t)) / 1000;
      var rate = dt > 0 ? Math.max(0, (b.traffic_words - a.traffic_words) / dt) : 0;
      thru.push({ t: new Date(b.t), v: rate });
      queue.push({ t: new Date(b.t), v: b.queue_depth });
      memo.push({ t: new Date(b.t), v: b.memo_hits || 0 });
    }
    if (thru.length) {
      text("thru-now", fmt(thru[thru.length - 1].v) + "/s");
      text("queue-now", String(queue[queue.length - 1].v));
      text("memo-now", String(memo[memo.length - 1].v));
    }
    spark("c-thru", thru, "var(--s1)", "words/s");
    spark("c-queue", queue, "var(--s2)", "queued");
    spark("c-memo", memo, "var(--s1)", "hits");
  }

  function traceLink(id, traceId) {
    var short = traceId ? esc(String(traceId).slice(0, 8)) : "trace";
    return '<a href="/runs/' + id + '/trace">' + short + "</a>";
  }

  function renderFleet(agg) {
    var rows = "";
    var groups = agg.groups || [];
    for (var i = 0; i < groups.length; i++) {
      var g = groups[i];
      var ex = g.stages && g.stages.execute;
      var tr = g.traffic_per_kilo_inst;
      var exemplar = "–";
      if (ex && ex.buckets) {
        for (var j = 0; j < ex.buckets.length; j++) {
          if (ex.buckets[j].exemplar_run_id) {
            exemplar = traceLink(ex.buckets[j].exemplar_run_id, ex.buckets[j].exemplar_trace_id);
            break;
          }
        }
      }
      rows += "<tr><td>" + esc(g.workload) + "</td><td>" + esc(g.config) +
        "</td><td>" + esc(g.compressor) + "</td><td><span class=\"state\">" + esc(g.state) +
        "</span></td><td class=\"n\">" + g.runs +
        "</td><td class=\"n\">" + (ex ? (ex.p50_seconds * 1000).toFixed(1) + "ms" : "–") +
        "</td><td class=\"n\">" + (ex ? (ex.p95_seconds * 1000).toFixed(1) + "ms" : "–") +
        "</td><td class=\"n\">" + (tr ? tr.mean.toFixed(1) : "–") +
        "</td><td>" + exemplar + "</td></tr>";
    }
    if (!rows) rows = '<tr><td colspan="9" class="empty">no terminal runs yet</td></tr>';
    document.querySelector("#fleet tbody").innerHTML = rows;
  }

  function renderRuns(list) {
    var rows = "";
    for (var i = list.length - 1; i >= 0 && rows.split("<tr>").length <= 20; i--) {
      var r = list[i];
      rows += "<tr><td class=\"n\"><a href=\"/runs/" + r.id + "\">" + r.id + "</a></td><td>" +
        esc(r.spec.workload) + "</td><td>" + esc(r.spec.config) + "</td><td>" +
        esc(r.spec.compressor || "") + "</td><td><span class=\"state\">" + esc(r.state) +
        "</span></td><td class=\"n\">" + r.intervals +
        "</td><td class=\"n\">" + fmt((r.totals.mem_read_halves + r.totals.mem_write_halves) / 2) +
        "</td><td>" + traceLink(r.id, r.trace_id) + "</td></tr>";
    }
    if (!rows) rows = '<tr><td colspan="8" class="empty">no runs yet</td></tr>';
    document.querySelector("#runs tbody").innerHTML = rows;
  }

  function renderSweeps(list) {
    var rows = "";
    for (var i = 0; i < list.length && i < 20; i++) {
      var sw = list[i];
      var done = (sw.counts && sw.counts.done) || 0;
      rows += "<tr><td class=\"n\"><a href=\"/sweeps/" + sw.id + "\">" + sw.id +
        "</a></td><td><span class=\"state\">" + esc(sw.state) +
        "</span></td><td class=\"n\">" + done +
        "</td><td class=\"n\">" + sw.total +
        "</td><td class=\"n\">" + (sw.memoized || 0) +
        "</td><td>" + (sw.degraded ? "yes" : "") + "</td></tr>";
    }
    if (!rows) rows = '<tr><td colspan="6" class="empty">no sweeps yet</td></tr>';
    document.querySelector("#sweeps tbody").innerHTML = rows;
  }

  function refreshTables() {
    fetch("/fleet").then(function (r) { return r.json(); }).then(renderFleet)["catch"](function () {});
    fetch("/runs").then(function (r) { return r.json(); }).then(renderRuns)["catch"](function () {});
    fetch("/sweeps").then(function (r) { return r.json(); }).then(renderSweeps)["catch"](function () {});
  }

  var es = new EventSource("/dashboard/stream");
  es.addEventListener("sample", function (ev) {
    try { onSample(JSON.parse(ev.data)); } catch (e) { /* skip bad frame */ }
  });
  refreshTables();
  setInterval(refreshTables, 5000);
})();
</script>
</body>
</html>
`
