package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"cppcache"
	"cppcache/internal/chaos"
	"cppcache/internal/obs"
)

// Lifecycle tests: every transition of the run state machine
// (queued → running → {done, failed, canceled}), cancellation while
// queued, deadline expiry mid-run, panic isolation mid-run, admission
// backpressure, snapshot-ring drop accounting, retention eviction, and
// the fault-isolation guarantee that a chaotic neighbour never perturbs a
// healthy run. All of these hold under -race (CI runs this package with
// it).

// newServerWith builds a test server over a registry with explicit limits.
func newServerWith(t *testing.T, cfg Config) (*httptest.Server, *Registry, *Server) {
	t.Helper()
	reg := NewRegistryWith(cfg, nil)
	srv := NewServer(reg, nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, reg, srv
}

// stallSpec launches a run parked by a chaos stall at its first fault
// point: deterministically long-running until canceled or timed out.
func stallSpec(extra string) string {
	return `{"workload":"treeadd","config":"CPP","functional":true,"scale":1,` +
		`"chaos":{"stall_after":1,"stall_ms":60000}` + extra + `}`
}

// waitState polls until the run reaches the wanted state.
func waitState(t *testing.T, ts *httptest.Server, id int, want RunState) RunStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var st RunStatus
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/runs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("run %d reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %d stuck in %s, want %s", id, st.State, want)
	return RunStatus{}
}

// del issues DELETE /runs/{id} and returns the status code.
func del(t *testing.T, ts *httptest.Server, id int) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/runs/%d", ts.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestCancelRunningRun: DELETE on a running (chaos-stalled) job moves it
// to canceled promptly — the stall aborts on context cancellation and the
// simulator's cooperative check fires.
func TestCancelRunningRun(t *testing.T) {
	ts, _, _ := newServerWith(t, Config{AllowChaos: true})
	st := launch(t, ts, stallSpec(""))
	waitState(t, ts, st.ID, StateRunning)
	if code := del(t, ts, st.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE running run: status %d, want 202", code)
	}
	final := waitState(t, ts, st.ID, StateCanceled)
	if !strings.Contains(final.Error, "canceled") {
		t.Errorf("canceled run error = %q", final.Error)
	}
	if final.Finished == nil || final.Started == nil {
		t.Error("canceled run missing started/finished timestamps")
	}
	// A second DELETE on a terminal run conflicts.
	if code := del(t, ts, st.ID); code != http.StatusConflict {
		t.Errorf("DELETE terminal run: status %d, want 409", code)
	}
}

// TestCancelWhileQueued: with one worker slot occupied by a stalled run,
// a queued run can be canceled before it ever starts; the stalled run is
// then canceled too and the queue drains.
func TestCancelWhileQueued(t *testing.T) {
	ts, reg, _ := newServerWith(t, Config{MaxRunning: 1, AllowChaos: true})
	first := launch(t, ts, stallSpec(""))
	waitState(t, ts, first.ID, StateRunning)
	second := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)
	if got := waitState(t, ts, second.ID, StateQueued); got.Started != nil {
		t.Errorf("queued run has a start time: %+v", got)
	}
	if c := reg.Counters(); c.QueueDepth != 1 {
		t.Fatalf("queue depth = %d, want 1", c.QueueDepth)
	}
	if code := del(t, ts, second.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE queued run: status %d, want 202", code)
	}
	canceled := waitState(t, ts, second.ID, StateCanceled)
	if canceled.Started != nil {
		t.Error("canceled-while-queued run claims to have started")
	}
	// Unblock the stalled run and make sure the scheduler survives the
	// canceled queue entry.
	del(t, ts, first.ID)
	waitState(t, ts, first.ID, StateCanceled)
	third := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)
	if got := waitDone(t, ts, third.ID); got.State != StateDone {
		t.Fatalf("post-cancel launch: state %s (err %q)", got.State, got.Error)
	}
}

// TestDeadlineExpiryMidRun: a chaos-stalled run with a tiny timeout_sec
// fails with a deadline message instead of hogging its worker forever.
func TestDeadlineExpiryMidRun(t *testing.T) {
	ts, _, _ := newServerWith(t, Config{AllowChaos: true})
	st := launch(t, ts, stallSpec(`,"timeout_sec":0.2`))
	final := waitDone(t, ts, st.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Errorf("deadline failure error = %q", final.Error)
	}
}

// TestPanicMidRunIsIsolated: an injected panic becomes a failed run with
// the stack captured, the panic counter ticks, and the service keeps
// serving — a concurrently launched healthy run still completes.
func TestPanicMidRunIsIsolated(t *testing.T) {
	ts, reg, _ := newServerWith(t, Config{AllowChaos: true})
	bad := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1,"chaos":{"panic_after":30}}`)
	good := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)

	badFinal := waitDone(t, ts, bad.ID)
	if badFinal.State != StateFailed {
		t.Fatalf("panicked run state = %s, want failed", badFinal.State)
	}
	if !strings.Contains(badFinal.Error, "panic: chaos: injected panic") ||
		!strings.Contains(badFinal.Error, "goroutine") {
		t.Errorf("panicked run error missing panic message or stack:\n%.300s", badFinal.Error)
	}
	if goodFinal := waitDone(t, ts, good.ID); goodFinal.State != StateDone {
		t.Fatalf("healthy neighbour state = %s (err %q)", goodFinal.State, goodFinal.Error)
	}
	if c := reg.Counters(); c.PanicsRecovered != 1 {
		t.Errorf("panics recovered = %d, want 1", c.PanicsRecovered)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v / %v", resp, err)
	}
	resp.Body.Close()
}

// TestAdmissionBackpressure: beyond MaxRunning running and MaxQueue
// queued runs, POST /runs is 429 with Retry-After; capacity freed by
// cancellation admits work again.
func TestAdmissionBackpressure(t *testing.T) {
	ts, reg, _ := newServerWith(t, Config{MaxRunning: 1, MaxQueue: 1, AllowChaos: true})
	first := launch(t, ts, stallSpec(""))
	waitState(t, ts, first.ID, StateRunning)
	second := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)

	resp, err := http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"workload":"treeadd","functional":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity launch: status %d body %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if c := reg.Counters(); c.RejectedQueueFull != 1 {
		t.Errorf("rejected counter = %d, want 1", c.RejectedQueueFull)
	}

	del(t, ts, first.ID)
	waitState(t, ts, first.ID, StateCanceled)
	if got := waitDone(t, ts, second.ID); got.State != StateDone {
		t.Fatalf("queued run after capacity freed: %s (err %q)", got.State, got.Error)
	}
	third := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)
	if got := waitDone(t, ts, third.ID); got.State != StateDone {
		t.Fatalf("post-backpressure launch: %s", got.State)
	}
}

// TestSnapshotRingDropsAndGapEvent: a tiny ring drops old snapshots with
// accounting, and a late stream subscriber is told about the gap
// explicitly before the retained suffix replays.
func TestSnapshotRingDropsAndGapEvent(t *testing.T) {
	ts, _, _ := newServerWith(t, Config{SnapRing: 4})
	st := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1,"interval":200}`)
	final := waitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s", final.State)
	}
	if final.SnapshotsDropped == 0 || final.Intervals <= 4 {
		t.Fatalf("expected ring drops: intervals=%d dropped=%d", final.Intervals, final.SnapshotsDropped)
	}
	if final.SnapshotsDropped != int64(final.Intervals-4) {
		t.Errorf("drop accounting: %d dropped of %d intervals with ring 4", final.SnapshotsDropped, final.Intervals)
	}

	resp, err := http.Get(fmt.Sprintf("%s/runs/%d/stream", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if !strings.Contains(body, "event: gap") {
		t.Errorf("stream over a dropped prefix carries no gap event:\n%.400s", body)
	}
	wantGap := fmt.Sprintf(`{"from":0,"resumed":%d,"dropped":%d}`, final.Intervals-4, final.Intervals-4)
	if !strings.Contains(body, wantGap) {
		t.Errorf("gap payload missing %s:\n%.400s", wantGap, body)
	}
	if got := strings.Count(body, "event: snapshot"); got != 4 {
		t.Errorf("streamed %d snapshots after gap, want 4 (ring size)", got)
	}
	if !strings.Contains(body, "event: end") {
		t.Error("stream missing end event")
	}
}

// TestRetentionEviction: beyond Retain terminal runs the oldest are
// evicted (404 afterwards) and counted; /metrics still parses.
func TestRetentionEviction(t *testing.T) {
	ts, reg, _ := newServerWith(t, Config{Retain: 1})
	var ids []int
	for i := 0; i < 3; i++ {
		st := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)
		waitDone(t, ts, st.ID)
		ids = append(ids, st.ID)
	}
	if c := reg.Counters(); c.RunsEvicted != 2 {
		t.Fatalf("evicted = %d, want 2", c.RunsEvicted)
	}
	for _, id := range ids[:2] {
		resp, err := http.Get(fmt.Sprintf("%s/runs/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted run %d: status %d, want 404", id, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := parseExposition(t, readAll(t, resp))
	if metrics["cppserved_runs_evicted_total"] != 2 {
		t.Errorf("evicted metric = %v", metrics["cppserved_runs_evicted_total"])
	}
	if metrics[`cppserved_runs{state="done"}`] != 1 {
		t.Errorf("retained done runs = %v, want 1", metrics[`cppserved_runs{state="done"}`])
	}
}

// TestChaosNeighbourDoesNotPerturbHealthyRun is the isolation guarantee:
// a healthy run sharing the registry with a panicking chaos run produces
// results and a snapshot series byte-identical to the same spec run solo
// through the library API.
func TestChaosNeighbourDoesNotPerturbHealthyRun(t *testing.T) {
	const interval = 5000
	baseRes, baseObs, err := cppcache.RunObserved("olden.treeadd", cppcache.CPP,
		cppcache.Options{Scale: 1, FunctionalOnly: true},
		cppcache.ObserveOptions{IntervalCycles: interval})
	if err != nil {
		t.Fatal(err)
	}

	ts, reg, _ := newServerWith(t, Config{MaxRunning: 2, AllowChaos: true})
	bad := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1,"chaos":{"panic_after":10}}`)
	good := launch(t, ts, fmt.Sprintf(`{"workload":"treeadd","functional":true,"scale":1,"interval":%d}`, interval))
	if st := waitDone(t, ts, bad.ID); st.State != StateFailed {
		t.Fatalf("chaos run state = %s", st.State)
	}
	final := waitDone(t, ts, good.ID)
	if final.State != StateDone {
		t.Fatalf("healthy run state = %s (err %q)", final.State, final.Error)
	}
	if final.Result == nil || *final.Result != baseRes {
		t.Errorf("healthy run result diverged from solo baseline\n  solo: %+v\n  got:  %+v", baseRes, final.Result)
	}
	run, _ := reg.Get(good.ID)
	snaps, from, _, _ := run.SnapsFrom(0)
	if from != 0 {
		t.Fatalf("healthy run lost snapshots: base %d", from)
	}
	if !reflect.DeepEqual(snaps, baseObs.Snapshots()) {
		t.Error("healthy run snapshot series diverged from solo baseline")
	}
	var sum obs.Snapshot
	for _, s := range snaps {
		addSnapshot(&sum, s)
	}
	if sum != final.Totals {
		t.Error("snapshot sum != served totals")
	}
}

// TestSlowStreamConsumerDisconnected: an SSE consumer that cannot take a
// write within the deadline is dropped and counted instead of pinning the
// handler.
func TestSlowStreamConsumerDisconnected(t *testing.T) {
	ts, reg, srv := newServerWith(t, Config{})
	// Expire every stream write instantly: the first event push must fail
	// against a real network conn, disconnecting the consumer.
	srv.StreamWriteTimeout = time.Nanosecond
	st := launch(t, ts, `{"workload":"treeadd","functional":true,"scale":1}`)
	waitDone(t, ts, st.ID)
	resp, err := http.Get(fmt.Sprintf("%s/runs/%d/stream", ts.URL, st.ID))
	if err == nil {
		readAll(t, resp) // server closes mid-stream; body may be empty
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counters().SlowStreamsDropped > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("slow-stream counter never incremented (= %d)", reg.Counters().SlowStreamsDropped)
}

// TestStateTransitionsDirect drives the registry API (no HTTP) through
// every remaining transition detail: queued runs carry no start time,
// Cancel on unknown ids errors, and terminal states are sticky.
func TestStateTransitionsDirect(t *testing.T) {
	reg := NewRegistryWith(Config{MaxRunning: 1, AllowChaos: true}, nil)
	if err := reg.Cancel(42, ""); err == nil {
		t.Error("Cancel(unknown) did not error")
	}
	run, err := reg.Launch(RunSpec{Workload: "treeadd", Functional: true, Scale: 1,
		Chaos: &chaos.Spec{StallAfter: 1, StallMs: 60000}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := reg.Launch(RunSpec{Workload: "treeadd", Functional: true, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if queued.State() != StateQueued {
		t.Fatalf("second run state = %s, want queued", queued.State())
	}
	if err := reg.Cancel(run.ID, "test cancel"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && !queued.State().Terminal() {
		time.Sleep(5 * time.Millisecond)
	}
	if got := queued.State(); got != StateDone {
		t.Fatalf("queued run after slot freed = %s", got)
	}
	if got := run.State(); got != StateCanceled {
		t.Fatalf("canceled run state = %s", got)
	}
	if run.CancelCause() != "test cancel" {
		t.Errorf("cancel cause = %q", run.CancelCause())
	}
	if !reg.Drain(10 * time.Second) {
		t.Error("drain with everything terminal timed out")
	}
}
