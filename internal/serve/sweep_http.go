package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cppcache/internal/backoff"
)

// sweepFromPath resolves the {id} path value to a sweep.
func (s *Server) sweepFromPath(w http.ResponseWriter, r *http.Request) (*Sweep, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad sweep id %q", r.PathValue("id"))
		return nil, false
	}
	sw, ok := s.reg.GetSweep(id)
	if !ok {
		jsonError(w, http.StatusNotFound, "no sweep %d", id)
		return nil, false
	}
	return sw, true
}

// handleSweepLaunch is POST /sweeps: expand the cross-product, admit the
// deduplicated children, answer 202 with the initial status. Bound
// violations and empty/all-invalid products are structured 400s naming
// the offending field; a draining registry is 503 with Retry-After.
func (s *Server) handleSweepLaunch(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		jsonError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	sw, err := s.reg.LaunchSweep(spec)
	if err != nil {
		var se *SpecError
		switch {
		case errors.As(err, &se):
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(se)
		case errors.Is(err, ErrDraining):
			retryAfter(w)
			jsonError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			jsonError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	w.Header().Set("Location", fmt.Sprintf("/sweeps/%d", sw.ID))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSONBody(w, sw.Status())
}

// handleSweepList is GET /sweeps: every retained sweep, newest first.
func (s *Server) handleSweepList(w http.ResponseWriter, _ *http.Request) {
	sweeps := s.reg.Sweeps()
	out := make([]SweepStatus, 0, len(sweeps))
	for i := len(sweeps) - 1; i >= 0; i-- {
		out = append(out, sweeps[i].Status())
	}
	writeJSON(w, out)
}

// handleSweep is GET /sweeps/{id}: the aggregate status with per-child
// states, workers, attempts, digests and skip reasons.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, sw.Status())
}

// handleSweepTable is GET /sweeps/{id}/table: the deterministic TSV
// result table. A sweep still running is 409 — the table is only
// meaningful (and only byte-stable) once every child is terminal.
func (s *Server) handleSweepTable(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFromPath(w, r)
	if !ok {
		return
	}
	if !sw.terminal() {
		jsonError(w, http.StatusConflict, "sweep %d still running; the table is available at completion", sw.ID)
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	fmt.Fprint(w, sw.Table())
}

// handleSweepCancel is DELETE /sweeps/{id}: fan-out cancellation. The
// sweep still finalises asynchronously (children observe the canceled
// context), so the response is 202 with the current status.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFromPath(w, r)
	if !ok {
		return
	}
	if err := s.reg.CancelSweep(sw.ID); err != nil {
		jsonError(w, http.StatusConflict, "%v", err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSONBody(w, sw.Status())
}

// handleSweepStream is GET /sweeps/{id}/stream: SSE progress. Each event
// is the compact progress rollup (state, per-state counts, memo hits,
// degraded flag); the stream closes with an "end" event carrying the full
// terminal status. Event ids count emitted progress events; the retry
// advice line paces reconnects with the shared backoff base.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweepFromPath(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	push := func(emit func() error) bool {
		rc.SetWriteDeadline(time.Now().Add(s.streamWriteTimeout()))
		if err := emit(); err != nil {
			s.reg.CountSlowStream()
			s.log.Warn("slow sweep stream consumer disconnected",
				"sweep_id", sw.ID, "err", err)
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}

	if !push(func() error {
		_, err := fmt.Fprintf(w, "retry: %d\n\n", backoff.DefaultPolicy.Delay(1).Milliseconds())
		return err
	}) {
		return
	}

	id := 0
	for {
		state, changed := sw.wait()
		_, data := sw.progress()
		if !push(func() error {
			_, err := fmt.Fprintf(w, "id: %d\nevent: progress\ndata: %s\n\n", id, data)
			return err
		}) {
			return
		}
		id++
		if state != SweepRunning {
			final, _ := json.Marshal(sw.Status())
			push(func() error {
				_, err := fmt.Fprintf(w, "event: end\ndata: %s\n\n", final)
				return err
			})
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
