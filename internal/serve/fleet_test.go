package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"cppcache/internal/ledger"
	"cppcache/internal/span"
)

// getJSON fetches url and decodes the body into v, failing on non-200.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestFleetConservation is the fleet-level conservation test: the /fleet
// rollup must exactly equal the sums of the constituent runs' registry
// counters and span stage durations — the same invariant /metrics holds
// per run, lifted to the fleet.
func TestFleetConservation(t *testing.T) {
	dir := t.TempDir()
	w, err := ledger.OpenWriter(filepath.Join(dir, "runs.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	reg := NewRegistryWith(Config{MaxRunning: 1, Ledger: w}, nil)
	ts := httptest.NewServer(NewServer(reg, nil))
	defer ts.Close()

	// A slow run holds the single worker slot so the next launch queues;
	// canceling the queued run exercises the Cancel-path ledger record.
	slow := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":64}`)
	queued := launch(t, ts, `{"workload":"treeadd","config":"BCC","compressor":"fpc","functional":true}`)
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/runs/%d", ts.URL, queued.ID), nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	waitDone(t, ts, slow.ID)
	waitDone(t, ts, queued.ID)
	done := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1}`)
	waitDone(t, ts, done.ID)

	var agg ledger.Aggregate
	getJSON(t, ts.URL+"/fleet", &agg)
	if agg.TotalRuns != 3 {
		t.Fatalf("TotalRuns = %d, want 3", agg.TotalRuns)
	}

	// Expected sums straight from the live runs: registry counters and the
	// runs' own closed lifecycle spans.
	var wantInsts, wantMisses int64
	var wantTraffic, wantExec, wantQueue float64
	states := map[string]int64{}
	for _, run := range reg.Runs() {
		if !run.State().Terminal() {
			t.Fatalf("run %d not terminal", run.ID)
		}
		states[string(run.State())]++
		totals := run.Totals()
		wantInsts += totals.Instructions
		wantMisses += totals.L1Misses
		wantTraffic += totals.TrafficWords()
		for _, sp := range run.tracer.Snapshot() {
			switch sp.Name {
			case "execute":
				wantExec += sp.Duration().Seconds()
			case "queue":
				wantQueue += sp.Duration().Seconds()
			}
		}
	}

	var gotRuns, gotInsts, gotMisses int64
	var gotTraffic, gotExec, gotQueue float64
	gotStates := map[string]int64{}
	for _, g := range agg.Groups {
		gotRuns += g.Runs
		gotInsts += g.Instructions
		gotMisses += g.L1Misses
		gotTraffic += g.TrafficWords
		gotStates[g.State] += g.Runs
		if st, ok := g.Stages["execute"]; ok {
			gotExec += st.SumSeconds
		}
		if st, ok := g.Stages["queue"]; ok {
			gotQueue += st.SumSeconds
		}
	}
	if gotRuns != 3 || gotInsts != wantInsts || gotMisses != wantMisses {
		t.Errorf("counter conservation broken: runs %d insts %d/%d misses %d/%d",
			gotRuns, gotInsts, wantInsts, gotMisses, wantMisses)
	}
	if math.Abs(gotTraffic-wantTraffic) > 1e-9 {
		t.Errorf("traffic %g != %g", gotTraffic, wantTraffic)
	}
	if math.Abs(gotExec-wantExec) > 1e-9 || math.Abs(gotQueue-wantQueue) > 1e-9 {
		t.Errorf("stage conservation broken: execute %g/%g queue %g/%g",
			gotExec, wantExec, gotQueue, wantQueue)
	}
	for st, n := range states {
		if gotStates[st] != n {
			t.Errorf("state %s: fleet has %d runs, registry %d", st, gotStates[st], n)
		}
	}
	// The queued-then-canceled run must be in the ledger (canceled either
	// straight out of the queue or just after dispatch).
	if states["canceled"] == 0 {
		t.Errorf("no canceled run recorded: %v", states)
	}

	// Every group exemplar names a retained run whose trace resolves.
	for _, g := range agg.Groups {
		for _, st := range g.Stages {
			for _, b := range st.Buckets {
				if b.ExemplarRun == 0 {
					continue
				}
				resp, err := http.Get(fmt.Sprintf("%s/runs/%d/trace", ts.URL, b.ExemplarRun))
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("exemplar run %d trace: status %d", b.ExemplarRun, resp.StatusCode)
				}
			}
		}
	}

	// Durable round trip: replaying the ledger file and seeding a fresh
	// registry must reproduce the aggregate bit-for-bit (JSON-compared:
	// Go's encoder round-trips float64 exactly).
	recs, stats, err := ledger.Replay(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 0 || len(recs) != 3 {
		t.Fatalf("replay: %d records, %d skipped", len(recs), stats.Skipped)
	}
	for i, rec := range recs {
		if rec.SpecHash == "" || rec.TraceID == "" {
			t.Errorf("record %d missing spec_hash/trace_id: %+v", i, rec)
		}
		if rec.State == string(StateDone) && rec.ResultDigest == "" {
			t.Errorf("done record %d has no result digest", i)
		}
	}
	reg2 := NewRegistry(nil)
	reg2.SeedFleet(recs)
	agg2, err := reg2.FleetAggregate(ledger.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(agg.Groups)
	j2, _ := json.Marshal(agg2.Groups)
	if string(j1) != string(j2) {
		t.Errorf("replayed aggregate differs:\nlive:   %s\nreplay: %s", j1, j2)
	}
}

// TestLedgerInertness: with no ledger configured the observatory behaves
// identically — same simulation outputs (digest-compared), no ledger path
// advertised, and the in-memory fleet still aggregates.
func TestLedgerInertness(t *testing.T) {
	digest := func(withLedger bool) string {
		cfg := Config{}
		if withLedger {
			w, err := ledger.OpenWriter(filepath.Join(t.TempDir(), "runs.ledger"))
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			cfg.Ledger = w
		}
		reg := NewRegistryWith(cfg, nil)
		ts := httptest.NewServer(NewServer(reg, nil))
		defer ts.Close()
		st := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1}`)
		final := waitDone(t, ts, st.ID)
		if final.State != StateDone {
			t.Fatalf("state = %s (err %q)", final.State, final.Error)
		}
		d, err := ledger.ResultDigest(final.Result)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(reg.FleetRecords()); got != 1 {
			t.Fatalf("fleet records = %d, want 1", got)
		}
		if withLedger != (reg.LedgerPath() != "") {
			t.Fatalf("LedgerPath = %q with ledger=%v", reg.LedgerPath(), withLedger)
		}
		return d
	}
	with, without := digest(true), digest(false)
	if with != without {
		t.Errorf("result digest differs with ledger on/off: %s vs %s", with, without)
	}
}

// TestFleetFiltersHTTP drives /fleet and /fleet/{dimension} through the
// HTTP query surface: label filters, time windows, and the 400 paths.
func TestFleetFiltersHTTP(t *testing.T) {
	reg := NewRegistry(nil)
	base := time.Unix(1700000000, 0).UTC()
	for i, wl := range []string{"olden.mst", "olden.mst", "olden.treeadd"} {
		state := "done"
		if i == 2 {
			state = "failed"
		}
		reg.SeedFleet([]ledger.Record{{
			RunID: i + 1, TraceID: fmt.Sprintf("t%d", i+1), SpecHash: "h",
			Workload: wl, Config: "CPP", Compressor: "paper", State: state,
			Finished:     base.Add(time.Duration(i) * time.Hour),
			Instructions: 100,
			StageSeconds: map[string]float64{"execute": 0.01},
		}})
	}
	ts := httptest.NewServer(NewServer(reg, nil))
	defer ts.Close()

	cases := []struct {
		query string
		want  int64
	}{
		{"", 3},
		{"?workload=olden.mst", 2},
		{"?state=done", 2},
		{"?workload=olden.mst&state=failed", 0},
		{"?since=" + base.Add(time.Hour).Format(time.RFC3339), 2},
		{"?until=" + base.Add(time.Hour).Format(time.RFC3339), 1},
	}
	for _, c := range cases {
		t.Run("fleet"+c.query, func(t *testing.T) {
			var agg ledger.Aggregate
			getJSON(t, ts.URL+"/fleet"+c.query, &agg)
			if agg.TotalRuns != c.want {
				t.Errorf("TotalRuns = %d, want %d", agg.TotalRuns, c.want)
			}
		})
	}

	// Dimension endpoint collapses to one axis.
	var byWl ledger.Aggregate
	getJSON(t, ts.URL+"/fleet/workload", &byWl)
	if len(byWl.Groups) != 2 {
		t.Fatalf("by-workload groups = %d, want 2", len(byWl.Groups))
	}
	for _, g := range byWl.Groups {
		if g.Config != "" || g.State != "" {
			t.Errorf("by-workload group leaked dimensions: %+v", g)
		}
	}

	for _, bad := range []string{
		"/fleet?state=bogus",
		"/fleet?since=not-a-time",
		"/fleet?window=-5s",
		"/fleet?window=1h&since=" + base.Format(time.RFC3339),
		"/fleet/flavour",
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// A relative window ending now excludes the old fixture records.
	var windowed ledger.Aggregate
	getJSON(t, ts.URL+"/fleet?window=1h", &windowed)
	if windowed.TotalRuns != 0 {
		t.Errorf("window=1h TotalRuns = %d, want 0 (records are from 2023)", windowed.TotalRuns)
	}
}

// TestRunsStateFilter: GET /runs ?state= filtering and the deterministic
// (created, id) ordering, table-driven.
func TestRunsStateFilter(t *testing.T) {
	reg := NewRegistryWith(Config{MaxRunning: 1}, nil)
	ts := httptest.NewServer(NewServer(reg, nil))
	defer ts.Close()

	slow := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":64}`)
	q1 := launch(t, ts, `{"workload":"treeadd","config":"CPP","functional":true}`)
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/runs/%d", ts.URL, q1.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitDone(t, ts, slow.ID)
	waitDone(t, ts, q1.ID)
	d2 := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1}`)
	waitDone(t, ts, d2.ID)

	count := func(list []RunStatus, state RunState) int {
		n := 0
		for _, st := range list {
			if st.State == state {
				n++
			}
		}
		return n
	}
	var all []RunStatus
	getJSON(t, ts.URL+"/runs", &all)

	cases := []struct {
		query   string
		status  int
		want    int
		uniform RunState
	}{
		{"", http.StatusOK, 3, ""},
		{"?state=done", http.StatusOK, count(all, StateDone), StateDone},
		{"?state=canceled", http.StatusOK, count(all, StateCanceled), StateCanceled},
		{"?state=queued", http.StatusOK, 0, StateQueued},
		{"?state=bogus", http.StatusBadRequest, 0, ""},
	}
	for _, c := range cases {
		t.Run("runs"+c.query, func(t *testing.T) {
			resp, err := http.Get(ts.URL + "/runs" + c.query)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.status)
			}
			if c.status != http.StatusOK {
				return
			}
			var list []RunStatus
			if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
				t.Fatal(err)
			}
			if len(list) != c.want {
				t.Errorf("%d runs, want %d", len(list), c.want)
			}
			for i, st := range list {
				if c.uniform != "" && st.State != c.uniform {
					t.Errorf("run %d state %s, want %s", st.ID, st.State, c.uniform)
				}
				if i > 0 {
					prev := list[i-1]
					if st.Created.Before(prev.Created) ||
						(st.Created.Equal(prev.Created) && st.ID < prev.ID) {
						t.Errorf("ordering broken at index %d: (%v,%d) after (%v,%d)",
							i, st.Created, st.ID, prev.Created, prev.ID)
					}
				}
			}
		})
	}
}

// TestPromLabelEscaping: label values containing quotes, backslashes and
// newlines must escape per the text exposition format in every family —
// per-run series, fleet rollup series and build info.
func TestPromLabelEscaping(t *testing.T) {
	nasty := "a\"b\\c\nd"
	const escaped = `a\"b\\c\nd`

	// Per-run families: a run whose spec carries the hostile string (the
	// HTTP layer would reject it, but the exposition writer must not rely
	// on that).
	run := &Run{
		ID:      1,
		Spec:    RunSpec{Workload: nasty, Config: nasty, Compressor: nasty},
		state:   StateQueued,
		created: time.Now(),
		tracer:  span.New(0),
		changed: make(chan struct{}),
	}
	var b strings.Builder
	writeMetrics(&b, []*Run{run}, Counters{})

	// Fleet families, via a rollup over a hostile record.
	ro := ledger.NewRollup()
	ro.Add(ledger.Record{
		RunID: 1, TraceID: "t1", SpecHash: "h",
		Workload: nasty, Config: nasty, Compressor: nasty, State: "done",
		StageSeconds: map[string]float64{nasty: 0.01},
	})
	agg, err := ro.Aggregate(ledger.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	writeFleetMetrics(&b, agg)

	// Build info, via a hostile ledger path and role.
	writeBuildInfo(&b, nasty, nasty)

	body := b.String()
	for _, needle := range []string{
		`workload="` + escaped + `"`,
		`cppserved_fleet_runs_total{workload="` + escaped + `"`,
		`stage="` + escaped + `"`,
		`ledger="` + escaped + `"`,
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("exposition missing escaped label %q", needle)
		}
	}
	if strings.Contains(body, nasty) {
		t.Error("raw unescaped label value leaked into exposition")
	}
	// The full body must still parse line-by-line (no label value may
	// break out of its quotes and truncate a sample line).
	parseExposition(t, body)
}

// TestMetricsFleetFamilies: after a run completes, /metrics carries the
// cppserved_fleet_* families and build info for the run's group.
func TestMetricsFleetFamilies(t *testing.T) {
	ts, _ := newTestServer(t)
	st := launch(t, ts, `{"workload":"mst","config":"CPP","functional":true,"scale":1}`)
	final := waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := parseExposition(t, string(body))

	labels := `workload="olden.mst",config="CPP",compressor="paper",state="done"`
	if got := metrics["cppserved_fleet_runs_total{"+labels+"}"]; got != 1 {
		t.Errorf("fleet runs = %v, want 1", got)
	}
	if got := metrics["cppserved_fleet_instructions_total{"+labels+"}"]; got != float64(final.Totals.Instructions) {
		t.Errorf("fleet instructions = %v, want %d", got, final.Totals.Instructions)
	}
	found := false
	for k := range metrics {
		if strings.HasPrefix(k, "cppserved_build_info{") &&
			strings.Contains(k, `go_version="`+runtime.Version()+`"`) {
			found = true
			if metrics[k] != 1 {
				t.Errorf("build info value = %v, want 1", metrics[k])
			}
		}
	}
	if !found {
		t.Errorf("no cppserved_build_info series with go_version label")
	}
}
