// Package serve is the simulation observatory: a long-running HTTP
// service that launches simulator runs as supervised jobs, tracks them in
// a registry, and exposes their telemetry while they execute.
//
// Endpoints:
//
//	POST   /runs               launch a job (JSON RunSpec body; ?nocache=1
//	                           bypasses spec-hash memoization for this run)
//	GET    /runs               list runs (?state= filter; created-time order)
//	GET    /runs/{id}          one run's status, totals and final result
//	DELETE /runs/{id}          cancel a queued or running job
//	GET    /runs/{id}/stream   SSE: replay + follow the interval snapshots
//	GET    /runs/{id}/profile  attribution profile (text or collapsed stacks)
//	GET    /runs/{id}/trace    run-lifecycle span tree (?format=chrome|otlp)
//	POST   /sweeps             expand a cross-product sweep into child runs
//	GET    /sweeps             list sweeps (newest first)
//	GET    /sweeps/{id}        one sweep's aggregate status and children
//	GET    /sweeps/{id}/table  deterministic TSV result table (byte-stable
//	                           across retries and worker loss)
//	GET    /sweeps/{id}/stream SSE: sweep progress events to completion
//	DELETE /sweeps/{id}        cancel a sweep (fans out to child runs)
//	GET    /fleet              fleet rollup over the run ledger (filters:
//	                           workload, config, compressor, state, since,
//	                           until, window)
//	GET    /fleet/{dimension}  rollup collapsed onto one grouping axis
//	GET    /dashboard          live observatory dashboard (zero-dep HTML)
//	GET    /dashboard/stream   SSE: periodic fleet-level samples
//	GET    /metrics            Prometheus text exposition over all runs
//	GET    /healthz            liveness (process is up)
//	GET    /readyz             readiness (503 before ledger boot-replay
//	                           completes and while draining, Retry-After set)
//	GET    /debug/pprof/...    net/http/pprof
//
// Counters on /metrics are sums of the per-interval snapshot deltas, so
// at the end of a run they equal the recorder's final totals exactly; the
// SSE stream carries the same deltas, so a client summing them reproduces
// /metrics. Both invariants are test-enforced. When the bounded snapshot
// ring has dropped a stream's requested prefix, the stream says so with an
// explicit "gap" event rather than silently resuming.
//
// Failure mapping: invalid specs are HTTP 400 with a structured body
// naming the field, a full admission queue is 429 with Retry-After, and a
// draining registry is 503 with Retry-After. Retry-After values derive
// from the shared backoff policy so clients and the sweep fabric pace
// themselves consistently.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"cppcache/internal/backoff"
	"cppcache/internal/ledger"
	"cppcache/internal/span"
)

// DefaultStreamWriteTimeout is the per-write deadline applied to SSE
// responses: a consumer that cannot absorb an event batch within it is
// disconnected (and counted) instead of parking the handler goroutine
// forever.
const DefaultStreamWriteTimeout = 30 * time.Second

// Server wires the registry to an http.Handler.
type Server struct {
	reg *Registry
	log *slog.Logger
	mux *http.ServeMux

	// StreamWriteTimeout overrides DefaultStreamWriteTimeout when > 0.
	// Tests set it tiny to exercise slow-consumer disconnection.
	StreamWriteTimeout time.Duration

	// DashboardSampleInterval overrides DefaultDashboardSampleInterval
	// when > 0 (tests set it tiny to exercise the sample stream).
	DashboardSampleInterval time.Duration

	// DashboardRing overrides DefaultDashboardRing when > 0 (tests set
	// it tiny to exercise reconnect gap accounting).
	DashboardRing int

	// dash is the shared sample feed behind /dashboard/stream.
	dash *dashSampler
}

// NewServer builds the observatory handler around a registry.
func NewServer(reg *Registry, log *slog.Logger) *Server {
	if log == nil {
		log = reg.log
	}
	s := &Server{reg: reg, log: log, mux: http.NewServeMux()}
	s.dash = newDashSampler(s)
	s.mux.HandleFunc("POST /runs", s.handleLaunch)
	s.mux.HandleFunc("GET /runs", s.handleList)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRun)
	s.mux.HandleFunc("DELETE /runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /runs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /runs/{id}/profile", s.handleProfile)
	s.mux.HandleFunc("GET /runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("POST /sweeps", s.handleSweepLaunch)
	s.mux.HandleFunc("GET /sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /sweeps/{id}", s.handleSweep)
	s.mux.HandleFunc("GET /sweeps/{id}/table", s.handleSweepTable)
	s.mux.HandleFunc("GET /sweeps/{id}/stream", s.handleSweepStream)
	s.mux.HandleFunc("DELETE /sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("GET /fleet", s.handleFleet)
	s.mux.HandleFunc("GET /fleet/{dimension}", s.handleFleetDim)
	s.mux.HandleFunc("GET /dashboard", s.handleDashboard)
	s.mux.HandleFunc("GET /dashboard/stream", s.handleDashboardStream)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler with request logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	s.log.Info("http", "method", r.Method, "path", r.URL.Path, "elapsed", time.Since(start))
}

// handleHealthz is GET /healthz: pure liveness. It answers 200 as long
// as the process serves HTTP at all — including while draining — so
// orchestrators never kill a server that is merely finishing its queue.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is GET /readyz: readiness for new work. It answers 503
// with a Retry-After while the registry is draining or before the boot
// ledger replay finished, so load balancers and the fabric's health
// probes steer launches elsewhere without marking the process dead.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reason := s.reg.Readiness()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		w.Header().Set("Retry-After", strconv.Itoa(backoff.DefaultPolicy.RetryAfterSeconds()))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, reason)
		return
	}
	fmt.Fprintln(w, "ready")
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v as a JSON 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// runFromPath resolves the {id} path value to a run.
func (s *Server) runFromPath(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad run id %q", r.PathValue("id"))
		return nil, false
	}
	run, ok := s.reg.Get(id)
	if !ok {
		jsonError(w, http.StatusNotFound, "no run %d", id)
		return nil, false
	}
	return run, true
}

// retryAfter stamps a Retry-After header from the shared backoff policy,
// so HTTP clients get the same pacing advice the fabric's retry loop uses.
func retryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(backoff.DefaultPolicy.RetryAfterSeconds()))
}

// handleLaunch is POST /runs. Spec violations are 400 with the offending
// field; admission backpressure is 429 (queue full) or 503 (draining),
// both with backoff-derived Retry-After. ?nocache=1 forces a real
// execution even when the spec's hash has a memoized result.
func (s *Server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		jsonError(w, http.StatusBadRequest, "bad run spec: %v", err)
		return
	}
	opts := LaunchOptions{NoCache: r.URL.Query().Get("nocache") == "1"}
	run, err := s.reg.LaunchOpts(spec, opts)
	if err != nil {
		var se *SpecError
		switch {
		case errors.As(err, &se):
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(se)
		case errors.Is(err, ErrQueueFull):
			retryAfter(w)
			jsonError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDraining):
			retryAfter(w)
			jsonError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			jsonError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	w.Header().Set("Location", fmt.Sprintf("/runs/%d", run.ID))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(run.Status())
}

// handleList is GET /runs. ?state= restricts to one lifecycle state
// (unknown states are 400). The listing is deterministically ordered by
// creation time, ties broken by run id, regardless of internal storage
// order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	stateFilter := r.URL.Query().Get("state")
	if stateFilter != "" && !knownState(stateFilter) {
		jsonError(w, http.StatusBadRequest, "unknown state %q (known: %s)",
			stateFilter, strings.Join(stateNames(), ", "))
		return
	}
	runs := s.reg.Runs()
	out := make([]RunStatus, 0, len(runs))
	for _, run := range runs {
		st := run.Status()
		if stateFilter != "" && string(st.State) != stateFilter {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	writeJSON(w, out)
}

// handleRun is GET /runs/{id}.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, run.Status())
}

// handleCancel is DELETE /runs/{id}: cancel a queued or running job. A
// queued run turns canceled immediately; a running one as soon as the
// simulator's cooperative cancellation check fires. Canceling a terminal
// run is 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	if err := s.reg.Cancel(run.ID, "canceled via DELETE /runs/"+strconv.Itoa(run.ID)); err != nil {
		jsonError(w, http.StatusConflict, "%v", err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSONBody(w, run.Status())
}

// writeJSONBody writes v as JSON without touching the status code (for
// handlers that already wrote their header).
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleProfile is GET /runs/{id}/profile. ?format=collapsed selects the
// flame-graph collapsed-stack rendering.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	if !run.Spec.Attr {
		jsonError(w, http.StatusNotFound, "run %d was launched without attribution (set \"attr\": true)", run.ID)
		return
	}
	if !run.State().Terminal() {
		jsonError(w, http.StatusConflict, "run %d still %s; profile is available at completion", run.ID, run.State())
		return
	}
	text, collapsed := run.Profile()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if r.URL.Query().Get("format") == "collapsed" {
		fmt.Fprint(w, collapsed)
		return
	}
	fmt.Fprintf(w, "# run %d: %s on %s (compressor %s)\n",
		run.ID, run.Spec.Workload, run.Spec.Config, run.Spec.Compressor)
	fmt.Fprint(w, text)
}

// handleTrace is GET /runs/{id}/trace: the run's lifecycle span tree as
// indented JSON. ?format=chrome renders Chrome trace_event JSON (load it
// in chrome://tracing or Perfetto); ?format=otlp renders newline-
// delimited OTLP-style JSON for offline tooling.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "tree":
		w.Header().Set("Content-Type", "application/json")
		w.Write(run.TraceTree())
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Write(run.TraceChrome())
	case "otlp":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(run.TraceOTLP())
	default:
		jsonError(w, http.StatusBadRequest, "unknown trace format %q (known: tree, chrome, otlp)", format)
	}
}

// handleMetrics is GET /metrics: Prometheus text exposition 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	writeBuildInfo(&b, s.reg.LedgerPath(), s.reg.Role())
	writeMetrics(&b, s.reg.Runs(), s.reg.Counters())
	s.reg.stages.writeProm(&b)
	if agg, err := s.reg.FleetAggregate(ledger.Filter{}); err == nil {
		writeFleetMetrics(&b, agg)
	}
	if fab := s.reg.Fabric(); fab != nil {
		fab.WriteProm(&b)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// streamWriteTimeout returns the SSE per-write deadline in effect.
func (s *Server) streamWriteTimeout() time.Duration {
	if s.StreamWriteTimeout > 0 {
		return s.StreamWriteTimeout
	}
	return DefaultStreamWriteTimeout
}

// handleStream is GET /runs/{id}/stream: server-sent events. The retained
// interval snapshots are replayed in order, then the handler follows live
// appends until the run reaches a terminal state, closing with an "end"
// event carrying the final status. Event ids are snapshot ordinals. When
// the bounded ring has dropped the requested prefix, a "gap" event names
// the skipped ordinal range before the stream resumes. Every write batch
// runs under a deadline: a consumer that cannot keep up is disconnected
// and counted (cppserved_slow_streams_disconnected_total) instead of
// pinning the handler goroutine.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// The stream gets its own root span on the run's trace (not a child
	// of the run span: a follower can outlive the run's terminal state, so
	// nesting it under "run" would break the child-containment invariant).
	stream := run.tracer.Start("sse.stream", nil, span.Int("run_id", int64(run.ID)))
	defer stream.End()

	// push emits one batch under the write deadline; false disconnects.
	push := func(emit func() error) bool {
		// ResponseWriters without deadline support (recorders) just skip
		// the deadline; real connections enforce it per batch.
		rc.SetWriteDeadline(time.Now().Add(s.streamWriteTimeout()))
		if err := emit(); err != nil {
			s.reg.CountSlowStream()
			stream.Event("slow_consumer_disconnected", span.String("err", err.Error()))
			s.log.Warn("slow stream consumer disconnected", "run_id", run.ID,
				"trace_id", run.TraceID(), "err", err)
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}

	// Reconnect advice: pace SSE client retries with the shared backoff
	// base instead of the browser's default.
	if !push(func() error {
		_, err := fmt.Fprintf(w, "retry: %d\n\n", backoff.DefaultPolicy.Delay(1).Milliseconds())
		return err
	}) {
		return
	}

	next := 0
	emitFrom := func(next int) (int, bool) {
		snaps, from, _, _ := run.SnapsFrom(next)
		if from > next {
			stream.Event("gap",
				span.Int("from", int64(next)),
				span.Int("resumed", int64(from)),
				span.Int("dropped", int64(from-next)))
			okPush := push(func() error {
				_, err := fmt.Fprintf(w, "event: gap\ndata: {\"from\":%d,\"resumed\":%d,\"dropped\":%d}\n\n",
					next, from, from-next)
				return err
			})
			if !okPush {
				return next, false
			}
			next = from
		}
		for _, snap := range snaps {
			data, err := json.Marshal(snap)
			if err != nil {
				return next, false
			}
			id := next
			if !push(func() error {
				_, err := fmt.Fprintf(w, "id: %d\nevent: snapshot\ndata: %s\n\n", id, data)
				return err
			}) {
				return next, false
			}
			next++
		}
		return next, true
	}

	for {
		var live bool
		if next, live = emitFrom(next); !live {
			return
		}
		_, _, state, changed := run.SnapsFrom(next)
		if state.Terminal() {
			// Drain any snapshots that landed between the emit and the
			// terminal-state observation before closing.
			if next, live = emitFrom(next); !live {
				return
			}
			final, _ := json.Marshal(run.Status())
			push(func() error {
				_, err := fmt.Fprintf(w, "event: end\ndata: %s\n\n", final)
				return err
			})
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
