// Package serve is the simulation observatory: a long-running HTTP
// service that launches simulator runs as jobs, tracks them in a
// registry, and exposes their telemetry while they execute.
//
// Endpoints:
//
//	POST /runs               launch a job (JSON RunSpec body)
//	GET  /runs               list runs
//	GET  /runs/{id}          one run's status, totals and final result
//	GET  /runs/{id}/stream   SSE: replay + follow the interval snapshots
//	GET  /runs/{id}/profile  attribution profile (text or collapsed stacks)
//	GET  /metrics            Prometheus text exposition over all runs
//	GET  /healthz            liveness
//	GET  /debug/pprof/...    net/http/pprof
//
// Counters on /metrics are sums of the per-interval snapshot deltas, so
// at the end of a run they equal the recorder's final totals exactly; the
// SSE stream carries the same deltas, so a client summing them reproduces
// /metrics. Both invariants are test-enforced.
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// Server wires the registry to an http.Handler.
type Server struct {
	reg *Registry
	log *slog.Logger
	mux *http.ServeMux
}

// NewServer builds the observatory handler around a registry.
func NewServer(reg *Registry, log *slog.Logger) *Server {
	if log == nil {
		log = reg.log
	}
	s := &Server{reg: reg, log: log, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /runs", s.handleLaunch)
	s.mux.HandleFunc("GET /runs", s.handleList)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /runs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /runs/{id}/profile", s.handleProfile)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler with request logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	s.log.Info("http", "method", r.Method, "path", r.URL.Path, "elapsed", time.Since(start))
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v as a JSON 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// runFromPath resolves the {id} path value to a run.
func (s *Server) runFromPath(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad run id %q", r.PathValue("id"))
		return nil, false
	}
	run, ok := s.reg.Get(id)
	if !ok {
		jsonError(w, http.StatusNotFound, "no run %d", id)
		return nil, false
	}
	return run, true
}

// handleLaunch is POST /runs.
func (s *Server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		jsonError(w, http.StatusBadRequest, "bad run spec: %v", err)
		return
	}
	run, err := s.reg.Launch(spec)
	if err != nil {
		jsonError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.Header().Set("Location", fmt.Sprintf("/runs/%d", run.ID))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(run.Status())
}

// handleList is GET /runs.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	runs := s.reg.Runs()
	out := make([]RunStatus, 0, len(runs))
	for _, run := range runs {
		out = append(out, run.Status())
	}
	writeJSON(w, out)
}

// handleRun is GET /runs/{id}.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, run.Status())
}

// handleProfile is GET /runs/{id}/profile. ?format=collapsed selects the
// flame-graph collapsed-stack rendering.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	if !run.Spec.Attr {
		jsonError(w, http.StatusNotFound, "run %d was launched without attribution (set \"attr\": true)", run.ID)
		return
	}
	if run.State() == StateRunning {
		jsonError(w, http.StatusConflict, "run %d still running; profile is available at completion", run.ID)
		return
	}
	text, collapsed := run.Profile()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if r.URL.Query().Get("format") == "collapsed" {
		fmt.Fprint(w, collapsed)
		return
	}
	fmt.Fprint(w, text)
}

// handleMetrics is GET /metrics: Prometheus text exposition 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	writeMetrics(&b, s.reg.Runs())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// handleStream is GET /runs/{id}/stream: server-sent events. Every
// interval snapshot the run has ever published is replayed in order (the
// stream is lossless), then the handler follows live appends until the
// run reaches a terminal state, closing with an "end" event carrying the
// final status. Event ids are snapshot ordinals.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	next := 0
	for {
		snaps, state, changed := run.SnapsFrom(next)
		for _, snap := range snaps {
			data, err := json.Marshal(snap)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: snapshot\ndata: %s\n\n", next, data)
			next++
		}
		if canFlush {
			fl.Flush()
		}
		if state != StateRunning {
			// Drain any snapshots that landed between SnapsFrom and the
			// terminal-state observation before closing.
			snaps, _, _ := run.SnapsFrom(next)
			for _, snap := range snaps {
				data, _ := json.Marshal(snap)
				fmt.Fprintf(w, "id: %d\nevent: snapshot\ndata: %s\n\n", next, data)
				next++
			}
			final, _ := json.Marshal(run.Status())
			fmt.Fprintf(w, "event: end\ndata: %s\n\n", final)
			if canFlush {
				fl.Flush()
			}
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
