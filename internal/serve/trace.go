package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cppcache/internal/span"
)

// stageBuckets are the cppserved_stage_seconds histogram bounds, in
// seconds. Simulation stages on default scales land in the
// millisecond-to-second range; the top bucket catches stalled or
// deadline-bound runs.
var stageBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// stageHist is one stage's cumulative histogram.
type stageHist struct {
	counts []int64 // one per stageBuckets entry
	sum    float64
	count  int64
}

// stageSet aggregates span durations per stage name, fed from the span
// tracer's OnEnd hook and rendered on /metrics as the
// cppserved_stage_seconds histogram family. Stage names come from the
// fixed instrumentation vocabulary (run, admission, queue, execute,
// workload.build, sim.*, sse.stream), so cardinality is bounded by
// construction.
type stageSet struct {
	mu    sync.Mutex
	hists map[string]*stageHist
}

// observe records one completed span. Matches span.Tracer.SetOnEnd.
func (s *stageSet) observe(stage string, seconds float64) {
	s.mu.Lock()
	if s.hists == nil {
		s.hists = map[string]*stageHist{}
	}
	h := s.hists[stage]
	if h == nil {
		h = &stageHist{counts: make([]int64, len(stageBuckets))}
		s.hists[stage] = h
	}
	for i, ub := range stageBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.count++
	s.mu.Unlock()
}

// SpanSeconds returns the observed total seconds and span count for one
// stage (zero when the stage never completed a span). The conservation
// tests reconcile these sums against the span tree itself.
func (s *stageSet) SpanSeconds(stage string) (sum float64, count int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h := s.hists[stage]; h != nil {
		return h.sum, h.count
	}
	return 0, 0
}

// writeProm renders the family in Prometheus text exposition 0.0.4, with
// cumulative le buckets, stages in sorted order for deterministic output.
func (s *stageSet) writeProm(w *strings.Builder) {
	s.mu.Lock()
	names := make([]string, 0, len(s.hists))
	for name := range s.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP cppserved_stage_seconds Wall-clock seconds per run-lifecycle stage, from the span tracer.\n")
	fmt.Fprintf(w, "# TYPE cppserved_stage_seconds histogram\n")
	for _, name := range names {
		h := s.hists[name]
		stage := escapeLabel(name)
		for i, ub := range stageBuckets {
			fmt.Fprintf(w, "cppserved_stage_seconds_bucket{stage=\"%s\",le=\"%g\"} %d\n", stage, ub, h.counts[i])
		}
		fmt.Fprintf(w, "cppserved_stage_seconds_bucket{stage=\"%s\",le=\"+Inf\"} %d\n", stage, h.count)
		fmt.Fprintf(w, "cppserved_stage_seconds_sum{stage=\"%s\"} %v\n", stage, h.sum)
		fmt.Fprintf(w, "cppserved_stage_seconds_count{stage=\"%s\"} %d\n", stage, h.count)
	}
	s.mu.Unlock()
}

// StageSeconds exposes the registry's per-stage totals (see
// stageSet.SpanSeconds); tests use it to prove the histogram family and
// the span tree agree.
func (g *Registry) StageSeconds(stage string) (sum float64, count int64) {
	return g.stages.SpanSeconds(stage)
}

// TraceID returns the run's trace identifier, shared by its status JSON,
// its log lines and every span export.
func (r *Run) TraceID() string { return r.tracer.TraceID() }

// TraceTree renders the run's span tree as indented JSON (the
// GET /runs/{id}/trace default).
func (r *Run) TraceTree() []byte { return r.tracer.Tree() }

// TraceChrome renders the run's spans in Chrome trace_event format
// (?format=chrome).
func (r *Run) TraceChrome() []byte { return r.tracer.Chrome() }

// TraceOTLP renders the run's spans as OTLP-style NDJSON (?format=otlp).
func (r *Run) TraceOTLP() []byte { return r.tracer.OTLP() }

// TraceSpans returns the run's raw span snapshot for tests.
func (r *Run) TraceSpans() []span.SpanData { return r.tracer.Snapshot() }
