package sim

// The compressor axis of the configuration matrix. A compression scheme
// is selected by suffixing a config name with "@scheme" ("BCC@fpc",
// "LCC@bdi"); NewSystem parses the suffix and the resulting system's
// Name() carries it, so results, verification traffic rules and metric
// labels all self-describe. Only the configurations that actually
// compress transfers (BCC and LCC) accept a non-default scheme: CPP's
// half-slot architecture is wedded to the paper's 16-bit word codec (each
// word's VC flag is an independent tag bit, which only a WordCompressor
// can honour), and BC/HAC/BCP/VC never touch a compressor at all.

import (
	"fmt"
	"strings"

	"cppcache/internal/compress"
)

// SplitConfig splits a possibly scheme-qualified config name into its
// base config and scheme ("BCC@fpc" -> "BCC", "fpc"). Names without an
// "@" return an empty scheme, which compress.Get resolves to the default.
func SplitConfig(name string) (base, scheme string) {
	if i := strings.IndexByte(name, '@'); i >= 0 {
		return name[:i], strings.ToLower(strings.TrimSpace(name[i+1:]))
	}
	return name, ""
}

// WithCompressor composes a scheme-qualified config name. The empty
// scheme and the default scheme both yield the bare config, keeping
// default runs byte-identical to the pre-zoo simulator.
func WithCompressor(config, scheme string) string {
	s := strings.ToLower(strings.TrimSpace(scheme))
	if s == "" || s == compress.Default().Name() {
		return config
	}
	return config + "@" + s
}

// CompressorConfigs returns the configurations whose behaviour depends on
// the selected compression scheme.
func CompressorConfigs() []string { return []string{"BCC", "LCC"} }

// ValidateCompressor reports whether the named scheme can back the given
// base configuration: unknown schemes are rejected outright, and a
// non-default scheme is only accepted on a config that compresses.
func ValidateCompressor(config, scheme string) error {
	comp, err := compress.Get(scheme)
	if err != nil {
		return err
	}
	if comp.Name() == compress.Default().Name() {
		return nil // the paper's scheme backs everything, as before
	}
	base, _ := SplitConfig(config)
	for _, c := range CompressorConfigs() {
		if base == c {
			return nil
		}
	}
	if base == "CPP" {
		return fmt.Errorf("sim: config CPP is architecturally tied to the paper's per-word codec (VC flag per word); compressor %q cannot back it", comp.Name())
	}
	return fmt.Errorf("sim: config %s does not compress transfers; -compressor %q applies to %s",
		base, comp.Name(), strings.Join(CompressorConfigs(), " and "))
}

// resolveConfig parses a possibly scheme-qualified name, validates the
// combination and returns the base config, the canonical full name and
// the scheme.
func resolveConfig(name string) (base, canonical string, comp compress.Compressor, err error) {
	base, scheme := SplitConfig(name)
	comp, err = compress.Get(scheme)
	if err != nil {
		return "", "", nil, fmt.Errorf("sim: %w", err)
	}
	if err := ValidateCompressor(base, scheme); err != nil {
		return "", "", nil, err
	}
	return base, WithCompressor(base, scheme), comp, nil
}
