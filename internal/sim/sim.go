// Package sim wires a workload trace, a cache configuration and the
// processor core together into one run, and provides a faster
// functional-only mode (no pipeline timing) for traffic and miss-rate
// studies.
package sim

import (
	"context"
	"fmt"

	"cppcache/internal/core"
	"cppcache/internal/cpu"
	"cppcache/internal/hier"
	"cppcache/internal/isa"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/obs"
	"cppcache/internal/span"
	"cppcache/internal/workload"
)

// Configs returns the paper's five cache configurations in presentation
// order (§4.1).
func Configs() []string { return []string{"BC", "BCC", "HAC", "BCP", "CPP"} }

// ExtraConfigs returns the related-work configurations implemented beyond
// the paper's five: VC (Jouppi's victim cache, the paper's reference [3])
// and LCC (line-level compression cache, the paper's reference [6]).
func ExtraConfigs() []string { return []string{"VC", "LCC"} }

// NewSystem builds the named cache hierarchy over main memory m with the
// given latencies. A config name may carry an "@scheme" suffix selecting
// the line-compression scheme (see compressor.go); the built system's
// Name() preserves the suffix.
func NewSystem(name string, m *mem.Memory, lat memsys.Latencies) (memsys.System, error) {
	base, canonical, comp, err := resolveConfig(name)
	if err != nil {
		return nil, err
	}
	switch base {
	case "BC":
		cfg := hier.BaselineConfig()
		cfg.Lat = lat
		return hier.NewStandard(cfg, m)
	case "BCC":
		cfg := hier.CompressedConfig()
		cfg.Lat = lat
		cfg.Name = canonical
		cfg.Comp = comp
		return hier.NewStandard(cfg, m)
	case "HAC":
		cfg := hier.HighAssocConfig()
		cfg.Lat = lat
		return hier.NewStandard(cfg, m)
	case "BCP":
		cfg := hier.PrefetchConfigDefault()
		cfg.Lat = lat
		return hier.NewPrefetch(cfg, m)
	case "CPP":
		cfg := core.DefaultConfig()
		cfg.Lat = lat
		return core.New(cfg, m)
	case "VC":
		cfg := hier.VictimConfigDefault()
		cfg.Lat = lat
		return hier.NewVictim(cfg, m)
	case "LCC":
		cfg := hier.LCCConfig()
		cfg.Lat = lat
		cfg.Name = canonical
		cfg.Comp = comp
		return hier.NewLCC(cfg, m)
	default:
		return nil, fmt.Errorf("sim: unknown configuration %q (known: %v)",
			base, append(Configs(), ExtraConfigs()...))
	}
}

// Result is one benchmark x configuration run.
type Result struct {
	Benchmark string
	Config    string
	CPU       cpu.Result
	Mem       memsys.Stats
}

// Run simulates the program on the named configuration with full pipeline
// timing.
func Run(p *workload.Program, config string, lat memsys.Latencies, params cpu.Params) (Result, error) {
	return RunObserved(p, config, lat, params, nil)
}

// Supervision bundles the run-control concerns of a supervised simulation:
// cooperative cancellation and deterministic fault injection. The zero
// value supervises nothing and reproduces the plain run exactly.
type Supervision struct {
	// Ctx, when non-nil, cancels the run cooperatively: the main loops
	// poll it every few thousand cycles/ops and abandon the run with
	// ctx's error. nil means context.Background().
	Ctx context.Context
	// Fault, when non-nil, is invoked at the simulator's fault-injection
	// points (hierarchy fills, per memory op) with a site label. The
	// chaos harness (internal/chaos) uses it to fire panics, stalls and
	// cancellations at deterministic execution points.
	Fault func(site string)
	// Span, when non-nil, parents the run's stage spans (sim.build,
	// sim.run, sim.finish), making the wall-clock split between system
	// construction, simulation and recorder teardown visible per run.
	// nil records nothing.
	Span *span.Span
}

// ctx returns the supervision context, defaulting to Background.
func (s Supervision) ctx() context.Context {
	if s.Ctx == nil {
		return context.Background()
	}
	return s.Ctx
}

// faultHookable is implemented by hierarchies that expose fault-injection
// points (core.Hierarchy, hier.Standard).
type faultHookable interface {
	SetFaultHook(func(site string))
}

// attachRecorder connects rec to a built system: the stats block is
// always attached (every memsys.System exposes one), and hierarchies
// implementing obs.Attachable additionally get event/fill hooks.
func attachRecorder(sys memsys.System, rec *obs.Recorder) {
	if rec == nil {
		return
	}
	rec.AttachStats(sys.Stats())
	if a, ok := sys.(obs.Attachable); ok {
		a.SetRecorder(rec)
	}
}

// attachFault connects the chaos fault hook to hierarchies that expose
// injection points; other systems simply skip the hierarchy-level sites.
func attachFault(sys memsys.System, fault func(string)) {
	if fault == nil {
		return
	}
	if fh, ok := sys.(faultHookable); ok {
		fh.SetFaultHook(fault)
	}
}

// RunObserved is Run with an observability recorder attached to the core
// and the memory hierarchy. A nil recorder reproduces Run exactly. The
// recorder is finished (trailing snapshot emitted) before returning.
func RunObserved(p *workload.Program, config string, lat memsys.Latencies, params cpu.Params, rec *obs.Recorder) (Result, error) {
	return RunSupervised(p, config, lat, params, rec, Supervision{})
}

// RunSupervised is RunObserved under run supervision: the context cancels
// the pipeline loop cooperatively (the partial recorder state is still
// finished, so any snapshots already published stay consistent) and the
// fault hook is plumbed into the core and the hierarchy. A zero
// Supervision reproduces RunObserved exactly.
func RunSupervised(p *workload.Program, config string, lat memsys.Latencies, params cpu.Params, rec *obs.Recorder, sup Supervision) (Result, error) {
	build := sup.Span.StartChild("sim.build",
		span.String("benchmark", p.Name), span.String("config", config))
	m := mem.New()
	sys, err := NewSystem(config, m, lat)
	if err != nil {
		build.End()
		return Result{}, err
	}
	c, err := cpu.New(params, sys)
	if err != nil {
		build.End()
		return Result{}, err
	}
	attachRecorder(sys, rec)
	attachFault(sys, sup.Fault)
	rec.AttachMemPages(m.PagesTouched)
	c.SetRecorder(rec)
	c.SetFaultHook(sup.Fault)
	build.End()
	// Replay the shared pre-decoded trace: the core recognises the
	// concrete stream type and fetches straight from the struct-of-arrays
	// buffers, which any number of concurrent runs share read-only.
	running := sup.Span.StartChild("sim.run")
	res, runErr := c.RunContext(sup.ctx(), p.Replay())
	running.SetAttrs(span.Int("cycles", int64(res.Cycles)))
	running.End()
	finish := sup.Span.StartChild("sim.finish")
	rec.Finish()
	finish.End()
	if runErr != nil {
		return Result{}, fmt.Errorf("sim: %s on %s canceled at cycle %d: %w",
			p.Name, config, res.Cycles, runErr)
	}
	if res.ValueMismatches > 0 {
		return Result{}, fmt.Errorf("sim: %s on %s: %d load value mismatches (cache model corrupted data)",
			p.Name, config, res.ValueMismatches)
	}
	return Result{Benchmark: p.Name, Config: config, CPU: res, Mem: *sys.Stats()}, nil
}

// RunFunctional replays only the memory operations of the program, in
// program order, with no pipeline model. It is an order of magnitude
// faster than Run and produces identical traffic and miss statistics for
// studies that do not need cycles.
func RunFunctional(p *workload.Program, config string, lat memsys.Latencies) (Result, error) {
	return RunFunctionalObserved(p, config, lat, nil)
}

// RunFunctionalObserved is RunFunctional with an observability recorder;
// with no pipeline clock, the operation index stands in for time (one op
// per "cycle" in snapshots and traces). A nil recorder reproduces
// RunFunctional exactly.
func RunFunctionalObserved(p *workload.Program, config string, lat memsys.Latencies, rec *obs.Recorder) (Result, error) {
	return RunFunctionalSupervised(p, config, lat, rec, Supervision{})
}

// funcCancelCheckEvery is the cadence, in replayed memory ops, of the
// functional loop's cooperative cancellation poll.
const funcCancelCheckEvery = 4096

// RunFunctionalSupervised is RunFunctionalObserved under run supervision:
// the context cancels the replay loop cooperatively (polled every
// funcCancelCheckEvery ops) and the fault hook fires once per memory op
// plus at the hierarchy's own injection points. A zero Supervision
// reproduces RunFunctionalObserved exactly.
func RunFunctionalSupervised(p *workload.Program, config string, lat memsys.Latencies, rec *obs.Recorder, sup Supervision) (Result, error) {
	build := sup.Span.StartChild("sim.build",
		span.String("benchmark", p.Name), span.String("config", config))
	m := mem.New()
	sys, err := NewSystem(config, m, lat)
	if err != nil {
		build.End()
		return Result{}, err
	}
	attachRecorder(sys, rec)
	attachFault(sys, sup.Fault)
	rec.AttachMemPages(m.PagesTouched)
	build.End()
	running := sup.Span.StartChild("sim.run")
	// Replay the shared pre-decoded trace. The functional loop touches
	// only four of the record's eight fields, so the struct-of-arrays
	// buffers keep every byte it reads hot and sequential.
	d := p.Decoded()
	ops, addrs, values, pcs := d.Ops(), d.Addrs(), d.Values(), d.PCs()
	done := sup.ctx().Done()
	fault := sup.Fault
	var mismatches, op int64
	for i := range ops {
		if done != nil && op%funcCancelCheckEvery == 0 {
			select {
			case <-done:
				running.End()
				finish := sup.Span.StartChild("sim.finish")
				rec.Finish()
				finish.End()
				return Result{}, fmt.Errorf("sim: %s on %s (functional) canceled at op %d: %w",
					p.Name, config, op, sup.ctx().Err())
			default:
			}
		}
		switch ops[i] {
		case isa.OpLoad:
			rec.SetAccessPC(pcs[i])
			if fault != nil {
				fault("sim.op")
			}
			if v, _ := sys.Read(addrs[i]); v != values[i] {
				mismatches++
			}
		case isa.OpStore:
			rec.SetAccessPC(pcs[i])
			if fault != nil {
				fault("sim.op")
			}
			sys.Write(addrs[i], values[i])
		}
		op++
		rec.OpTick(op)
	}
	running.SetAttrs(span.Int("ops", op))
	running.End()
	finish := sup.Span.StartChild("sim.finish")
	rec.Finish()
	finish.End()
	if mismatches > 0 {
		return Result{}, fmt.Errorf("sim: %s on %s (functional): %d load value mismatches",
			p.Name, config, mismatches)
	}
	return Result{Benchmark: p.Name, Config: config, Mem: *sys.Stats()}, nil
}

// NewCPPSystem builds a CPP hierarchy with explicit design knobs: the
// affiliated-line mask and the victim-placement policy. Used by the
// ablation studies.
func NewCPPSystem(m *mem.Memory, lat memsys.Latencies, mask uint32, victimPlacement bool) (memsys.System, error) {
	cfg := core.DefaultConfig()
	cfg.Lat = lat
	cfg.Mask = mask
	cfg.VictimPlacement = victimPlacement
	if mask != 1 {
		cfg.Name = fmt.Sprintf("CPP(mask=%#x)", mask)
	}
	if !victimPlacement {
		cfg.Name += "-novictim"
	}
	return core.New(cfg, m)
}

// RunCPPVariant simulates a program on a CPP hierarchy with custom knobs.
func RunCPPVariant(p *workload.Program, lat memsys.Latencies, params cpu.Params, mask uint32, victimPlacement bool) (Result, error) {
	m := mem.New()
	sys, err := NewCPPSystem(m, lat, mask, victimPlacement)
	if err != nil {
		return Result{}, err
	}
	c, err := cpu.New(params, sys)
	if err != nil {
		return Result{}, err
	}
	res := c.Run(p.Replay())
	if res.ValueMismatches > 0 {
		return Result{}, fmt.Errorf("sim: %s on %s: %d load value mismatches", p.Name, sys.Name(), res.ValueMismatches)
	}
	return Result{Benchmark: p.Name, Config: sys.Name(), CPU: res, Mem: *sys.Stats()}, nil
}
