package sim

import (
	"testing"

	"cppcache/internal/cpu"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/workload"
)

func TestConfigs(t *testing.T) {
	want := []string{"BC", "BCC", "HAC", "BCP", "CPP"}
	got := Configs()
	if len(got) != len(want) {
		t.Fatalf("Configs() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Configs()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestNewSystemAll(t *testing.T) {
	for _, name := range Configs() {
		sys, err := NewSystem(name, mem.New(), memsys.DefaultLatencies())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sys.Name() != name {
			t.Errorf("Name() = %s, want %s", sys.Name(), name)
		}
		sys.Write(0x1000, 7)
		if v, _ := sys.Read(0x1000); v != 7 {
			t.Errorf("%s: read back %d", name, v)
		}
	}
	if _, err := NewSystem("XYZ", mem.New(), memsys.DefaultLatencies()); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestRunMatchesFunctionalStats(t *testing.T) {
	// The pipeline model reorders accesses slightly, but both modes must
	// replay the same loads/stores; spot-check that miss counts agree
	// within a small tolerance for the in-order-friendly BC config.
	bm, err := workload.ByName("olden.treeadd")
	if err != nil {
		t.Fatal(err)
	}
	p := bm.Build(1)
	full, err := Run(p, "BC", memsys.DefaultLatencies(), cpu.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	fun, err := RunFunctional(p, "BC", memsys.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if full.Mem.L1.Accesses != fun.Mem.L1.Accesses {
		t.Errorf("access counts differ: %d vs %d", full.Mem.L1.Accesses, fun.Mem.L1.Accesses)
	}
	ratio := float64(full.Mem.L1.Misses) / float64(fun.Mem.L1.Misses)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("miss counts diverge: pipeline %d vs functional %d", full.Mem.L1.Misses, fun.Mem.L1.Misses)
	}
	if full.CPU.Cycles == 0 || fun.CPU.Cycles != 0 {
		t.Error("cycle accounting wrong between modes")
	}
}

func TestRunAllConfigsVerifiesValues(t *testing.T) {
	// sim.Run fails loudly on any load value mismatch: run every config
	// over a real workload to prove the data paths are sound end-to-end.
	bm, err := workload.ByName("spec95.129.compress")
	if err != nil {
		t.Fatal(err)
	}
	p := bm.Build(1)
	for _, cfg := range Configs() {
		if _, err := Run(p, cfg, memsys.DefaultLatencies(), cpu.DefaultParams()); err != nil {
			t.Errorf("%s: %v", cfg, err)
		}
	}
}

func TestRunCPPVariant(t *testing.T) {
	bm, _ := workload.ByName("olden.mst")
	p := bm.Build(1)
	base, err := RunCPPVariant(p, memsys.DefaultLatencies(), cpu.DefaultParams(), 0x1, true)
	if err != nil {
		t.Fatal(err)
	}
	if base.Config != "CPP" {
		t.Errorf("default variant name = %s", base.Config)
	}
	v, err := RunCPPVariant(p, memsys.DefaultLatencies(), cpu.DefaultParams(), 0x2, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.Config != "CPP(mask=0x2)-novictim" {
		t.Errorf("variant name = %s", v.Config)
	}
	if v.Mem.AffPlacements != 0 {
		t.Error("victim placement disabled but placements recorded")
	}
}

func TestBCAndBCCSameTiming(t *testing.T) {
	// §4.1: "BC and BCC have the same performance since BCC only changes
	// the format in which the data is stored and transmitted."
	bm, _ := workload.ByName("olden.perimeter")
	p := bm.Build(1)
	bc, err := Run(p, "BC", memsys.DefaultLatencies(), cpu.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bcc, err := Run(p, "BCC", memsys.DefaultLatencies(), cpu.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if bc.CPU.Cycles != bcc.CPU.Cycles {
		t.Errorf("BC %d cycles vs BCC %d cycles", bc.CPU.Cycles, bcc.CPU.Cycles)
	}
	if bcc.Mem.MemTrafficWords() >= bc.Mem.MemTrafficWords() {
		t.Errorf("BCC traffic %.0f not below BC %.0f",
			bcc.Mem.MemTrafficWords(), bc.Mem.MemTrafficWords())
	}
}
