package hier

import (
	"fmt"

	"cppcache/internal/cache"
	"cppcache/internal/compress"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/obs"
)

// LCC is the line-level compression cache of the reproduced paper's
// related work ([6], Yang/Zhang/Gupta, MICRO 2000, as summarised in §5):
// "Two conflicting cache lines can be stored in the same line if both are
// compressible; otherwise, only one of them is stored." Compression is
// all-or-nothing at line granularity — a line qualifies only when every
// word in it compresses — and, as the paper argues, such schemes "operate
// at the cache line level and do not distinguish the importance of
// different words within a cache line", so they cannot do partial-line
// prefetching. LCC exists here to let that comparison be measured.
//
// The L1 is modelled with paired frames: each physical frame can hold one
// uncompressed line or two fully-compressible lines. The L2 and memory
// interface follow the baseline (with compressed bus transfers, since the
// hardware has compressors anyway).
type LCC struct {
	cfg   Config
	l1    *lccArray
	l2    *cache.Cache
	mem   *mem.Memory
	stats memsys.Stats
	g1    mach.LineGeom
	g2    mach.LineGeom
	comp  compress.Compressor

	// obs, when non-nil, receives fill-word compressibility counts and
	// attribution events; a nil recorder costs one branch per hook.
	obs *obs.Recorder
}

var _ memsys.System = (*LCC)(nil)

// LCCConfig returns the LCC configuration on the baseline geometry.
func LCCConfig() Config {
	c := BaselineConfig()
	c.Name = "LCC"
	c.CompressTraffic = true
	return c
}

// NewLCC builds the LCC hierarchy over main memory m.
func NewLCC(cfg Config, m *mem.Memory) (*LCC, error) {
	if err := cfg.L1.Validate(); err != nil {
		return nil, fmt.Errorf("hier: LCC L1: %w", err)
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("hier: LCC L2: %w", err)
	}
	comp := cfg.Comp
	if comp == nil {
		comp = compress.Default()
	}
	l2.TrackCompression(comp)
	h := &LCC{
		cfg:  cfg,
		l1:   newLCCArray(cfg.L1, comp),
		l2:   l2,
		mem:  m,
		g1:   mach.LineGeom{LineBytes: cfg.L1.LineBytes},
		g2:   mach.LineGeom{LineBytes: cfg.L2.LineBytes},
		comp: comp,
	}
	return h, nil
}

// Name implements memsys.System.
func (h *LCC) Name() string { return h.cfg.Name }

// Stats implements memsys.System.
func (h *LCC) Stats() *memsys.Stats { return &h.stats }

// SetRecorder implements obs.Attachable: it attaches the observability
// recorder (nil detaches) and connects the statistics block for interval
// snapshotting.
func (h *LCC) SetRecorder(r *obs.Recorder) {
	h.obs = r
	r.AttachStats(&h.stats)
}

// lccLine is one resident line within a shared frame.
type lccLine struct {
	valid      bool
	dirty      bool
	tag        mach.Addr // line number
	compressed bool      // stored in 16-bit form (all words compressible)
	used       uint64
	data       []mach.Word // logical values
}

// lccFrame holds one uncompressed line or two compressed ones.
type lccFrame struct {
	lines [2]lccLine
}

type lccArray struct {
	p       cache.Params
	geom    mach.LineGeom
	setMask mach.Addr
	sets    [][]lccFrame
	tick    uint64
	comp    compress.Compressor
}

func newLCCArray(p cache.Params, comp compress.Compressor) *lccArray {
	a := &lccArray{
		p:       p,
		geom:    mach.LineGeom{LineBytes: p.LineBytes},
		setMask: mach.Addr(p.Sets() - 1),
		comp:    comp,
	}
	a.sets = make([][]lccFrame, p.Sets())
	for i := range a.sets {
		frames := make([]lccFrame, p.Assoc)
		for f := range frames {
			for s := range frames[f].lines {
				frames[f].lines[s].data = make([]mach.Word, a.geom.Words())
			}
		}
		a.sets[i] = frames
	}
	return a
}

// find returns the resident copy of line n, or nil.
func (a *lccArray) find(n mach.Addr) *lccLine {
	set := a.sets[int(n&a.setMask)]
	for f := range set {
		for s := range set[f].lines {
			l := &set[f].lines[s]
			if l.valid && l.tag == n {
				return l
			}
		}
	}
	return nil
}

// lineCompressible reports whether the line fits a half frame under the
// array's scheme: its compressed size is at most one half-word per word.
// Under the paper's scheme this reduces to every word compressing, the
// original all-or-nothing rule.
func (a *lccArray) lineCompressible(data []mach.Word, base mach.Addr) bool {
	return a.comp.LineHalves(data, base) <= len(data)
}

// install places line n, evicting as required by the sharing rule. It
// returns the evicted lines (0..2) for write-back.
func (a *lccArray) install(n mach.Addr, data []mach.Word, sharedCtr *int64) []lccLine {
	base := a.geom.NumberToAddr(n)
	comp := a.lineCompressible(data, base)
	set := a.sets[int(n&a.setMask)]

	a.tick++

	// Prefer a frame slot that costs nothing: an invalid slot in a frame
	// whose other slot is compressible (when we are too), or a fully
	// invalid frame.
	if comp {
		for f := range set {
			fr := &set[f]
			for s := range fr.lines {
				other := &fr.lines[1-s]
				l := &fr.lines[s]
				if !l.valid && (!other.valid || other.compressed) {
					a.fill(l, n, data, true)
					if other.valid && sharedCtr != nil {
						*sharedCtr++
					}
					return nil
				}
			}
		}
	} else {
		for f := range set {
			fr := &set[f]
			if !fr.lines[0].valid && !fr.lines[1].valid {
				a.fill(&fr.lines[0], n, data, false)
				return nil
			}
		}
	}

	// Evict from the LRU frame (by its most recent use).
	victim := &set[0]
	vUsed := victim.newest()
	for f := 1; f < len(set); f++ {
		if u := set[f].newest(); u < vUsed {
			victim, vUsed = &set[f], u
		}
	}
	var evicted []lccLine
	if comp {
		// A compressed newcomer can share the victim frame with one
		// resident compressed line, evicting at most the other slot.
		for s := range victim.lines {
			other := &victim.lines[1-s]
			if other.valid && !other.compressed {
				continue
			}
			l := &victim.lines[s]
			if l.valid {
				if other.valid && other.used > l.used {
					continue // prefer evicting the older slot
				}
				cp := *l
				cp.data = append([]mach.Word(nil), l.data...)
				evicted = append(evicted, cp)
				l.valid = false
			}
			a.fill(l, n, data, true)
			if other.valid && sharedCtr != nil {
				*sharedCtr++
			}
			return evicted
		}
	}
	for s := range victim.lines {
		if victim.lines[s].valid {
			cp := victim.lines[s]
			cp.data = append([]mach.Word(nil), victim.lines[s].data...)
			evicted = append(evicted, cp)
			victim.lines[s].valid = false
		}
	}
	a.fill(&victim.lines[0], n, data, comp)
	return evicted
}

func (a *lccArray) fill(l *lccLine, n mach.Addr, data []mach.Word, comp bool) {
	l.valid = true
	l.dirty = false
	l.tag = n
	l.compressed = comp
	copy(l.data, data)
	l.used = a.tick
}

func (f *lccFrame) newest() uint64 {
	u := uint64(0)
	for s := range f.lines {
		if f.lines[s].valid && f.lines[s].used > u {
			u = f.lines[s].used
		}
	}
	return u
}

// access is the shared read/write path.
func (h *LCC) access(a mach.Addr, write bool, v mach.Word) (mach.Word, int) {
	a = mach.WordAlign(a)
	h.stats.L1.Accesses++
	n := h.g1.LineNumber(a)
	w := h.g1.WordIndex(a)

	l := h.l1.find(n)
	lat := h.cfg.Lat.L1Hit
	if l == nil {
		h.stats.L1.Misses++
		h.obs.AttrMiss(a)
		lat = h.fetch(n)
		l = h.l1.find(n)
		if l == nil {
			panic("hier: LCC line absent after fetch")
		}
	}
	h.l1.tick++
	l.used = h.l1.tick
	if write {
		l.data[w] = v
		l.dirty = true
		// A write that breaks the line's compressed fit forces it back
		// to uncompressed form; its frame-mate is evicted (written back
		// if dirty), exactly the all-or-nothing cost the paper contrasts
		// CPP against. Word-capable schemes (the paper's) answer with an
		// O(1) per-word check; line-granular schemes recompress the line.
		if l.compressed {
			still := false
			if wc, ok := h.comp.(compress.WordCompressor); ok {
				still = wc.CompressibleWord(v, a)
			} else {
				still = h.l1.lineCompressible(l.data, h.g1.NumberToAddr(l.tag))
			}
			if !still {
				l.compressed = false
				h.evictFrameMate(n)
			}
		}
		return 0, lat
	}
	return l.data[w], lat
}

// evictFrameMate pushes out the line sharing n's frame, if any.
func (h *LCC) evictFrameMate(n mach.Addr) {
	set := h.l1.sets[int(n&h.l1.setMask)]
	for f := range set {
		fr := &set[f]
		for s := range fr.lines {
			if fr.lines[s].valid && fr.lines[s].tag == n {
				mate := &fr.lines[1-s]
				if mate.valid {
					cp := *mate
					cp.data = append([]mach.Word(nil), mate.data...)
					mate.valid = false
					h.writeback(cp)
					h.stats.ConflictEvictions++
				}
				return
			}
		}
	}
}

// fetch brings line n in from the L2 (or memory) and installs it.
func (h *LCC) fetch(n mach.Addr) int {
	h.stats.L2.Accesses++
	lat := h.cfg.Lat.L2Hit
	base := h.g1.NumberToAddr(n)
	l2line := h.l2.Access(base)
	if l2line == nil {
		h.stats.L2.Misses++
		data := make([]mach.Word, h.g2.Words())
		l2base := h.g2.LineAddr(base)
		h.mem.ReadLine(l2base, data)
		h.stats.MemReadHalves += int64(h.comp.LineHalves(data, l2base))
		if h.obs != nil {
			h.obs.FillLine(data, l2base)
		}
		if ev := h.l2.Fill(base, data); ev.Valid && ev.Dirty {
			evBase := h.g2.NumberToAddr(ev.Tag)
			h.mem.WriteLine(evBase, ev.Data)
			h.stats.MemWriteHalves += int64(h.comp.LineHalves(ev.Data, evBase))
			h.stats.L2.Writebacks++
		}
		l2line = h.l2.Probe(base)
		lat = h.cfg.Lat.Mem
	}
	off := h.g2.WordIndex(base)
	window := append([]mach.Word(nil), l2line.Data[off:off+h.g1.Words()]...)
	for _, ev := range h.l1.install(n, window, &h.stats.AffWordsPrefetchedL1) {
		if ev.dirty {
			h.writeback(ev)
		}
	}
	return lat
}

// writeback merges a dirty L1 line into the L2, or memory if absent.
func (h *LCC) writeback(l lccLine) {
	h.stats.L1.Writebacks++
	base := h.g1.NumberToAddr(l.tag)
	if l2line := h.l2.Probe(base); l2line != nil {
		off := h.g2.WordIndex(base)
		copy(l2line.Data[off:off+len(l.data)], l.data)
		l2line.Dirty = true
		h.l2.RefreshMeta(l2line)
		return
	}
	h.mem.WriteLine(base, l.data)
	h.stats.MemWriteHalves += int64(h.comp.LineHalves(l.data, base))
}

// Read implements memsys.System.
func (h *LCC) Read(a mach.Addr) (mach.Word, int) { return h.access(a, false, 0) }

// Write implements memsys.System.
func (h *LCC) Write(a mach.Addr, v mach.Word) int {
	_, lat := h.access(a, true, v)
	return lat
}

// SharedResidencies returns how many fills co-resided with a frame-mate
// (the LCC capacity benefit; stored in the AffWordsPrefetchedL1 counter).
func (h *LCC) SharedResidencies() int64 { return h.stats.AffWordsPrefetchedL1 }

// Occupancies implements memsys.Inspector. The L1 is reported in slot
// units — each physical frame offers two slots, each able to hold one
// compressed line (one half-word per word); an uncompressed line consumes
// both slots' half-word budget. The sharing rule makes Halves <= HalfCap
// an exact physical bound. The L1's CompHalves stays 0: its compression
// state is the all-or-nothing bit, not a per-line size. The L2 carries
// full tag metadata via cache.TrackCompression.
func (h *LCC) Occupancies() []memsys.Occupancy {
	w := h.g1.Words()
	o := memsys.Occupancy{
		Level:   "L1",
		LineCap: 2 * h.l1.p.Sets() * h.l1.p.Assoc,
		HalfCap: 2 * w * h.l1.p.Sets() * h.l1.p.Assoc,
	}
	for si := range h.l1.sets {
		for f := range h.l1.sets[si] {
			for s := range h.l1.sets[si][f].lines {
				l := &h.l1.sets[si][f].lines[s]
				if !l.valid {
					continue
				}
				o.Lines++
				if l.compressed {
					o.Halves += w
				} else {
					o.Halves += 2 * w
				}
			}
		}
	}
	return []memsys.Occupancy{o, h.l2.Occupancy("L2")}
}

// Drain flushes every dirty line to memory (diagnostic).
func (h *LCC) Drain() {
	for si := range h.l1.sets {
		for f := range h.l1.sets[si] {
			for s := range h.l1.sets[si][f].lines {
				l := &h.l1.sets[si][f].lines[s]
				if l.valid && l.dirty {
					h.mem.WriteLine(h.g1.NumberToAddr(l.tag), l.data)
					l.dirty = false
				}
			}
		}
	}
	h.l2.Lines(func(_ int, l *cache.Line) {
		if l.Dirty {
			base := l.Addr(h.g2)
			data := append([]mach.Word(nil), l.Data...)
			for i := 0; i < len(data); i += h.g1.Words() {
				sub := base + mach.Addr(i*mach.WordBytes)
				if l1l := h.l1.find(h.g1.LineNumber(sub)); l1l != nil {
					copy(data[i:i+h.g1.Words()], l1l.data)
				}
			}
			h.mem.WriteLine(base, data)
			l.Dirty = false
		}
	})
}
