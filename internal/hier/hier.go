// Package hier implements the conventional two-level cache hierarchies the
// paper compares against (§4.1):
//
//   - BC:  baseline — 8K direct-mapped L1 (64 B lines), 64K 2-way L2
//     (128 B lines), write-back, write-allocate.
//   - BCC: BC plus compressors/decompressors at the L2/memory interface;
//     identical timing and miss behaviour, but off-chip transfers are
//     compressed (the paper: "BC and BCC have the same performance since
//     BCC only changes the format in which data is stored and
//     transmitted").
//   - HAC: higher-associativity cache — 2-way L1, 4-way L2, same sizes.
//   - BCP: BC plus hardware prefetch-on-miss with an 8-entry fully
//     associative L1 prefetch buffer and a 32-entry L2 prefetch buffer
//     (implemented in prefetch.go).
package hier

import (
	"fmt"

	"cppcache/internal/cache"
	"cppcache/internal/compress"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/obs"
)

// Config describes a conventional two-level hierarchy.
type Config struct {
	Name            string
	L1, L2          cache.Params
	Lat             memsys.Latencies
	CompressTraffic bool // BCC: count off-chip transfers compressed
	// Comp selects the line-compression scheme used for compressed
	// transfers (and the L2 compression tag metadata). nil means the
	// paper's reference scheme; it only matters when CompressTraffic is
	// set.
	Comp compress.Compressor
}

// BaselineConfig returns the paper's BC configuration.
func BaselineConfig() Config {
	return Config{
		Name: "BC",
		L1:   cache.Params{SizeBytes: 8 << 10, Assoc: 1, LineBytes: 64},
		L2:   cache.Params{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 128},
		Lat:  memsys.DefaultLatencies(),
	}
}

// CompressedConfig returns the BCC configuration: BC with compressed
// off-chip transfers.
func CompressedConfig() Config {
	c := BaselineConfig()
	c.Name = "BCC"
	c.CompressTraffic = true
	return c
}

// HighAssocConfig returns the HAC configuration: double associativity at
// both levels.
func HighAssocConfig() Config {
	c := BaselineConfig()
	c.Name = "HAC"
	c.L1.Assoc = 2
	c.L2.Assoc = 4
	return c
}

// Standard is a conventional two-level write-back hierarchy (BC, BCC, HAC).
type Standard struct {
	cfg   Config
	l1    *cache.Cache
	l2    *cache.Cache
	mem   *mem.Memory
	stats memsys.Stats
	g1    mach.LineGeom
	g2    mach.LineGeom
	comp  compress.Compressor

	// obs, when non-nil, receives structured events and fill-word
	// compressibility counts; a nil recorder costs one branch per hook.
	obs *obs.Recorder

	// fault, when non-nil, is invoked at the hierarchy's fault-injection
	// point (every L1 miss fetch) with a site label; the chaos harness
	// (internal/chaos) installs it. nil costs one branch per miss.
	fault func(site string)

	// fetchBuf stages one L2 line fetched from memory; valid until the
	// next memFetchL2. Every caller hands it straight to fillL2, which
	// copies it into the cache frame.
	fetchBuf []mach.Word
}

var _ memsys.System = (*Standard)(nil)

// NewStandard builds a Standard hierarchy over main memory m.
func NewStandard(cfg Config, m *mem.Memory) (*Standard, error) {
	if cfg.L2.LineBytes < cfg.L1.LineBytes {
		return nil, fmt.Errorf("hier: L2 line (%d B) smaller than L1 line (%d B)", cfg.L2.LineBytes, cfg.L1.LineBytes)
	}
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return nil, fmt.Errorf("hier: L1: %w", err)
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("hier: L2: %w", err)
	}
	comp := cfg.Comp
	if comp == nil {
		comp = compress.Default()
	}
	if cfg.CompressTraffic {
		// The scheme's per-line compressed size becomes L2 tag metadata,
		// mirroring the hardware's compression-status bits.
		l2.TrackCompression(comp)
	}
	return &Standard{
		cfg: cfg, l1: l1, l2: l2, mem: m,
		g1: l1.Geom(), g2: l2.Geom(), comp: comp,
		fetchBuf: make([]mach.Word, l2.Geom().Words()),
	}, nil
}

// Name implements memsys.System.
func (h *Standard) Name() string { return h.cfg.Name }

// Stats implements memsys.System.
func (h *Standard) Stats() *memsys.Stats { return &h.stats }

// SetRecorder implements obs.Attachable: it attaches the observability
// recorder (nil detaches) and connects the statistics block for interval
// snapshotting. Embedders (Prefetch, Victim) inherit it.
func (h *Standard) SetRecorder(r *obs.Recorder) {
	h.obs = r
	r.AttachStats(&h.stats)
}

// SetFaultHook installs fn at the hierarchy's fault-injection point: it is
// called with site "std.fetch-l1" on every L1 miss fetch. nil removes the
// hook. Embedders (Prefetch, Victim) inherit it.
func (h *Standard) SetFaultHook(fn func(site string)) { h.fault = fn }

// Occupancies implements memsys.Inspector.
func (h *Standard) Occupancies() []memsys.Occupancy {
	return []memsys.Occupancy{h.l1.Occupancy("L1"), h.l2.Occupancy("L2")}
}

// lineHalves returns the bus cost of a line transfer in half-words,
// honouring the configuration's compression setting and scheme.
func (h *Standard) lineHalves(words []mach.Word, base mach.Addr) int64 {
	if h.cfg.CompressTraffic {
		return int64(h.comp.LineHalves(words, base))
	}
	return int64(2 * len(words))
}

// memFetchL2 reads the L2 line holding a from memory, accounting traffic.
func (h *Standard) memFetchL2(a mach.Addr) []mach.Word {
	base := h.g2.LineAddr(a)
	data := h.fetchBuf
	h.mem.ReadLine(base, data)
	h.stats.MemReadHalves += h.lineHalves(data, base)
	if h.obs != nil {
		h.obs.FillLine(data, base)
	}
	return data
}

// memWriteback writes a dirty line's words to memory, accounting traffic.
func (h *Standard) memWriteback(base mach.Addr, words []mach.Word) {
	h.mem.WriteLine(base, words)
	h.stats.MemWriteHalves += h.lineHalves(words, base)
}

// l2Writeback handles a dirty L1 victim: merge into L2 if resident there,
// otherwise write through to memory.
func (h *Standard) l2Writeback(ev cache.Evicted) {
	h.stats.L1.Writebacks++
	base := h.g1.NumberToAddr(ev.Tag)
	if l2line := h.l2.Probe(base); l2line != nil {
		off := h.g2.WordIndex(base)
		copy(l2line.Data[off:off+len(ev.Data)], ev.Data)
		l2line.Dirty = true
		h.l2.RefreshMeta(l2line) // the merge changed the line's compressed size
		return
	}
	h.memWriteback(base, ev.Data)
}

// fillL2 installs an L2 line fetched from memory, handling the victim.
func (h *Standard) fillL2(a mach.Addr, data []mach.Word) {
	ev := h.l2.Fill(a, data)
	if ev.Valid {
		h.obs.Event(obs.EvEvictL2, h.g2.NumberToAddr(ev.Tag), evDirtyAux(ev.Dirty))
	}
	if ev.Valid && ev.Dirty {
		h.stats.L2.Writebacks++
		h.memWriteback(h.g2.NumberToAddr(ev.Tag), ev.Data)
	}
	h.obs.Event(obs.EvFillL2, h.g2.LineAddr(a), int64(h.g2.Words()))
}

// evDirtyAux renders an eviction's dirty flag as an event-aux value.
func evDirtyAux(dirty bool) int64 {
	if dirty {
		return 1
	}
	return 0
}

// fetchIntoL1 brings the L1 line holding a into L1 and returns the total
// access latency. The L1 miss has already been counted by the caller.
func (h *Standard) fetchIntoL1(a mach.Addr) int {
	if h.fault != nil {
		h.fault("std.fetch-l1")
	}
	h.stats.L2.Accesses++
	lat := h.cfg.Lat.L2Hit
	l2line := h.l2.Access(a)
	if l2line == nil {
		h.stats.L2.Misses++
		h.fillL2(a, h.memFetchL2(a))
		l2line = h.l2.Probe(a)
		lat = h.cfg.Lat.Mem
	}
	base := h.g1.LineAddr(a)
	off := h.g2.WordIndex(base)
	window := l2line.Data[off : off+h.g1.Words()]
	ev := h.l1.Fill(a, window)
	if ev.Valid {
		h.obs.Event(obs.EvEvictL1, h.g1.NumberToAddr(ev.Tag), evDirtyAux(ev.Dirty))
	}
	if ev.Valid && ev.Dirty {
		h.l2Writeback(ev)
	}
	h.obs.Event(obs.EvFillL1, base, int64(h.g1.Words()))
	return lat
}

// Read implements memsys.System.
func (h *Standard) Read(a mach.Addr) (mach.Word, int) {
	a = mach.WordAlign(a)
	h.stats.L1.Accesses++
	if v, ok := h.l1.ReadWord(a); ok {
		return v, h.cfg.Lat.L1Hit
	}
	h.stats.L1.Misses++
	h.obs.AttrMiss(a)
	lat := h.fetchIntoL1(a)
	v, ok := h.l1.ReadWord(a)
	if !ok {
		panic("hier: word absent after fill")
	}
	return v, lat
}

// Write implements memsys.System.
func (h *Standard) Write(a mach.Addr, v mach.Word) int {
	a = mach.WordAlign(a)
	h.stats.L1.Accesses++
	if h.l1.WriteWord(a, v) {
		return h.cfg.Lat.L1Hit
	}
	h.stats.L1.Misses++
	h.obs.AttrMiss(a)
	lat := h.fetchIntoL1(a)
	if !h.l1.WriteWord(a, v) {
		panic("hier: word absent after fill on write")
	}
	return lat
}

// Drain flushes every dirty line down to memory. Used by tests to compare
// the hierarchy's final state against a reference memory image.
func (h *Standard) Drain() {
	h.l1.Lines(func(_ int, l *cache.Line) {
		if l.Dirty {
			h.mem.WriteLine(l.Addr(h.g1), l.Data) // bypass traffic accounting: diagnostic flush
			l.Dirty = false
		}
	})
	h.l2.Lines(func(_ int, l *cache.Line) {
		if l.Dirty {
			base := l.Addr(h.g2)
			// L1 held fresher data for any line it owned; only write L2
			// words whose line is not dirty in L1. The L1 pass above
			// already cleaned those, so a straight write is stale for
			// overlapping words. Re-read the L1 copy to preserve it.
			data := append([]mach.Word(nil), l.Data...)
			for i := 0; i < len(data); i += h.g1.Words() {
				sub := base + mach.Addr(i*mach.WordBytes)
				if l1l := h.l1.Probe(sub); l1l != nil {
					copy(data[i:i+h.g1.Words()], l1l.Data)
				}
			}
			h.mem.WriteLine(base, data)
			l.Dirty = false
		}
	})
}
