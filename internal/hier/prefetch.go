package hier

import (
	"fmt"

	"cppcache/internal/cache"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/obs"
)

// PrefetchConfig describes the BCP hierarchy: the baseline caches plus
// hardware next-line prefetching with dedicated fully associative prefetch
// buffers ("we invest the hardware cost in BCC/CPP to cache prefetch
// buffers. A 8-entry prefetch buffer is used to help the L1 cache and a
// 32-entry prefetch buffer is used to help the L2 cache. Both are fully
// associative with LRU replacement").
type PrefetchConfig struct {
	Config
	L1BufEntries int
	L2BufEntries int
	// Degree is how many consecutive next lines a miss prefetches
	// (1 = the paper's next-line policy; more is an ablation).
	Degree int
}

// PrefetchConfigDefault returns the paper's BCP configuration.
func PrefetchConfigDefault() PrefetchConfig {
	c := BaselineConfig()
	c.Name = "BCP"
	return PrefetchConfig{Config: c, L1BufEntries: 8, L2BufEntries: 32, Degree: 1}
}

// Prefetch is the BCP hierarchy: Standard plus prefetch-on-miss next-line
// prefetching into per-level buffers. A demand access that hits a prefetch
// buffer moves the line into the cache and is not counted as a miss (§4.4:
// "it is not considered as a cache miss in BCP if an access can find its
// data item from prefetch buffer").
type Prefetch struct {
	Standard
	pcfg PrefetchConfig
	pf1  *cache.Cache // holds L1-sized lines
	pf2  *cache.Cache // holds L2-sized lines

	// Line-sized scratch buffers for buffer-hit moves and prefetch
	// sourcing. cache.Fill copies its data argument before returning, so
	// handing it a scratch slice is safe, and reusing the two slices keeps
	// the prefetch path allocation-free in steady state (it used to
	// allocate three line copies per miss, ~19 k allocations per run).
	scr1 []mach.Word // one L1 line
	scr2 []mach.Word // one L2 line
}

var _ memsys.System = (*Prefetch)(nil)

// NewPrefetch builds the BCP hierarchy over main memory m.
func NewPrefetch(cfg PrefetchConfig, m *mem.Memory) (*Prefetch, error) {
	std, err := NewStandard(cfg.Config, m)
	if err != nil {
		return nil, err
	}
	if cfg.L1BufEntries < 1 || cfg.L2BufEntries < 1 {
		return nil, fmt.Errorf("hier: prefetch buffers need at least one entry")
	}
	pf1, err := cache.New(cache.Params{
		SizeBytes: cfg.L1BufEntries * cfg.L1.LineBytes,
		Assoc:     cfg.L1BufEntries,
		LineBytes: cfg.L1.LineBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("hier: L1 prefetch buffer: %w", err)
	}
	pf2, err := cache.New(cache.Params{
		SizeBytes: cfg.L2BufEntries * cfg.L2.LineBytes,
		Assoc:     cfg.L2BufEntries,
		LineBytes: cfg.L2.LineBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("hier: L2 prefetch buffer: %w", err)
	}
	return &Prefetch{
		Standard: *std, pcfg: cfg, pf1: pf1, pf2: pf2,
		scr1: make([]mach.Word, std.g1.Words()),
		scr2: make([]mach.Word, std.g2.Words()),
	}, nil
}

// access is the shared demand read/write path; write performs the store
// after the line is resident.
func (h *Prefetch) access(a mach.Addr, write bool, v mach.Word) (mach.Word, int) {
	a = mach.WordAlign(a)
	h.stats.L1.Accesses++

	finish := func(lat int) (mach.Word, int) {
		if write {
			if !h.l1.WriteWord(a, v) {
				panic("hier: word absent after prefetch fill on write")
			}
			return 0, lat
		}
		rv, ok := h.l1.ReadWord(a)
		if !ok {
			panic("hier: word absent after prefetch fill")
		}
		return rv, lat
	}

	if h.l1.Probe(a) != nil {
		h.l1.Access(a) // LRU touch
		return finish(h.cfg.Lat.L1Hit)
	}

	// L1 prefetch-buffer hit: move the line into the cache; not a miss.
	if buf := h.pf1.Probe(a); buf != nil {
		h.stats.PfBufHitsL1++
		h.obs.Event(obs.EvPfBufHit, h.g1.LineAddr(a), 1)
		copy(h.scr1, buf.Data)
		h.pf1.Invalidate(a)
		if ev := h.l1.Fill(a, h.scr1); ev.Valid && ev.Dirty {
			h.l2Writeback(ev)
			h.dropStaleBuffers(h.g1.NumberToAddr(ev.Tag))
		}
		// Strict prefetch-on-miss (§2.2): a buffer hit is not a miss, so
		// it does not trigger another prefetch.
		return finish(h.cfg.Lat.L1Hit)
	}

	// Demand miss.
	h.stats.L1.Misses++
	h.obs.AttrMiss(a)
	lat := h.fetchIntoL1WithBuffers(a)
	for d := 1; d <= h.degree(); d++ {
		h.prefetchL1(h.g1.LineAddr(a) + mach.Addr(d*h.g1.LineBytes))
	}
	return finish(lat)
}

// Read implements memsys.System.
func (h *Prefetch) Read(a mach.Addr) (mach.Word, int) { return h.access(a, false, 0) }

// Write implements memsys.System.
func (h *Prefetch) Write(a mach.Addr, v mach.Word) int {
	_, lat := h.access(a, true, v)
	return lat
}

// fetchIntoL1WithBuffers is fetchIntoL1 with an L2 prefetch-buffer check
// and L2-level next-line prefetching.
func (h *Prefetch) fetchIntoL1WithBuffers(a mach.Addr) int {
	h.stats.L2.Accesses++
	lat := h.cfg.Lat.L2Hit
	l2line := h.l2.Access(a)
	if l2line == nil {
		if buf := h.pf2.Probe(a); buf != nil {
			// L2 prefetch-buffer hit: move into the L2 cache.
			h.stats.PfBufHitsL2++
			h.obs.Event(obs.EvPfBufHit, h.g2.LineAddr(a), 2)
			copy(h.scr2, buf.Data)
			h.pf2.Invalidate(a)
			h.fillL2(a, h.scr2)
			l2line = h.l2.Probe(a)
		} else {
			h.stats.L2.Misses++
			h.fillL2(a, h.memFetchL2(a))
			l2line = h.l2.Probe(a)
			lat = h.cfg.Lat.Mem
			for d := 1; d <= h.degree(); d++ {
				h.prefetchL2(h.g2.LineAddr(a) + mach.Addr(d*h.g2.LineBytes))
			}
		}
	}
	base := h.g1.LineAddr(a)
	off := h.g2.WordIndex(base)
	window := l2line.Data[off : off+h.g1.Words()]
	if ev := h.l1.Fill(a, window); ev.Valid && ev.Dirty {
		h.l2Writeback(ev)
		h.dropStaleBuffers(h.g1.NumberToAddr(ev.Tag))
	}
	return lat
}

// prefetchL1 brings the line at base into the L1 prefetch buffer. Like a
// Jouppi stream buffer between L1 and L2, it is sourced from the L2 (or
// the L2 prefetch buffer) only; a next line that is not on chip is not
// prefetched at this level — the L2's own prefetcher is responsible for
// off-chip lines. This keeps the L2 authoritative for everything the L1
// holds, so write-backs always find their line.
func (h *Prefetch) prefetchL1(base mach.Addr) {
	if h.l1.Probe(base) != nil || h.pf1.Probe(base) != nil {
		return
	}
	words := h.scr1
	if l2line := h.l2.Probe(base); l2line != nil {
		off := h.g2.WordIndex(base)
		copy(words, l2line.Data[off:off+h.g1.Words()])
	} else if buf := h.pf2.Probe(base); buf != nil {
		// Promote the buffered L2 line into the L2 cache so the L2
		// stays authoritative for every line the L1 can hold.
		copy(h.scr2, buf.Data)
		h.pf2.Invalidate(base)
		h.fillL2(base, h.scr2)
		off := h.g2.WordIndex(base)
		copy(words, h.scr2[off:off+h.g1.Words()])
	} else {
		// Prefetch through: fetch the containing L2 line from memory
		// into the L2, then buffer the L1 line. These speculative line
		// fetches are where BCP's large traffic increase comes from
		// (the paper reports ~80% more traffic on average).
		h.fillL2(base, h.memFetchL2(base))
		l2line := h.l2.Probe(base)
		off := h.g2.WordIndex(base)
		copy(words, l2line.Data[off:off+h.g1.Words()])
	}
	h.stats.PfIssuedL1++
	h.obs.Event(obs.EvPfIssue, base, 1)
	h.pf1.Fill(base, words)
}

// prefetchL2 brings the L2 line at base into the L2 prefetch buffer from
// memory.
func (h *Prefetch) prefetchL2(base mach.Addr) {
	if h.l2.Probe(base) != nil || h.pf2.Probe(base) != nil {
		return
	}
	h.stats.PfIssuedL2++
	h.obs.Event(obs.EvPfIssue, base, 2)
	words := h.scr2
	h.mem.ReadLine(base, words)
	h.stats.MemReadHalves += int64(2 * len(words))
	h.pf2.Fill(base, words)
}

// Occupancies implements memsys.Inspector, adding the prefetch buffers to
// the Standard caches.
func (h *Prefetch) Occupancies() []memsys.Occupancy {
	return append(h.Standard.Occupancies(),
		h.pf1.Occupancy("L1 prefetch buffer"),
		h.pf2.Occupancy("L2 prefetch buffer"))
}

// degree returns the configured prefetch depth (at least 1).
func (h *Prefetch) degree() int {
	if h.pcfg.Degree < 1 {
		return 1
	}
	return h.pcfg.Degree
}

// dropStaleBuffers invalidates prefetch-buffer copies overlapping a line
// that was just written back, so the buffers never serve stale data.
func (h *Prefetch) dropStaleBuffers(base mach.Addr) {
	h.pf1.Invalidate(base)
	h.pf2.Invalidate(base)
}

// Drain flushes dirty lines to memory (diagnostic; see Standard.Drain).
func (h *Prefetch) Drain() { h.Standard.Drain() }
