package hier

import (
	"math/rand"
	"testing"

	"cppcache/internal/mach"
	"cppcache/internal/mem"
)

// ---- Victim cache ----

func TestVictimConfigDefault(t *testing.T) {
	c := VictimConfigDefault()
	if c.Name != "VC" || c.VictimEntries != 8 {
		t.Errorf("VictimConfigDefault() = %+v", c)
	}
}

func TestVictimRecoversConflictMiss(t *testing.T) {
	m := mem.New()
	m.WriteWord(0x1000, 7)
	h, err := NewVictim(VictimConfigDefault(), m)
	if err != nil {
		t.Fatal(err)
	}
	h.Read(0x1000)         // fetch
	h.Read(0x1000 + 8<<10) // conflict: 0x1000's line spills to the VC
	s := h.Stats()
	misses := s.L1.Misses
	if v, lat := h.Read(0x1000); v != 7 || lat != 2 {
		t.Fatalf("VC hit: v=%d lat=%d, want 7, 2", v, lat)
	}
	if s.L1.Misses != misses {
		t.Error("VC hit counted as a miss")
	}
	if s.PfBufHitsL1 != 1 {
		t.Errorf("VC hits = %d, want 1", s.PfBufHitsL1)
	}
}

func TestVictimBeatsBCOnPingPong(t *testing.T) {
	mA, mB := mem.New(), mem.New()
	bc, _ := NewStandard(BaselineConfig(), mA)
	vc, _ := NewVictim(VictimConfigDefault(), mB)
	a, b := mach.Addr(0x0000), mach.Addr(0x2000)
	for i := 0; i < 200; i++ {
		bc.Read(a)
		bc.Read(b)
		vc.Read(a)
		vc.Read(b)
	}
	if bcM, vcM := bc.Stats().L1.Misses, vc.Stats().L1.Misses; vcM >= bcM {
		t.Errorf("VC misses (%d) not below BC (%d) on a ping-pong pattern", vcM, bcM)
	}
}

func TestVictimCoherenceRandom(t *testing.T) {
	m := mem.New()
	h, _ := NewVictim(VictimConfigDefault(), m)
	shadow := map[mach.Addr]mach.Word{}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 120000; i++ {
		a := mach.Addr(rng.Intn(1<<15)) &^ 3
		if rng.Intn(2) == 0 {
			v := rng.Uint32()
			h.Write(a, v)
			shadow[a] = v
		} else if v, _ := h.Read(a); v != shadow[a] {
			t.Fatalf("iter %d: %#x = %d, want %d", i, a, v, shadow[a])
		}
	}
	h.Drain()
	for a, want := range shadow {
		if got := m.ReadWord(a); got != want {
			t.Fatalf("after drain, mem[%#x] = %d, want %d", a, got, want)
		}
	}
}

// ---- Line-level compression cache (LCC) ----

func TestLCCSharesCompressibleLines(t *testing.T) {
	m := mem.New()
	// Two conflicting, fully compressible lines.
	for i := 0; i < 16; i++ {
		m.WriteWord(mach.Addr(0x1000+i*4), mach.Word(i))
		m.WriteWord(mach.Addr(0x1000+8<<10)+mach.Addr(i*4), mach.Word(100+i))
	}
	h, err := NewLCC(LCCConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	h.Read(0x1000)
	h.Read(0x1000 + 8<<10) // conflicting but compressible: co-resides
	misses := h.Stats().L1.Misses
	if v, lat := h.Read(0x1000); v != 0 || lat != 1 {
		t.Fatalf("first line evicted despite sharing: v=%d lat=%d", v, lat)
	}
	if h.Stats().L1.Misses != misses {
		t.Error("shared line re-missed")
	}
	if h.SharedResidencies() == 0 {
		t.Error("no shared residency recorded")
	}
}

func TestLCCIncompressibleLineOwnsFrame(t *testing.T) {
	m := mem.New()
	for i := 0; i < 16; i++ {
		m.WriteWord(mach.Addr(0x1000+i*4), 0x70008000|mach.Word(i)) // incompressible
		m.WriteWord(mach.Addr(0x1000+8<<10)+mach.Addr(i*4), mach.Word(i))
	}
	h, _ := NewLCC(LCCConfig(), m)
	h.Read(0x1000)
	h.Read(0x1000 + 8<<10)
	misses := h.Stats().L1.Misses
	h.Read(0x1000) // the incompressible line was evicted: miss again
	if h.Stats().L1.Misses != misses+1 {
		t.Error("incompressible conflicting lines should not co-reside")
	}
}

func TestLCCWriteBreaksCompression(t *testing.T) {
	m := mem.New()
	for i := 0; i < 16; i++ {
		m.WriteWord(mach.Addr(0x1000+i*4), mach.Word(i))
		m.WriteWord(mach.Addr(0x1000+8<<10)+mach.Addr(i*4), mach.Word(100+i))
	}
	h, _ := NewLCC(LCCConfig(), m)
	h.Read(0x1000)
	h.Read(0x1000 + 8<<10) // co-resident
	// An incompressible store to line A evicts its frame-mate.
	h.Write(0x1000, 0xDEAD8001)
	misses := h.Stats().L1.Misses
	h.Read(0x1000 + 8<<10)
	if h.Stats().L1.Misses != misses+1 {
		t.Error("frame-mate survived an incompressible store")
	}
	if v, _ := h.Read(0x1000); v != 0xDEAD8001 {
		t.Errorf("store lost: %#x", v)
	}
	if h.Stats().ConflictEvictions == 0 {
		t.Error("conflict eviction not recorded")
	}
}

func TestLCCCoherenceRandom(t *testing.T) {
	m := mem.New()
	h, _ := NewLCC(LCCConfig(), m)
	shadow := map[mach.Addr]mach.Word{}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 120000; i++ {
		a := mach.Addr(rng.Intn(1<<15)) &^ 3
		switch rng.Intn(4) {
		case 0: // small value
			v := mach.Word(rng.Intn(1000))
			h.Write(a, v)
			shadow[a] = v
		case 1: // incompressible value
			v := rng.Uint32() | 0x40008000
			h.Write(a, v)
			shadow[a] = v
		default:
			if v, _ := h.Read(a); v != shadow[a] {
				t.Fatalf("iter %d: %#x = %#x, want %#x", i, a, v, shadow[a])
			}
		}
	}
	h.Drain()
	for a, want := range shadow {
		if got := m.ReadWord(a); got != want {
			t.Fatalf("after drain, mem[%#x] = %#x, want %#x", a, got, want)
		}
	}
}

func TestLCCCompressedTraffic(t *testing.T) {
	m := mem.New()
	for i := 0; i < 64; i++ {
		m.WriteWord(mach.Addr(0x8000+i*4), 5)
	}
	h, _ := NewLCC(LCCConfig(), m)
	h.Read(0x8000)
	if got := h.Stats().MemReadHalves; got != 32 {
		t.Errorf("compressible line read = %d halves, want 32", got)
	}
}

// ---- Prefetch degree ----

func TestPrefetchDegree(t *testing.T) {
	m := mem.New()
	cfg := PrefetchConfigDefault()
	cfg.Degree = 3
	h, err := NewPrefetch(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	h.Read(0x1000)
	for d := 1; d <= 3; d++ {
		a := mach.Addr(0x1000 + d*64)
		if h.pf1.Probe(a) == nil && h.l1.Probe(a) == nil {
			t.Errorf("degree-3 prefetch missing line +%d", d)
		}
	}
}

func TestPrefetchDegreeMoreTraffic(t *testing.T) {
	run := func(degree int) int64 {
		m := mem.New()
		cfg := PrefetchConfigDefault()
		cfg.Degree = degree
		h, _ := NewPrefetch(cfg, m)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			h.Read(mach.Addr(rng.Intn(1<<20)) &^ 3)
		}
		return h.Stats().MemReadHalves
	}
	if d1, d4 := run(1), run(4); d4 <= d1 {
		t.Errorf("degree 4 traffic (%d) not above degree 1 (%d)", d4, d1)
	}
}
