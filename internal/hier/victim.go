package hier

import (
	"fmt"

	"cppcache/internal/cache"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
)

// VictimConfig describes the VC hierarchy: the baseline caches plus a
// small fully associative victim cache between the L1 and the L2
// (Jouppi, ISCA 1990 — the same paper the prefetch buffers come from,
// reference [3] of the reproduced paper). It is a related-work
// comparison point: like CPP's affiliated placement it recovers conflict
// victims, but it needs dedicated storage and does not prefetch.
type VictimConfig struct {
	Config
	VictimEntries int
}

// VictimConfigDefault returns BC plus an 8-entry victim cache, matching
// the hardware budget of BCP's L1 prefetch buffer.
func VictimConfigDefault() VictimConfig {
	c := BaselineConfig()
	c.Name = "VC"
	return VictimConfig{Config: c, VictimEntries: 8}
}

// Victim is the VC hierarchy.
type Victim struct {
	Standard
	vcfg VictimConfig
	vc   *cache.Cache // fully associative, L1-sized lines
}

var _ memsys.System = (*Victim)(nil)

// NewVictim builds the VC hierarchy over main memory m.
func NewVictim(cfg VictimConfig, m *mem.Memory) (*Victim, error) {
	std, err := NewStandard(cfg.Config, m)
	if err != nil {
		return nil, err
	}
	if cfg.VictimEntries < 1 {
		return nil, fmt.Errorf("hier: victim cache needs at least one entry")
	}
	vc, err := cache.New(cache.Params{
		SizeBytes: cfg.VictimEntries * cfg.L1.LineBytes,
		Assoc:     cfg.VictimEntries,
		LineBytes: cfg.L1.LineBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("hier: victim cache: %w", err)
	}
	return &Victim{Standard: *std, vcfg: cfg, vc: vc}, nil
}

// access is the shared read/write path.
func (h *Victim) access(a mach.Addr, write bool, v mach.Word) (mach.Word, int) {
	a = mach.WordAlign(a)
	h.stats.L1.Accesses++

	finish := func(lat int) (mach.Word, int) {
		if write {
			if !h.l1.WriteWord(a, v) {
				panic("hier: word absent after victim fill on write")
			}
			return 0, lat
		}
		rv, ok := h.l1.ReadWord(a)
		if !ok {
			panic("hier: word absent after victim fill")
		}
		return rv, lat
	}

	if h.l1.Probe(a) != nil {
		h.l1.Access(a)
		return finish(h.cfg.Lat.L1Hit)
	}

	// Victim-cache hit: swap the line back into the L1. Jouppi charges
	// one extra cycle for the swap; we use the affiliated-hit latency,
	// which models the same "next cycle" penalty.
	if buf := h.vc.Probe(a); buf != nil {
		h.stats.PfBufHitsL1++ // reuse the buffer-hit counter for VC hits
		data := append([]mach.Word(nil), buf.Data...)
		dirty := buf.Dirty
		h.vc.Invalidate(a)
		ev := h.l1.Fill(a, data)
		if dirty {
			if l := h.l1.Probe(a); l != nil {
				l.Dirty = true
			}
		}
		h.spill(ev)
		return finish(h.cfg.Lat.AffHit)
	}

	h.stats.L1.Misses++
	h.obs.AttrMiss(a)
	lat := h.fetchIntoL1Victim(a)
	return finish(lat)
}

// fetchIntoL1Victim is Standard.fetchIntoL1 with victim-cache spill
// instead of direct write-back.
func (h *Victim) fetchIntoL1Victim(a mach.Addr) int {
	h.stats.L2.Accesses++
	lat := h.cfg.Lat.L2Hit
	l2line := h.l2.Access(a)
	if l2line == nil {
		h.stats.L2.Misses++
		h.fillL2(a, h.memFetchL2(a))
		l2line = h.l2.Probe(a)
		lat = h.cfg.Lat.Mem
	}
	base := h.g1.LineAddr(a)
	off := h.g2.WordIndex(base)
	window := l2line.Data[off : off+h.g1.Words()]
	ev := h.l1.Fill(a, window)
	h.spill(ev)
	return lat
}

// spill places an evicted L1 line into the victim cache; whatever the
// victim cache displaces is written back if dirty.
func (h *Victim) spill(ev cache.Evicted) {
	if !ev.Valid {
		return
	}
	base := h.g1.NumberToAddr(ev.Tag)
	out := h.vc.Fill(base, ev.Data)
	if l := h.vc.Probe(base); l != nil && ev.Dirty {
		l.Dirty = true
	}
	if out.Valid && out.Dirty {
		h.l2Writeback(out)
	}
}

// Read implements memsys.System.
func (h *Victim) Read(a mach.Addr) (mach.Word, int) { return h.access(a, false, 0) }

// Write implements memsys.System.
func (h *Victim) Write(a mach.Addr, v mach.Word) int {
	_, lat := h.access(a, true, v)
	return lat
}

// Drain flushes dirty lines, including the victim cache, to memory. The
// victim cache flushes last: its lines were evicted from the L1 without
// an L2 write-back, so they are fresher than any L2 copy the standard
// drain writes out.
func (h *Victim) Drain() {
	h.Standard.Drain()
	h.vc.Lines(func(_ int, l *cache.Line) {
		if l.Dirty {
			h.mem.WriteLine(l.Addr(h.g1), l.Data)
			l.Dirty = false
		}
	})
}
