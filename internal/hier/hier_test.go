package hier

import (
	"math/rand"
	"testing"

	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
)

func TestBaselineConfigMatchesPaper(t *testing.T) {
	c := BaselineConfig()
	if c.L1.SizeBytes != 8<<10 || c.L1.Assoc != 1 || c.L1.LineBytes != 64 {
		t.Errorf("BC L1 = %+v, want 8K direct-mapped 64B", c.L1)
	}
	if c.L2.SizeBytes != 64<<10 || c.L2.Assoc != 2 || c.L2.LineBytes != 128 {
		t.Errorf("BC L2 = %+v, want 64K 2-way 128B", c.L2)
	}
	if c.Lat != (memsys.Latencies{L1Hit: 1, AffHit: 2, L2Hit: 10, Mem: 100}) {
		t.Errorf("latencies = %+v", c.Lat)
	}
	h := HighAssocConfig()
	if h.L1.Assoc != 2 || h.L2.Assoc != 4 {
		t.Errorf("HAC assoc = %d/%d, want 2/4", h.L1.Assoc, h.L2.Assoc)
	}
	p := PrefetchConfigDefault()
	if p.L1BufEntries != 8 || p.L2BufEntries != 32 {
		t.Errorf("BCP buffers = %d/%d, want 8/32", p.L1BufEntries, p.L2BufEntries)
	}
}

func TestStandardReadAfterWrite(t *testing.T) {
	m := mem.New()
	h, err := NewStandard(BaselineConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	h.Write(0x1000, 42)
	v, lat := h.Read(0x1000)
	if v != 42 {
		t.Fatalf("read %d, want 42", v)
	}
	if lat != 1 {
		t.Errorf("hit latency %d, want 1", lat)
	}
}

func TestStandardLatencies(t *testing.T) {
	m := mem.New()
	m.WriteWord(0x1000, 7)
	h, _ := NewStandard(BaselineConfig(), m)
	if _, lat := h.Read(0x1000); lat != 100 {
		t.Errorf("cold miss latency %d, want 100 (memory)", lat)
	}
	if _, lat := h.Read(0x1004); lat != 1 {
		t.Errorf("same-line hit latency %d, want 1", lat)
	}
	// Evict the L1 line (direct mapped: same set 8K apart) but keep L2.
	h.Read(0x1000 + 8<<10)
	if _, lat := h.Read(0x1000); lat != 10 {
		t.Errorf("L1 miss / L2 hit latency %d, want 10", lat)
	}
}

func TestStandardMissCounting(t *testing.T) {
	m := mem.New()
	h, _ := NewStandard(BaselineConfig(), m)
	h.Read(0x4000) // cold: L1 miss, L2 miss
	h.Read(0x4004) // hit
	h.Read(0x4040) // next L1 line, same L2 line: L1 miss, L2 hit
	s := h.Stats()
	if s.L1.Accesses != 3 || s.L1.Misses != 2 {
		t.Errorf("L1 stats = %+v", s.L1)
	}
	if s.L2.Accesses != 2 || s.L2.Misses != 1 {
		t.Errorf("L2 stats = %+v", s.L2)
	}
	if s.MemReadHalves != 64 { // one 128B line uncompressed = 32 words = 64 halves
		t.Errorf("MemReadHalves = %d, want 64", s.MemReadHalves)
	}
}

func TestBCCTrafficCompressed(t *testing.T) {
	m := mem.New()
	// Line full of small values: every word compressible -> half traffic.
	for i := 0; i < 64; i++ {
		m.WriteWord(mach.Addr(0x8000+i*4), 5)
	}
	bc, _ := NewStandard(BaselineConfig(), mem.New())
	_ = bc
	bcc, _ := NewStandard(CompressedConfig(), m)
	bcc.Read(0x8000)
	if got := bcc.Stats().MemReadHalves; got != 32 {
		t.Errorf("BCC compressible line read = %d halves, want 32", got)
	}
	// A line of incompressible values costs the full 64 halves.
	for i := 0; i < 32; i++ {
		m.WriteWord(mach.Addr(0x20000+i*4), 0x5A5A0000+mach.Word(i)<<16)
	}
	bcc.Read(0x20000)
	if got := bcc.Stats().MemReadHalves - 32; got != 64 {
		t.Errorf("BCC incompressible line read = %d halves, want 64", got)
	}
}

func TestBCCSameMissBehaviourAsBC(t *testing.T) {
	// BCC must have identical hit/miss behaviour to BC on any access
	// sequence; only the traffic differs.
	mA, mB := mem.New(), mem.New()
	bc, _ := NewStandard(BaselineConfig(), mA)
	bcc, _ := NewStandard(CompressedConfig(), mB)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		a := mach.Addr(rng.Intn(1<<17)) &^ 3
		if rng.Intn(2) == 0 {
			v := rng.Uint32()
			bc.Write(a, v)
			bcc.Write(a, v)
		} else {
			v1, l1 := bc.Read(a)
			v2, l2 := bcc.Read(a)
			if v1 != v2 || l1 != l2 {
				t.Fatalf("divergence at %#x: BC (%d,%d) vs BCC (%d,%d)", a, v1, l1, v2, l2)
			}
		}
	}
	sa, sb := bc.Stats(), bcc.Stats()
	if sa.L1 != sb.L1 || sa.L2 != sb.L2 {
		t.Errorf("miss stats diverge: %+v vs %+v", sa, sb)
	}
	if sb.MemReadHalves >= sa.MemReadHalves {
		t.Errorf("BCC traffic (%d) not below BC (%d) on random values", sb.MemReadHalves, sa.MemReadHalves)
	}
}

func TestStandardCoherenceRandom(t *testing.T) {
	for _, cfg := range []Config{BaselineConfig(), CompressedConfig(), HighAssocConfig()} {
		t.Run(cfg.Name, func(t *testing.T) {
			m := mem.New()
			h, err := NewStandard(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			shadow := map[mach.Addr]mach.Word{}
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 100000; i++ {
				a := mach.Addr(rng.Intn(1<<16)) &^ 3
				if rng.Intn(2) == 0 {
					v := rng.Uint32()
					h.Write(a, v)
					shadow[a] = v
				} else if v, _ := h.Read(a); v != shadow[a] {
					t.Fatalf("iter %d: %#x = %d, want %d", i, a, v, shadow[a])
				}
			}
			h.Drain()
			for a, want := range shadow {
				if got := m.ReadWord(a); got != want {
					t.Fatalf("after drain, mem[%#x] = %d, want %d", a, got, want)
				}
			}
		})
	}
}

func TestHACFewerConflictMisses(t *testing.T) {
	// Two lines mapping to the same direct-mapped set ping-pong in BC but
	// coexist in HAC's 2-way L1.
	mA, mB := mem.New(), mem.New()
	bc, _ := NewStandard(BaselineConfig(), mA)
	hac, _ := NewStandard(HighAssocConfig(), mB)
	a, b := mach.Addr(0x0000), mach.Addr(0x2000) // 8K apart: same BC set
	for i := 0; i < 100; i++ {
		bc.Read(a)
		bc.Read(b)
		hac.Read(a)
		hac.Read(b)
	}
	if bcMiss, hacMiss := bc.Stats().L1.Misses, hac.Stats().L1.Misses; bcMiss <= hacMiss {
		t.Errorf("BC misses (%d) should exceed HAC misses (%d) on a conflict pattern", bcMiss, hacMiss)
	}
}

func TestPrefetchNextLineHit(t *testing.T) {
	m := mem.New()
	h, err := NewPrefetch(PrefetchConfigDefault(), m)
	if err != nil {
		t.Fatal(err)
	}
	h.Read(0x1000) // miss; prefetches 0x1040 into the L1 buffer
	if h.pf1.Probe(0x1040) == nil {
		t.Fatal("next line not in L1 prefetch buffer")
	}
	s := h.Stats()
	misses := s.L1.Misses
	h.Read(0x1040) // should hit the buffer, not count as a miss
	if s.L1.Misses != misses {
		t.Errorf("buffer hit counted as a miss")
	}
	if s.PfBufHitsL1 != 1 {
		t.Errorf("PfBufHitsL1 = %d, want 1", s.PfBufHitsL1)
	}
}

func TestPrefetchStreamBehaviour(t *testing.T) {
	// A sequential sweep should turn most L1 misses into buffer hits.
	m := mem.New()
	h, _ := NewPrefetch(PrefetchConfigDefault(), m)
	for a := mach.Addr(0); a < 1<<14; a += 4 {
		h.Read(a)
	}
	s := h.Stats()
	if s.PfBufHitsL1 < 100 {
		t.Errorf("stream produced only %d L1 buffer hits", s.PfBufHitsL1)
	}
	if s.L1.Misses > s.PfBufHitsL1 {
		t.Errorf("stream misses (%d) exceed buffer hits (%d)", s.L1.Misses, s.PfBufHitsL1)
	}
}

func TestPrefetchIncreasesTraffic(t *testing.T) {
	// Random-ish pointer chasing: prefetches are wasted, traffic grows
	// well beyond BC's (the paper reports +80% on average).
	mA, mB := mem.New(), mem.New()
	bc, _ := NewStandard(BaselineConfig(), mA)
	bcp, _ := NewPrefetch(PrefetchConfigDefault(), mB)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		a := mach.Addr(rng.Intn(1<<20)) &^ 3
		bc.Read(a)
		bcp.Read(a)
	}
	if tb, tp := bc.Stats().MemReadHalves, bcp.Stats().MemReadHalves; tp <= tb {
		t.Errorf("BCP traffic (%d) not above BC (%d) on random accesses", tp, tb)
	}
}

func TestPrefetchCoherenceRandom(t *testing.T) {
	m := mem.New()
	h, _ := NewPrefetch(PrefetchConfigDefault(), m)
	shadow := map[mach.Addr]mach.Word{}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100000; i++ {
		// Mix of sequential and random accesses to exercise the buffers.
		var a mach.Addr
		if rng.Intn(4) != 0 {
			a = mach.Addr(rng.Intn(1<<12)) &^ 3
		} else {
			a = mach.Addr(rng.Intn(1<<16)) &^ 3
		}
		if rng.Intn(2) == 0 {
			v := rng.Uint32()
			h.Write(a, v)
			shadow[a] = v
		} else if v, _ := h.Read(a); v != shadow[a] {
			t.Fatalf("iter %d: %#x = %d, want %d", i, a, v, shadow[a])
		}
	}
}

func TestPrefetchWriteToBufferedLine(t *testing.T) {
	m := mem.New()
	h, _ := NewPrefetch(PrefetchConfigDefault(), m)
	h.Read(0x1000) // prefetches 0x1040
	if h.pf1.Probe(0x1040) == nil {
		t.Fatal("expected 0x1040 buffered")
	}
	h.Write(0x1040, 123) // write moves the buffered line into L1
	if h.pf1.Probe(0x1040) != nil {
		t.Error("buffer entry not invalidated after write")
	}
	if v, _ := h.Read(0x1040); v != 123 {
		t.Errorf("read back %d, want 123", v)
	}
}

func TestPrefetchSteadyStateAllocationFree(t *testing.T) {
	// The prefetch path reuses the two scratch line buffers (scr1/scr2)
	// instead of allocating per miss; in steady state a miss-heavy access
	// pattern — buffer hits, promotes, prefetch-throughs, write-backs —
	// must not allocate at all. This pins the BCP allocation fix
	// (~20k -> ~1k allocations per simulated run).
	m := mem.New()
	h, err := NewPrefetch(PrefetchConfigDefault(), m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	batch := func() {
		for i := 0; i < 2000; i++ {
			var a mach.Addr
			if rng.Intn(3) == 0 {
				a = mach.Addr(rng.Intn(1<<18)) &^ 3 // conflict misses + write-backs
			} else {
				a = mach.Addr(i*4) & (1<<16 - 1) // sequential: buffer hits
			}
			if rng.Intn(4) == 0 {
				h.Write(a, rng.Uint32())
			} else {
				h.Read(a)
			}
		}
	}
	batch() // warm-up: cache/buffer storage and obs state settle
	if avg := testing.AllocsPerRun(10, batch); avg > 0 {
		t.Errorf("steady-state BCP batch allocated %.1f times, want 0", avg)
	}
}
