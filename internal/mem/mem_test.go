package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cppcache/internal/mach"
)

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if got := m.ReadWord(0x1000); got != 0 {
		t.Errorf("fresh memory read %#x, want 0", got)
	}
	m.WriteWord(0x1000, 42)
	if got := m.ReadWord(0x1000); got != 42 {
		t.Errorf("read back %d, want 42", got)
	}
}

func TestReadAfterWrite(t *testing.T) {
	m := New()
	f := func(a mach.Addr, v mach.Word) bool {
		m.WriteWord(a, v)
		return m.ReadWord(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnalignedAccessesAlias(t *testing.T) {
	m := New()
	m.WriteWord(0x2001, 7) // aligns down to 0x2000
	if got := m.ReadWord(0x2003); got != 7 {
		t.Errorf("unaligned read got %d, want 7", got)
	}
	if got := m.ReadWord(0x2004); got != 0 {
		t.Errorf("neighbouring word got %d, want 0", got)
	}
}

func TestAdjacentWordsIndependent(t *testing.T) {
	m := New()
	for i := mach.Addr(0); i < 64; i++ {
		m.WriteWord(0x8000+i*4, mach.Word(i+1))
	}
	for i := mach.Addr(0); i < 64; i++ {
		if got := m.ReadWord(0x8000 + i*4); got != mach.Word(i+1) {
			t.Fatalf("word %d = %d, want %d", i, got, i+1)
		}
	}
}

func TestLineRoundTripAcrossPages(t *testing.T) {
	m := New()
	// A line straddling the 4 KiB page boundary.
	base := mach.Addr(pageBytes - 8)
	src := []mach.Word{1, 2, 3, 4}
	m.WriteLine(base, src)
	dst := make([]mach.Word, 4)
	m.ReadLine(base, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
	if m.PagesTouched() != 2 {
		t.Errorf("PagesTouched = %d, want 2", m.PagesTouched())
	}
}

func TestHighAddresses(t *testing.T) {
	m := New()
	m.WriteWord(0xFFFFFFFC, 0xDEADBEEF)
	if got := m.ReadWord(0xFFFFFFFC); got != 0xDEADBEEF {
		t.Errorf("top-of-memory word = %#x", got)
	}
}

// mapMemory is the original map-backed sparse store, kept as the reference
// model for the radix page table's property test.
type mapMemory struct {
	pages map[mach.Addr]*page
}

func (m *mapMemory) readWord(a mach.Addr) mach.Word {
	a = mach.WordAlign(a)
	p := m.pages[a>>pageShift]
	if p == nil {
		return 0
	}
	return p[(a&pageMask)/mach.WordBytes]
}

func (m *mapMemory) writeWord(a mach.Addr, v mach.Word) {
	a = mach.WordAlign(a)
	key := a >> pageShift
	p := m.pages[key]
	if p == nil {
		p = new(page)
		m.pages[key] = p
	}
	p[(a&pageMask)/mach.WordBytes] = v
}

// TestRadixMatchesMapModel drives the radix store and the old map store
// with the same random access stream — word and line ops, clustered and
// scattered addresses, including the top of the address space — and
// requires identical observable behaviour.
func TestRadixMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New()
	ref := &mapMemory{pages: map[mach.Addr]*page{}}

	randAddr := func() mach.Addr {
		switch rng.Intn(4) {
		case 0: // clustered low heap
			return mach.Addr(rng.Intn(1 << 16))
		case 1: // page-boundary neighbourhood
			return mach.Addr(rng.Intn(64))*pageBytes + pageBytes - 32 + mach.Addr(rng.Intn(64))
		case 2: // top of the 32-bit space (wraparound territory)
			return 0xFFFF_FF00 + mach.Addr(rng.Intn(0x100))
		default: // anywhere
			return mach.Addr(rng.Uint32())
		}
	}

	line := make([]mach.Word, 32)
	got := make([]mach.Word, 32)
	for op := 0; op < 20000; op++ {
		a := randAddr()
		switch rng.Intn(4) {
		case 0:
			v := mach.Word(rng.Uint32())
			m.WriteWord(a, v)
			ref.writeWord(a, v)
		case 1:
			if g, w := m.ReadWord(a), ref.readWord(a); g != w {
				t.Fatalf("op %d: ReadWord(%#x) = %#x, map model says %#x", op, a, g, w)
			}
		case 2:
			n := 1 + rng.Intn(len(line))
			for i := 0; i < n; i++ {
				line[i] = mach.Word(rng.Uint32())
			}
			m.WriteLine(a, line[:n])
			base := mach.WordAlign(a)
			for i := 0; i < n; i++ {
				ref.writeWord(base+mach.Addr(i*mach.WordBytes), line[i])
			}
		default:
			n := 1 + rng.Intn(len(line))
			m.ReadLine(a, got[:n])
			base := mach.WordAlign(a)
			for i := 0; i < n; i++ {
				if w := ref.readWord(base + mach.Addr(i*mach.WordBytes)); got[i] != w {
					t.Fatalf("op %d: ReadLine(%#x)[%d] = %#x, map model says %#x", op, a, i, got[i], w)
				}
			}
		}
	}
	if m.PagesTouched() != len(ref.pages) {
		t.Errorf("PagesTouched = %d, map model allocated %d", m.PagesTouched(), len(ref.pages))
	}
}

func TestLineWraparound(t *testing.T) {
	// A line starting near 2^32 wraps to address 0, exactly as per-word
	// Addr arithmetic does.
	m := New()
	src := []mach.Word{10, 20, 30, 40}
	m.WriteLine(0xFFFF_FFF8, src)
	if got := m.ReadWord(0xFFFF_FFF8); got != 10 {
		t.Errorf("word at 0xFFFFFFF8 = %d, want 10", got)
	}
	if got := m.ReadWord(0xFFFF_FFFC); got != 20 {
		t.Errorf("word at 0xFFFFFFFC = %d, want 20", got)
	}
	if got := m.ReadWord(0); got != 30 {
		t.Errorf("word at 0 = %d, want 30 (wrapped)", got)
	}
	if got := m.ReadWord(4); got != 40 {
		t.Errorf("word at 4 = %d, want 40 (wrapped)", got)
	}
	dst := make([]mach.Word, 4)
	m.ReadLine(0xFFFF_FFF8, dst)
	for i, v := range src {
		if dst[i] != v {
			t.Errorf("ReadLine wrap [%d] = %d, want %d", i, dst[i], v)
		}
	}
}

func TestLineStraddlesLeafBoundary(t *testing.T) {
	// The radix leaf covers 1024 pages = 4 MiB; a line crossing that
	// boundary exercises a root-level switch mid-line.
	m := New()
	leafSpan := mach.Addr(leafSize) * pageBytes
	base := leafSpan - 8
	src := []mach.Word{1, 2, 3, 4}
	m.WriteLine(base, src)
	dst := make([]mach.Word, 4)
	m.ReadLine(base, dst)
	for i, v := range src {
		if dst[i] != v {
			t.Fatalf("leaf-straddling line [%d] = %d, want %d", i, dst[i], v)
		}
	}
	if m.PagesTouched() != 2 {
		t.Errorf("PagesTouched = %d, want 2", m.PagesTouched())
	}
}

func TestResetReuse(t *testing.T) {
	m := New()
	m.WriteWord(0x1000, 1)
	m.WriteWord(0xFFFF_F000, 2)
	if m.PagesTouched() != 2 {
		t.Fatalf("PagesTouched = %d before reset", m.PagesTouched())
	}
	m.Reset()
	if m.PagesTouched() != 0 {
		t.Errorf("PagesTouched = %d after Reset, want 0", m.PagesTouched())
	}
	if got := m.ReadWord(0x1000); got != 0 {
		t.Errorf("post-Reset read = %d, want 0", got)
	}
	// The memory must be fully usable again.
	m.WriteWord(0x1000, 77)
	if got := m.ReadWord(0x1000); got != 77 {
		t.Errorf("post-Reset write/read = %d, want 77", got)
	}
	if m.PagesTouched() != 1 {
		t.Errorf("PagesTouched = %d after rewrite, want 1", m.PagesTouched())
	}
}

func TestLastPageCacheInvalidation(t *testing.T) {
	// Alternate between two pages so the last-page cache repeatedly
	// invalidates; values must never bleed between pages.
	m := New()
	for i := 0; i < 100; i++ {
		m.WriteWord(0x0000+mach.Addr(i*4), mach.Word(i))
		m.WriteWord(0x4000+mach.Addr(i*4), mach.Word(1000+i))
	}
	for i := 0; i < 100; i++ {
		if got := m.ReadWord(0x0000 + mach.Addr(i*4)); got != mach.Word(i) {
			t.Fatalf("page A word %d = %d", i, got)
		}
		if got := m.ReadWord(0x4000 + mach.Addr(i*4)); got != mach.Word(1000+i) {
			t.Fatalf("page B word %d = %d", i, got)
		}
	}
}

func BenchmarkWriteWord(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		m.WriteWord(mach.Addr(i*4)&0xFFFFF, mach.Word(i))
	}
}

func BenchmarkReadWord(b *testing.B) {
	m := New()
	for i := 0; i < 1<<18; i += 4 {
		m.WriteWord(mach.Addr(i), mach.Word(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ReadWord(mach.Addr(i*4) & 0x3FFFF)
	}
}
