package mem

import (
	"testing"
	"testing/quick"

	"cppcache/internal/mach"
)

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if got := m.ReadWord(0x1000); got != 0 {
		t.Errorf("fresh memory read %#x, want 0", got)
	}
	m.WriteWord(0x1000, 42)
	if got := m.ReadWord(0x1000); got != 42 {
		t.Errorf("read back %d, want 42", got)
	}
}

func TestReadAfterWrite(t *testing.T) {
	m := New()
	f := func(a mach.Addr, v mach.Word) bool {
		m.WriteWord(a, v)
		return m.ReadWord(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnalignedAccessesAlias(t *testing.T) {
	m := New()
	m.WriteWord(0x2001, 7) // aligns down to 0x2000
	if got := m.ReadWord(0x2003); got != 7 {
		t.Errorf("unaligned read got %d, want 7", got)
	}
	if got := m.ReadWord(0x2004); got != 0 {
		t.Errorf("neighbouring word got %d, want 0", got)
	}
}

func TestAdjacentWordsIndependent(t *testing.T) {
	m := New()
	for i := mach.Addr(0); i < 64; i++ {
		m.WriteWord(0x8000+i*4, mach.Word(i+1))
	}
	for i := mach.Addr(0); i < 64; i++ {
		if got := m.ReadWord(0x8000 + i*4); got != mach.Word(i+1) {
			t.Fatalf("word %d = %d, want %d", i, got, i+1)
		}
	}
}

func TestLineRoundTripAcrossPages(t *testing.T) {
	m := New()
	// A line straddling the 4 KiB page boundary.
	base := mach.Addr(pageBytes - 8)
	src := []mach.Word{1, 2, 3, 4}
	m.WriteLine(base, src)
	dst := make([]mach.Word, 4)
	m.ReadLine(base, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
	if m.PagesTouched() != 2 {
		t.Errorf("PagesTouched = %d, want 2", m.PagesTouched())
	}
}

func TestHighAddresses(t *testing.T) {
	m := New()
	m.WriteWord(0xFFFFFFFC, 0xDEADBEEF)
	if got := m.ReadWord(0xFFFFFFFC); got != 0xDEADBEEF {
		t.Errorf("top-of-memory word = %#x", got)
	}
}

func BenchmarkWriteWord(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		m.WriteWord(mach.Addr(i*4)&0xFFFFF, mach.Word(i))
	}
}

func BenchmarkReadWord(b *testing.B) {
	m := New()
	for i := 0; i < 1<<18; i += 4 {
		m.WriteWord(mach.Addr(i), mach.Word(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ReadWord(mach.Addr(i*4) & 0x3FFFF)
	}
}
