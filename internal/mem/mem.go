// Package mem models word-addressable main memory.
//
// The store is sparse: pages are allocated on first touch and unwritten
// words read as zero, so a 32-bit address space costs only what the
// workload actually uses. Off-chip memory always holds values in their
// uncompressed form (§3.1); compression happens at the bus interface,
// which is modelled by the cache hierarchies, not here.
package mem

import "cppcache/internal/mach"

const (
	pageWords = 1024                       // words per page
	pageBytes = pageWords * mach.WordBytes // 4 KiB pages
	pageShift = 12                         // log2(pageBytes)
	pageMask  = mach.Addr(pageBytes - 1)   // offset within page
)

type page [pageWords]mach.Word

// Memory is a sparse, word-addressable 32-bit memory. The zero value is an
// all-zero memory ready to use.
type Memory struct {
	pages map[mach.Addr]*page
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[mach.Addr]*page)}
}

func (m *Memory) pageFor(a mach.Addr, create bool) *page {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[mach.Addr]*page)
	}
	key := a >> pageShift
	p := m.pages[key]
	if p == nil && create {
		p = new(page)
		m.pages[key] = p
	}
	return p
}

// ReadWord returns the word stored at the word-aligned address a.
// Unwritten memory reads as zero.
func (m *Memory) ReadWord(a mach.Addr) mach.Word {
	a = mach.WordAlign(a)
	p := m.pageFor(a, false)
	if p == nil {
		return 0
	}
	return p[(a&pageMask)/mach.WordBytes]
}

// WriteWord stores v at the word-aligned address a.
func (m *Memory) WriteWord(a mach.Addr, v mach.Word) {
	a = mach.WordAlign(a)
	p := m.pageFor(a, true)
	p[(a&pageMask)/mach.WordBytes] = v
}

// ReadLine fills dst with the n=len(dst) consecutive words starting at the
// word-aligned address a. The line may span page boundaries.
func (m *Memory) ReadLine(a mach.Addr, dst []mach.Word) {
	a = mach.WordAlign(a)
	for i := range dst {
		dst[i] = m.ReadWord(a + mach.Addr(i*mach.WordBytes))
	}
}

// WriteLine stores the words of src at consecutive addresses from a.
func (m *Memory) WriteLine(a mach.Addr, src []mach.Word) {
	a = mach.WordAlign(a)
	for i, v := range src {
		m.WriteWord(a+mach.Addr(i*mach.WordBytes), v)
	}
}

// PagesTouched returns the number of distinct 4 KiB pages ever written.
func (m *Memory) PagesTouched() int { return len(m.pages) }
