// Package mem models word-addressable main memory.
//
// The store is sparse: pages are allocated on first touch and unwritten
// words read as zero, so a 32-bit address space costs only what the
// workload actually uses. Off-chip memory always holds values in their
// uncompressed form (§3.1); compression happens at the bus interface,
// which is modelled by the cache hierarchies, not here.
//
// Pages are reached through a two-level radix table over the 20-bit page
// number (10 root bits, 10 leaf bits) rather than a hash map, so the
// per-word path is two array indexations with no hashing; a last-page
// cache short-circuits even those for the common same-page access runs
// that cache-line fills and write-backs produce.
package mem

import "cppcache/internal/mach"

const (
	pageWords = 1024                       // words per page
	pageBytes = pageWords * mach.WordBytes // 4 KiB pages
	pageShift = 12                         // log2(pageBytes)
	pageMask  = mach.Addr(pageBytes - 1)   // offset within page

	// Radix split of the 20-bit page number (32 - pageShift).
	leafBits = 10
	leafSize = 1 << leafBits
	leafMask = mach.Addr(leafSize - 1)
	rootBits = 32 - pageShift - leafBits
	rootSize = 1 << rootBits

	// noPage is an impossible page key (real keys fit in 20 bits), used
	// to invalidate the last-page cache.
	noPage = mach.Addr(1) << (32 - pageShift)
)

type page [pageWords]mach.Word

// leaf is the second radix level: pointers to 1024 consecutive pages.
type leaf [leafSize]*page

// Memory is a sparse, word-addressable 32-bit memory. The zero value is an
// all-zero memory ready to use.
type Memory struct {
	root    [rootSize]*leaf
	lastKey mach.Addr // page number of lastPage; noPage when invalid
	last    *page
	touched int // distinct pages allocated
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{lastKey: noPage}
}

// Reset drops every written page, returning the memory to all-zeros while
// keeping the top-level table for reuse. It is equivalent to New but lets
// long-lived callers (benchmark harnesses, pooled simulations) avoid
// re-zeroing the root.
func (m *Memory) Reset() {
	for i := range m.root {
		m.root[i] = nil
	}
	m.lastKey = noPage
	m.last = nil
	m.touched = 0
}

// lookup returns the page with the given page number, or nil.
func (m *Memory) lookup(key mach.Addr) *page {
	l := m.root[key>>leafBits]
	if l == nil {
		return nil
	}
	return l[key&leafMask]
}

// create returns the page with the given page number, allocating it (and
// its leaf) on first touch.
func (m *Memory) create(key mach.Addr) *page {
	l := m.root[key>>leafBits]
	if l == nil {
		l = new(leaf)
		m.root[key>>leafBits] = l
	}
	p := l[key&leafMask]
	if p == nil {
		p = new(page)
		l[key&leafMask] = p
		m.touched++
	}
	return p
}

// ReadWord returns the word stored at the word-aligned address a.
// Unwritten memory reads as zero.
func (m *Memory) ReadWord(a mach.Addr) mach.Word {
	key := a >> pageShift
	if key == m.lastKey && m.last != nil {
		return m.last[(a&pageMask)/mach.WordBytes]
	}
	p := m.lookup(key)
	if p == nil {
		return 0
	}
	m.lastKey = key
	m.last = p
	return p[(a&pageMask)/mach.WordBytes]
}

// WriteWord stores v at the word-aligned address a.
func (m *Memory) WriteWord(a mach.Addr, v mach.Word) {
	key := a >> pageShift
	if key == m.lastKey && m.last != nil {
		m.last[(a&pageMask)/mach.WordBytes] = v
		return
	}
	p := m.create(key)
	m.lastKey = key
	m.last = p
	p[(a&pageMask)/mach.WordBytes] = v
}

// ReadLine fills dst with the n=len(dst) consecutive words starting at the
// word-aligned address a. The line may span page boundaries, and addresses
// wrap modulo 2^32 like every Addr computation.
func (m *Memory) ReadLine(a mach.Addr, dst []mach.Word) {
	a = mach.WordAlign(a)
	key := noPage
	var p *page
	for i := range dst {
		ai := a + mach.Addr(i*mach.WordBytes)
		if k := ai >> pageShift; k != key {
			key = k
			p = m.lookup(k)
		}
		if p == nil {
			dst[i] = 0
		} else {
			dst[i] = p[(ai&pageMask)/mach.WordBytes]
		}
	}
}

// WriteLine stores the words of src at consecutive addresses from a.
func (m *Memory) WriteLine(a mach.Addr, src []mach.Word) {
	a = mach.WordAlign(a)
	key := noPage
	var p *page
	for i, v := range src {
		ai := a + mach.Addr(i*mach.WordBytes)
		if k := ai >> pageShift; k != key {
			key = k
			p = m.create(k)
		}
		p[(ai&pageMask)/mach.WordBytes] = v
	}
}

// PagesTouched returns the number of distinct 4 KiB pages ever written.
func (m *Memory) PagesTouched() int { return m.touched }
