// Package memsys defines the interface between the simulated processor
// core and a data memory hierarchy, the latency configuration shared by
// all cache designs, and the statistics they report.
//
// Five hierarchies implement System (§4.1 of the paper): BC, BCC and HAC
// (internal/hier.Standard), BCP (internal/hier.Prefetch), and the paper's
// contribution CPP (internal/core.Hierarchy).
package memsys

import "cppcache/internal/mach"

// System is a two-level data memory hierarchy backed by main memory.
// Read and Write return the access latency in cycles; Read also returns
// the loaded word so that callers can verify functional correctness
// through the compression machinery.
type System interface {
	// Read loads the word at the word-aligned address a.
	Read(a mach.Addr) (v mach.Word, lat int)
	// Write stores v at the word-aligned address a.
	Write(a mach.Addr, v mach.Word) (lat int)
	// Stats returns the accumulated statistics. The pointer stays valid
	// and live for the lifetime of the system.
	Stats() *Stats
	// Name identifies the configuration (BC, BCC, HAC, BCP, CPP).
	Name() string
}

// Latencies holds the access latencies of Figure 9. Each value is the
// total latency of a hit at that point of the hierarchy.
type Latencies struct {
	L1Hit  int // L1 D-cache hit (1 cycle)
	AffHit int // CPP only: hit in the affiliated line (next cycle, 2)
	L2Hit  int // L1 miss, L2 hit (10 cycles)
	Mem    int // L2 miss, memory access (100 cycles)
}

// DefaultLatencies returns the paper's baseline latencies.
func DefaultLatencies() Latencies {
	return Latencies{L1Hit: 1, AffHit: 2, L2Hit: 10, Mem: 100}
}

// Halved returns the latencies with the miss penalties halved, as used by
// the miss-importance experiment (Figure 14, S_enhanced = 2). Hit latency
// is unchanged: only the penalty of going past L1 is halved.
func (l Latencies) Halved() Latencies {
	return Latencies{
		L1Hit:  l.L1Hit,
		AffHit: l.AffHit,
		L2Hit:  (l.L2Hit + 1) / 2,
		Mem:    (l.Mem + 1) / 2,
	}
}

// LevelStats counts events at one cache level.
type LevelStats struct {
	Accesses   int64 // demand reads + writes reaching this level
	Misses     int64 // demand accesses not satisfied at this level
	Writebacks int64 // dirty lines written to the next level
}

// MissRate returns Misses/Accesses, or 0 for an idle level.
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Stats accumulates hierarchy statistics. Traffic is counted in half-words
// (16-bit units) so that compressed transfers need no floating point: an
// uncompressed word moves 2 half-words, a compressed word moves 1.
type Stats struct {
	L1 LevelStats
	L2 LevelStats

	// Off-chip traffic on the L2<->memory bus, in half-words.
	MemReadHalves  int64
	MemWriteHalves int64

	// Prefetching (BCP).
	PfBufHitsL1 int64 // demand accesses satisfied by the L1 prefetch buffer
	PfBufHitsL2 int64
	PfIssuedL1  int64 // prefetch fetches issued into the L1 buffer
	PfIssuedL2  int64

	// Compression-enabled partial prefetching (CPP).
	AffHitsL1            int64 // demand hits in an affiliated line
	AffHitsL2            int64
	PartialFillsL1       int64 // L1 fills that arrived with fewer than all words
	AffPlacements        int64 // evicted lines salvaged into their affiliated place
	AffWordsPrefetchedL1 int64 // words installed in L1 as affiliated prefetch data
	AffWordsPrefetchedL2 int64 // words installed in L2 as affiliated prefetch data
	Promotions           int64 // affiliated lines moved to their primary place
	ConflictEvictions    int64 // affiliated words dropped by compressible->incompressible writes
	L1WbOffChip          int64 // L1 write-backs that found no L2 primary copy and went to memory
	L1WbToAffMirror      int64 // of those, how many refreshed an L2 affiliated mirror
}

// MemTrafficWords returns total off-chip traffic in (32-bit) words.
func (s *Stats) MemTrafficWords() float64 {
	return float64(s.MemReadHalves+s.MemWriteHalves) / 2
}

// Occupancy reports the physical usage of one cache structure. Counts are
// kept at two granularities: whole lines (frames) and 16-bit half-words,
// the unit of compressed storage. A correct hierarchy never reports
// Lines > LineCap or Halves > HalfCap; internal/verify asserts this after
// every access batch.
type Occupancy struct {
	Level   string // "L1", "L2", "L1 prefetch buffer", ...
	Lines   int    // valid lines resident
	LineCap int    // physical frames
	Halves  int    // half-words of data stored (compressed words count 1)
	HalfCap int    // physical half-word capacity
	// CompHalves is the compressed footprint of the resident data under
	// the hierarchy's line-compression scheme, when the cache tracks one
	// in its tag metadata (0 otherwise). It may legitimately exceed
	// Halves for schemes whose worst case expands the line; verify bounds
	// it by the scheme's declared worst case instead.
	CompHalves int
}

// Inspector is implemented by hierarchies that can report their physical
// occupancy for invariant checking (see internal/verify).
type Inspector interface {
	Occupancies() []Occupancy
}
