package memsys

import "testing"

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	if l.L1Hit != 1 || l.AffHit != 2 || l.L2Hit != 10 || l.Mem != 100 {
		t.Errorf("DefaultLatencies() = %+v", l)
	}
}

func TestHalved(t *testing.T) {
	h := DefaultLatencies().Halved()
	if h.L1Hit != 1 {
		t.Errorf("hit latency must not change: %d", h.L1Hit)
	}
	if h.L2Hit != 5 || h.Mem != 50 {
		t.Errorf("Halved() = %+v, want L2Hit=5 Mem=50", h)
	}
	// Halving rounds up so a 1-cycle penalty never reaches 0.
	odd := Latencies{L1Hit: 1, AffHit: 2, L2Hit: 3, Mem: 7}.Halved()
	if odd.L2Hit != 2 || odd.Mem != 4 {
		t.Errorf("odd Halved() = %+v", odd)
	}
}

func TestMissRate(t *testing.T) {
	s := LevelStats{Accesses: 200, Misses: 50}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v", got)
	}
	var zero LevelStats
	if zero.MissRate() != 0 {
		t.Error("idle level should report 0")
	}
}

func TestMemTrafficWords(t *testing.T) {
	s := Stats{MemReadHalves: 10, MemWriteHalves: 5}
	if got := s.MemTrafficWords(); got != 7.5 {
		t.Errorf("MemTrafficWords = %v", got)
	}
}
