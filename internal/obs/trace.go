package obs

import (
	"bytes"
	"encoding/json"
	"fmt"

	"cppcache/internal/mach"
)

// EventKind enumerates the traced simulator events.
type EventKind uint8

// Event kinds. Cache-structure events carry the line's base address;
// word-grain events (compression transitions) carry the word address.
const (
	EvFillL1         EventKind = iota // L1 line installed (aux: words present)
	EvFillL2                          // L2 line installed (aux: words present)
	EvEvictL1                         // L1 line evicted (aux: 1 if dirty)
	EvEvictL2                         // L2 line evicted (aux: 1 if dirty)
	EvAffPrefetch                     // affiliated words installed (aux: word count)
	EvAffHitL1                        // demand hit in an L1 affiliated line
	EvAffHitL2                        // demand hit served from L2 affiliated storage
	EvPromote                         // affiliated line promoted to its primary place
	EvCompTransition                  // compressible -> incompressible write evicted an affiliated word
	EvVictimPlace                     // evicted line salvaged into its affiliated place
	EvPfIssue                         // BCP prefetch issued into a buffer (aux: level)
	EvPfBufHit                        // BCP demand hit in a prefetch buffer (aux: level)

	numEventKinds
)

var eventNames = [numEventKinds]string{
	EvFillL1:         "fill-l1",
	EvFillL2:         "fill-l2",
	EvEvictL1:        "evict-l1",
	EvEvictL2:        "evict-l2",
	EvAffPrefetch:    "aff-prefetch",
	EvAffHitL1:       "aff-hit-l1",
	EvAffHitL2:       "aff-hit-l2",
	EvPromote:        "promote",
	EvCompTransition: "comp-transition",
	EvVictimPlace:    "victim-place",
	EvPfIssue:        "pf-issue",
	EvPfBufHit:       "pf-buf-hit",
}

// eventTIDs groups kinds into Chrome trace threads: 1 = L1, 2 = L2,
// 3 = prefetch machinery.
var eventTIDs = [numEventKinds]int{
	EvFillL1:         1,
	EvFillL2:         2,
	EvEvictL1:        1,
	EvEvictL2:        2,
	EvAffPrefetch:    3,
	EvAffHitL1:       1,
	EvAffHitL2:       2,
	EvPromote:        1,
	EvCompTransition: 1,
	EvVictimPlace:    3,
	EvPfIssue:        3,
	EvPfBufHit:       3,
}

// String returns the stable event name used in trace output.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event-%d", int(k))
}

// Event is one traced simulator event.
type Event struct {
	Cycle int64
	Kind  EventKind
	Addr  mach.Addr
	Aux   int64
}

// Event pushes one event into the trace ring. The current simulated time
// (set by Tick/OpTick) is stamped on it. No-op without a ring.
func (r *Recorder) Event(kind EventKind, addr mach.Addr, aux int64) {
	if r == nil || r.ring == nil {
		return
	}
	r.ring.push(Event{Cycle: r.now, Kind: kind, Addr: addr, Aux: aux})
}

// TraceEnabled reports whether an event ring is attached; hook sites with
// non-trivial argument preparation can use it to skip that work.
func (r *Recorder) TraceEnabled() bool { return r != nil && r.ring != nil }

// TraceEvents returns the retained events, oldest first.
func (r *Recorder) TraceEvents() []Event {
	if r == nil || r.ring == nil {
		return nil
	}
	return r.ring.events()
}

// TraceDropped returns how many events were dropped (overwritten) because
// the ring was full.
func (r *Recorder) TraceDropped() int64 {
	if r == nil || r.ring == nil {
		return 0
	}
	return r.ring.dropped
}

// ring is a fixed-capacity event buffer that overwrites its oldest entry
// when full, counting every overwrite as a drop: the trace keeps the most
// recent window of activity, like a flight recorder.
type ring struct {
	buf     []Event
	head    int // index of the oldest event
	n       int
	dropped int64
}

func newRing(capacity int) *ring { return &ring{buf: make([]Event, capacity)} }

func (g *ring) push(e Event) {
	if g.n < len(g.buf) {
		g.buf[(g.head+g.n)%len(g.buf)] = e
		g.n++
		return
	}
	g.buf[g.head] = e
	g.head = (g.head + 1) % len(g.buf)
	g.dropped++
}

func (g *ring) events() []Event {
	out := make([]Event, g.n)
	for i := 0; i < g.n; i++ {
		out[i] = g.buf[(g.head+i)%len(g.buf)]
	}
	return out
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Field order is fixed by the struct, keeping the output byte-stable for
// golden tests.
type chromeEvent struct {
	Name  string     `json:"name"`
	Ph    string     `json:"ph"`
	TS    int64      `json:"ts"`
	PID   int        `json:"pid"`
	TID   int        `json:"tid"`
	Scope string     `json:"s,omitempty"`
	Args  *chromeArg `json:"args,omitempty"`
}

type chromeArg struct {
	Addr string `json:"addr,omitempty"`
	Aux  int64  `json:"aux,omitempty"`
	Name string `json:"name,omitempty"`
}

// chromeTrace is the top-level trace_event envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Dropped         int64         `json:"droppedEventCount"`
}

// threadNames labels the Chrome trace threads.
var threadNames = map[int]string{1: "L1", 2: "L2", 3: "prefetch"}

// ChromeTrace renders the retained events as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto. Events are instants ("ph":"i")
// with one simulated cycle mapped to one microsecond.
func (r *Recorder) ChromeTrace() []byte {
	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if r != nil && r.ring != nil {
		tr.Dropped = r.ring.dropped
		for tid := 1; tid <= 3; tid++ {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 0, TID: tid,
				Args: &chromeArg{Name: threadNames[tid]},
			})
		}
		for _, e := range r.ring.events() {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name:  e.Kind.String(),
				Ph:    "i",
				TS:    e.Cycle,
				PID:   0,
				TID:   eventTIDs[e.Kind],
				Scope: "t",
				Args:  &chromeArg{Addr: fmt.Sprintf("%#08x", e.Addr), Aux: e.Aux},
			})
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(tr); err != nil {
		// The structs above contain nothing json.Marshal can reject.
		panic(fmt.Sprintf("obs: chrome trace encoding: %v", err))
	}
	return buf.Bytes()
}
