package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"cppcache/internal/memsys"
)

// TestIntervalRolloverConservation drives a recorder through a synthetic
// run and checks the partition property: every counter column summed over
// all snapshots equals the end-of-run total, with no interval counted
// twice and none lost — including when a weighted tick jumps over several
// boundaries at once and when the run ends mid-interval.
func TestIntervalRolloverConservation(t *testing.T) {
	var st memsys.Stats
	r := New(Config{Interval: 100})
	r.AttachStats(&st)

	var insts int64
	cycle := int64(0)
	steps := []int64{1, 1, 50, 1, 250, 3, 90, 1, 1, 400, 7} // jumps across 0, 1 and 4 boundaries
	for i, w := range steps {
		cycle += w
		st.L1.Accesses += 10 * int64(i+1)
		st.L1.Misses += int64(i)
		st.MemReadHalves += 32
		st.AffHitsL1 += 2
		insts += 5 * w
		r.FillWords(16, 9)
		r.Tick(cycle, w, 8, insts)
	}
	r.Finish()
	r.Finish() // idempotent

	snaps := r.Snapshots()
	if len(snaps) < 3 {
		t.Fatalf("expected several snapshots, got %d", len(snaps))
	}
	var sum Snapshot
	for i, s := range snaps {
		if i > 0 && s.Cycle <= snaps[i-1].Cycle {
			t.Errorf("snapshot %d cycle %d not after %d", i, s.Cycle, snaps[i-1].Cycle)
		}
		sum.Instructions += s.Instructions
		sum.L1Accesses += s.L1Accesses
		sum.L1Misses += s.L1Misses
		sum.MemReadHalves += s.MemReadHalves
		sum.AffHits += s.AffHits
		sum.FillWords += s.FillWords
		sum.FillCompWords += s.FillCompWords
		sum.ROBOccSum += s.ROBOccSum
		sum.ROBOccSamples += s.ROBOccSamples
	}
	if sum.Instructions != insts {
		t.Errorf("instructions: snapshots sum to %d, total %d", sum.Instructions, insts)
	}
	if sum.L1Accesses != st.L1.Accesses || sum.L1Misses != st.L1.Misses {
		t.Errorf("L1: snapshots sum to %d/%d, totals %d/%d",
			sum.L1Accesses, sum.L1Misses, st.L1.Accesses, st.L1.Misses)
	}
	if sum.MemReadHalves != st.MemReadHalves {
		t.Errorf("traffic: snapshots sum to %d, total %d", sum.MemReadHalves, st.MemReadHalves)
	}
	if sum.AffHits != st.AffHitsL1 {
		t.Errorf("aff hits: snapshots sum to %d, total %d", sum.AffHits, st.AffHitsL1)
	}
	if want := int64(16 * len(steps)); sum.FillWords != want {
		t.Errorf("fill words: snapshots sum to %d, total %d", sum.FillWords, want)
	}
	if want := int64(9 * len(steps)); sum.FillCompWords != want {
		t.Errorf("fill comp words: snapshots sum to %d, total %d", sum.FillCompWords, want)
	}
	if sum.ROBOccSamples != cycle {
		t.Errorf("rob samples: snapshots sum to %d, cycles %d", sum.ROBOccSamples, cycle)
	}
	if want := 8 * cycle; sum.ROBOccSum != want {
		t.Errorf("rob sum: snapshots sum to %d, want %d", sum.ROBOccSum, want)
	}
}

// TestMemPagesGauge checks the footprint sampler is recorded as an
// absolute gauge, not a delta.
func TestMemPagesGauge(t *testing.T) {
	var st memsys.Stats
	pages := 0
	r := New(Config{Interval: 10})
	r.AttachStats(&st)
	r.AttachMemPages(func() int { return pages })
	pages = 3
	st.L1.Accesses++
	r.OpTick(10)
	pages = 5
	st.L1.Accesses++
	r.OpTick(20)
	snaps := r.Snapshots()
	if len(snaps) != 2 || snaps[0].PagesTouched != 3 || snaps[1].PagesTouched != 5 {
		t.Errorf("pages gauge = %+v, want 3 then 5", snaps)
	}
}

// TestFinishWithoutActivity checks Finish emits no empty trailing snapshot.
func TestFinishWithoutActivity(t *testing.T) {
	var st memsys.Stats
	r := New(Config{Interval: 100})
	r.AttachStats(&st)
	st.L1.Accesses = 7
	r.Tick(100, 100, 1, 3)
	n := len(r.Snapshots())
	r.Finish() // nothing happened since the boundary snapshot
	if len(r.Snapshots()) != n {
		t.Errorf("Finish added an empty snapshot: %d -> %d", n, len(r.Snapshots()))
	}
}

// TestOpTick checks the functional-mode clock takes snapshots on op
// boundaries.
func TestOpTick(t *testing.T) {
	var st memsys.Stats
	r := New(Config{Interval: 10})
	r.AttachStats(&st)
	for op := int64(1); op <= 25; op++ {
		st.L1.Accesses++
		r.OpTick(op)
	}
	r.Finish()
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3 (10, 20, final 25)", len(snaps))
	}
	if snaps[0].Cycle != 10 || snaps[1].Cycle != 20 || snaps[2].Cycle != 25 {
		t.Errorf("snapshot cycles = %d,%d,%d", snaps[0].Cycle, snaps[1].Cycle, snaps[2].Cycle)
	}
	if snaps[0].L1Accesses != 10 || snaps[1].L1Accesses != 10 || snaps[2].L1Accesses != 5 {
		t.Errorf("snapshot access deltas = %d,%d,%d, want 10,10,5",
			snaps[0].L1Accesses, snaps[1].L1Accesses, snaps[2].L1Accesses)
	}
}

// TestNilRecorder checks every exported hook is safe on a nil receiver.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.AttachStats(nil)
	r.Tick(1, 1, 0, 0)
	r.OpTick(1)
	r.FillWords(1, 1)
	r.FillLine(nil, 0)
	r.ObserveLoadToUse(1)
	r.ObserveMissService(1)
	r.Event(EvFillL1, 0, 0)
	r.Finish()
	if r.Snapshots() != nil || r.TraceEvents() != nil || r.TraceDropped() != 0 {
		t.Error("nil recorder returned data")
	}
	if r.MetricsCSV() != "" || r.HistogramsText() != "" || r.TraceEnabled() {
		t.Error("nil recorder rendered output")
	}
	if b, err := r.MetricsJSON(); err != nil || string(b) != "[]" {
		t.Errorf("nil MetricsJSON = %q, %v", b, err)
	}
	if !json.Valid(r.ChromeTrace()) {
		t.Error("nil ChromeTrace is not valid JSON")
	}
}

func TestMetricsCSVShape(t *testing.T) {
	var st memsys.Stats
	r := New(Config{Interval: 5})
	r.AttachStats(&st)
	st.L1.Accesses = 3
	r.OpTick(5)
	csv := r.MetricsCSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "cycle,") {
		t.Errorf("header = %q", lines[0])
	}
	hdr := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(hdr) != len(row) {
		t.Errorf("header has %d fields, row has %d", len(hdr), len(row))
	}
	var fromJSON []Snapshot
	b, err := r.MetricsJSON()
	if err != nil || json.Unmarshal(b, &fromJSON) != nil {
		t.Fatalf("MetricsJSON: %v", err)
	}
	if len(fromJSON) != 1 || fromJSON[0].L1Accesses != 3 {
		t.Errorf("JSON round-trip = %+v", fromJSON)
	}
}
