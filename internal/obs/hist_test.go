package obs

import (
	"strings"
	"testing"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-100, 0}, {-1, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{16, 5}, {31, 5},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{1 << 61, 62}, {1<<62 - 1, 62},
		{1 << 62, 63}, {1<<63 - 1, 63}, // top bucket saturates
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// Every bucket's bounds must map back to that bucket, and consecutive
// buckets must tile the positive axis with no gap or overlap.
func TestBucketBoundsRoundTrip(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if i > 0 {
			if got := BucketIndex(lo); got != i {
				t.Errorf("bucket %d: BucketIndex(lo=%d) = %d", i, lo, got)
			}
			if got := BucketIndex(hi); got != i {
				t.Errorf("bucket %d: BucketIndex(hi=%d) = %d", i, hi, got)
			}
			prevLo, prevHi := BucketBounds(i - 1)
			if i > 1 && lo != prevHi+1 {
				t.Errorf("gap between bucket %d (hi=%d) and %d (lo=%d)", i-1, prevHi, i, lo)
			}
			_ = prevLo
		}
	}
	// Bucket 0 takes everything non-positive; bucket 1 starts at 1.
	if lo, hi := BucketBounds(0); hi != 0 || lo > -1 {
		t.Errorf("bucket 0 bounds = [%d, %d], want hi 0", lo, hi)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []int64{1, 1, 3, 4, 100, 0} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Sum != 109 || h.Max != 100 {
		t.Fatalf("count=%d sum=%d max=%d, want 6/109/100", h.Count, h.Sum, h.Max)
	}
	if got, want := h.Mean(), 109.0/6; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	bks := h.Buckets()
	// Expect buckets: 0 (v=0), 1 (two 1s), 2 (v=3), 3 (v=4), 7 (v=100: 64..127),
	// keyed by each bucket's low bound (bucket 0 spans the non-positives).
	wantCounts := map[int64]int64{-1 << 62: 1, 1: 2, 2: 1, 4: 1, 64: 1}
	if len(bks) != len(wantCounts) {
		t.Fatalf("got %d non-empty buckets, want %d: %+v", len(bks), len(wantCounts), bks)
	}
	for _, b := range bks {
		if wantCounts[b.Lo] != b.Count {
			t.Errorf("bucket lo=%d count=%d, want %d", b.Lo, b.Count, wantCounts[b.Lo])
		}
	}
	if s := h.String(); !strings.Contains(s, "lat: n=6") || !strings.Contains(s, "#") {
		t.Errorf("String() missing header or bars:\n%s", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Mean() != 0 || len(h.Buckets()) != 0 {
		t.Error("empty histogram should have zero mean and no buckets")
	}
	if s := h.String(); !strings.Contains(s, "n=0") {
		t.Errorf("String() = %q", s)
	}
}
