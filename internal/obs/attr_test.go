package obs

import (
	"strings"
	"testing"

	"cppcache/internal/mach"
)

func attrRecorder(regionBits int) *Recorder {
	return New(Config{Attr: true, AttrRegionBits: regionBits})
}

// TestAttrNilAndDisabled pins the inertness contract: every attribution
// hook is a no-op on a nil recorder and on a recorder built without Attr.
func TestAttrNilAndDisabled(t *testing.T) {
	var nilRec *Recorder
	plain := New(Config{})
	for _, r := range []*Recorder{nilRec, plain} {
		r.SetAccessPC(0x100)
		r.AttrMiss(0x2000)
		r.AttrAffHit(0x2000)
		r.AttrFillFail(0x2000, 8)
		if r.AttrEnabled() {
			t.Error("AttrEnabled on inert recorder")
		}
		if got := r.AttrTotal(AttrL1Miss); got != 0 {
			t.Errorf("AttrTotal on inert recorder = %d", got)
		}
		if r.AttrEntries() != nil {
			t.Error("AttrEntries on inert recorder is non-nil")
		}
		if got := r.AttrCollapsed(); got != "" {
			t.Errorf("AttrCollapsed on inert recorder = %q", got)
		}
	}
}

// TestAttrRegionGranularity checks that addresses collapse to regions of
// the configured size and PCs are taken from the last SetAccessPC.
func TestAttrRegionGranularity(t *testing.T) {
	r := attrRecorder(8) // 256-byte regions
	r.SetAccessPC(0x400)
	r.AttrMiss(0x1000) // region 0x1000
	r.AttrMiss(0x10fc) // same 256 B region
	r.AttrMiss(0x1100) // next region
	r.SetAccessPC(0x404)
	r.AttrMiss(0x1104) // next region, second PC

	if got := r.AttrTotal(AttrL1Miss); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	regions := r.AttrTopRegions(AttrL1Miss, 10)
	if len(regions) != 2 {
		t.Fatalf("regions = %+v, want 2 entries", regions)
	}
	if regions[0].Addr != 0x1000 || regions[0].Count != 2 {
		t.Errorf("top region = %+v, want {0x1000 2}", regions[0])
	}
	if regions[1].Addr != 0x1100 || regions[1].Count != 2 {
		t.Errorf("second region = %+v, want {0x1100 2}", regions[1])
	}
	pcs := r.AttrTopPCs(AttrL1Miss, 10)
	if len(pcs) != 2 || pcs[0].Addr != 0x400 || pcs[0].Count != 3 || pcs[1].Count != 1 {
		t.Errorf("pcs = %+v, want 0x400:3 then 0x404:1", pcs)
	}
}

// TestAttrMarginalsAgree checks that per-PC and per-region tables are
// marginals of one joint count set: both sum to the kind total.
func TestAttrMarginalsAgree(t *testing.T) {
	r := attrRecorder(0) // default 4 KiB regions
	pcs := []mach.Addr{0x400, 0x404, 0x410}
	addrs := []mach.Addr{0x1000, 0x2000, 0x30_0000, 0x30_0040}
	n := 0
	for i, pc := range pcs {
		for j, a := range addrs {
			r.SetAccessPC(pc)
			for k := 0; k <= i+j; k++ {
				r.AttrMiss(a)
				n++
			}
		}
	}
	if got := r.AttrTotal(AttrL1Miss); got != int64(n) {
		t.Fatalf("total = %d, want %d", got, n)
	}
	var pcSum, regSum int64
	for _, c := range r.AttrTopPCs(AttrL1Miss, 100) {
		pcSum += c.Count
	}
	for _, c := range r.AttrTopRegions(AttrL1Miss, 100) {
		regSum += c.Count
	}
	if pcSum != int64(n) || regSum != int64(n) {
		t.Errorf("marginal sums pc=%d region=%d, want both %d", pcSum, regSum, n)
	}
}

// TestAttrKindsIndependent checks the three kinds count independently
// and that fill-fail attributes the word count, not the event count.
func TestAttrKindsIndependent(t *testing.T) {
	r := attrRecorder(0)
	r.SetAccessPC(0x400)
	r.AttrMiss(0x1000)
	r.AttrAffHit(0x1000)
	r.AttrAffHit(0x1004)
	r.AttrFillFail(0x1000, 5)
	r.AttrFillFail(0x1000, 0) // zero-count adds nothing

	if got := r.AttrTotal(AttrL1Miss); got != 1 {
		t.Errorf("l1_miss = %d, want 1", got)
	}
	if got := r.AttrTotal(AttrAffHit); got != 2 {
		t.Errorf("aff_hit = %d, want 2", got)
	}
	if got := r.AttrTotal(AttrFillFail); got != 5 {
		t.Errorf("fill_fail_words = %d, want 5", got)
	}
	if got := len(r.AttrEntries()); got != 3 {
		t.Errorf("entries = %d, want 3 (zero-count fill must not create a cell)", got)
	}
}

// TestAttrTextAndCollapsed pins the rendered formats: the text report
// names every kind with its total, and collapsed-stack lines follow
// "kind;region;pc count".
func TestAttrTextAndCollapsed(t *testing.T) {
	r := attrRecorder(0)
	r.SetAccessPC(0x400)
	r.AttrMiss(0x1000)
	r.AttrMiss(0x1000)
	r.AttrFillFail(0x2000, 3)

	text := r.AttrText(5)
	for _, needle := range []string{
		"attribution profile (region granularity 4096 B)",
		"l1_miss: total 2",
		"fill_fail_words: total 3",
		"aff_hit: total 0",
		"top PCs", "top regions",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("AttrText missing %q:\n%s", needle, text)
		}
	}

	collapsed := r.AttrCollapsed()
	for _, wantLine := range []string{
		"l1_miss;region_0x00001000;pc_0x00000400 2",
		"fill_fail_words;region_0x00002000;pc_0x00000400 3",
	} {
		if !strings.Contains(collapsed, wantLine+"\n") {
			t.Errorf("AttrCollapsed missing %q:\n%s", wantLine, collapsed)
		}
	}
}

// TestAttrTopNTruncates checks the top-N cut keeps the largest counts.
func TestAttrTopNTruncates(t *testing.T) {
	r := attrRecorder(0)
	for i := 0; i < 8; i++ {
		r.SetAccessPC(mach.Addr(0x400 + 4*i))
		for k := 0; k <= i; k++ {
			r.AttrMiss(0x1000)
		}
	}
	top := r.AttrTopPCs(AttrL1Miss, 3)
	if len(top) != 3 {
		t.Fatalf("topN = %d entries, want 3", len(top))
	}
	if top[0].Count != 8 || top[1].Count != 7 || top[2].Count != 6 {
		t.Errorf("top counts = %d,%d,%d want 8,7,6", top[0].Count, top[1].Count, top[2].Count)
	}
}
