package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRingDropAccounting checks the flight-recorder semantics: the ring
// keeps the newest events, drops the oldest, and counts every drop.
func TestRingDropAccounting(t *testing.T) {
	r := New(Config{Trace: true, TraceCap: 4})
	if !r.TraceEnabled() {
		t.Fatal("TraceEnabled = false with Trace: true")
	}
	for i := 0; i < 10; i++ {
		r.Tick(int64(i), 1, 0, 0)
		r.Event(EvFillL1, 0x1000, int64(i))
	}
	evs := r.TraceEvents()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Aux != want {
			t.Errorf("event %d aux = %d, want %d (newest-window order)", i, e.Aux, want)
		}
	}
	if got := r.TraceDropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
}

// TestRingUnderfill checks no drops are reported before the ring is full.
func TestRingUnderfill(t *testing.T) {
	r := New(Config{Trace: true, TraceCap: 8})
	for i := 0; i < 5; i++ {
		r.Event(EvEvictL2, 0x40, 0)
	}
	if len(r.TraceEvents()) != 5 || r.TraceDropped() != 0 {
		t.Errorf("events=%d dropped=%d, want 5/0", len(r.TraceEvents()), r.TraceDropped())
	}
}

func TestEventKindNames(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if eventNames[k] == "" {
			t.Errorf("event kind %d has no name", k)
		}
		if eventTIDs[k] == 0 {
			t.Errorf("event kind %d has no thread", k)
		}
	}
	if EventKind(200).String() != "event-200" {
		t.Errorf("out-of-range kind String = %q", EventKind(200).String())
	}
}

// TestChromeTraceGolden pins the exact Chrome trace_event bytes a small
// fixed event sequence produces; run with -update to rewrite.
func TestChromeTraceGolden(t *testing.T) {
	r := New(Config{Trace: true, TraceCap: 4})
	r.Tick(100, 1, 0, 0)
	r.Event(EvFillL1, 0x1040, 16)
	r.Event(EvAffPrefetch, 0x1080, 7)
	r.Tick(250, 1, 0, 0)
	r.Event(EvEvictL2, 0x2000, 1)
	r.Event(EvPromote, 0x1080, 0)
	r.Event(EvPfIssue, 0x3000, 2) // overwrites the oldest: ring holds 4
	got := r.ChromeTrace()

	goldenPath := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Beyond byte equality: the trace must be loadable Chrome JSON.
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Dropped     int64            `json:"droppedEventCount"`
	}
	if err := json.Unmarshal(got, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 3 thread_name metadata events + 4 retained instants.
	if len(tr.TraceEvents) != 7 {
		t.Errorf("traceEvents count = %d, want 7", len(tr.TraceEvents))
	}
	if tr.Dropped != 1 {
		t.Errorf("droppedEventCount = %d, want 1", tr.Dropped)
	}
	for _, e := range tr.TraceEvents {
		if e["ph"] == "i" {
			if _, ok := e["ts"].(float64); !ok {
				t.Errorf("instant event without numeric ts: %v", e)
			}
		}
	}
}
