package obs

// Attribution profiler: attributes cache events to the instruction PC that
// caused them and to the data-address region they touched, in the style of
// the Pointer-Chase Prefetcher's per-access accounting of which traversal
// sites miss. Three event classes are attributed, matching the quantities
// the paper's evaluation turns on:
//
//   - L1 demand misses (the paper's Figure 12 metric, per code site);
//   - compression-failure fill words: words fetched from memory that were
//     not compressible and therefore could not host or carry affiliated
//     prefetch data (the dual of the Figure 3 compressibility curve);
//   - affiliated-prefetch hits (CPP's Figure-10/11 win, per code site).
//
// The profiler keys a joint map on (PC, data region, kind), so both the
// per-PC and per-region top-N tables and the collapsed-stack rendering are
// exact marginals of one count set. The accessing PC is pushed by the
// processor model (or the functional-mode driver) immediately before each
// memory operation via SetAccessPC; hierarchy hook sites then attribute
// events to the most recent PC. Like every other Recorder facility it is
// inert when disabled: hooks cost one branch and no memory traffic.

import (
	"fmt"
	"sort"
	"strings"

	"cppcache/internal/mach"
)

// AttrKind enumerates the attributed event classes.
type AttrKind uint8

// Attributed event classes.
const (
	// AttrL1Miss is one demand L1 miss (load or store).
	AttrL1Miss AttrKind = iota
	// AttrFillFail counts words fetched from memory whose value
	// compression failed (each incompressible word counts 1).
	AttrFillFail
	// AttrAffHit is one demand hit on affiliated-prefetch data (L1 or
	// L2 affiliated storage).
	AttrAffHit

	numAttrKinds
)

var attrNames = [numAttrKinds]string{
	AttrL1Miss:   "l1_miss",
	AttrFillFail: "fill_fail_words",
	AttrAffHit:   "aff_hit",
}

// String returns the stable kind name used in profile output.
func (k AttrKind) String() string {
	if int(k) < len(attrNames) {
		return attrNames[k]
	}
	return fmt.Sprintf("attr-%d", int(k))
}

// AttrKinds returns every attributed kind in rendering order.
func AttrKinds() []AttrKind { return []AttrKind{AttrL1Miss, AttrFillFail, AttrAffHit} }

// DefaultAttrRegionBits is the data-region granularity when
// Config.AttrRegionBits is 0: 12 bits, i.e. 4 KiB pages.
const DefaultAttrRegionBits = 12

// attrKey is one cell of the joint attribution count set.
type attrKey struct {
	pc     mach.Addr
	region mach.Addr // region base address (low regionBits bits cleared)
	kind   AttrKind
}

// attrProfile is the recorder-internal count store.
type attrProfile struct {
	regionBits uint
	counts     map[attrKey]int64
	totals     [numAttrKinds]int64
}

func newAttrProfile(regionBits int) *attrProfile {
	if regionBits <= 0 {
		regionBits = DefaultAttrRegionBits
	}
	return &attrProfile{
		regionBits: uint(regionBits),
		counts:     make(map[attrKey]int64),
	}
}

func (p *attrProfile) regionOf(a mach.Addr) mach.Addr {
	return a &^ (1<<p.regionBits - 1)
}

func (p *attrProfile) add(kind AttrKind, pc, addr mach.Addr, n int64) {
	if n == 0 {
		return
	}
	p.counts[attrKey{pc: pc, region: p.regionOf(addr), kind: kind}] += n
	p.totals[kind] += n
}

// AttrEnabled reports whether the attribution profiler is collecting.
// Hierarchy hook sites with non-trivial argument preparation can use it to
// skip that work.
func (r *Recorder) AttrEnabled() bool { return r != nil && r.attr != nil }

// SetAccessPC records the program counter of the instruction about to
// access memory; subsequent attributed events are charged to it. The
// processor core calls this immediately before each data-cache access.
func (r *Recorder) SetAccessPC(pc mach.Addr) {
	if r == nil || r.attr == nil {
		return
	}
	r.attrPC = pc
}

// AttrMiss attributes one demand L1 miss at data address a to the current
// access PC.
func (r *Recorder) AttrMiss(a mach.Addr) {
	if r == nil || r.attr == nil {
		return
	}
	r.attr.add(AttrL1Miss, r.attrPC, a, 1)
}

// AttrAffHit attributes one demand hit on affiliated-prefetch data at data
// address a to the current access PC.
func (r *Recorder) AttrAffHit(a mach.Addr) {
	if r == nil || r.attr == nil {
		return
	}
	r.attr.add(AttrAffHit, r.attrPC, a, 1)
}

// AttrFillFail attributes words incompressible words fetched in the line
// at base to the current access PC (the demand access whose miss triggered
// the fill).
func (r *Recorder) AttrFillFail(base mach.Addr, words int64) {
	if r == nil || r.attr == nil {
		return
	}
	r.attr.add(AttrFillFail, r.attrPC, base, words)
}

// AttrTotal returns the total attributed count of one kind. For a run with
// attribution enabled it equals the corresponding simulator statistic
// (L1 misses; fill words minus compressible fill words; affiliated hits).
func (r *Recorder) AttrTotal(kind AttrKind) int64 {
	if r == nil || r.attr == nil || int(kind) >= int(numAttrKinds) {
		return 0
	}
	return r.attr.totals[kind]
}

// AttrEntry is one (PC, region, kind) attribution cell.
type AttrEntry struct {
	PC     mach.Addr `json:"pc"`
	Region mach.Addr `json:"region"`
	Kind   string    `json:"kind"`
	Count  int64     `json:"count"`
}

// AttrEntries returns every attribution cell, sorted by kind, then count
// descending, then PC, then region — a deterministic order for golden
// tests and JSON export.
func (r *Recorder) AttrEntries() []AttrEntry {
	if r == nil || r.attr == nil {
		return nil
	}
	out := make([]AttrEntry, 0, len(r.attr.counts))
	type cell struct {
		k attrKey
		n int64
	}
	cells := make([]cell, 0, len(r.attr.counts))
	for k, n := range r.attr.counts {
		cells = append(cells, cell{k, n})
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.k.kind != b.k.kind {
			return a.k.kind < b.k.kind
		}
		if a.n != b.n {
			return a.n > b.n
		}
		if a.k.pc != b.k.pc {
			return a.k.pc < b.k.pc
		}
		return a.k.region < b.k.region
	})
	for _, c := range cells {
		out = append(out, AttrEntry{PC: c.k.pc, Region: c.k.region, Kind: c.k.kind.String(), Count: c.n})
	}
	return out
}

// attrAggregate sums the joint counts of one kind over key, where key
// extracts the grouping address (PC or region).
func (r *Recorder) attrAggregate(kind AttrKind, key func(attrKey) mach.Addr) []AttrCount {
	agg := make(map[mach.Addr]int64)
	for k, n := range r.attr.counts {
		if k.kind == kind {
			agg[key(k)] += n
		}
	}
	out := make([]AttrCount, 0, len(agg))
	for a, n := range agg {
		out = append(out, AttrCount{Addr: a, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// AttrCount is one aggregated attribution row: an address (PC or region
// base) and its event count.
type AttrCount struct {
	Addr  mach.Addr `json:"addr"`
	Count int64     `json:"count"`
}

// AttrTopPCs returns the n instruction PCs with the highest count of the
// given kind, ties broken by address.
func (r *Recorder) AttrTopPCs(kind AttrKind, n int) []AttrCount {
	if r == nil || r.attr == nil {
		return nil
	}
	out := r.attrAggregate(kind, func(k attrKey) mach.Addr { return k.pc })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// AttrTopRegions returns the n data regions with the highest count of the
// given kind, ties broken by region base address.
func (r *Recorder) AttrTopRegions(kind AttrKind, n int) []AttrCount {
	if r == nil || r.attr == nil {
		return nil
	}
	out := r.attrAggregate(kind, func(k attrKey) mach.Addr { return k.region })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// AttrText renders the profile as top-N tables, one per kind, each with a
// per-PC and a per-region section. Output is deterministic.
func (r *Recorder) AttrText(topN int) string {
	if r == nil || r.attr == nil {
		return ""
	}
	if topN <= 0 {
		topN = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "attribution profile (region granularity %d B)\n", 1<<r.attr.regionBits)
	for _, kind := range AttrKinds() {
		total := r.attr.totals[kind]
		fmt.Fprintf(&sb, "\n%s: total %d\n", kind, total)
		if total == 0 {
			continue
		}
		sb.WriteString("  top PCs:\n")
		for _, c := range r.AttrTopPCs(kind, topN) {
			fmt.Fprintf(&sb, "    0x%08x  %10d  (%5.1f%%)\n", c.Addr, c.Count, 100*float64(c.Count)/float64(total))
		}
		sb.WriteString("  top regions:\n")
		for _, c := range r.AttrTopRegions(kind, topN) {
			fmt.Fprintf(&sb, "    0x%08x  %10d  (%5.1f%%)\n", c.Addr, c.Count, 100*float64(c.Count)/float64(total))
		}
	}
	return sb.String()
}

// AttrCollapsed renders the joint counts in collapsed-stack format, one
// line per cell: "kind;region_0x...;pc_0x... count". The synthetic
// two-frame stack (data region under the accessing PC) feeds flame-graph
// tooling (e.g. flamegraph.pl, speedscope) directly.
func (r *Recorder) AttrCollapsed() string {
	if r == nil || r.attr == nil {
		return ""
	}
	var sb strings.Builder
	for _, e := range r.AttrEntries() {
		fmt.Fprintf(&sb, "%s;region_0x%08x;pc_0x%08x %d\n", e.Kind, e.Region, e.PC, e.Count)
	}
	return sb.String()
}
