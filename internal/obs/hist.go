package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// histBuckets covers every int64: bucket 0 holds v <= 0, bucket i >= 1
// holds v in [2^(i-1), 2^i - 1]; bucket 63 additionally absorbs 2^62..max.
const histBuckets = 64

// Histogram counts observations in power-of-two buckets, the standard
// shape for latency distributions: exact at the small end (1-cycle hits
// get their own bucket) and logarithmic toward the memory-latency tail.
type Histogram struct {
	Name  string
	Count int64
	Sum   int64
	Max   int64

	buckets [histBuckets]int64
}

// NewHistogram returns an empty named histogram.
func NewHistogram(name string) *Histogram { return &Histogram{Name: name} }

// BucketIndex returns the bucket holding v: 0 for v <= 0, else
// 1 + floor(log2 v), capped at the last bucket.
func BucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
func BucketBounds(i int) (lo, hi int64) {
	switch {
	case i <= 0:
		return -1 << 62, 0
	case i >= histBuckets-1:
		return 1 << (histBuckets - 2), 1<<62 - 1 + 1<<62
	default:
		return 1 << (i - 1), 1<<i - 1
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.buckets[BucketIndex(v)]++
}

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed values: the inclusive upper bound of the bucket holding the
// ceil(q*Count)-th smallest observation, clamped to the observed Max.
// With power-of-two buckets the estimate is within 2x of the true
// quantile, exact for values that land on bucket boundaries. An empty
// histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			_, hi := BucketBounds(i)
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Lo, Hi int64 // inclusive value range
	Count  int64
}

// Buckets returns the non-empty buckets in increasing value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// String renders the histogram as an aligned text block with scaled bars.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: n=%d mean=%.2f max=%d\n", h.Name, h.Count, h.Mean(), h.Max)
	bks := h.Buckets()
	maxCount := int64(1)
	for _, b := range bks {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	for _, b := range bks {
		bar := int(40 * b.Count / maxCount)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&sb, "  [%8d, %8d] %10d %s\n", b.Lo, b.Hi, b.Count, strings.Repeat("#", bar))
	}
	return sb.String()
}
