package obs

import (
	"math"
	"testing"

	"cppcache/internal/memsys"
)

// TestSnapshotRatiosZeroDenominator pins the edge-case contract of every
// derived-rate helper: a zero denominator yields 0, never NaN or Inf, so
// CSV consumers and the observatory's exposition never see non-finite
// values.
func TestSnapshotRatiosZeroDenominator(t *testing.T) {
	var s Snapshot // all-zero interval
	for name, got := range map[string]float64{
		"IPC":             s.IPC(),
		"L1MissRate":      s.L1MissRate(),
		"TrafficWords":    s.TrafficWords(),
		"CompRatio":       s.CompRatio(),
		"PrefetchHitRate": s.PrefetchHitRate(),
		"ROBOccupancy":    s.ROBOccupancy(),
	} {
		if got != 0 {
			t.Errorf("%s on zero snapshot = %v, want 0", name, got)
		}
	}

	// Numerator without denominator still must not divide by zero.
	odd := Snapshot{L1Misses: 5, FillCompWords: 3, AffHits: 2, ROBOccSum: 9}
	for name, got := range map[string]float64{
		"L1MissRate":      odd.L1MissRate(),
		"CompRatio":       odd.CompRatio(),
		"PrefetchHitRate": odd.PrefetchHitRate(),
		"ROBOccupancy":    odd.ROBOccupancy(),
	} {
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s = %v, want finite", name, got)
		}
	}
}

// TestSnapshotRatiosValues checks the helpers against hand-computed
// values on a populated interval.
func TestSnapshotRatiosValues(t *testing.T) {
	s := Snapshot{
		L1Accesses:         200,
		L1Misses:           50,
		MemReadHalves:      30,
		MemWriteHalves:     10,
		FillWords:          80,
		FillCompWords:      60,
		AffHits:            6,
		PfBufHits:          2,
		AffWordsPrefetched: 10,
		PfIssued:           6,
		ROBOccSum:          90,
		ROBOccSamples:      30,
	}
	if got := s.L1MissRate(); got != 0.25 {
		t.Errorf("L1MissRate = %v, want 0.25", got)
	}
	if got := s.TrafficWords(); got != 20 {
		t.Errorf("TrafficWords = %v, want 20", got)
	}
	if got := s.CompRatio(); got != 0.75 {
		t.Errorf("CompRatio = %v, want 0.75", got)
	}
	if got := s.PrefetchHitRate(); got != 0.5 {
		t.Errorf("PrefetchHitRate = %v, want 0.5", got)
	}
	if got := s.ROBOccupancy(); got != 3 {
		t.Errorf("ROBOccupancy = %v, want 3", got)
	}
}

// TestSingleIntervalRun pins the degenerate series: a run shorter than
// one interval yields exactly one Finish snapshot that carries the whole
// run, so consumers summing deltas still reproduce the totals.
func TestSingleIntervalRun(t *testing.T) {
	var calls []Snapshot
	r := New(Config{Interval: 1 << 30, OnSnapshot: func(s Snapshot) { calls = append(calls, s) }})
	st := &memsys.Stats{}
	r.AttachStats(st)

	st.L1.Accesses = 7
	st.L1.Misses = 3
	r.Tick(100, 1, 0, 0)
	r.Finish()

	snaps := r.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	if snaps[0].L1Accesses != 7 || snaps[0].L1Misses != 3 {
		t.Errorf("finish snapshot = %+v, want the whole run", snaps[0])
	}
	if len(calls) != len(snaps) {
		t.Fatalf("OnSnapshot saw %d snapshots, recorder kept %d", len(calls), len(snaps))
	}
	for i := range calls {
		if calls[i] != snaps[i] {
			t.Errorf("OnSnapshot[%d] = %+v, recorder kept %+v", i, calls[i], snaps[i])
		}
	}
}

// TestOnSnapshotSeriesMatches checks that the streaming callback sees
// exactly the retained series, in order, across multiple intervals.
func TestOnSnapshotSeriesMatches(t *testing.T) {
	var calls []Snapshot
	r := New(Config{Interval: 10, OnSnapshot: func(s Snapshot) { calls = append(calls, s) }})
	st := &memsys.Stats{}
	r.AttachStats(st)

	for cyc := int64(1); cyc <= 35; cyc++ {
		st.L1.Accesses++
		r.Tick(cyc, 1, 0, 0)
	}
	r.Finish()

	snaps := r.Snapshots()
	if len(snaps) < 3 {
		t.Fatalf("got %d snapshots, want several", len(snaps))
	}
	if len(calls) != len(snaps) {
		t.Fatalf("OnSnapshot saw %d, recorder kept %d", len(calls), len(snaps))
	}
	var sum int64
	for i := range calls {
		if calls[i] != snaps[i] {
			t.Errorf("OnSnapshot[%d] diverges from retained series", i)
		}
		sum += calls[i].L1Accesses
	}
	if sum != st.L1.Accesses {
		t.Errorf("streamed deltas sum to %d, counter is %d", sum, st.L1.Accesses)
	}
}
