// Package obs is the simulator's observability layer: interval metrics,
// structured event tracing and latency histograms, all reached through a
// nil-able *Recorder so that a disabled recorder costs exactly one
// predictable branch per hook.
//
// Three facilities, matching what compression-cache papers plot when they
// diagnose a design (phase-level traffic and compressibility curves,
// fill/evict/prefetch event timelines, latency distributions):
//
//  1. Interval metrics: every Interval cycles (ops in functional mode) the
//     recorder snapshots the attached memsys.Stats block plus the CPU-side
//     accumulators and stores the per-interval deltas. The series is
//     emitted as CSV (MetricsCSV) or JSON (MetricsJSON) and partitions the
//     run exactly: summing any column over all snapshots reproduces the
//     end-of-run counter.
//  2. Event trace: cache fills, evictions, affiliated-line prefetches,
//     prefetch hits and compression-state transitions are pushed into a
//     fixed-capacity ring buffer (oldest events are dropped and counted).
//     ChromeTrace renders the ring in Chrome trace_event JSON, loadable in
//     chrome://tracing or Perfetto (one simulated cycle = 1 us).
//  3. Latency histograms: load-to-use latency and miss service time in
//     power-of-two buckets (hist.go).
//
// Every exported hook method checks the receiver for nil first, so
// simulator code holds a plain *Recorder field and calls hooks
// unconditionally; with observability off (nil recorder) the hot path pays
// one branch and no memory traffic.
package obs

import (
	"encoding/json"
	"fmt"
	"strings"

	"cppcache/internal/compress"
	"cppcache/internal/mach"
	"cppcache/internal/memsys"
)

// DefaultTraceCap is the event-ring capacity when Config.TraceCap is 0.
const DefaultTraceCap = 1 << 16

// Config sizes a Recorder.
type Config struct {
	// Interval is the snapshot cadence in simulated cycles (pipeline
	// mode) or memory ops (functional mode). <= 0 disables interval
	// metrics.
	Interval int64
	// Trace enables the event ring buffer.
	Trace bool
	// TraceCap overrides the ring capacity (0 = DefaultTraceCap).
	TraceCap int
	// Attr enables the PC/region attribution profiler (attr.go).
	Attr bool
	// AttrRegionBits sets the data-region granularity of the attribution
	// profiler in address bits (0 = DefaultAttrRegionBits, 4 KiB).
	AttrRegionBits int
	// OnSnapshot, when set, is called synchronously with each interval
	// snapshot as it is taken (including the trailing Finish snapshot).
	// Long-running consumers (the observatory's streaming registry) use it
	// to publish deltas while the run is still in flight.
	OnSnapshot func(Snapshot)
}

// Attachable is implemented by every hierarchy that can host a recorder.
type Attachable interface {
	SetRecorder(*Recorder)
}

// Recorder collects metrics, events and histograms for one simulation
// run. A nil *Recorder is valid and disables everything.
type Recorder struct {
	interval int64
	nextSnap int64
	now      int64

	stats *memsys.Stats // attached hierarchy counters (may stay nil)
	prev  memsys.Stats  // value at the last snapshot boundary

	insts, prevInsts           int64
	robSum, prevRobSum         int64
	robSamples, prevRobSamples int64
	fillWords, prevFillWords   int64
	fillComp, prevFillComp     int64

	snaps    []Snapshot
	finished bool

	// memPages, when set, samples the main memory's footprint (distinct
	// pages touched) at each snapshot; it is a gauge, not a delta.
	memPages func() int

	ring *ring // nil when tracing is off

	// attr, when non-nil, collects the PC/region attribution profile;
	// attrPC is the PC of the memory access in flight (attr.go).
	attr   *attrProfile
	attrPC mach.Addr

	// onSnap, when set, receives each snapshot as it is appended.
	onSnap func(Snapshot)

	// LoadToUse is the fetch-to-result-available latency of every load;
	// MissService is the access latency of every demand miss.
	LoadToUse   *Histogram
	MissService *Histogram
}

// New builds a recorder. The zero Config yields a recorder that only
// collects latency histograms.
func New(cfg Config) *Recorder {
	r := &Recorder{
		interval:    cfg.Interval,
		LoadToUse:   NewHistogram("load_to_use_cycles"),
		MissService: NewHistogram("miss_service_cycles"),
	}
	if cfg.Interval > 0 {
		r.nextSnap = cfg.Interval
	}
	if cfg.Trace {
		n := cfg.TraceCap
		if n <= 0 {
			n = DefaultTraceCap
		}
		r.ring = newRing(n)
	}
	if cfg.Attr {
		r.attr = newAttrProfile(cfg.AttrRegionBits)
	}
	r.onSnap = cfg.OnSnapshot
	return r
}

// AttachStats connects the hierarchy's statistics block so that interval
// snapshots can diff it. Hierarchies call this from SetRecorder.
func (r *Recorder) AttachStats(s *memsys.Stats) {
	if r == nil {
		return
	}
	r.stats = s
}

// AttachMemPages connects a main-memory footprint sampler (typically
// mem.Memory.PagesTouched); each snapshot then records the absolute page
// count as a working-set gauge.
func (r *Recorder) AttachMemPages(f func() int) {
	if r == nil {
		return
	}
	r.memPages = f
}

// Tick advances simulated time. weight is how many cycles the caller's
// current machine state stood for (the CPU's idle-cycle fast-forward
// passes 1 + skipped so the closed-form accounting stays exact); rob is
// the ROB occupancy over those cycles and insts the cumulative retired
// instruction count.
func (r *Recorder) Tick(now, weight int64, rob int, insts int64) {
	if r == nil {
		return
	}
	r.now = now
	r.insts = insts
	r.robSum += int64(rob) * weight
	r.robSamples += weight
	if r.interval > 0 && now >= r.nextSnap {
		r.snapshot()
	}
}

// OpTick is the functional-mode clock: the op index stands in for cycles.
func (r *Recorder) OpTick(op int64) {
	if r == nil {
		return
	}
	r.now = op
	if r.interval > 0 && op >= r.nextSnap {
		r.snapshot()
	}
}

// FillWords accounts words moved in from memory, comp of them
// compressible, feeding the interval compressibility-ratio metric.
// Hierarchies that already compute per-word compressibility on the fill
// path pass the counts directly.
func (r *Recorder) FillWords(total, comp int64) {
	if r == nil {
		return
	}
	r.fillWords += total
	r.fillComp += comp
}

// FillLine is FillWords for hierarchies that do not otherwise classify
// the fetched words: it computes compressibility itself. Call sites on
// hot paths should guard with an explicit nil check so the scan only runs
// when a recorder is attached.
func (r *Recorder) FillLine(words []mach.Word, base mach.Addr) {
	if r == nil {
		return
	}
	comp := int64(0)
	for i, v := range words {
		if compress.Compressible(v, base+mach.Addr(i*mach.WordBytes)) {
			comp++
		}
	}
	r.FillWords(int64(len(words)), comp)
	if r.attr != nil {
		r.attr.add(AttrFillFail, r.attrPC, base, int64(len(words))-comp)
	}
}

// ObserveLoadToUse records one load's fetch-to-result latency.
func (r *Recorder) ObserveLoadToUse(lat int64) {
	if r == nil {
		return
	}
	r.LoadToUse.Observe(lat)
}

// ObserveMissService records one demand miss's service latency.
func (r *Recorder) ObserveMissService(lat int64) {
	if r == nil {
		return
	}
	r.MissService.Observe(lat)
}

// Finish takes the final partial snapshot so the emitted series
// partitions the whole run. Safe to call more than once.
func (r *Recorder) Finish() {
	if r == nil || r.finished {
		return
	}
	r.finished = true
	if r.interval <= 0 {
		return
	}
	cur := memsys.Stats{}
	if r.stats != nil {
		cur = *r.stats
	}
	if cur != r.prev || r.insts != r.prevInsts ||
		r.robSamples != r.prevRobSamples || r.fillWords != r.prevFillWords {
		r.snapshot()
	}
}

// snapshot appends the per-interval deltas since the previous boundary.
func (r *Recorder) snapshot() {
	cur := memsys.Stats{}
	if r.stats != nil {
		cur = *r.stats
	}
	s := Snapshot{
		Cycle:              r.now,
		Instructions:       r.insts - r.prevInsts,
		L1Accesses:         cur.L1.Accesses - r.prev.L1.Accesses,
		L1Misses:           cur.L1.Misses - r.prev.L1.Misses,
		L2Accesses:         cur.L2.Accesses - r.prev.L2.Accesses,
		L2Misses:           cur.L2.Misses - r.prev.L2.Misses,
		MemReadHalves:      cur.MemReadHalves - r.prev.MemReadHalves,
		MemWriteHalves:     cur.MemWriteHalves - r.prev.MemWriteHalves,
		AffHits:            (cur.AffHitsL1 + cur.AffHitsL2) - (r.prev.AffHitsL1 + r.prev.AffHitsL2),
		AffWordsPrefetched: (cur.AffWordsPrefetchedL1 + cur.AffWordsPrefetchedL2) - (r.prev.AffWordsPrefetchedL1 + r.prev.AffWordsPrefetchedL2),
		Promotions:         cur.Promotions - r.prev.Promotions,
		PfBufHits:          (cur.PfBufHitsL1 + cur.PfBufHitsL2) - (r.prev.PfBufHitsL1 + r.prev.PfBufHitsL2),
		PfIssued:           (cur.PfIssuedL1 + cur.PfIssuedL2) - (r.prev.PfIssuedL1 + r.prev.PfIssuedL2),
		FillWords:          r.fillWords - r.prevFillWords,
		FillCompWords:      r.fillComp - r.prevFillComp,
		ROBOccSum:          r.robSum - r.prevRobSum,
		ROBOccSamples:      r.robSamples - r.prevRobSamples,
	}
	if r.memPages != nil {
		s.PagesTouched = int64(r.memPages())
	}
	r.snaps = append(r.snaps, s)
	if r.onSnap != nil {
		r.onSnap(s)
	}
	r.prev = cur
	r.prevInsts = r.insts
	r.prevRobSum = r.robSum
	r.prevRobSamples = r.robSamples
	r.prevFillWords = r.fillWords
	r.prevFillComp = r.fillComp
	for r.nextSnap <= r.now {
		r.nextSnap += r.interval
	}
}

// Snapshots returns the interval series collected so far.
func (r *Recorder) Snapshots() []Snapshot {
	if r == nil {
		return nil
	}
	return r.snaps
}

// Snapshot holds one interval's deltas. Every counter is the change since
// the previous snapshot, so columns sum to the end-of-run totals; Cycle is
// the absolute simulated time the snapshot was taken at.
type Snapshot struct {
	Cycle              int64 `json:"cycle"`
	Instructions       int64 `json:"instructions"`
	L1Accesses         int64 `json:"l1_accesses"`
	L1Misses           int64 `json:"l1_misses"`
	L2Accesses         int64 `json:"l2_accesses"`
	L2Misses           int64 `json:"l2_misses"`
	MemReadHalves      int64 `json:"mem_read_halves"`
	MemWriteHalves     int64 `json:"mem_write_halves"`
	AffHits            int64 `json:"aff_hits"`
	AffWordsPrefetched int64 `json:"aff_words_prefetched"`
	Promotions         int64 `json:"promotions"`
	PfBufHits          int64 `json:"pf_buf_hits"`
	PfIssued           int64 `json:"pf_issued"`
	FillWords          int64 `json:"fill_words"`
	FillCompWords      int64 `json:"fill_comp_words"`
	ROBOccSum          int64 `json:"rob_occ_sum"`
	ROBOccSamples      int64 `json:"rob_occ_samples"`

	// PagesTouched is a gauge, not a delta: the absolute main-memory
	// footprint (distinct 4 KiB pages) at the snapshot instant.
	PagesTouched int64 `json:"pages_touched"`
}

// IPC is retired instructions per cycle within the interval (0 in
// functional mode).
func (s Snapshot) IPC() float64 { return ratio(s.Instructions, s.ROBOccSamples) }

// L1MissRate is the interval's L1 miss rate.
func (s Snapshot) L1MissRate() float64 { return ratio(s.L1Misses, s.L1Accesses) }

// TrafficWords is the interval's off-chip traffic in 32-bit words.
func (s Snapshot) TrafficWords() float64 {
	return float64(s.MemReadHalves+s.MemWriteHalves) / 2
}

// CompRatio is the compressible fraction of the words fetched from memory
// during the interval.
func (s Snapshot) CompRatio() float64 { return ratio(s.FillCompWords, s.FillWords) }

// PrefetchHitRate relates demand hits on prefetched data (affiliated hits
// plus BCP buffer hits) to the prefetch work done (affiliated words
// installed plus BCP buffer fills) in the interval.
func (s Snapshot) PrefetchHitRate() float64 {
	return ratio(s.AffHits+s.PfBufHits, s.AffWordsPrefetched+s.PfIssued)
}

// ROBOccupancy is the mean reorder-buffer occupancy over the interval.
func (s Snapshot) ROBOccupancy() float64 { return ratio(s.ROBOccSum, s.ROBOccSamples) }

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// csvHeader lists the emitted columns: raw deltas first, derived rates
// after. Kept in one place so the header and row renderers cannot drift.
var csvHeader = []string{
	"cycle", "instructions", "l1_accesses", "l1_misses", "l2_accesses",
	"l2_misses", "mem_read_halves", "mem_write_halves", "aff_hits",
	"aff_words_prefetched", "promotions", "pf_buf_hits", "pf_issued",
	"fill_words", "fill_comp_words", "rob_occ_sum", "rob_occ_samples",
	"pages_touched",
	"ipc", "l1_miss_rate", "traffic_words", "comp_ratio",
	"prefetch_hit_rate", "rob_occupancy",
}

// csvRow renders one snapshot in csvHeader order.
func csvRow(sb *strings.Builder, s Snapshot) {
	fmt.Fprintf(sb, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
		s.Cycle, s.Instructions, s.L1Accesses, s.L1Misses, s.L2Accesses,
		s.L2Misses, s.MemReadHalves, s.MemWriteHalves, s.AffHits,
		s.AffWordsPrefetched, s.Promotions, s.PfBufHits, s.PfIssued,
		s.FillWords, s.FillCompWords, s.ROBOccSum, s.ROBOccSamples,
		s.PagesTouched)
	fmt.Fprintf(sb, ",%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
		s.IPC(), s.L1MissRate(), s.TrafficWords(), s.CompRatio(),
		s.PrefetchHitRate(), s.ROBOccupancy())
}

// MetricsCSV renders the interval series as CSV with a header row.
func (r *Recorder) MetricsCSV() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(csvHeader, ","))
	sb.WriteByte('\n')
	for _, s := range r.snaps {
		csvRow(&sb, s)
	}
	return sb.String()
}

// MetricsJSON renders the interval series as a JSON array of snapshots.
func (r *Recorder) MetricsJSON() ([]byte, error) {
	if r == nil {
		return []byte("[]"), nil
	}
	snaps := r.snaps
	if snaps == nil {
		snaps = []Snapshot{}
	}
	return json.MarshalIndent(snaps, "", "  ")
}

// Histograms returns the recorder's latency histograms.
func (r *Recorder) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	return []*Histogram{r.LoadToUse, r.MissService}
}

// HistogramsText renders every histogram for terminal output.
func (r *Recorder) HistogramsText() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	for _, h := range r.Histograms() {
		sb.WriteString(h.String())
	}
	return sb.String()
}
