package trace

import (
	"testing"

	"cppcache/internal/isa"
)

// sampleInsts exercises every field, including sentinel register ids.
func sampleInsts() []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpALU, Dest: 0, Src1: isa.NoReg, Src2: isa.NoReg, Value: 7, PC: 0x100},
		{Op: isa.OpLoad, Dest: 1, Src1: 0, Src2: isa.NoReg, Addr: 0x1000_0000, Value: 0xdead_beef, PC: 0x104},
		{Op: isa.OpStore, Dest: isa.NoReg, Src1: 1, Src2: 0, Addr: 0x1000_0004, Value: 42, PC: 0x108},
		{Op: isa.OpBranch, Dest: isa.NoReg, Src1: 1, Src2: isa.NoReg, Taken: true, PC: 0x10c},
		{Op: isa.OpFDiv, Dest: 2, Src1: 1, Src2: 0, PC: 0x110},
	}
}

func TestDecodedRoundtrip(t *testing.T) {
	insts := sampleInsts()
	d := NewDecoded(insts)
	if d.Len() != len(insts) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(insts))
	}
	for i, want := range insts {
		if got := d.At(i); got != want {
			t.Errorf("At(%d) = %+v, want %+v", i, got, want)
		}
	}
}

// TestReplayerMatchesSliceStream proves the Stream adapter is
// indistinguishable from the canonical slice stream, including across a
// Reset.
func TestReplayerMatchesSliceStream(t *testing.T) {
	insts := sampleInsts()
	r := NewDecoded(insts).Replay()
	s := isa.NewSliceStream(insts)
	for pass := 0; pass < 2; pass++ {
		for i := 0; ; i++ {
			ri, rok := r.Next()
			si, sok := s.Next()
			if rok != sok {
				t.Fatalf("pass %d pos %d: ok mismatch %v vs %v", pass, i, rok, sok)
			}
			if !rok {
				break
			}
			if ri != si {
				t.Fatalf("pass %d pos %d: %+v vs %+v", pass, i, ri, si)
			}
		}
		r.Reset()
		s.Reset()
	}
	if r.Len() != len(insts) {
		t.Fatalf("Replayer.Len = %d, want %d", r.Len(), len(insts))
	}
}

// TestDecodedSharedCursors checks independent Replayers over one Decoded
// do not interfere.
func TestDecodedSharedCursors(t *testing.T) {
	d := NewDecoded(sampleInsts())
	a, b := d.Replay(), d.Replay()
	a.Next()
	a.Next()
	in, ok := b.Next()
	if !ok || in != d.At(0) {
		t.Fatalf("second replayer disturbed by first: %+v ok=%v", in, ok)
	}
}

func TestDecodedBytes(t *testing.T) {
	d := NewDecoded(make([]isa.Inst, 10))
	if d.Bytes() != 260 {
		t.Fatalf("Bytes = %d, want 260", d.Bytes())
	}
}
