package trace

import (
	"bytes"
	"reflect"
	"testing"

	"cppcache/internal/isa"
)

// FuzzTraceReader feeds arbitrary bytes to the reader: it must return
// errors on malformed input, never panic or spin, and any stream it does
// accept must survive a re-encode/re-decode cycle unchanged.
func FuzzTraceReader(f *testing.F) {
	// Seed corpus: a small valid stream, its truncation, a corrupted body,
	// a bad magic, and the empty input.
	valid := func(insts []isa.Inst) []byte {
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, isa.NewSliceStream(insts)); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	stream := valid([]isa.Inst{
		{Op: isa.OpLoad, Dest: 1, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x1000, Value: 7, PC: 0x400000},
		{Op: isa.OpStore, Dest: isa.NoReg, Src1: 2, Src2: isa.NoReg, Addr: 0x1004, Value: 9, PC: 0x400004},
		{Op: isa.OpBranch, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Taken: true, PC: 0x400008},
	})
	f.Add(stream)
	f.Add(stream[:len(stream)-1])
	corrupt := append([]byte(nil), stream...)
	corrupt[len(Magic)+2] ^= 0xFF
	f.Add(corrupt)
	f.Add([]byte("NOTATRACE"))
	f.Add([]byte{})
	f.Add([]byte(Magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var insts []isa.Inst
		readErr := error(nil)
		for len(insts) < 1<<16 {
			in, err := r.Read()
			if err != nil {
				readErr = err
				break
			}
			insts = append(insts, in)
		}
		if readErr == nil || len(insts) == 0 {
			return
		}
		// Accepted prefix must roundtrip bit-exactly.
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, isa.NewSliceStream(insts)); err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(got, insts) {
			t.Fatalf("re-decode changed %d accepted records", len(insts))
		}
	})
}
