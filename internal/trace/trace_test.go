package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cppcache/internal/isa"
	"cppcache/internal/mach"
)

func randomInst(rng *rand.Rand) isa.Inst {
	ops := []isa.Op{isa.OpNop, isa.OpALU, isa.OpMul, isa.OpDiv, isa.OpFALU,
		isa.OpFMul, isa.OpFDiv, isa.OpLoad, isa.OpStore, isa.OpBranch}
	in := isa.Inst{
		Op:   ops[rng.Intn(len(ops))],
		Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg,
		PC: mach.Addr(rng.Uint32()) &^ 3,
	}
	if rng.Intn(2) == 0 {
		in.Dest = rng.Int31n(1 << 20)
	}
	if rng.Intn(2) == 0 {
		in.Src1 = rng.Int31n(1 << 20)
	}
	if rng.Intn(2) == 0 {
		in.Src2 = rng.Int31n(1 << 20)
	}
	if in.Op.IsMem() {
		in.Addr = mach.Addr(rng.Uint32()) &^ 3
		in.Value = rng.Uint32()
	}
	if in.Op == isa.OpBranch {
		in.Taken = rng.Intn(2) == 0
	}
	return in
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	insts := make([]isa.Inst, 5000)
	for i := range insts {
		insts[i] = randomInst(rng)
	}
	var buf bytes.Buffer
	n, err := WriteAll(&buf, isa.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(insts)) {
		t.Fatalf("wrote %d records, want %d", n, len(insts))
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, insts) {
		for i := range insts {
			if got[i] != insts[i] {
				t.Fatalf("record %d: got %+v, want %+v", i, got[i], insts[i])
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		insts := make([]isa.Inst, int(n)+1)
		for i := range insts {
			insts[i] = randomInst(rng)
		}
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, isa.NewSliceStream(insts)); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		return err == nil && reflect.DeepEqual(got, insts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteAll(&buf, isa.NewSliceStream(nil))
	if err != nil || n != 0 {
		t.Fatalf("WriteAll(empty) = %d, %v", n, err)
	}
	// No magic is written until the first record; reading yields EOF.
	if _, err := NewReader(&buf).Read(); err != io.EOF {
		t.Errorf("empty stream read error = %v, want io.EOF", err)
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("NOTATRACE"))
	if _, err := r.Read(); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestCorruptRecordRejected(t *testing.T) {
	insts := []isa.Inst{{Op: isa.OpLoad, Dest: 1, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x1000, Value: 7}}
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, isa.NewSliceStream(insts)); err != nil {
		t.Fatal(err)
	}
	// Unknown opcode.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(Magic)] = 0xEE
	if _, err := NewReader(bytes.NewReader(bad)).ReadAll(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown opcode error = %v, want ErrCorrupt", err)
	}
	// Memory flag stripped from a load.
	bad = append([]byte(nil), buf.Bytes()...)
	bad[len(Magic)+1] &^= 1 << 4
	if _, err := NewReader(bytes.NewReader(bad)).ReadAll(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flag/opcode disagreement error = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	insts := []isa.Inst{{Op: isa.OpLoad, Dest: 1, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x1000, Value: 7}}
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, isa.NewSliceStream(insts)); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-1]
	_, err := NewReader(bytes.NewReader(cut)).ReadAll()
	if err == nil || err == io.EOF {
		t.Errorf("truncated stream error = %v, want unexpected-EOF wrap", err)
	}
}

func TestCompactness(t *testing.T) {
	// Sequential access patterns should delta-encode to only a few bytes
	// per record.
	insts := make([]isa.Inst, 1000)
	for i := range insts {
		insts[i] = isa.Inst{
			Op: isa.OpLoad, Dest: int32(i), Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: mach.Addr(0x1000 + i*4), Value: 1, PC: mach.Addr(0x400000 + i*8),
		}
	}
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, isa.NewSliceStream(insts)); err != nil {
		t.Fatal(err)
	}
	perRec := float64(buf.Len()) / float64(len(insts))
	if perRec > 12 {
		t.Errorf("encoding too large: %.1f bytes/record", perRec)
	}
}

func BenchmarkWriter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	insts := make([]isa.Inst, 1024)
	for i := range insts {
		insts[i] = randomInst(rng)
	}
	b.ResetTimer()
	tw := NewWriter(io.Discard)
	for i := 0; i < b.N; i++ {
		if err := tw.Write(insts[i%1024]); err != nil {
			b.Fatal(err)
		}
	}
}
