// Package trace serialises instruction traces to a compact binary stream.
//
// The format is a magic header followed by one varint-delta-encoded record
// per instruction. Register ids grow monotonically in well-formed traces,
// so they delta-encode well; addresses and PCs are zig-zag deltas against
// the previous memory instruction. The format exists so that workloads can
// be generated once (cmd/cpptrace) and replayed many times.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cppcache/internal/isa"
	"cppcache/internal/mach"
)

// Magic identifies a cppcache trace stream (format version 1).
const Magic = "CPPT\x01"

// flag bits packed alongside the opcode byte.
const (
	flagTaken   = 1 << 0
	flagHasDest = 1 << 1
	flagHasSrc1 = 1 << 2
	flagHasSrc2 = 1 << 3
	flagMem     = 1 << 4
)

// Writer encodes instructions onto an io.Writer.
type Writer struct {
	w        *bufio.Writer
	buf      [binary.MaxVarintLen64]byte
	prevAddr mach.Addr
	prevPC   mach.Addr
	count    int64
	started  bool
}

// NewWriter returns a Writer that emits the stream header lazily on the
// first Write.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func (tw *Writer) varint(v int64) error {
	n := binary.PutVarint(tw.buf[:], v)
	_, err := tw.w.Write(tw.buf[:n])
	return err
}

func (tw *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(tw.buf[:], v)
	_, err := tw.w.Write(tw.buf[:n])
	return err
}

// Write appends one instruction to the stream.
func (tw *Writer) Write(in isa.Inst) error {
	if !tw.started {
		if _, err := io.WriteString(tw.w, Magic); err != nil {
			return err
		}
		tw.started = true
	}
	var flags byte
	if in.Taken {
		flags |= flagTaken
	}
	if in.Dest != isa.NoReg {
		flags |= flagHasDest
	}
	if in.Src1 != isa.NoReg {
		flags |= flagHasSrc1
	}
	if in.Src2 != isa.NoReg {
		flags |= flagHasSrc2
	}
	if in.Op.IsMem() {
		flags |= flagMem
	}
	if err := tw.w.WriteByte(byte(in.Op)); err != nil {
		return err
	}
	if err := tw.w.WriteByte(flags); err != nil {
		return err
	}
	if flags&flagHasDest != 0 {
		if err := tw.uvarint(uint64(in.Dest)); err != nil {
			return err
		}
	}
	if flags&flagHasSrc1 != 0 {
		if err := tw.uvarint(uint64(in.Src1)); err != nil {
			return err
		}
	}
	if flags&flagHasSrc2 != 0 {
		if err := tw.uvarint(uint64(in.Src2)); err != nil {
			return err
		}
	}
	if flags&flagMem != 0 {
		if err := tw.varint(int64(in.Addr) - int64(tw.prevAddr)); err != nil {
			return err
		}
		tw.prevAddr = in.Addr
		if err := tw.uvarint(uint64(in.Value)); err != nil {
			return err
		}
	}
	if err := tw.varint(int64(in.PC) - int64(tw.prevPC)); err != nil {
		return err
	}
	tw.prevPC = in.PC
	tw.count++
	return nil
}

// Count returns the number of instructions written so far.
func (tw *Writer) Count() int64 { return tw.count }

// Flush writes any buffered data to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader decodes a stream produced by Writer.
type Reader struct {
	r        *bufio.Reader
	prevAddr mach.Addr
	prevPC   mach.Addr
	started  bool
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// ErrBadMagic reports a stream that does not begin with the trace header.
var ErrBadMagic = errors.New("trace: bad magic header")

// ErrCorrupt reports a record that is structurally decodable but could not
// have been produced by Writer (unknown opcode, or a memory-operand flag
// that contradicts the opcode).
var ErrCorrupt = errors.New("trace: corrupt record")

// Read decodes the next instruction. It returns io.EOF at a clean end of
// stream.
func (tr *Reader) Read() (isa.Inst, error) {
	if !tr.started {
		hdr := make([]byte, len(Magic))
		if _, err := io.ReadFull(tr.r, hdr); err != nil {
			if err == io.ErrUnexpectedEOF {
				err = ErrBadMagic
			}
			return isa.Inst{}, err
		}
		if string(hdr) != Magic {
			return isa.Inst{}, ErrBadMagic
		}
		tr.started = true
	}
	opByte, err := tr.r.ReadByte()
	if err != nil {
		return isa.Inst{}, err // io.EOF = clean end
	}
	flags, err := tr.r.ReadByte()
	if err != nil {
		return isa.Inst{}, unexpected(err)
	}
	in := isa.Inst{Op: isa.Op(opByte), Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	if !in.Op.Valid() {
		return isa.Inst{}, fmt.Errorf("%w: unknown opcode %#x", ErrCorrupt, opByte)
	}
	if (flags&flagMem != 0) != in.Op.IsMem() {
		return isa.Inst{}, fmt.Errorf("%w: memory flag disagrees with opcode %v", ErrCorrupt, in.Op)
	}
	in.Taken = flags&flagTaken != 0
	if flags&flagHasDest != 0 {
		v, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return in, unexpected(err)
		}
		in.Dest = int32(v)
	}
	if flags&flagHasSrc1 != 0 {
		v, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return in, unexpected(err)
		}
		in.Src1 = int32(v)
	}
	if flags&flagHasSrc2 != 0 {
		v, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return in, unexpected(err)
		}
		in.Src2 = int32(v)
	}
	if flags&flagMem != 0 {
		d, err := binary.ReadVarint(tr.r)
		if err != nil {
			return in, unexpected(err)
		}
		in.Addr = mach.Addr(int64(tr.prevAddr) + d)
		tr.prevAddr = in.Addr
		v, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return in, unexpected(err)
		}
		in.Value = mach.Word(v)
	}
	d, err := binary.ReadVarint(tr.r)
	if err != nil {
		return in, unexpected(err)
	}
	in.PC = mach.Addr(int64(tr.prevPC) + d)
	tr.prevPC = in.PC
	return in, nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return err
}

// ReadAll decodes the remainder of the stream into a slice.
func (tr *Reader) ReadAll() ([]isa.Inst, error) {
	var insts []isa.Inst
	for {
		in, err := tr.Read()
		if err == io.EOF {
			return insts, nil
		}
		if err != nil {
			return insts, err
		}
		insts = append(insts, in)
	}
}

// WriteAll encodes all instructions from s (resetting it first) to w and
// flushes.
func WriteAll(w io.Writer, s isa.Stream) (int64, error) {
	s.Reset()
	tw := NewWriter(w)
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		if err := tw.Write(in); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}
