// Pre-decoded trace representation: the struct-of-arrays form of an
// instruction trace, built once per (workload, scale) and shared
// read-only across every configuration, repetition and goroutine of a
// sweep.
//
// The array-of-structs form ([]isa.Inst, 32 bytes per record) is what
// generators produce and what the serializer in this package reads and
// writes. Decoded splits the same records into flat per-field buffers
// (opcode, register ids, address, value, flags), which is 26 bytes per
// instruction, keeps each field's stream contiguous for replay loops
// that touch only a few fields (the functional simulator reads just
// opcode/addr/value/pc), and gives the simulator a concrete type to
// index so the per-instruction interface dispatch of isa.Stream
// disappears from the fetch hot path.
package trace

import (
	"cppcache/internal/isa"
	"cppcache/internal/mach"
)

// Decoded is an immutable struct-of-arrays instruction trace. Build one
// with NewDecoded; all slices have identical length and must never be
// mutated (they are shared across concurrent runs without locking).
type Decoded struct {
	ops    []isa.Op
	dests  []int32
	src1s  []int32
	src2s  []int32
	addrs  []mach.Addr
	values []mach.Word
	pcs    []mach.Addr
	takens []bool
}

// NewDecoded pre-decodes an instruction slice into struct-of-arrays
// form. The input is not retained.
func NewDecoded(insts []isa.Inst) *Decoded {
	n := len(insts)
	d := &Decoded{
		ops:    make([]isa.Op, n),
		dests:  make([]int32, n),
		src1s:  make([]int32, n),
		src2s:  make([]int32, n),
		addrs:  make([]mach.Addr, n),
		values: make([]mach.Word, n),
		pcs:    make([]mach.Addr, n),
		takens: make([]bool, n),
	}
	for i := range insts {
		in := &insts[i]
		d.ops[i] = in.Op
		d.dests[i] = in.Dest
		d.src1s[i] = in.Src1
		d.src2s[i] = in.Src2
		d.addrs[i] = in.Addr
		d.values[i] = in.Value
		d.pcs[i] = in.PC
		d.takens[i] = in.Taken
	}
	return d
}

// Len returns the trace length in instructions.
func (d *Decoded) Len() int { return len(d.ops) }

// Bytes returns the heap footprint of the buffers, the unit the
// workload package's size-bounded store budgets in.
func (d *Decoded) Bytes() int64 {
	const perInst = 1 + 4 + 4 + 4 + 4 + 4 + 4 + 1 // op + 3 regs + addr + value + pc + taken
	return int64(len(d.ops)) * perInst
}

// At gathers instruction i back into record form.
func (d *Decoded) At(i int) isa.Inst {
	return isa.Inst{
		Op:    d.ops[i],
		Dest:  d.dests[i],
		Src1:  d.src1s[i],
		Src2:  d.src2s[i],
		Addr:  d.addrs[i],
		Value: d.values[i],
		Taken: d.takens[i],
		PC:    d.pcs[i],
	}
}

// Field accessors expose the raw buffers for replay loops; callers must
// treat them as read-only.

// Ops returns the opcode buffer.
func (d *Decoded) Ops() []isa.Op { return d.ops }

// Dests returns the destination-register buffer.
func (d *Decoded) Dests() []int32 { return d.dests }

// Src1s returns the first-source-register buffer.
func (d *Decoded) Src1s() []int32 { return d.src1s }

// Src2s returns the second-source-register buffer.
func (d *Decoded) Src2s() []int32 { return d.src2s }

// Addrs returns the memory-address buffer (meaningful for memory ops).
func (d *Decoded) Addrs() []mach.Addr { return d.addrs }

// Values returns the data-value buffer (stores write it, loads check it).
func (d *Decoded) Values() []mach.Word { return d.values }

// PCs returns the instruction-address buffer.
func (d *Decoded) PCs() []mach.Addr { return d.pcs }

// Takens returns the branch-outcome buffer.
func (d *Decoded) Takens() []bool { return d.takens }

// Replay returns a fresh stream over the trace. The returned Replayer
// carries its own cursor, so any number of concurrent replays can share
// one Decoded.
func (d *Decoded) Replay() *Replayer { return &Replayer{d: d} }

// Replayer adapts a Decoded trace to isa.Stream. The simulator
// recognises the concrete type and bypasses Next entirely, indexing the
// buffers directly; Next exists so every existing Stream consumer
// (instruction-mix scans, tests, external tools) works unchanged.
type Replayer struct {
	d   *Decoded
	pos int
}

// Decoded returns the shared buffers behind the stream.
func (r *Replayer) Decoded() *Decoded { return r.d }

// Next implements isa.Stream.
func (r *Replayer) Next() (isa.Inst, bool) {
	if r.pos >= len(r.d.ops) {
		return isa.Inst{}, false
	}
	in := r.d.At(r.pos)
	r.pos++
	return in, true
}

// Reset implements isa.Stream.
func (r *Replayer) Reset() { r.pos = 0 }

// Len returns the trace length in instructions.
func (r *Replayer) Len() int { return len(r.d.ops) }
