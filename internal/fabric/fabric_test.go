package fabric

import (
	"strings"
	"testing"
)

// newTier builds a probe-less coordinator over the given URLs.
func newTier(t *testing.T, urls ...string) *Coordinator {
	t.Helper()
	c, err := New(Config{Workers: urls, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewValidatesAndDedups(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no workers did not error")
	}
	if _, err := New(Config{Workers: []string{"", "  "}}); err == nil {
		t.Fatal("New with only blank workers did not error")
	}
	c := newTier(t,
		"http://a:1", "http://a:1/", " http://a:1 ", "http://b:2", "")
	if c.WorkerCount() != 2 {
		t.Fatalf("worker count %d, want 2 after dedup (workers %v)",
			c.WorkerCount(), c.Workers())
	}
	want := []string{"http://a:1", "http://b:2"}
	for i, u := range c.Workers() {
		if u != want[i] {
			t.Errorf("worker[%d] = %q, want %q", i, u, want[i])
		}
	}
}

// TestCandidatesDeterministicAndComplete: the placement preference list
// for a spec hash is stable across calls, covers every distinct worker
// exactly once, and spreads first choices across the tier.
func TestCandidatesDeterministicAndComplete(t *testing.T) {
	c := newTier(t, "http://a:1", "http://b:2", "http://c:3")
	first := map[int]int{}
	for _, hash := range []string{"alpha", "beta", "gamma", "delta", "epsilon",
		"zeta", "eta", "theta", "iota", "kappa", "lambda", "mu"} {
		a := c.candidates(hash)
		b := c.candidates(hash)
		if len(a) != 3 {
			t.Fatalf("candidates(%q) has %d entries, want 3", hash, len(a))
		}
		seen := map[int]bool{}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("candidates(%q) not deterministic: %v vs %v", hash, a, b)
			}
			if seen[a[i]] {
				t.Fatalf("candidates(%q) repeats worker %d: %v", hash, a[i], a)
			}
			seen[a[i]] = true
		}
		first[a[0]]++
	}
	if len(first) < 2 {
		t.Errorf("12 hashes all preferred the same worker: %v (ring not spreading)", first)
	}
}

// TestPickHealthyFirst: placement prefers up workers in ring order,
// rotates across attempts, and still answers (the down list) when the
// whole tier looks dead — the attempt itself is what rediscovers a
// recovered worker.
func TestPickHealthyFirst(t *testing.T) {
	c := newTier(t, "http://a:1", "http://b:2", "http://c:3")
	cand := c.candidates("spec")

	if got := c.pick(cand, 0); got.url != c.workers[cand[0]].url {
		t.Fatalf("all-healthy pick = %s, want ring head %s", got.url, c.workers[cand[0]].url)
	}

	c.workers[cand[0]].setUp(false)
	if got := c.pick(cand, 0); got.url == c.workers[cand[0]].url {
		t.Fatal("pick chose the down worker while healthy ones remain")
	}
	// Attempts rotate over the healthy-first ordering: with one down, the
	// first two attempts cover both healthy workers.
	a0, a1 := c.pick(cand, 0), c.pick(cand, 1)
	if a0 == a1 {
		t.Fatal("consecutive attempts picked the same worker")
	}

	for _, w := range c.workers {
		w.setUp(false)
	}
	if got := c.pick(cand, 0); got == nil {
		t.Fatal("pick returned nil with every worker down")
	}
}

func TestWriteProm(t *testing.T) {
	c := newTier(t, `http://has"quote:1`, "http://b:2")
	c.retries.Add(3)
	c.placements.Add(7)
	var b strings.Builder
	c.WriteProm(&b)
	out := b.String()
	for _, needle := range []string{
		"cppserved_fabric_retries_total 3",
		"cppserved_fabric_placements_total 7",
		"cppserved_fabric_probe_failures_total 0",
		`cppserved_fabric_worker_up{worker="http://has\"quote:1"} 1`,
		`cppserved_fabric_worker_up{worker="http://b:2"} 1`,
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("exposition missing %q:\n%s", needle, out)
		}
	}
}
