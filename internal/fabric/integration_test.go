// Integration tests driving the coordinator against real in-process
// observatory workers (the full serve HTTP surface behind a chaos
// disruptor). External test package: serve imports fabric, so these live
// outside package fabric to break the cycle.
package fabric_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cppcache/internal/backoff"
	"cppcache/internal/chaos"
	"cppcache/internal/fabric"
	"cppcache/internal/ledger"
	"cppcache/internal/serve"
)

// tier is a coordinator over n in-process workers, each wrapped in a
// chaos disruptor the test can kill at will.
type tier struct {
	coord *fabric.Coordinator
	urls  []string
	dis   map[string]*chaos.WorkerDisruptor
	regs  map[string]*serve.Registry
}

// newWorkerTier boots n workers and a probe-less coordinator with fast,
// jitter-free retry timing. Keep-alives are disabled so a killed worker's
// severed connections are never transparently retried by the HTTP client
// — the coordinator must observe every loss itself.
func newWorkerTier(t *testing.T, n int) *tier {
	t.Helper()
	tr := &tier{
		dis:  map[string]*chaos.WorkerDisruptor{},
		regs: map[string]*serve.Registry{},
	}
	for i := 0; i < n; i++ {
		reg := serve.NewRegistryWith(serve.Config{AllowChaos: true}, nil)
		dis := chaos.NewWorkerDisruptor(chaos.WorkerSpec{})
		srv := httptest.NewServer(dis.Wrap(serve.NewServer(reg, nil)))
		t.Cleanup(srv.Close)
		tr.urls = append(tr.urls, srv.URL)
		tr.dis[srv.URL] = dis
		tr.regs[srv.URL] = reg
	}
	coord, err := fabric.New(fabric.Config{
		Workers:        tr.urls,
		ProbeInterval:  -1,
		CallTimeout:    2 * time.Second,
		AttemptTimeout: 30 * time.Second,
		PollInterval:   2 * time.Millisecond,
		MaxAttempts:    4,
		Backoff:        backoff.Policy{Base: time.Millisecond, Cap: 4 * time.Millisecond, Factor: 2, Jitter: 0},
		Client:         &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	tr.coord = coord
	return tr
}

func digestOf(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	if len(raw) == 0 {
		t.Fatal("outcome carries no result JSON")
	}
	d, err := ledger.ResultDigest(raw)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExecuteHappyPath(t *testing.T) {
	tr := newWorkerTier(t, 2)
	out, err := tr.coord.Execute(context.Background(), "happy",
		[]byte(`{"workload":"mst","config":"CPP","functional":true,"scale":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if out.State != "done" || out.Attempts != 1 || out.RunID == 0 || out.TraceID == "" {
		t.Fatalf("outcome %+v, want done on the first attempt with run/trace ids", out)
	}
	if tr.coord.Retries() != 0 {
		t.Fatalf("retries %d, want 0", tr.coord.Retries())
	}
	digestOf(t, out.Result) // must be digestable without re-parsing loss
}

// TestExecutePermanentRejection: a 400 spec rejection is the same on
// every worker — the coordinator must fail immediately, not burn its
// retry budget re-asking.
func TestExecutePermanentRejection(t *testing.T) {
	tr := newWorkerTier(t, 2)
	out, err := tr.coord.Execute(context.Background(), "perm",
		[]byte(`{"workload":"no-such-workload","config":"CPP"}`))
	if err == nil {
		t.Fatal("invalid spec did not error")
	}
	if out.Attempts != 1 {
		t.Fatalf("attempts %d, want 1 (permanent rejections must not retry)", out.Attempts)
	}
	if tr.coord.Retries() != 0 {
		t.Fatalf("retries %d, want 0", tr.coord.Retries())
	}
}

// TestExecuteRetriesOnWorkerLoss: kill the worker a spec hash prefers;
// re-executing the same hash must re-place onto the survivor and produce
// the byte-identical result digest — the retried run is indistinguishable
// from the original.
func TestExecuteRetriesOnWorkerLoss(t *testing.T) {
	tr := newWorkerTier(t, 2)
	spec := []byte(`{"workload":"mst","config":"CPP","functional":true,"scale":2}`)

	first, err := tr.coord.Execute(context.Background(), "loss-key", spec)
	if err != nil {
		t.Fatal(err)
	}
	// With every worker healthy, attempt 0 picks the true ring preference —
	// so first.Worker IS the worker "loss-key" will try first next time.
	tr.dis[first.Worker].Kill()

	second, err := tr.coord.Execute(context.Background(), "loss-key", spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != "done" {
		t.Fatalf("state %s (%s), want done", second.State, second.Error)
	}
	if second.Worker == first.Worker {
		t.Fatalf("run was not re-placed off the killed worker %s", first.Worker)
	}
	if second.Attempts < 2 || tr.coord.Retries() < 1 {
		t.Fatalf("attempts %d retries %d, want a visible re-placement", second.Attempts, tr.coord.Retries())
	}
	if da, db := digestOf(t, first.Result), digestOf(t, second.Result); da != db {
		t.Fatalf("retried run digest %s != original %s (determinism broken)", db, da)
	}
}

// TestExecuteSurvivesMidRunKill: the worker dies while the coordinator is
// polling an in-flight run (launch succeeded, then the connection starts
// severing). Two consecutive poll failures must re-place the run from
// scratch on the survivor.
func TestExecuteSurvivesMidRunKill(t *testing.T) {
	// The run stalls 400ms mid-execution, guaranteeing the kill lands
	// between launch and completion.
	spec := []byte(`{"workload":"mst","config":"CPP","functional":true,"scale":1,"chaos":{"stall_after":1,"stall_ms":400}}`)
	tr := newWorkerTier(t, 2)

	done := make(chan struct{})
	var out fabric.Outcome
	var execErr error
	go func() {
		defer close(done)
		out, execErr = tr.coord.Execute(context.Background(), "midrun", spec)
	}()

	// Kill whichever worker the run landed on once it has served the
	// launch plus at least one status poll.
	deadline := time.Now().Add(10 * time.Second)
	for {
		killed := false
		for _, url := range tr.urls {
			if tr.dis[url].Requests() >= 2 {
				tr.dis[url].Kill()
				killed = true
				break
			}
		}
		if killed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no worker received the run within 10s")
		}
		time.Sleep(time.Millisecond)
	}

	<-done
	if execErr != nil {
		t.Fatal(execErr)
	}
	if out.State != "done" || out.Attempts < 2 {
		t.Fatalf("outcome %+v, want done after a mid-run re-placement", out)
	}
	if tr.coord.Retries() < 1 {
		t.Fatalf("retries %d, want >= 1", tr.coord.Retries())
	}
}

// TestExecuteCancellation: canceling the caller's context mid-run returns
// promptly with a canceled outcome instead of burning the retry budget.
func TestExecuteCancellation(t *testing.T) {
	spec := []byte(`{"workload":"mst","config":"CPP","functional":true,"scale":1,"chaos":{"stall_after":1,"stall_ms":5000}}`)
	tr := newWorkerTier(t, 1)
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan struct{})
	var out fabric.Outcome
	var execErr error
	go func() {
		defer close(done)
		out, execErr = tr.coord.Execute(ctx, "cancel-key", spec)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for tr.dis[tr.urls[0]].Requests() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Execute did not return within 5s of cancellation")
	}
	if !errors.Is(execErr, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", execErr)
	}
	if out.State != "canceled" {
		t.Fatalf("state %q, want canceled", out.State)
	}
}

// TestSweepKillVsControlTableIdentical is the fabric acceptance test:
// a coordinator-backed sweep with a worker killed mid-flight must reach a
// clean terminal state whose deterministic aggregate table is
// byte-identical to a control sweep that saw no failure. Retried runs are
// provably inert — same digests, same counters — and the kill is visible
// only in the retry counter.
func TestSweepKillVsControlTableIdentical(t *testing.T) {
	sweepSpec := serve.SweepSpec{
		Workloads:  []string{"mst", "treeadd"},
		Configs:    []string{"CPP", "BCC"},
		Scales:     []int{1, 2},
		Functional: true,
	}
	probeSpec := []byte(`{"workload":"mst","config":"CPP","functional":true,"scale":3}`)

	run := func(kill bool) (table string, retries int64, probeDigest string) {
		tr := newWorkerTier(t, 2)
		reg := serve.NewRegistryWith(serve.Config{Fabric: tr.coord}, nil)

		// Learn which worker the ring prefers for the probe key while the
		// tier is fully healthy; the kill targets that worker, so the
		// guaranteed-retry fallback below has a victim it will contact.
		probe, err := tr.coord.Execute(context.Background(), "victim-probe", probeSpec)
		if err != nil {
			t.Fatal(err)
		}
		victim := probe.Worker

		sw, err := reg.LaunchSweep(sweepSpec)
		if err != nil {
			t.Fatal(err)
		}
		if kill {
			// Let the sweep get children in flight, then murder the victim.
			deadline := time.Now().Add(10 * time.Second)
			for tr.coord.Placements() < 2 {
				if time.Now().After(deadline) {
					t.Fatal("sweep placed no children within 10s")
				}
				time.Sleep(time.Millisecond)
			}
			tr.dis[victim].Kill()
		}

		deadline := time.Now().Add(60 * time.Second)
		for {
			st := sw.Status()
			if st.State != serve.SweepRunning {
				if st.State != serve.SweepDone || st.Degraded {
					t.Fatalf("sweep state %s degraded=%v (children %+v), want clean done",
						st.State, st.Degraded, st.Children)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("sweep still running after 60s: %+v", st.Counts)
			}
			time.Sleep(5 * time.Millisecond)
		}

		if kill && tr.coord.Retries() == 0 {
			// Every child happened to finish before the kill could bite. The
			// victim is still marked up (probes are off, nothing contacted it
			// post-kill), so re-executing the probe key MUST try it first,
			// observe the severed connection and re-place — a deterministic
			// retry regardless of how the sweep's timing played out.
			out, err := tr.coord.Execute(context.Background(), "victim-probe", probeSpec)
			if err != nil {
				t.Fatal(err)
			}
			if out.Worker == victim {
				t.Fatalf("probe re-run landed on the killed worker %s", victim)
			}
			if da, db := digestOf(t, probe.Result), digestOf(t, out.Result); da != db {
				t.Fatalf("retried probe digest %s != original %s", db, da)
			}
		}
		return sw.Table(), tr.coord.Retries(), digestOf(t, probe.Result)
	}

	controlTable, _, controlProbe := run(false)
	killTable, retries, killProbe := run(true)

	if killTable != controlTable {
		t.Fatalf("kill and control tables differ:\n--- control ---\n%s--- kill ---\n%s",
			controlTable, killTable)
	}
	if retries < 1 {
		t.Fatalf("retries %d, want >= 1 after killing a worker", retries)
	}
	if controlProbe != killProbe {
		t.Fatalf("probe digests differ across tiers: %s vs %s", controlProbe, killProbe)
	}
}
