// Package fabric is the coordinator side of the distributed sweep tier:
// it places content-addressed run specs onto N worker cppserved
// instances via consistent hashing and drives each run to a terminal
// outcome over plain HTTP, surviving worker loss.
//
// Fault model: a worker can die (kill -9: connections sever mid-request),
// stall (responses hang past the per-attempt timeout) or shed load
// (429/503). The coordinator answers each with bounded, jittered
// exponential-backoff retries on the next worker in ring order, health
// probes that steer placement away from dead workers, and automatic
// re-placement of in-flight runs whose worker stopped answering.
// Re-execution is safe because runs are deterministic — the simulator's
// golden-pinned determinism (internal/verify, ledger.ResultDigest) is
// what makes a retried run's result verifiable byte-for-byte against a
// control execution, which the chaos tests and the CI sweep-smoke
// exploit.
//
// The package speaks only the observatory's public HTTP surface and
// depends only on internal/backoff and the standard library, so worker
// processes, in-process httptest workers (unit tests) and real remote
// nodes are interchangeable.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cppcache/internal/backoff"
)

// Defaults for Config's zero fields.
const (
	DefaultReplicas       = 64
	DefaultProbeInterval  = time.Second
	DefaultCallTimeout    = 5 * time.Second
	DefaultAttemptTimeout = 2 * time.Minute
	DefaultPollInterval   = 50 * time.Millisecond
	DefaultMaxAttempts    = 4
)

// Config describes the worker tier and the coordinator's retry budget.
type Config struct {
	// Workers are the base URLs of the worker cppserved instances
	// (e.g. "http://10.0.0.7:8080"). At least one is required.
	Workers []string
	// Replicas is the virtual-node count per worker on the hash ring.
	Replicas int
	// ProbeInterval is the health-probe cadence (GET /readyz per worker).
	// Negative disables background probing (placement still marks workers
	// down on connection errors).
	ProbeInterval time.Duration
	// CallTimeout bounds each individual HTTP call.
	CallTimeout time.Duration
	// AttemptTimeout bounds one full placement attempt (launch + poll to
	// terminal) before the run is re-placed elsewhere.
	AttemptTimeout time.Duration
	// PollInterval is the status-poll cadence while a run executes.
	PollInterval time.Duration
	// MaxAttempts bounds placements per run (first try included).
	MaxAttempts int
	// Backoff is the retry schedule between placement attempts.
	Backoff backoff.Policy
	// Client overrides the HTTP client (tests inject a keep-alive-free
	// one). nil uses a dedicated default client.
	Client *http.Client
	// Log receives placement and retry events. nil discards.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = DefaultCallTimeout
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = DefaultAttemptTimeout
	}
	if c.PollInterval <= 0 {
		c.PollInterval = DefaultPollInterval
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Outcome is the terminal result of one placed run. State is the run's
// lifecycle state on the worker that finished it ("done", "failed",
// "canceled"); Result is the raw result JSON, digestable with
// ledger.ResultDigest without re-parsing loss.
type Outcome struct {
	Worker   string
	RunID    int
	TraceID  string
	State    string
	Error    string
	Attempts int
	Memoized bool
	Result   json.RawMessage
}

// statusView is the slice of the worker's run-status JSON the coordinator
// needs; unknown fields are ignored so workers can evolve independently.
type statusView struct {
	ID       int             `json:"id"`
	TraceID  string          `json:"trace_id"`
	State    string          `json:"state"`
	Error    string          `json:"error"`
	Memoized bool            `json:"memoized"`
	Result   json.RawMessage `json:"result"`
}

// terminalState mirrors serve.RunState.Terminal without importing serve.
func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "canceled"
}

// errPermanent wraps worker responses that retrying cannot fix (a 400
// spec rejection is the same on every worker).
type errPermanent struct{ msg string }

func (e *errPermanent) Error() string { return e.msg }

// errBusy wraps backpressure responses (429/503): retryable, but not
// evidence the worker is dead.
type errBusy struct{ msg string }

func (e *errBusy) Error() string { return e.msg }

// errConn wraps transport-level failures: retryable AND evidence the
// worker is gone, so placement marks it down.
type errConn struct{ err error }

func (e *errConn) Error() string { return e.err.Error() }
func (e *errConn) Unwrap() error { return e.err }

// worker is one tier member's runtime state.
type worker struct {
	url string

	mu   sync.Mutex
	up   bool
	seen time.Time // last successful contact (probe or call)
}

func (w *worker) setUp(up bool) {
	w.mu.Lock()
	w.up = up
	if up {
		w.seen = time.Now()
	}
	w.mu.Unlock()
}

func (w *worker) isUp() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.up
}

// vnode is one virtual node on the consistent-hash ring.
type vnode struct {
	hash uint64
	idx  int // index into Coordinator.workers
}

// Coordinator places runs onto the worker tier. Safe for concurrent use;
// every Execute call is independent.
type Coordinator struct {
	cfg     Config
	workers []*worker
	ring    []vnode // sorted by hash

	stop chan struct{}
	wg   sync.WaitGroup

	placements    atomic.Int64
	retries       atomic.Int64
	probeFailures atomic.Int64
}

// New builds a coordinator over the tier and starts its health-probe
// loop. Workers start optimistically up; the first failed contact or
// probe marks them down.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fabric: at least one worker URL is required")
	}
	c := &Coordinator{cfg: cfg, stop: make(chan struct{})}
	seen := map[string]bool{}
	for _, u := range cfg.Workers {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		c.workers = append(c.workers, &worker{url: u, up: true})
	}
	if len(c.workers) == 0 {
		return nil, errors.New("fabric: no usable worker URLs")
	}
	for i, w := range c.workers {
		for r := 0; r < cfg.Replicas; r++ {
			c.ring = append(c.ring, vnode{hash: fnv64(fmt.Sprintf("%s#%d", w.url, r)), idx: i})
		}
	}
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	if cfg.ProbeInterval > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the probe loop.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.wg.Wait()
}

// WorkerCount returns the tier size.
func (c *Coordinator) WorkerCount() int { return len(c.workers) }

// Workers returns the tier member URLs in configuration order.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.url
	}
	return out
}

// Retries returns how many runs were re-placed after a failed attempt.
func (c *Coordinator) Retries() int64 { return c.retries.Load() }

// Placements returns how many placement attempts were made in total.
func (c *Coordinator) Placements() int64 { return c.placements.Load() }

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// candidates returns the distinct workers in ring order starting at the
// spec hash's position — the deterministic placement preference list.
func (c *Coordinator) candidates(specHash string) []int {
	h := fnv64(specHash)
	start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	out := make([]int, 0, len(c.workers))
	seen := make([]bool, len(c.workers))
	for i := 0; i < len(c.ring) && len(out) < len(c.workers); i++ {
		v := c.ring[(start+i)%len(c.ring)]
		if !seen[v.idx] {
			seen[v.idx] = true
			out = append(out, v.idx)
		}
	}
	return out
}

// pick chooses the worker for the given attempt: the preference list with
// healthy workers first (relative ring order preserved within each
// class), indexed by attempt so consecutive retries hit distinct workers.
func (c *Coordinator) pick(candidates []int, attempt int) *worker {
	healthy := make([]int, 0, len(candidates))
	down := make([]int, 0, len(candidates))
	for _, idx := range candidates {
		if c.workers[idx].isUp() {
			healthy = append(healthy, idx)
		} else {
			down = append(down, idx)
		}
	}
	ordered := append(healthy, down...)
	return c.workers[ordered[attempt%len(ordered)]]
}

// probeLoop keeps worker health fresh: GET /readyz per worker per tick. A
// 200 marks up (recovering workers re-enter placement automatically);
// anything else — including a drained worker's 503 — marks down.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		for _, w := range c.workers {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/readyz", nil)
			resp, err := c.cfg.Client.Do(req)
			up := err == nil && resp.StatusCode == http.StatusOK
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
			if !up {
				c.probeFailures.Add(1)
				if w.isUp() {
					c.cfg.Log.Warn("fabric: worker probe failed", "worker", w.url, "err", err)
				}
			}
			w.setUp(up)
		}
	}
}

// Execute places one spec-hash-addressed run on the tier and drives it to
// a terminal outcome. The spec JSON is POSTed verbatim to the chosen
// worker's /runs, then polled to completion. Worker loss mid-run (launch
// or poll connection failures) re-places the run on the next worker in
// ring order after a jittered backoff, up to MaxAttempts placements;
// every re-placement increments the retries counter. Permanent rejections
// (400) fail immediately. Context cancellation cancels the remote run
// best-effort and returns ctx.Err().
func (c *Coordinator) Execute(ctx context.Context, specHash string, specJSON []byte) (Outcome, error) {
	candidates := c.candidates(specHash)
	bo := backoff.New(c.cfg.Backoff, int64(fnv64(specHash)))
	var lastErr error
	var out Outcome
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			select {
			case <-time.After(bo.Next()):
			case <-ctx.Done():
				out.State = "canceled"
				return out, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			out.State = "canceled"
			return out, err
		}
		w := c.pick(candidates, attempt)
		c.placements.Add(1)
		o, err := c.runOn(ctx, w, specJSON)
		o.Attempts = attempt + 1
		if err == nil {
			w.setUp(true)
			return o, nil
		}
		out = o
		lastErr = err
		var pe *errPermanent
		if errors.As(err, &pe) {
			return o, err
		}
		if ctx.Err() != nil {
			out.State = "canceled"
			return out, ctx.Err()
		}
		var ce *errConn
		if errors.As(err, &ce) {
			w.setUp(false)
			c.cfg.Log.Warn("fabric: worker lost; re-placing run", "worker", w.url,
				"attempt", attempt+1, "err", err)
		} else {
			c.cfg.Log.Info("fabric: attempt failed; retrying", "worker", w.url,
				"attempt", attempt+1, "err", err)
		}
	}
	out.State = "failed"
	return out, fmt.Errorf("fabric: run not placed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// runOn performs one placement attempt on one worker: launch, then poll
// to terminal within the attempt timeout.
func (c *Coordinator) runOn(ctx context.Context, w *worker, specJSON []byte) (Outcome, error) {
	out := Outcome{Worker: w.url}
	attemptCtx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()

	st, err := c.call(attemptCtx, http.MethodPost, w.url+"/runs", specJSON)
	if err != nil {
		return out, err
	}
	out.RunID, out.TraceID = st.ID, st.TraceID

	consecutiveFailures := 0
	for {
		if terminalState(st.State) {
			out.State, out.Error, out.Memoized, out.Result = st.State, st.Error, st.Memoized, st.Result
			return out, nil
		}
		select {
		case <-attemptCtx.Done():
			if ctx.Err() != nil {
				// The caller canceled: tell the worker to stop, best-effort.
				c.cancelRemote(w, out.RunID)
				out.State = "canceled"
				return out, ctx.Err()
			}
			// Attempt timeout: the worker may be wedged; re-place. The
			// abandoned run is harmless — deterministic, and the worker's own
			// supervision bounds it.
			return out, &errConn{err: fmt.Errorf("attempt timeout after %v polling run %d", c.cfg.AttemptTimeout, out.RunID)}
		case <-time.After(c.cfg.PollInterval):
		}
		st, err = c.call(attemptCtx, http.MethodGet, fmt.Sprintf("%s/runs/%d", w.url, out.RunID), nil)
		if err != nil {
			var ce *errConn
			if errors.As(err, &ce) {
				// Two consecutive transport failures = the worker is gone
				// (one can be a blip mid-restart of a connection).
				consecutiveFailures++
				if consecutiveFailures >= 2 {
					return out, err
				}
				continue
			}
			return out, err
		}
		consecutiveFailures = 0
	}
}

// call performs one HTTP call against a worker and maps the response:
// 2xx parses the status view, 400/422 is permanent, 429/503 is busy,
// transport failures are connection errors.
func (c *Coordinator) call(ctx context.Context, method, url string, body []byte) (statusView, error) {
	var st statusView
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(callCtx, method, url, rd)
	if err != nil {
		return st, &errPermanent{msg: err.Error()}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return st, &errConn{err: err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return st, &errConn{err: fmt.Errorf("decode %s %s: %w", method, url, err)}
		}
		return st, nil
	case resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusUnprocessableEntity:
		return st, &errPermanent{msg: fmt.Sprintf("%s %s: %s: %s", method, url, resp.Status, readErr(resp.Body))}
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return st, &errBusy{msg: fmt.Sprintf("%s %s: %s", method, url, resp.Status)}
	default:
		return st, &errBusy{msg: fmt.Sprintf("%s %s: unexpected %s", method, url, resp.Status)}
	}
}

// readErr extracts a short error string from a response body.
func readErr(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	s := strings.TrimSpace(string(b))
	if s == "" {
		return "(no body)"
	}
	return s
}

// cancelRemote best-effort cancels a run on a worker.
func (c *Coordinator) cancelRemote(w *worker, runID int) {
	if runID <= 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("%s/runs/%d", w.url, runID), nil)
	if err != nil {
		return
	}
	if resp, err := c.cfg.Client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// promEscape escapes a Prometheus label value (text exposition 0.0.4).
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteProm renders the coordinator's metric families in Prometheus text
// exposition format 0.0.4, matching the observatory's hand-rolled style.
func (c *Coordinator) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP cppserved_fabric_retries_total Runs re-placed on another worker after a failed attempt.\n# TYPE cppserved_fabric_retries_total counter\n")
	fmt.Fprintf(w, "cppserved_fabric_retries_total %d\n", c.retries.Load())
	fmt.Fprintf(w, "# HELP cppserved_fabric_placements_total Placement attempts (first tries included).\n# TYPE cppserved_fabric_placements_total counter\n")
	fmt.Fprintf(w, "cppserved_fabric_placements_total %d\n", c.placements.Load())
	fmt.Fprintf(w, "# HELP cppserved_fabric_probe_failures_total Worker health probes that failed.\n# TYPE cppserved_fabric_probe_failures_total counter\n")
	fmt.Fprintf(w, "cppserved_fabric_probe_failures_total %d\n", c.probeFailures.Load())
	fmt.Fprintf(w, "# HELP cppserved_fabric_worker_up Worker health as seen by the coordinator (1 up, 0 down).\n# TYPE cppserved_fabric_worker_up gauge\n")
	for _, wk := range c.workers {
		up := 0
		if wk.isUp() {
			up = 1
		}
		fmt.Fprintf(w, "cppserved_fabric_worker_up{worker=\"%s\"} %d\n", promEscape(wk.url), up)
	}
}
