package cpu

import (
	"testing"

	"cppcache/internal/hier"
	"cppcache/internal/isa"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
)

// perfectMem is a memsys.System with fixed latency and no state, for
// isolating pipeline behaviour.
type perfectMem struct {
	lat   int
	store map[mach.Addr]mach.Word
	stats memsys.Stats
}

func newPerfect(lat int) *perfectMem {
	return &perfectMem{lat: lat, store: map[mach.Addr]mach.Word{}}
}

func (p *perfectMem) Read(a mach.Addr) (mach.Word, int) { return p.store[mach.WordAlign(a)], p.lat }
func (p *perfectMem) Write(a mach.Addr, v mach.Word) int {
	p.store[mach.WordAlign(a)] = v
	return p.lat
}
func (p *perfectMem) Stats() *memsys.Stats { return &p.stats }
func (p *perfectMem) Name() string         { return "perfect" }

func run(t *testing.T, insts []isa.Inst, d memsys.System) Result {
	t.Helper()
	c, err := New(DefaultParams(), d)
	if err != nil {
		t.Fatal(err)
	}
	return c.Run(isa.NewSliceStream(insts))
}

// alu builds a simple ALU instruction.
func alu(dest, src1, src2 int32, pc mach.Addr) isa.Inst {
	return isa.Inst{Op: isa.OpALU, Dest: dest, Src1: src1, Src2: src2, PC: pc}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	bad = DefaultParams()
	bad.ICacheLines = 100
	if err := bad.Validate(); err == nil {
		t.Error("non-pow2 icache accepted")
	}
}

func TestEmptyStream(t *testing.T) {
	res := run(t, nil, newPerfect(1))
	if res.Instructions != 0 {
		t.Errorf("Instructions = %d", res.Instructions)
	}
}

func TestAllInstructionsRetire(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 1000; i++ {
		insts = append(insts, alu(int32(i), isa.NoReg, isa.NoReg, mach.Addr(i%32*8)))
	}
	res := run(t, insts, newPerfect(1))
	if res.Instructions != 1000 {
		t.Fatalf("retired %d, want 1000", res.Instructions)
	}
	// 4-wide with no dependencies: roughly 250 cycles plus pipeline fill
	// and I-cache warmup.
	if res.Cycles > 600 {
		t.Errorf("independent ALU stream took %d cycles", res.Cycles)
	}
}

func TestDependenceChainSerialises(t *testing.T) {
	// A chain of N dependent ALU ops needs at least N cycles; independent
	// ops of the same count need about N/4.
	var chain, indep []isa.Inst
	for i := 0; i < 400; i++ {
		src := int32(i - 1)
		if i == 0 {
			src = isa.NoReg
		}
		chain = append(chain, alu(int32(i), src, isa.NoReg, mach.Addr(i%16*8)))
		indep = append(indep, alu(int32(i), isa.NoReg, isa.NoReg, mach.Addr(i%16*8)))
	}
	rc := run(t, chain, newPerfect(1))
	ri := run(t, indep, newPerfect(1))
	if rc.Cycles < 400 {
		t.Errorf("dependent chain finished in %d cycles (< chain length)", rc.Cycles)
	}
	if ri.Cycles*2 >= rc.Cycles {
		t.Errorf("independent (%d) not much faster than chain (%d)", ri.Cycles, rc.Cycles)
	}
}

func TestLoadLatencyBlocksDependents(t *testing.T) {
	mk := func(lat int) Result {
		insts := []isa.Inst{
			{Op: isa.OpLoad, Dest: 0, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x100},
			alu(1, 0, isa.NoReg, 8),
			alu(2, 1, isa.NoReg, 16),
		}
		d := newPerfect(lat)
		c, _ := New(DefaultParams(), d)
		return c.Run(isa.NewSliceStream(insts))
	}
	fast := mk(1)
	slow := mk(100)
	if slow.Cycles-fast.Cycles < 90 {
		t.Errorf("100-cycle load only added %d cycles", slow.Cycles-fast.Cycles)
	}
}

func TestStoreToLoadOrdering(t *testing.T) {
	// A load may not issue past an older store to the same word; the
	// value must come through the memory system.
	insts := []isa.Inst{
		{Op: isa.OpStore, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x40, Value: 7},
		{Op: isa.OpLoad, Dest: 0, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x40, Value: 7},
	}
	res := run(t, insts, newPerfect(1))
	if res.ValueMismatches != 0 {
		t.Errorf("store-to-load produced %d mismatches", res.ValueMismatches)
	}
}

func TestValueMismatchDetected(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpLoad, Dest: 0, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x40, Value: 999},
	}
	res := run(t, insts, newPerfect(1)) // perfect memory returns 0
	if res.ValueMismatches != 1 {
		t.Errorf("ValueMismatches = %d, want 1", res.ValueMismatches)
	}
}

func TestBranchMispredictCost(t *testing.T) {
	// Alternating branches defeat the bimod predictor; a monotone branch
	// trains it. The alternating version must be slower.
	mk := func(alternate bool) Result {
		var insts []isa.Inst
		for i := 0; i < 2000; i++ {
			taken := true
			if alternate {
				taken = i%2 == 0
			}
			insts = append(insts, isa.Inst{
				Op: isa.OpBranch, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg,
				Taken: taken, PC: 0x100,
			})
			insts = append(insts, alu(int32(i), isa.NoReg, isa.NoReg, 0x108))
		}
		d := newPerfect(1)
		c, _ := New(DefaultParams(), d)
		return c.Run(isa.NewSliceStream(insts))
	}
	steady := mk(false)
	flaky := mk(true)
	if flaky.Mispredicts <= steady.Mispredicts {
		t.Errorf("mispredicts: alternating %d <= steady %d", flaky.Mispredicts, steady.Mispredicts)
	}
	if flaky.Cycles <= steady.Cycles {
		t.Errorf("cycles: alternating %d <= steady %d", flaky.Cycles, steady.Cycles)
	}
}

func TestICacheMissesOnScatteredPCs(t *testing.T) {
	var tight, scattered []isa.Inst
	for i := 0; i < 4000; i++ {
		tight = append(tight, alu(int32(i), isa.NoReg, isa.NoReg, mach.Addr(i%8*4)))
		scattered = append(scattered, alu(int32(i), isa.NoReg, isa.NoReg, mach.Addr(i*1024)))
	}
	rt := run(t, tight, newPerfect(1))
	rs := run(t, scattered, newPerfect(1))
	if rt.ICacheMisses >= rs.ICacheMisses {
		t.Errorf("icache misses: tight %d >= scattered %d", rt.ICacheMisses, rs.ICacheMisses)
	}
	if rs.Cycles <= rt.Cycles {
		t.Errorf("icache misses did not slow the scattered loop (%d vs %d)", rs.Cycles, rt.Cycles)
	}
}

func TestReadyQueueInstrumentation(t *testing.T) {
	// One missing load plus plenty of independent work: during the miss
	// the ready queue should have entries.
	var insts []isa.Inst
	insts = append(insts, isa.Inst{Op: isa.OpLoad, Dest: 0, Src1: isa.NoReg, Src2: isa.NoReg, Addr: 0x100})
	for i := 1; i < 400; i++ {
		insts = append(insts, alu(int32(i), isa.NoReg, isa.NoReg, mach.Addr(i%16*8)))
	}
	res := run(t, insts, newPerfect(50))
	if res.MissCycles == 0 {
		t.Fatal("no miss cycles recorded for a 50-cycle load")
	}
	if res.AvgReadyQueueInMiss() <= 0 {
		t.Error("ready queue empty during miss despite independent work")
	}
}

func TestLSQCapacityLimitsMemOps(t *testing.T) {
	// More concurrent loads than LSQ entries: still correct, just slower
	// than unconstrained issue.
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		insts = append(insts, isa.Inst{
			Op: isa.OpLoad, Dest: int32(i), Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: mach.Addr(0x1000 + i*4),
		})
	}
	res := run(t, insts, newPerfect(30))
	if res.Instructions != 64 {
		t.Fatalf("retired %d, want 64", res.Instructions)
	}
	// 64 loads with LSQ 8 and 30-cycle latency cannot finish faster than
	// (64/8)*... a loose bound: at least 8 batches * 30 cycles / overlap.
	if res.Cycles < 60 {
		t.Errorf("LSQ-bound run finished suspiciously fast: %d cycles", res.Cycles)
	}
}

func TestHalvedPenaltySpeedsUp(t *testing.T) {
	// The Figure 14 methodology depends on this: same trace, halved miss
	// penalty, fewer cycles.
	var insts []isa.Inst
	for i := 0; i < 200; i++ {
		insts = append(insts, isa.Inst{
			Op: isa.OpLoad, Dest: int32(2 * i), Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: mach.Addr(0x1000 + i*64),
		})
		insts = append(insts, alu(int32(2*i+1), int32(2*i), isa.NoReg, 8))
	}
	full := run(t, insts, newPerfect(100))
	half := run(t, insts, newPerfect(50))
	if half.Cycles >= full.Cycles {
		t.Errorf("halved latency did not speed up: %d vs %d", half.Cycles, full.Cycles)
	}
}

func TestRunWithRealHierarchy(t *testing.T) {
	// End-to-end: CPU over a real cache hierarchy with correct values.
	m := mem.New()
	for i := 0; i < 256; i++ {
		m.WriteWord(mach.Addr(0x2000+i*4), mach.Word(i))
	}
	h := newTestHier(t, m)
	var insts []isa.Inst
	for i := 0; i < 256; i++ {
		insts = append(insts, isa.Inst{
			Op: isa.OpLoad, Dest: int32(i), Src1: isa.NoReg, Src2: isa.NoReg,
			Addr: mach.Addr(0x2000 + i*4), Value: mach.Word(i), PC: mach.Addr(i % 32 * 8),
		})
	}
	c, err := New(DefaultParams(), h)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(isa.NewSliceStream(insts))
	if res.ValueMismatches != 0 {
		t.Fatalf("%d value mismatches through the real hierarchy", res.ValueMismatches)
	}
	if res.Loads != 256 {
		t.Errorf("Loads = %d", res.Loads)
	}
}

func BenchmarkCoreALU(b *testing.B) {
	insts := make([]isa.Inst, 10000)
	for i := range insts {
		insts[i] = alu(int32(i), isa.NoReg, isa.NoReg, mach.Addr(i%64*8))
	}
	s := isa.NewSliceStream(insts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _ := New(DefaultParams(), newPerfect(1))
		c.Run(s)
	}
}

// newTestHier builds a baseline hierarchy without importing hier at the
// top (kept here to make the end-to-end test self-contained).
func newTestHier(t *testing.T, m *mem.Memory) memsys.System {
	t.Helper()
	h, err := hier.NewStandard(hier.BaselineConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestFUContentionMulDiv(t *testing.T) {
	// One multiplier: 8 independent muls serialize; 8 ALUs do not.
	mk := func(op isa.Op) Result {
		var insts []isa.Inst
		for i := 0; i < 64; i++ {
			insts = append(insts, isa.Inst{Op: op, Dest: int32(i), Src1: isa.NoReg, Src2: isa.NoReg, PC: mach.Addr(i % 16 * 4)})
		}
		return run(t, insts, newPerfect(1))
	}
	muls := mk(isa.OpMul)
	alus := mk(isa.OpALU)
	if muls.Cycles <= alus.Cycles {
		t.Errorf("muls (%d cycles) should be slower than ALUs (%d) with one multiplier", muls.Cycles, alus.Cycles)
	}
	divs := mk(isa.OpDiv)
	if divs.Cycles <= muls.Cycles {
		t.Errorf("divs (%d cycles) should be slower than muls (%d)", divs.Cycles, muls.Cycles)
	}
}

func TestFPUnitsUsed(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 32; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpFMul, Dest: int32(i), Src1: isa.NoReg, Src2: isa.NoReg, PC: 0})
		insts = append(insts, isa.Inst{Op: isa.OpFALU, Dest: int32(i + 100), Src1: isa.NoReg, Src2: isa.NoReg, PC: 4})
		insts = append(insts, isa.Inst{Op: isa.OpFDiv, Dest: int32(i + 200), Src1: isa.NoReg, Src2: isa.NoReg, PC: 8})
	}
	res := run(t, insts, newPerfect(1))
	if res.Instructions != 96 {
		t.Fatalf("retired %d", res.Instructions)
	}
}

func TestCommitWidthBoundsIPC(t *testing.T) {
	p := DefaultParams()
	p.CommitWidth = 1
	var insts []isa.Inst
	for i := 0; i < 2000; i++ {
		insts = append(insts, alu(int32(i), isa.NoReg, isa.NoReg, mach.Addr(i%32*4)))
	}
	c, _ := New(p, newPerfect(1))
	res := c.Run(isa.NewSliceStream(insts))
	if res.IPC() > 1.01 {
		t.Errorf("IPC %v exceeds commit width 1", res.IPC())
	}
}

func TestROBSizeLimitsOverlap(t *testing.T) {
	// Long-latency loads: a bigger ROB overlaps more of them.
	mk := func(robSize int) Result {
		p := DefaultParams()
		p.ROBSize = robSize
		p.LSQSize = robSize // do not let the LSQ be the binding limit
		var insts []isa.Inst
		for i := 0; i < 256; i++ {
			insts = append(insts, isa.Inst{
				Op: isa.OpLoad, Dest: int32(i), Src1: isa.NoReg, Src2: isa.NoReg,
				Addr: mach.Addr(0x1000 + i*64), PC: mach.Addr(i % 16 * 4),
			})
		}
		c, _ := New(p, newPerfect(80))
		return c.Run(isa.NewSliceStream(insts))
	}
	small := mk(4)
	big := mk(128)
	if big.Cycles >= small.Cycles {
		t.Errorf("ROB 128 (%d cycles) not faster than ROB 4 (%d)", big.Cycles, small.Cycles)
	}
}

func TestMemPortLimit(t *testing.T) {
	// With 1 port, 64 independent 1-cycle loads need >= 64 cycles of
	// port occupancy; with 4 ports they overlap more.
	mk := func(ports int) Result {
		p := DefaultParams()
		p.MemPorts = ports
		var insts []isa.Inst
		for i := 0; i < 256; i++ {
			insts = append(insts, isa.Inst{
				Op: isa.OpLoad, Dest: int32(i), Src1: isa.NoReg, Src2: isa.NoReg,
				Addr: mach.Addr(0x2000 + i*4), PC: mach.Addr(i % 16 * 4),
			})
		}
		c, _ := New(p, newPerfect(1))
		return c.Run(isa.NewSliceStream(insts))
	}
	one := mk(1)
	four := mk(4)
	if four.Cycles >= one.Cycles {
		t.Errorf("4 ports (%d cycles) not faster than 1 port (%d)", four.Cycles, one.Cycles)
	}
}

func TestStoreBlocksConflictingLoadNotOthers(t *testing.T) {
	// A load to a different word must not wait for an older slow store;
	// a load to the same word must.
	mkDep := func(sameAddr bool) Result {
		addr := mach.Addr(0x100)
		loadAddr := addr
		if !sameAddr {
			loadAddr = 0x900
		}
		insts := []isa.Inst{
			{Op: isa.OpStore, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Addr: addr, Value: 1},
			{Op: isa.OpLoad, Dest: 0, Src1: isa.NoReg, Src2: isa.NoReg, Addr: loadAddr, Value: func() mach.Word {
				if sameAddr {
					return 1
				}
				return 0
			}()},
		}
		return run(t, insts, newPerfect(40))
	}
	same := mkDep(true)
	diff := mkDep(false)
	if same.ValueMismatches != 0 || diff.ValueMismatches != 0 {
		t.Fatal("value mismatch in ordering test")
	}
	if same.Cycles <= diff.Cycles {
		t.Errorf("same-address load (%d cycles) should wait longer than disjoint (%d)", same.Cycles, diff.Cycles)
	}
}
