// Package cpu implements a cycle-stepped out-of-order processor core that
// replays instruction traces, standing in for SimpleScalar 3.0's
// sim-outorder (§4.1, Figure 9).
//
// The model covers the structures that drive the paper's experiments: a
// 4-wide fetch/issue/commit pipeline with a 16-entry instruction fetch
// queue, a register-update-unit-style reorder buffer, an 8-entry
// load/store queue with store-to-load forwarding, a bimodal branch
// predictor, an instruction cache, the functional-unit mix of Figure 9,
// and a data-cache hierarchy behind the memsys.System interface.
//
// Timing statistics exposed for the experiments: total cycles (Figures 11
// and 14) and the average ready-queue length during cycles with at least
// one outstanding data-cache miss (Figure 15).
package cpu

import (
	"fmt"

	"cppcache/internal/isa"
	"cppcache/internal/mach"
	"cppcache/internal/memsys"
)

// Params configures the core. The zero value is not useful; start from
// DefaultParams.
type Params struct {
	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // instructions issued per cycle (4, out-of-order)
	CommitWidth int // instructions committed per cycle
	IFQSize     int // instruction fetch queue entries (16)
	ROBSize     int // reorder buffer (RUU) entries
	LSQSize     int // load/store queue entries (8)

	IntALU   int // integer ALUs (4)
	IntMult  int // integer multiplier/dividers (1)
	FPALU    int // floating-point adders (4)
	FPMult   int // floating-point multiplier/dividers (1)
	MemPorts int // cache ports (2)

	BranchPredBits    int // log2 of bimod table entries
	MispredictPenalty int // front-end refill cycles after a mispredict

	ICacheLines   int // direct-mapped I-cache size in lines
	ICacheLineSz  int // I-cache line size in bytes
	ICacheHitLat  int // 1 cycle
	ICacheMissLat int // 10 cycles

	// Latencies of non-memory operations, in cycles.
	MulLat, DivLat, FALULat, FMulLat, FDivLat int

	// MissThreshold classifies a data access as an outstanding miss when
	// its latency exceeds this many cycles. 2 covers both an L1 primary
	// hit (1) and a CPP affiliated-line hit (2).
	MissThreshold int
}

// DefaultParams returns the paper's baseline core (Figure 9).
func DefaultParams() Params {
	return Params{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		IFQSize:     16,
		ROBSize:     64,
		LSQSize:     8,

		IntALU:   4,
		IntMult:  1,
		FPALU:    4,
		FPMult:   1,
		MemPorts: 2,

		BranchPredBits:    11, // 2K-entry bimod
		MispredictPenalty: 3,

		ICacheLines:   256, // 8K direct-mapped, 32B lines
		ICacheLineSz:  32,
		ICacheHitLat:  1,
		ICacheMissLat: 10,

		MulLat:  3,
		DivLat:  20,
		FALULat: 2,
		FMulLat: 4,
		FDivLat: 12,

		MissThreshold: 2,
	}
}

// Validate reports an error for unusable parameters.
func (p Params) Validate() error {
	switch {
	case p.FetchWidth < 1 || p.IssueWidth < 1 || p.CommitWidth < 1:
		return fmt.Errorf("cpu: widths must be at least 1")
	case p.IFQSize < 1 || p.ROBSize < 1 || p.LSQSize < 1:
		return fmt.Errorf("cpu: queue sizes must be at least 1")
	case p.IntALU < 1 || p.MemPorts < 1:
		return fmt.Errorf("cpu: need at least one ALU and one memory port")
	case p.BranchPredBits < 1 || p.BranchPredBits > 24:
		return fmt.Errorf("cpu: branch predictor bits out of range")
	case !mach.IsPow2(p.ICacheLines) || !mach.IsPow2(p.ICacheLineSz):
		return fmt.Errorf("cpu: I-cache geometry must be powers of two")
	}
	return nil
}

// Result summarises one simulated run.
type Result struct {
	Cycles       int64
	Instructions int64
	Loads        int64
	Stores       int64
	Branches     int64
	Mispredicts  int64

	ICacheAccesses int64
	ICacheMisses   int64

	// ValueMismatches counts loads whose hierarchy-returned value did not
	// match the trace's expected value: a functional-correctness check of
	// the cache model (always 0 for a healthy hierarchy).
	ValueMismatches int64

	// Ready-queue instrumentation (Figure 15): the summed length of the
	// ready queue over cycles with >= 1 outstanding data-cache miss, and
	// the number of such cycles.
	MissCycles        int64
	ReadyQueueInMiss  int64
	ReadyQueueSamples int64 // == MissCycles (kept for clarity)
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// AvgReadyQueueInMiss returns the average ready-queue length during cycles
// with at least one outstanding data-cache miss.
func (r Result) AvgReadyQueueInMiss() float64 {
	if r.MissCycles == 0 {
		return 0
	}
	return float64(r.ReadyQueueInMiss) / float64(r.MissCycles)
}

// robEntry is one in-flight instruction.
type robEntry struct {
	in         isa.Inst
	idx        int64 // dynamic instruction number
	issued     bool
	done       bool
	lsqBlocked bool
	doneAt     int64 // cycle the result is available
	isMiss     bool  // memory op whose latency exceeded an L1 hit
	fetchedAt  int64 // cycle the instruction left fetch (for IFQ modeling)
}

// Core is the simulated processor. Create with New; a Core is single-use:
// Run consumes the stream once.
type Core struct {
	p    Params
	d    memsys.System
	pred *bimod
	ic   *icache
}

// New builds a core over the given data-memory hierarchy.
func New(p Params, d memsys.System) (*Core, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Core{
		p:    p,
		d:    d,
		pred: newBimod(p.BranchPredBits),
		ic:   newICache(p.ICacheLines, p.ICacheLineSz),
	}, nil
}

// Run replays the stream to completion and returns timing statistics.
func (c *Core) Run(s isa.Stream) Result {
	s.Reset()
	var (
		res             Result
		cycle           int64
		memOps          []*robEntry             // scratch, reused each cycle
		rob             []*robEntry             // in program order; head = oldest
		ifq             []*robEntry             // fetched, not yet dispatched
		lastWriter      = map[int32]*robEntry{} // virtual reg -> producing entry
		fetchStallUntil int64                   // front-end blocked until this cycle (mispredict)
		fetchDone       bool
		instSeq         int64
	)

	// Drain loop: run until the stream is exhausted and the ROB is empty.
	for !fetchDone || len(rob) > 0 || len(ifq) > 0 {
		cycle++
		if cycle > 1<<40 {
			panic("cpu: simulation did not converge")
		}

		// --- Commit: retire completed instructions in order. ---
		committed := 0
		for len(rob) > 0 && committed < c.p.CommitWidth {
			head := rob[0]
			if !head.done || head.doneAt > cycle {
				break
			}
			if lastWriter[head.in.Dest] == head {
				delete(lastWriter, head.in.Dest)
			}
			rob = rob[1:]
			committed++
			res.Instructions++
		}

		// --- Issue: wake and select ready instructions, oldest first. ---
		fu := fuPool{
			ialu: c.p.IntALU, imult: c.p.IntMult,
			falu: c.p.FPALU, fmult: c.p.FPMult,
			mem: c.p.MemPorts,
		}
		issued := 0
		readyNotIssued := 0
		// Pre-scan the LSQ ordering: a memory op must wait for every
		// older memory op to the same word when either is a store
		// (conservative disambiguation with exact addresses).
		memOps = memOps[:0]
		for _, e := range rob {
			if e.in.Op.IsMem() {
				memOps = append(memOps, e)
			}
		}
		for i, e := range memOps {
			e.lsqBlocked = false
			if e.issued {
				continue
			}
			for j := 0; j < i; j++ {
				o := memOps[j]
				if mach.WordAlign(o.in.Addr) != mach.WordAlign(e.in.Addr) {
					continue
				}
				conflict := o.in.Op == isa.OpStore || e.in.Op == isa.OpStore
				if conflict && (!o.done || o.doneAt > cycle) {
					e.lsqBlocked = true
					break
				}
			}
		}

		for _, e := range rob {
			if e.issued {
				continue
			}
			if !c.ready(e, cycle, lastWriter, rob) {
				continue
			}
			// The instruction sits in the ready queue this cycle,
			// whether or not it wins an issue slot (the paper's
			// Figure 15 metric counts the queue at selection time).
			readyNotIssued++
			if e.lsqBlocked {
				continue
			}
			if issued >= c.p.IssueWidth || !fu.take(e.in.Op) {
				continue
			}
			c.execute(e, cycle, &res)
			issued++
		}

		// --- Dispatch: IFQ -> ROB/LSQ. ---
		dispatched := 0
		for len(ifq) > 0 && dispatched < c.p.IssueWidth && len(rob) < c.p.ROBSize {
			e := ifq[0]
			if e.in.Op.IsMem() && c.lsqCount(rob) >= c.p.LSQSize {
				break
			}
			ifq = ifq[1:]
			rob = append(rob, e)
			if e.in.Dest != isa.NoReg {
				lastWriter[e.in.Dest] = e
			}
			dispatched++
		}

		// --- Fetch: instructions -> IFQ, stalling on mispredicts and
		// I-cache misses. ---
		if cycle >= fetchStallUntil && !fetchDone {
			fetched := 0
			for fetched < c.p.FetchWidth && len(ifq) < c.p.IFQSize {
				in, ok := s.Next()
				if !ok {
					fetchDone = true
					break
				}
				res.ICacheAccesses++
				if !c.ic.access(in.PC) {
					res.ICacheMisses++
					fetchStallUntil = cycle + int64(c.p.ICacheMissLat-c.p.ICacheHitLat)
				}
				e := &robEntry{in: in, idx: instSeq, fetchedAt: cycle}
				instSeq++
				ifq = append(ifq, e)
				if in.Op == isa.OpBranch {
					res.Branches++
					if c.pred.predict(in.PC) != in.Taken {
						res.Mispredicts++
						// Fetch resumes after the branch resolves;
						// resolution is detected at issue time below.
						e.isMiss = false
						fetchStallUntil = 1 << 40 // blocked until resolve
					}
					c.pred.update(in.PC, in.Taken)
					if fetchStallUntil > cycle {
						break
					}
				}
				if fetchStallUntil > cycle {
					break
				}
			}
		}
		// Resolve mispredict stalls: when the youngest unresolved branch
		// completes, the front end restarts after the penalty.
		if fetchStallUntil == 1<<40 {
			resolved := true
			var resolveAt int64
			for _, e := range append(append([]*robEntry{}, rob...), ifq...) {
				if e.in.Op == isa.OpBranch && (!e.done || e.doneAt > cycle) {
					resolved = false
					break
				}
				if e.in.Op == isa.OpBranch && e.doneAt > resolveAt {
					resolveAt = e.doneAt
				}
			}
			if resolved {
				fetchStallUntil = resolveAt + int64(c.p.MispredictPenalty)
			}
		}

		// --- Instrumentation: ready-queue length during miss cycles. ---
		missOutstanding := false
		for _, e := range rob {
			if e.issued && e.isMiss && e.doneAt > cycle {
				missOutstanding = true
				break
			}
		}
		if missOutstanding {
			res.MissCycles++
			res.ReadyQueueSamples++
			res.ReadyQueueInMiss += int64(readyNotIssued)
		}
	}

	res.Cycles = cycle
	return res
}

// ready reports whether e's register operands are available at cycle.
func (c *Core) ready(e *robEntry, cycle int64, lastWriter map[int32]*robEntry, rob []*robEntry) bool {
	for _, src := range [2]int32{e.in.Src1, e.in.Src2} {
		if src == isa.NoReg {
			continue
		}
		w, ok := lastWriter[src]
		if !ok || w == e {
			continue // produced by a committed instruction
		}
		if w.idx >= e.idx {
			continue // writer is younger: e reads the committed older value
		}
		if !w.done || w.doneAt > cycle {
			return false
		}
	}
	return true
}

// execute issues e at cycle, computing its completion time.
func (c *Core) execute(e *robEntry, cycle int64, res *Result) {
	var lat int
	switch e.in.Op {
	case isa.OpLoad:
		v, l := c.d.Read(e.in.Addr)
		if v != e.in.Value {
			res.ValueMismatches++
		}
		res.Loads++
		lat = l
		e.isMiss = l > c.p.MissThreshold
	case isa.OpStore:
		l := c.d.Write(e.in.Addr, e.in.Value)
		res.Stores++
		lat = l
		e.isMiss = l > c.p.MissThreshold
	case isa.OpALU, isa.OpNop, isa.OpBranch:
		lat = 1
	case isa.OpMul:
		lat = c.p.MulLat
	case isa.OpDiv:
		lat = c.p.DivLat
	case isa.OpFALU:
		lat = c.p.FALULat
	case isa.OpFMul:
		lat = c.p.FMulLat
	case isa.OpFDiv:
		lat = c.p.FDivLat
	default:
		lat = 1
	}
	e.issued = true
	e.done = true
	e.doneAt = cycle + int64(lat)
}

// lsqCount returns the number of memory operations resident in the ROB
// that have not yet completed (the LSQ occupancy).
func (c *Core) lsqCount(rob []*robEntry) int {
	n := 0
	for _, e := range rob {
		if e.in.Op.IsMem() && !e.done {
			n++
		}
	}
	return n
}

// fuPool tracks per-cycle functional-unit availability.
type fuPool struct {
	ialu, imult, falu, fmult, mem int
}

func (f *fuPool) take(op isa.Op) bool {
	var slot *int
	switch op {
	case isa.OpALU, isa.OpBranch, isa.OpNop:
		slot = &f.ialu
	case isa.OpMul, isa.OpDiv:
		slot = &f.imult
	case isa.OpFALU:
		slot = &f.falu
	case isa.OpFMul, isa.OpFDiv:
		slot = &f.fmult
	case isa.OpLoad, isa.OpStore:
		slot = &f.mem
	default:
		slot = &f.ialu
	}
	if *slot == 0 {
		return false
	}
	*slot--
	return true
}

// bimod is SimpleScalar's bimodal predictor: a table of 2-bit saturating
// counters indexed by PC.
type bimod struct {
	table []uint8
	mask  mach.Addr
}

func newBimod(bits int) *bimod {
	n := 1 << bits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &bimod{table: t, mask: mach.Addr(n - 1)}
}

func (b *bimod) index(pc mach.Addr) int { return int((pc >> 2) & b.mask) }

func (b *bimod) predict(pc mach.Addr) bool { return b.table[b.index(pc)] >= 2 }

func (b *bimod) update(pc mach.Addr, taken bool) {
	i := b.index(pc)
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}

// icache is a direct-mapped instruction cache over the PC stream.
type icache struct {
	tags  []mach.Addr
	valid []bool
	geom  mach.LineGeom
	mask  mach.Addr
}

func newICache(lines, lineBytes int) *icache {
	return &icache{
		tags:  make([]mach.Addr, lines),
		valid: make([]bool, lines),
		geom:  mach.LineGeom{LineBytes: lineBytes},
		mask:  mach.Addr(lines - 1),
	}
}

// access returns true on hit, filling on miss.
func (ic *icache) access(pc mach.Addr) bool {
	n := ic.geom.LineNumber(pc)
	i := int(n & ic.mask)
	if ic.valid[i] && ic.tags[i] == n {
		return true
	}
	ic.valid[i] = true
	ic.tags[i] = n
	return false
}
