// Package cpu implements a cycle-stepped out-of-order processor core that
// replays instruction traces, standing in for SimpleScalar 3.0's
// sim-outorder (§4.1, Figure 9).
//
// The model covers the structures that drive the paper's experiments: a
// 4-wide fetch/issue/commit pipeline with a 16-entry instruction fetch
// queue, a register-update-unit-style reorder buffer, an 8-entry
// load/store queue with store-to-load forwarding, a bimodal branch
// predictor, an instruction cache, the functional-unit mix of Figure 9,
// and a data-cache hierarchy behind the memsys.System interface.
//
// Timing statistics exposed for the experiments: total cycles (Figures 11
// and 14) and the average ready-queue length during cycles with at least
// one outstanding data-cache miss (Figure 15).
package cpu

import (
	"context"
	"fmt"

	"cppcache/internal/core"
	"cppcache/internal/hier"
	"cppcache/internal/isa"
	"cppcache/internal/mach"
	"cppcache/internal/memsys"
	"cppcache/internal/obs"
)

// Params configures the core. The zero value is not useful; start from
// DefaultParams.
type Params struct {
	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // instructions issued per cycle (4, out-of-order)
	CommitWidth int // instructions committed per cycle
	IFQSize     int // instruction fetch queue entries (16)
	ROBSize     int // reorder buffer (RUU) entries
	LSQSize     int // load/store queue entries (8)

	IntALU   int // integer ALUs (4)
	IntMult  int // integer multiplier/dividers (1)
	FPALU    int // floating-point adders (4)
	FPMult   int // floating-point multiplier/dividers (1)
	MemPorts int // cache ports (2)

	BranchPredBits    int // log2 of bimod table entries
	MispredictPenalty int // front-end refill cycles after a mispredict

	ICacheLines   int // direct-mapped I-cache size in lines
	ICacheLineSz  int // I-cache line size in bytes
	ICacheHitLat  int // 1 cycle
	ICacheMissLat int // 10 cycles

	// Latencies of non-memory operations, in cycles.
	MulLat, DivLat, FALULat, FMulLat, FDivLat int

	// MissThreshold classifies a data access as an outstanding miss when
	// its latency exceeds this many cycles. 2 covers both an L1 primary
	// hit (1) and a CPP affiliated-line hit (2).
	MissThreshold int
}

// DefaultParams returns the paper's baseline core (Figure 9).
func DefaultParams() Params {
	return Params{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		IFQSize:     16,
		ROBSize:     64,
		LSQSize:     8,

		IntALU:   4,
		IntMult:  1,
		FPALU:    4,
		FPMult:   1,
		MemPorts: 2,

		BranchPredBits:    11, // 2K-entry bimod
		MispredictPenalty: 3,

		ICacheLines:   256, // 8K direct-mapped, 32B lines
		ICacheLineSz:  32,
		ICacheHitLat:  1,
		ICacheMissLat: 10,

		MulLat:  3,
		DivLat:  20,
		FALULat: 2,
		FMulLat: 4,
		FDivLat: 12,

		MissThreshold: 2,
	}
}

// Validate reports an error for unusable parameters.
func (p Params) Validate() error {
	switch {
	case p.FetchWidth < 1 || p.IssueWidth < 1 || p.CommitWidth < 1:
		return fmt.Errorf("cpu: widths must be at least 1")
	case p.IFQSize < 1 || p.ROBSize < 1 || p.LSQSize < 1:
		return fmt.Errorf("cpu: queue sizes must be at least 1")
	case p.IntALU < 1 || p.MemPorts < 1:
		return fmt.Errorf("cpu: need at least one ALU and one memory port")
	case p.BranchPredBits < 1 || p.BranchPredBits > 24:
		return fmt.Errorf("cpu: branch predictor bits out of range")
	case !mach.IsPow2(p.ICacheLines) || !mach.IsPow2(p.ICacheLineSz):
		return fmt.Errorf("cpu: I-cache geometry must be powers of two")
	}
	return nil
}

// Result summarises one simulated run.
type Result struct {
	Cycles       int64
	Instructions int64
	Loads        int64
	Stores       int64
	Branches     int64
	Mispredicts  int64

	ICacheAccesses int64
	ICacheMisses   int64

	// ValueMismatches counts loads whose hierarchy-returned value did not
	// match the trace's expected value: a functional-correctness check of
	// the cache model (always 0 for a healthy hierarchy).
	ValueMismatches int64

	// Ready-queue instrumentation (Figure 15): the summed length of the
	// ready queue over cycles with >= 1 outstanding data-cache miss, and
	// the number of such cycles.
	MissCycles        int64
	ReadyQueueInMiss  int64
	ReadyQueueSamples int64 // == MissCycles (kept for clarity)
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// AvgReadyQueueInMiss returns the average ready-queue length during cycles
// with at least one outstanding data-cache miss.
func (r Result) AvgReadyQueueInMiss() float64 {
	if r.MissCycles == 0 {
		return 0
	}
	return float64(r.ReadyQueueInMiss) / float64(r.MissCycles)
}

// robEntry is one in-flight instruction.
type robEntry struct {
	in         isa.Inst
	idx        int64 // dynamic instruction number
	issued     bool
	done       bool
	lsqBlocked bool
	doneAt     int64 // cycle the result is available
	isMiss     bool  // memory op whose latency exceeded an L1 hit
	fetchedAt  int64 // cycle the instruction left fetch (for IFQ modeling)
}

// Core is the simulated processor. Create with New; a Core is single-use:
// Run consumes the stream once.
type Core struct {
	p    Params
	d    memsys.System
	pred *bimod
	ic   *icache

	// Devirtualized data-side fast paths: New recognises the two concrete
	// hierarchies and calls them directly from execute, so the per-access
	// hot path is a static call the compiler can see through instead of an
	// interface dispatch. Unknown implementations (tests, future systems)
	// fall back to the memsys.System interface.
	cppD *core.Hierarchy
	stdD *hier.Standard

	// obs, when non-nil, receives per-cycle metrics ticks and per-access
	// latency observations. The nil case costs one branch per hook.
	obs *obs.Recorder

	// fault, when non-nil, is invoked at the core's fault-injection point
	// (once per issued memory operation) with a site label. The chaos
	// harness uses it to trigger panics, stalls and cancellations at
	// deterministic execution points; nil costs one branch per memory op.
	fault func(site string)

	// Preallocated pipeline state, reused across every cycle of Run: ROB
	// and IFQ rings of entry values, the memory-op ordering scratch, and
	// the register scoreboard.
	rob      []robEntry
	ifq      []robEntry
	memOps   []*robEntry
	writerOf []int64 // virtual reg -> dynamic idx of last dispatched writer, -1 if none
}

// New builds a core over the given data-memory hierarchy.
func New(p Params, d memsys.System) (*Core, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		p:    p,
		d:    d,
		pred: newBimod(p.BranchPredBits),
		ic:   newICache(p.ICacheLines, p.ICacheLineSz),

		rob:    make([]robEntry, p.ROBSize),
		ifq:    make([]robEntry, p.IFQSize),
		memOps: make([]*robEntry, 0, p.ROBSize),
	}
	switch h := d.(type) {
	case *core.Hierarchy:
		c.cppD = h
	case *hier.Standard:
		c.stdD = h
	}
	return c, nil
}

// SetRecorder attaches the observability recorder (nil detaches). Must be
// called before Run.
func (c *Core) SetRecorder(r *obs.Recorder) { c.obs = r }

// SetFaultHook installs fn at the core's fault-injection point (nil
// removes it). Must be called before Run.
func (c *Core) SetFaultHook(fn func(site string)) { c.fault = fn }

// cancelCheckEvery is the cadence, in scheduler iterations, of the
// cooperative cancellation poll in RunContext. Each iteration advances
// simulated time by at least one cycle, so a canceled context is observed
// within this many cycles of work; the poll itself is a single non-blocking
// channel receive, cheap enough to sit inside the pinned throughput
// baseline's noise band (see BENCH_simperf.json and EXPERIMENTS.md).
const cancelCheckEvery = 4096

// stallSentinel marks the front end as blocked until an unresolved
// mispredicted branch completes.
const stallSentinel = int64(1) << 40

// Run replays the stream to completion and returns timing statistics. It
// is RunContext with a background (never-canceled) context.
func (c *Core) Run(s isa.Stream) Result {
	res, _ := c.RunContext(context.Background(), s)
	return res
}

// RunContext replays the stream to completion and returns timing
// statistics.
//
// The pipeline state lives in preallocated rings (c.rob, c.ifq) and
// scratch slices, so the steady-state loop performs no heap allocation.
// Cycles in which no stage can make progress — every in-flight result is
// scheduled for a later cycle and the front end is stalled — are
// fast-forwarded to the next completion time instead of being stepped one
// by one; the skipped cycles are behaviourally identical no-ops, and their
// ready-queue/miss instrumentation is accumulated in closed form so the
// statistics match single-stepping exactly.
//
// Cancellation is cooperative: every cancelCheckEvery scheduler iterations
// the core polls ctx.Done() and, when the context is canceled or its
// deadline has expired, abandons the run and returns the partial statistics
// together with ctx's error. A context that can never be canceled (Done()
// == nil, e.g. context.Background()) skips the polling entirely.
func (c *Core) RunContext(ctx context.Context, s isa.Stream) (Result, error) {
	s.Reset()
	done := ctx.Done()
	var (
		iters int64
		res             Result
		cycle           int64
		fetchStallUntil int64 // front-end blocked until this cycle (mispredict)
		fetchDone       bool
		instSeq         int64

		headIdx int64 // dynamic idx of the ROB head == instructions committed
		robHead int   // ring position of the oldest ROB entry
		robLen  int
		ifqHead int // ring position of the oldest IFQ entry
		ifqLen  int
		lsqOcc  int // memory ops in the ROB not yet completed
	)
	rob, ifq := c.rob, c.ifq
	robSize, ifqSize := c.p.ROBSize, c.p.IFQSize
	for i := range c.writerOf {
		c.writerOf[i] = -1
	}

	// Drain loop: run until the stream is exhausted and the ROB is empty.
	for !fetchDone || robLen > 0 || ifqLen > 0 {
		cycle++
		if cycle > stallSentinel {
			panic("cpu: simulation did not converge")
		}
		if iters++; done != nil && iters%cancelCheckEvery == 0 {
			select {
			case <-done:
				res.Cycles = cycle
				return res, ctx.Err()
			default:
			}
		}

		// --- Commit: retire completed instructions in order. ---
		committed := 0
		for robLen > 0 && committed < c.p.CommitWidth {
			head := &rob[robHead]
			if !head.done || head.doneAt > cycle {
				break
			}
			robHead++
			if robHead == robSize {
				robHead = 0
			}
			robLen--
			headIdx++
			committed++
			res.Instructions++
		}

		// --- Issue: wake and select ready instructions, oldest first. ---
		fu := fuPool{
			ialu: c.p.IntALU, imult: c.p.IntMult,
			falu: c.p.FPALU, fmult: c.p.FPMult,
			mem: c.p.MemPorts,
		}
		issued := 0
		readyNotIssued := 0
		// Pre-scan the LSQ ordering: a memory op must wait for every
		// older memory op to the same word when either is a store
		// (conservative disambiguation with exact addresses).
		memOps := c.memOps[:0]
		for i, pos := 0, robHead; i < robLen; i++ {
			e := &rob[pos]
			if pos++; pos == robSize {
				pos = 0
			}
			if e.in.Op.IsMem() {
				memOps = append(memOps, e)
			}
		}
		for i, e := range memOps {
			e.lsqBlocked = false
			if e.issued {
				continue
			}
			for j := 0; j < i; j++ {
				o := memOps[j]
				if mach.WordAlign(o.in.Addr) != mach.WordAlign(e.in.Addr) {
					continue
				}
				conflict := o.in.Op == isa.OpStore || e.in.Op == isa.OpStore
				if conflict && (!o.done || o.doneAt > cycle) {
					e.lsqBlocked = true
					break
				}
			}
		}

		for i, pos := 0, robHead; i < robLen; i++ {
			e := &rob[pos]
			if pos++; pos == robSize {
				pos = 0
			}
			if e.issued {
				continue
			}
			if !c.ready(e, cycle, headIdx, robHead, robLen) {
				continue
			}
			// The instruction sits in the ready queue this cycle,
			// whether or not it wins an issue slot (the paper's
			// Figure 15 metric counts the queue at selection time).
			readyNotIssued++
			if e.lsqBlocked {
				continue
			}
			if issued >= c.p.IssueWidth || !fu.take(e.in.Op) {
				continue
			}
			c.execute(e, cycle, &res)
			if e.in.Op.IsMem() {
				lsqOcc--
			}
			issued++
		}

		// --- Dispatch: IFQ -> ROB/LSQ. ---
		dispatched := 0
		for ifqLen > 0 && dispatched < c.p.IssueWidth && robLen < robSize {
			e := &ifq[ifqHead]
			if e.in.Op.IsMem() && lsqOcc >= c.p.LSQSize {
				break
			}
			ifqHead++
			if ifqHead == ifqSize {
				ifqHead = 0
			}
			ifqLen--
			tail := robHead + robLen
			if tail >= robSize {
				tail -= robSize
			}
			rob[tail] = *e
			robLen++
			if e.in.Dest != isa.NoReg {
				c.setWriter(e.in.Dest, e.idx)
			}
			if e.in.Op.IsMem() {
				lsqOcc++
			}
			dispatched++
		}

		// --- Fetch: instructions -> IFQ, stalling on mispredicts and
		// I-cache misses. ---
		fetched := 0
		if cycle >= fetchStallUntil && !fetchDone {
			// The front end refills the whole IFQ in one cycle (the
			// historical FetchWidth guard never bound this loop, and the
			// pinned timing depends on that); fetched only feeds the
			// idle-cycle progress check below.
			for ifqLen < ifqSize {
				in, ok := s.Next()
				if !ok {
					fetchDone = true
					break
				}
				res.ICacheAccesses++
				if !c.ic.access(in.PC) {
					res.ICacheMisses++
					fetchStallUntil = cycle + int64(c.p.ICacheMissLat-c.p.ICacheHitLat)
				}
				tail := ifqHead + ifqLen
				if tail >= ifqSize {
					tail -= ifqSize
				}
				ifq[tail] = robEntry{in: in, idx: instSeq, fetchedAt: cycle}
				instSeq++
				ifqLen++
				fetched++
				if in.Op == isa.OpBranch {
					res.Branches++
					if c.pred.predict(in.PC) != in.Taken {
						res.Mispredicts++
						// Fetch resumes after the branch resolves;
						// resolution is detected at issue time below.
						fetchStallUntil = stallSentinel // blocked until resolve
					}
					c.pred.update(in.PC, in.Taken)
					if fetchStallUntil > cycle {
						break
					}
				}
				if fetchStallUntil > cycle {
					break
				}
			}
		}
		// Resolve mispredict stalls: when the youngest unresolved branch
		// completes, the front end restarts after the penalty. Branches
		// still sitting in the IFQ are by construction unissued, so any
		// branch there keeps the stall in place.
		if fetchStallUntil == stallSentinel {
			resolved := true
			var resolveAt int64
			for i, pos := 0, robHead; i < robLen; i++ {
				e := &rob[pos]
				if pos++; pos == robSize {
					pos = 0
				}
				if e.in.Op != isa.OpBranch {
					continue
				}
				if !e.done || e.doneAt > cycle {
					resolved = false
					break
				}
				if e.doneAt > resolveAt {
					resolveAt = e.doneAt
				}
			}
			if resolved {
				for i, pos := 0, ifqHead; i < ifqLen; i++ {
					e := &ifq[pos]
					if pos++; pos == ifqSize {
						pos = 0
					}
					if e.in.Op == isa.OpBranch {
						resolved = false
						break
					}
				}
			}
			if resolved {
				fetchStallUntil = resolveAt + int64(c.p.MispredictPenalty)
			}
		}

		// --- Instrumentation: ready-queue length during miss cycles. ---
		missOutstanding := false
		for i, pos := 0, robHead; i < robLen; i++ {
			e := &rob[pos]
			if pos++; pos == robSize {
				pos = 0
			}
			if e.issued && e.isMiss && e.doneAt > cycle {
				missOutstanding = true
				break
			}
		}
		if missOutstanding {
			res.MissCycles++
			res.ReadyQueueSamples++
			res.ReadyQueueInMiss += int64(readyNotIssued)
		}

		// cycleWeight is how many cycles this iteration's machine state
		// stands for: 1, plus any cycles the fast-forward below skips.
		cycleWeight := int64(1)

		// --- Idle-cycle fast-forward. ---
		// If nothing moved this cycle, every time gate in the model is a
		// "doneAt > cycle" or "cycle >= fetchStallUntil" comparison, and
		// none of them can flip before the earliest pending completion.
		// All intervening cycles are exact replicas of this one, so jump
		// to just before that event and account their instrumentation in
		// closed form.
		if committed == 0 && issued == 0 && dispatched == 0 && fetched == 0 &&
			(!fetchDone || robLen > 0 || ifqLen > 0) {
			next := int64(1) << 62
			for i, pos := 0, robHead; i < robLen; i++ {
				e := &rob[pos]
				if pos++; pos == robSize {
					pos = 0
				}
				if e.done && e.doneAt > cycle && e.doneAt < next {
					next = e.doneAt
				}
			}
			if !fetchDone && fetchStallUntil > cycle && fetchStallUntil != stallSentinel && fetchStallUntil < next {
				next = fetchStallUntil
			}
			if next == int64(1)<<62 {
				// No pending completion and a permanently stalled front
				// end: the state can never change again.
				panic("cpu: simulation did not converge")
			}
			if skipped := next - cycle - 1; skipped > 0 {
				if missOutstanding {
					res.MissCycles += skipped
					res.ReadyQueueSamples += skipped
					res.ReadyQueueInMiss += int64(readyNotIssued) * skipped
				}
				cycle += skipped
				cycleWeight += skipped
			}
		}

		if c.obs != nil {
			c.obs.Tick(cycle, cycleWeight, robLen, res.Instructions)
		}
	}

	res.Cycles = cycle
	return res, nil
}

// setWriter records idx as the last dispatched writer of register r,
// growing the scoreboard on demand (register ids are small and dense).
func (c *Core) setWriter(r int32, idx int64) {
	if int(r) >= len(c.writerOf) {
		n := len(c.writerOf) * 2
		if n == 0 {
			n = 256
		}
		for n <= int(r) {
			n *= 2
		}
		grown := make([]int64, n)
		copy(grown, c.writerOf)
		for i := len(c.writerOf); i < n; i++ {
			grown[i] = -1
		}
		c.writerOf = grown
	}
	c.writerOf[r] = idx
}

// ready reports whether e's register operands are available at cycle.
// The scoreboard stores dynamic instruction indices: a writer older than
// the ROB head has committed (its value is architectural), and a writer at
// or past e's own index is younger, so e reads the older committed value.
func (c *Core) ready(e *robEntry, cycle, headIdx int64, robHead, robLen int) bool {
	for _, src := range [2]int32{e.in.Src1, e.in.Src2} {
		if src < 0 || int(src) >= len(c.writerOf) {
			continue
		}
		w := c.writerOf[src]
		if w < headIdx || w >= e.idx {
			continue // committed (or never written), or younger than e
		}
		pos := robHead + int(w-headIdx)
		if pos >= len(c.rob) {
			pos -= len(c.rob)
		}
		we := &c.rob[pos]
		if !we.done || we.doneAt > cycle {
			return false
		}
	}
	return true
}

// execute issues e at cycle, computing its completion time.
func (c *Core) execute(e *robEntry, cycle int64, res *Result) {
	var lat int
	if e.in.Op.IsMem() {
		if c.obs != nil {
			// The attribution profiler charges the hierarchy events of
			// this access to the instruction's PC (attr.go).
			c.obs.SetAccessPC(e.in.PC)
		}
		if c.fault != nil {
			c.fault("cpu.mem-op")
		}
	}
	switch e.in.Op {
	case isa.OpLoad:
		v, l := c.read(e.in.Addr)
		if v != e.in.Value {
			res.ValueMismatches++
		}
		res.Loads++
		lat = l
		e.isMiss = l > c.p.MissThreshold
	case isa.OpStore:
		l := c.write(e.in.Addr, e.in.Value)
		res.Stores++
		lat = l
		e.isMiss = l > c.p.MissThreshold
	case isa.OpALU, isa.OpNop, isa.OpBranch:
		lat = 1
	case isa.OpMul:
		lat = c.p.MulLat
	case isa.OpDiv:
		lat = c.p.DivLat
	case isa.OpFALU:
		lat = c.p.FALULat
	case isa.OpFMul:
		lat = c.p.FMulLat
	case isa.OpFDiv:
		lat = c.p.FDivLat
	default:
		lat = 1
	}
	e.issued = true
	e.done = true
	e.doneAt = cycle + int64(lat)
	if c.obs != nil && e.in.Op.IsMem() {
		if e.in.Op == isa.OpLoad {
			c.obs.ObserveLoadToUse(e.doneAt - e.fetchedAt)
		}
		if e.isMiss {
			c.obs.ObserveMissService(int64(lat))
		}
	}
}

// read dispatches a data-cache read to the concrete hierarchy when it is
// known, avoiding the interface call on the per-access hot path.
func (c *Core) read(a mach.Addr) (mach.Word, int) {
	if c.cppD != nil {
		return c.cppD.Read(a)
	}
	if c.stdD != nil {
		return c.stdD.Read(a)
	}
	return c.d.Read(a)
}

// write is the store-side counterpart of read.
func (c *Core) write(a mach.Addr, v mach.Word) int {
	if c.cppD != nil {
		return c.cppD.Write(a, v)
	}
	if c.stdD != nil {
		return c.stdD.Write(a, v)
	}
	return c.d.Write(a, v)
}

// fuPool tracks per-cycle functional-unit availability.
type fuPool struct {
	ialu, imult, falu, fmult, mem int
}

func (f *fuPool) take(op isa.Op) bool {
	var slot *int
	switch op {
	case isa.OpALU, isa.OpBranch, isa.OpNop:
		slot = &f.ialu
	case isa.OpMul, isa.OpDiv:
		slot = &f.imult
	case isa.OpFALU:
		slot = &f.falu
	case isa.OpFMul, isa.OpFDiv:
		slot = &f.fmult
	case isa.OpLoad, isa.OpStore:
		slot = &f.mem
	default:
		slot = &f.ialu
	}
	if *slot == 0 {
		return false
	}
	*slot--
	return true
}

// bimod is SimpleScalar's bimodal predictor: a table of 2-bit saturating
// counters indexed by PC.
type bimod struct {
	table []uint8
	mask  mach.Addr
}

func newBimod(bits int) *bimod {
	n := 1 << bits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &bimod{table: t, mask: mach.Addr(n - 1)}
}

func (b *bimod) index(pc mach.Addr) int { return int((pc >> 2) & b.mask) }

func (b *bimod) predict(pc mach.Addr) bool { return b.table[b.index(pc)] >= 2 }

func (b *bimod) update(pc mach.Addr, taken bool) {
	i := b.index(pc)
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}

// icache is a direct-mapped instruction cache over the PC stream.
type icache struct {
	tags  []mach.Addr
	valid []bool
	geom  mach.LineGeom
	mask  mach.Addr
}

func newICache(lines, lineBytes int) *icache {
	return &icache{
		tags:  make([]mach.Addr, lines),
		valid: make([]bool, lines),
		geom:  mach.LineGeom{LineBytes: lineBytes},
		mask:  mach.Addr(lines - 1),
	}
}

// access returns true on hit, filling on miss.
func (ic *icache) access(pc mach.Addr) bool {
	n := ic.geom.LineNumber(pc)
	i := int(n & ic.mask)
	if ic.valid[i] && ic.tags[i] == n {
		return true
	}
	ic.valid[i] = true
	ic.tags[i] = n
	return false
}
