// Package cpu implements a cycle-stepped out-of-order processor core that
// replays instruction traces, standing in for SimpleScalar 3.0's
// sim-outorder (§4.1, Figure 9).
//
// The model covers the structures that drive the paper's experiments: a
// 4-wide fetch/issue/commit pipeline with a 16-entry instruction fetch
// queue, a register-update-unit-style reorder buffer, an 8-entry
// load/store queue with store-to-load forwarding, a bimodal branch
// predictor, an instruction cache, the functional-unit mix of Figure 9,
// and a data-cache hierarchy behind the memsys.System interface.
//
// Timing statistics exposed for the experiments: total cycles (Figures 11
// and 14) and the average ready-queue length during cycles with at least
// one outstanding data-cache miss (Figure 15).
package cpu

import (
	"context"
	"fmt"

	"cppcache/internal/core"
	"cppcache/internal/hier"
	"cppcache/internal/isa"
	"cppcache/internal/mach"
	"cppcache/internal/memsys"
	"cppcache/internal/obs"
	"cppcache/internal/trace"
)

// Params configures the core. The zero value is not useful; start from
// DefaultParams.
type Params struct {
	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // instructions issued per cycle (4, out-of-order)
	CommitWidth int // instructions committed per cycle
	IFQSize     int // instruction fetch queue entries (16)
	ROBSize     int // reorder buffer (RUU) entries
	LSQSize     int // load/store queue entries (8)

	IntALU   int // integer ALUs (4)
	IntMult  int // integer multiplier/dividers (1)
	FPALU    int // floating-point adders (4)
	FPMult   int // floating-point multiplier/dividers (1)
	MemPorts int // cache ports (2)

	BranchPredBits    int // log2 of bimod table entries
	MispredictPenalty int // front-end refill cycles after a mispredict

	ICacheLines   int // direct-mapped I-cache size in lines
	ICacheLineSz  int // I-cache line size in bytes
	ICacheHitLat  int // 1 cycle
	ICacheMissLat int // 10 cycles

	// Latencies of non-memory operations, in cycles.
	MulLat, DivLat, FALULat, FMulLat, FDivLat int

	// MissThreshold classifies a data access as an outstanding miss when
	// its latency exceeds this many cycles. 2 covers both an L1 primary
	// hit (1) and a CPP affiliated-line hit (2).
	MissThreshold int
}

// DefaultParams returns the paper's baseline core (Figure 9).
func DefaultParams() Params {
	return Params{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		IFQSize:     16,
		ROBSize:     64,
		LSQSize:     8,

		IntALU:   4,
		IntMult:  1,
		FPALU:    4,
		FPMult:   1,
		MemPorts: 2,

		BranchPredBits:    11, // 2K-entry bimod
		MispredictPenalty: 3,

		ICacheLines:   256, // 8K direct-mapped, 32B lines
		ICacheLineSz:  32,
		ICacheHitLat:  1,
		ICacheMissLat: 10,

		MulLat:  3,
		DivLat:  20,
		FALULat: 2,
		FMulLat: 4,
		FDivLat: 12,

		MissThreshold: 2,
	}
}

// Validate reports an error for unusable parameters.
func (p Params) Validate() error {
	switch {
	case p.FetchWidth < 1 || p.IssueWidth < 1 || p.CommitWidth < 1:
		return fmt.Errorf("cpu: widths must be at least 1")
	case p.IFQSize < 1 || p.ROBSize < 1 || p.LSQSize < 1:
		return fmt.Errorf("cpu: queue sizes must be at least 1")
	case p.IntALU < 1 || p.MemPorts < 1:
		return fmt.Errorf("cpu: need at least one ALU and one memory port")
	case p.BranchPredBits < 1 || p.BranchPredBits > 24:
		return fmt.Errorf("cpu: branch predictor bits out of range")
	case !mach.IsPow2(p.ICacheLines) || !mach.IsPow2(p.ICacheLineSz):
		return fmt.Errorf("cpu: I-cache geometry must be powers of two")
	}
	return nil
}

// Result summarises one simulated run.
type Result struct {
	Cycles       int64
	Instructions int64
	Loads        int64
	Stores       int64
	Branches     int64
	Mispredicts  int64

	ICacheAccesses int64
	ICacheMisses   int64

	// ValueMismatches counts loads whose hierarchy-returned value did not
	// match the trace's expected value: a functional-correctness check of
	// the cache model (always 0 for a healthy hierarchy).
	ValueMismatches int64

	// Ready-queue instrumentation (Figure 15): the summed length of the
	// ready queue over cycles with >= 1 outstanding data-cache miss, and
	// the number of such cycles.
	MissCycles        int64
	ReadyQueueInMiss  int64
	ReadyQueueSamples int64 // == MissCycles (kept for clarity)
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// AvgReadyQueueInMiss returns the average ready-queue length during cycles
// with at least one outstanding data-cache miss.
func (r Result) AvgReadyQueueInMiss() float64 {
	if r.MissCycles == 0 {
		return 0
	}
	return float64(r.ReadyQueueInMiss) / float64(r.MissCycles)
}

// robEntry is one in-flight instruction.
type robEntry struct {
	in        isa.Inst
	idx       int64 // dynamic instruction number
	issued    bool
	done      bool
	doneAt    int64 // cycle the result is available
	isMiss    bool  // memory op whose latency exceeded an L1 hit
	fetchedAt int64 // cycle the instruction left fetch (for IFQ modeling)
}

// Core is the simulated processor. Create with New; a Core is single-use:
// Run consumes the stream once.
type Core struct {
	p    Params
	d    memsys.System
	pred *bimod
	ic   *icache

	// Devirtualized data-side fast paths: New recognises the two concrete
	// hierarchies and calls them directly from execute, so the per-access
	// hot path is a static call the compiler can see through instead of an
	// interface dispatch. Unknown implementations (tests, future systems)
	// fall back to the memsys.System interface.
	cppD *core.Hierarchy
	stdD *hier.Standard

	// obs, when non-nil, receives per-cycle metrics ticks and per-access
	// latency observations. The nil case costs one branch per hook.
	obs *obs.Recorder

	// fault, when non-nil, is invoked at the core's fault-injection point
	// (once per issued memory operation) with a site label. The chaos
	// harness uses it to trigger panics, stalls and cancellations at
	// deterministic execution points; nil costs one branch per memory op.
	fault func(site string)

	// Preallocated pipeline state, reused across every cycle of Run: ROB
	// and IFQ rings of entry values, the scheduling index structures, and
	// the register scoreboard.
	rob      []robEntry
	ifq      []robEntry
	unissued []int32     // ROB positions of dispatched-but-unissued entries, oldest first
	lsq      []flightRec // dispatched-but-unissued memory ops, program order
	memInfl  []flightRec // issued memory ops still completing, lazily compacted
	aluInfl  []flightRec // issued non-memory ops still completing (latency > 1)
	writerOf []int64     // virtual reg -> dynamic idx of last dispatched writer, -1 if none

	// regReadyAt[r] is the cycle the latest dispatched writer of register
	// r completes: readyUnknown while that writer has not issued, its
	// doneAt afterwards. Together with writerOf it answers the readiness
	// question without touching the ROB entry itself.
	regReadyAt []int64

	// lastMissDoneAt is the largest completion cycle of any issued miss in
	// the current run. An entry with doneAt > cycle cannot have committed
	// (commit requires doneAt <= cycle), so "some in-flight miss is
	// outstanding" is exactly lastMissDoneAt > cycle — the per-cycle ROB
	// scan the instrumentation used to do, in one comparison.
	lastMissDoneAt int64
}

// flightRec is a weak reference to a ROB entry: pos names the ring slot
// and idx the dynamic instruction expected there. Dynamic indices are
// never reused, so a record whose idx no longer matches the slot simply
// refers to a committed instruction and is dropped on the next
// compaction; no eager removal is needed anywhere. Memory-op records
// carry the word-aligned address and store flag so the disambiguation
// conflict scans never touch the ROB entry itself.
type flightRec struct {
	idx int64
	wa  mach.Addr
	pos int32
	st  bool
}

// readyUnknown marks a register whose latest writer has not issued yet;
// it compares greater than any reachable cycle.
const readyUnknown = int64(1) << 62

// New builds a core over the given data-memory hierarchy.
func New(p Params, d memsys.System) (*Core, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		p:    p,
		d:    d,
		pred: newBimod(p.BranchPredBits),
		ic:   newICache(p.ICacheLines, p.ICacheLineSz),

		rob:      make([]robEntry, p.ROBSize),
		ifq:      make([]robEntry, p.IFQSize),
		unissued: make([]int32, 0, p.ROBSize),
		lsq:     make([]flightRec, 0, 2*p.ROBSize),
		memInfl: make([]flightRec, 0, 2*p.ROBSize),
		aluInfl: make([]flightRec, 0, 2*p.ROBSize),
	}
	switch h := d.(type) {
	case *core.Hierarchy:
		c.cppD = h
	case *hier.Standard:
		c.stdD = h
	}
	return c, nil
}

// SetRecorder attaches the observability recorder (nil detaches). Must be
// called before Run.
func (c *Core) SetRecorder(r *obs.Recorder) { c.obs = r }

// SetFaultHook installs fn at the core's fault-injection point (nil
// removes it). Must be called before Run.
func (c *Core) SetFaultHook(fn func(site string)) { c.fault = fn }

// cancelCheckEvery is the cadence, in scheduler iterations, of the
// cooperative cancellation poll in RunContext. Each iteration advances
// simulated time by at least one cycle, so a canceled context is observed
// within this many cycles of work; the poll itself is a single non-blocking
// channel receive, cheap enough to sit inside the pinned throughput
// baseline's noise band (see BENCH_simperf.json and EXPERIMENTS.md).
const cancelCheckEvery = 4096

// stallSentinel marks the front end as blocked until an unresolved
// mispredicted branch completes.
const stallSentinel = int64(1) << 40

// Run replays the stream to completion and returns timing statistics. It
// is RunContext with a background (never-canceled) context.
func (c *Core) Run(s isa.Stream) Result {
	res, _ := c.RunContext(context.Background(), s)
	return res
}

// RunContext replays the stream to completion and returns timing
// statistics.
//
// The pipeline state lives in preallocated rings (c.rob, c.ifq) and
// scratch slices, so the steady-state loop performs no heap allocation.
// Cycles in which no stage can make progress — every in-flight result is
// scheduled for a later cycle and the front end is stalled — are
// fast-forwarded to the next completion time instead of being stepped one
// by one; the skipped cycles are behaviourally identical no-ops, and their
// ready-queue/miss instrumentation is accumulated in closed form so the
// statistics match single-stepping exactly.
//
// Cancellation is cooperative: every cancelCheckEvery scheduler iterations
// the core polls ctx.Done() and, when the context is canceled or its
// deadline has expired, abandons the run and returns the partial statistics
// together with ctx's error. A context that can never be canceled (Done()
// == nil, e.g. context.Background()) skips the polling entirely.
func (c *Core) RunContext(ctx context.Context, s isa.Stream) (Result, error) {
	s.Reset()
	done := ctx.Done()
	var (
		iters int64
		res             Result
		cycle           int64
		fetchStallUntil int64 // front-end blocked until this cycle (mispredict)
		fetchDone       bool
		instSeq         int64

		headIdx int64 // dynamic idx of the ROB head == instructions committed
		robHead int   // ring position of the oldest ROB entry
		robLen  int
		ifqHead int // ring position of the oldest IFQ entry
		ifqLen  int
		lsqOcc  int // memory ops in the ROB not yet issued

		// Branch-presence counters gate the mispredict-resolution scan: an
		// unissued ROB branch is necessarily incomplete and an IFQ branch
		// necessarily unresolved, so while either counter is non-zero the
		// scan's outcome is known to be "unresolved" without walking
		// anything.
		robBranchUnissued int
		ifqBranches       int
	)
	rob, ifq := c.rob, c.ifq
	unissued := c.unissued[:0]
	robSize, ifqSize := c.p.ROBSize, c.p.IFQSize
	c.lastMissDoneAt = 0
	c.lsq = c.lsq[:0]
	c.memInfl = c.memInfl[:0]
	c.aluInfl = c.aluInfl[:0]
	for i := range c.writerOf {
		c.writerOf[i] = -1
		c.regReadyAt[i] = 0
	}

	// Pre-decoded fast path: when the stream is a trace.Replayer, fetch
	// indexes the shared struct-of-arrays buffers directly instead of
	// paying an interface call and a record copy per instruction. Any
	// other Stream keeps the generic path, instruction for instruction
	// identical.
	var (
		dOps           []isa.Op
		dDests, dSrc1s []int32
		dSrc2s         []int32
		dAddrs, dPCs   []mach.Addr
		dValues        []mach.Word
		dTakens        []bool
		dPos, dLen     int
	)
	if rp, ok := s.(*trace.Replayer); ok {
		d := rp.Decoded()
		dOps, dDests, dSrc1s, dSrc2s = d.Ops(), d.Dests(), d.Src1s(), d.Src2s()
		dAddrs, dValues, dPCs, dTakens = d.Addrs(), d.Values(), d.PCs(), d.Takens()
		dLen = d.Len()
	}

	// Drain loop: run until the stream is exhausted and the ROB is empty.
	for !fetchDone || robLen > 0 || ifqLen > 0 {
		cycle++
		if cycle > stallSentinel {
			panic("cpu: simulation did not converge")
		}
		if iters++; done != nil && iters%cancelCheckEvery == 0 {
			select {
			case <-done:
				res.Cycles = cycle
				return res, ctx.Err()
			default:
			}
		}

		// --- Commit: retire completed instructions in order. ---
		committed := 0
		for robLen > 0 && committed < c.p.CommitWidth {
			head := &rob[robHead]
			if !head.done || head.doneAt > cycle {
				break
			}
			robHead++
			if robHead == robSize {
				robHead = 0
			}
			robLen--
			headIdx++
			committed++
			res.Instructions++
		}

		// --- Issue: wake and select ready instructions, oldest first. ---
		issued := 0
		readyNotIssued := 0
		// LSQ ordering: a memory op must wait for every older memory op
		// to the same word when either is a store (conservative
		// disambiguation with exact addresses). Completed older ops can
		// never conflict, so the only candidates are the other unissued
		// memory ops (c.lsq, program order) and the issued-but-incomplete
		// ops still in flight (c.memInfl). Both lists carry weak
		// references; stale records are compacted away here, so every
		// record surviving the compaction was live at the start of this
		// issue phase — the conflict scans themselves run lazily inside
		// the selection loop, only for memory ops that are otherwise ready
		// to issue. Nothing to do unless some memory op is dispatched but
		// unissued (lsqOcc counts them).
		if lsqOcc > 0 {
			fl := c.memInfl
			w := 0
			for _, f := range fl {
				o := &rob[f.pos]
				if o.idx != f.idx || o.doneAt <= cycle {
					continue // committed slot reused, or complete
				}
				fl[w] = f
				w++
			}
			c.memInfl = fl[:w]
			lq := c.lsq
			lw := 0
			for _, l := range lq {
				e := &rob[l.pos]
				if e.idx != l.idx || e.issued {
					continue // issued since (and possibly committed)
				}
				lq[lw] = l
				lw++
			}
			c.lsq = lq[:lw]
		}

		// Only dispatched-but-unissued entries can issue; iterate just
		// those (in program order, same as the historical whole-ROB scan
		// minus its skipped entries), compacting the survivors in place.
		if len(unissued) > 0 {
			fu := fuPool{
				ialu: c.p.IntALU, imult: c.p.IntMult,
				falu: c.p.FPALU, fmult: c.p.FPMult,
				mem: c.p.MemPorts,
			}
			// ready() inlined by hand: hoisting the scoreboard slices out
			// of the per-entry loop is safe because setWriter can only
			// grow them during dispatch, after this block.
			writerOf, regReadyAt := c.writerOf, c.regReadyAt
			keep := unissued[:0]
			for _, upos := range unissued {
				e := &rob[upos]
				rdy := true
				if s := e.in.Src1; s >= 0 && int(s) < len(writerOf) {
					if w := writerOf[s]; w >= headIdx && w < e.idx && regReadyAt[s] > cycle {
						rdy = false
					}
				}
				if s := e.in.Src2; rdy && s >= 0 && int(s) < len(writerOf) {
					if w := writerOf[s]; w >= headIdx && w < e.idx && regReadyAt[s] > cycle {
						rdy = false
					}
				}
				if !rdy {
					keep = append(keep, upos)
					continue
				}
				// The instruction sits in the ready queue this cycle,
				// whether or not it wins an issue slot (the paper's
				// Figure 15 metric counts the queue at selection time).
				readyNotIssued++
				if e.in.Op.IsMem() {
					// Lazy disambiguation: scan the older unissued memory
					// ops, then the older in-flight ones. A record for an
					// op that issued earlier in this loop still blocks —
					// it was unissued when the phase began, exactly as the
					// historical up-front scan saw it.
					blocked := false
					ea := mach.WordAlign(e.in.Addr)
					eStore := e.in.Op == isa.OpStore
					eIdx := e.idx
					for _, f := range c.lsq {
						if f.idx < eIdx && f.wa == ea && (eStore || f.st) {
							blocked = true
							break
						}
					}
					if !blocked {
						for _, f := range c.memInfl {
							if f.idx < eIdx && f.wa == ea && (eStore || f.st) {
								blocked = true
								break
							}
						}
					}
					if blocked {
						keep = append(keep, upos)
						continue
					}
				}
				if issued >= c.p.IssueWidth || !fu.take(e.in.Op) {
					keep = append(keep, upos)
					continue
				}
				c.execute(e, upos, cycle, &res)
				if e.in.Op.IsMem() {
					lsqOcc--
				} else if e.in.Op == isa.OpBranch {
					robBranchUnissued--
				}
				issued++
			}
			unissued = keep
		}

		// --- Dispatch: IFQ -> ROB/LSQ. ---
		dispatched := 0
		for ifqLen > 0 && dispatched < c.p.IssueWidth && robLen < robSize {
			e := &ifq[ifqHead]
			if e.in.Op.IsMem() && lsqOcc >= c.p.LSQSize {
				break
			}
			ifqHead++
			if ifqHead == ifqSize {
				ifqHead = 0
			}
			ifqLen--
			tail := robHead + robLen
			if tail >= robSize {
				tail -= robSize
			}
			rob[tail] = *e
			robLen++
			unissued = append(unissued, int32(tail))
			if e.in.Dest != isa.NoReg {
				c.setWriter(e.in.Dest, e.idx)
			}
			if e.in.Op.IsMem() {
				lsqOcc++
				c.lsq = append(c.lsq, flightRec{
					idx: e.idx, wa: mach.WordAlign(e.in.Addr),
					pos: int32(tail), st: e.in.Op == isa.OpStore,
				})
			} else if e.in.Op == isa.OpBranch {
				ifqBranches--
				robBranchUnissued++
			}
			dispatched++
		}

		// --- Fetch: instructions -> IFQ, stalling on mispredicts and
		// I-cache misses. ---
		fetched := 0
		if cycle >= fetchStallUntil && !fetchDone {
			// The front end refills the whole IFQ in one cycle (the
			// historical FetchWidth guard never bound this loop, and the
			// pinned timing depends on that); fetched only feeds the
			// idle-cycle progress check below.
			for ifqLen < ifqSize {
				var in isa.Inst
				if dOps != nil {
					if dPos >= dLen {
						fetchDone = true
						break
					}
					in = isa.Inst{
						Op: dOps[dPos], Dest: dDests[dPos],
						Src1: dSrc1s[dPos], Src2: dSrc2s[dPos],
						Addr: dAddrs[dPos], Value: dValues[dPos],
						Taken: dTakens[dPos], PC: dPCs[dPos],
					}
					dPos++
				} else {
					var ok bool
					if in, ok = s.Next(); !ok {
						fetchDone = true
						break
					}
				}
				res.ICacheAccesses++
				if !c.ic.access(in.PC) {
					res.ICacheMisses++
					fetchStallUntil = cycle + int64(c.p.ICacheMissLat-c.p.ICacheHitLat)
				}
				tail := ifqHead + ifqLen
				if tail >= ifqSize {
					tail -= ifqSize
				}
				ifq[tail] = robEntry{in: in, idx: instSeq, fetchedAt: cycle}
				instSeq++
				ifqLen++
				fetched++
				if in.Op == isa.OpBranch {
					res.Branches++
					ifqBranches++
					if c.pred.predict(in.PC) != in.Taken {
						res.Mispredicts++
						// Fetch resumes after the branch resolves;
						// resolution is detected at issue time below.
						fetchStallUntil = stallSentinel // blocked until resolve
					}
					c.pred.update(in.PC, in.Taken)
					if fetchStallUntil > cycle {
						break
					}
				}
				if fetchStallUntil > cycle {
					break
				}
			}
		}
		// Resolve mispredict stalls: when the youngest unresolved branch
		// completes, the front end restarts after the penalty. Branches
		// still sitting in the IFQ are by construction unissued, so any
		// branch there keeps the stall in place — the counters make both
		// conditions one comparison, and the ROB walk (now only checking
		// issued branches' completion cycles) runs at most a couple of
		// times per mispredict instead of every stalled cycle.
		if fetchStallUntil == stallSentinel && robBranchUnissued == 0 && ifqBranches == 0 {
			resolved := true
			var resolveAt int64
			for i, pos := 0, robHead; i < robLen; i++ {
				e := &rob[pos]
				if pos++; pos == robSize {
					pos = 0
				}
				if e.in.Op != isa.OpBranch {
					continue
				}
				// Every ROB branch is issued (robBranchUnissued == 0),
				// hence done; only its completion cycle can hold the
				// stall.
				if e.doneAt > cycle {
					resolved = false
					break
				}
				if e.doneAt > resolveAt {
					resolveAt = e.doneAt
				}
			}
			if resolved {
				fetchStallUntil = resolveAt + int64(c.p.MispredictPenalty)
			}
		}

		// --- Instrumentation: ready-queue length during miss cycles. ---
		missOutstanding := c.lastMissDoneAt > cycle
		if missOutstanding {
			res.MissCycles++
			res.ReadyQueueSamples++
			res.ReadyQueueInMiss += int64(readyNotIssued)
		}

		// cycleWeight is how many cycles this iteration's machine state
		// stands for: 1, plus any cycles the fast-forward below skips.
		cycleWeight := int64(1)

		// --- Idle-cycle fast-forward. ---
		// If nothing moved this cycle, every time gate in the model is a
		// "doneAt > cycle" or "cycle >= fetchStallUntil" comparison, and
		// none of them can flip before the earliest pending completion.
		// All intervening cycles are exact replicas of this one, so jump
		// to just before that event and account their instrumentation in
		// closed form.
		if committed == 0 && issued == 0 && dispatched == 0 && fetched == 0 &&
			(!fetchDone || robLen > 0 || ifqLen > 0) {
			// Pending completions are exactly the valid in-flight records:
			// every issued op with remaining latency was pushed to one of
			// the two lists (one-cycle ops can never be pending once the
			// pipeline is idle), so the earliest event falls out of the
			// same compacting walks without touching the rest of the ROB.
			next := int64(1) << 62
			for li, fl := range [2][]flightRec{c.memInfl, c.aluInfl} {
				w := 0
				for _, f := range fl {
					e := &rob[f.pos]
					if e.idx != f.idx || e.doneAt <= cycle {
						continue
					}
					if e.doneAt < next {
						next = e.doneAt
					}
					fl[w] = f
					w++
				}
				if li == 0 {
					c.memInfl = fl[:w]
				} else {
					c.aluInfl = fl[:w]
				}
			}
			if !fetchDone && fetchStallUntil > cycle && fetchStallUntil != stallSentinel && fetchStallUntil < next {
				next = fetchStallUntil
			}
			if next == int64(1)<<62 {
				// No pending completion and a permanently stalled front
				// end: the state can never change again.
				panic("cpu: simulation did not converge")
			}
			if skipped := next - cycle - 1; skipped > 0 {
				if missOutstanding {
					res.MissCycles += skipped
					res.ReadyQueueSamples += skipped
					res.ReadyQueueInMiss += int64(readyNotIssued) * skipped
				}
				cycle += skipped
				cycleWeight += skipped
			}
		}

		if c.obs != nil {
			c.obs.Tick(cycle, cycleWeight, robLen, res.Instructions)
		}
	}

	res.Cycles = cycle
	return res, nil
}

// setWriter records idx as the last dispatched writer of register r,
// growing the scoreboard on demand (register ids are small and dense).
// The register's ready time is unknown until that writer issues.
func (c *Core) setWriter(r int32, idx int64) {
	if int(r) >= len(c.writerOf) {
		n := len(c.writerOf) * 2
		if n == 0 {
			n = 256
		}
		for n <= int(r) {
			n *= 2
		}
		grown := make([]int64, n)
		copy(grown, c.writerOf)
		for i := len(c.writerOf); i < n; i++ {
			grown[i] = -1
		}
		c.writerOf = grown
		grownReady := make([]int64, n)
		copy(grownReady, c.regReadyAt)
		c.regReadyAt = grownReady
	}
	c.writerOf[r] = idx
	c.regReadyAt[r] = readyUnknown
}

// execute issues e, the entry at ROB slot pos, at cycle, computing its
// completion time.
func (c *Core) execute(e *robEntry, pos int32, cycle int64, res *Result) {
	var lat int
	if e.in.Op.IsMem() {
		if c.obs != nil {
			// The attribution profiler charges the hierarchy events of
			// this access to the instruction's PC (attr.go).
			c.obs.SetAccessPC(e.in.PC)
		}
		if c.fault != nil {
			c.fault("cpu.mem-op")
		}
	}
	switch e.in.Op {
	case isa.OpLoad:
		v, l := c.read(e.in.Addr)
		if v != e.in.Value {
			res.ValueMismatches++
		}
		res.Loads++
		lat = l
		e.isMiss = l > c.p.MissThreshold
	case isa.OpStore:
		l := c.write(e.in.Addr, e.in.Value)
		res.Stores++
		lat = l
		e.isMiss = l > c.p.MissThreshold
	case isa.OpALU, isa.OpNop, isa.OpBranch:
		lat = 1
	case isa.OpMul:
		lat = c.p.MulLat
	case isa.OpDiv:
		lat = c.p.DivLat
	case isa.OpFALU:
		lat = c.p.FALULat
	case isa.OpFMul:
		lat = c.p.FMulLat
	case isa.OpFDiv:
		lat = c.p.FDivLat
	default:
		lat = 1
	}
	e.issued = true
	e.done = true
	e.doneAt = cycle + int64(lat)
	if e.isMiss && e.doneAt > c.lastMissDoneAt {
		c.lastMissDoneAt = e.doneAt
	}
	if d := e.in.Dest; d != isa.NoReg && c.writerOf[d] == e.idx {
		// Still the latest writer of its destination: publish the cycle
		// the register value becomes available.
		c.regReadyAt[d] = e.doneAt
	}
	if e.doneAt > cycle+1 {
		// Multi-cycle op: record it as in flight so disambiguation and the
		// idle fast-forward find pending completions without a ROB walk.
		// One-cycle ops are complete before either consumer can care.
		if e.in.Op.IsMem() {
			if len(c.memInfl) == cap(c.memInfl) {
				c.memInfl = compactInflight(c.rob, c.memInfl, cycle)
			}
			c.memInfl = append(c.memInfl, flightRec{
				idx: e.idx, wa: mach.WordAlign(e.in.Addr),
				pos: pos, st: e.in.Op == isa.OpStore,
			})
		} else {
			if len(c.aluInfl) == cap(c.aluInfl) {
				c.aluInfl = compactInflight(c.rob, c.aluInfl, cycle)
			}
			c.aluInfl = append(c.aluInfl, flightRec{idx: e.idx, pos: pos})
		}
	}
	if c.obs != nil && e.in.Op.IsMem() {
		if e.in.Op == isa.OpLoad {
			c.obs.ObserveLoadToUse(e.doneAt - e.fetchedAt)
		}
		if e.isMiss {
			c.obs.ObserveMissService(int64(lat))
		}
	}
}

// compactInflight drops in-flight records whose ROB slot was reused or
// whose op has completed. Called when a list is full before a push: live
// records never exceed the ROB size and each list's capacity is twice
// that, so a push after compaction never reallocates.
func compactInflight(rob []robEntry, fl []flightRec, cycle int64) []flightRec {
	w := 0
	for _, f := range fl {
		e := &rob[f.pos]
		if e.idx != f.idx || e.doneAt <= cycle {
			continue
		}
		fl[w] = f
		w++
	}
	return fl[:w]
}

// read dispatches a data-cache read to the concrete hierarchy when it is
// known, avoiding the interface call on the per-access hot path.
func (c *Core) read(a mach.Addr) (mach.Word, int) {
	if c.cppD != nil {
		return c.cppD.Read(a)
	}
	if c.stdD != nil {
		return c.stdD.Read(a)
	}
	return c.d.Read(a)
}

// write is the store-side counterpart of read.
func (c *Core) write(a mach.Addr, v mach.Word) int {
	if c.cppD != nil {
		return c.cppD.Write(a, v)
	}
	if c.stdD != nil {
		return c.stdD.Write(a, v)
	}
	return c.d.Write(a, v)
}

// fuPool tracks per-cycle functional-unit availability.
type fuPool struct {
	ialu, imult, falu, fmult, mem int
}

func (f *fuPool) take(op isa.Op) bool {
	var slot *int
	switch op {
	case isa.OpALU, isa.OpBranch, isa.OpNop:
		slot = &f.ialu
	case isa.OpMul, isa.OpDiv:
		slot = &f.imult
	case isa.OpFALU:
		slot = &f.falu
	case isa.OpFMul, isa.OpFDiv:
		slot = &f.fmult
	case isa.OpLoad, isa.OpStore:
		slot = &f.mem
	default:
		slot = &f.ialu
	}
	if *slot == 0 {
		return false
	}
	*slot--
	return true
}

// bimod is SimpleScalar's bimodal predictor: a table of 2-bit saturating
// counters indexed by PC.
type bimod struct {
	table []uint8
	mask  mach.Addr
}

func newBimod(bits int) *bimod {
	n := 1 << bits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &bimod{table: t, mask: mach.Addr(n - 1)}
}

func (b *bimod) index(pc mach.Addr) int { return int((pc >> 2) & b.mask) }

func (b *bimod) predict(pc mach.Addr) bool { return b.table[b.index(pc)] >= 2 }

func (b *bimod) update(pc mach.Addr, taken bool) {
	i := b.index(pc)
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}

// icache is a direct-mapped instruction cache over the PC stream.
type icache struct {
	tags  []mach.Addr
	valid []bool
	geom  mach.LineGeom
	mask  mach.Addr
}

func newICache(lines, lineBytes int) *icache {
	return &icache{
		tags:  make([]mach.Addr, lines),
		valid: make([]bool, lines),
		geom:  mach.LineGeom{LineBytes: lineBytes},
		mask:  mach.Addr(lines - 1),
	}
}

// access returns true on hit, filling on miss.
func (ic *icache) access(pc mach.Addr) bool {
	n := ic.geom.LineNumber(pc)
	i := int(n & ic.mask)
	if ic.valid[i] && ic.tags[i] == n {
		return true
	}
	ic.valid[i] = true
	ic.tags[i] = n
	return false
}
