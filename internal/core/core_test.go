package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cppcache/internal/cache"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
)

// smallVals fills a region with compressible small values.
func fillSmall(m *mem.Memory, base mach.Addr, words int) {
	for i := 0; i < words; i++ {
		m.WriteWord(base+mach.Addr(i*4), mach.Word(i&0xFF))
	}
}

// fillBig fills a region with incompressible values.
func fillBig(m *mem.Memory, base mach.Addr, words int) {
	for i := 0; i < words; i++ {
		m.WriteWord(base+mach.Addr(i*4), 0x5A5A0000|mach.Word(i)<<16|0x8000)
	}
}

func newCPP(t *testing.T, m *mem.Memory) *Hierarchy {
	t.Helper()
	h, err := New(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.L1.SizeBytes != 8<<10 || c.L1.Assoc != 1 || c.L1.LineBytes != 64 {
		t.Errorf("CPP L1 = %+v", c.L1)
	}
	if c.L2.SizeBytes != 64<<10 || c.L2.Assoc != 2 || c.L2.LineBytes != 128 {
		t.Errorf("CPP L2 = %+v", c.L2)
	}
	if c.Mask != 1 || !c.VictimPlacement {
		t.Errorf("Mask=%d VictimPlacement=%v", c.Mask, c.VictimPlacement)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mask = 0
	if _, err := New(cfg, mem.New()); err == nil {
		t.Error("mask 0 accepted")
	}
	cfg = DefaultConfig()
	cfg.L2.LineBytes = 32
	if _, err := New(cfg, mem.New()); err == nil {
		t.Error("L2 line smaller than L1 accepted")
	}
	cfg = DefaultConfig()
	cfg.L1.Assoc = 3
	if _, err := New(cfg, mem.New()); err == nil {
		t.Error("non-pow2 set count accepted")
	}
}

func TestReadAfterWrite(t *testing.T) {
	h := newCPP(t, mem.New())
	h.Write(0x1000, 42)
	if v, _ := h.Read(0x1000); v != 42 {
		t.Fatalf("read %d, want 42", v)
	}
	// Incompressible value round trip.
	h.Write(0x1004, 0xDEAD8001)
	if v, _ := h.Read(0x1004); v != 0xDEAD8001 {
		t.Fatalf("read %#x, want 0xDEAD8001", v)
	}
	// Pointer-like value round trip (same 32K chunk as its address).
	h.Write(0x1008, 0x00001ABC)
	if v, _ := h.Read(0x1008); v != 0x00001ABC {
		t.Fatalf("read %#x, want 0x1ABC", v)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencies(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0x1000, 64)
	h := newCPP(t, m)
	if _, lat := h.Read(0x1000); lat != 100 {
		t.Errorf("cold miss latency %d, want 100", lat)
	}
	if _, lat := h.Read(0x1004); lat != 1 {
		t.Errorf("primary hit latency %d, want 1", lat)
	}
}

// TestAffiliatedPrefetchOnFetch is the paper's core mechanism: fetching a
// line of compressible words brings the next line's compressible words
// into the same frame, so accessing the next line hits in the affiliated
// place at 1 extra cycle and without another memory access.
func TestAffiliatedPrefetchOnFetch(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0x1000, 32) // two consecutive L1 lines, all compressible
	h := newCPP(t, m)

	if _, lat := h.Read(0x1000); lat != 100 {
		t.Fatalf("cold miss lat = %d", lat)
	}
	s := h.Stats()
	if s.AffWordsPrefetchedL1 == 0 {
		t.Fatal("no affiliated words prefetched on a fully compressible fetch")
	}
	misses := s.L1.Misses
	v, lat := h.Read(0x1040) // the affiliated (next) line
	if v != 16 {
		t.Fatalf("affiliated read value = %d, want 16", v)
	}
	if lat != 2 {
		t.Errorf("affiliated hit latency = %d, want 2", lat)
	}
	if s.L1.Misses != misses {
		t.Errorf("affiliated hit counted as a miss")
	}
	if s.AffHitsL1 != 1 {
		t.Errorf("AffHitsL1 = %d, want 1", s.AffHitsL1)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNoPrefetchForIncompressible: incompressible words leave no slack, so
// nothing is prefetched and the next line misses.
func TestNoPrefetchForIncompressible(t *testing.T) {
	m := mem.New()
	fillBig(m, 0x1000, 32)
	h := newCPP(t, m)
	h.Read(0x1000)
	if got := h.Stats().AffWordsPrefetchedL1; got != 0 {
		t.Fatalf("prefetched %d words from incompressible lines", got)
	}
	misses := h.Stats().L1.Misses
	h.Read(0x1040)
	if h.Stats().L1.Misses != misses+1 {
		t.Error("next line access should miss when nothing was prefetched")
	}
}

// TestPartialPrefetch: a line with a mix of compressible and
// incompressible words prefetches only the pairwise-compressible subset
// (Figure 4's 7-of-8 example generalised).
func TestPartialPrefetch(t *testing.T) {
	m := mem.New()
	// Line A (0x1000): words 0..11 small, 12..15 big.
	// Line B (0x1040): words 0..7 small, 8..15 big.
	for i := 0; i < 16; i++ {
		var v mach.Word = mach.Word(i)
		if i >= 12 {
			v = 0x70008000 | mach.Word(i)
		}
		m.WriteWord(0x1000+mach.Addr(i*4), v)
	}
	for i := 0; i < 16; i++ {
		var v mach.Word = mach.Word(100 + i)
		if i >= 8 {
			v = 0x70008000 | mach.Word(i)
		}
		m.WriteWord(0x1040+mach.Addr(i*4), v)
	}
	h := newCPP(t, m)
	h.Read(0x1000)
	if got := h.Stats().AffWordsPrefetchedL1; got != 8 {
		t.Fatalf("prefetched %d affiliated words, want 8 (pairwise compressible)", got)
	}
	// Words 0..7 of line B hit in the affiliated place.
	for i := 0; i < 8; i++ {
		v, lat := h.Read(0x1040 + mach.Addr(i*4))
		if v != mach.Word(100+i) || lat != 2 {
			t.Fatalf("aff word %d: v=%d lat=%d", i, v, lat)
		}
	}
	// Word 8 of line B was not prefetched: miss.
	misses := h.Stats().L1.Misses
	h.Read(0x1040 + 8*4)
	if h.Stats().L1.Misses != misses+1 {
		t.Error("unprefetched word should miss")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAffiliatedWriteHitPromotes: a write hit in the affiliated place
// brings the line to its primary place (§3.3).
func TestAffiliatedWriteHitPromotes(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0x1000, 32)
	h := newCPP(t, m)
	h.Read(0x1000) // prefetches line 0x1040 into affiliated slots
	lat := h.Write(0x1044, 7)
	if lat != 2 {
		t.Errorf("affiliated write hit latency = %d, want 2", lat)
	}
	if h.Stats().Promotions != 1 {
		t.Errorf("Promotions = %d, want 1", h.Stats().Promotions)
	}
	// Now the line is primary: reads are 1-cycle hits and see the store.
	if v, lat := h.Read(0x1044); v != 7 || lat != 1 {
		t.Fatalf("after promotion: v=%d lat=%d, want 7, 1", v, lat)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCompressibleToIncompressibleWrite: overwriting a compressible
// primary word with an incompressible value evicts the affiliated word
// sharing its slot; the primary line wins (§3.3).
func TestCompressibleToIncompressibleWrite(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0x1000, 32)
	h := newCPP(t, m)
	h.Read(0x1000)
	if h.Stats().AffWordsPrefetchedL1 == 0 {
		t.Fatal("setup: nothing prefetched")
	}
	h.Write(0x1000, 0xDEAD8001) // slot 0 primary becomes incompressible
	if h.Stats().ConflictEvictions != 1 {
		t.Errorf("ConflictEvictions = %d, want 1", h.Stats().ConflictEvictions)
	}
	if v, _ := h.Read(0x1000); v != 0xDEAD8001 {
		t.Fatalf("primary word lost: %#x", v)
	}
	// The affiliated word that shared slot 0 is gone; its line-mates are
	// still there.
	if v, lat := h.Read(0x1044); v != 17 || lat != 2 {
		t.Fatalf("surviving affiliated word: v=%d lat=%d", v, lat)
	}
	misses := h.Stats().L1.Misses
	h.Read(0x1040) // the evicted affiliated word
	if h.Stats().L1.Misses != misses+1 {
		t.Error("evicted affiliated word should miss")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestVictimPlacement: an evicted line's compressible words are salvaged
// into its affiliated place when its partner is resident.
func TestVictimPlacement(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0x1000, 32)     // lines A (0x1000) and B (0x1040): partners
	fillBig(m, 0x1000+8<<10, 16) // line C conflicts with A in the 8K DM L1
	h := newCPP(t, m)

	h.Read(0x1000) // A primary (and B prefetched into A's frame)
	h.Read(0x1040) // B: affiliated hit stays where it is (read does not promote)

	// Make B primary: write to it (promotion), so A's eviction can target
	// B's frame.
	h.Write(0x1040, 5)
	// Now evict A by touching the conflicting line C.
	h.Read(0x1000 + 8<<10)
	if h.Stats().AffPlacements == 0 {
		t.Fatal("no victim placement recorded")
	}
	// A's words should now hit in the affiliated place of B's frame.
	v, lat := h.Read(0x1004)
	if v != 1 || lat != 2 {
		t.Fatalf("salvaged word: v=%d lat=%d, want 1, 2", v, lat)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestVictimPlacementDisabled: the ablation knob turns salvaging off.
func TestVictimPlacementDisabled(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0x1000, 32)
	fillBig(m, 0x1000+8<<10, 16)
	cfg := DefaultConfig()
	cfg.VictimPlacement = false
	h, err := New(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	h.Read(0x1000)
	h.Write(0x1040, 5)
	h.Read(0x1000 + 8<<10)
	if h.Stats().AffPlacements != 0 {
		t.Error("victim placement happened despite being disabled")
	}
}

// TestSingleCopyInvariant: fetching a line whose partner is primary
// resident must not create an affiliated copy.
func TestSingleCopyInvariant(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0x1000, 32)
	h := newCPP(t, m)
	h.Read(0x1040) // B primary (A prefetched into B's frame as affiliated)
	h.Read(0x1000) // A: affiliated hit? then write to force promotion
	h.Write(0x1000, 3)
	// Both A and B now primary; re-fetch of either must not duplicate.
	h.Read(0x1040)
	h.Read(0x1000)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDirtyVictimWriteback: dirty data survives eviction through the
// hierarchy.
func TestDirtyVictimWriteback(t *testing.T) {
	m := mem.New()
	h := newCPP(t, m)
	h.Write(0x1000, 0xBEEF8001) // incompressible, dirty
	h.Read(0x1000 + 8<<10)      // evict from L1 (same DM set)
	if v, _ := h.Read(0x1000); v != 0xBEEF8001 {
		t.Fatalf("dirty data lost through eviction: %#x", v)
	}
}

// TestCoherenceRandom hammers the hierarchy with random reads and writes
// against a shadow map, checking invariants periodically. This is the
// main correctness test for CPP.
func TestCoherenceRandom(t *testing.T) {
	configs := map[string]Config{
		"default": DefaultConfig(),
	}
	noVictim := DefaultConfig()
	noVictim.VictimPlacement = false
	configs["no-victim-placement"] = noVictim
	mask2 := DefaultConfig()
	mask2.Mask = 0x2
	configs["mask-2"] = mask2

	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			m := mem.New()
			h, err := New(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			shadow := map[mach.Addr]mach.Word{}
			rng := rand.New(rand.NewSource(1234))
			for i := 0; i < 200000; i++ {
				a := mach.Addr(rng.Intn(1<<16)) &^ 3
				switch rng.Intn(4) {
				case 0: // write a compressible small value
					v := mach.Word(rng.Intn(100))
					h.Write(a, v)
					shadow[a] = v
				case 1: // write an incompressible value
					v := rng.Uint32() | 0x40008000
					h.Write(a, v)
					shadow[a] = v
				case 2: // write a pointer-like value
					v := (a &^ 0x7FFF) | mach.Word(rng.Intn(1<<15))&^3
					h.Write(a, v)
					shadow[a] = v
				default:
					if v, _ := h.Read(a); v != shadow[a] {
						t.Fatalf("iter %d: %#x = %#x, want %#x", i, a, v, shadow[a])
					}
				}
				if i%5000 == 0 {
					if err := h.CheckInvariants(); err != nil {
						t.Fatalf("iter %d: %v", i, err)
					}
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			h.Drain()
			for a, want := range shadow {
				if got := m.ReadWord(a); got != want {
					t.Fatalf("after drain, mem[%#x] = %#x, want %#x", a, got, want)
				}
			}
		})
	}
}

// TestSequentialSweepPrefetchWins: on a forward sweep over compressible
// data, CPP's partial prefetching turns roughly half the line misses into
// affiliated hits.
func TestSequentialSweepPrefetchWins(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0, 1<<14) // 64 KB of small values
	h := newCPP(t, m)
	for a := mach.Addr(0); a < 1<<16; a += 4 {
		h.Read(a)
	}
	s := h.Stats()
	if s.AffHitsL1 == 0 {
		t.Fatal("no affiliated hits on a compressible sweep")
	}
	// Every even line's fetch prefetches the odd line: misses should be
	// roughly one per two lines = accesses/32.
	lines := int64((1 << 16) / 64)
	if s.L1.Misses > lines*6/10 {
		t.Errorf("L1 misses = %d, want about half of %d lines", s.L1.Misses, lines)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTrafficNeverExceedsPerMissBandwidth: each L2 miss moves exactly one
// L2 line of bus bandwidth regardless of prefetching (§3.3).
func TestTrafficNeverExceedsPerMissBandwidth(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0, 1<<14)
	h := newCPP(t, m)
	for a := mach.Addr(0); a < 1<<15; a += 64 {
		h.Read(a)
	}
	s := h.Stats()
	perMiss := float64(s.MemReadHalves) / float64(s.L2.Misses)
	want := float64(2 * h.l2.geom.Words())
	if perMiss != want {
		t.Errorf("read traffic per L2 miss = %.1f halves, want %.1f", perMiss, want)
	}
}

// TestValueDecompressionPaths verifies that values genuinely travel
// through the 16-bit compressed representation: a compressible word read
// from an affiliated slot equals the original even for negative and
// pointer values.
func TestValueDecompressionPaths(t *testing.T) {
	m := mem.New()
	// Line A: all small positives (compressible).
	fillSmall(m, 0x2000, 16)
	// Line B: negatives and pointers into B's own 32K chunk.
	for i := 0; i < 16; i++ {
		a := mach.Addr(0x2040 + i*4)
		if i%2 == 0 {
			m.WriteWord(a, mach.Word(int32(-1-i)))
		} else {
			m.WriteWord(a, (a&^0x7FFF)|0x123)
		}
	}
	h := newCPP(t, m)
	h.Read(0x2000)
	for i := 0; i < 16; i++ {
		a := mach.Addr(0x2040 + i*4)
		want := m.ReadWord(a)
		v, lat := h.Read(a)
		if v != want {
			t.Fatalf("word %d: got %#x, want %#x (lat %d)", i, v, want, lat)
		}
	}
}

func BenchmarkCPPSweep(b *testing.B) {
	m := mem.New()
	fillSmall(m, 0, 1<<14)
	h, _ := New(DefaultConfig(), m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(mach.Addr(i*4) & 0xFFFF)
	}
}

func BenchmarkCPPRandom(b *testing.B) {
	m := mem.New()
	h, _ := New(DefaultConfig(), m)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]mach.Addr, 4096)
	for i := range addrs {
		addrs[i] = mach.Addr(rng.Intn(1<<20)) &^ 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(addrs[i%4096])
	}
}

// TestCoherenceAcrossGeometries runs the random coherence + invariant
// check over a spread of cache geometries, masks and policies, so the CPP
// structure is not only correct for the paper's configuration.
func TestCoherenceAcrossGeometries(t *testing.T) {
	type geo struct {
		l1Size, l1Assoc, l1Line int
		l2Size, l2Assoc, l2Line int
		mask                    mach.Addr
		victim                  bool
	}
	geos := []geo{
		{4 << 10, 1, 32, 32 << 10, 2, 64, 0x1, true},
		{8 << 10, 2, 64, 64 << 10, 4, 128, 0x1, true},
		{2 << 10, 4, 64, 16 << 10, 8, 64, 0x1, false}, // equal line sizes
		{8 << 10, 1, 64, 64 << 10, 2, 128, 0x3, true}, // multi-bit mask
		{1 << 10, 1, 16, 8 << 10, 2, 32, 0x1, true},   // tiny: heavy conflicts
	}
	for gi, g := range geos {
		cfg := DefaultConfig()
		cfg.L1 = cache.Params{SizeBytes: g.l1Size, Assoc: g.l1Assoc, LineBytes: g.l1Line}
		cfg.L2 = cache.Params{SizeBytes: g.l2Size, Assoc: g.l2Assoc, LineBytes: g.l2Line}
		cfg.Mask = g.mask
		cfg.VictimPlacement = g.victim
		m := mem.New()
		h, err := New(cfg, m)
		if err != nil {
			t.Fatalf("geometry %d: %v", gi, err)
		}
		shadow := map[mach.Addr]mach.Word{}
		rng := rand.New(rand.NewSource(int64(100 + gi)))
		for i := 0; i < 60000; i++ {
			a := mach.Addr(rng.Intn(1<<15)) &^ 3
			switch rng.Intn(4) {
			case 0:
				v := mach.Word(rng.Intn(500))
				h.Write(a, v)
				shadow[a] = v
			case 1:
				v := rng.Uint32() | 0x40008000
				h.Write(a, v)
				shadow[a] = v
			default:
				if v, _ := h.Read(a); v != shadow[a] {
					t.Fatalf("geometry %d iter %d: %#x = %#x, want %#x", gi, i, a, v, shadow[a])
				}
			}
			if i%10000 == 0 {
				if err := h.CheckInvariants(); err != nil {
					t.Fatalf("geometry %d iter %d: %v", gi, i, err)
				}
			}
		}
		h.Drain()
		for a, want := range shadow {
			if got := m.ReadWord(a); got != want {
				t.Fatalf("geometry %d: after drain mem[%#x] = %#x, want %#x", gi, a, got, want)
			}
		}
	}
}

// TestQuickRandomOps is a property test over short random operation
// sequences: for any sequence, values read back match a shadow map and
// the invariants hold at the end.
func TestQuickRandomOps(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		m := mem.New()
		h, err := New(DefaultConfig(), m)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		shadow := map[mach.Addr]mach.Word{}
		n := int(ops%2048) + 64
		for i := 0; i < n; i++ {
			a := mach.Addr(rng.Intn(1<<13)) &^ 3
			if rng.Intn(2) == 0 {
				v := rng.Uint32()
				h.Write(a, v)
				shadow[a] = v
			} else if v, _ := h.Read(a); v != shadow[a] {
				return false
			}
		}
		return h.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPartialLineMergeKeepsDirtyWords: a write to a line, followed by its
// partner's fetch evicting it into affiliated storage, followed by a read
// of an unwritten word, must both preserve the dirty word and fill the
// hole from the L2.
func TestPartialLineMergeKeepsDirtyWords(t *testing.T) {
	m := mem.New()
	fillSmall(m, 0x3000, 32)
	h := newCPP(t, m)
	h.Read(0x3000)        // line A primary, line B prefetched into A's frame
	h.Write(0x3044, 9999) // write to B: affiliated hit -> promotion
	// Evict B (same DM set as B + 8K).
	h.Read(0x3040 + 8<<10)
	// B's compressible words were salvaged into A's frame (victim
	// placement); read the dirty word back through the affiliated path.
	if v, _ := h.Read(0x3044); v != 9999 {
		t.Fatalf("dirty word lost: %d", v)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
