package core

import (
	"cppcache/internal/mach"
	"cppcache/internal/memsys"
)

// This file exports read-only views of the compression cache's internal
// state for the differential-verification harness (internal/verify), plus
// a fault injector its tests use to prove the invariant checkers detect
// real corruption, plus the fault-hook installer the seeded chaos harness
// (internal/chaos) uses to fire panics, stalls and cancellations at
// deterministic hierarchy points. Nothing here is on the simulation hot
// path.

// SetFaultHook installs fn at the hierarchy's fault-injection points: it
// is called with a site label on every L1 fill ("cpp.fill-l1") and L2
// install ("cpp.install-l2"). nil removes the hook. The hook runs on the
// simulation goroutine, synchronously inside the access, so a hook that
// panics abandons the hierarchy mid-operation — callers that inject
// panics must treat the hierarchy as unusable afterwards.
func (h *Hierarchy) SetFaultHook(fn func(site string)) { h.fault = fn }

// levelCPC maps 1 -> L1, 2 -> L2, panicking on anything else (programming
// error in a checker).
func (h *Hierarchy) levelCPC(level int) *cpc {
	switch level {
	case 1:
		return h.l1
	case 2:
		return h.l2
	}
	panic("core: cache level must be 1 or 2")
}

// Occupancies implements memsys.Inspector. Compressed primary words and
// affiliated words count one half-word each; uncompressed primary words
// count two. A correct CPP level can never exceed its physical half-word
// capacity — the freed half-slots are the only place affiliated data may
// live.
func (h *Hierarchy) Occupancies() []memsys.Occupancy {
	out := make([]memsys.Occupancy, 0, 2)
	for level, name := range map[int]string{1: "L1", 2: "L2"} {
		c := h.levelCPC(level)
		words := c.geom.Words()
		occ := memsys.Occupancy{
			Level:   name,
			LineCap: c.p.Sets() * c.p.Assoc,
			HalfCap: c.p.Sets() * c.p.Assoc * words * 2,
		}
		for s := range c.sets {
			for w := range c.sets[s] {
				f := &c.sets[s][w]
				if !f.valid {
					continue
				}
				occ.Lines++
				for i := range f.pa {
					if f.pa[i] {
						if f.pc[i] {
							occ.Halves++
						} else {
							occ.Halves += 2
						}
					}
					if f.aa[i] {
						occ.Halves++
					}
				}
			}
		}
		out = append(out, occ)
	}
	// Map iteration order is random; keep L1 first.
	if out[0].Level != "L1" {
		out[0], out[1] = out[1], out[0]
	}
	return out
}

// AffWords calls fn for every affiliated word resident at the given level
// (1 or 2) with its byte address and decompressed value.
func (h *Hierarchy) AffWords(level int, fn func(a mach.Addr, v mach.Word)) {
	c := h.levelCPC(level)
	for s := range c.sets {
		for w := range c.sets[s] {
			f := &c.sets[s][w]
			if !f.valid {
				continue
			}
			partner := f.tag ^ c.mask
			for i, aa := range f.aa {
				if aa {
					a := c.wordAddr(partner, i)
					fn(a, f.readAff(i, a))
				}
			}
		}
	}
}

// PrimaryProbe returns the primary-stored value of the word at address a
// at the given level, if that word is available there. It does not touch
// LRU state.
func (h *Hierarchy) PrimaryProbe(level int, a mach.Addr) (mach.Word, bool) {
	c := h.levelCPC(level)
	n := c.geom.LineNumber(a)
	w := c.geom.WordIndex(a)
	if f := c.frameByTag(n); f != nil && f.pa[w] {
		return f.readPrimary(w, a), true
	}
	return 0, false
}

// CorruptForTest deliberately damages internal state so that
// internal/verify's tests can demonstrate each invariant checker catches
// real corruption. It reports whether a suitable victim was found.
//
// Kinds:
//   - "aff-word": flip payload bits of the first resident affiliated word,
//     so it decompresses to a value that no longer mirrors memory.
//   - "aa-orphan": set an AA flag on a slot whose primary word is not
//     stored compressed, breaking the structural storage rule.
func (h *Hierarchy) CorruptForTest(kind string) bool {
	for _, c := range []*cpc{h.l1, h.l2} {
		for s := range c.sets {
			for w := range c.sets[s] {
				f := &c.sets[s][w]
				if !f.valid {
					continue
				}
				for i := range f.pa {
					switch kind {
					case "aff-word":
						if f.aa[i] {
							f.ad16[i] ^= 0x1 // stays compressible, wrong value
							return true
						}
					case "aa-orphan":
						if f.pa[i] && !f.pc[i] && !f.aa[i] {
							f.aa[i] = true
							return true
						}
					default:
						panic("core: unknown corruption kind " + kind)
					}
				}
			}
		}
	}
	return false
}
