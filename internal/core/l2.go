package core

import (
	"cppcache/internal/mach"
	"cppcache/internal/obs"
)

// probeL2Into fills dst with the on-chip availability of L1 line n at the
// L2: which of its words the L2 currently holds (as primary or affiliated
// data), their logical values, and their compressibility. It never
// triggers a fetch — the L1<->L2 interface is word-based and a partial
// answer is acceptable (§3.1). The second result reports whether the words
// came from affiliated storage (for statistics). dst is one of the
// Hierarchy's scratch windows; the filled window is returned for
// convenience.
func (h *Hierarchy) probeL2Into(dst *window, n mach.Addr) (*window, bool) {
	words := h.l1.geom.Words()
	dst.reset()
	base := h.l1.geom.NumberToAddr(n)
	N := h.l2.geom.LineNumber(base)
	off := h.l2.geom.WordIndex(base)

	if f := h.l2.frameByTag(N); f != nil {
		for i := 0; i < words; i++ {
			j := off + i
			if !f.pa[j] {
				continue
			}
			a := base + mach.Addr(i*mach.WordBytes)
			dst.set(i, f.readPrimary(j, a), f.pc[j])
		}
		return dst, false
	}
	if af := h.l2.frameByTag(N ^ h.cfg.Mask); af != nil {
		for i := 0; i < words; i++ {
			j := off + i
			if !af.aa[j] {
				continue
			}
			a := base + mach.Addr(i*mach.WordBytes)
			// Affiliated words are compressible by construction.
			dst.set(i, af.readAff(j, a), true)
		}
	}
	return dst, true
}

// serveFromL2 satisfies an L1 demand for word needWord of L1 line n.
// If the word is on chip (primary or affiliated storage, possibly a
// partial line), that is an L2 hit and only the available words are
// returned (§3.1: "we do not always enforce a complete line from the L2
// cache as long as the requested data item is found"). Otherwise the L2
// fetches from memory. Returns the payload and the total latency.
func (h *Hierarchy) serveFromL2(n mach.Addr, needWord int) (*window, int) {
	h.stats.L2.Accesses++
	pl, fromAff := h.probeL2Into(&h.probeW, n)
	if pl.has(needWord) {
		if fromAff {
			h.stats.AffHitsL2++
			h.obs.Event(obs.EvAffHitL2, h.l1.geom.NumberToAddr(n), 0)
			h.obs.AttrAffHit(h.l1.geom.NumberToAddr(n))
		}
		h.touchL2(n)
		return pl, h.cfg.Lat.L2Hit
	}
	h.stats.L2.Misses++
	base := h.l1.geom.NumberToAddr(n)
	h.fetchL2FromMem(h.l2.geom.LineNumber(base))
	pl, _ = h.probeL2Into(&h.probeW, n)
	if !pl.has(needWord) {
		panic("core: word absent after L2 memory fetch")
	}
	return pl, h.cfg.Lat.Mem
}

// touchL2 refreshes LRU state for the frame serving L1 line n.
func (h *Hierarchy) touchL2(n mach.Addr) {
	base := h.l1.geom.NumberToAddr(n)
	N := h.l2.geom.LineNumber(base)
	if f := h.l2.frameByTag(N); f != nil {
		h.l2.touch(f)
		return
	}
	if af := h.l2.frameByTag(N ^ h.cfg.Mask); af != nil {
		h.l2.touch(af)
	}
}

// fetchL2FromMem fetches L2 line N from memory together with its
// affiliated line N^Mask (§3.3, L2-memory interface: "both the primary and
// the affiliated lines are fetched. However, before returning the data,
// the cache lines are compressed and only available places from the
// primary line are used to store the compressible items from the
// affiliated line. The memory bandwidth is still the same as before.").
func (h *Hierarchy) fetchL2FromMem(N mach.Addr) {
	words := h.l2.geom.Words()
	base := h.l2.geom.NumberToAddr(N)
	partner := N ^ h.cfg.Mask
	pbase := h.l2.geom.NumberToAddr(partner)

	data := h.memLine
	h.mem.ReadLine(base, data)
	affData := h.memAff
	h.mem.ReadLine(pbase, affData)

	// Bus cost: exactly one uncompressed line's worth of bandwidth; the
	// affiliated words travel in the slack left by compressed words.
	h.stats.MemReadHalves += int64(2 * words)

	pl, aff := &h.l2Pl, &h.l2Aff
	pl.reset()
	aff.reset()
	compCount := int64(0)
	for i := 0; i < words; i++ {
		a := base + mach.Addr(i*mach.WordBytes)
		comp := compressibleAt(data[i], a)
		pl.set(i, data[i], comp)
		if comp {
			compCount++
		}

		pa := pbase + mach.Addr(i*mach.WordBytes)
		if comp && compressibleAt(affData[i], pa) {
			aff.set(i, affData[i], true)
		}
	}
	h.obs.FillWords(int64(words), compCount)
	h.obs.AttrFillFail(base, int64(words)-compCount)

	h.installL2(N, pl, aff)
}

// writebackL2Victim writes a dirty L2 victim's available words to memory.
// The transfer is compressed: a compressible word costs one half-word on
// the bus.
func (h *Hierarchy) writebackL2Victim(ev *evicted) {
	h.stats.L2.Writebacks++
	base := h.l2.geom.NumberToAddr(ev.tag)
	var halves int64
	for i := range ev.vals {
		if !ev.has(i) {
			continue
		}
		a := base + mach.Addr(i*mach.WordBytes)
		h.mem.WriteWord(a, ev.vals[i])
		if compressibleAt(ev.vals[i], a) {
			halves++
		} else {
			halves += 2
		}
	}
	h.stats.MemWriteHalves += halves
}

// CheckInvariants validates the structural invariants of both levels plus
// the cross-level cleanliness rule. Tests call it periodically; it is not
// used on the hot path.
func (h *Hierarchy) CheckInvariants() error {
	if err := h.l1.checkInvariants("L1"); err != nil {
		return err
	}
	return h.l2.checkInvariants("L2")
}

// Drain flushes every dirty line down to memory, L1 first so the freshest
// data wins. Diagnostic only: traffic is not accounted.
func (h *Hierarchy) Drain() {
	flush := func(c *cpc) {
		for s := range c.sets {
			for w := range c.sets[s] {
				f := &c.sets[s][w]
				if !f.valid || !f.dirty {
					continue
				}
				for i, p := range f.pa {
					if p {
						h.mem.WriteWord(c.wordAddr(f.tag, i), f.readPrimary(i, c.wordAddr(f.tag, i)))
					}
				}
				f.dirty = false
			}
		}
	}
	// L2 first, then L1 overwrites with fresher words.
	flush(h.l2)
	flush(h.l1)
}
