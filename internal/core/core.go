// Package core implements the paper's contribution: the CPP
// (Compression-enabled Partial cache line Prefetching) two-level cache
// hierarchy (§3).
//
// Every physical cache frame holds a primary line and, in the half-slots
// freed by storing compressible words in 16-bit form, the compressible
// words of that line's affiliated line — the unique line whose number is
// the primary line's number XOR a mask (0x1, i.e. next-line prefetch).
// Each word slot carries three flag bits: PA (primary available), AA
// (affiliated available) and VCP (primary value compressible). A word can
// sit in the affiliated half-slot only if it is compressible and the
// primary word sharing its slot is compressible too.
//
// Values are genuinely stored compressed: a compressible primary word and
// every affiliated word live in the cache as 16-bit compress.Compressed
// values and are decompressed with the accessing address on every read, so
// a compression bug would surface as a wrong loaded value, not just a
// wrong statistic.
package core

import (
	"fmt"

	"cppcache/internal/cache"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/obs"
)

// Config describes a CPP hierarchy.
type Config struct {
	Name string
	L1   cache.Params
	L2   cache.Params
	Lat  memsys.Latencies

	// Mask selects the affiliated line: affiliated(n) = n XOR Mask on
	// line numbers. The paper uses 0x1 ("the primary and affiliated
	// cache lines are consecutive lines of data ... the next line
	// prefetch policy"). Other masks are an ablation knob.
	Mask mach.Addr

	// VictimPlacement enables salvaging an evicted primary line's
	// compressible words into its affiliated place (§3.3: "before
	// discarding a replaced cache line, we check to see if it is
	// possible to put the line into its affiliated place"). Disabling it
	// is an ablation.
	VictimPlacement bool
}

// DefaultConfig returns the paper's CPP configuration: the BC geometry
// (8K direct-mapped L1 with 64 B lines, 64K 2-way L2 with 128 B lines)
// with next-line affiliation and victim placement enabled.
func DefaultConfig() Config {
	return Config{
		Name:            "CPP",
		L1:              cache.Params{SizeBytes: 8 << 10, Assoc: 1, LineBytes: 64},
		L2:              cache.Params{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 128},
		Lat:             memsys.DefaultLatencies(),
		Mask:            0x1,
		VictimPlacement: true,
	}
}

// Hierarchy is the CPP two-level cache hierarchy over main memory.
type Hierarchy struct {
	cfg   Config
	l1    *cpc
	l2    *cpc
	mem   *mem.Memory
	stats memsys.Stats

	// obs, when non-nil, receives structured events and fill-word
	// compressibility counts; a nil recorder costs one branch per hook.
	obs *obs.Recorder

	// fault, when non-nil, is invoked at the hierarchy's fault-injection
	// points (L1 fill, L2 install) with a site label; installed via
	// SetFaultHook (inspect.go). nil costs one branch per miss.
	fault func(site string)

	// Per-access scratch, reused so the steady-state access path performs
	// no heap allocation. Lifetimes are disjoint by construction: probeW
	// and affW carry L1-sized transfers into l1.install; wbPl/wbAff carry
	// an L1 write-back into l2.install; l2Pl/l2Aff (with the memLine
	// staging buffers) carry a memory fetch into l2.install.
	probeW  window
	affW    window
	wbPl    window
	wbAff   window
	l2Pl    window
	l2Aff   window
	memLine []mach.Word
	memAff  []mach.Word
}

var _ memsys.System = (*Hierarchy)(nil)

// New builds a CPP hierarchy over main memory m.
func New(cfg Config, m *mem.Memory) (*Hierarchy, error) {
	if cfg.Mask == 0 {
		return nil, fmt.Errorf("core: affiliated mask must be nonzero")
	}
	if cfg.L2.LineBytes < cfg.L1.LineBytes {
		return nil, fmt.Errorf("core: L2 line (%d B) smaller than L1 line (%d B)", cfg.L2.LineBytes, cfg.L1.LineBytes)
	}
	l1, err := newCPC(cfg.L1, cfg.Mask)
	if err != nil {
		return nil, fmt.Errorf("core: L1: %w", err)
	}
	l2, err := newCPC(cfg.L2, cfg.Mask)
	if err != nil {
		return nil, fmt.Errorf("core: L2: %w", err)
	}
	h := &Hierarchy{cfg: cfg, l1: l1, l2: l2, mem: m}
	w1, w2 := l1.geom.Words(), l2.geom.Words()
	h.probeW = newWindow(w1)
	h.affW = newWindow(w1)
	h.wbPl = newWindow(w2)
	h.wbAff = newWindow(w2)
	h.l2Pl = newWindow(w2)
	h.l2Aff = newWindow(w2)
	h.memLine = make([]mach.Word, w2)
	h.memAff = make([]mach.Word, w2)
	return h, nil
}

// Name implements memsys.System.
func (h *Hierarchy) Name() string { return h.cfg.Name }

// Stats implements memsys.System.
func (h *Hierarchy) Stats() *memsys.Stats { return &h.stats }

// SetRecorder implements obs.Attachable: it attaches the observability
// recorder (nil detaches) and connects the statistics block for interval
// snapshotting.
func (h *Hierarchy) SetRecorder(r *obs.Recorder) {
	h.obs = r
	r.AttachStats(&h.stats)
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Read implements memsys.System.
func (h *Hierarchy) Read(a mach.Addr) (mach.Word, int) {
	a = mach.WordAlign(a)
	h.stats.L1.Accesses++
	n := h.l1.geom.LineNumber(a)
	w := h.l1.geom.WordIndex(a)

	if f := h.l1.frameByTag(n); f != nil && f.pa[w] {
		h.l1.touch(f)
		return f.readPrimary(w, a), h.cfg.Lat.L1Hit
	}
	// The affiliated place: frame whose primary line is n's partner.
	if af := h.l1.frameByTag(n ^ h.cfg.Mask); af != nil && af.aa[w] {
		h.l1.touch(af)
		h.stats.AffHitsL1++
		h.obs.Event(obs.EvAffHitL1, a, 0)
		h.obs.AttrAffHit(a)
		return af.readAff(w, a), h.cfg.Lat.AffHit
	}

	h.stats.L1.Misses++
	h.obs.AttrMiss(a)
	lat := h.fillL1(n, w)
	f := h.l1.frameByTag(n)
	if f == nil || !f.pa[w] {
		panic("core: word absent after L1 fill")
	}
	return f.readPrimary(w, a), lat
}

// Write implements memsys.System.
func (h *Hierarchy) Write(a mach.Addr, v mach.Word) int {
	a = mach.WordAlign(a)
	h.stats.L1.Accesses++
	n := h.l1.geom.LineNumber(a)
	w := h.l1.geom.WordIndex(a)

	if f := h.l1.frameByTag(n); f != nil && f.pa[w] {
		h.l1.touch(f)
		h.writePrimaryWord(f, w, a, v)
		return h.cfg.Lat.L1Hit
	}

	if af := h.l1.frameByTag(n ^ h.cfg.Mask); af != nil && af.aa[w] {
		// §3.3: "a write hit in the affiliated cache line will bring
		// the line to its primary place". The promoted line keeps the
		// words held in the affiliated place plus whatever the L2 has
		// on chip; no memory access is needed.
		h.l1.touch(af)
		h.stats.AffHitsL1++
		h.stats.Promotions++
		h.obs.Event(obs.EvPromote, a, 0)
		h.obs.AttrAffHit(a)
		h.promoteL1(n)
		f := h.l1.frameByTag(n)
		if f == nil || !f.pa[w] {
			panic("core: word absent after promotion")
		}
		h.writePrimaryWord(f, w, a, v)
		return h.cfg.Lat.AffHit
	}

	h.stats.L1.Misses++
	h.obs.AttrMiss(a)
	lat := h.fillL1(n, w)
	f := h.l1.frameByTag(n)
	if f == nil || !f.pa[w] {
		panic("core: word absent after L1 fill on write")
	}
	h.writePrimaryWord(f, w, a, v)
	return lat
}

// writePrimaryWord stores v into an available primary word, handling the
// compressible -> incompressible transition: the primary word wins the
// full slot and the affiliated word sharing it is evicted (§3.3).
func (h *Hierarchy) writePrimaryWord(f *frame, w int, a mach.Addr, v mach.Word) {
	wasComp := f.pc[w]
	f.writePrimary(w, a, v)
	if wasComp && !f.pc[w] && f.aa[w] {
		f.aa[w] = false
		h.stats.ConflictEvictions++
		h.obs.Event(obs.EvCompTransition, a, 0)
	}
	f.dirty = true
}

// fillL1 fetches L1 line n from the L2 side and installs it (merging into
// a partial resident line when one exists), returning the access latency.
// needWord is the word index that must be available afterwards.
func (h *Hierarchy) fillL1(n mach.Addr, needWord int) int {
	if h.fault != nil {
		h.fault("cpp.fill-l1")
	}
	pl, lat := h.serveFromL2(n, needWord)

	// Affiliated prefetch data for line n^Mask rides along for free where
	// both halves of a slot are compressible (§3.1): keep exactly the
	// slots whose primary word is present and compressible — one mask
	// intersection over the precomputed per-line bitmaps.
	aff, _ := h.probeL2Into(&h.affW, n^h.cfg.Mask)
	aff.present &= aff.comp & pl.present & pl.comp

	h.installL1(n, pl, aff)
	return lat
}

// promoteL1 moves line n from its affiliated place to its primary place,
// combining the affiliated words with whatever the L2 holds on chip.
func (h *Hierarchy) promoteL1(n mach.Addr) {
	pl, _ := h.probeL2Into(&h.probeW, n) // on-chip words only; no memory access
	// No affiliated payload accompanies a promotion: the line's partner
	// is primary-resident in L1 (it hosted the affiliated copy), so its
	// data must not be duplicated.
	h.affW.reset()
	h.installL1(n, pl, &h.affW)
}

// installL1 installs (or merges) line n with payload pl and affiliated
// payload aff, handling eviction, write-back and victim placement.
func (h *Hierarchy) installL1(n mach.Addr, pl, aff *window) {
	var affBefore int64
	if h.obs.TraceEnabled() {
		affBefore = h.stats.AffWordsPrefetchedL1
	}
	ev := h.l1.install(n, pl, aff, &h.stats.AffWordsPrefetchedL1)
	if ev != nil {
		h.obs.Event(obs.EvEvictL1, h.l1.geom.NumberToAddr(ev.tag), b2i(ev.dirty))
		if ev.dirty {
			h.writebackL1Victim(ev)
		}
		if h.cfg.VictimPlacement {
			if h.l1.placeVictim(ev) {
				h.stats.AffPlacements++
				h.obs.Event(obs.EvVictimPlace, h.l1.geom.NumberToAddr(ev.tag), 0)
			}
		}
	}
	if h.obs.TraceEnabled() {
		h.obs.Event(obs.EvFillL1, h.l1.geom.NumberToAddr(n), int64(pl.count()))
		if d := h.stats.AffWordsPrefetchedL1 - affBefore; d > 0 {
			h.obs.Event(obs.EvAffPrefetch, h.l1.geom.NumberToAddr(n^h.cfg.Mask), d)
		}
	}
	if !pl.full() {
		h.stats.PartialFillsL1++
	}
}

// b2i renders a flag as an event-aux value.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// writebackL1Victim sends a dirty L1 victim's available words toward
// memory: merged into the L2 primary copy when resident, else written to
// memory (refreshing any clean affiliated mirror the L2 holds).
func (h *Hierarchy) writebackL1Victim(ev *evicted) {
	h.stats.L1.Writebacks++
	base := h.l1.geom.NumberToAddr(ev.tag)
	N := h.l2.geom.LineNumber(base)
	off := h.l2.geom.WordIndex(base)

	if f := h.l2.frameByTag(N); f != nil {
		for i := range ev.vals {
			if !ev.has(i) {
				continue
			}
			j := off + i
			a := base + mach.Addr(i*mach.WordBytes)
			wasComp := f.pc[j]
			f.pa[j] = true
			f.writePrimary(j, a, ev.vals[i])
			if wasComp && !f.pc[j] && f.aa[j] {
				f.aa[j] = false
				h.stats.ConflictEvictions++
			}
		}
		f.dirty = true
		return
	}

	// Not primary-resident in L2 (the line may exist only as a clean
	// affiliated mirror, or not at all): write-allocate a partial primary
	// L2 line. install drops the now-redundant affiliated mirror after
	// salvaging its words into the slots the write-back does not cover,
	// so the single-copy invariant holds and no stale prefetch data can
	// be served. The dirty data stays on chip; it reaches memory only
	// when the L2 eventually evicts the line.
	h.stats.L1WbOffChip++
	pl := &h.wbPl
	pl.reset()
	for i := range ev.vals {
		if !ev.has(i) {
			continue
		}
		j := off + i
		a := base + mach.Addr(i*mach.WordBytes)
		pl.set(j, ev.vals[i], compressibleAt(ev.vals[i], a))
	}
	h.wbAff.reset()
	h.installL2(N, pl, &h.wbAff)
	f := h.l2.frameByTag(N)
	if f == nil {
		panic("core: L2 frame absent after write-back allocation")
	}
	f.dirty = true
}

// installL2 installs (or merges) L2 line N, handling the victim's
// write-back and affiliated placement. Shared by the memory-fetch and
// write-back-allocate paths.
func (h *Hierarchy) installL2(N mach.Addr, pl, aff *window) {
	if h.fault != nil {
		h.fault("cpp.install-l2")
	}
	var affBefore int64
	if h.obs.TraceEnabled() {
		affBefore = h.stats.AffWordsPrefetchedL2
	}
	ev := h.l2.install(N, pl, aff, &h.stats.AffWordsPrefetchedL2)
	if ev != nil {
		h.obs.Event(obs.EvEvictL2, h.l2.geom.NumberToAddr(ev.tag), b2i(ev.dirty))
		if ev.dirty {
			h.writebackL2Victim(ev)
		}
		if h.cfg.VictimPlacement {
			if h.l2.placeVictim(ev) {
				h.stats.AffPlacements++
				h.obs.Event(obs.EvVictimPlace, h.l2.geom.NumberToAddr(ev.tag), 0)
			}
		}
	}
	if h.obs.TraceEnabled() {
		h.obs.Event(obs.EvFillL2, h.l2.geom.NumberToAddr(N), int64(pl.count()))
		if d := h.stats.AffWordsPrefetchedL2 - affBefore; d > 0 {
			h.obs.Event(obs.EvAffPrefetch, h.l2.geom.NumberToAddr(N^h.cfg.Mask), d)
		}
	}
}
