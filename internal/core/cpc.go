package core

import (
	"fmt"

	"cppcache/internal/cache"
	"cppcache/internal/compress"
	"cppcache/internal/mach"
)

// compressibleAt is a local alias to keep call sites short.
func compressibleAt(v mach.Word, a mach.Addr) bool { return compress.Compressible(v, a) }

// frame is one physical cache frame of the compression cache (Figure 7).
// It hosts a primary line (tag) and, in the half-slots freed by compressed
// primary words, compressible words of the affiliated line tag^mask.
//
// Storage is faithful to the hardware: a compressible primary word and any
// affiliated word are held as 16-bit compressed values and decompressed
// with the accessing address on each read.
type frame struct {
	valid bool
	tag   mach.Addr // primary line number
	dirty bool      // primary line dirty (affiliated copies are always clean)
	used  uint64    // LRU timestamp

	pa []bool // PA: primary word available
	pc []bool // VCP: primary word stored compressed (implies pa)
	aa []bool // AA: affiliated word present (implies pa && pc)

	pd32 []mach.Word           // primary words stored uncompressed (pa && !pc)
	pd16 []compress.Compressed // primary words stored compressed (pa && pc)
	ad16 []compress.Compressed // affiliated words (aa)
}

func newFrame(words int) frame {
	return frame{
		pa:   make([]bool, words),
		pc:   make([]bool, words),
		aa:   make([]bool, words),
		pd32: make([]mach.Word, words),
		pd16: make([]compress.Compressed, words),
		ad16: make([]compress.Compressed, words),
	}
}

// clear invalidates the frame in place, preserving the allocated storage.
func (f *frame) clear() {
	f.valid = false
	f.dirty = false
	for i := range f.pa {
		f.pa[i] = false
		f.pc[i] = false
		f.aa[i] = false
	}
}

// readPrimary returns the primary word at slot w, whose byte address is a,
// decompressing it if stored compressed. The caller must ensure pa[w].
func (f *frame) readPrimary(w int, a mach.Addr) mach.Word {
	if f.pc[w] {
		return compress.Decompress(f.pd16[w], a)
	}
	return f.pd32[w]
}

// writePrimary stores v as the primary word at slot w (byte address a),
// choosing the compressed or uncompressed form and updating VCP.
// It does not touch the dirty bit or the affiliated half; callers handle
// the compressible -> incompressible interaction.
func (f *frame) writePrimary(w int, a mach.Addr, v mach.Word) {
	if c, ok := compress.Compress(v, a); ok {
		f.pc[w] = true
		f.pd16[w] = c
	} else {
		f.pc[w] = false
		f.pd32[w] = v
	}
	f.pa[w] = true
}

// readAff returns the affiliated word at slot w, whose byte address is a.
// The caller must ensure aa[w].
func (f *frame) readAff(w int, a mach.Addr) mach.Word {
	return compress.Decompress(f.ad16[w], a)
}

// setAff stores v (which must be compressible at address a) into the
// affiliated half-slot w.
func (f *frame) setAff(w int, a mach.Addr, v mach.Word) {
	c, ok := compress.Compress(v, a)
	if !ok {
		panic("core: setAff with incompressible value")
	}
	f.aa[w] = true
	f.ad16[w] = c
}

// window is a partial line in transit: per-slot availability and
// compressibility as per-line bitmasks (precomputed once, tested with
// single AND/shift operations on the hot path) plus the logical
// (uncompressed) values. Transfers carry logical values; each cache
// re-compresses on installation. Windows are scratch buffers owned by the
// Hierarchy and reused across accesses, so the steady state allocates
// nothing.
type window struct {
	present uint64
	comp    uint64
	vals    []mach.Word
}

func newWindow(words int) window {
	return window{vals: make([]mach.Word, words)}
}

// reset empties the window for reuse.
func (w *window) reset() { w.present, w.comp = 0, 0 }

// has reports whether slot i holds a value.
func (w *window) has(i int) bool { return w.present&(1<<uint(i)) != 0 }

// isComp reports whether slot i's value is compressible.
func (w *window) isComp(i int) bool { return w.comp&(1<<uint(i)) != 0 }

// set stores v into slot i with the given compressibility.
func (w *window) set(i int, v mach.Word, comp bool) {
	w.present |= 1 << uint(i)
	if comp {
		w.comp |= 1 << uint(i)
	} else {
		w.comp &^= 1 << uint(i)
	}
	w.vals[i] = v
}

// drop removes slot i.
func (w *window) drop(i int) { w.present &^= 1 << uint(i) }

// full reports whether every slot is present.
func (w *window) full() bool {
	words := len(w.vals)
	if words == 64 {
		return w.present == ^uint64(0)
	}
	return w.present == (uint64(1)<<uint(words))-1
}

// count returns the number of present slots.
func (w *window) count() int {
	n := 0
	for p := w.present; p != 0; p &= p - 1 {
		n++
	}
	return n
}

// evicted describes a primary line displaced by install. Each cpc owns one
// evicted scratch, valid until that level's next install.
type evicted struct {
	tag     mach.Addr
	dirty   bool
	present uint64
	vals    []mach.Word
}

// has reports whether slot i of the evicted line holds a value.
func (ev *evicted) has(i int) bool { return ev.present&(1<<uint(i)) != 0 }

// cpc is one level of the compression cache: a set-associative array of
// frames with true-LRU replacement and primary/affiliated lookup.
type cpc struct {
	p       cache.Params
	geom    mach.LineGeom
	mask    mach.Addr
	setMask mach.Addr
	sets    [][]frame
	tick    uint64

	// evScratch backs the *evicted returned by install; it is valid until
	// this level's next install.
	evScratch evicted
}

func newCPC(p cache.Params, mask mach.Addr) (*cpc, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &cpc{
		p:       p,
		geom:    mach.LineGeom{LineBytes: p.LineBytes},
		mask:    mask,
		setMask: mach.Addr(p.Sets() - 1),
	}
	words := c.geom.Words()
	if words > 64 {
		// Transfer windows track per-slot state in 64-bit masks; 64 words
		// (256-byte lines) is far beyond every geometry the paper sweeps.
		return nil, fmt.Errorf("core: line size %d B exceeds the 64-word window limit", p.LineBytes)
	}
	c.evScratch.vals = make([]mach.Word, words)
	c.sets = make([][]frame, p.Sets())
	for i := range c.sets {
		ways := make([]frame, p.Assoc)
		for w := range ways {
			ways[w] = newFrame(words)
		}
		c.sets[i] = ways
	}
	return c, nil
}

// frameByTag returns the frame whose primary line is n, or nil.
func (c *cpc) frameByTag(n mach.Addr) *frame {
	set := c.sets[int(n&c.setMask)]
	for i := range set {
		if set[i].valid && set[i].tag == n {
			return &set[i]
		}
	}
	return nil
}

// touch marks the frame most recently used.
func (c *cpc) touch(f *frame) {
	c.tick++
	f.used = c.tick
}

// victim selects the replacement frame in n's set: an invalid way if any,
// else the least recently used.
func (c *cpc) victim(n mach.Addr) *frame {
	set := c.sets[int(n&c.setMask)]
	best := &set[0]
	for i := range set {
		f := &set[i]
		if !f.valid {
			return f
		}
		if f.used < best.used {
			best = f
		}
	}
	return best
}

// wordAddr returns the byte address of word w of line n.
func (c *cpc) wordAddr(n mach.Addr, w int) mach.Addr {
	return c.geom.NumberToAddr(n) + mach.Addr(w*mach.WordBytes)
}

// install merges line n's payload pl into a resident partial frame, or
// installs a fresh frame (choosing and extracting a victim). aff carries
// prefetched words of line n^mask; they are accepted only into slots whose
// primary word is present and compressible, and are discarded wholesale if
// the partner line is primary-resident (§3.3: "the prefetched affiliated
// line is discarded if it is already in the cache"). install returns the
// displaced line, if any, for the hierarchy to write back and place.
func (c *cpc) install(n mach.Addr, pl, aff *window, prefCtr *int64) *evicted {
	partner := n ^ c.mask
	partnerResident := c.frameByTag(partner) != nil

	f := c.frameByTag(n)
	var ev *evicted
	if f == nil {
		f = c.victim(n)
		if f.valid {
			ev = &c.evScratch
			ev.tag = f.tag
			ev.dirty = f.dirty
			ev.present = 0
			for i, p := range f.pa {
				if p {
					ev.present |= 1 << uint(i)
					ev.vals[i] = f.readPrimary(i, c.wordAddr(f.tag, i))
				}
			}
			// Eviction also drops the frame's affiliated copies (of
			// f.tag^mask); they are clean mirrors, safe to lose.
		}
		f.clear()
		f.valid = true
		f.tag = n
		// The victim may have been the partner line itself; recompute.
		partnerResident = c.frameByTag(partner) != nil
	}

	// Merge payload into empty slots only: resident words are newer
	// (they may be dirty) than anything arriving from below.
	for i := range f.pa {
		if !pl.has(i) || f.pa[i] {
			continue
		}
		f.writePrimary(i, c.wordAddr(n, i), pl.vals[i])
	}

	// An affiliated copy of n elsewhere is now redundant: n is primary.
	// Salvage its words into still-missing slots first (they are clean
	// mirrors, at least as fresh as the payload), then drop it.
	if pf := c.frameByTag(partner); pf != nil {
		for i, a := range pf.aa {
			if !a {
				continue
			}
			if !f.pa[i] {
				f.writePrimary(i, c.wordAddr(n, i), pf.readAff(i, c.wordAddr(n, i)))
			}
			pf.aa[i] = false
		}
	}

	// Accept affiliated prefetch data.
	if !partnerResident {
		prefetched := int64(0)
		for i := range f.pa {
			if !aff.has(i) || !f.pa[i] || !f.pc[i] || f.aa[i] {
				continue
			}
			v := aff.vals[i]
			a := c.wordAddr(partner, i)
			if !compressibleAt(v, a) {
				continue
			}
			f.setAff(i, a, v)
			prefetched++
		}
		if prefCtr != nil {
			*prefCtr += prefetched
		}
	}

	c.touch(f)
	return ev
}

// placeVictim salvages an evicted line's compressible words into its
// affiliated place — the frame whose primary line is the victim's partner
// — where that frame's primary words are present and compressible. Only a
// clean partial copy is kept (§3.3). It reports whether any word was
// placed.
func (c *cpc) placeVictim(ev *evicted) bool {
	target := c.frameByTag(ev.tag ^ c.mask)
	if target == nil {
		return false
	}
	placed := false
	for i := range target.pa {
		if !ev.has(i) || !target.pa[i] || !target.pc[i] {
			continue
		}
		a := c.wordAddr(ev.tag, i)
		if !compressibleAt(ev.vals[i], a) {
			continue
		}
		target.setAff(i, a, ev.vals[i])
		placed = true
	}
	return placed
}

// checkInvariants validates the structural invariants of the level.
func (c *cpc) checkInvariants(level string) error {
	for s := range c.sets {
		seen := map[mach.Addr]bool{}
		for w := range c.sets[s] {
			f := &c.sets[s][w]
			if !f.valid {
				continue
			}
			if int(f.tag&c.setMask) != s {
				return fmt.Errorf("%s: frame tag %#x in wrong set %d", level, f.tag, s)
			}
			if seen[f.tag] {
				return fmt.Errorf("%s: duplicate primary line %#x in set %d", level, f.tag, s)
			}
			seen[f.tag] = true
			for i := range f.pa {
				if f.pc[i] && !f.pa[i] {
					return fmt.Errorf("%s: line %#x word %d: VCP without PA", level, f.tag, i)
				}
				if f.aa[i] && !(f.pa[i] && f.pc[i]) {
					return fmt.Errorf("%s: line %#x word %d: AA without compressible primary", level, f.tag, i)
				}
				if f.pa[i] && f.pc[i] {
					v := f.readPrimary(i, c.wordAddr(f.tag, i))
					if !compressibleAt(v, c.wordAddr(f.tag, i)) {
						return fmt.Errorf("%s: line %#x word %d: compressed slot holds incompressible value %#x", level, f.tag, i, v)
					}
				}
			}
			// Single-copy: if this frame holds affiliated words of
			// f.tag^mask, that line must not be primary-resident.
			hasAff := false
			for _, a := range f.aa {
				if a {
					hasAff = true
					break
				}
			}
			if hasAff && c.frameByTag(f.tag^c.mask) != nil {
				return fmt.Errorf("%s: line %#x resident both as primary and as affiliated copy", level, f.tag^c.mask)
			}
		}
	}
	return nil
}
