// Package stats holds the small numeric and presentation helpers used by
// the experiment drivers: geometric means, normalised tables and the
// ASCII rendering that mirrors the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of positive values; zero or negative
// entries are skipped (they would otherwise poison the product).
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Table is a named grid of float cells: rows are benchmarks, columns are
// configurations or metrics.
type Table struct {
	Title string
	Note  string
	Rows  []string
	Cols  []string
	Cells [][]float64 // [row][col]
}

// NewTable allocates a zeroed table.
func NewTable(title string, rows, cols []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{
		Title: title,
		Rows:  append([]string(nil), rows...),
		Cols:  append([]string(nil), cols...),
		Cells: cells,
	}
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// RowIndex returns the index of the named row, or -1.
func (t *Table) RowIndex(name string) int {
	for i, r := range t.Rows {
		if r == name {
			return i
		}
	}
	return -1
}

// Set stores a cell by names, panicking on unknown names (programming
// error in an experiment driver).
func (t *Table) Set(row, col string, v float64) {
	ri, ci := t.RowIndex(row), t.ColIndex(col)
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("stats: unknown cell (%q, %q) in table %q", row, col, t.Title))
	}
	t.Cells[ri][ci] = v
}

// Get reads a cell by names.
func (t *Table) Get(row, col string) float64 {
	ri, ci := t.RowIndex(row), t.ColIndex(col)
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("stats: unknown cell (%q, %q) in table %q", row, col, t.Title))
	}
	return t.Cells[ri][ci]
}

// Col returns a copy of the named column's values.
func (t *Table) Col(name string) []float64 {
	ci := t.ColIndex(name)
	if ci < 0 {
		panic(fmt.Sprintf("stats: unknown column %q", name))
	}
	out := make([]float64, len(t.Rows))
	for i := range t.Rows {
		out[i] = t.Cells[i][ci]
	}
	return out
}

// Normalized returns a new table with every row divided by that row's
// value in the base column (the paper normalises everything to BC = 100%).
func (t *Table) Normalized(baseCol string) *Table {
	bi := t.ColIndex(baseCol)
	if bi < 0 {
		panic(fmt.Sprintf("stats: unknown base column %q", baseCol))
	}
	out := NewTable(t.Title+" (normalized to "+baseCol+")", t.Rows, t.Cols)
	out.Note = t.Note
	for r := range t.Rows {
		base := t.Cells[r][bi]
		for c := range t.Cols {
			if base != 0 {
				out.Cells[r][c] = t.Cells[r][c] / base
			}
		}
	}
	return out
}

// Diff returns a table of cell-wise differences t - other over the rows
// and columns the two tables share, in the receiver's order. Rows or
// columns present in only one table are dropped, so tables built from
// different benchmark subsets or metric sets still diff cleanly.
func (t *Table) Diff(other *Table) *Table {
	var rows, cols []string
	for _, r := range t.Rows {
		if other.RowIndex(r) >= 0 {
			rows = append(rows, r)
		}
	}
	for _, c := range t.Cols {
		if other.ColIndex(c) >= 0 {
			cols = append(cols, c)
		}
	}
	out := NewTable(t.Title+" - "+other.Title, rows, cols)
	for _, r := range rows {
		for _, c := range cols {
			out.Set(r, c, t.Get(r, c)-other.Get(r, c))
		}
	}
	return out
}

// WithGeomeanRow returns a copy with an extra "geomean" row.
func (t *Table) WithGeomeanRow() *Table {
	out := NewTable(t.Title, append(append([]string(nil), t.Rows...), "geomean"), t.Cols)
	out.Note = t.Note
	copy(out.Cells, t.Cells)
	for c := range t.Cols {
		col := make([]float64, len(t.Rows))
		for r := range t.Rows {
			out.Cells[r][c] = t.Cells[r][c]
			col[r] = t.Cells[r][c]
		}
		out.Cells[len(t.Rows)][c] = Geomean(col)
	}
	return out
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "  (%s)\n", t.Note)
	}
	rowW := len("benchmark")
	for _, r := range t.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := 9
	for _, c := range t.Cols {
		if len(c)+1 > colW {
			colW = len(c) + 1
		}
	}
	fmt.Fprintf(&sb, "%-*s", rowW+2, "benchmark")
	for _, c := range t.Cols {
		fmt.Fprintf(&sb, "%*s", colW, c)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", rowW+2+colW*len(t.Cols)))
	for r, name := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", rowW+2, name)
		for c := range t.Cols {
			fmt.Fprintf(&sb, "%*.3f", colW, t.Cells[r][c])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark")
	for _, c := range t.Cols {
		sb.WriteString(",")
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
	for r, name := range t.Rows {
		sb.WriteString(name)
		for c := range t.Cols {
			fmt.Fprintf(&sb, ",%.6g", t.Cells[r][c])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Map returns the table as nested maps (row -> column -> value), the form
// the golden-file regression tests serialise to JSON.
func (t *Table) Map() map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(t.Rows))
	for r, name := range t.Rows {
		row := make(map[string]float64, len(t.Cols))
		for c, col := range t.Cols {
			row[col] = t.Cells[r][c]
		}
		out[name] = row
	}
	return out
}

// SortedRows returns a copy of the table with rows sorted by name, for
// stable output regardless of construction order.
func (t *Table) SortedRows() *Table {
	idx := make([]int, len(t.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t.Rows[idx[a]] < t.Rows[idx[b]] })
	out := NewTable(t.Title, nil, t.Cols)
	out.Note = t.Note
	for _, i := range idx {
		out.Rows = append(out.Rows, t.Rows[i])
		out.Cells = append(out.Cells, append([]float64(nil), t.Cells[i]...))
	}
	return out
}
