package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 8}, 4},
		{[]float64{4}, 4},
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{2, 0, 8}, 4}, // zeros skipped
	}
	for _, c := range cases {
		if got := Geomean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	f := func(a, b, c uint16) bool {
		vals := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := Geomean(vals)
		scaled := make([]float64, len(vals))
		for i, v := range vals {
			scaled[i] = v * 2
		}
		return math.Abs(Geomean(scaled)-2*g) < 1e-6*g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func mkTable() *Table {
	t := NewTable("test", []string{"a", "b"}, []string{"BC", "CPP"})
	t.Set("a", "BC", 10)
	t.Set("a", "CPP", 5)
	t.Set("b", "BC", 4)
	t.Set("b", "CPP", 8)
	return t
}

func TestTableSetGet(t *testing.T) {
	tab := mkTable()
	if got := tab.Get("a", "CPP"); got != 5 {
		t.Errorf("Get = %v", got)
	}
	if got := tab.Col("BC"); got[0] != 10 || got[1] != 4 {
		t.Errorf("Col = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Get of unknown cell did not panic")
		}
	}()
	tab.Get("zzz", "BC")
}

func TestNormalized(t *testing.T) {
	n := mkTable().Normalized("BC")
	if got := n.Get("a", "BC"); got != 1 {
		t.Errorf("base column = %v", got)
	}
	if got := n.Get("a", "CPP"); got != 0.5 {
		t.Errorf("a/CPP = %v", got)
	}
	if got := n.Get("b", "CPP"); got != 2 {
		t.Errorf("b/CPP = %v", got)
	}
}

func TestWithGeomeanRow(t *testing.T) {
	g := mkTable().WithGeomeanRow()
	if g.Rows[len(g.Rows)-1] != "geomean" {
		t.Fatal("no geomean row")
	}
	want := math.Sqrt(10 * 4)
	if got := g.Get("geomean", "BC"); math.Abs(got-want) > 1e-9 {
		t.Errorf("geomean BC = %v, want %v", got, want)
	}
	// The original is not mutated.
	if len(mkTable().Rows) != 2 {
		t.Error("original mutated")
	}
}

func TestStringAndCSV(t *testing.T) {
	tab := mkTable()
	tab.Note = "a note"
	s := tab.String()
	for _, want := range []string{"test", "a note", "BC", "CPP", "10.000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "benchmark,BC,CPP\n") {
		t.Errorf("CSV header: %q", csv)
	}
	if !strings.Contains(csv, "a,10,5") {
		t.Errorf("CSV rows: %q", csv)
	}
}

func TestSortedRows(t *testing.T) {
	tab := NewTable("x", []string{"zz", "aa"}, []string{"c"})
	tab.Set("zz", "c", 1)
	tab.Set("aa", "c", 2)
	s := tab.SortedRows()
	if s.Rows[0] != "aa" || s.Get("aa", "c") != 2 {
		t.Errorf("sorted = %v", s.Rows)
	}
}

func TestDiff(t *testing.T) {
	a := NewTable("A", []string{"r1", "r2", "r3"}, []string{"x", "y"})
	a.Set("r1", "x", 10)
	a.Set("r1", "y", 20)
	a.Set("r2", "x", 5)
	a.Set("r2", "y", 7)
	a.Set("r3", "x", 1)

	b := NewTable("B", []string{"r1", "r2"}, []string{"x", "y", "z"})
	b.Set("r1", "x", 4)
	b.Set("r1", "y", 25)
	b.Set("r2", "x", 5)
	b.Set("r2", "z", 99)

	d := a.Diff(b)
	if got, want := d.Title, "A - B"; got != want {
		t.Errorf("title = %q, want %q", got, want)
	}
	// r3 exists only in a; z exists only in b: both dropped.
	if len(d.Rows) != 2 || d.Rows[0] != "r1" || d.Rows[1] != "r2" {
		t.Fatalf("rows = %v, want [r1 r2]", d.Rows)
	}
	if len(d.Cols) != 2 || d.Cols[0] != "x" || d.Cols[1] != "y" {
		t.Fatalf("cols = %v, want [x y]", d.Cols)
	}
	cases := []struct {
		row, col string
		want     float64
	}{
		{"r1", "x", 6}, {"r1", "y", -5}, {"r2", "x", 0}, {"r2", "y", 7},
	}
	for _, c := range cases {
		if got := d.Get(c.row, c.col); got != c.want {
			t.Errorf("Diff(%s,%s) = %v, want %v", c.row, c.col, got, c.want)
		}
	}
}

func TestDiffSelfIsZero(t *testing.T) {
	a := NewTable("A", []string{"r"}, []string{"c"})
	a.Set("r", "c", 3.5)
	d := a.Diff(a)
	if got := d.Get("r", "c"); got != 0 {
		t.Errorf("self-diff = %v, want 0", got)
	}
}

func TestDiffDisjoint(t *testing.T) {
	a := NewTable("A", []string{"r1"}, []string{"x"})
	b := NewTable("B", []string{"r2"}, []string{"y"})
	d := a.Diff(b)
	if len(d.Rows) != 0 || len(d.Cols) != 0 {
		t.Errorf("disjoint diff has rows=%v cols=%v, want empty", d.Rows, d.Cols)
	}
	if d.String() == "" {
		t.Error("empty diff should still render a header")
	}
}

func TestDiffReceiverOrderWins(t *testing.T) {
	a := NewTable("A", []string{"r2", "r1"}, []string{"y", "x"})
	a.Set("r1", "x", 1)
	a.Set("r2", "y", 2)
	b := NewTable("B", []string{"r1", "r2", "r3"}, []string{"x", "y"})
	d := a.Diff(b)
	if len(d.Rows) != 2 || d.Rows[0] != "r2" || d.Rows[1] != "r1" {
		t.Errorf("rows = %v, want receiver order [r2 r1]", d.Rows)
	}
	if len(d.Cols) != 2 || d.Cols[0] != "y" || d.Cols[1] != "x" {
		t.Errorf("cols = %v, want receiver order [y x]", d.Cols)
	}
	if got := d.Get("r1", "x"); got != 1 {
		t.Errorf("Diff(r1,x) = %v, want 1", got)
	}
}
