// Package energy estimates the dynamic energy of a simulated run from the
// hierarchy's event counts. The paper's related work (§5) observes that
// data compression had until then been adapted into caches "mainly for
// reducing power consumption"; this model lets the five configurations be
// compared on that axis too.
//
// The estimate is a simple linear event model: each L1 access, L2 access,
// bus half-word transfer and DRAM access costs a fixed energy. The
// default coefficients are CACTI-class order-of-magnitude values for a
// 2003-era 0.13um process; they are knobs, not measurements — only the
// relative comparison between configurations is meaningful, which is all
// the experiments use.
package energy

import (
	"fmt"

	"cppcache/internal/memsys"
)

// Params holds per-event energies in picojoules.
type Params struct {
	L1AccessPJ   float64 // per L1 read/write (tag + data)
	L2AccessPJ   float64 // per L2 access
	BusHalfPJ    float64 // per 16-bit half-word on the off-chip bus
	MemAccessPJ  float64 // per DRAM line access (activate + transfer overhead)
	CompressPJ   float64 // per word compressed or decompressed
	ExtraFlagsPJ float64 // per L1 access, CPP's 3-bits-per-word overhead (~10% array growth)
}

// Default returns the reference coefficients.
func Default() Params {
	return Params{
		L1AccessPJ:   20,
		L2AccessPJ:   120,
		BusHalfPJ:    16,
		MemAccessPJ:  2200,
		CompressPJ:   1.5,
		ExtraFlagsPJ: 2,
	}
}

// Breakdown is an energy estimate in nanojoules, by component.
type Breakdown struct {
	L1NJ    float64
	L2NJ    float64
	BusNJ   float64
	MemNJ   float64
	CodecNJ float64 // compressor/decompressor activity
	TotalNJ float64
}

// String renders the breakdown compactly.
func (b Breakdown) String() string {
	return fmt.Sprintf("total %.1f nJ (L1 %.1f, L2 %.1f, bus %.1f, mem %.1f, codec %.1f)",
		b.TotalNJ, b.L1NJ, b.L2NJ, b.BusNJ, b.MemNJ, b.CodecNJ)
}

// Estimate computes the breakdown for a run's statistics. compressing
// marks configurations with compressor hardware (BCC, LCC, CPP): they pay
// codec energy on traffic and, for CPP, the per-word flag overhead.
func Estimate(s *memsys.Stats, p Params, compressing bool, cppFlags bool) Breakdown {
	var b Breakdown
	b.L1NJ = float64(s.L1.Accesses) * p.L1AccessPJ / 1000
	if cppFlags {
		b.L1NJ += float64(s.L1.Accesses) * p.ExtraFlagsPJ / 1000
	}
	l2Events := s.L2.Accesses + s.L2.Writebacks + s.L1.Writebacks
	b.L2NJ = float64(l2Events) * p.L2AccessPJ / 1000
	halves := s.MemReadHalves + s.MemWriteHalves
	b.BusNJ = float64(halves) * p.BusHalfPJ / 1000
	memEvents := s.L2.Misses + s.L2.Writebacks + s.PfIssuedL1 + s.PfIssuedL2
	b.MemNJ = float64(memEvents) * p.MemAccessPJ / 1000
	if compressing {
		// Every transferred half-word passed through the codec once;
		// approximate words as halves/2.
		b.CodecNJ = float64(halves) / 2 * p.CompressPJ / 1000
	}
	b.TotalNJ = b.L1NJ + b.L2NJ + b.BusNJ + b.MemNJ + b.CodecNJ
	return b
}

// ForConfig returns the Estimate flags for a configuration name.
func ForConfig(name string) (compressing, cppFlags bool) {
	switch name {
	case "BCC", "LCC":
		return true, false
	case "CPP":
		return true, true
	default:
		return false, false
	}
}
