package energy

import (
	"strings"
	"testing"

	"cppcache/internal/memsys"
)

func sampleStats() *memsys.Stats {
	return &memsys.Stats{
		L1:             memsys.LevelStats{Accesses: 1000, Misses: 100, Writebacks: 10},
		L2:             memsys.LevelStats{Accesses: 100, Misses: 20, Writebacks: 5},
		MemReadHalves:  640,
		MemWriteHalves: 160,
	}
}

func TestEstimateComponents(t *testing.T) {
	p := Default()
	b := Estimate(sampleStats(), p, false, false)
	if b.L1NJ != 1000*p.L1AccessPJ/1000 {
		t.Errorf("L1NJ = %v", b.L1NJ)
	}
	if b.CodecNJ != 0 {
		t.Errorf("non-compressing config has codec energy %v", b.CodecNJ)
	}
	want := b.L1NJ + b.L2NJ + b.BusNJ + b.MemNJ
	if b.TotalNJ != want {
		t.Errorf("TotalNJ = %v, want %v", b.TotalNJ, want)
	}
}

func TestCompressingPaysCodec(t *testing.T) {
	s := sampleStats()
	plain := Estimate(s, Default(), false, false)
	comp := Estimate(s, Default(), true, false)
	if comp.CodecNJ <= 0 || comp.TotalNJ <= plain.TotalNJ {
		t.Errorf("compressing estimate %v not above plain %v", comp.TotalNJ, plain.TotalNJ)
	}
	cpp := Estimate(s, Default(), true, true)
	if cpp.L1NJ <= comp.L1NJ {
		t.Error("CPP flag overhead not charged")
	}
}

func TestLessTrafficLessEnergy(t *testing.T) {
	a := sampleStats()
	b := sampleStats()
	b.MemReadHalves /= 2
	b.L2.Misses /= 2
	ea := Estimate(a, Default(), true, false)
	eb := Estimate(b, Default(), true, false)
	if eb.TotalNJ >= ea.TotalNJ {
		t.Errorf("halved traffic did not reduce energy: %v vs %v", eb.TotalNJ, ea.TotalNJ)
	}
}

func TestForConfig(t *testing.T) {
	cases := map[string][2]bool{
		"BC": {false, false}, "HAC": {false, false}, "BCP": {false, false},
		"BCC": {true, false}, "LCC": {true, false}, "CPP": {true, true},
	}
	for name, want := range cases {
		c, f := ForConfig(name)
		if c != want[0] || f != want[1] {
			t.Errorf("ForConfig(%s) = %v,%v", name, c, f)
		}
	}
}

func TestString(t *testing.T) {
	b := Estimate(sampleStats(), Default(), true, true)
	s := b.String()
	if !strings.Contains(s, "total") || !strings.Contains(s, "codec") {
		t.Errorf("String() = %q", s)
	}
}
