package verify

// Every invariant the harness asserts has a test here demonstrating that a
// deliberately injected fault is caught — otherwise a checker could be
// vacuously green. Faults are injected three ways: wrapping the System
// (wrong load value, dropped write), mutating live state through
// Options.Hook (counter rollback, bus counter skew, CPP corruption via
// core.(*Hierarchy).CorruptForTest), or calling a checker directly with a
// broken input (codec, occupancy report).

import (
	"strings"
	"testing"

	"cppcache/internal/compress"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/sim"
)

// mustSystem builds a fresh config over a fresh memory.
func mustSystem(t *testing.T, config string) (memsys.System, *mem.Memory) {
	t.Helper()
	m := mem.New()
	sys, err := sim.NewSystem(config, m, memsys.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	return sys, m
}

// requireDivergence asserts d fired with the expected invariant.
func requireDivergence(t *testing.T, d *Divergence, inv string) {
	t.Helper()
	if d == nil {
		t.Fatalf("injected %s fault was not detected", inv)
	}
	if d.Invariant != inv {
		t.Fatalf("injected %s fault reported as %s: %v", inv, d.Invariant, d)
	}
}

// --- oracle-value -----------------------------------------------------------

func TestOracleValueCatchesWrongLoad(t *testing.T) {
	for _, config := range []string{"BC", "CPP"} {
		sys, m := mustSystem(t, config)
		wrapped := &flipSystem{System: sys, n: 40}
		d := Check(wrapped, m, RandomStream(5, 1000), Options{})
		requireDivergence(t, d, InvOracleValue)
		if d.Step >= 1000 {
			t.Fatalf("divergence reported at end of run, want mid-stream: %v", d)
		}
	}
}

// --- compress-roundtrip -----------------------------------------------------

func TestRoundtripCatchesBrokenDecompressor(t *testing.T) {
	badDecomp := func(c compress.Compressed, a mach.Addr) mach.Word {
		return compress.Decompress(c, a) ^ 1
	}
	if err := CheckRoundtrip(42, 0x1000, nil, badDecomp); err == nil {
		t.Fatal("lossy decompressor not detected")
	} else if !strings.Contains(err.Error(), InvCompressRoundtrip) {
		t.Fatalf("wrong invariant name in %v", err)
	}
	// A codec that refuses a compressible value disagrees with Compressible.
	badComp := func(v mach.Word, a mach.Addr) (compress.Compressed, bool) {
		return 0, false
	}
	if err := CheckRoundtrip(42, 0x1000, badComp, nil); err == nil {
		t.Fatal("compressibility disagreement not detected")
	}
	// Sanity: the production codec passes on all classes.
	for _, v := range []mach.Word{0, 42, ^mach.Word(0), 16383, 0x1000_0040, 0xDEAD_BEEF} {
		if err := CheckRoundtrip(v, 0x1000_0000, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// --- stats-monotonic --------------------------------------------------------

func TestMonotonicCatchesCounterRollback(t *testing.T) {
	sys, m := mustSystem(t, "BC")
	opt := Options{Hook: func(step int, s memsys.System) {
		if step == 200 {
			s.Stats().L1.Accesses -= 10
		}
	}}
	d := Check(sys, m, RandomStream(6, 1000), opt)
	requireDivergence(t, d, InvStatsMonotonic)
}

func TestMonotonicCatchesMissesOverAccesses(t *testing.T) {
	prev, cur := &memsys.Stats{}, &memsys.Stats{}
	cur.L1.Accesses, cur.L1.Misses = 5, 6
	if err := CheckMonotonic(prev, cur); err == nil {
		t.Fatal("misses > accesses not detected")
	}
}

// --- occupancy --------------------------------------------------------------

func TestOccupancyCatchesOverCapacity(t *testing.T) {
	good := []memsys.Occupancy{{Level: "L1", Lines: 128, LineCap: 128, Halves: 4096, HalfCap: 4096}}
	if err := CheckOccupancy(good); err != nil {
		t.Fatal(err)
	}
	overLines := []memsys.Occupancy{{Level: "L1", Lines: 129, LineCap: 128, Halves: 0, HalfCap: 4096}}
	if err := CheckOccupancy(overLines); err == nil {
		t.Fatal("line over-capacity not detected")
	}
	// The CPP failure mode: affiliated words squeezed in past the freed
	// half-slots would overflow the half-word budget.
	overHalves := []memsys.Occupancy{{Level: "L2", Lines: 100, LineCap: 128, Halves: 4097, HalfCap: 4096}}
	if err := CheckOccupancy(overHalves); err == nil {
		t.Fatal("half-word over-capacity not detected")
	}
}

// corrupter is the fault-injection hook core.(*Hierarchy) exposes.
type corrupter interface {
	CorruptForTest(kind string) bool
}

// corruptOnce flips CPP-internal state after enough stream has run to
// populate affiliated words, returning a hook for Options.
func corruptOnce(t *testing.T, kind string, after int, done *bool) func(int, memsys.System) {
	t.Helper()
	return func(step int, sys memsys.System) {
		if *done || step < after {
			return
		}
		c, ok := sys.(corrupter)
		if !ok {
			t.Fatalf("%s does not expose CorruptForTest", sys.Name())
		}
		*done = c.CorruptForTest(kind)
	}
}

// --- aff-mirror -------------------------------------------------------------

func TestAffMirrorCatchesCorruptedAffWord(t *testing.T) {
	sys, m := mustSystem(t, "CPP")
	var done bool
	opt := Options{DeepEvery: 1, Hook: corruptOnce(t, "aff-word", 400, &done)}
	d := Check(sys, m, RandomStream(9, 1500), opt)
	if !done {
		t.Fatal("stream produced no affiliated words to corrupt; pick another seed")
	}
	requireDivergence(t, d, InvAffMirror)
}

// --- structural -------------------------------------------------------------

func TestStructuralCatchesOrphanAAFlag(t *testing.T) {
	sys, m := mustSystem(t, "CPP")
	var done bool
	opt := Options{DeepEvery: 1, Hook: corruptOnce(t, "aa-orphan", 400, &done)}
	d := Check(sys, m, RandomStream(9, 1500), opt)
	if !done {
		t.Fatal("stream produced no uncompressed primary word to orphan; pick another seed")
	}
	requireDivergence(t, d, InvStructural)
}

// --- traffic-accounting -----------------------------------------------------

func TestTrafficCatchesSkewedBusCounter(t *testing.T) {
	sys, m := mustSystem(t, "BC")
	opt := Options{DeepEvery: 16, Hook: func(step int, s memsys.System) {
		if step == 300 {
			s.Stats().MemReadHalves++ // phantom half-word on the bus
		}
	}}
	d := Check(sys, m, RandomStream(4, 1000), opt)
	requireDivergence(t, d, InvTrafficAccounting)
}

func TestTrafficCatchesOrphanL2Access(t *testing.T) {
	sys, m := mustSystem(t, "CPP")
	opt := Options{DeepEvery: 16, Hook: func(step int, s memsys.System) {
		if step == 300 {
			s.Stats().L2.Accesses++ // an L2 probe no L1 miss explains
		}
	}}
	d := Check(sys, m, RandomStream(4, 1000), opt)
	requireDivergence(t, d, InvTrafficAccounting)
}

// --- drain-conservation -----------------------------------------------------

// dropWriteSystem swallows the Nth write without telling anyone — the
// classic lost-update bug a write-back path can have.
type dropWriteSystem struct {
	memsys.System
	n      int
	writes int
}

func (d *dropWriteSystem) Write(a mach.Addr, v mach.Word) int {
	d.writes++
	if d.writes == d.n {
		return 1
	}
	return d.System.Write(a, v)
}

func (d *dropWriteSystem) Drain() {
	if dr, ok := d.System.(drainer); ok {
		dr.Drain()
	}
}

func TestDrainConservationCatchesLostWrite(t *testing.T) {
	for _, config := range []string{"BC", "CPP"} {
		sys, m := mustSystem(t, config)
		wrapped := &dropWriteSystem{System: sys, n: 12}
		// Writes to distinct addresses, never read back: only the end-of-run
		// conservation sweep can notice one went missing.
		s := &Stream{Name: "distinct-writes"}
		for i := 0; i < 64; i++ {
			s.Ops = append(s.Ops, Op{
				Write: true,
				Addr:  mach.Addr(0x2000_0000 + i*4),
				Val:   mach.Word(100 + i),
			})
		}
		d := Check(wrapped, m, s, Options{})
		requireDivergence(t, d, InvDrainConservation)
		if d.Step != len(s.Ops) {
			t.Fatalf("%s: conservation fault at step %d, want end of run %d", config, d.Step, len(s.Ops))
		}
	}
}
