// Package verify is the differential-testing and invariant-checking
// subsystem: it cross-checks every cache configuration against a simple,
// obviously-correct oracle memory model on randomized and workload-derived
// access streams, and asserts structural and accounting invariants after
// every access batch and at end of run.
//
// The oracle is deliberately trivial — a flat map from word address to the
// last value written — because the whole point is that its correctness is
// beyond doubt. Any load a hierarchy answers differently from the oracle
// is a functional bug in the cache model, exactly the class of silent
// corruption that would invalidate the paper-reproduction numbers
// (CPP vs. BC traffic, miss-rate and speedup deltas).
package verify

import "cppcache/internal/mach"

// Oracle is the ground-truth memory model: a flat word store with no
// caching, no compression and no timing. Unwritten words read as zero,
// matching mem.Memory.
type Oracle struct {
	words map[mach.Addr]mach.Word
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{words: make(map[mach.Addr]mach.Word)}
}

// Write records the word v at the word-aligned address a.
func (o *Oracle) Write(a mach.Addr, v mach.Word) {
	o.words[mach.WordAlign(a)] = v
}

// Read returns the ground-truth word at a (zero if never written).
func (o *Oracle) Read(a mach.Addr) mach.Word {
	return o.words[mach.WordAlign(a)]
}

// Tracked reports whether a has ever been written through the oracle.
func (o *Oracle) Tracked(a mach.Addr) bool {
	_, ok := o.words[mach.WordAlign(a)]
	return ok
}

// Len returns the number of tracked words.
func (o *Oracle) Len() int { return len(o.words) }

// Each calls fn for every tracked word in unspecified order.
func (o *Oracle) Each(fn func(a mach.Addr, v mach.Word)) {
	for a, v := range o.words {
		fn(a, v)
	}
}
