package verify

import (
	"fmt"
	"math/rand"

	"cppcache/internal/isa"
	"cppcache/internal/mach"
	"cppcache/internal/workload"
)

// Op is one word access of a verification stream.
type Op struct {
	Write bool
	Addr  mach.Addr
	// Val is the value stored (writes) or, when Expect is set, the
	// ground-truth value the load must return (workload replay).
	Val mach.Word
	// Expect marks a read whose Val is authoritative (taken from a
	// workload trace). Reads without Expect are checked against the
	// oracle only.
	Expect bool
}

// String renders an op in the compact form used by repro listings.
func (op Op) String() string {
	if op.Write {
		return fmt.Sprintf("W %#08x %#08x", op.Addr, op.Val)
	}
	return fmt.Sprintf("R %#08x", op.Addr)
}

// Stream is a named sequence of accesses to drive through a hierarchy.
type Stream struct {
	Name string
	Ops  []Op
}

// chunkBytes is the 32K pointer-compression granule (§2.1): pointers
// generated within one chunk share their 17 high-order bits with the
// addresses they are stored at, so they compress.
const chunkBytes = 32 << 10

// RandomStream generates a deterministic, seeded access stream of roughly
// n ops mixing the behaviours the CPP design is sensitive to:
//
//   - single reads/writes over a small set of 32K chunks, with a value mix
//     of small values, same-chunk pointers, boundary patterns and
//     incompressible bits;
//   - sequential line sweeps (the affiliated-prefetch sweet spot);
//   - mutation bursts that flip words between compressible and
//     incompressible forms (exercising conflict evictions);
//   - pointer-chain builds followed by chases, where each loaded pointer
//     decides the next address — a wrong load value changes the walk;
//   - conflict ping-pong between addresses that alias in the 8K
//     direct-mapped L1 and the 64K 2-way L2.
//
// The same seed always yields the identical stream.
func RandomStream(seed int64, n int) *Stream {
	rng := rand.New(rand.NewSource(seed))
	g := &genState{
		rng:    rng,
		oracle: make(map[mach.Addr]mach.Word),
	}
	nChunks := 2 + rng.Intn(3)
	for i := 0; i < nChunks; i++ {
		// Distinct 32K-aligned regions, far enough apart that pointers
		// never accidentally compress across chunks.
		g.chunks = append(g.chunks, mach.Addr(0x1000_0000+i*0x0040_0000))
	}
	for len(g.ops) < n {
		switch g.rng.Intn(10) {
		case 0, 1, 2:
			g.single()
		case 3:
			g.lineSweep()
		case 4:
			g.mutationBurst()
		case 5:
			g.pointerChase()
		case 6:
			g.conflictPingPong()
		default:
			g.revisit()
		}
	}
	g.ops = g.ops[:n]
	return &Stream{Name: fmt.Sprintf("random(seed=%d,n=%d)", seed, n), Ops: g.ops}
}

type genState struct {
	rng    *rand.Rand
	ops    []Op
	oracle map[mach.Addr]mach.Word // generator's own ground truth
	chunks []mach.Addr
	recent []mach.Addr // ring of recently touched addresses
}

func (g *genState) read(a mach.Addr) {
	a = mach.WordAlign(a)
	g.ops = append(g.ops, Op{Addr: a})
	g.touch(a)
}

func (g *genState) write(a mach.Addr, v mach.Word) {
	a = mach.WordAlign(a)
	g.ops = append(g.ops, Op{Write: true, Addr: a, Val: v})
	g.oracle[a] = v
	g.touch(a)
}

func (g *genState) touch(a mach.Addr) {
	if len(g.recent) < 64 {
		g.recent = append(g.recent, a)
		return
	}
	g.recent[g.rng.Intn(len(g.recent))] = a
}

// addr picks a word address inside a random chunk.
func (g *genState) addr() mach.Addr {
	base := g.chunks[g.rng.Intn(len(g.chunks))]
	return base + mach.Addr(g.rng.Intn(chunkBytes/mach.WordBytes))*mach.WordBytes
}

// value picks a word biased across the compressibility classes for the
// destination address a.
func (g *genState) value(a mach.Addr) mach.Word {
	switch g.rng.Intn(8) {
	case 0, 1, 2: // small value in [-16384, 16383]
		return mach.Word(int32(g.rng.Intn(1<<15)) - (1 << 14))
	case 3, 4: // pointer into the same 32K chunk
		return (a &^ (chunkBytes - 1)) | mach.Word(g.rng.Intn(chunkBytes))&^3
	case 5: // boundary patterns around the compressibility edges
		edges := []mach.Word{0, ^mach.Word(0), 16383, 0xFFFF_C000, 16384, 0xFFFF_BFFF, 0x8000}
		return edges[g.rng.Intn(len(edges))]
	default: // incompressible bits
		return g.rng.Uint32() | 1<<30
	}
}

// single emits one random read or write.
func (g *genState) single() {
	a := g.addr()
	if g.rng.Intn(2) == 0 {
		g.read(a)
	} else {
		g.write(a, g.value(a))
	}
}

// lineSweep reads (sometimes writes) consecutive words across a few
// adjacent 64 B lines, the pattern next-line affiliation rewards.
func (g *genState) lineSweep() {
	start := g.addr() &^ 63
	lines := 2 + g.rng.Intn(4)
	writeFirst := g.rng.Intn(3) == 0
	for l := 0; l < lines; l++ {
		for w := 0; w < 16; w++ {
			a := start + mach.Addr(l*64+w*4)
			if a >= g.chunks[len(g.chunks)-1]+chunkBytes {
				return
			}
			if writeFirst {
				g.write(a, g.value(a))
			} else {
				g.read(a)
			}
		}
	}
}

// mutationBurst rewrites one line's words, alternating compressible and
// incompressible values, with interleaved read-backs. This drives the
// compressible -> incompressible transitions that evict affiliated words.
func (g *genState) mutationBurst() {
	base := g.addr() &^ 63
	for w := 0; w < 16; w++ {
		a := base + mach.Addr(w*4)
		var v mach.Word
		if w%2 == 0 {
			v = mach.Word(g.rng.Intn(1 << 14)) // compressible
		} else {
			v = g.rng.Uint32() | 1<<30 // incompressible
		}
		g.write(a, v)
		if w%4 == 3 {
			g.read(base + mach.Addr(g.rng.Intn(w+1)*4))
		}
	}
	// Second pass flips the parity, forcing transitions both ways.
	for w := 0; w < 16; w += 2 {
		a := base + mach.Addr(w*4)
		g.write(a, g.rng.Uint32()|1<<30)
		g.read(a)
	}
}

// pointerChase builds a short linked chain inside one chunk, then walks
// it. The next address of each hop is the value the generator's own
// oracle holds, so a simulator that returns a corrupted pointer diverges
// from the recorded walk immediately.
func (g *genState) pointerChase() {
	base := g.chunks[g.rng.Intn(len(g.chunks))]
	nodes := 4 + g.rng.Intn(12)
	addrs := make([]mach.Addr, nodes)
	for i := range addrs {
		// 16-byte nodes scattered through the chunk: word 0 = next,
		// word 1 = small payload, word 2 = incompressible payload.
		addrs[i] = base + mach.Addr(g.rng.Intn(chunkBytes/16))*16
	}
	for i := range addrs {
		next := mach.Word(0)
		if i+1 < nodes {
			next = addrs[i+1]
		}
		g.write(addrs[i], next)
		g.write(addrs[i]+4, mach.Word(g.rng.Intn(1<<14)))
		g.write(addrs[i]+8, g.rng.Uint32()|1<<30)
	}
	cur := addrs[0]
	for hops := 0; hops < nodes; hops++ {
		g.read(cur)
		g.read(cur + 4)
		next := g.oracle[cur]
		if next == 0 {
			break
		}
		cur = mach.Addr(next)
	}
}

// conflictPingPong alternates between addresses that map to the same L1
// set (8K apart) and the same L2 set (32K apart), forcing evictions,
// write-backs and victim placements.
func (g *genState) conflictPingPong() {
	a := g.addr()
	strides := []mach.Addr{8 << 10, 32 << 10, 16 << 10}
	b := a + strides[g.rng.Intn(len(strides))]
	for i := 0; i < 4+g.rng.Intn(8); i++ {
		x := a
		if i%2 == 1 {
			x = b
		}
		if g.rng.Intn(3) == 0 {
			g.write(x, g.value(x))
		} else {
			g.read(x)
		}
	}
}

// revisit re-touches a recently used address for temporal locality.
func (g *genState) revisit() {
	if len(g.recent) == 0 {
		g.single()
		return
	}
	a := g.recent[g.rng.Intn(len(g.recent))]
	if g.rng.Intn(4) == 0 {
		g.write(a, g.value(a))
	} else {
		g.read(a)
	}
}

// WorkloadStream converts the memory operations of one of the 14 paper
// workloads into a verification stream. Loads carry the trace's recorded
// value as ground truth (Expect), giving a second, independent check
// beyond the oracle.
func WorkloadStream(name string, scale int) (*Stream, error) {
	bm, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = 1
	}
	p := bm.Build(scale)
	s := &Stream{Name: fmt.Sprintf("%s(scale=%d)", name, scale)}
	str := p.Stream()
	for {
		in, ok := str.Next()
		if !ok {
			break
		}
		switch in.Op {
		case isa.OpLoad:
			s.Ops = append(s.Ops, Op{Addr: in.Addr, Val: in.Value, Expect: true})
		case isa.OpStore:
			s.Ops = append(s.Ops, Op{Write: true, Addr: in.Addr, Val: in.Value})
		}
	}
	return s, nil
}
