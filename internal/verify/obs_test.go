package verify

// Observability must be a pure observer: attaching a recorder may not
// change any simulation result, and none of the invariant checks may be
// weakened by its presence. Both directions are asserted here — identical
// stats with and without a recorder, and an injected traffic-accounting
// fault still caught while a recorder is attached and collecting.

import (
	"testing"

	"cppcache/internal/memsys"
	"cppcache/internal/obs"
)

// attach wires a full-featured recorder (interval metrics + event trace)
// to the system under test.
func attach(sys memsys.System) *obs.Recorder {
	rec := obs.New(obs.Config{Interval: 64, Trace: true, TraceCap: 1024})
	rec.AttachStats(sys.Stats())
	if a, ok := sys.(obs.Attachable); ok {
		a.SetRecorder(rec)
	}
	return rec
}

func TestRecorderDoesNotPerturbResults(t *testing.T) {
	for _, config := range []string{"BC", "BCP", "CPP"} {
		plain, mPlain := mustSystem(t, config)
		if d := Check(plain, mPlain, RandomStream(11, 2000), Options{}); d != nil {
			t.Fatalf("%s: unobserved run diverged: %v", config, d)
		}

		observed, mObs := mustSystem(t, config)
		rec := attach(observed)
		step := int64(0)
		opt := Options{Hook: func(_ int, _ memsys.System) {
			step++
			rec.OpTick(step)
		}}
		if d := Check(observed, mObs, RandomStream(11, 2000), opt); d != nil {
			t.Fatalf("%s: observed run diverged: %v", config, d)
		}
		rec.Finish()

		if *plain.Stats() != *observed.Stats() {
			t.Errorf("%s: stats differ with recorder attached:\nplain:    %+v\nobserved: %+v",
				config, *plain.Stats(), *observed.Stats())
		}
		if len(rec.Snapshots()) == 0 {
			t.Errorf("%s: recorder collected no snapshots (vacuous test)", config)
		}
		if config != "BC" && len(rec.TraceEvents()) == 0 {
			t.Errorf("%s: recorder collected no events (vacuous test)", config)
		}
	}
}

func TestTrafficFaultCaughtWithRecorder(t *testing.T) {
	sys, m := mustSystem(t, "CPP")
	rec := attach(sys)
	step := int64(0)
	opt := Options{DeepEvery: 16, Hook: func(i int, s memsys.System) {
		step++
		rec.OpTick(step)
		if i == 300 {
			s.Stats().MemReadHalves++ // phantom half-word on the bus
		}
	}}
	d := Check(sys, m, RandomStream(4, 1000), opt)
	requireDivergence(t, d, InvTrafficAccounting)
}
