package verify

// The differential-test battery parameterized over the compressor zoo:
// every registered scheme runs the full oracle/invariant harness clean on
// the configurations that accept it (BCC and LCC), and each fault class
// is re-injected per scheme to prove the checkers stay sharp when the
// codec changes underneath them. The CPP-specific invariants (affiliated
// mirrors, structural half-slot rules) are exercised in
// invariants_test.go only: CPP is architecturally tied to the paper's
// per-word codec, so there is nothing scheme-shaped to parameterize.

import (
	"strings"
	"testing"

	"cppcache/internal/compress"
	"cppcache/internal/mach"
	"cppcache/internal/memsys"
	"cppcache/internal/sim"
)

// schemeConfigs enumerates every (config, scheme) pair the simulator
// accepts: each compressing config crossed with each registered scheme.
func schemeConfigs() []string {
	var out []string
	for _, config := range sim.CompressorConfigs() {
		for _, scheme := range compress.Schemes() {
			out = append(out, sim.WithCompressor(config, scheme))
		}
	}
	return out
}

// nonDefaultSchemes returns the registered schemes other than the paper's.
func nonDefaultSchemes() []string {
	var out []string
	for _, s := range compress.Schemes() {
		if s != compress.Default().Name() {
			out = append(out, s)
		}
	}
	return out
}

// TestCheckConfigCleanPerScheme runs the whole harness — oracle loads,
// line roundtrips through the live codec, occupancy/tag-metadata bounds,
// scheme-aware traffic envelopes, drain conservation — clean on every
// accepted config x scheme pair.
func TestCheckConfigCleanPerScheme(t *testing.T) {
	for _, config := range schemeConfigs() {
		config := config
		t.Run(config, func(t *testing.T) {
			t.Parallel()
			for _, seed := range Seeds(100, 2) {
				d, err := CheckConfig(config, RandomStream(seed, 2000), Options{DeepEvery: 64})
				if err != nil {
					t.Fatal(err)
				}
				if d != nil {
					t.Fatalf("seed %d: %v", seed, d)
				}
			}
		})
	}
}

// TestSchemeRejectedConfigs pins the validation matrix: non-default
// schemes are refused by CPP (wedded to the per-word VC-flag codec) and
// by the configurations that never compress transfers.
func TestSchemeRejectedConfigs(t *testing.T) {
	for _, scheme := range nonDefaultSchemes() {
		for _, config := range []string{"CPP", "BC", "HAC", "BCP", "VC"} {
			if err := sim.ValidateCompressor(config, scheme); err == nil {
				t.Errorf("%s@%s accepted, want rejection", config, scheme)
			}
			if _, err := CheckConfig(config+"@"+scheme, RandomStream(1, 10), Options{}); err == nil {
				t.Errorf("CheckConfig(%s@%s) accepted, want error", config, scheme)
			}
		}
		// And the accepting side of the matrix, for contrast.
		for _, config := range sim.CompressorConfigs() {
			if err := sim.ValidateCompressor(config, scheme); err != nil {
				t.Errorf("%s@%s rejected: %v", config, scheme, err)
			}
		}
	}
	if _, err := CheckConfig("BCC@nonesuch", RandomStream(1, 10), Options{}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestOracleValueCatchesWrongLoadPerScheme re-injects the wrong-load
// fault under every scheme-qualified config.
func TestOracleValueCatchesWrongLoadPerScheme(t *testing.T) {
	for _, config := range schemeConfigs() {
		sys, m := mustSystem(t, config)
		wrapped := &flipSystem{System: sys, n: 40}
		d := Check(wrapped, m, RandomStream(5, 1000), Options{})
		requireDivergence(t, d, InvOracleValue)
	}
}

// TestMonotonicCatchesRollbackPerScheme re-injects the counter-rollback
// fault under every scheme-qualified config.
func TestMonotonicCatchesRollbackPerScheme(t *testing.T) {
	for _, config := range schemeConfigs() {
		sys, m := mustSystem(t, config)
		opt := Options{Hook: func(step int, s memsys.System) {
			if step == 200 {
				s.Stats().L1.Accesses -= 10
			}
		}}
		d := Check(sys, m, RandomStream(6, 1000), opt)
		requireDivergence(t, d, InvStatsMonotonic)
	}
}

// TestTrafficCatchesSkewedBusCounterPerScheme skews the bus counter far
// past any scheme's worst-case envelope and demands the (widened,
// scheme-aware) traffic rule still fires.
func TestTrafficCatchesSkewedBusCounterPerScheme(t *testing.T) {
	for _, config := range schemeConfigs() {
		sys, m := mustSystem(t, config)
		opt := Options{DeepEvery: 16, Hook: func(step int, s memsys.System) {
			if step == 300 {
				// Far beyond WorstCaseHalves(words) x misses for any scheme.
				s.Stats().MemReadHalves += 1 << 40
			}
		}}
		d := Check(sys, m, RandomStream(4, 1000), opt)
		requireDivergence(t, d, InvTrafficAccounting)
	}
}

// TestDrainConservationCatchesLostWritePerScheme re-injects the
// swallowed-write fault under every scheme-qualified config.
func TestDrainConservationCatchesLostWritePerScheme(t *testing.T) {
	for _, config := range schemeConfigs() {
		sys, m := mustSystem(t, config)
		wrapped := &dropWriteSystem{System: sys, n: 12}
		s := &Stream{Name: "distinct-writes"}
		for i := 0; i < 64; i++ {
			s.Ops = append(s.Ops, Op{Write: true, Addr: mach.Addr(0x2000_0000 + i*4), Val: mach.Word(100 + i)})
		}
		d := Check(wrapped, m, s, Options{})
		requireDivergence(t, d, InvDrainConservation)
	}
}

// lossyScheme wraps a real Compressor with a decompressor that flips one
// bit — the fault CheckLineRoundtrip exists to catch.
type lossyScheme struct{ compress.Compressor }

func (l lossyScheme) DecompressLine(enc compress.Encoded, base mach.Addr, out []mach.Word) error {
	if err := l.Compressor.DecompressLine(enc, base, out); err != nil {
		return err
	}
	if len(out) > 0 {
		out[0] ^= 1
	}
	return nil
}

// sizeLyingScheme wraps a real Compressor with a size function that
// disagrees with the emitted image.
type sizeLyingScheme struct{ compress.Compressor }

func (s sizeLyingScheme) LineHalves(words []mach.Word, base mach.Addr) int {
	return s.Compressor.LineHalves(words, base) + 1
}

// TestLineRoundtripCatchesBrokenCodecPerScheme feeds each registered
// scheme, wrapped to be lossy or to misreport its size, through the
// line-level differential oracle.
func TestLineRoundtripCatchesBrokenCodecPerScheme(t *testing.T) {
	words := []mach.Word{0, 1, 0xDEAD_BEEF, 0x1000_0040, 42, 42, 0xFFFF_FFFF, 7}
	base := mach.Addr(0x1000_0040)
	for _, scheme := range compress.Schemes() {
		c, err := compress.Get(scheme)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckLineRoundtrip(c, words, base); err != nil {
			t.Fatalf("%s: clean codec flagged: %v", scheme, err)
		}
		if err := CheckLineRoundtrip(lossyScheme{c}, words, base); err == nil {
			t.Errorf("%s: lossy decompressor not detected", scheme)
		} else if !strings.Contains(err.Error(), InvCompressRoundtrip) {
			t.Errorf("%s: wrong invariant name in %v", scheme, err)
		}
		if err := CheckLineRoundtrip(sizeLyingScheme{c}, words, base); err == nil {
			t.Errorf("%s: size misreport not detected", scheme)
		}
	}
}

// TestOccupancyCompCatchesMetadataOverrun drives the tag-metadata bound
// directly for each scheme: a CompHalves total past Lines x worst case is
// unreachable for a correct hierarchy and must be flagged.
func TestOccupancyCompCatchesMetadataOverrun(t *testing.T) {
	for _, scheme := range compress.Schemes() {
		c, err := compress.Get(scheme)
		if err != nil {
			t.Fatal(err)
		}
		const lines, words = 10, 32
		ok := []memsys.Occupancy{{
			Level: "L2", Lines: lines, LineCap: 128,
			Halves: lines * 2 * words, HalfCap: 128 * 2 * words,
			CompHalves: lines * c.WorstCaseHalves(words),
		}}
		if err := CheckOccupancyComp(ok, c); err != nil {
			t.Fatalf("%s: in-bounds metadata flagged: %v", scheme, err)
		}
		over := []memsys.Occupancy{{
			Level: "L2", Lines: lines, LineCap: 128,
			Halves: lines * 2 * words, HalfCap: 128 * 2 * words,
			CompHalves: lines*c.WorstCaseHalves(words) + 1,
		}}
		if err := CheckOccupancyComp(over, c); err == nil {
			t.Errorf("%s: metadata overrun not detected", scheme)
		}
		negative := []memsys.Occupancy{{Level: "L2", LineCap: 1, HalfCap: 64, CompHalves: -1}}
		if err := CheckOccupancyComp(negative, c); err == nil {
			t.Errorf("%s: negative CompHalves not detected", scheme)
		}
	}
}

// TestWorkloadStreamsPerScheme runs the workload-derived streams (not
// just random ones) through the harness for each non-default scheme on
// BCC, the configuration the paper's traffic studies use.
func TestWorkloadStreamsPerScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("workload streams are slow")
	}
	for _, scheme := range nonDefaultSchemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			s, err := WorkloadStream("olden.mst", 1)
			if err != nil {
				t.Fatal(err)
			}
			d, err := CheckConfig(sim.WithCompressor("BCC", scheme), s, Options{DeepEvery: 256})
			if err != nil {
				t.Fatal(err)
			}
			if d != nil {
				t.Fatal(d)
			}
		})
	}
}
