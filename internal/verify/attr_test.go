package verify

// The attribution profiler is a pure observer like the rest of the
// recorder: enabling it may not change any simulation result, and its
// totals must be exact marginals of the counters the hierarchy already
// keeps — every attributed L1 miss is a counted L1 miss, every
// attributed affiliated hit is a counted affiliated hit, and the
// attributed compression-failure words are exactly the incompressible
// fraction of the fill traffic.

import (
	"testing"

	"cppcache/internal/memsys"
	"cppcache/internal/obs"
)

// attachAttr wires a recorder with the attribution profiler enabled.
func attachAttr(sys memsys.System) *obs.Recorder {
	rec := obs.New(obs.Config{Interval: 64, Attr: true})
	rec.AttachStats(sys.Stats())
	if a, ok := sys.(obs.Attachable); ok {
		a.SetRecorder(rec)
	}
	return rec
}

func TestAttributionDoesNotPerturbResults(t *testing.T) {
	for _, config := range []string{"BC", "BCP", "CPP", "VC", "LCC"} {
		plain, mPlain := mustSystem(t, config)
		if d := Check(plain, mPlain, RandomStream(23, 2000), Options{}); d != nil {
			t.Fatalf("%s: unobserved run diverged: %v", config, d)
		}

		observed, mObs := mustSystem(t, config)
		rec := attachAttr(observed)
		step := int64(0)
		opt := Options{Hook: func(_ int, _ memsys.System) {
			step++
			rec.OpTick(step)
		}}
		if d := Check(observed, mObs, RandomStream(23, 2000), opt); d != nil {
			t.Fatalf("%s: attribution-observed run diverged: %v", config, d)
		}
		rec.Finish()

		if *plain.Stats() != *observed.Stats() {
			t.Errorf("%s: stats differ with attribution on:\nplain:    %+v\nobserved: %+v",
				config, *plain.Stats(), *observed.Stats())
		}
		if rec.AttrTotal(obs.AttrL1Miss) == 0 {
			t.Errorf("%s: attribution collected nothing (vacuous test)", config)
		}
	}
}

// TestAttributionConservation pins the profiler's totals to the
// hierarchy's own counters on a CPP run: the profile is a partition of
// the counted events, not a parallel estimate.
func TestAttributionConservation(t *testing.T) {
	sys, m := mustSystem(t, "CPP")
	rec := attachAttr(sys)
	step := int64(0)
	opt := Options{Hook: func(_ int, _ memsys.System) {
		step++
		rec.OpTick(step)
	}}
	if d := Check(sys, m, RandomStream(7, 4000), opt); d != nil {
		t.Fatalf("run diverged: %v", d)
	}
	rec.Finish()

	st := sys.Stats()
	if got, want := rec.AttrTotal(obs.AttrL1Miss), st.L1.Misses; got != want {
		t.Errorf("attributed L1 misses %d != counted %d", got, want)
	}
	if got, want := rec.AttrTotal(obs.AttrAffHit), st.AffHitsL1+st.AffHitsL2; got != want {
		t.Errorf("attributed affiliated hits %d != counted %d", got, want)
	}
	var fill, comp int64
	for _, s := range rec.Snapshots() {
		fill += s.FillWords
		comp += s.FillCompWords
	}
	if got, want := rec.AttrTotal(obs.AttrFillFail), fill-comp; got != want {
		t.Errorf("attributed fill-fail words %d != incompressible fill words %d", got, want)
	}

	// Per-kind entry counts must sum back to the kind totals: the top-N
	// tables are views of one exact count set.
	sums := map[string]int64{}
	for _, e := range rec.AttrEntries() {
		sums[e.Kind] += e.Count
	}
	for _, k := range obs.AttrKinds() {
		if sums[k.String()] != rec.AttrTotal(k) {
			t.Errorf("%s: entries sum to %d, total is %d", k, sums[k.String()], rec.AttrTotal(k))
		}
	}
}
