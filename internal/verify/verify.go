package verify

import (
	"fmt"
	"strings"

	"cppcache/internal/compress"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/sim"
)

// Options tunes a verification run.
type Options struct {
	// Lat is the latency configuration; zero means the paper defaults.
	Lat memsys.Latencies
	// DeepEvery is the cadence (in ops) of the full-state scans
	// (occupancy, affiliated mirrors, structural rules, traffic
	// accounting). Cheap per-op checks always run. 0 means 256.
	DeepEvery int
	// Hook, when set, runs after each op is applied and before that op's
	// checks conclude. The invariant fault-injection tests use it to
	// corrupt state mid-run; production callers leave it nil.
	Hook func(step int, sys memsys.System)
}

func (o Options) withDefaults() Options {
	if o.Lat == (memsys.Latencies{}) {
		o.Lat = memsys.DefaultLatencies()
	}
	if o.DeepEvery <= 0 {
		o.DeepEvery = 256
	}
	return o
}

// Divergence reports the first point where a hierarchy disagreed with the
// oracle or violated an invariant.
type Divergence struct {
	Config    string
	Stream    string
	Step      int // op index; len(ops) for end-of-run checks
	Invariant string
	Detail    string
	Op        Op // the op at Step (zero for end-of-run)
}

// Error implements error.
func (d *Divergence) Error() string {
	where := fmt.Sprintf("op %d (%s)", d.Step, d.Op)
	if d.Op == (Op{}) {
		where = "end of run"
	}
	return fmt.Sprintf("%s on %s: %s at %s: %s", d.Config, d.Stream, d.Invariant, where, d.Detail)
}

// Check drives the stream through sys (which must be backed by m),
// cross-checking every load against the oracle and asserting invariants.
// It returns the first divergence, or nil if the run is clean.
func Check(sys memsys.System, m *mem.Memory, s *Stream, opt Options) *Divergence {
	opt = opt.withDefaults()
	o := NewOracle()
	diverge := func(step int, inv, detail string) *Divergence {
		d := &Divergence{Config: sys.Name(), Stream: s.Name, Step: step, Invariant: inv, Detail: detail}
		if step < len(s.Ops) {
			d.Op = s.Ops[step]
		}
		return d
	}
	prev := *sys.Stats()

	// Resolve the hierarchy's compression scheme from its self-describing
	// name ("BCC@fpc" -> fpc); unqualified names resolve to the paper's
	// default. The scheme parameterizes the deep-scan invariants: tag
	// metadata bounds and a line-level roundtrip through the live codec.
	_, scheme := sim.SplitConfig(sys.Name())
	comp, compErr := compress.Get(scheme)
	if compErr != nil {
		comp = nil // exotic name; skip the scheme-parameterized checks
	}
	var lastAddr mach.Addr
	haveAddr := false

	deep := func(step int) *Divergence {
		if insp, ok := sys.(memsys.Inspector); ok {
			if err := CheckOccupancyComp(insp.Occupancies(), comp); err != nil {
				return diverge(step, InvOccupancy, err.Error())
			}
			if err := CheckTraffic(sys.Name(), sys.Stats(), l2Words(insp)); err != nil {
				return diverge(step, InvTrafficAccounting, err.Error())
			}
		}
		if err := CheckStructural(sys); err != nil {
			return diverge(step, InvStructural, err.Error())
		}
		if ai, ok := sys.(affInspector); ok {
			if err := CheckAffMirrors(ai, m); err != nil {
				return diverge(step, InvAffMirror, err.Error())
			}
		}
		if comp != nil && haveAddr {
			// Differential oracle at line granularity: pull the 64-byte
			// memory line around the latest access through the scheme's
			// full compress/decompress path and demand identity.
			g := mach.LineGeom{LineBytes: 64}
			base := g.LineAddr(lastAddr)
			buf := make([]mach.Word, g.Words())
			m.ReadLine(base, buf)
			if err := CheckLineRoundtrip(comp, buf, base); err != nil {
				return diverge(step, InvCompressRoundtrip, err.Error())
			}
		}
		return nil
	}

	for i, op := range s.Ops {
		val := op.Val
		lastAddr, haveAddr = op.Addr, true
		if op.Write {
			sys.Write(op.Addr, op.Val)
			o.Write(op.Addr, op.Val)
		} else {
			v, _ := sys.Read(op.Addr)
			want := o.Read(op.Addr)
			src := "oracle"
			if op.Expect {
				want, src = op.Val, "trace"
			}
			if v != want {
				return diverge(i, InvOracleValue,
					fmt.Sprintf("load %#x returned %#x, %s holds %#x", op.Addr, v, src, want))
			}
			// Remember trace-authoritative values so the end-of-run
			// conservation check covers them too.
			o.Write(op.Addr, v)
			val = v
		}
		if err := CheckRoundtrip(val, op.Addr, nil, nil); err != nil {
			return diverge(i, InvCompressRoundtrip, err.Error())
		}
		cur := sys.Stats()
		if err := CheckMonotonic(&prev, cur); err != nil {
			return diverge(i, InvStatsMonotonic, err.Error())
		}
		prev = *cur
		if opt.Hook != nil {
			opt.Hook(i, sys)
		}
		if (i+1)%opt.DeepEvery == 0 {
			if d := deep(i); d != nil {
				return d
			}
		}
	}

	end := len(s.Ops)
	if d := deep(end); d != nil {
		return d
	}
	if err := CheckDrainConservation(sys, m, o); err != nil {
		return diverge(end, InvDrainConservation, err.Error())
	}
	return nil
}

// l2Words derives the L2 line size in words from an occupancy report (the
// half-word capacity per frame is twice the word count).
func l2Words(insp memsys.Inspector) int {
	for _, o := range insp.Occupancies() {
		if o.Level == "L2" && o.LineCap > 0 {
			return o.HalfCap / o.LineCap / 2
		}
	}
	return 0
}

// CheckConfig builds a fresh hierarchy of the named configuration over a
// fresh memory and runs Check on it.
func CheckConfig(config string, s *Stream, opt Options) (*Divergence, error) {
	opt = opt.withDefaults()
	m := mem.New()
	sys, err := sim.NewSystem(config, m, opt.Lat)
	if err != nil {
		return nil, err
	}
	return Check(sys, m, s, opt), nil
}

// Minimize shrinks a failing stream to a short repro using greedy
// delta-debugging: repeatedly try to delete chunks of ops, keeping any
// deletion after which fails still reports a failure. fails must re-run
// the checker from scratch on the candidate ops. The Expect flag is
// cleared on candidates, because deleting earlier ops invalidates
// trace-recorded load values; the oracle remains self-consistent under any
// subsequence.
func Minimize(s *Stream, fails func(ops []Op) bool, maxRuns int) *Stream {
	ops := append([]Op(nil), s.Ops...)
	for i := range ops {
		ops[i].Expect = false
	}
	if maxRuns <= 0 {
		maxRuns = 500
	}
	runs := 0
	for chunk := (len(ops) + 1) / 2; chunk >= 1 && runs < maxRuns; chunk /= 2 {
		for start := 0; start < len(ops) && runs < maxRuns; {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			candidate := make([]Op, 0, len(ops)-(end-start))
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[end:]...)
			runs++
			if len(candidate) > 0 && fails(candidate) {
				// Keep the deletion and retry the same window, which now
				// holds the ops that followed it.
				ops = candidate
				continue
			}
			start += chunk
		}
	}
	return &Stream{Name: s.Name + " (minimized)", Ops: ops}
}

// Seeds returns n deterministic seeds starting at base, the set cppverify
// fans out over its worker pool.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// FormatOps renders ops one per line for repro listings.
func FormatOps(ops []Op) string {
	var sb strings.Builder
	for _, op := range ops {
		sb.WriteString(op.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
