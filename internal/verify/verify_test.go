package verify

import (
	"reflect"
	"testing"

	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/sim"
)

func TestRandomStreamDeterministic(t *testing.T) {
	a := RandomStream(7, 2000)
	b := RandomStream(7, 2000)
	if !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatal("same seed produced different streams")
	}
	c := RandomStream(8, 2000)
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical streams")
	}
	if len(a.Ops) != 2000 {
		t.Fatalf("stream length %d, want 2000", len(a.Ops))
	}
}

func TestRandomStreamMixesClasses(t *testing.T) {
	s := RandomStream(3, 5000)
	var reads, writes, small, ptr, incomp int
	for _, op := range s.Ops {
		if !op.Write {
			reads++
			continue
		}
		writes++
		top := op.Val & 0xFFFF_C000
		switch {
		case top == 0 || top == 0xFFFF_C000:
			small++
		case (op.Val^op.Addr)&0xFFFF_8000 == 0:
			ptr++
		default:
			incomp++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("degenerate stream: %d reads, %d writes", reads, writes)
	}
	if small == 0 || ptr == 0 || incomp == 0 {
		t.Fatalf("value classes missing: small=%d ptr=%d incomp=%d", small, ptr, incomp)
	}
}

// TestAllConfigsAgainstOracle is the heart of the harness: every
// configuration must survive randomized differential testing with zero
// divergences.
func TestAllConfigsAgainstOracle(t *testing.T) {
	seeds := Seeds(1, 8)
	if testing.Short() {
		seeds = Seeds(1, 3)
	}
	for _, config := range sim.Configs() {
		config := config
		t.Run(config, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				s := RandomStream(seed, 4000)
				d, err := CheckConfig(config, s, Options{DeepEvery: 128})
				if err != nil {
					t.Fatal(err)
				}
				if d != nil {
					t.Fatalf("seed %d: %v", seed, d)
				}
			}
		})
	}
}

// TestExtraConfigsAgainstOracle covers the related-work hierarchies too;
// they get the oracle and generic invariants, not the CPP-specific scans.
func TestExtraConfigsAgainstOracle(t *testing.T) {
	for _, config := range sim.ExtraConfigs() {
		config := config
		t.Run(config, func(t *testing.T) {
			t.Parallel()
			for _, seed := range Seeds(1, 3) {
				d, err := CheckConfig(config, RandomStream(seed, 3000), Options{})
				if err != nil {
					t.Fatal(err)
				}
				if d != nil {
					t.Fatalf("seed %d: %v", seed, d)
				}
			}
		})
	}
}

func TestWorkloadReplay(t *testing.T) {
	benches := []string{"olden.treeadd", "olden.health"}
	if testing.Short() {
		benches = benches[:1]
	}
	for _, bench := range benches {
		s, err := WorkloadStream(bench, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Ops) == 0 {
			t.Fatalf("%s: empty stream", bench)
		}
		for _, config := range sim.Configs() {
			d, err := CheckConfig(config, s, Options{DeepEvery: 1024})
			if err != nil {
				t.Fatal(err)
			}
			if d != nil {
				t.Fatalf("%s: %v", bench, d)
			}
		}
	}
}

func TestWorkloadStreamUnknown(t *testing.T) {
	if _, err := WorkloadStream("nope", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestInvariantsListed(t *testing.T) {
	if n := len(Invariants()); n < 6 {
		t.Fatalf("only %d invariants registered, the harness promises at least 6", n)
	}
}

// flipSystem wraps a System and corrupts the value returned by the Nth
// read, simulating a cache that silently returns wrong data.
type flipSystem struct {
	memsys.System
	n     int
	reads int
}

func (f *flipSystem) Read(a mach.Addr) (mach.Word, int) {
	v, lat := f.System.Read(a)
	f.reads++
	if f.reads == f.n {
		v ^= 0x4
	}
	return v, lat
}

func TestMinimizeShrinksRepro(t *testing.T) {
	s := RandomStream(11, 800)
	// Fail whenever the 25th read is reached: any subsequence with >= 25
	// reads still fails, so the minimum is 25 ops.
	fails := func(ops []Op) bool {
		m := mem.New()
		base, err := sim.NewSystem("BC", m, memsys.DefaultLatencies())
		if err != nil {
			t.Fatal(err)
		}
		sys := &flipSystem{System: base, n: 25}
		return Check(sys, m, &Stream{Name: "cand", Ops: ops}, Options{}) != nil
	}
	if !fails(s.Ops) {
		t.Fatal("full stream does not fail; test setup broken")
	}
	min := Minimize(s, fails, 400)
	if len(min.Ops) >= len(s.Ops) {
		t.Fatalf("minimization did not shrink: %d -> %d ops", len(s.Ops), len(min.Ops))
	}
	if !fails(min.Ops) {
		t.Fatal("minimized stream no longer fails")
	}
	if len(min.Ops) > 60 {
		t.Errorf("minimized repro still %d ops (expected near 25)", len(min.Ops))
	}
}

func TestCheckConfigUnknown(t *testing.T) {
	if _, err := CheckConfig("XXX", RandomStream(1, 10), Options{}); err == nil {
		t.Fatal("unknown config accepted")
	}
}

func TestFormatOps(t *testing.T) {
	ops := []Op{{Write: true, Addr: 0x1000, Val: 7}, {Addr: 0x1004}}
	got := FormatOps(ops)
	want := "W 0x0001000 0x0000007\nR 0x0001004\n"
	_ = want // exact widths are cosmetic; assert the essentials
	if len(got) == 0 || got[0] != 'W' {
		t.Fatalf("FormatOps = %q", got)
	}
}
