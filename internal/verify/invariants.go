package verify

import (
	"fmt"
	"reflect"

	"cppcache/internal/compress"
	"cppcache/internal/mach"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
)

// Invariant names, in the order they are checked. Each has a unit test in
// invariants_test.go demonstrating that a deliberately injected fault is
// caught.
const (
	InvOracleValue       = "oracle-value"       // every load returns the ground-truth word
	InvCompressRoundtrip = "compress-roundtrip" // compress->decompress is the identity
	InvStatsMonotonic    = "stats-monotonic"    // counters never decrease; misses <= accesses
	InvOccupancy         = "occupancy"          // resident data <= physical capacity
	InvAffMirror         = "aff-mirror"         // affiliated words mirror the authoritative value
	InvStructural        = "structural"         // CPP flag-bit and single-copy rules
	InvTrafficAccounting = "traffic-accounting" // bus counters conserved per configuration
	InvDrainConservation = "drain-conservation" // after drain, memory == oracle for every word
)

// Invariants lists every invariant name the checker asserts.
func Invariants() []string {
	return []string{
		InvOracleValue, InvCompressRoundtrip, InvStatsMonotonic, InvOccupancy,
		InvAffMirror, InvStructural, InvTrafficAccounting, InvDrainConservation,
	}
}

// CheckLineRoundtrip asserts the whole-line contract of one registered
// Compressor on one line image: the size function matches the emitted
// half-words, the declared worst case bounds it, and decompression is
// byte-identical to the input. It is the line-granular counterpart of
// CheckRoundtrip, run for whichever scheme backs the system under check.
func CheckLineRoundtrip(c compress.Compressor, words []mach.Word, base mach.Addr) error {
	enc := c.CompressLine(words, base)
	if h := c.LineHalves(words, base); h != enc.Halves() {
		return fmt.Errorf("%s: %s: LineHalves=%d but image is %d halves for %d words at %#x",
			InvCompressRoundtrip, c.Name(), h, enc.Halves(), len(words), base)
	}
	if w := c.WorstCaseHalves(len(words)); enc.Halves() > w {
		return fmt.Errorf("%s: %s: %d halves exceeds declared worst case %d for %d words",
			InvCompressRoundtrip, c.Name(), enc.Halves(), w, len(words))
	}
	out := make([]mach.Word, len(words))
	if err := c.DecompressLine(enc, base, out); err != nil {
		return fmt.Errorf("%s: %s: decompress: %w", InvCompressRoundtrip, c.Name(), err)
	}
	for i := range out {
		if out[i] != words[i] {
			return fmt.Errorf("%s: %s: word %d of line at %#x roundtrips %#x -> %#x",
				InvCompressRoundtrip, c.Name(), i, base, words[i], out[i])
		}
	}
	return nil
}

// CheckRoundtrip asserts compress->decompress identity for one (value,
// address) pair using the given codec; comp and decomp default to the
// production compress package when nil. The indirection lets the
// invariant's own test inject a broken codec and watch it get caught.
func CheckRoundtrip(v mach.Word, a mach.Addr,
	comp func(mach.Word, mach.Addr) (compress.Compressed, bool),
	decomp func(compress.Compressed, mach.Addr) mach.Word) error {
	if comp == nil {
		comp = compress.Compress
	}
	if decomp == nil {
		decomp = compress.Decompress
	}
	c, ok := comp(v, a)
	if compress.Compressible(v, a) != ok {
		return fmt.Errorf("%s: Compress(%#x, %#x) ok=%v disagrees with Compressible", InvCompressRoundtrip, v, a, ok)
	}
	if !ok {
		return nil
	}
	if got := decomp(c, a); got != v {
		return fmt.Errorf("%s: %#x at %#x roundtrips to %#x", InvCompressRoundtrip, v, a, got)
	}
	return nil
}

// statsCounters flattens every int64 counter of a Stats snapshot (nested
// LevelStats included) into name/value pairs via reflection, so counters
// added in future PRs are covered automatically.
func statsCounters(s *memsys.Stats) ([]string, []int64) {
	var names []string
	var vals []int64
	var walk func(prefix string, v reflect.Value)
	walk = func(prefix string, v reflect.Value) {
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f, fv := t.Field(i), v.Field(i)
			switch fv.Kind() {
			case reflect.Int64:
				names = append(names, prefix+f.Name)
				vals = append(vals, fv.Int())
			case reflect.Struct:
				walk(prefix+f.Name+".", fv)
			}
		}
	}
	walk("", reflect.ValueOf(*s))
	return names, vals
}

// CheckMonotonic asserts that no counter decreased between two snapshots
// and that per-level misses never exceed accesses.
func CheckMonotonic(prev, cur *memsys.Stats) error {
	names, pv := statsCounters(prev)
	_, cv := statsCounters(cur)
	for i := range pv {
		if cv[i] < pv[i] {
			return fmt.Errorf("%s: counter %s decreased %d -> %d", InvStatsMonotonic, names[i], pv[i], cv[i])
		}
	}
	for _, l := range []struct {
		name string
		s    memsys.LevelStats
	}{{"L1", cur.L1}, {"L2", cur.L2}} {
		if l.s.Misses > l.s.Accesses {
			return fmt.Errorf("%s: %s misses %d > accesses %d", InvStatsMonotonic, l.name, l.s.Misses, l.s.Accesses)
		}
	}
	return nil
}

// CheckOccupancy asserts that every reported cache structure holds no more
// lines and no more half-words of data than it physically can.
func CheckOccupancy(occs []memsys.Occupancy) error {
	for _, o := range occs {
		if o.Lines < 0 || o.Lines > o.LineCap {
			return fmt.Errorf("%s: %s holds %d lines, capacity %d", InvOccupancy, o.Level, o.Lines, o.LineCap)
		}
		if o.Halves < 0 || o.Halves > o.HalfCap {
			return fmt.Errorf("%s: %s stores %d half-words, capacity %d", InvOccupancy, o.Level, o.Halves, o.HalfCap)
		}
		if o.CompHalves < 0 {
			return fmt.Errorf("%s: %s reports negative compressed footprint %d", InvOccupancy, o.Level, o.CompHalves)
		}
	}
	return nil
}

// CheckOccupancyComp is CheckOccupancy plus the scheme-aware bound on the
// compression tag metadata: a structure tracking compressed sizes may
// never report more than its scheme's worst case for the lines it holds.
// comp nil skips the scheme bound.
func CheckOccupancyComp(occs []memsys.Occupancy, comp compress.Compressor) error {
	if err := CheckOccupancy(occs); err != nil {
		return err
	}
	if comp == nil {
		return nil
	}
	for _, o := range occs {
		if o.CompHalves == 0 || o.LineCap <= 0 {
			continue // untracked structure
		}
		words := o.HalfCap / o.LineCap / 2
		if max := o.Lines * comp.WorstCaseHalves(words); o.CompHalves > max {
			return fmt.Errorf("%s: %s compressed footprint %d halves exceeds %s worst case %d for %d lines",
				InvOccupancy, o.Level, o.CompHalves, comp.Name(), max, o.Lines)
		}
	}
	return nil
}

// affInspector is the view of CPP internals the mirror check needs;
// *core.Hierarchy implements it.
type affInspector interface {
	AffWords(level int, fn func(a mach.Addr, v mach.Word))
	PrimaryProbe(level int, a mach.Addr) (mach.Word, bool)
}

// CheckAffMirrors asserts that every affiliated word is byte-identical to
// the authoritative copy of that word — the value a demand access would be
// required to return were it served from the mirror:
//
//   - an L1 affiliated word must match the L2 primary copy if one exists,
//     else main memory (its own line is never L1-primary-resident, by the
//     single-copy rule);
//   - an L2 affiliated word must match main memory. Words whose L1 primary
//     copy is available are skipped: that copy may legitimately be dirtier,
//     and the mirror can never serve them (the L1 hit wins first).
func CheckAffMirrors(h affInspector, m *mem.Memory) error {
	var firstErr error
	for _, level := range []int{1, 2} {
		if firstErr != nil {
			break
		}
		level := level
		h.AffWords(level, func(a mach.Addr, v mach.Word) {
			if firstErr != nil {
				return
			}
			want := m.ReadWord(a)
			src := "memory"
			if level == 1 {
				if pv, ok := h.PrimaryProbe(2, a); ok {
					want, src = pv, "L2 primary"
				}
			} else if _, ok := h.PrimaryProbe(1, a); ok {
				return // shadowed by a (possibly dirty) L1 primary copy
			}
			if v != want {
				firstErr = fmt.Errorf("%s: L%d affiliated word at %#x = %#x, %s holds %#x",
					InvAffMirror, level, a, v, src, want)
			}
		})
	}
	return firstErr
}

// structuralChecker is implemented by hierarchies with internal flag-bit
// invariants (CPP's PA/VCP/AA rules and the single-copy property).
type structuralChecker interface {
	CheckInvariants() error
}

// CheckStructural runs the hierarchy's own structural validation when it
// has one.
func CheckStructural(sys memsys.System) error {
	sc, ok := sys.(structuralChecker)
	if !ok {
		return nil
	}
	if err := sc.CheckInvariants(); err != nil {
		return fmt.Errorf("%s: %w", InvStructural, err)
	}
	return nil
}

// CheckTraffic asserts the off-chip bus accounting rules each
// configuration must obey. wordsL2 is the L2 line size in words (derived
// from the occupancy report). The config name may carry an "@scheme"
// suffix (see sim.SplitConfig): the compressed-bus bounds then widen to
// that scheme's envelope — any line may compress to as little as one
// half-word total (an all-zero BDI line) or expand to the scheme's
// declared worst case. Configurations outside the known set are skipped.
func CheckTraffic(config string, st *memsys.Stats, wordsL2 int) error {
	if wordsL2 <= 0 {
		return nil
	}
	base, scheme := splitConfigName(config)
	comp, err := compress.Get(scheme)
	if err != nil {
		return nil // unqualified scheme name; nothing to assert
	}
	lineHalves := int64(2 * wordsL2)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%s: %s: %s", InvTrafficAccounting, config, fmt.Sprintf(format, args...))
	}
	switch base {
	case "BC", "BCC", "HAC", "BCP", "CPP", "LCC":
		// Every demand L1 miss probes the L2 exactly once, and nothing
		// else does.
		if st.L2.Accesses != st.L1.Misses {
			return fail("L2 accesses %d != L1 misses %d", st.L2.Accesses, st.L1.Misses)
		}
	default:
		return nil
	}
	reads, misses := st.MemReadHalves, st.L2.Misses
	switch base {
	case "BC", "HAC":
		// Uncompressed bus: each L2 miss moves exactly one full line in.
		if reads != lineHalves*misses {
			return fail("read halves %d != %d misses x %d halves/line", reads, misses, lineHalves)
		}
	case "CPP":
		// §3.3: an L2 miss fetches primary + affiliated lines in exactly
		// one uncompressed line's worth of bandwidth.
		if reads != lineHalves*misses {
			return fail("read halves %d != %d misses x %d halves/line", reads, misses, lineHalves)
		}
		// Write-backs are compressed: between 1 and 2 halves per word.
		if max := lineHalves * st.L2.Writebacks; st.MemWriteHalves > max {
			return fail("write halves %d > uncompressed bound %d", st.MemWriteHalves, max)
		}
	case "BCC", "LCC":
		// Compressed bus. The paper's scheme moves one or two halves per
		// word; other schemes are bounded by [1 half, worst case] per
		// line fetched.
		min, max := int64(wordsL2)*misses, lineHalves*misses
		if comp.Name() != compress.Default().Name() {
			min, max = misses, int64(comp.WorstCaseHalves(wordsL2))*misses
		}
		if reads < min || reads > max {
			return fail("read halves %d outside %s compressed bounds [%d, %d]", reads, comp.Name(), min, max)
		}
	case "BCP":
		// Demand fills plus speculative prefetches, all whole
		// uncompressed lines.
		if reads < lineHalves*misses {
			return fail("read halves %d < demand floor %d", reads, lineHalves*misses)
		}
		if reads%lineHalves != 0 {
			return fail("read halves %d not a multiple of the %d-half line", reads, lineHalves)
		}
	}
	return nil
}

// splitConfigName mirrors sim.SplitConfig without importing sim (this
// file sits below it in the dependency order for CheckTraffic's callers).
func splitConfigName(name string) (base, scheme string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '@' {
			return name[:i], name[i+1:]
		}
	}
	return name, ""
}

// drainer is implemented by every hierarchy that can flush its dirty state
// to memory for end-of-run comparison.
type drainer interface {
	Drain()
}

// CheckDrainConservation drains the hierarchy and asserts that main memory
// then agrees with the oracle on every word the stream ever touched: no
// written word was lost, duplicated into the wrong place, or corrupted on
// its way through write-back paths.
func CheckDrainConservation(sys memsys.System, m *mem.Memory, o *Oracle) error {
	d, ok := sys.(drainer)
	if !ok {
		return nil
	}
	d.Drain()
	var firstErr error
	o.Each(func(a mach.Addr, v mach.Word) {
		if firstErr != nil {
			return
		}
		if got := m.ReadWord(a); got != v {
			firstErr = fmt.Errorf("%s: after drain, memory[%#x] = %#x, oracle holds %#x",
				InvDrainConservation, a, got, v)
		}
	})
	return firstErr
}
