package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWorkerSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec WorkerSpec
		ok   bool
	}{
		{"zero", WorkerSpec{}, true},
		{"kill", WorkerSpec{KillAfter: 3}, true},
		{"stall", WorkerSpec{StallAfter: 1, StallMs: 10}, true},
		{"negative kill", WorkerSpec{KillAfter: -1}, false},
		{"negative stall ms", WorkerSpec{StallAfter: 1, StallMs: -5}, false},
		{"stall without ms", WorkerSpec{StallAfter: 2}, false},
		{"stall too long", WorkerSpec{StallAfter: 1, StallMs: MaxStallMs + 1}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
	if (WorkerSpec{}).Active() {
		t.Error("zero WorkerSpec reports Active")
	}
	if !(WorkerSpec{KillAfter: 1}).Active() {
		t.Error("kill spec reports inactive")
	}
}

func TestWorkerDisruptorKillSeversConnection(t *testing.T) {
	d := NewWorkerDisruptor(WorkerSpec{KillAfter: 3})
	ts := httptest.NewServer(d.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "alive")
	})))
	defer ts.Close()

	// Keep-alives off: the stdlib client silently retries an idempotent GET
	// whose reused connection dies, which would double-count requests.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer client.CloseIdleConnections()

	for i := 1; i <= 2; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatalf("request %d before kill point failed: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "alive" {
			t.Fatalf("request %d: body %q, want %q", i, body, "alive")
		}
	}

	// From the kill point on, every request must fail like a dead process:
	// a transport-level error, never an HTTP status.
	for i := 3; i <= 5; i++ {
		resp, err := client.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
			t.Fatalf("request %d after kill point got status %d, want connection error", i, resp.StatusCode)
		}
	}
	if !d.Dead() {
		t.Error("disruptor not marked dead after kill fired")
	}
	if got := d.Requests(); got != 5 {
		t.Errorf("Requests() = %d, want 5", got)
	}
	fired := d.Fired()
	if len(fired) != 3 {
		t.Fatalf("Fired() = %v, want 3 kill records", fired)
	}
	if !strings.HasPrefix(fired[0], "kill@") {
		t.Errorf("fired[0] = %q, want kill@ prefix", fired[0])
	}
}

func TestWorkerDisruptorOutOfBandKill(t *testing.T) {
	d := NewWorkerDisruptor(WorkerSpec{})
	ts := httptest.NewServer(d.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "alive")
	})))
	defer ts.Close()

	if resp, err := http.Get(ts.URL); err != nil {
		t.Fatalf("pre-kill request failed: %v", err)
	} else {
		resp.Body.Close()
	}

	d.Kill()
	resp, err := http.Get(ts.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("post-Kill request got status %d, want connection error", resp.StatusCode)
	}

	d.Revive()
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatalf("post-Revive request failed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-Revive status = %d, want 200", resp.StatusCode)
	}
}
