package chaos

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"cppcache"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/sim"
	"cppcache/internal/verify"
)

// TestScenarioDeterministicAndCovering: the same seed always derives the
// same spec, and a modest seed sweep exercises all three fault kinds.
func TestScenarioDeterministicAndCovering(t *testing.T) {
	kinds := map[string]bool{}
	for seed := int64(0); seed < 32; seed++ {
		a, b := Scenario(seed, 1000), Scenario(seed, 1000)
		if a != b {
			t.Fatalf("Scenario(%d) not deterministic: %+v vs %+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Scenario(%d) invalid: %v", seed, err)
		}
		switch {
		case a.PanicAfter > 0:
			kinds["panic"] = true
		case a.StallAfter > 0:
			kinds["stall"] = true
		case a.CancelAfter > 0:
			kinds["cancel"] = true
		}
	}
	for _, k := range []string{"panic", "stall", "cancel"} {
		if !kinds[k] {
			t.Errorf("seed sweep never produced a %s scenario", k)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{}, true},
		{Spec{PanicAfter: 10}, true},
		{Spec{StallAfter: 3, StallMs: 50}, true},
		{Spec{PanicAfter: -1}, false},
		{Spec{StallMs: -2}, false},
		{Spec{StallMs: MaxStallMs + 1}, false},
		{Spec{StallAfter: 5}, false}, // stall with no duration
	}
	for _, c := range cases {
		if got := c.spec.Validate() == nil; got != c.ok {
			t.Errorf("Validate(%+v) ok=%v, want %v", c.spec, got, c.ok)
		}
	}
}

// TestInjectedPanicIsDeterministic runs the same panicking scenario twice
// and checks the panic fires at the same hook hit with the same site.
func TestInjectedPanicIsDeterministic(t *testing.T) {
	run := func() (p *Panic, hits int64) {
		inj := New(Spec{Seed: 7, PanicAfter: 50}, nil, nil)
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("injected panic did not fire")
			}
			var ok bool
			if p, ok = r.(*Panic); !ok {
				t.Fatalf("recovered %T, want *chaos.Panic", r)
			}
			hits = inj.Hits()
		}()
		_, _, _ = cppcache.RunObservedContext(context.Background(), "olden.treeadd", cppcache.CPP,
			cppcache.Options{Scale: 1, FunctionalOnly: true},
			cppcache.ObserveOptions{FaultHook: inj.Hook})
		return
	}
	p1, h1 := run()
	p2, h2 := run()
	if p1.Hit != 50 || p1.Site != p2.Site || p1.Hit != p2.Hit || h1 != h2 {
		t.Errorf("panic not deterministic: run1 %+v (hits %d), run2 %+v (hits %d)", p1, h1, p2, h2)
	}
}

// TestCancelTriggerCancelsOwnRun wires CancelAfter to the run's own
// context and checks the run aborts with context.Canceled.
func TestCancelTriggerCancelsOwnRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := New(Spec{CancelAfter: 100}, ctx, cancel)
	_, _, err := cppcache.RunObservedContext(ctx, "olden.treeadd", cppcache.CPP,
		cppcache.Options{Scale: 1, FunctionalOnly: true},
		cppcache.ObserveOptions{FaultHook: inj.Hook})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fired := inj.Fired(); len(fired) != 1 || !strings.HasPrefix(fired[0], "cancel@") {
		t.Errorf("fired = %v, want one cancel action", fired)
	}
}

// TestStallAbortsOnCancel: a long stall must end as soon as the context
// is canceled, so deadlines can kill a hung run promptly.
func TestStallAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	inj := New(Spec{StallAfter: 1, StallMs: MaxStallMs}, ctx, nil)
	start := time.Now()
	inj.Hook("test.site")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored cancellation: blocked %v", elapsed)
	}
}

// TestInertHookIsByteIdentical: an injector whose triggers never fire
// must not perturb the simulation — results and the full snapshot series
// must equal a fault-free run exactly, in both functional and pipeline
// mode and for both hierarchy families.
func TestInertHookIsByteIdentical(t *testing.T) {
	for _, cfg := range []cppcache.CacheConfig{cppcache.CPP, cppcache.BC} {
		for _, functional := range []bool{true, false} {
			opts := cppcache.Options{Scale: 1, FunctionalOnly: functional}
			oo := cppcache.ObserveOptions{IntervalCycles: 5000}
			base, baseObs, err := cppcache.RunObserved("olden.treeadd", cfg, opts, oo)
			if err != nil {
				t.Fatal(err)
			}
			inj := New(Spec{Seed: 1}, nil, nil) // no triggers: inert
			ooHook := oo
			ooHook.FaultHook = inj.Hook
			got, gotObs, err := cppcache.RunObserved("olden.treeadd", cfg, opts, ooHook)
			if err != nil {
				t.Fatal(err)
			}
			if inj.Hits() == 0 {
				t.Errorf("%s functional=%v: fault hook never invoked", cfg, functional)
			}
			if got != base {
				t.Errorf("%s functional=%v: results diverged under inert hook\n  base: %+v\n  got:  %+v",
					cfg, functional, base, got)
			}
			if !reflect.DeepEqual(baseObs.Snapshots(), gotObs.Snapshots()) {
				t.Errorf("%s functional=%v: snapshot series diverged under inert hook", cfg, functional)
			}
		}
	}
}

// TestInertHookPassesOracle drives the differential-verification oracle
// over a CPP hierarchy with an inert fault hook attached: every invariant
// (oracle values, occupancy, structural rules, affiliated mirrors, drain
// conservation) must still hold.
func TestInertHookPassesOracle(t *testing.T) {
	m := mem.New()
	sys, err := sim.NewSystem("CPP", m, memsys.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	inj := New(Spec{}, nil, nil)
	sys.(interface{ SetFaultHook(func(string)) }).SetFaultHook(inj.Hook)
	s := verify.RandomStream(42, 4000)
	if d := verify.Check(sys, m, s, verify.Options{}); d != nil {
		t.Fatalf("oracle divergence under inert chaos hook: %v", d)
	}
	if inj.Hits() == 0 {
		t.Error("fault hook never invoked during oracle run")
	}
}
