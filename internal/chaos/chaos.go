// Package chaos is a seeded, deterministic fault-injection harness for
// the simulator and the observatory's run supervisor.
//
// A Spec names up to three faults by the 1-based ordinal of the
// fault-injection hook hit at which they fire: an injected panic (the
// supervisor must convert it into a failed run, not a process crash), a
// stall (the simulation goroutine blocks; deadlines and cancellation must
// still terminate the run promptly) and a self-cancellation (the run's
// own context is canceled mid-flight). Hook hits are counted across every
// site the simulator exposes — one per memory operation
// ("cpu.mem-op"/"sim.op") plus the hierarchy fills ("cpp.fill-l1",
// "cpp.install-l2", "std.fetch-l1") — so for a fixed workload, scale and
// configuration the trigger point is a fixed point in the execution:
// replaying the same Spec fires the same fault at the same simulated
// instant every time.
//
// An Injector whose triggers never fire is inert by construction: the
// hook only increments a counter, so surviving (or re-run) simulations
// are byte-identical to fault-free execution. The chaos test suite
// enforces this with the internal/verify oracle.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// MaxStallMs bounds Spec.StallMs so an adversarial run spec cannot park a
// worker slot for longer than a minute.
const MaxStallMs = 60_000

// Spec configures deterministic fault injection for one run. Trigger
// counts are 1-based hook-hit ordinals (PanicAfter == 1 fires at the very
// first fault point the simulation crosses); zero triggers never fire.
type Spec struct {
	// Seed labels the scenario (see Scenario); it does not affect an
	// explicitly-populated Spec.
	Seed int64 `json:"seed,omitempty"`
	// PanicAfter injects a panic (*chaos.Panic) at the Nth hook hit.
	PanicAfter int64 `json:"panic_after,omitempty"`
	// StallAfter blocks the simulation goroutine for StallMs milliseconds
	// at the Nth hook hit. The stall aborts early if the run's context is
	// canceled, so deadlines still terminate a stalled run promptly.
	StallAfter int64 `json:"stall_after,omitempty"`
	StallMs    int   `json:"stall_ms,omitempty"`
	// CancelAfter cancels the run's own context at the Nth hook hit.
	CancelAfter int64 `json:"cancel_after,omitempty"`
}

// Active reports whether any trigger can fire.
func (s Spec) Active() bool {
	return s.PanicAfter > 0 || s.StallAfter > 0 || s.CancelAfter > 0
}

// Validate rejects out-of-range fields.
func (s Spec) Validate() error {
	switch {
	case s.PanicAfter < 0 || s.StallAfter < 0 || s.CancelAfter < 0:
		return fmt.Errorf("chaos: trigger ordinals must be non-negative")
	case s.StallMs < 0:
		return fmt.Errorf("chaos: stall_ms must be non-negative")
	case s.StallMs > MaxStallMs:
		return fmt.Errorf("chaos: stall_ms %d exceeds the %d ms cap", s.StallMs, MaxStallMs)
	case s.StallAfter > 0 && s.StallMs == 0:
		return fmt.Errorf("chaos: stall_after set without stall_ms")
	}
	return nil
}

// String renders the spec for logs and run listings.
func (s Spec) String() string {
	out := fmt.Sprintf("chaos(seed=%d", s.Seed)
	if s.PanicAfter > 0 {
		out += fmt.Sprintf(", panic@%d", s.PanicAfter)
	}
	if s.StallAfter > 0 {
		out += fmt.Sprintf(", stall@%d for %dms", s.StallAfter, s.StallMs)
	}
	if s.CancelAfter > 0 {
		out += fmt.Sprintf(", cancel@%d", s.CancelAfter)
	}
	return out + ")"
}

// Scenario derives a single-fault spec deterministically from a seed: one
// of panic, stall or cancel, triggered at a hook hit in [1, horizon]. The
// chaos test suite sweeps seeds to cover every fault kind at scattered
// execution points.
func Scenario(seed, horizon int64) Spec {
	if horizon < 1 {
		horizon = 1
	}
	rng := rand.New(rand.NewSource(seed))
	hit := 1 + rng.Int63n(horizon)
	switch rng.Intn(3) {
	case 0:
		return Spec{Seed: seed, PanicAfter: hit}
	case 1:
		return Spec{Seed: seed, StallAfter: hit, StallMs: 5 + rng.Intn(20)}
	default:
		return Spec{Seed: seed, CancelAfter: hit}
	}
}

// Panic is the value of an injected panic, distinguishable from organic
// simulator panics by type assertion.
type Panic struct {
	Site string // hook site that fired
	Hit  int64  // hook-hit ordinal
	Seed int64  // scenario seed
}

// String implements fmt.Stringer (and is what recover+%v renders).
func (p *Panic) String() string {
	return fmt.Sprintf("chaos: injected panic at %s (hit %d, seed %d)", p.Site, p.Hit, p.Seed)
}

// Injector fires a Spec's faults at deterministic execution points. Hook
// is the func to install as the simulator's fault hook; it must only be
// called from the simulation goroutine. Hits and Fired are safe to read
// from other goroutines while the run is in flight.
type Injector struct {
	spec   Spec
	ctx    context.Context    // aborts stalls early; may be nil
	cancel context.CancelFunc // fired by CancelAfter; may be nil

	hits atomic.Int64

	mu     sync.Mutex
	fired  []string
	onFire func(what string)
}

// New builds an injector. ctx, when non-nil, aborts an in-progress stall
// as soon as it is canceled; cancel, when non-nil, is what CancelAfter
// invokes (typically the run's own context cancel func).
func New(spec Spec, ctx context.Context, cancel context.CancelFunc) *Injector {
	return &Injector{spec: spec, ctx: ctx, cancel: cancel}
}

// Hook counts one fault-point crossing and fires any trigger whose
// ordinal it reaches. Panic fires last so a coinciding cancel or stall is
// still recorded.
func (i *Injector) Hook(site string) {
	n := i.hits.Add(1)
	if n == i.spec.CancelAfter && i.cancel != nil {
		i.record(fmt.Sprintf("cancel@%s#%d", site, n))
		i.cancel()
	}
	if n == i.spec.StallAfter && i.spec.StallMs > 0 {
		i.record(fmt.Sprintf("stall@%s#%d", site, n))
		i.stall(time.Duration(i.spec.StallMs) * time.Millisecond)
	}
	if n == i.spec.PanicAfter {
		i.record(fmt.Sprintf("panic@%s#%d", site, n))
		panic(&Panic{Site: site, Hit: n, Seed: i.spec.Seed})
	}
}

// stall blocks for d, returning early if the injector's context is
// canceled (so a deadline can still kill a "hung" run promptly).
func (i *Injector) stall(d time.Duration) {
	if i.ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-i.ctx.Done():
	}
}

// SetOnFire installs an observer called (outside the injector's lock, on
// the simulation goroutine) every time a fault fires, with the same label
// that Fired records. The observatory turns firings into span events so a
// panic or stall is attributable to the stage it interrupted. Install
// before the run starts; the field is not synchronised against Hook.
func (i *Injector) SetOnFire(fn func(what string)) {
	i.onFire = fn
}

func (i *Injector) record(what string) {
	i.mu.Lock()
	i.fired = append(i.fired, what)
	i.mu.Unlock()
	if i.onFire != nil {
		i.onFire(what)
	}
}

// Hits returns how many fault points the simulation has crossed.
func (i *Injector) Hits() int64 { return i.hits.Load() }

// Fired returns a copy of the fired-action log, in firing order.
func (i *Injector) Fired() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]string(nil), i.fired...)
}
