package chaos

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerSpec configures deterministic disruption of a worker node's HTTP
// surface, the fabric-tier counterpart of Spec's simulator faults.
// Trigger counts are 1-based request ordinals across every request the
// worker receives; zero triggers never fire.
type WorkerSpec struct {
	// KillAfter makes the worker drop connections (the client sees an
	// abrupt EOF, exactly what a kill -9 of the process produces) from the
	// Nth request onward. Unlike the simulator faults a kill is sticky:
	// once dead the worker never answers again.
	KillAfter int64 `json:"kill_after,omitempty"`
	// StallAfter delays the Nth request's response by StallMs
	// milliseconds, long enough to trip per-attempt timeouts.
	StallAfter int64 `json:"stall_after,omitempty"`
	StallMs    int   `json:"stall_ms,omitempty"`
}

// Active reports whether any trigger can fire.
func (s WorkerSpec) Active() bool { return s.KillAfter > 0 || s.StallAfter > 0 }

// Validate rejects out-of-range fields.
func (s WorkerSpec) Validate() error {
	switch {
	case s.KillAfter < 0 || s.StallAfter < 0:
		return fmt.Errorf("chaos: worker trigger ordinals must be non-negative")
	case s.StallMs < 0:
		return fmt.Errorf("chaos: worker stall_ms must be non-negative")
	case s.StallMs > MaxStallMs:
		return fmt.Errorf("chaos: worker stall_ms %d exceeds the %d ms cap", s.StallMs, MaxStallMs)
	case s.StallAfter > 0 && s.StallMs == 0:
		return fmt.Errorf("chaos: worker stall_after set without stall_ms")
	}
	return nil
}

// WorkerDisruptor wraps a worker's HTTP handler and fires a WorkerSpec's
// faults at deterministic request ordinals. Kill() flips the worker dead
// out-of-band, for tests that want to murder a worker at a point chosen
// by the test rather than by request count.
type WorkerDisruptor struct {
	spec WorkerSpec

	requests atomic.Int64
	dead     atomic.Bool

	mu    sync.Mutex
	fired []string
}

// NewWorkerDisruptor builds a disruptor for spec (which should already
// have been Validated).
func NewWorkerDisruptor(spec WorkerSpec) *WorkerDisruptor {
	return &WorkerDisruptor{spec: spec}
}

// Wrap returns next decorated with the disruptor's faults. A dead worker
// aborts every request with http.ErrAbortHandler, which makes net/http
// sever the connection mid-response — the client observes the same
// "connection reset / unexpected EOF" failure mode as a kill -9 of the
// worker process, without taking down the test's process.
func (d *WorkerDisruptor) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := d.requests.Add(1)
		if d.spec.KillAfter > 0 && n >= d.spec.KillAfter {
			d.dead.Store(true)
		}
		if d.dead.Load() {
			d.record(fmt.Sprintf("kill@%s#%d", r.URL.Path, n))
			panic(http.ErrAbortHandler)
		}
		if n == d.spec.StallAfter && d.spec.StallMs > 0 {
			d.record(fmt.Sprintf("stall@%s#%d", r.URL.Path, n))
			select {
			case <-time.After(time.Duration(d.spec.StallMs) * time.Millisecond):
			case <-r.Context().Done():
			}
		}
		next.ServeHTTP(w, r)
	})
}

// Kill marks the worker dead immediately; every subsequent request is
// severed.
func (d *WorkerDisruptor) Kill() { d.dead.Store(true) }

// Revive brings a killed worker back, for tests exercising recovery.
func (d *WorkerDisruptor) Revive() { d.dead.Store(false) }

// Dead reports whether the worker is currently severing requests.
func (d *WorkerDisruptor) Dead() bool { return d.dead.Load() }

// Requests returns how many requests the worker has received (including
// severed ones).
func (d *WorkerDisruptor) Requests() int64 { return d.requests.Load() }

func (d *WorkerDisruptor) record(what string) {
	d.mu.Lock()
	d.fired = append(d.fired, what)
	d.mu.Unlock()
}

// Fired returns a copy of the fired-action log, in firing order.
func (d *WorkerDisruptor) Fired() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.fired...)
}
