package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 257
			var ran [n]int32
			err := Do(context.Background(), n, workers, func(_ context.Context, w, j int) error {
				if w < 0 || w >= workers {
					t.Errorf("worker id %d out of range", w)
				}
				atomic.AddInt32(&ran[j], 1)
				return nil
			})
			if err != nil {
				t.Fatalf("Do: %v", err)
			}
			for j, c := range ran {
				if c != 1 {
					t.Fatalf("job %d ran %d times", j, c)
				}
			}
		})
	}
}

func TestDoZeroJobs(t *testing.T) {
	if err := Do(context.Background(), 0, 4, func(context.Context, int, int) error {
		t.Fatal("fn called for empty batch")
		return nil
	}); err != nil {
		t.Fatalf("Do: %v", err)
	}
}

// TestDoDeterministicError: with many failing jobs finishing in scrambled
// order, Do always reports the lowest-numbered failure.
func TestDoDeterministicError(t *testing.T) {
	errOf := func(j int) error { return fmt.Errorf("job %d failed", j) }
	for trial := 0; trial < 20; trial++ {
		err := Do(context.Background(), 64, 8, func(_ context.Context, _, j int) error {
			if j%7 == 3 { // jobs 3, 10, 17, ...
				return errOf(j)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("trial %d: err = %v, want job 3's error", trial, err)
		}
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	err := Do(ctx, 100, 2, func(ctx context.Context, _, j int) error {
		if atomic.AddInt32(&started, 1) == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&started); n >= 100 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

// TestDoStealing forces one worker's range to be slow so the others must
// steal from it to finish the batch.
func TestDoStealing(t *testing.T) {
	const n, workers = 64, 4
	var ran int32
	gate := make(chan struct{})
	err := Do(context.Background(), n, workers, func(_ context.Context, _, j int) error {
		if j == 0 {
			// Worker owning job 0 stalls until every other job finished:
			// only stealing lets the rest of its initial range complete.
			<-gate
		}
		if atomic.AddInt32(&ran, 1) == n-1 {
			close(gate)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if ran != n {
		t.Fatalf("ran %d of %d jobs", ran, n)
	}
}

func TestWorkersNormalisation(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatalf("non-positive worker counts must normalise to >= 1")
	}
}

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2)
	var wg sync.WaitGroup
	var ran int32
	for i := 0; i < 50; i++ {
		wg.Add(1)
		p.Go(func() {
			defer wg.Done()
			atomic.AddInt32(&ran, 1)
		})
	}
	wg.Wait()
	if ran != 50 {
		t.Fatalf("ran %d of 50 tasks", ran)
	}
	p.Close()
	// Tasks after Close still run (fallback goroutine).
	wg.Add(1)
	p.Go(func() {
		defer wg.Done()
		atomic.AddInt32(&ran, 1)
	})
	wg.Wait()
	if ran != 51 {
		t.Fatalf("post-Close task did not run")
	}
	p.Close() // double Close is a no-op
}

func BenchmarkDoOverhead(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var sink atomic.Int64
				_ = Do(context.Background(), 64, workers, func(_ context.Context, _, j int) error {
					sink.Add(int64(j))
					return nil
				})
			}
		})
	}
}
