package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cppcache/internal/span"
)

func TestDoTracedSpansPerJob(t *testing.T) {
	tr := span.New(0)
	root := tr.Start("batch", nil)
	const n = 40
	err := DoTraced(context.Background(), n, 4, root,
		func(job int) string { return fmt.Sprintf("job-%d", job) },
		func(_ context.Context, worker, job int) error {
			if job == 7 {
				return errors.New("boom")
			}
			return nil
		})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	root.End()

	seen := map[string]span.SpanData{}
	for _, d := range tr.Snapshot() {
		if d.ParentID == root.ID() {
			seen[d.Name] = d
		}
	}
	if len(seen) != n {
		t.Fatalf("got %d job spans, want %d", len(seen), n)
	}
	for j := 0; j < n; j++ {
		d, ok := seen[fmt.Sprintf("job-%d", j)]
		if !ok {
			t.Fatalf("job %d has no span", j)
		}
		attrs := map[string]span.Attr{}
		for _, a := range d.Attrs {
			attrs[a.Key] = a
		}
		if got := attrs["job"].Int; got != int64(j) {
			t.Errorf("job %d span has job attr %d", j, got)
		}
		if w := attrs["worker"].Int; w < 0 || w >= 4 {
			t.Errorf("job %d worker attr %d out of range", j, w)
		}
		if attrs["steals"].Int < 0 {
			t.Errorf("job %d negative steals", j)
		}
		if d.End.IsZero() {
			t.Errorf("job %d span left open", j)
		}
		if j == 7 && attrs["error"].Str != "boom" {
			t.Errorf("failed job span attrs = %+v, want error=boom", d.Attrs)
		}
		if j != 7 {
			if _, has := attrs["error"]; has {
				t.Errorf("job %d has spurious error attr", j)
			}
		}
	}
}

func TestDoTracedNilParentIsPlainDo(t *testing.T) {
	const n = 16
	ran := make([]int, n)
	var mu sync.Mutex
	err := DoTraced(context.Background(), n, 3, nil, nil,
		func(_ context.Context, _, job int) error {
			mu.Lock()
			ran[job]++
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range ran {
		if c != 1 {
			t.Fatalf("job %d ran %d times", j, c)
		}
	}
}

func TestGoWorkerIndices(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	got := make(chan int, 8)
	for i := 0; i < 8; i++ {
		p.GoWorker(func(w int) {
			got <- w
			time.Sleep(time.Millisecond)
		})
	}
	for i := 0; i < 8; i++ {
		select {
		case w := <-got:
			// Pool workers report [0, 3); queue-full spills report -1.
			if w != -1 && (w < 0 || w >= 3) {
				t.Fatalf("worker index %d out of range", w)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("task never ran")
		}
	}
}

func TestGoWorkerAfterCloseIsFallback(t *testing.T) {
	p := NewPool(2)
	p.Close()
	got := make(chan int, 1)
	p.GoWorker(func(w int) { got <- w })
	select {
	case w := <-got:
		if w != -1 {
			t.Fatalf("post-close worker index = %d, want -1", w)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-close task never ran")
	}
}
