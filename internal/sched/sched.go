// Package sched is the repo's multi-run scheduler: it fans a batch of
// independent jobs (simulation runs, sweep cells, verification batteries)
// across CPU cores with work stealing, while keeping every observable
// output deterministic.
//
// Determinism comes from the job-index contract: jobs are named 0..n-1,
// callers write job i's result into slot i of a pre-sized slice, and Do
// reports the error of the lowest-numbered failed job. Which worker runs
// which job — and in what order — varies run to run; nothing the caller
// can observe does.
//
// The stealing scheme is the classic contiguous-range split: each worker
// starts with an even slice of the index space and pops from its front,
// preserving the cache-friendly property that one worker walks mostly
// consecutive jobs. A worker that runs dry steals the upper half of the
// richest remaining range. With per-worker scratch (cores, hierarchies)
// reused across the jobs a worker executes, steady-state allocation stays
// proportional to workers, not jobs.
package sched

import (
	"context"
	"runtime"
	"sync"

	"cppcache/internal/span"
)

// Workers normalises a worker-count flag: values <= 0 mean "one per
// available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// jobRange is one worker's remaining range of job indices, [lo, hi).
type jobRange struct {
	mu sync.Mutex
	lo int
	hi int
}

// pop takes the front job of the range.
func (s *jobRange) pop() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	j := s.lo
	s.lo++
	return j, true
}

// size reports the remaining job count (racy snapshot, used only as a
// stealing heuristic).
func (s *jobRange) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hi - s.lo
}

// stealFrom takes the upper half of s's remaining range (at least one
// job), returning the stolen range.
func (s *jobRange) stealFrom() (lo, hi int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.hi - s.lo
	if n <= 0 {
		return 0, 0, false
	}
	take := n / 2
	if take == 0 {
		take = 1
	}
	lo, hi = s.hi-take, s.hi
	s.hi = lo
	return lo, hi, true
}

// Do runs fn(ctx, worker, job) for every job in [0, n) across the given
// number of workers (normalised via Workers; capped at n) and returns the
// error of the lowest-numbered job that failed, or nil. The worker id is
// in [0, workers) and is stable for the goroutine invoking fn, so callers
// can key per-worker scratch off it. When ctx is canceled, jobs that have
// not started fail with ctx's error; jobs already running are the
// callee's responsibility (simulator loops poll ctx themselves).
func Do(ctx context.Context, n, workers int, fn func(ctx context.Context, worker, job int) error) error {
	return doSteals(ctx, n, workers, func(ctx context.Context, worker, job, steals int) error {
		return fn(ctx, worker, job)
	})
}

// DoTraced is Do with per-job tracing: every job gets a child span of
// parent, named by name(job), carrying the job index, the worker that ran
// it and how many ranges that worker had stolen when the job started (a
// direct read on how much rebalancing the batch needed). Failed jobs
// record the error as a span attribute. A nil parent makes DoTraced
// behave exactly like Do — the span calls no-op through nil receivers —
// so callers plumb one optional *span.Span instead of branching.
func DoTraced(ctx context.Context, n, workers int, parent *span.Span, name func(job int) string, fn func(ctx context.Context, worker, job int) error) error {
	if parent == nil {
		return Do(ctx, n, workers, fn)
	}
	return doSteals(ctx, n, workers, func(ctx context.Context, worker, job, steals int) error {
		s := parent.StartChild(name(job),
			span.Int("job", int64(job)),
			span.Int("worker", int64(worker)),
			span.Int("steals", int64(steals)))
		err := fn(ctx, worker, job)
		if err != nil {
			s.SetAttrs(span.String("error", err.Error()))
		}
		s.End()
		return err
	})
}

// doSteals is the work-stealing engine behind Do and DoTraced. fn
// additionally receives the number of steals its worker has performed so
// far (always 0 on the single-worker path).
func doSteals(ctx context.Context, n, workers int, fn func(ctx context.Context, worker, job, steals int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for j := 0; j < n; j++ {
			if err := ctx.Err(); err != nil {
				errs[j] = err
				continue
			}
			errs[j] = fn(ctx, 0, j, 0)
		}
		return firstErr(errs)
	}

	spans := make([]*jobRange, workers)
	for w := range spans {
		spans[w] = &jobRange{lo: w * n / workers, hi: (w + 1) * n / workers}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := spans[w]
			steals := 0
			for {
				j, ok := own.pop()
				if !ok {
					// Steal the upper half of the richest victim. The
					// size snapshots race with the victims working, but a
					// stale pick only costs balance, never correctness.
					best, bestN := -1, 0
					for v, s := range spans {
						if v == w {
							continue
						}
						if sz := s.size(); sz > bestN {
							best, bestN = v, sz
						}
					}
					if best < 0 {
						return
					}
					lo, hi, ok := spans[best].stealFrom()
					if !ok {
						continue // victim drained meanwhile; rescan
					}
					steals++
					own.mu.Lock()
					own.lo, own.hi = lo, hi
					own.mu.Unlock()
					continue
				}
				if err := ctx.Err(); err != nil {
					errs[j] = err
					continue
				}
				errs[j] = fn(ctx, w, j, steals)
			}
		}(w)
	}
	wg.Wait()
	return firstErr(errs)
}

// firstErr returns the error of the lowest-numbered failed job.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Pool is a fixed-size worker pool for fire-and-forget tasks whose
// lifetime is managed elsewhere (the serve registry tracks runs itself;
// the pool only bounds goroutine churn). Unlike Do there is no batch to
// wait for: submit with Go, stop the workers with Close.
type Pool struct {
	tasks chan func(worker int)

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with the given number of workers (normalised via
// Workers). Each worker goroutine has a stable index in [0, workers),
// handed to tasks submitted via GoWorker.
func NewPool(workers int) *Pool {
	p := &Pool{tasks: make(chan func(worker int), 4*Workers(workers))}
	for i := 0; i < Workers(workers); i++ {
		go func(worker int) {
			for fn := range p.tasks {
				fn(worker)
			}
		}(i)
	}
	return p
}

// Go submits fn. If every worker is busy and the queue is full — or the
// pool is closed — fn runs on its own goroutine instead, so Go never
// blocks and never drops work (the registry's own MaxRunning gate is the
// real concurrency limit; the fallback just keeps Drain/shutdown safe).
func (p *Pool) Go(fn func()) {
	p.GoWorker(func(int) { fn() })
}

// GoWorker is Go for tasks that want to know which pool worker runs them
// (the observatory stamps it on execute spans). Tasks spilled to a
// fallback goroutine — queue full or pool closed — receive worker -1.
func (p *Pool) GoWorker(fn func(worker int)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		select {
		case p.tasks <- fn:
			return
		default:
		}
	}
	go fn(-1)
}

// Close stops the workers after the queued tasks finish. Tasks submitted
// after Close still run (on fresh goroutines).
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}
