package cppcache

import (
	"io"

	"cppcache/internal/isa"
	"cppcache/internal/trace"
	"cppcache/internal/workload"
)

// Program is a finished instruction trace ready to simulate.
type Program struct{ p *workload.Program }

// Name returns the program's name.
func (p *Program) Name() string { return p.p.Name }

// Len returns the trace length in instructions.
func (p *Program) Len() int { return p.p.Len() }

// WriteTo serialises the trace in the cppcache binary format.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	return trace.WriteAll(w, p.p.Stream())
}

// BuildBenchmark generates one of the 14 paper workloads at the given
// scale (0 means the experiment default).
func BuildBenchmark(name string, scale int) (*Program, error) {
	if scale == 0 {
		scale = workload.DefaultScale
	}
	p, err := workload.BuildShared(name, scale)
	if err != nil {
		return nil, err
	}
	return &Program{p: p}, nil
}

// Reg is a virtual-register handle in a trace under construction.
type Reg = int32

// NoReg marks an absent register dependence.
const NoReg Reg = isa.NoReg

// TraceBuilder records a custom program: a dependence-carrying instruction
// trace over a simulated heap. It is the same machinery the built-in
// workloads use (see internal/workload).
type TraceBuilder struct{ b *workload.B }

// NewTraceBuilder returns an empty builder with a deterministic RNG.
func NewTraceBuilder(seed int64) *TraceBuilder {
	return &TraceBuilder{b: workload.NewBuilder(seed)}
}

// Alloc carves bytes from the simulated heap with the given alignment and
// returns the address.
func (t *TraceBuilder) Alloc(bytes, align int) uint32 { return t.b.Alloc(bytes, align) }

// ScatterAlloc allocates round-robin across n interleaved stripes of the
// current 32K heap chunk, modelling allocators whose placement does not
// follow traversal order.
func (t *TraceBuilder) ScatterAlloc(n, bytes, align int) uint32 {
	return t.b.ScatterAlloc(n, bytes, align)
}

// SetPC positions the emission point; call at the top of each loop body so
// static code reuses PCs (the branch predictor and I-cache key on them).
func (t *TraceBuilder) SetPC(pc uint32) { t.b.SetPC(pc) }

// Load emits a load of the word at addr. addrDep is the register the
// address depends on (NoReg for a static address); the loaded value comes
// from the builder's functional memory image.
func (t *TraceBuilder) Load(addr uint32, addrDep Reg) Reg { return t.b.Load(addr, addrDep) }

// Store emits a store of value at addr, updating the functional image.
func (t *TraceBuilder) Store(addr, value uint32, addrDep, valueDep Reg) {
	t.b.Store(addr, value, addrDep, valueDep)
}

// ALU emits a one-cycle integer operation depending on up to two sources.
func (t *TraceBuilder) ALU(s1, s2 Reg) Reg { return t.b.ALU(s1, s2) }

// Branch emits a conditional branch with the given resolved direction.
func (t *TraceBuilder) Branch(cond Reg, taken bool) { t.b.Branch(cond, taken) }

// Peek returns the current value at addr in the functional image, so
// builders can follow the data structures they create.
func (t *TraceBuilder) Peek(addr uint32) uint32 {
	// The image is private to the internal builder; route through a
	// load-free helper.
	return t.b.Image().ReadWord(addr)
}

// Len returns the number of instructions recorded so far.
func (t *TraceBuilder) Len() int { return t.b.Len() }

// Program finalises the builder into a runnable Program.
func (t *TraceBuilder) Program(name string) *Program {
	return &Program{p: t.b.Program(name)}
}
