package cppcache

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigsAndBenchmarks(t *testing.T) {
	if got := Configs(); len(got) != 5 || got[0] != BC || got[4] != CPP {
		t.Errorf("Configs() = %v", got)
	}
	if got := Benchmarks(); len(got) != 14 {
		t.Errorf("Benchmarks() = %d entries", len(got))
	}
	infos := BenchmarkInfos()
	if len(infos) != 14 {
		t.Fatalf("BenchmarkInfos() = %d entries", len(infos))
	}
	for _, info := range infos {
		if info.Substitution == "" || info.Description == "" {
			t.Errorf("%s: missing documentation", info.Name)
		}
	}
}

func TestRunSmallBenchmark(t *testing.T) {
	for _, cfg := range Configs() {
		res, err := Run("olden.treeadd", cfg, Options{Scale: 1})
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if res.Cycles == 0 || res.Instructions == 0 {
			t.Errorf("%s: empty result %+v", cfg, res)
		}
		if res.L1MissRate() <= 0 || res.L1MissRate() >= 1 {
			t.Errorf("%s: implausible L1 miss rate %v", cfg, res.L1MissRate())
		}
	}
}

func TestRunFunctionalOnly(t *testing.T) {
	res, err := Run("olden.mst", BC, Options{Scale: 1, FunctionalOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 {
		t.Errorf("functional run reported cycles: %d", res.Cycles)
	}
	if res.L1Misses == 0 || res.MemTrafficWords == 0 {
		t.Errorf("functional run missing cache stats: %+v", res)
	}
}

func TestHalvedPenaltyFaster(t *testing.T) {
	full, err := Run("olden.health", BC, Options{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Run("olden.health", BC, Options{Scale: 1, HalveMissPenalty: true})
	if err != nil {
		t.Fatal(err)
	}
	if half.Cycles >= full.Cycles {
		t.Errorf("halved penalty not faster: %d vs %d", half.Cycles, full.Cycles)
	}
}

func TestUnknownNames(t *testing.T) {
	if _, err := Run("nope", BC, Options{Scale: 1}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run("olden.mst", "XYZ", Options{Scale: 1}); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestCompressFacade(t *testing.T) {
	if !CompressibleWord(42, 0x10000000) {
		t.Error("42 should be compressible")
	}
	c, ok := CompressWord(0x10001234, 0x10000000)
	if !ok {
		t.Fatal("pointer-like value should compress")
	}
	if got := DecompressWord(c, 0x10000000); got != 0x10001234 {
		t.Errorf("round trip = %#x", got)
	}
	if SmallValueMin != -16384 || SmallValueMax != 16383 {
		t.Error("small value range wrong")
	}
	words := []uint32{1, 2, 0xDEAD8001, 3}
	if got := CompressedLineWords(words, 0x1000); got != 2.5 {
		t.Errorf("CompressedLineWords = %v, want 2.5", got)
	}
	if CompressorGateDelay != 8 || DecompressorGateDelay != 2 {
		t.Error("gate delays wrong")
	}
}

func TestStandaloneSystem(t *testing.T) {
	sys, err := NewSystem(CPP)
	if err != nil {
		t.Fatal(err)
	}
	sys.Write(0x1000, 7)
	v, lat := sys.Read(0x1000)
	if v != 7 || lat != 1 {
		t.Errorf("read = %d, lat %d", v, lat)
	}
	snap := sys.Snapshot()
	if snap.L1Accesses != 2 {
		t.Errorf("snapshot accesses = %d", snap.L1Accesses)
	}
	mask, vp, err := CPPDetails(sys)
	if err != nil || mask != 1 || !vp {
		t.Errorf("CPPDetails = %v %v %v", mask, vp, err)
	}
	bc, _ := NewSystem(BC)
	if _, _, err := CPPDetails(bc); err == nil {
		t.Error("CPPDetails accepted a non-CPP system")
	}
}

func TestTraceBuilderFacade(t *testing.T) {
	tb := NewTraceBuilder(7)
	tb.SetPC(0x1000)
	node := tb.Alloc(16, 16)
	tb.Store(node, 5, NoReg, NoReg)
	if got := tb.Peek(node); got != 5 {
		t.Errorf("Peek = %d", got)
	}
	v := tb.Load(node, NoReg)
	sum := tb.ALU(v, NoReg)
	tb.Branch(sum, true)
	p := tb.Program("custom")
	if p.Len() != 4 || p.Name() != "custom" {
		t.Errorf("program = %s / %d", p.Name(), p.Len())
	}
	res, err := RunProgram(p, CPP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 4 {
		t.Errorf("ran %d instructions", res.Instructions)
	}
	var buf bytes.Buffer
	if n, err := p.WriteTo(&buf); err != nil || n != 4 {
		t.Errorf("WriteTo = %d, %v", n, err)
	}
}

func TestBuildBenchmark(t *testing.T) {
	p, err := BuildBenchmark("spec95.130.li", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() < 10000 {
		t.Errorf("trace too short: %d", p.Len())
	}
	if _, err := BuildBenchmark("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBaselineDescription(t *testing.T) {
	desc := BaselineDescription()
	for _, want := range []string{"4 issue", "16 instr", "100 cycles", "8K direct-mapped"} {
		if !strings.Contains(desc, want) {
			t.Errorf("baseline table missing %q:\n%s", want, desc)
		}
	}
}

func TestSuiteSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is slow")
	}
	s := NewSuite(SuiteOptions{Scale: 1, Benchmarks: []string{"olden.treeadd", "olden.health"}})
	f3, err := s.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	small := f3.Get("olden.treeadd", "small")
	ptr := f3.Get("olden.treeadd", "pointer")
	inc := f3.Get("olden.treeadd", "incompressible")
	if tot := small + ptr + inc; tot < 0.99 || tot > 1.01 {
		t.Errorf("fractions sum to %v", tot)
	}
	f10, err := s.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if f10.Get("olden.treeadd", "BC") != 1.0 {
		t.Error("traffic not normalised to BC")
	}
	if bcc := f10.Get("olden.treeadd", "BCC"); bcc >= 1.0 {
		t.Errorf("BCC traffic %v not below BC", bcc)
	}
	f11, err := s.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if cpp := f11.Get("geomean", "CPP"); cpp >= 1.05 {
		t.Errorf("CPP geomean execution time %v above BC", cpp)
	}
	if csv := f11.CSV(); !strings.Contains(csv, "benchmark,BC,BCC,HAC,BCP,CPP") {
		t.Error("CSV header malformed")
	}
}

func TestRelatedWorkAndEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := NewSuite(SuiteOptions{Scale: 1, Benchmarks: []string{"spec2000.300.twolf"}})
	rt, err := s.RelatedWorkTime()
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"BC", "VC", "LCC", "BCP", "CPP"} {
		v := rt.Get("spec2000.300.twolf", col)
		if v <= 0 || v > 2 {
			t.Errorf("%s related-work time = %v", col, v)
		}
	}
	// The victim cache must help on the conflict-heavy benchmark.
	if vc := rt.Get("spec2000.300.twolf", "VC"); vc >= 1.0 {
		t.Errorf("VC time %v not below BC on twolf", vc)
	}
	e, err := s.Energy()
	if err != nil {
		t.Fatal(err)
	}
	if bcc := e.Get("spec2000.300.twolf", "BCC"); bcc >= 1.0 {
		t.Errorf("BCC energy %v not below BC (compression saves bus energy)", bcc)
	}
	if _, err := s.RelatedWorkTraffic(); err != nil {
		t.Fatal(err)
	}
}

func TestExtraConfigsRun(t *testing.T) {
	if got := ExtraConfigs(); len(got) != 2 || got[0] != VC || got[1] != LCC {
		t.Fatalf("ExtraConfigs() = %v", got)
	}
	for _, cfg := range ExtraConfigs() {
		res, err := Run("olden.treeadd", cfg, Options{Scale: 1})
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if res.Cycles == 0 {
			t.Errorf("%s: no cycles", cfg)
		}
	}
}

// TestPaperClaimsEndToEnd locks the paper's headline claims on three
// representative benchmarks at a small scale: it is the repository's
// primary regression net.
func TestPaperClaimsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	benches := []string{"olden.health", "olden.treeadd", "spec2000.300.twolf"}
	type row map[CacheConfig]Result
	results := map[string]row{}
	for _, b := range benches {
		results[b] = row{}
		for _, cfg := range Configs() {
			res, err := Run(b, cfg, Options{Scale: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", b, cfg, err)
			}
			results[b][cfg] = res
		}
	}
	for _, b := range benches {
		r := results[b]
		// 1. BCC transmits compressed: strictly less traffic, identical timing.
		if r[BCC].MemTrafficWords >= r[BC].MemTrafficWords {
			t.Errorf("%s: BCC traffic not below BC", b)
		}
		if r[BCC].Cycles != r[BC].Cycles {
			t.Errorf("%s: BCC timing differs from BC", b)
		}
		// 2. BCP prefetching never reduces traffic below BC.
		if r[BCP].MemTrafficWords < r[BC].MemTrafficWords*0.97 {
			t.Errorf("%s: BCP traffic suspiciously below BC", b)
		}
		// 3. CPP prefetches yet uses less bandwidth than BC — the headline.
		if r[CPP].MemTrafficWords >= r[BC].MemTrafficWords {
			t.Errorf("%s: CPP traffic (%v) not below BC (%v)", b,
				r[CPP].MemTrafficWords, r[BC].MemTrafficWords)
		}
		// 4. CPP never loses badly to BC on time ("never causes pollution").
		if float64(r[CPP].Cycles) > 1.08*float64(r[BC].Cycles) {
			t.Errorf("%s: CPP cycles %d far above BC %d", b, r[CPP].Cycles, r[BC].Cycles)
		}
		// 5. CPP actually exercises its mechanisms.
		if r[CPP].AffiliatedHitsL1 == 0 || r[CPP].AffWordsPrefetched == 0 {
			t.Errorf("%s: CPP ran without affiliated activity", b)
		}
		// 6. Only CPP reports affiliated activity.
		if r[BC].AffiliatedHitsL1 != 0 || r[BCP].AffiliatedHitsL1 != 0 {
			t.Errorf("%s: non-CPP config reported affiliated hits", b)
		}
	}
	// 7. On the conflict-dominated benchmark the paper highlights, CPP
	// beats BCP on time (twolf; §4.3).
	tw := results["spec2000.300.twolf"]
	if tw[CPP].Cycles >= tw[BCP].Cycles {
		t.Errorf("twolf: CPP (%d) should beat BCP (%d) when conflict misses dominate",
			tw[CPP].Cycles, tw[BCP].Cycles)
	}
}
