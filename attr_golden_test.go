package cppcache

// Golden pinning of the attribution profiler output. The simulator is
// deterministic, so the full rendered profile — top-N tables plus
// collapsed stacks — of a fixed run is pinned byte-for-byte. Any drift
// means the attribution (or the hierarchy behaviour it mirrors) changed;
// intended changes regenerate the file with
//
//	go test . -run TestAttrGolden -update-attr
//
// and the diff of attr_golden.txt becomes part of the review.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cppcache/internal/obs"
)

var updateAttr = flag.Bool("update-attr", false, "rewrite testdata/attr_golden.txt from the current profiler output")

func attrGoldenProfile(t *testing.T) (Result, *Observation) {
	t.Helper()
	res, ob, err := RunObserved("olden.treeadd", CPP,
		Options{Scale: 1, FunctionalOnly: true},
		ObserveOptions{Attr: true})
	if err != nil {
		t.Fatal(err)
	}
	return res, ob
}

func TestAttrGolden(t *testing.T) {
	res, ob := attrGoldenProfile(t)
	got := ob.AttrText(10) + "\ncollapsed stacks:\n" + ob.AttrCollapsed()

	path := filepath.Join("testdata", "attr_golden.txt")
	if *updateAttr {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-attr)", err)
	}
	if got != string(want) {
		t.Errorf("attribution profile drifted from %s (regenerate with -update-attr if intended)\ngot:\n%s", path, got)
	}

	// The pinned profile must stay consistent with the run it describes:
	// attributed L1 misses are the counted L1 misses.
	if ob.AttrTotal(obs.AttrL1Miss) != res.L1Misses {
		t.Errorf("attributed L1 misses %d != result %d", ob.AttrTotal(obs.AttrL1Miss), res.L1Misses)
	}
	if ob.AttrTotal(obs.AttrAffHit) != res.AffiliatedHitsL1+res.AffiliatedHitsL2 {
		t.Errorf("attributed affiliated hits %d != result %d",
			ob.AttrTotal(obs.AttrAffHit), res.AffiliatedHitsL1+res.AffiliatedHitsL2)
	}
}
