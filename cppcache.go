// Package cppcache is a library-grade reproduction of "Enabling Partial
// Cache Line Prefetching Through Data Compression" (Youtao Zhang and Rajiv
// Gupta, ICPP 2003).
//
// The paper's contribution — the CPP cache, which stores 32-bit words in a
// 16-bit compressed form when possible and uses the freed half-slots to
// prefetch the compressible words of the next ("affiliated") cache line,
// with no prefetch buffers and no extra memory bandwidth — is implemented
// in internal/core, together with every substrate the evaluation needs: a
// value compressor (internal/compress), conventional and prefetching cache
// hierarchies (internal/hier), a cycle-stepped 4-issue out-of-order core
// standing in for SimpleScalar (internal/cpu), and trace generators for
// the paper's 14 Olden/SPECint benchmarks (internal/workload).
//
// This package is the public face: run one benchmark on one cache
// configuration (Run), build custom traces (NewTraceBuilder), use the
// value-compression scheme directly (CompressWord and friends), and
// regenerate every figure of the paper's evaluation (Figure3 through
// Figure15 in experiments.go).
package cppcache

import (
	"context"
	"fmt"
	"strings"

	"cppcache/internal/compress"
	"cppcache/internal/core"
	"cppcache/internal/cpu"
	"cppcache/internal/hier"
	"cppcache/internal/mem"
	"cppcache/internal/memsys"
	"cppcache/internal/obs"
	"cppcache/internal/sim"
	"cppcache/internal/span"
	"cppcache/internal/workload"
)

// CacheConfig names one of the paper's five cache configurations (§4.1).
type CacheConfig string

// The five configurations compared by the paper.
const (
	// BC is the baseline: 8K direct-mapped L1 (64 B lines), 64K 2-way
	// L2 (128 B lines).
	BC CacheConfig = "BC"
	// BCC is BC plus value compression on off-chip transfers; identical
	// timing, less traffic.
	BCC CacheConfig = "BCC"
	// HAC doubles the associativity at both levels.
	HAC CacheConfig = "HAC"
	// BCP is BC plus next-line prefetch-on-miss with 8-entry (L1) and
	// 32-entry (L2) prefetch buffers.
	BCP CacheConfig = "BCP"
	// CPP is the paper's contribution: compression-enabled partial
	// cache line prefetching.
	CPP CacheConfig = "CPP"

	// VC is a related-work comparison beyond the paper's five: BC plus
	// an 8-entry victim cache (Jouppi, the paper's reference [3]).
	VC CacheConfig = "VC"
	// LCC is the line-level compression cache of the paper's related
	// work ([6]): two conflicting lines share a frame only when both are
	// fully compressible; no partial-line prefetching.
	LCC CacheConfig = "LCC"
)

// Configs returns all configurations in presentation order.
func Configs() []CacheConfig {
	out := make([]CacheConfig, 0, 5)
	for _, c := range sim.Configs() {
		out = append(out, CacheConfig(c))
	}
	return out
}

// ExtraConfigs returns the related-work configurations implemented beyond
// the paper's five (VC and LCC).
func ExtraConfigs() []CacheConfig {
	out := make([]CacheConfig, 0, 2)
	for _, c := range sim.ExtraConfigs() {
		out = append(out, CacheConfig(c))
	}
	return out
}

// Benchmarks returns the names of the 14 workloads (olden.*, spec95.*,
// spec2000.*).
func Benchmarks() []string { return workload.Names() }

// ResolveBenchmark maps name to a registered workload: an exact match
// wins; otherwise a unique dot-suffix match ("mst" -> "olden.mst") is
// accepted. CLI tools and the observatory service share this resolution.
func ResolveBenchmark(name string) (string, error) {
	var candidates []string
	for _, n := range Benchmarks() {
		if n == name {
			return n, nil
		}
		if strings.HasSuffix(n, "."+name) {
			candidates = append(candidates, n)
		}
	}
	switch len(candidates) {
	case 1:
		return candidates[0], nil
	case 0:
		return "", fmt.Errorf("unknown workload %q", name)
	default:
		return "", fmt.Errorf("ambiguous workload %q: matches %s", name, strings.Join(candidates, ", "))
	}
}

// KnownConfig reports whether name (case-insensitively) is a recognised
// cache configuration, returning its canonical form.
func KnownConfig(name string) (CacheConfig, bool) {
	cfg := CacheConfig(strings.ToUpper(name))
	for _, c := range append(Configs(), ExtraConfigs()...) {
		if c == cfg {
			return cfg, true
		}
	}
	return cfg, false
}

// Compressors returns the registered line-compression schemes in
// registration order: "paper" (the reproduced scheme, always the
// default), then the comparison zoo ("cpack", "fpc", "bdi").
func Compressors() []string { return compress.Schemes() }

// DefaultCompressor returns the name of the paper's scheme, the default
// everywhere a compressor is selectable.
func DefaultCompressor() string { return compress.Default().Name() }

// KnownCompressor reports whether name (case-insensitively, "" meaning
// the default) is a registered compression scheme, returning its
// canonical lower-case form.
func KnownCompressor(name string) (string, bool) {
	c, err := compress.Get(name)
	if err != nil {
		return strings.ToLower(strings.TrimSpace(name)), false
	}
	return c.Name(), true
}

// ValidateCompressor reports whether the scheme can back the given cache
// configuration. Every configuration accepts the default scheme; only
// the configurations that compress bus transfers (BCC, LCC) accept a
// non-default one.
func ValidateCompressor(cfg CacheConfig, scheme string) error {
	return sim.ValidateCompressor(string(cfg), scheme)
}

// BenchmarkInfo describes one workload.
type BenchmarkInfo struct {
	Name         string
	Suite        string
	Description  string
	Substitution string // what replaced the original binary/input
}

// BenchmarkInfos returns metadata for every workload.
func BenchmarkInfos() []BenchmarkInfo {
	all := workload.All()
	out := make([]BenchmarkInfo, len(all))
	for i, bm := range all {
		out[i] = BenchmarkInfo{bm.Name, bm.Suite, bm.Description, bm.Substitution}
	}
	return out
}

// Options configure a simulation run.
type Options struct {
	// Scale multiplies the workload's compute phase. 0 means the
	// experiment default (4).
	Scale int
	// HalveMissPenalty halves the L2-hit and memory latencies, as the
	// miss-importance methodology of Figure 14 requires.
	HalveMissPenalty bool
	// FunctionalOnly skips the pipeline model: misses and traffic are
	// still exact, cycle counts are zero. Roughly 10x faster.
	FunctionalOnly bool
	// Compressor selects the line-compression scheme for configurations
	// that compress bus transfers (BCC, LCC). "" means the paper's
	// scheme; see Compressors for the registered zoo. Selecting a
	// non-default scheme on any other configuration is an error.
	Compressor string
}

// Result reports one run.
type Result struct {
	Benchmark string
	Config    CacheConfig
	// Compressor is the line-compression scheme the run used ("paper"
	// unless a zoo scheme was selected on a compressing configuration).
	Compressor string

	Cycles       int64
	Instructions int64
	IPC          float64

	L1Accesses int64
	L1Misses   int64
	L2Accesses int64
	L2Misses   int64

	// MemTrafficWords is the total off-chip traffic in 32-bit words
	// (compressed transfers count fractionally).
	MemTrafficWords float64

	// CPP-specific counters (zero for other configurations).
	AffiliatedHitsL1   int64
	AffiliatedHitsL2   int64
	Promotions         int64
	AffWordsPrefetched int64

	// BCP-specific counters.
	PrefetchBufferHitsL1 int64
	PrefetchBufferHitsL2 int64

	// Ready-queue instrumentation (Figure 15).
	AvgReadyQueueInMiss float64

	Mispredicts  int64
	ICacheMisses int64
}

// L1MissRate returns L1Misses / L1Accesses.
func (r Result) L1MissRate() float64 {
	if r.L1Accesses == 0 {
		return 0
	}
	return float64(r.L1Misses) / float64(r.L1Accesses)
}

// L2MissRate returns L2Misses / L2Accesses.
func (r Result) L2MissRate() float64 {
	if r.L2Accesses == 0 {
		return 0
	}
	return float64(r.L2Misses) / float64(r.L2Accesses)
}

func fromSim(r sim.Result) Result {
	base, scheme := sim.SplitConfig(r.Config)
	if scheme == "" {
		scheme = compress.Default().Name()
	}
	return Result{
		Benchmark:            r.Benchmark,
		Config:               CacheConfig(base),
		Compressor:           scheme,
		Cycles:               r.CPU.Cycles,
		Instructions:         r.CPU.Instructions,
		IPC:                  r.CPU.IPC(),
		L1Accesses:           r.Mem.L1.Accesses,
		L1Misses:             r.Mem.L1.Misses,
		L2Accesses:           r.Mem.L2.Accesses,
		L2Misses:             r.Mem.L2.Misses,
		MemTrafficWords:      r.Mem.MemTrafficWords(),
		AffiliatedHitsL1:     r.Mem.AffHitsL1,
		AffiliatedHitsL2:     r.Mem.AffHitsL2,
		Promotions:           r.Mem.Promotions,
		AffWordsPrefetched:   r.Mem.AffWordsPrefetchedL1 + r.Mem.AffWordsPrefetchedL2,
		PrefetchBufferHitsL1: r.Mem.PfBufHitsL1,
		PrefetchBufferHitsL2: r.Mem.PfBufHitsL2,
		AvgReadyQueueInMiss:  r.CPU.AvgReadyQueueInMiss(),
		Mispredicts:          r.CPU.Mispredicts,
		ICacheMisses:         r.CPU.ICacheMisses,
	}
}

// Run simulates the named benchmark on the given cache configuration.
func Run(benchmark string, cfg CacheConfig, opts Options) (Result, error) {
	scale := opts.Scale
	if scale == 0 {
		scale = workload.DefaultScale
	}
	p, err := workload.BuildShared(benchmark, scale)
	if err != nil {
		return Result{}, err
	}
	return RunProgram(&Program{p: p}, cfg, opts)
}

// RunProgram simulates a custom program (built with NewTraceBuilder) on
// the given cache configuration.
func RunProgram(p *Program, cfg CacheConfig, opts Options) (Result, error) {
	lat := memsys.DefaultLatencies()
	if opts.HalveMissPenalty {
		lat = lat.Halved()
	}
	config, err := schemeQualified(cfg, opts)
	if err != nil {
		return Result{}, err
	}
	if opts.FunctionalOnly {
		r, err := sim.RunFunctional(p.p, config, lat)
		if err != nil {
			return Result{}, err
		}
		return fromSim(r), nil
	}
	r, err := sim.Run(p.p, config, lat, cpu.DefaultParams())
	if err != nil {
		return Result{}, err
	}
	return fromSim(r), nil
}

// schemeQualified validates Options.Compressor against cfg and composes
// the scheme-qualified config name the simulator understands. The default
// scheme yields the bare name, keeping default runs byte-identical.
func schemeQualified(cfg CacheConfig, opts Options) (string, error) {
	if opts.Compressor == "" {
		return string(cfg), nil
	}
	if err := sim.ValidateCompressor(string(cfg), opts.Compressor); err != nil {
		return "", err
	}
	return sim.WithCompressor(string(cfg), opts.Compressor), nil
}

// ObserveOptions configure the observability layer of an observed run.
type ObserveOptions struct {
	// IntervalCycles is the metrics snapshot cadence in simulated cycles
	// (memory ops in functional mode). <= 0 disables interval metrics.
	IntervalCycles int64
	// Trace enables the structured event trace (ring-buffered; the
	// newest events win when the ring fills).
	Trace bool
	// TraceCap overrides the event-ring capacity (0 = 65536 events).
	TraceCap int
	// Attr enables the PC/region attribution profiler: L1 misses,
	// compression-failure fill words and affiliated-prefetch hits are
	// attributed to instruction PCs and data-address regions.
	Attr bool
	// AttrRegionBits sets the attribution region granularity in address
	// bits (0 = 12, i.e. 4 KiB regions).
	AttrRegionBits int
	// OnSnapshot, when set, receives each interval snapshot synchronously
	// as it is taken, while the run is still in flight. The callback runs
	// on the simulation goroutine; consumers that share the snapshot with
	// other goroutines must do their own locking.
	OnSnapshot func(obs.Snapshot)
	// FaultHook, when set, is invoked at the simulator's fault-injection
	// points (every memory operation, every hierarchy fill) with a site
	// label. It is the plumbing for the seeded chaos harness
	// (internal/chaos): a hook that panics, stalls or cancels exercises
	// the supervisor's failure isolation. The hook runs synchronously on
	// the simulation goroutine; an inert hook never changes simulation
	// results (test-enforced).
	FaultHook func(site string)
	// Span, when set, parents the run's lifecycle spans (workload.build
	// with a decode cache hit/miss event, then the sim.* stage spans) on
	// the caller's trace. nil traces nothing, at the cost of one branch
	// per stage boundary (the span package's nil-receiver contract).
	Span *span.Span
}

// Observation wraps the recorder of a completed observed run and renders
// its three products: interval metrics, the event trace and the latency
// histograms.
type Observation struct {
	rec *obs.Recorder
}

// MetricsCSV renders the interval metric series as CSV with a header row.
// Counters are per-interval deltas; each column sums to the run total.
func (o *Observation) MetricsCSV() string { return o.rec.MetricsCSV() }

// MetricsJSON renders the interval metric series as a JSON array.
func (o *Observation) MetricsJSON() ([]byte, error) { return o.rec.MetricsJSON() }

// ChromeTrace renders the retained events in Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto (1 simulated cycle = 1 us).
func (o *Observation) ChromeTrace() []byte { return o.rec.ChromeTrace() }

// TraceDropped reports how many events were dropped because the ring
// buffer was full.
func (o *Observation) TraceDropped() int64 { return o.rec.TraceDropped() }

// HistogramsText renders the latency histograms for terminal output.
func (o *Observation) HistogramsText() string { return o.rec.HistogramsText() }

// Intervals returns how many metric snapshots were taken.
func (o *Observation) Intervals() int { return len(o.rec.Snapshots()) }

// Snapshots returns the interval metric series (per-interval deltas).
func (o *Observation) Snapshots() []obs.Snapshot { return o.rec.Snapshots() }

// AttrEnabled reports whether the attribution profiler collected.
func (o *Observation) AttrEnabled() bool { return o.rec.AttrEnabled() }

// AttrText renders the attribution profile as top-N tables (per kind,
// per-PC and per-region sections).
func (o *Observation) AttrText(topN int) string { return o.rec.AttrText(topN) }

// AttrCollapsed renders the attribution profile in collapsed-stack format
// for flame-graph tooling.
func (o *Observation) AttrCollapsed() string { return o.rec.AttrCollapsed() }

// AttrTotal returns the total attributed count of one kind.
func (o *Observation) AttrTotal(kind obs.AttrKind) int64 { return o.rec.AttrTotal(kind) }

// RunObserved is Run with the observability layer attached: interval
// metrics, event tracing and latency histograms per ObserveOptions.
// Attaching a recorder never changes simulation results.
func RunObserved(benchmark string, cfg CacheConfig, opts Options, oo ObserveOptions) (Result, *Observation, error) {
	return RunObservedContext(context.Background(), benchmark, cfg, opts, oo)
}

// RunContext is Run under a context: the simulation loops poll ctx
// cooperatively (every few thousand cycles/ops) and abandon the run with
// an error wrapping ctx.Err() when it is canceled or its deadline expires.
// The observatory service uses this for per-run deadlines, user
// cancellation and fast drain on shutdown.
func RunContext(ctx context.Context, benchmark string, cfg CacheConfig, opts Options) (Result, error) {
	res, _, err := RunObservedContext(ctx, benchmark, cfg, opts, ObserveOptions{})
	return res, err
}

// RunObservedContext is RunObserved under a context (see RunContext).
func RunObservedContext(ctx context.Context, benchmark string, cfg CacheConfig, opts Options, oo ObserveOptions) (Result, *Observation, error) {
	scale := opts.Scale
	if scale == 0 {
		scale = workload.DefaultScale
	}
	build := oo.Span.StartChild("workload.build",
		span.String("benchmark", benchmark), span.Int("scale", int64(scale)))
	p, hit, err := workload.BuildSharedCached(benchmark, scale)
	if err != nil {
		build.End()
		return Result{}, nil, err
	}
	build.Event("decode.cache", span.Bool("hit", hit))
	build.End()
	return RunProgramObservedContext(ctx, &Program{p: p}, cfg, opts, oo)
}

// RunProgramObserved is RunProgram with the observability layer attached.
func RunProgramObserved(p *Program, cfg CacheConfig, opts Options, oo ObserveOptions) (Result, *Observation, error) {
	return RunProgramObservedContext(context.Background(), p, cfg, opts, oo)
}

// RunProgramObservedContext is RunProgramObserved under a context (see
// RunContext).
func RunProgramObservedContext(ctx context.Context, p *Program, cfg CacheConfig, opts Options, oo ObserveOptions) (Result, *Observation, error) {
	lat := memsys.DefaultLatencies()
	if opts.HalveMissPenalty {
		lat = lat.Halved()
	}
	rec := obs.New(obs.Config{
		Interval:       oo.IntervalCycles,
		Trace:          oo.Trace,
		TraceCap:       oo.TraceCap,
		Attr:           oo.Attr,
		AttrRegionBits: oo.AttrRegionBits,
		OnSnapshot:     oo.OnSnapshot,
	})
	config, err := schemeQualified(cfg, opts)
	if err != nil {
		return Result{}, nil, err
	}
	sup := sim.Supervision{Ctx: ctx, Fault: oo.FaultHook, Span: oo.Span}
	var r sim.Result
	if opts.FunctionalOnly {
		r, err = sim.RunFunctionalSupervised(p.p, config, lat, rec, sup)
	} else {
		r, err = sim.RunSupervised(p.p, config, lat, cpu.DefaultParams(), rec, sup)
	}
	if err != nil {
		return Result{}, nil, err
	}
	return fromSim(r), &Observation{rec: rec}, nil
}

// NewSystem builds a standalone cache hierarchy of the named configuration
// over a fresh main memory, for word-level experimentation: Read and
// Write return the access latency in cycles along with the data.
func NewSystem(cfg CacheConfig) (System, error) {
	m := mem.New()
	sys, err := sim.NewSystem(string(cfg), m, memsys.DefaultLatencies())
	if err != nil {
		return nil, err
	}
	return &system{sys: sys}, nil
}

// System is a standalone two-level cache hierarchy over main memory.
type System interface {
	// Read loads the 32-bit word at the word-aligned address, returning
	// the value and the access latency in cycles.
	Read(addr uint32) (value uint32, latencyCycles int)
	// Write stores a word, returning the access latency in cycles.
	Write(addr uint32, value uint32) (latencyCycles int)
	// Name returns the configuration name.
	Name() string
	// Snapshot returns the accumulated statistics.
	Snapshot() Result
}

type system struct{ sys memsys.System }

func (s *system) Read(addr uint32) (uint32, int) { return s.sys.Read(addr) }
func (s *system) Write(addr, v uint32) int       { return s.sys.Write(addr, v) }
func (s *system) Name() string                   { return s.sys.Name() }
func (s *system) Snapshot() Result {
	return fromSim(sim.Result{Config: s.sys.Name(), Mem: *s.sys.Stats()})
}

// CPPDetails returns the CPP design parameters in force for the given
// standalone system, or an error for other configurations.
func CPPDetails(s System) (mask uint32, victimPlacement bool, err error) {
	sys, ok := s.(*system)
	if !ok {
		return 0, false, fmt.Errorf("cppcache: not a system built by NewSystem")
	}
	h, ok := sys.sys.(*core.Hierarchy)
	if !ok {
		return 0, false, fmt.Errorf("cppcache: %s is not a CPP hierarchy", s.Name())
	}
	cfg := h.Config()
	return cfg.Mask, cfg.VictimPlacement, nil
}

// BaselineDescription renders the Figure 9 configuration table.
func BaselineDescription() string {
	return baselineTable()
}

var _ = hier.BaselineConfig // keep the dependency explicit for godoc cross-reference

// RunCPPVariant simulates a benchmark on a CPP hierarchy with explicit
// design knobs — the affiliated-line mask (the paper uses 0x1: next-line
// pairing) and the victim-placement policy (§3.3) — for ablation studies.
func RunCPPVariant(benchmark string, mask uint32, victimPlacement bool, opts Options) (Result, error) {
	scale := opts.Scale
	if scale == 0 {
		scale = workload.DefaultScale
	}
	prog, err := workload.BuildShared(benchmark, scale)
	if err != nil {
		return Result{}, err
	}
	lat := memsys.DefaultLatencies()
	if opts.HalveMissPenalty {
		lat = lat.Halved()
	}
	r, err := sim.RunCPPVariant(prog, lat, cpu.DefaultParams(), mask, victimPlacement)
	if err != nil {
		return Result{}, err
	}
	return fromSim(r), nil
}

// CompressibleWordWidth reports compressibility under a generalised
// compressed width (payloadBits low-order bits kept; the paper uses 15).
// It backs the compression-width ablation.
func CompressibleWordWidth(value, addr uint32, payloadBits int) bool {
	return compressWidth(value, addr, payloadBits)
}
